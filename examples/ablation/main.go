// Ablation: strip C-Store's executor optimizations one at a time (paper
// Figure 7) and watch the column store degrade into a row store.
//
//	go run ./examples/ablation [-sf 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "scale factor")
	flag.Parse()

	db := core.Open(*sf)
	fmt.Printf("C-Store ablation at SF=%g (%d rows)\n", *sf, db.Data.NumLineorders())
	fmt.Println("codes: t/T block vs tuple iteration, I/i invisible join,")
	fmt.Println("       C/c compression, L/l late materialization")
	fmt.Println()

	queries := ssb.Queries()
	fmt.Printf("%-6s", "")
	for _, q := range queries {
		fmt.Printf("%8s", q.ID)
	}
	fmt.Printf("%8s\n", "AVG")

	var baseline float64
	for _, cfg := range core.Figure7Systems() {
		fmt.Printf("%-6s", cfg.Col.Code())
		sum := 0.0
		for _, q := range queries {
			_, stats, err := db.Run(q.ID, cfg)
			if err != nil {
				log.Fatal(err)
			}
			secs := stats.Total.Seconds()
			sum += secs
			fmt.Printf("%8.3f", secs)
		}
		avg := sum / float64(len(queries))
		if baseline == 0 {
			baseline = avg
		}
		fmt.Printf("%8.3f   (%.1fx baseline)\n", avg, avg/baseline)
	}

	fmt.Println("\nExpected shape (paper Section 6.3.2): compression ~2x on average")
	fmt.Println("(10x on flight 1), late materialization ~3x, block iteration and")
	fmt.Println("invisible join ~1.5x each.")
}
