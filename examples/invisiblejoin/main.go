// Invisible join walkthrough: shows the three join phases from paper
// Section 5.4 on Query 3.1, including when between-predicate rewriting
// fires and what it buys.
//
//	go run ./examples/invisiblejoin
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/ssb"
)

func main() {
	db := core.Open(0.02)
	col := db.ColumnDB(true)
	q := ssb.QueryByID("3.1")
	fmt.Println("Query 3.1: revenue of ASIA customers buying from ASIA suppliers,")
	fmt.Println("1992-1997, grouped by customer nation, supplier nation, year.")
	fmt.Println()

	// Phase 1: each dimension predicate yields a set of dimension keys.
	// Because dimensions are sorted by their hierarchy (region > nation >
	// city) and keys are reassigned to positions, an equality predicate
	// on region selects a CONTIGUOUS key range.
	supplier := col.Dims[ssb.DimSupplier]
	regionCol := supplier.MustColumn("region")
	pred := regionCol.Dict.EncodePred(0 /* OpEq */, "ASIA", "", nil)
	pos := regionCol.Filter(pred, nil)
	fmt.Printf("Phase 1: region='ASIA' matches %d of %d suppliers\n", pos.Len(), supplier.NumRows())
	fmt.Printf("         positions are contiguous -> rewrite join as a BETWEEN\n")
	fmt.Printf("         predicate on the fact suppkey column (no hash table)\n\n")

	// Phases 2+3 run inside the executor; compare invisible join against
	// the late-materialized hash join it replaces.
	run := func(label string, cfg exec.Config) iosim.Stats {
		var st iosim.Stats
		res := col.Run(q, cfg, &st)
		fmt.Printf("%-28s rows=%3d  io=%6.2f MB\n", label, len(res.Rows), float64(st.BytesRead)/1e6)
		return st
	}
	ij := run("invisible join (tICL)", exec.FullOpt)
	hj := run("hash join fallback (tiCL)", exec.Config{BlockIter: true, Compression: true, LateMat: true})
	if ij.BytesRead > hj.BytesRead {
		log.Fatal("invisible join should not read more than the hash join")
	}

	fmt.Println("\nPhase 3 note: customer/supplier/part group-by attributes are")
	fmt.Println("extracted by direct array lookup (keys are positions); the date")
	fmt.Println("dimension keeps its yyyymmdd key, so it pays a real lookup —")
	fmt.Println("exactly the 'full join must be performed' case in the paper.")
}
