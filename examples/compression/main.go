// Compression tour: shows how each SSBM fact column compresses under the
// adaptive per-block encoder, and measures direct operation on compressed
// data against decompress-then-filter (paper Section 5.1).
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"time"

	"repro/internal/bitmap"
	"repro/internal/compress"
	"repro/internal/exec"
	"repro/internal/ssb"
)

func main() {
	d := ssb.Generate(0.05)
	db := exec.BuildDB(d, true)

	fmt.Println("Per-column encodings of the LINEORDER projection")
	fmt.Println("(sorted by orderdate, secondarily by quantity, discount):")
	fmt.Println()
	for _, line := range db.Fact.EncodingSummary() {
		fmt.Println("  " + line)
	}

	// The sorted orderdate column run-length encodes to almost nothing —
	// the paper's "this column takes up less than 64K of space".
	od := db.Fact.MustColumn("orderdate")
	fmt.Printf("\norderdate: %d rows in %d bytes (%.4f bytes/value)\n",
		od.NumRows(), od.CompressedBytes(), float64(od.CompressedBytes())/float64(od.NumRows()))

	// Direct operation: filter an RLE column via its runs vs via decoded
	// values.
	vals := od.DecodeAll(nil, nil)
	rle := compress.NewRLEBlock(vals[:min(len(vals), 1<<20)])
	plain := compress.NewPlainBlock(vals[:min(len(vals), 1<<20)])
	pred := compress.Between(19940101, 19941231)

	bm := bitmap.New(rle.Len())
	start := time.Now()
	for i := 0; i < 100; i++ {
		bm.Reset()
		rle.Filter(pred, 0, bm)
	}
	direct := time.Since(start)
	start = time.Now()
	for i := 0; i < 100; i++ {
		bm.Reset()
		plain.Filter(pred, 0, bm)
	}
	decoded := time.Since(start)
	fmt.Printf("\nFilter year=1994 over %d values x100:\n", rle.Len())
	fmt.Printf("  direct on RLE runs:   %v  (%d runs)\n", direct, rle.NumRuns())
	fmt.Printf("  value-at-a-time scan: %v\n", decoded)
	fmt.Printf("  speedup: %.0fx — 'perform the same operation on multiple\n", float64(decoded)/float64(direct))
	fmt.Println("  column values at once' (paper Section 5.1)")

	// Order-preserving dictionaries turn string predicates into integer
	// range predicates.
	region := db.Dims[ssb.DimSupplier].MustColumn("region")
	fmt.Printf("\nsupplier.region dictionary (order-preserving): %v\n", region.Dict.Values())
	p := region.Dict.EncodePred(compress.OpBetween, "AMERICA", "ASIA", nil)
	fmt.Printf("  region BETWEEN 'AMERICA' AND 'ASIA' -> codes [%d, %d]\n", p.A, p.B)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
