// SQL shell: an interactive prompt over the SSBM dialect. Statements are
// parsed, shown as EXPLAIN output, executed on a chosen engine, and checked
// against the brute-force reference.
//
//	go run ./examples/sqlshell [-sf 0.02] [-system CS]
//
// Shell commands:
//
//	\system CS|RS|RS-MV|...   switch engine (same names as cmd/ssb-query)
//	\explain on|off           toggle plan display
//	\q 2.1                    run a built-in SSBM query by id
//	\quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/sql"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.02, "scale factor")
	system := flag.String("system", "CS", "initial engine")
	flag.Parse()

	db := core.Open(*sf)
	cfg, err := parseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	showPlan := true
	fmt.Printf("SSBM shell at SF=%g (%d fact rows) on %s. Try:\n", *sf, db.Data.NumLineorders(), cfg.Label())
	fmt.Println(`  SELECT sum(lo_revenue), d_year FROM lineorder, dwdate
    WHERE lo_orderdate = d_datekey AND d_year >= 1995 GROUP BY d_year;`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("ssb> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, `\`) {
			if handleMeta(trimmed, db, &cfg, &showPlan) {
				return
			}
			fmt.Print("ssb> ")
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("...> ")
			continue
		}
		runSQL(db, cfg, pending.String(), showPlan)
		pending.Reset()
		fmt.Print("ssb> ")
	}
}

// handleMeta processes backslash commands; returns true to exit.
func handleMeta(cmd string, db *core.DB, cfg *core.Config, showPlan *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q+exit`, `\exit`:
		return true
	case `\system`:
		if len(fields) != 2 {
			fmt.Println("usage: \\system CS|RS|RS-MV|...")
			return false
		}
		c, err := parseSystem(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		*cfg = c
		fmt.Printf("engine: %s\n", c.Label())
	case `\explain`:
		*showPlan = len(fields) < 2 || fields[1] != "off"
		fmt.Printf("explain: %v\n", *showPlan)
	case `\q`:
		if len(fields) != 2 {
			fmt.Println("usage: \\q <query id, e.g. 2.1>")
			return false
		}
		q := ssb.QueryByID(fields[1])
		if q == nil {
			fmt.Printf("unknown query %q\n", fields[1])
			return false
		}
		runPlan(db, *cfg, q, *showPlan)
	default:
		fmt.Println("commands: \\system <name>, \\explain on|off, \\q <id>, \\quit")
	}
	return false
}

func runSQL(db *core.DB, cfg core.Config, text string, showPlan bool) {
	text = strings.TrimSpace(text)
	if text == "" || text == ";" {
		return
	}
	q, err := sql.Parse("shell", text)
	if err != nil {
		fmt.Println(err)
		return
	}
	runPlan(db, cfg, q, showPlan)
}

func runPlan(db *core.DB, cfg core.Config, q *ssb.Query, showPlan bool) {
	if showPlan {
		if plan, err := db.ExplainPlan(q, cfg); err == nil {
			fmt.Print(plan)
		}
	}
	res, stats, err := db.RunPlan(q, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(res.String())
	fmt.Printf("cpu=%v  io=%.1fMB  io-time=%v  total=%v\n",
		stats.Wall, float64(stats.IO.BytesRead)/1e6, stats.IOTime, stats.Total)
	want := ssb.Reference(db.Data, q)
	if !res.Equal(want) {
		fmt.Println("WARNING: result diverges from brute-force reference!")
	}
}

// parseSystem mirrors cmd/ssb-query's naming.
func parseSystem(s string) (core.Config, error) {
	switch strings.ToUpper(s) {
	case "CS":
		return core.ColumnStore(exec.FullOpt), nil
	case "CS-PROJ":
		return core.ColumnStoreProjected(exec.FullOpt), nil
	case "RS":
		return core.RowStore(rowexec.Traditional), nil
	case "RS-TB":
		return core.RowStore(rowexec.TraditionalBitmap), nil
	case "RS-MV":
		return core.RowStore(rowexec.MaterializedViews), nil
	case "RS-VP":
		return core.RowStore(rowexec.VerticalPartitioning), nil
	case "RS-AI":
		return core.RowStore(rowexec.AllIndexes), nil
	case "PJ-NOC":
		return core.Denormalized(exec.DenormNoC), nil
	case "PJ-INTC":
		return core.Denormalized(exec.DenormIntC), nil
	case "PJ-MAXC":
		return core.Denormalized(exec.DenormMaxC), nil
	}
	return core.Config{}, fmt.Errorf("unknown system %q", s)
}
