// Quickstart: generate a small SSBM instance, run the same query on the
// column store and the row store, and confirm both engines agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rowexec"
)

func main() {
	// Scale factor 0.01 is ~60,000 fact rows — enough to see the
	// mechanics without waiting on data generation.
	db := core.Open(0.01)
	fmt.Printf("SSBM SF=%g: %d lineorder rows\n\n", db.SF, db.Data.NumLineorders())

	const query = "2.1" // revenue by year and brand for MFGR#12 parts from AMERICA suppliers

	colRes, colStats, err := db.Run(query, core.ColumnStore(exec.FullOpt))
	if err != nil {
		log.Fatal(err)
	}
	rowRes, rowStats, err := db.Run(query, core.RowStore(rowexec.Traditional))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Column store (C-Store, all optimizations):")
	fmt.Print(colRes.String())
	fmt.Printf("  cpu=%v  simulated-io=%v  total=%v\n\n", colStats.Wall, colStats.IOTime, colStats.Total)

	fmt.Println("Row store (System X, traditional design):")
	fmt.Printf("  %d rows (identical: %v)\n", len(rowRes.Rows), colRes.Equal(rowRes))
	fmt.Printf("  cpu=%v  simulated-io=%v  total=%v\n\n", rowStats.Wall, rowStats.IOTime, rowStats.Total)

	if !colRes.Equal(rowRes) {
		log.Fatal("engines disagree — this is a bug")
	}
	fmt.Printf("Column store is %.1fx faster on paper-comparable total time.\n",
		rowStats.Total.Seconds()/colStats.Total.Seconds())
}
