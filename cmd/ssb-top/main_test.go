package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/ssb"
)

// TestFixtureRender pins the dashboard layout against canned endpoint
// payloads: every section the ISSUE promises (qps, percentiles, pool,
// recent queries) must appear, rendered through the injected writer.
func TestFixtureRender(t *testing.T) {
	mux := http.NewServeMux()
	serve := func(path, body string) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(body))
		})
	}
	serve("/stats", `{"server":{"uptime_seconds":125.5,"goroutines":12,"queries":5000,"errors":2,
		"in_flight":3,"cache_hits":1200,"cache_misses":3800,"cache_entries":256,
		"admit_waits":7,"admit_rejects":1,"admit_bytes":268435456,
		"delta":{"pending_rows":640,"pending_bytes":20480},"wal":{"syncs":42}},
		"pool":{"budget":1048576,"hits":90000,"misses":10000,"evictions":500,
		"resident":524288,"resident_logical":2097152,"pinned_frames":2}}`)
	serve("/debug/summary", `{"window_ns":60000000000,"count":900,"errors":1,"cache_hits":100,"runs":799,
		"p50_ns":1500000,"p95_ns":9000000,"p99_ns":30000000,
		"groups":[{"engine":"fused","flight":"1","count":500,"runs":500,
		"p50_ns":1200000,"p95_ns":8000000,"p99_ns":25000000,"max_ns":31000000},
		{"engine":"cache","flight":"2","count":100,"cache_hits":100}]}`)
	serve("/metrics/history", `{"samples":[{"unix_nano":1,"values":{"ssb_queries_total":4000}},
		{"unix_nano":2000000001,"values":{"ssb_queries_total":4085}}],
		"rates":{"ssb_queries_total":42.5,"ssb_query_errors_total":0.5,"ssb_wal_fsyncs_total":21},
		"types":{"ssb_queries_total":"counter"}}`)
	serve("/debug/queries", `{"count":3,"queries":[
		{"seq":3,"query":"3.2","engine":"cache","cached":true},
		{"seq":2,"query":"1.1","engine":"fused","wait_ns":2000,"exec_ns":1500000},
		{"seq":1,"query":"4.1","engine":"fused","error":"context canceled","exec_ns":90000}]}`)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &client{base: ts.URL, http: ts.Client()}
	snap, err := c.fetch(10, 60)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, ts.URL, snap)
	out := buf.String()

	for _, want := range []string{
		"up 2m05s", "goroutines 12", "in-flight 3",
		"qps 42.5", "wal fsync/s 21",
		"total 5000", "24% hit",
		"512.0KB / 1.0MB resident", "90.0% hit", "pinned 2",
		"ws pending 640 rows", "wal syncs 42",
		"900 queries (799 runs, 100 cached, 1 errors)",
		"p50 1.50ms", "p99 30.00ms",
		"fused", "flight", // the engine×flight table
		"1.1", "cached", "ERR context canceled",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered dashboard lacks %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatal("render emitted ANSI control sequences (screen control belongs to live mode only)")
	}
}

// TestAgainstRealServer is the end-to-end -once path: a live server.Server
// handles real queries, then one fetch+render must succeed and reflect
// the traffic. This is exactly what CI's `ssb-top -once` smoke exercises.
func TestAgainstRealServer(t *testing.T) {
	db := core.OpenData(ssb.Generate(0.01))
	srv, err := server.New(db, server.Options{HistoryInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, id := range []string{"1.1", "2.2", "1.1"} {
		resp, err := ts.Client().Get(ts.URL + "/query?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: status %d", id, resp.StatusCode)
		}
	}

	c := &client{base: ts.URL, http: ts.Client()}
	snap, err := c.fetch(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, ts.URL, snap)
	out := buf.String()
	for _, want := range []string{"total 3", "cached", "fused"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard against live server lacks %q\n%s", want, out)
		}
	}
	if snap.stats.Server.Goroutines < 2 || snap.stats.Server.UptimeSeconds <= 0 {
		t.Fatalf("liveness basics: %+v", snap.stats.Server)
	}
}
