// Command ssb-top is a terminal dashboard for a running ssb-serve: it
// polls /stats, /debug/summary, and /metrics/history and renders live
// qps, latency percentiles per engine×flight, buffer-pool residency and
// hit ratio, write-store pending, and WAL fsync rate.
//
// Usage:
//
//	ssb-top -addr http://127.0.0.1:8080
//	ssb-top -addr http://127.0.0.1:8080 -once      # one snapshot, no screen control (CI)
//	ssb-top -interval 5s -n 15 -window 300
//
// -once prints a single snapshot and exits zero on success — the CI serve
// job uses it as a smoke test that the whole observability read path
// (stats, recorder summary, metrics history) is live and parseable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the ssb-serve instance")
	interval := flag.Duration("interval", 2*time.Second, "poll cadence in live mode")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	n := flag.Int("n", 10, "recent queries to show")
	window := flag.Float64("window", 60, "summary window in seconds")
	flag.Parse()

	c := &client{base: strings.TrimRight(*addr, "/"), http: &http.Client{Timeout: 10 * time.Second}}
	if *once {
		snap, err := c.fetch(*n, *window)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssb-top:", err)
			os.Exit(1)
		}
		render(os.Stdout, c.base, snap)
		return
	}
	for {
		snap, err := c.fetch(*n, *window)
		// Live mode: clear, home, render. An error renders in place of the
		// dashboard so a restarting server shows up as such, not as an exit.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("ssb-top: %s unreachable: %v\n", c.base, err)
		} else {
			render(os.Stdout, c.base, snap)
		}
		time.Sleep(*interval)
	}
}

// client polls one ssb-serve instance.
type client struct {
	base string
	http *http.Client
}

// statsPayload mirrors the fields of /stats the dashboard reads (the
// endpoint carries more; unknown fields are ignored on purpose so ssb-top
// keeps working across server versions).
type statsPayload struct {
	Server struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
		Queries       int64   `json:"queries"`
		Errors        int64   `json:"errors"`
		InFlight      int64   `json:"in_flight"`
		CacheHits     int64   `json:"cache_hits"`
		CacheMisses   int64   `json:"cache_misses"`
		CacheEntries  int     `json:"cache_entries"`
		AdmitWaits    int64   `json:"admit_waits"`
		AdmitRejects  int64   `json:"admit_rejects"`
		AdmitBytes    int64   `json:"admit_bytes"`
		Delta         struct {
			PendingRows  int64 `json:"pending_rows"`
			PendingBytes int64 `json:"pending_bytes"`
		} `json:"delta"`
		WAL struct {
			Syncs    int64 `json:"syncs"`
			Appended int64 `json:"appended"`
		} `json:"wal"`
	} `json:"server"`
	Pool *struct {
		Budget          int64 `json:"budget"`
		Hits            int64 `json:"hits"`
		Misses          int64 `json:"misses"`
		Evictions       int64 `json:"evictions"`
		Resident        int64 `json:"resident"`
		ResidentLogical int64 `json:"resident_logical"`
		Pinned          int   `json:"pinned_frames"`
	} `json:"pool"`
}

// summaryPayload mirrors /debug/summary.
type summaryPayload struct {
	WindowNs  int64 `json:"window_ns"`
	Count     int   `json:"count"`
	Errors    int   `json:"errors"`
	CacheHits int   `json:"cache_hits"`
	Runs      int   `json:"runs"`
	P50Ns     int64 `json:"p50_ns"`
	P95Ns     int64 `json:"p95_ns"`
	P99Ns     int64 `json:"p99_ns"`
	Groups    []struct {
		Engine string `json:"engine"`
		Flight string `json:"flight"`
		Count  int    `json:"count"`
		Runs   int    `json:"runs"`
		P50Ns  int64  `json:"p50_ns"`
		P95Ns  int64  `json:"p95_ns"`
		P99Ns  int64  `json:"p99_ns"`
		MaxNs  int64  `json:"max_ns"`
	} `json:"groups"`
}

// historyPayload mirrors /metrics/history.
type historyPayload struct {
	Samples []struct {
		UnixNano int64              `json:"unix_nano"`
		Values   map[string]float64 `json:"values"`
	} `json:"samples"`
	Rates map[string]float64 `json:"rates"`
	Types map[string]string  `json:"types"`
}

// queriesPayload mirrors /debug/queries.
type queriesPayload struct {
	Count   int `json:"count"`
	Queries []struct {
		Query  string `json:"query"`
		Engine string `json:"engine"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
		WaitNs int64  `json:"wait_ns"`
		ExecNs int64  `json:"exec_ns"`
	} `json:"queries"`
}

// snapshot is one poll of all four endpoints.
type snapshot struct {
	stats   statsPayload
	summary summaryPayload
	history historyPayload
	queries queriesPayload
}

func (c *client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("GET %s: %w", path, err)
	}
	return nil
}

func (c *client) fetch(n int, window float64) (*snapshot, error) {
	s := &snapshot{}
	if err := c.get("/stats", &s.stats); err != nil {
		return nil, err
	}
	if err := c.get(fmt.Sprintf("/debug/summary?window=%g", window), &s.summary); err != nil {
		return nil, err
	}
	// sample=1 forces a fresh registry reading so rates are current even
	// when the server's background cadence is long.
	if err := c.get("/metrics/history?sample=1", &s.history); err != nil {
		return nil, err
	}
	if err := c.get(fmt.Sprintf("/debug/queries?n=%d", n), &s.queries); err != nil {
		return nil, err
	}
	return s, nil
}

// render writes the dashboard to w. It is the only output path — main
// injects os.Stdout, tests inject a buffer.
func render(w io.Writer, base string, s *snapshot) {
	sv := &s.stats.Server
	fmt.Fprintf(w, "ssb-top  %s  up %s  goroutines %d  in-flight %d\n",
		base, fmtDur(time.Duration(sv.UptimeSeconds*float64(time.Second))), sv.Goroutines, sv.InFlight)

	qps := s.history.Rates["ssb_queries_total"]
	eps := s.history.Rates["ssb_query_errors_total"]
	fsync := s.history.Rates["ssb_wal_fsyncs_total"]
	fmt.Fprintf(w, "rates    qps %.1f  errors/s %.2f  wal fsync/s %.1f\n", qps, eps, fsync)

	hitRatio := 0.0
	if tot := sv.CacheHits + sv.CacheMisses; tot > 0 {
		hitRatio = float64(sv.CacheHits) / float64(tot)
	}
	fmt.Fprintf(w, "queries  total %d  errors %d  cache %d/%d (%.0f%% hit, %d entries)  admit waits %d rejects %d\n",
		sv.Queries, sv.Errors, sv.CacheHits, sv.CacheMisses, 100*hitRatio, sv.CacheEntries, sv.AdmitWaits, sv.AdmitRejects)

	if p := s.stats.Pool; p != nil {
		poolRatio := 0.0
		if tot := p.Hits + p.Misses; tot > 0 {
			poolRatio = float64(p.Hits) / float64(tot)
		}
		fmt.Fprintf(w, "pool     %s / %s resident (%s logical)  %.1f%% hit  evictions %d  pinned %d\n",
			fmtBytes(p.Resident), fmtBytes(p.Budget), fmtBytes(p.ResidentLogical), 100*poolRatio, p.Evictions, p.Pinned)
	}
	if sv.Delta.PendingRows > 0 || sv.WAL.Syncs > 0 {
		fmt.Fprintf(w, "ingest   ws pending %d rows / %s  wal syncs %d\n",
			sv.Delta.PendingRows, fmtBytes(sv.Delta.PendingBytes), sv.WAL.Syncs)
	}

	sum := &s.summary
	fmt.Fprintf(w, "\nlast %s  %d queries (%d runs, %d cached, %d errors)  p50 %s  p95 %s  p99 %s\n",
		fmtDur(time.Duration(sum.WindowNs)), sum.Count, sum.Runs, sum.CacheHits, sum.Errors,
		fmtNs(sum.P50Ns), fmtNs(sum.P95Ns), fmtNs(sum.P99Ns))
	if len(sum.Groups) > 0 {
		fmt.Fprintf(w, "%-11s %-7s %6s %10s %10s %10s %10s\n", "engine", "flight", "runs", "p50", "p95", "p99", "max")
		groups := sum.Groups
		sort.SliceStable(groups, func(i, j int) bool { return groups[i].Count > groups[j].Count })
		for _, g := range groups {
			fmt.Fprintf(w, "%-11s %-7s %6d %10s %10s %10s %10s\n",
				g.Engine, g.Flight, g.Runs, fmtNs(g.P50Ns), fmtNs(g.P95Ns), fmtNs(g.P99Ns), fmtNs(g.MaxNs))
		}
	}

	if len(s.queries.Queries) > 0 {
		fmt.Fprintf(w, "\nrecent queries (newest first)\n")
		for _, q := range s.queries.Queries {
			status := "ok"
			switch {
			case q.Error != "":
				status = "ERR " + q.Error
			case q.Cached:
				status = "cached"
			}
			fmt.Fprintf(w, "  %-8s %-10s wait %-9s exec %-9s %s\n",
				q.Query, q.Engine, fmtNs(q.WaitNs), fmtNs(q.ExecNs), status)
		}
	}
}

// fmtNs renders a nanosecond latency human-first.
func fmtNs(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%dns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

// fmtBytes renders a byte count human-first.
func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "0B"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

// fmtDur renders an uptime/window duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}
