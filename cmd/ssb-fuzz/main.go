// Command ssb-fuzz is the standing cross-engine differential fuzzer: it
// generates seeded random ad-hoc queries over the SSBM schema, runs each
// one through every engine that executes ad-hoc plans — the brute-force
// reference, the per-probe column pipeline, the fused morsel-parallel
// pipeline at 1 and 8 workers, and the row-store designs — and fails on any
// divergence in results or in the fused pipeline's worker-count-invariant
// I/O accounting.
//
// Usage:
//
//	ssb-fuzz [-sf 0.01] [-n 200] [-seed 1] [-heavy] [-v]
//
// Every failure prints the query's seed and its SQL rendering; reproduce
// with
//
//	ssb-fuzz -seed <seed> -n 1
//	ssb-query -sql '<printed SQL>' -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/rowexec"
	"repro/internal/sql"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.01, "SSBM scale factor")
	n := flag.Int("n", 200, "number of random queries")
	seed := flag.Int64("seed", 1, "base seed (query i uses seed+i)")
	heavy := flag.Bool("heavy", false, "run the bitmap/VP/AI row designs on every query instead of a rotating subset")
	verbose := flag.Bool("v", false, "print every query")
	flag.Parse()

	fmt.Printf("generating SSBM data at SF=%g...\n", *sf)
	data := ssb.Generate(*sf)
	dbc := exec.BuildDB(data, true)
	sx := rowexec.Build(data, rowexec.BuildOptions{VP: true, Indexes: true, Bitmaps: true})

	failures, nonEmpty := 0, 0
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		q := ssb.RandQuery(s)
		text := q.SQL()
		if *verbose {
			fmt.Printf("[%d] seed=%d %s\n", i, s, text)
		}
		want := ssb.Reference(data, q)
		if len(want.Rows) > 0 && (len(q.GroupBy) > 0 || want.Rows[0].AggValues()[0] != 0) {
			nonEmpty++
		}

		fail := func(label, detail string) {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL seed=%d engine=%s\n  SQL: %s\n  %s\n", s, label, text, detail)
		}
		check := func(label string, got *ssb.Result) {
			if !got.Equal(want) {
				fail(label, want.Diff(got))
			}
		}

		// SQL round-trip through the frontend.
		parsed, err := sql.Parse(q.ID, text)
		if err != nil {
			fail("sql-parse", err.Error())
		} else {
			check("sql-roundtrip", ssb.Reference(data, parsed))
		}

		check("column per-probe", dbc.Run(q, exec.FullOpt, nil))

		cfg1, cfg8 := exec.FusedOpt, exec.FusedOpt
		cfg1.Workers, cfg8.Workers = 1, 8
		var st1, st8 iosim.Stats
		check("fused workers=1", dbc.Run(q, cfg1, &st1))
		check("fused workers=8", dbc.Run(q, cfg8, &st8))
		if st1 != st8 {
			fail("fused-io-accounting", fmt.Sprintf("workers=1 %+v vs workers=8 %+v", st1, st8))
		}

		check("rowexec T", sx.Run(q, rowexec.Traditional, nil))
		if *heavy || i%4 == 0 {
			check("rowexec T(B)", sx.Run(q, rowexec.TraditionalBitmap, nil))
		}
		if *heavy || i%4 == 1 {
			check("rowexec VP", sx.Run(q, rowexec.VerticalPartitioning, nil))
		}
		if *heavy || i%4 == 2 {
			check("rowexec AI", sx.Run(q, rowexec.AllIndexes, nil))
		}
	}

	fmt.Printf("ran %d queries (%d with non-empty results) against 7+ engine paths: %d failure(s)\n",
		*n, nonEmpty, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
