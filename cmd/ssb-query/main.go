// Command ssb-query runs one SSBM query against a chosen system and prints
// the result rows alongside measured CPU time, simulated I/O and the
// combined paper-comparable time.
//
// Usage:
//
//	ssb-query [-sf 0.1] -q 2.1 -system CS
//
// Systems: CS (full column store), CS-FUSED (fused morsel-parallel
// pipeline, see PERFORMANCE.md), CS:<code> (Figure 7 configuration such
// as Ticl), CS-ROWMV, RS (traditional), RS-TB, RS-MV, RS-VP, RS-AI,
// PJ-NOC, PJ-INTC, PJ-MAXC.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/datafile"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/sql"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSBM scale factor")
	dataPath := flag.String("data", "", "load the dataset from this file (written by ssb-gen -out) instead of generating")
	queryID := flag.String("q", "2.1", "SSBM query id (1.1 .. 4.3)")
	sqlText := flag.String("sql", "", "ad-hoc SQL in the SSBM dialect (overrides -q); supports any dimension/measure predicates, group-by sets and sum/count/min/max aggregate lists")
	system := flag.String("system", "CS", "system under test (see doc comment)")
	workers := flag.Int("workers", 0, "column-store worker count (0 = single-threaded)")
	verify := flag.Bool("verify", false, "also check against the brute-force reference")
	explain := flag.Bool("explain", false, "print the physical plan instead of executing")
	fuzzSeed := flag.Int64("fuzz-seed", 0, "run the seeded random query with this seed (overrides -q and -sql; see ssb-fuzz)")
	flag.Parse()

	cfg, err := parseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Kind == core.KindColumn && *workers > 0 {
		cfg.Col.Workers = *workers
	}

	db, err := openDB(*dataPath, *sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var res *ssb.Result
	var stats core.RunStats
	var plan *ssb.Query
	if *fuzzSeed != 0 {
		plan = ssb.RandQuery(*fuzzSeed)
		fmt.Printf("sql=%s\n", plan.SQL())
	} else if *sqlText != "" {
		plan, err = sql.Parse("adhoc", *sqlText)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		plan = ssb.QueryByID(*queryID)
		if plan == nil {
			fmt.Fprintf(os.Stderr, "unknown SSBM query %q\n", *queryID)
			os.Exit(2)
		}
	}
	if *explain {
		text, err := db.ExplainPlan(plan, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(text)
		return
	}
	res, stats, err = db.RunPlan(plan, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("system=%s sf=%g\n", cfg.Label(), *sf)
	fmt.Printf("engine=%s\n", cfg.Engine())
	fmt.Print(res.String())
	fmt.Printf("cpu=%v  io=%.1fMB (%d seeks)  io-time=%v  total=%v\n",
		stats.Wall, float64(stats.IO.BytesRead)/1e6, stats.IO.Seeks, stats.IOTime, stats.Total)

	if *verify {
		want := ssb.Reference(db.Data, plan)
		if !res.Equal(want) {
			fmt.Fprintf(os.Stderr, "result diverges from reference:\n%s\n", want.Diff(res))
			os.Exit(1)
		}
		fmt.Println("verified against reference")
	}
}

// openDB loads a saved dataset or generates one.
func openDB(path string, sf float64) (*core.DB, error) {
	if path == "" {
		return core.Open(sf), nil
	}
	d, err := datafile.Load(path)
	if err != nil {
		return nil, err
	}
	return core.OpenData(d), nil
}

// parseSystem maps a CLI name to a core.Config.
func parseSystem(s string) (core.Config, error) {
	u := strings.ToUpper(s)
	switch u {
	case "CS":
		return core.ColumnStore(exec.FullOpt), nil
	case "CS-FUSED":
		return core.ColumnStore(exec.FusedOpt), nil
	case "CS-ROWMV":
		return core.RowMV(), nil
	case "RS":
		return core.RowStore(rowexec.Traditional), nil
	case "RS-TB":
		return core.RowStore(rowexec.TraditionalBitmap), nil
	case "RS-MV":
		return core.RowStore(rowexec.MaterializedViews), nil
	case "RS-VP":
		return core.RowStore(rowexec.VerticalPartitioning), nil
	case "RS-AI":
		return core.RowStore(rowexec.AllIndexes), nil
	case "RS-NOPART":
		return core.Config{Kind: core.KindRow, Design: rowexec.Traditional}, nil
	case "PJ-NOC":
		return core.Denormalized(exec.DenormNoC), nil
	case "PJ-INTC":
		return core.Denormalized(exec.DenormIntC), nil
	case "PJ-MAXC":
		return core.Denormalized(exec.DenormMaxC), nil
	}
	if strings.HasPrefix(u, "CS:") {
		code := s[len("CS:"):]
		if len(code) != 4 {
			return core.Config{}, fmt.Errorf("bad CS code %q (want e.g. tICL)", code)
		}
		cfg := exec.Config{
			BlockIter:     code[0] == 't',
			InvisibleJoin: code[1] == 'I',
			Compression:   code[2] == 'C',
			LateMat:       code[3] == 'L',
		}
		return core.ColumnStore(cfg), nil
	}
	return core.Config{}, fmt.Errorf("unknown system %q", s)
}
