// Command ssb-query runs one SSBM query against a chosen system and prints
// the result rows alongside measured CPU time, simulated I/O and the
// combined paper-comparable time.
//
// Usage:
//
//	ssb-query [-sf 0.1] -q 2.1 -system CS
//	ssb-query -data ssb.seg -mem-budget 16 -q 2.1 -system CS-FUSED
//	ssb-query -data ssb.seg -golden internal/core/testdata/golden_sf001.json
//
// -data accepts both on-disk formats (sniffed by magic): a v1 raw dump
// loads wholesale and serves every system; a segment store (.seg) serves
// the compressed column-store systems through a buffer pool bounded by
// -mem-budget, printing pool hit/miss/eviction statistics after the run.
// -golden runs all 13 SSBM queries and checks every result against a
// pinned golden JSON file (the CI round-trip check for segment files).
//
// Systems: CS (full column store), CS-FUSED (fused morsel-parallel
// pipeline, see PERFORMANCE.md), CS:<code> (Figure 7 configuration such
// as Ticl), CS-ROWMV, RS (traditional), RS-TB, RS-MV, RS-VP, RS-AI,
// PJ-NOC, PJ-INTC, PJ-MAXC.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rowexec"
	"repro/internal/sql"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSBM scale factor")
	dataPath := flag.String("data", "", "load the dataset from this file (written by ssb-gen -out) instead of generating")
	queryID := flag.String("q", "2.1", "SSBM query id (1.1 .. 4.3)")
	sqlText := flag.String("sql", "", "ad-hoc SQL in the SSBM dialect (overrides -q); supports any dimension/measure predicates, group-by sets and sum/count/min/max aggregate lists")
	system := flag.String("system", "CS", "system under test (see doc comment)")
	workers := flag.Int("workers", 0, "column-store worker count (0 = single-threaded)")
	memBudget := flag.Float64("mem-budget", 0, "buffer-pool budget in MB for segment-store -data files (0 = unbounded)")
	golden := flag.String("golden", "", "run all 13 SSBM queries and check results against this golden JSON file")
	verify := flag.Bool("verify", false, "also check against the brute-force reference")
	explain := flag.Bool("explain", false, "print the physical plan; column-store systems then execute once and print a per-stage trace (EXPLAIN ANALYZE)")
	fuzzSeed := flag.Int64("fuzz-seed", 0, "run the seeded random query with this seed (overrides -q and -sql; see ssb-fuzz)")
	flag.Parse()

	cfg, err := parseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Kind == core.KindColumn && *workers > 0 {
		cfg.Col.Workers = *workers
	}

	db, err := openDB(*dataPath, *sf, int64(*memBudget*1e6))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *golden != "" {
		if err := checkGolden(db, cfg, *golden); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printPoolStats(db)
		fmt.Printf("golden check passed: 13/13 queries match %s under %s\n", *golden, cfg.Label())
		return
	}
	var res *ssb.Result
	var stats core.RunStats
	var plan *ssb.Query
	if *fuzzSeed != 0 {
		plan = ssb.RandQuery(*fuzzSeed)
		fmt.Printf("sql=%s\n", plan.SQL())
	} else if *sqlText != "" {
		plan, err = sql.Parse("adhoc", *sqlText)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		plan = ssb.QueryByID(*queryID)
		if plan == nil {
			fmt.Fprintf(os.Stderr, "unknown SSBM query %q\n", *queryID)
			os.Exit(2)
		}
	}
	if *explain {
		text, err := db.ExplainPlan(plan, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(text)
		if cfg.Kind == core.KindColumn {
			if err := explainAnalyze(db, plan, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	res, stats, err = db.RunPlan(plan, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("system=%s sf=%g\n", cfg.Label(), db.SF)
	fmt.Printf("engine=%s\n", cfg.Engine())
	fmt.Print(res.String())
	fmt.Printf("cpu=%v  io=%.1fMB (%d seeks)  io-time=%v  total=%v\n",
		stats.Wall, float64(stats.IO.BytesRead)/1e6, stats.IO.Seeks, stats.IOTime, stats.Total)
	printPoolStats(db)

	if *verify {
		want := ssb.Reference(db.Data, plan)
		if !res.Equal(want) {
			fmt.Fprintf(os.Stderr, "result diverges from reference:\n%s\n", want.Diff(res))
			os.Exit(1)
		}
		fmt.Println("verified against reference")
	}
}

// explainAnalyze executes the plan once with a trace attached and prints
// the per-stage table — the dynamic half of -explain for the column
// engines. On segment-backed stores it also cross-checks the trace against
// the buffer pool: the trace's block-fetch total must equal the pool's
// acquire delta (hits+misses) for the run, evidence that the stage counters
// describe the I/O that actually happened rather than a parallel estimate.
func explainAnalyze(db *core.DB, plan *ssb.Query, cfg core.Config) error {
	var h0, m0 int64
	seg := db.SegmentStore()
	if seg != nil {
		ps := seg.Pool().Stats()
		h0, m0 = ps.Hits, ps.Misses
	}
	tr := &obs.Trace{}
	res, stats, err := db.RunPlanCtx(obs.WithTrace(context.Background(), tr), plan, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nEXPLAIN ANALYZE  engine=%s workers=%d rows=%d\n", tr.Engine, tr.Workers, len(res.Rows))
	tr.Render(os.Stdout)
	fmt.Printf("cpu=%v  io=%.1fMB (%d seeks)  total=%v\n",
		stats.Wall, float64(stats.IO.BytesRead)/1e6, stats.IO.Seeks, stats.Total)
	if seg != nil {
		ps := seg.Pool().Stats()
		acquires := (ps.Hits - h0) + (ps.Misses - m0)
		tot := tr.Totals()
		status := "exact"
		if tot.BlocksFetched != acquires {
			status = "MISMATCH"
		}
		fmt.Printf("reconcile: trace blocks fetched=%d, pool acquires (hit+miss delta)=%d [%s]\n",
			tot.BlocksFetched, acquires, status)
	}
	return nil
}

// openDB loads a saved dataset (either format, sniffed) or generates one.
func openDB(path string, sf float64, memBudget int64) (*core.DB, error) {
	if path == "" {
		return core.Open(sf), nil
	}
	return core.OpenFile(path, memBudget)
}

// printPoolStats reports buffer-pool activity for segment-backed DBs.
func printPoolStats(db *core.DB) {
	st := db.SegmentStore()
	if st == nil {
		return
	}
	ps := st.Pool().Stats()
	budget := "unbounded"
	if st.Pool().Budget() > 0 {
		budget = fmt.Sprintf("%.1fMB", float64(st.Pool().Budget())/1e6)
	}
	fmt.Printf("pool: budget=%s hits=%d misses=%d evictions=%d disk-read=%.1fMB resident=%.1fMB peak=%.1fMB (%d segment fetches, file has %d segments)\n",
		budget, ps.Hits, ps.Misses, ps.Evictions, float64(ps.BytesRead)/1e6,
		float64(ps.Resident)/1e6, float64(ps.Peak)/1e6, ps.Misses, st.NumSegments())
}

// goldenRow mirrors the golden file's row schema (see internal/core's
// golden tests, which write the file).
type goldenRow struct {
	Keys []string `json:"keys,omitempty"`
	Aggs []int64  `json:"aggs"`
}

// checkGolden runs all 13 SSBM queries under cfg and compares each result
// with the pinned golden rows.
func checkGolden(db *core.DB, cfg core.Config, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading golden file: %w", err)
	}
	var g map[string][]goldenRow
	if err := json.Unmarshal(raw, &g); err != nil {
		return fmt.Errorf("golden file corrupt: %w", err)
	}
	for _, q := range ssb.Queries() {
		want, ok := g[q.ID]
		if !ok {
			return fmt.Errorf("golden file has no entry for query %s", q.ID)
		}
		res, _, err := db.RunPlan(q, cfg)
		if err != nil {
			return fmt.Errorf("Q%s: %w", q.ID, err)
		}
		if len(res.Rows) != len(want) {
			return fmt.Errorf("Q%s: %d rows, golden has %d", q.ID, len(res.Rows), len(want))
		}
		for i, w := range want {
			r := res.Rows[i]
			if fmt.Sprint(w.Keys) != fmt.Sprint(r.Keys) || fmt.Sprint(w.Aggs) != fmt.Sprint(r.AggValues()) {
				return fmt.Errorf("Q%s row %d: got %v=%v, golden %v=%v", q.ID, i, r.Keys, r.AggValues(), w.Keys, w.Aggs)
			}
		}
	}
	return nil
}

// parseSystem maps a CLI name to a core.Config.
func parseSystem(s string) (core.Config, error) {
	u := strings.ToUpper(s)
	switch u {
	case "CS":
		return core.ColumnStore(exec.FullOpt), nil
	case "CS-FUSED":
		return core.ColumnStore(exec.FusedOpt), nil
	case "CS-ROWMV":
		return core.RowMV(), nil
	case "RS":
		return core.RowStore(rowexec.Traditional), nil
	case "RS-TB":
		return core.RowStore(rowexec.TraditionalBitmap), nil
	case "RS-MV":
		return core.RowStore(rowexec.MaterializedViews), nil
	case "RS-VP":
		return core.RowStore(rowexec.VerticalPartitioning), nil
	case "RS-AI":
		return core.RowStore(rowexec.AllIndexes), nil
	case "RS-NOPART":
		return core.Config{Kind: core.KindRow, Design: rowexec.Traditional}, nil
	case "PJ-NOC":
		return core.Denormalized(exec.DenormNoC), nil
	case "PJ-INTC":
		return core.Denormalized(exec.DenormIntC), nil
	case "PJ-MAXC":
		return core.Denormalized(exec.DenormMaxC), nil
	}
	if strings.HasPrefix(u, "CS:") {
		code := s[len("CS:"):]
		if len(code) != 4 {
			return core.Config{}, fmt.Errorf("bad CS code %q (want e.g. tICL)", code)
		}
		cfg := exec.Config{
			BlockIter:     code[0] == 't',
			InvisibleJoin: code[1] == 'I',
			Compression:   code[2] == 'C',
			LateMat:       code[3] == 'L',
		}
		return core.ColumnStore(cfg), nil
	}
	return core.Config{}, fmt.Errorf("unknown system %q", s)
}
