// Command ssb-gen generates an SSBM dataset and reports its shape: table
// cardinalities, storage footprints under each physical design, per-column
// encodings, and measured vs published query selectivities.
//
// Usage:
//
//	ssb-gen [-sf 0.1] [-verify] [-encodings]
//	ssb-gen -sf 1 -out ssb_sf1.seg     # compressed segment store
//	ssb-gen -sf 1 -out ssb_sf1.dat     # v1 raw columnar dump
//	ssb-gen -append 100000 -seed 7 -out ssb_sf1.seg  # append seeded rows
//	                                   # to an existing segment store via
//	                                   # the write path (WS -> compaction)
//
// -out writes one of two formats, chosen by extension (override with
// -format): files ending in .seg get the segment-store format — the
// physical compressed column layout with per-segment zone maps, which
// ssb-query/ssb-bench scan lazily through a buffer pool under -mem-budget —
// while anything else gets the v1 raw dump, which loads wholesale and
// serves every engine family (row stores, denormalized tables, ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/datafile"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
	"repro/internal/wal"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSBM scale factor (paper uses 10)")
	out := flag.String("out", "", "write the generated dataset to this file (.seg -> segment store, else v1 raw dump)")
	format := flag.String("format", "", "force the -out format: v1 or seg (default: by file extension)")
	verify := flag.Bool("verify", false, "check measured selectivities against the paper's published values")
	encodings := flag.Bool("encodings", false, "print per-column encodings of the compressed column store")
	appendRows := flag.Int("append", 0, "append this many seeded fact rows to the existing -out .seg file via the write path (no regeneration)")
	appendSeed := flag.Int64("seed", 1, "seed for -append row generation")
	walPath := flag.String("wal", "", "with -append: route the batch through a write-ahead log at this path (durable ingest; replays any leftover log first)")
	flag.Parse()

	if *appendRows > 0 {
		if err := appendToSeg(*out, *appendRows, *appendSeed, *walPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("Generating SSBM at SF=%g ...\n", *sf)
	d := ssb.Generate(*sf)
	if *out != "" {
		if err := save(*out, *format, d, *sf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if fi, err := os.Stat(*out); err == nil {
			fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(fi.Size())/1e6)
		}
	}
	fmt.Printf("  lineorder: %10d rows\n", d.NumLineorders())
	fmt.Printf("  customer:  %10d rows\n", len(d.Customer.Key))
	fmt.Printf("  supplier:  %10d rows\n", len(d.Supplier.Key))
	fmt.Printf("  part:      %10d rows\n", len(d.Part.Key))
	fmt.Printf("  dwdate:    %10d rows\n", d.NumDates())

	col := exec.BuildDB(d, true)
	colPlain := exec.BuildDB(d, false)
	fmt.Printf("\nColumn-store fact table: %.1f MB compressed, %.1f MB raw (%.2fx)\n",
		mb(col.Fact.CompressedBytes()), mb(colPlain.Fact.CompressedBytes()),
		float64(colPlain.Fact.CompressedBytes())/float64(col.Fact.CompressedBytes()))

	sx := rowexec.Build(d, rowexec.BuildOptions{MVs: true, VP: true})
	fmt.Printf("Row-store fact heap:     %.1f MB (%d pages)\n", mb(sx.Fact.HeapBytes()), sx.Fact.NumPages())
	var vpBytes int64
	for _, vt := range sx.VP {
		vpBytes += vt.HeapBytes()
	}
	fmt.Printf("Vertical partitions:     %.1f MB across %d column-tables\n", mb(vpBytes), len(sx.VP))
	for f := 1; f <= 4; f++ {
		fmt.Printf("MV flight %d:             %.1f MB (%v)\n", f, mb(sx.MVs[f].HeapBytes()), ssb.FlightMVColumns(f))
	}

	if *encodings {
		fmt.Println("\nPer-column encodings (compressed column store):")
		for _, line := range col.Fact.EncodingSummary() {
			fmt.Println("  " + line)
		}
	}

	if *verify {
		fmt.Println("\nSelectivity check (measured vs paper Section 3):")
		bad := 0
		for _, q := range ssb.Queries() {
			got := ssb.Selectivity(d, q)
			fmt.Printf("  Q%-4s measured %.3e   paper %.3e\n", q.ID, got, q.PaperSelectivity)
			expectRows := q.PaperSelectivity * float64(d.NumLineorders())
			if expectRows >= 20 && (got > q.PaperSelectivity*2.5 || got < q.PaperSelectivity/2.5) {
				bad++
			}
		}
		if bad > 0 {
			fmt.Printf("%d queries out of tolerance\n", bad)
			os.Exit(1)
		}
		fmt.Println("all selectivities within tolerance")
	}
}

func mb(b int64) float64 { return float64(b) / 1e6 }

// appendToSeg exercises the full write path from the CLI: open an existing
// segment file, push a seeded batch through the write store, and flush so
// the tuple mover compacts everything — full 64K-row blocks plus a final
// partial tail — back into the file. With walPath set the batch is logged
// and group-committed before it is acked, and a leftover log from a crashed
// earlier run is replayed into the write store before the new rows land.
func appendToSeg(path string, rows int, seed int64, walPath string) error {
	if path == "" {
		return fmt.Errorf("ssb-gen: -append needs -out pointing at an existing .seg file")
	}
	db, err := core.OpenFile(path, 0)
	if err != nil {
		return err
	}
	st := db.SegmentStore()
	if st == nil {
		return fmt.Errorf("ssb-gen: -append works on segment stores only; %s is a v1 raw dump", path)
	}
	before := db.ColumnDB(true).NumRows()
	if err := db.EnableIngestWAL(false, 0, walPath, wal.Options{}); err != nil {
		return err
	}
	shape, err := db.IngestShape()
	if err != nil {
		return err
	}
	batch, err := ssb.RandBatch(seed, rows, shape)
	if err != nil {
		return err
	}
	if _, err := db.Insert(batch); err != nil {
		return err
	}
	if err := db.FlushIngest(); err != nil {
		return err
	}
	ds := db.IngestStats()
	ps := st.Pool().Stats()
	fmt.Printf("appended %d rows (seed %d) to %s: %d -> %d rows, %d compaction passes, %.2f MB written, %d live segments\n",
		rows, seed, path, before, db.ColumnDB(true).NumRows(), ds.Compactions,
		float64(ps.AppendedBytes)/1e6, st.NumSegments())
	if walPath != "" {
		ws := db.WALStats()
		fmt.Printf("wal: %d appends, %d fsyncs, %d replayed, %d bytes\n",
			ws.Appends, ws.Syncs, ws.Replayed, ws.Bytes)
		if err := db.CloseWAL(); err != nil {
			return err
		}
	}
	if fi, err := os.Stat(path); err == nil {
		fmt.Printf("file is now %.1f MB\n", float64(fi.Size())/1e6)
	}
	return st.Close()
}

// save writes the dataset in the requested format: "seg" builds the
// compressed physical column store and persists it as a zone-mapped segment
// file; "v1" (the back-compatible default) dumps the raw logical columns.
func save(path, format string, d *ssb.Data, sf float64) error {
	if format == "" {
		if strings.HasSuffix(path, ".seg") {
			format = "seg"
		} else {
			format = "v1"
		}
	}
	switch format {
	case "v1":
		return datafile.Save(path, d)
	case "seg":
		db := exec.BuildDB(d, true)
		return exec.SaveSegments(path, sf, db)
	default:
		return fmt.Errorf("unknown -format %q (want v1 or seg)", format)
	}
}
