// Command ssb-serve exposes one shared, buffer-managed SSBM database to
// concurrent clients over HTTP JSON.
//
// Usage:
//
//	ssb-serve -data ssb.seg -mem-budget 2 -addr :8080
//	ssb-serve -sf 0.05 -workers 4
//	ssb-serve -data ssb.seg -mem-budget 1 -golden internal/core/testdata/golden_sf001.json -clients 8
//
// Endpoints:
//
//	GET/POST /query    one of id= (SSBM query id), sql= (SSBM dialect), or
//	                   seed= (seeded random plan); returns rows + per-query
//	                   cost (admission wait, CPU, logical I/O, total).
//	                   trace=1 adds a per-stage execution trace to the
//	                   response (cache hits carry none).
//	GET      /stats    server counters (cache, admission, logical I/O
//	                   totals) and buffer-pool state.
//	GET      /metrics  Prometheus text exposition: query/cache/ingest
//	                   counters, pool and write-store gauges, admission-wait
//	                   and execution-latency histograms.
//
// -slow-ms N logs one compact trace line for every query slower than N
// milliseconds; -access-log logs one line per HTTP request. Both are off by
// default so benchmark serving pays nothing.
//
// Every request executes under its own context — a client that disconnects
// abandons its query at the next 64K-row block boundary, releasing all
// pinned segments. Admission control bounds the estimated footprint of
// concurrently executing queries so heavy traffic cannot thrash a small
// buffer pool into livelock; repeated queries are answered from a
// normalized-SQL-keyed result cache.
//
// -golden runs the self-test used by CI instead of serving: it binds an
// ephemeral port, fires the 13-query golden suite from -clients parallel
// HTTP clients, verifies every response against the pinned golden file,
// checks that shutdown leaves zero pinned frames, and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSBM scale factor when generating (no -data)")
	dataPath := flag.String("data", "", "serve this dataset file (ssb-gen -out format, sniffed)")
	memBudget := flag.Float64("mem-budget", 0, "buffer-pool budget in MB for segment-store -data files (0 = unbounded)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "per-query fused worker count")
	admitMB := flag.Float64("admit-mb", 0, "admission budget in MB (0 = pool budget if bounded, else 256)")
	cacheEntries := flag.Int("cache", 256, "result cache capacity in entries (negative disables)")
	golden := flag.String("golden", "", "self-test: run the 13-query golden suite over HTTP against this golden JSON file, then exit")
	clients := flag.Int("clients", 8, "parallel clients for the -golden self-test")
	ingest := flag.Bool("ingest", false, "enable the write path: POST /insert, snapshot-isolated queries, background compaction into the segment store")
	ingestMB := flag.Float64("ingest-mb", 0, "write-store memory cap in MB (0 = 256 MB default; inserts past it get 503 backpressure)")
	walPath := flag.String("wal", "", "write-ahead log path (requires -ingest): inserts and deletes are durable before they are acked, and replayed on restart")
	walWindowMS := flag.Float64("wal-window-ms", 1, "group-commit window in milliseconds (0 = fsync per commit)")
	slowMS := flag.Float64("slow-ms", 0, "log a compact trace line for queries slower than this many milliseconds (0 disables)")
	accessLog := flag.Bool("access-log", false, "log one line per HTTP request (method, path, query selector, status, wait, latency)")
	debugAddr := flag.String("debug-addr", "", "opt-in debug listener (pprof + /debug/queries + /debug/summary + /metrics/history) on a separate address, e.g. 127.0.0.1:6060")
	flag.Parse()
	if *walPath != "" && !*ingest {
		fmt.Fprintln(os.Stderr, "-wal requires -ingest")
		os.Exit(2)
	}

	var db *core.DB
	var err error
	if *dataPath != "" {
		// Route the store's recovery diagnostics through the daemon's own
		// log line format; the note also stays queryable on /stats for
		// operators who join after startup.
		db, err = core.OpenFileWith(*dataPath, segstore.OpenOptions{
			MemBudget: int64(*memBudget * 1e6),
			Log: func(msg string) {
				fmt.Fprintf(os.Stderr, "ssb-serve: %s: %s\n", time.Now().Format(time.RFC3339), msg)
			},
		})
	} else {
		db = core.Open(*sf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cache := *cacheEntries
	if *golden != "" {
		// The self-test exists to exercise the shared engine under
		// parallel HTTP traffic; a warm cache would answer everything
		// after the first pass and verify nothing.
		cache = -1
	}
	srv, err := server.New(db, server.Options{
		Workers:        *workers,
		AdmitBytes:     int64(*admitMB * 1e6),
		CacheEntries:   cache,
		Ingest:         *ingest,
		IngestMaxBytes: int64(*ingestMB * 1e6),
		WALPath:        *walPath,
		WALWindow:      time.Duration(*walWindowMS * float64(time.Millisecond)),
		SlowQuery:      time.Duration(*slowMS * float64(time.Millisecond)),
		AccessLog:      *accessLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *golden != "" {
		if err := goldenSelfTest(db, srv, *golden, *clients, *ingest, *dataPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var ds *http.Server
	if *debugAddr != "" {
		// The debug surface gets its own listener so profiling and
		// debug-scrape traffic never competes with queries on the serving
		// port, and so operators can bind it loopback-only.
		ds = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "debug listener: %v\n", err)
			}
		}()
		fmt.Printf("debug listener: http://%s/debug/pprof/\n", *debugAddr)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if ds != nil {
			ds.Shutdown(ctx)
		}
		hs.Shutdown(ctx)
	}()

	fmt.Printf("ssb-serve: sf=%g engine=%s addr=%s\n", db.SF, srv.Config().Engine(), *addr)
	if st := db.SegmentStore(); st != nil {
		fmt.Printf("segment store: %s (%d segments, budget %s)\n",
			st.Path(), st.NumSegments(), budgetLabel(st.Pool().Budget()))
	}
	if *walPath != "" {
		ws := srv.DB().WALStats()
		fmt.Printf("wal: %s (group-commit window %gms, %d records replayed)\n",
			*walPath, *walWindowMS, ws.Replayed)
	}
	err = hs.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		// Startup failure (bad address, port in use): no drain to wait for.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// ErrServerClosed means the signal goroutine called Shutdown; wait for
	// it to finish draining in-flight responses before tearing down.
	<-drained
	// Close drains in-flight queries, then (with -ingest) stops the tuple
	// mover and flushes every pending delta row into the store — the
	// zero-unflushed-loss guarantee of a clean SIGTERM.
	pending := srv.DB().IngestStats().PendingRows
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "flush on shutdown failed: %v\n", err)
		os.Exit(1)
	}
	if *ingest {
		fmt.Printf("write store drained: %d pending rows flushed, %d total inserted\n",
			pending, srv.DB().Epoch())
	}
	printFinalStats(db, srv)
}

// budgetLabel renders a pool budget.
func budgetLabel(b int64) string {
	if b <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%.1fMB", float64(b)/1e6)
}

// printFinalStats summarizes a serving session on shutdown.
func printFinalStats(db *core.DB, srv *server.Server) {
	st := srv.Stats()
	fmt.Printf("served %d queries (%d errors), cache %d/%d hit/miss, %.1fMB logical read\n",
		st.Queries, st.Errors, st.CacheHits, st.CacheMisses, float64(st.Logical.BytesRead)/1e6)
	if seg := db.SegmentStore(); seg != nil {
		ps := seg.Pool().Stats()
		fmt.Printf("pool: hits=%d misses=%d evictions=%d disk-read=%.1fMB pinned=%d\n",
			ps.Hits, ps.Misses, ps.Evictions, float64(ps.BytesRead)/1e6, seg.Pool().PinnedFrames())
	}
}

// goldenRow mirrors the golden file's row schema (written by internal/core's
// golden tests; also read by ssb-query -golden).
type goldenRow struct {
	Keys []string `json:"keys,omitempty"`
	Aggs []int64  `json:"aggs"`
}

// goldenSelfTest serves on an ephemeral port and drives the golden suite
// through real HTTP from n parallel clients: gen -> serve -> parallel
// golden check -> clean shutdown, the CI smoke for the serving layer. With
// ingest enabled it then runs the write-path phase: concurrent /insert
// batches racing count(*) readers (each observed count must be a whole
// number of batches and monotone — the epoch snapshot guarantee over real
// HTTP), a drain that flushes every pending row, and a cold reopen of the
// data file proving zero unflushed-delta loss.
func goldenSelfTest(db *core.DB, srv *server.Server, goldenPath string, n int, ingest bool, dataPath string) error {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("reading golden file: %w", err)
	}
	var g map[string][]goldenRow
	if err := json.Unmarshal(raw, &g); err != nil {
		return fmt.Errorf("golden file corrupt: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("golden self-test: %d clients x 13 queries against %s\n", n, base)

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, q := range ssb.Queries() {
				want, ok := g[q.ID]
				if !ok {
					errs <- fmt.Errorf("golden file has no entry for query %s", q.ID)
					return
				}
				if err := checkOne(base, q.ID, want); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	select {
	case err := <-errs:
		return err
	default:
	}
	// The suite just executed 13*n queries; the scrape must parse as
	// Prometheus text and show them in the counters and histograms.
	if err := checkMetrics(base); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	fmt.Println("/metrics scrape: parseable, required families present")
	if err := checkDebugSurface(base, 13*n); err != nil {
		return fmt.Errorf("debug surface: %w", err)
	}
	fmt.Println("/debug/queries, /debug/summary, /metrics/history: consistent with the suite that just ran")

	var inserted int64
	if ingest {
		var err error
		if inserted, err = ingestSelfTest(base, n); err != nil {
			return fmt.Errorf("ingest phase: %w", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("drain/flush: %w", err)
	}

	select {
	case err := <-errs:
		return err
	default:
	}
	if seg := db.SegmentStore(); seg != nil {
		if p := seg.Pool().PinnedFrames(); p != 0 {
			return fmt.Errorf("%d frames still pinned after shutdown", p)
		}
	}
	if ingest {
		if ds := srv.DB().IngestStats(); ds.PendingRows != 0 {
			return fmt.Errorf("%d delta rows still unflushed after drain", ds.PendingRows)
		}
		// Cold reopen: every inserted row must be in the file.
		if dataPath != "" && db.SegmentStore() != nil {
			cold, err := core.OpenFile(dataPath, 0)
			if err != nil {
				return fmt.Errorf("reopening %s after drain: %w", dataPath, err)
			}
			got := cold.ColumnDB(true).NumRows()
			want := int(srv.DB().IngestStats().TotalRows)
			cold.SegmentStore().Close()
			if got != want {
				return fmt.Errorf("cold reopen of %s has %d rows, want %d (unflushed-delta loss)", dataPath, got, want)
			}
			fmt.Printf("cold reopen: %s holds all %d rows (%d inserted this run)\n", dataPath, got, inserted)
		}
	}
	st := srv.Stats()
	fmt.Printf("golden self-test passed: %d engine executions (cache disabled), clean shutdown, zero pinned frames\n",
		st.Queries)
	return nil
}

// checkMetrics scrapes /metrics and validates the exposition strictly
// enough that a real Prometheus scraper would accept it: every non-comment
// line is "name[{labels}] value" with a parseable float, every sample name
// was declared by a preceding # TYPE, the required families exist, and the
// query counter and latency histogram reflect the golden suite that just
// ran.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	declared := map[string]bool{}
	values := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			return fmt.Errorf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			declared[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value: %q", ln+1, line)
		}
		sample := line[:sp]
		name := sample
		if b := strings.IndexByte(sample, '{'); b >= 0 {
			if !strings.HasSuffix(sample, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = sample[:b]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suf); ok && declared[cut] {
				fam = cut
				break
			}
		}
		if !declared[fam] {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		values[sample] = v
	}
	for _, fam := range []string{
		"ssb_queries_total", "ssb_query_errors_total",
		"ssb_cache_hits_total", "ssb_cache_misses_total",
		"ssb_admission_rejects_total", "ssb_pool_evictions_total",
		"ssb_pool_resident_bytes", "ssb_pool_resident_logical_bytes",
		"ssb_pool_pinned_frames", "ssb_ws_pending_bytes",
		"ssb_query_duration_seconds", "ssb_admission_wait_seconds",
	} {
		if !declared[fam] {
			return fmt.Errorf("required family %s missing", fam)
		}
	}
	if values["ssb_queries_total"] <= 0 {
		return fmt.Errorf("ssb_queries_total is %g after the golden suite", values["ssb_queries_total"])
	}
	if values["ssb_query_duration_seconds_count"] != values["ssb_queries_total"] {
		return fmt.Errorf("duration histogram count %g != queries %g",
			values["ssb_query_duration_seconds_count"], values["ssb_queries_total"])
	}
	if values[`ssb_query_duration_seconds_bucket{le="+Inf"}`] != values["ssb_query_duration_seconds_count"] {
		return fmt.Errorf("+Inf bucket %g != histogram count %g",
			values[`ssb_query_duration_seconds_bucket{le="+Inf"}`], values["ssb_query_duration_seconds_count"])
	}
	return nil
}

// checkDebugSurface validates the flight-recorder and metrics-history
// endpoints against the golden suite that just ran: the recorder retains
// records in newest-first order, the summary's windowed counts cover the
// suite, and a forced history sample carries the query counter.
func checkDebugSurface(base string, ran int) error {
	var dq struct {
		Count   int `json:"count"`
		Queries []struct {
			Seq    int64  `json:"seq"`
			Query  string `json:"query"`
			Engine string `json:"engine"`
			ExecNs int64  `json:"exec_ns"`
		} `json:"queries"`
	}
	if err := getJSON(base+"/debug/queries?n=20", &dq); err != nil {
		return fmt.Errorf("/debug/queries: %w", err)
	}
	if dq.Count == 0 || dq.Count != len(dq.Queries) {
		return fmt.Errorf("/debug/queries: count %d vs %d records", dq.Count, len(dq.Queries))
	}
	for i, q := range dq.Queries {
		if q.Query == "" || q.Engine == "" || q.ExecNs <= 0 {
			return fmt.Errorf("/debug/queries: degenerate record %d: %+v", i, q)
		}
		if i > 0 && q.Seq >= dq.Queries[i-1].Seq {
			return fmt.Errorf("/debug/queries: records not newest-first at %d", i)
		}
	}
	var sum struct {
		Count int   `json:"count"`
		Runs  int   `json:"runs"`
		P50Ns int64 `json:"p50_ns"`
		P99Ns int64 `json:"p99_ns"`
	}
	if err := getJSON(base+"/debug/summary?window=600", &sum); err != nil {
		return fmt.Errorf("/debug/summary: %w", err)
	}
	if sum.Count < ran || sum.Runs < ran {
		return fmt.Errorf("/debug/summary: count=%d runs=%d after %d golden executions", sum.Count, sum.Runs, ran)
	}
	if sum.P50Ns <= 0 || sum.P99Ns < sum.P50Ns {
		return fmt.Errorf("/debug/summary: p50=%d p99=%d", sum.P50Ns, sum.P99Ns)
	}
	var hist struct {
		Samples []struct {
			UnixNano int64              `json:"unix_nano"`
			Values   map[string]float64 `json:"values"`
		} `json:"samples"`
		Rates map[string]float64 `json:"rates"`
		Types map[string]string  `json:"types"`
	}
	if err := getJSON(base+"/metrics/history?sample=1", &hist); err != nil {
		return fmt.Errorf("/metrics/history: %w", err)
	}
	if len(hist.Samples) == 0 {
		return fmt.Errorf("/metrics/history: no samples after sample=1")
	}
	newest := hist.Samples[len(hist.Samples)-1]
	if newest.Values["ssb_queries_total"] < float64(ran) {
		return fmt.Errorf("/metrics/history: sampled ssb_queries_total %g after %d executions",
			newest.Values["ssb_queries_total"], ran)
	}
	if hist.Types["ssb_queries_total"] != "counter" {
		return fmt.Errorf("/metrics/history: ssb_queries_total typed %q", hist.Types["ssb_queries_total"])
	}
	return nil
}

// getJSON fetches u and decodes the JSON body into out.
func getJSON(u string, out any) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// countStar fetches select count(*) over HTTP.
func countStar(base string) (int64, error) {
	resp, err := http.Get(base + "/query?sql=" + url.QueryEscape("select count(*) from lineorder"))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("count(*): status %d", resp.StatusCode)
	}
	var body struct {
		Rows []goldenRow `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	if len(body.Rows) != 1 || len(body.Rows[0].Aggs) != 1 {
		return 0, fmt.Errorf("count(*): unexpected shape %+v", body.Rows)
	}
	return body.Rows[0].Aggs[0], nil
}

// ingestSelfTest drives the write path over real HTTP: inserters posting
// equal-size seeded batches race count(*) readers; every observed count
// must be the base plus a whole number of batches (insert atomicity +
// snapshot isolation) and monotone per reader. Returns the rows inserted.
func ingestSelfTest(base string, n int) (int64, error) {
	const batchRows = 6000
	const batchesPerStream = 3
	streams := n
	if streams > 4 {
		streams = 4
	}
	count0, err := countStar(base)
	if err != nil {
		return 0, err
	}
	total := int64(streams * batchesPerStream * batchRows)
	fmt.Printf("ingest phase: %d insert streams x %d batches x %d rows racing %d count(*) readers (base %d rows)\n",
		streams, batchesPerStream, batchRows, streams, count0)

	stop := make(chan struct{})
	errs := make(chan error, 2*streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < batchesPerStream; b++ {
				body := fmt.Sprintf(`{"seed":%d,"count":%d}`, int64(s)*1000+int64(b), batchRows)
				resp, err := http.Post(base+"/insert", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if !ok {
					errs <- fmt.Errorf("insert stream %d: status %d", s, resp.StatusCode)
					return
				}
			}
		}(s)
	}
	var rwg sync.WaitGroup
	for r := 0; r < streams; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			last := count0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := countStar(base)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if c < last {
					errs <- fmt.Errorf("reader %d: count went backwards (%d -> %d)", r, last, c)
					return
				}
				if (c-count0)%batchRows != 0 {
					errs <- fmt.Errorf("reader %d: count %d is not base+k*%d — a query observed a torn insert", r, c, batchRows)
					return
				}
				last = c
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	final, err := countStar(base)
	if err != nil {
		return 0, err
	}
	if final != count0+total {
		return 0, fmt.Errorf("final count %d, want %d (base %d + %d inserted)", final, count0+total, count0, total)
	}
	fmt.Printf("ingest phase passed: count(*) reached %d, all observations batch-aligned and monotone\n", final)
	return total, nil
}

// checkOne fetches one query over HTTP and compares rows to the golden.
func checkOne(base, id string, want []goldenRow) error {
	resp, err := http.Get(base + "/query?id=" + url.QueryEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("Q%s: status %d", id, resp.StatusCode)
	}
	// The /query row shape matches the golden row schema, so decode
	// straight into it.
	var body struct {
		Rows []goldenRow `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("Q%s: %w", id, err)
	}
	if len(body.Rows) != len(want) {
		return fmt.Errorf("Q%s: %d rows, golden has %d", id, len(body.Rows), len(want))
	}
	for i, w := range want {
		r := body.Rows[i]
		if fmt.Sprint(w.Keys) != fmt.Sprint(r.Keys) || fmt.Sprint(w.Aggs) != fmt.Sprint(r.Aggs) {
			return fmt.Errorf("Q%s row %d: got %v=%v, golden %v=%v", id, i, r.Keys, r.Aggs, w.Keys, w.Aggs)
		}
	}
	return nil
}
