package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchSchema versions the -json artifact. v2 is the normalized shape: one
// flat measurement list across every figure, so a single differ covers the
// whole bench surface (the v1 artifact was kernels-only with a bespoke
// schema).
const benchSchema = "ssb-bench/v2"

// measurement is one (figure, system, query, metric) cell. Better says
// which direction is an improvement — "lower" for latencies and byte
// counts, "higher" for throughput — so the differ knows which tail of the
// tolerance band is a regression.
type measurement struct {
	Figure string  `json:"figure"`
	System string  `json:"system"`
	Query  string  `json:"query,omitempty"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Better string  `json:"better"`
}

// key identifies the cell across runs.
func (m *measurement) key() string {
	return m.Figure + "|" + m.System + "|" + m.Query + "|" + m.Metric
}

// benchArtifact is the machine-readable result of one ssb-bench run,
// written by -json and consumed by -baseline.
type benchArtifact struct {
	Schema       string        `json:"schema"`
	SF           float64       `json:"sf"`
	Figures      []string      `json:"figures"`
	Measurements []measurement `json:"measurements"`
}

// collector accumulates measurements as figures run. Figures execute
// sequentially, so no locking.
var collector benchArtifact

// record adds one cell to the run's artifact.
func record(figure, system, query, metric string, value float64, better string) {
	collector.Measurements = append(collector.Measurements,
		measurement{Figure: figure, System: system, Query: query, Metric: metric, Value: value, Better: better})
}

// recordFigure notes that a figure ran (artifact readers can tell an empty
// figure from one that never executed).
func recordFigure(name string) {
	for _, f := range collector.Figures {
		if f == name {
			return
		}
	}
	collector.Figures = append(collector.Figures, name)
}

// writeArtifact serializes the run's collected measurements.
func writeArtifact(path string, sf float64) error {
	collector.Schema = benchSchema
	collector.SF = sf
	buf, err := json.MarshalIndent(&collector, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// readArtifact loads a baseline artifact.
func readArtifact(path string) (*benchArtifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a benchArtifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q (regenerate the baseline with this binary)", path, a.Schema, benchSchema)
	}
	return &a, nil
}

// metricFloor is the absolute change below which a cell is never a
// regression, whatever the ratio says: sub-floor cells are dominated by
// timer granularity and scheduler noise (a 0.3ms query "regressing" to
// 0.5ms is a 66% ratio and zero signal).
func metricFloor(metric string) float64 {
	switch metric {
	case "total_s", "cpu_s", "io_s":
		return 0.01 // seconds of modeled/measured time
	case "cpu_ns":
		return 2e6 // 2ms of measured CPU
	case "decoded_bytes", "appended_bytes":
		return 1 << 20
	case "mean_ms", "p95_ms", "flush_ms":
		return 0.5
	case "qps", "rows_per_s":
		return 1
	default:
		return 0
	}
}

// regression is one cell that moved past the tolerance band in the wrong
// direction.
type regression struct {
	key       string
	base, cur float64
	ratio     float64 // cur/base for lower-better, base/cur for higher-better
	better    string
	regressed bool // past tolerance in the bad direction
	missing   bool // in the baseline but not the current run
	firstSeen bool // in the current run but not the baseline
}

// compareArtifacts diffs cur against base cell by cell. tol is the allowed
// fractional slowdown: tol 0.15 fails a lower-better cell when
// cur > base*1.15 (and the absolute change clears the metric's noise
// floor). Cells present on only one side are reported but never fail the
// gate — figure sets legitimately differ between runs.
func compareArtifacts(base, cur *benchArtifact, tol float64) []regression {
	baseByKey := map[string]*measurement{}
	for i := range base.Measurements {
		m := &base.Measurements[i]
		baseByKey[m.key()] = m
	}
	curKeys := map[string]bool{}
	var out []regression
	for i := range cur.Measurements {
		m := &cur.Measurements[i]
		curKeys[m.key()] = true
		b, ok := baseByKey[m.key()]
		if !ok {
			out = append(out, regression{key: m.key(), cur: m.Value, firstSeen: true})
			continue
		}
		r := regression{key: m.key(), base: b.Value, cur: m.Value, better: m.Better}
		switch m.Better {
		case "higher":
			if m.Value > 0 {
				r.ratio = b.Value / m.Value
			}
			r.regressed = b.Value-m.Value > metricFloor(m.Metric) && m.Value < b.Value/(1+tol)
		default: // "lower"
			if b.Value > 0 {
				r.ratio = m.Value / b.Value
			}
			r.regressed = m.Value-b.Value > metricFloor(m.Metric) && m.Value > b.Value*(1+tol)
		}
		out = append(out, r)
	}
	for k, b := range baseByKey {
		if !curKeys[k] {
			out = append(out, regression{key: k, base: b.Value, missing: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// reportBaseline prints the diff and returns the number of regressions.
func reportBaseline(base, cur *benchArtifact, tol float64) int {
	if base.SF != cur.SF {
		fmt.Printf("\nWARNING: baseline SF=%g vs current SF=%g — ratios compare different workloads\n", base.SF, cur.SF)
	}
	diffs := compareArtifacts(base, cur, tol)
	regressions, compared, onlyOne := 0, 0, 0
	fmt.Printf("\n## Baseline comparison (tolerance %.0f%%)\n", tol*100)
	for _, d := range diffs {
		switch {
		case d.missing:
			onlyOne++
		case d.firstSeen:
			onlyOne++
		default:
			compared++
			if d.regressed {
				regressions++
				fmt.Printf("REGRESSION %-60s base %.4g -> cur %.4g (%.2fx)\n", d.key, d.base, d.cur, d.ratio)
			}
		}
	}
	fmt.Printf("%d cells compared, %d regressions, %d present in only one artifact\n",
		compared, regressions, onlyOne)
	if regressions == 0 && compared > 0 {
		fmt.Println("no regressions past tolerance")
	}
	if compared == 0 {
		// A baseline that shares no cells with the run is almost certainly
		// the wrong file or the wrong figure set — fail loudly rather than
		// "passing" an empty comparison.
		fmt.Println("ERROR: no comparable cells between baseline and current run")
		return 1
	}
	return regressions
}
