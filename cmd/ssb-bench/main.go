// Command ssb-bench regenerates the paper's evaluation tables. Each figure
// prints one row per system and one column per SSBM query plus the average,
// in the same layout as the paper:
//
//	-figure 5          baseline RS, RS(MV), CS, CS(Row-MV)       (Figure 5)
//	-figure 6          row-store designs T, T(B), MV, VP, AI     (Figure 6)
//	-figure 7          C-Store ablation tICL .. Ticl             (Figure 7)
//	-figure 8          denormalization Base, PJ variants         (Figure 8)
//	-figure sizes      storage footprint comparison              (Section 6.2)
//	-figure projections  redundant sort orders extension         (Section 5.1)
//	-figure conclusion   super-tuple row-store simulation        (Section 7)
//	-figure partition  partitioning on/off ablation              (Section 6.1)
//	-figure fused      fused pipeline vs per-probe extension     (PERFORMANCE.md)
//	-figure kernels    encoding-native aggregation kernels on vs off:
//	                   ns/op + decoded-bytes-avoided on the RLE-heavy
//	                   flight 1 queries                          (PERFORMANCE.md)
//	-figure segstore   segment store: cold vs warm + budget sweep (PERFORMANCE.md)
//	-figure serve      serving layer: throughput/latency vs client
//	                   count at two pool budgets                 (PERFORMANCE.md)
//	-figure ingest     query latency under concurrent insert streams
//	                   + compaction throughput                   (PERFORMANCE.md)
//	-figure all        everything (except segstore and serve, which need
//	                   -data *.seg or generate their own temporary segment
//	                   file)
//
// Reported numbers are total simulated seconds: measured CPU time plus the
// I/O the run performed priced at the paper's 180 MB/s striped-disk model.
// Use -cpu or -io to print those components separately.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/rowexec"
	"repro/internal/server"
	"repro/internal/ssb"
)

var (
	sfFlag    = flag.Float64("sf", 0.1, "SSBM scale factor (paper uses 10)")
	dataPath  = flag.String("data", "", "load the dataset from this file (either ssb-gen -out format, sniffed) instead of generating")
	memBudget = flag.Float64("mem-budget", 0, "buffer-pool budget in MB for segment-store runs (0 = unbounded)")
	reps      = flag.Int("reps", 1, "repetitions per cell (best time wins)")
	showCPU   = flag.Bool("cpu", false, "also print measured CPU seconds")
	showIO    = flag.Bool("io", false, "also print simulated I/O seconds")
	verify    = flag.Bool("verify", false, "verify every cell against the reference (slow)")
	csvOut    = flag.Bool("csv", false, "emit figures as CSV instead of aligned tables")
	figureID  = flag.String("figure", "all", "which experiment to run: 5, 6, 7, 8, sizes, projections, conclusion, partition, fused, kernels, segstore, all")
	jsonPath  = flag.String("json", "", "write every figure's measurements to this file as a normalized ssb-bench/v2 JSON artifact")
	baseline  = flag.String("baseline", "", "compare this run's measurements against a previous -json artifact")
	check     = flag.Bool("check", false, "with -baseline: exit nonzero when any cell regressed past -tolerance")
	tolerance = flag.Float64("tolerance", 0.15, "allowed fractional slowdown vs -baseline before a cell counts as a regression")
)

// segServable marks the figures a segment-store -data file can serve: only
// the compressed column engines run without the raw dataset.
var segServable = map[string]bool{"fused": true, "kernels": true, "segstore": true, "serve": true, "ingest": true}

func main() {
	flag.Parse()
	var db *core.DB
	if *dataPath != "" {
		var err error
		db, err = core.OpenFile(*dataPath, int64(*memBudget*1e6))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		db = core.Open(*sfFlag)
	}
	rows := "?"
	if db.Data != nil {
		rows = fmt.Sprint(db.Data.NumLineorders())
	} else if st := db.SegmentStore(); st != nil {
		rows = fmt.Sprintf("%d (segment store, %.1f MB compressed)",
			factRows(db), float64(st.CompressedBytes())/1e6)
	}
	fmt.Printf("# SSBM at SF=%g (%s lineorder rows); disk model %.0f MB/s\n",
		db.SF, rows, db.Disk.SeqMBPerSec)

	ran := false
	for _, f := range strings.Split(*figureID, ",") {
		if db.Data == nil && !segServable[f] {
			if f == "all" {
				// A segment store cannot serve the row-store, ablation, or
				// denormalized figures; run what it can instead of dying
				// on the first raw-dataset config.
				fmt.Println("\n(segment-store -data file: raw-dataset figures skipped; running fused + segstore)")
				runFigure(db, "fused", "Extension: fused morsel-parallel pipeline (see PERFORMANCE.md)", fusedRows(db))
				runSegstore(db)
				ran = true
				continue
			}
			fmt.Fprintf(os.Stderr, "figure %q needs the raw dataset; a segment store (-data *.seg) serves only: fused, segstore\n", f)
			os.Exit(2)
		}
		switch f {
		case "5":
			runFigure(db, "5", "Figure 5: baseline comparison", figure5Rows(db))
		case "6":
			runFigure(db, "6", "Figure 6: row-store physical designs", figure6Rows(db))
		case "7":
			runFigure(db, "7", "Figure 7: C-Store optimization ablation", figure7Rows(db))
		case "8":
			runFigure(db, "8", "Figure 8: denormalization", figure8Rows(db))
		case "sizes":
			runSizes(db)
		case "projections":
			runFigure(db, "projections", "Extension: redundant fact projections (paper Section 5.1)", projectionRows(db))
		case "conclusion":
			runFigure(db, "conclusion", "Extension: super-tuple row-store simulation (paper Section 7)", conclusionRows(db))
		case "partition":
			runPartition(db)
		case "fused":
			runFigure(db, "fused", "Extension: fused morsel-parallel pipeline (see PERFORMANCE.md)", fusedRows(db))
		case "kernels":
			runKernels(db)
		case "segstore":
			runSegstore(db)
		case "serve":
			runServe(db)
		case "ingest":
			runIngest(db)
		case "all":
			runFigure(db, "5", "Figure 5: baseline comparison", figure5Rows(db))
			runFigure(db, "6", "Figure 6: row-store physical designs", figure6Rows(db))
			runFigure(db, "7", "Figure 7: C-Store optimization ablation", figure7Rows(db))
			runFigure(db, "8", "Figure 8: denormalization", figure8Rows(db))
			runFigure(db, "projections", "Extension: redundant fact projections (paper Section 5.1)", projectionRows(db))
			runFigure(db, "conclusion", "Extension: super-tuple row-store simulation (paper Section 7)", conclusionRows(db))
			runFigure(db, "fused", "Extension: fused morsel-parallel pipeline (see PERFORMANCE.md)", fusedRows(db))
			runSizes(db)
			runPartition(db)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
		ran = true
	}
	if !ran {
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeArtifact(*jsonPath, db.SF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n(wrote %s: %d measurements across %v)\n", *jsonPath, len(collector.Measurements), collector.Figures)
	}
	if *baseline != "" {
		base, err := readArtifact(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		collector.Schema = benchSchema
		collector.SF = db.SF
		regressions := reportBaseline(base, &collector, *tolerance)
		if *check && regressions > 0 {
			os.Exit(1)
		}
	}
}

// row is one system under test in a figure.
type row struct {
	label string
	cfg   core.Config
}

func figure5Rows(db *core.DB) []row {
	sys := core.Figure5Systems()
	return []row{
		{"RS", sys[0]}, {"RS (MV)", sys[1]}, {"CS", sys[2]}, {"CS (Row-MV)", sys[3]},
	}
}

func figure6Rows(db *core.DB) []row {
	var out []row
	for _, cfg := range core.Figure6Systems() {
		out = append(out, row{cfg.Design.String(), cfg})
	}
	return out
}

func figure7Rows(db *core.DB) []row {
	var out []row
	for _, cfg := range core.Figure7Systems() {
		out = append(out, row{cfg.Col.Code(), cfg})
	}
	return out
}

func figure8Rows(db *core.DB) []row {
	sys := core.Figure8Systems()
	return []row{
		{"Base", sys[0]},
		{"PJ, No C", sys[1]},
		{"PJ, Int C", sys[2]},
		{"PJ, Max C", sys[3]},
	}
}

func projectionRows(db *core.DB) []row {
	return []row{
		{"CS", core.ColumnStore(exec.FullOpt)},
		{"CS+proj", core.ColumnStoreProjected(exec.FullOpt)},
	}
}

func conclusionRows(db *core.DB) []row {
	return []row{
		{"VP (naive)", core.RowStore(rowexec.VerticalPartitioning)},
		{"VP (super)", core.SuperTupleVP()},
		{"CS (no compress)", core.ColumnStore(exec.Config{BlockIter: true, InvisibleJoin: true, LateMat: true})},
		{"CS (full)", core.ColumnStore(exec.FullOpt)},
	}
}

func fusedRows(db *core.DB) []row {
	fusedPar := exec.FusedOpt
	fusedPar.Workers = 4
	return []row{
		{"per-probe", core.ColumnStore(exec.FullOpt)},
		{"fused", core.ColumnStore(exec.FusedOpt)},
		{"fused 4w", core.ColumnStore(fusedPar)},
	}
}

func runFigure(db *core.DB, figKey, title string, rows []row) {
	queries := ssb.Queries()
	fmt.Printf("\n## %s\n", title)
	if *csvOut {
		header := "system"
		for _, q := range queries {
			header += ",Q" + q.ID
		}
		fmt.Println(header + ",AVG")
	} else {
		header := fmt.Sprintf("%-12s", "")
		for _, q := range queries {
			header += fmt.Sprintf("%8s", q.ID)
		}
		header += fmt.Sprintf("%8s", "AVG")
		fmt.Println(header)
	}

	print := func(kind string, cells map[string][]float64) {
		for _, r := range rows {
			sum := 0.0
			if *csvOut {
				line := r.label + kind
				for _, v := range cells[r.label] {
					line += fmt.Sprintf(",%.6f", v)
					sum += v
				}
				fmt.Printf("%s,%.6f\n", line, sum/float64(len(queries)))
				continue
			}
			line := fmt.Sprintf("%-12s", r.label+kind)
			for _, v := range cells[r.label] {
				line += fmt.Sprintf("%8.3f", v)
				sum += v
			}
			line += fmt.Sprintf("%8.3f", sum/float64(len(queries)))
			fmt.Println(line)
		}
	}

	recordFigure(figKey)
	total := map[string][]float64{}
	cpu := map[string][]float64{}
	ioSec := map[string][]float64{}
	for _, r := range rows {
		for _, q := range queries {
			best := core.RunStats{}
			for rep := 0; rep < *reps; rep++ {
				_, stats, err := db.Run(q.ID, r.cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if rep == 0 || stats.Total < best.Total {
					best = stats
				}
			}
			if *verify {
				if err := db.Verify(q.ID, r.cfg); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			total[r.label] = append(total[r.label], best.Total.Seconds())
			cpu[r.label] = append(cpu[r.label], best.Wall.Seconds())
			ioSec[r.label] = append(ioSec[r.label], best.IOTime.Seconds())
			record(figKey, r.label, q.ID, "total_s", best.Total.Seconds(), "lower")
			record(figKey, r.label, q.ID, "cpu_s", best.Wall.Seconds(), "lower")
		}
	}
	print("", total)
	if *showCPU {
		fmt.Println("-- measured CPU seconds --")
		print("(cpu)", cpu)
	}
	if *showIO {
		fmt.Println("-- simulated I/O seconds --")
		print("(io)", ioSec)
	}
}

// runSizes reproduces the Section 6.2 storage comparison: vertical
// partitioning's per-value overhead vs the traditional heap vs the column
// store.
func runSizes(db *core.DB) {
	fmt.Println("\n## Storage sizes (paper Section 6.2 'Tuple overheads')")
	col := db.ColumnDB(true)
	colPlain := db.ColumnDB(false)
	sx := db.RowDB()
	n := float64(db.Data.NumLineorders())

	fmt.Printf("%-42s %10s %14s\n", "layout", "MB", "bytes/value")
	p := func(name string, bytes int64, values float64) {
		fmt.Printf("%-42s %10.1f %14.2f\n", name, float64(bytes)/1e6, float64(bytes)/values)
	}
	p("row store: full 17-column fact heap", sx.Fact.HeapBytes(), n*17)
	var vpBytes int64
	for _, vt := range sx.VP {
		vpBytes += vt.HeapBytes()
	}
	p(fmt.Sprintf("row store: %d vertical partitions", len(sx.VP)), vpBytes, n*float64(len(sx.VP)))
	p("column store: fact, uncompressed", colPlain.Fact.CompressedBytes(), n*17)
	p("column store: fact, compressed", col.Fact.CompressedBytes(), n*17)
	fmt.Printf("\nPaper: VP needs ~16 bytes/value (8B header + 4B rid + 4B value)\n")
	fmt.Printf("vs 4 bytes/value uncompressed in C-Store; whole compressed fact ~2.3GB at SF=10.\n")
}

// factRows returns the fact cardinality for a segment-backed DB.
func factRows(db *core.DB) int {
	t, err := db.SegmentStore().Table("lineorder")
	if err != nil {
		return 0
	}
	return t.NumRows()
}

// runSegstore produces the segment-store figures: cold-vs-warm scans of all
// 13 SSBM queries over a pool-backed file, then a budget sweep showing how
// eviction pressure trades resident memory for repeated disk fetches. If
// -data is not a segment file, the current dataset is written to a
// temporary segment file first, so `-figure segstore -sf 0.1` works
// standalone.
func runSegstore(db *core.DB) {
	segDB := db
	if segDB.SegmentStore() == nil {
		tmp, err := os.CreateTemp("", "ssb-*.seg")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		fmt.Printf("\n(writing temporary segment file %s)\n", tmp.Name())
		if err := exec.SaveSegments(tmp.Name(), db.SF, db.ColumnDB(true)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		segDB, err = core.OpenSegmentStore(tmp.Name(), int64(*memBudget*1e6))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	st := segDB.SegmentStore()
	fmt.Printf("\n## Segment store: cold vs warm (budget %s; %d segments, %.1f MB compressed, %.1f MB decoded)\n",
		budgetLabel(st.Pool().Budget()), st.NumSegments(),
		float64(st.CompressedBytes())/1e6, float64(st.RawBytes())/1e6)
	cfg := core.ColumnStore(exec.FusedOpt)

	// Each cell is paper-comparable seconds: measured CPU plus the pool's
	// *physical* fetches for that query priced by the disk model — warm
	// runs pay no disk at all, which is the point of the figure.
	queries := ssb.Queries()
	header := fmt.Sprintf("%-26s", "")
	for _, q := range queries {
		header += fmt.Sprintf("%8s", q.ID)
	}
	fmt.Println(header + fmt.Sprintf("%10s", "disk MB") + fmt.Sprintf("%8s", "miss") + fmt.Sprintf("%8s", "evict"))

	recordFigure("segstore")
	pass := func(label string) {
		start := st.Pool().Stats()
		line := fmt.Sprintf("%-26s", label)
		for _, q := range queries {
			before := st.Pool().Stats()
			_, stats, err := segDB.Run(q.ID, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			after := st.Pool().Stats()
			var phys iosim.Stats
			phys.Read(after.IO.BytesRead - before.IO.BytesRead)
			phys.AddSeeks(after.IO.Seeks - before.IO.Seeks)
			cell := stats.Wall.Seconds() + segDB.Disk.Time(phys).Seconds()
			record("segstore", label, q.ID, "total_s", cell, "lower")
			line += fmt.Sprintf("%8.3f", cell)
		}
		end := st.Pool().Stats()
		line += fmt.Sprintf("%10.1f%8d%8d",
			float64(end.BytesRead-start.BytesRead)/1e6,
			end.Misses-start.Misses, end.Evictions-start.Evictions)
		fmt.Println(line)
	}
	st.Pool().Reset()
	pass("cold")
	pass("warm")

	fmt.Printf("\n## Segment store: budget sweep (fused pipeline, all 13 queries per cell)\n")
	fmt.Printf("%-12s%12s%12s%12s%12s%12s\n", "budget", "total (s)", "disk MB", "misses", "evictions", "peak MB")
	decoded := st.RawBytes()
	for _, frac := range []float64{0, 1, 0.5, 0.25, 0.1, 0.05} {
		budget := int64(0)
		label := "unbounded"
		sysKey := "sweep unbounded" // stable across SFs (label embeds a byte count)
		if frac > 0 {
			budget = int64(float64(decoded) * frac)
			label = fmt.Sprintf("%.0f%% (%0.1fMB)", frac*100, float64(budget)/1e6)
			sysKey = fmt.Sprintf("sweep %.0f%%", frac*100)
		}
		sweepDB, err := core.OpenSegmentStore(st.Path(), budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sp := sweepDB.SegmentStore().Pool()
		total := 0.0
		for _, q := range ssb.Queries() {
			_, stats, err := sweepDB.Run(q.ID, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			total += stats.Wall.Seconds()
		}
		ps := sp.Stats()
		total += sweepDB.Disk.Time(ps.IO).Seconds()
		record("segstore", sysKey, "", "total_s", total, "lower")
		fmt.Printf("%-12s%12.3f%12.1f%12d%12d%12.1f\n", label, total,
			float64(ps.BytesRead)/1e6, ps.Misses, ps.Evictions, float64(ps.Peak)/1e6)
		sweepDB.SegmentStore().Close()
	}
	fmt.Printf("\n(budget %% is of the %0.1f MB decoded dataset; every run computes identical results)\n", float64(decoded)/1e6)
}

// runKernels measures the Section 5 "operate on compressed data" ablation
// in isolation: the flight 1 queries (RLE-sorted orderdate predicate, no
// group-by — the plans where run-native aggregation bites hardest) run
// with the encoding-native kernels on and off, reporting measured CPU and
// the bytes each run materialized to raw values (compress.DecodedBytes).
// Each canonical Qx also runs as a single-measure variant (SUM(revenue)
// under the same predicates): the canonical flight 1 aggregate is the
// two-operand SUM(extendedprice*discount), which must gather both inputs
// in every mode, while the single-measure plans fold entirely inside the
// wire encoding — their decoded-bytes column is the avoided
// decompression, not a modeling estimate.
func runKernels(db *core.DB) {
	var plans []*ssb.Query
	for _, id := range []string{"1.1", "1.2", "1.3"} {
		q := ssb.QueryByID(id)
		plans = append(plans, q,
			// Same predicates, single-measure aggregate: the fold kernel's
			// home turf whenever the selection can stay in bitmap form.
			&ssb.Query{
				ID:          id + "Σrev",
				Aggs:        []ssb.AggSpec{{Func: ssb.FuncSum, Expr: ssb.AggExpr{ColA: "revenue"}}},
				FactFilters: q.FactFilters,
				DimFilters:  q.DimFilters,
			},
			// Dimension filter only: on the orderdate-sorted store most
			// qualifying blocks are fully covered, so the whole aggregate
			// folds inside the wire encoding — zero values materialized.
			&ssb.Query{
				ID:         id + "Σd",
				Aggs:       []ssb.AggSpec{{Func: ssb.FuncSum, Expr: ssb.AggExpr{ColA: "revenue"}}},
				DimFilters: q.DimFilters,
			})
	}
	nkFull, nkFused := exec.FullOpt, exec.FusedOpt
	nkFull.NoKernels, nkFused.NoKernels = true, true
	engines := []struct {
		label   string
		on, off core.Config
	}{
		{"per-probe", core.ColumnStore(exec.FullOpt), core.ColumnStore(nkFull)},
		{"fused", core.ColumnStore(exec.FusedOpt), core.ColumnStore(nkFused)},
	}

	// measure runs one (query, config) cell: best CPU over -reps, plus the
	// decoded-bytes meter for a single run (deterministic per plan). One
	// untimed warmup run absorbs lazily-built state (dictionaries, pass
	// sets, pool misses) so row order doesn't bias the comparison.
	run := func(q *ssb.Query, cfg core.Config) (cpuNs, decoded int64) {
		compress.ResetDecodedBytes()
		_, stats, err := db.RunPlan(q, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return stats.Wall.Nanoseconds(), compress.DecodedBytes()
	}
	// measureAB runs one query's kernels-on and kernels-off cells with the
	// reps interleaved (on, off, on, off, ...) so neither mode measures
	// against a systematically warmer process — running all on-cells before
	// all off-cells hands the later mode the branch-predictor and
	// frequency-boost benefit of everything before it. One untimed warmup
	// per mode absorbs lazily-built state (dictionaries, pass sets, pool
	// misses); best wall time per mode wins. The decoded-bytes meter is
	// deterministic per (plan, mode), so any rep's reading serves.
	measureAB := func(q *ssb.Query, on, off core.Config) (onNs, offNs, onDec, offDec int64) {
		run(q, on)
		run(q, off)
		for rep := 0; rep < *reps; rep++ {
			if w, d := run(q, on); rep == 0 || w < onNs {
				onNs, onDec = w, d
			}
			if w, d := run(q, off); rep == 0 || w < offNs {
				offNs, offDec = w, d
			}
		}
		return onNs, offNs, onDec, offDec
	}

	fmt.Printf("\n## Extension: aggregation on compressed blocks (kernels on vs off, flight 1)\n")
	recordFigure("kernels")
	header := fmt.Sprintf("%-22s", "")
	for _, q := range plans {
		header += fmt.Sprintf("%12s", q.ID)
	}
	fmt.Println(header + fmt.Sprintf("%14s", "decoded MB"))
	for _, e := range engines {
		rows := [2]string{
			fmt.Sprintf("%-22s", e.label+" (kernels)"),
			fmt.Sprintf("%-22s", e.label+" (-nk)"),
		}
		var totalDec [2]int64
		var avoided int64
		for _, q := range plans {
			onNs, offNs, onDec, offDec := measureAB(q, e.on, e.off)
			rows[0] += fmt.Sprintf("%10.2fms", float64(onNs)/1e6)
			rows[1] += fmt.Sprintf("%10.2fms", float64(offNs)/1e6)
			totalDec[0] += onDec
			totalDec[1] += offDec
			avoided += offDec - onDec
			record("kernels", e.label+" (kernels)", q.ID, "cpu_ns", float64(onNs), "lower")
			record("kernels", e.label+" (kernels)", q.ID, "decoded_bytes", float64(onDec), "lower")
			record("kernels", e.label+" (-nk)", q.ID, "cpu_ns", float64(offNs), "lower")
			record("kernels", e.label+" (-nk)", q.ID, "decoded_bytes", float64(offDec), "lower")
		}
		for mi := range rows {
			rows[mi] += fmt.Sprintf("%14.1f", float64(totalDec[mi])/1e6)
		}
		fmt.Println(rows[0])
		fmt.Println(rows[1])
		fmt.Printf("%-22s  decoded bytes avoided: %.2f MB\n", "", float64(avoided)/1e6)
	}
	fmt.Println("\n(decoded MB = bytes materialized to raw 4 B values across the six runs;")
	fmt.Println(" QxΣrev is Qx's predicates with single-measure SUM(revenue) — the plans the")
	fmt.Println(" fold kernel serves without materializing; results are pinned bit-identical")
	fmt.Println(" across modes by TestDifferential)")
}

// budgetLabel renders a pool budget.
func budgetLabel(b int64) string {
	if b <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%.1fMB", float64(b)/1e6)
}

// runServe produces the serving-layer figure, exiting nonzero on error
// only after serveFigure's deferred cleanup (temporary segment file,
// stores) has run.
func runServe(db *core.DB) {
	if err := serveFigure(db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// serveFigure measures sustained throughput and latency of the 13-query
// SSBM mix as the concurrent client count grows, at a tight pool budget
// (5% of the decoded dataset — heavy eviction churn) and an unbounded one.
// The result cache is disabled so every request exercises the engine;
// admission is set generous so the pool, not the semaphore, is the
// contended resource being measured.
func serveFigure(db *core.DB) error {
	path := ""
	if st := db.SegmentStore(); st != nil {
		path = st.Path()
	} else {
		tmp, err := os.CreateTemp("", "ssb-*.seg")
		if err != nil {
			return err
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		fmt.Printf("\n(writing temporary segment file %s)\n", tmp.Name())
		if err := exec.SaveSegments(tmp.Name(), db.SF, db.ColumnDB(true)); err != nil {
			return err
		}
		path = tmp.Name()
	}

	probe, err := core.OpenSegmentStore(path, 0)
	if err != nil {
		return err
	}
	decoded := probe.SegmentStore().RawBytes()
	probe.SegmentStore().Close()

	const passes = 3
	queries := ssb.Queries()
	fmt.Printf("\n## Serving layer: %d-query mix x %d passes per client, cache off (see PERFORMANCE.md)\n",
		len(queries), passes)
	fmt.Printf("%-18s%10s%12s%12s%12s%12s%10s\n",
		"budget", "clients", "qps", "mean ms", "p95 ms", "disk MB", "evict")

	recordFigure("serve")
	for bi, budget := range []int64{int64(float64(decoded) * 0.05), 0} {
		// Stable artifact key per cell: budgetLabel embeds an SF-dependent
		// byte count, so the committed baseline would never match it.
		budgetKey := "5% budget"
		if bi == 1 {
			budgetKey = "unbounded"
		}
		for _, clients := range []int{1, 2, 4, 8, 16} {
			sdb, err := core.OpenSegmentStore(path, budget)
			if err != nil {
				return err
			}
			srv, err := server.New(sdb, server.Options{
				Workers:      1,
				CacheEntries: -1,
				AdmitBytes:   64 << 20,
			})
			if err != nil {
				sdb.SegmentStore().Close()
				return err
			}

			var mu sync.Mutex
			var lats []time.Duration
			var execErr error
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c)))
					local := make([]time.Duration, 0, passes*len(queries))
					for p := 0; p < passes; p++ {
						for _, qi := range rng.Perm(len(queries)) {
							t0 := time.Now()
							if _, err := srv.Execute(context.Background(), queries[qi]); err != nil {
								mu.Lock()
								if execErr == nil {
									execErr = err
								}
								mu.Unlock()
								return
							}
							local = append(local, time.Since(t0))
						}
					}
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
				}(c)
			}
			wg.Wait()
			wall := time.Since(start)
			srv.Close()
			ps := sdb.SegmentStore().Pool().Stats()
			sdb.SegmentStore().Close()
			if execErr != nil {
				return execErr
			}

			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			var sum time.Duration
			for _, l := range lats {
				sum += l
			}
			mean := sum / time.Duration(len(lats))
			p95 := lats[len(lats)*95/100]
			sys := fmt.Sprintf("%s/%dc", budgetKey, clients)
			record("serve", sys, "", "qps", float64(len(lats))/wall.Seconds(), "higher")
			record("serve", sys, "", "mean_ms", float64(mean.Microseconds())/1e3, "lower")
			record("serve", sys, "", "p95_ms", float64(p95.Microseconds())/1e3, "lower")
			fmt.Printf("%-18s%10d%12.1f%12.3f%12.3f%12.1f%10d\n",
				budgetLabel(budget), clients,
				float64(len(lats))/wall.Seconds(),
				float64(mean.Microseconds())/1e3, float64(p95.Microseconds())/1e3,
				float64(ps.BytesRead)/1e6, ps.Evictions)
		}
	}
	fmt.Println("\n(every execution verified bit-identical to serial runs by the server package tests)")
	return nil
}

// runPartition reproduces the Section 6.1 partitioning ablation: the
// traditional design with and without orderdate-year pruning.
func runPartition(db *core.DB) {
	fmt.Println("\n## Partitioning ablation (paper Section 6.1: ~2x on average)")
	recordFigure("partition")
	queries := ssb.Queries()
	fmt.Printf("%-10s %12s %12s %8s\n", "query", "part (s)", "nopart (s)", "ratio")
	sumP, sumN := 0.0, 0.0
	for _, q := range queries {
		_, withP, err := db.Run(q.ID, core.RowStore(rowexec.Traditional))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		_, noP, err := db.Run(q.ID, core.Config{Kind: core.KindRow, Design: rowexec.Traditional})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, np := withP.Total.Seconds(), noP.Total.Seconds()
		record("partition", "partitioned", q.ID, "total_s", p, "lower")
		record("partition", "unpartitioned", q.ID, "total_s", np, "lower")
		sumP += p
		sumN += np
		fmt.Printf("%-10s %12.3f %12.3f %8.2f\n", q.ID, p, np, np/p)
	}
	fmt.Printf("%-10s %12.3f %12.3f %8.2f\n", "AVG", sumP/13, sumN/13, sumN/sumP)
}

// runIngest wraps ingestFigure with the figure harness's exit convention.
func runIngest(db *core.DB) {
	if err := ingestFigure(db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// copyFileTmp copies src to a fresh temp file and returns its path.
func copyFileTmp(src string) (string, error) {
	data, err := os.ReadFile(src)
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp("", "ssb-ingest-*.seg")
	if err != nil {
		return "", err
	}
	path := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(path)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	return path, nil
}

// ingestFigure measures the cost of the WS/RS split under live writes: the
// 13-query mix's latency with 0, 1 and 4 concurrent insert streams hammering
// the same store, plus what the tuple mover did meanwhile (sealed rows,
// compaction passes, bytes appended to the file) and the final flush cost.
// Each cell runs against a fresh copy of the segment file so cells do not
// see each other's appended rows (and a user's -data file is never
// mutated).
func ingestFigure(db *core.DB) error {
	var srcPath string
	if st := db.SegmentStore(); st != nil {
		srcPath = st.Path()
	} else {
		tmp, err := os.CreateTemp("", "ssb-*.seg")
		if err != nil {
			return err
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		fmt.Printf("\n(writing temporary segment file %s)\n", tmp.Name())
		if err := exec.SaveSegments(tmp.Name(), db.SF, db.ColumnDB(true)); err != nil {
			return err
		}
		srcPath = tmp.Name()
	}

	const passes = 3
	const batchRows = 4096
	queries := ssb.Queries()
	cfg := core.ColumnStore(exec.FusedOpt)
	cfg.Col.Workers = 4
	fmt.Printf("\n## Ingest: %d-query mix x %d passes vs concurrent insert streams (batch %d rows)\n",
		len(queries), passes, batchRows)
	fmt.Printf("%-10s%12s%12s%14s%12s%14s%12s\n",
		"streams", "mean ms", "p95 ms", "ins rows/s", "compacts", "appended MB", "flush ms")

	recordFigure("ingest")
	for _, streams := range []int{0, 1, 4} {
		if err := ingestCell(streams, srcPath); err != nil {
			return err
		}
	}
	fmt.Println("\n(cross-engine correctness under concurrent inserts is pinned by TestIngestDifferential and the server race stress)")
	return nil
}

// ingestCell runs one row of the ingest figure against a private copy of
// the segment file; the copy and the store are released on every path.
func ingestCell(streams int, srcPath string) error {
	const passes = 3
	const batchRows = 4096
	queries := ssb.Queries()
	cfg := core.ColumnStore(exec.FusedOpt)
	cfg.Col.Workers = 4

	path, err := copyFileTmp(srcPath)
	if err != nil {
		return err
	}
	defer os.Remove(path)
	sdb, err := core.OpenSegmentStore(path, 0)
	if err != nil {
		return err
	}
	defer sdb.SegmentStore().Close()
	defer sdb.CloseIngest()
	if err := sdb.EnableIngest(true, 0); err != nil {
		return err
	}
	shape, err := sdb.IngestShape()
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	var inserted int64
	var insMu sync.Mutex
	var iwg sync.WaitGroup
	// Stop and join the inserters on every exit path (a mid-measurement
	// query error must not leave them hammering a store being torn down).
	stopped := false
	stopInserters := func() {
		if !stopped {
			stopped = true
			close(stop)
			iwg.Wait()
		}
	}
	defer stopInserters()
	for s := 0; s < streams; s++ {
		iwg.Add(1)
		go func(id int) {
			defer iwg.Done()
			seed := int64(id+1) * 1_000_003
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, err := ssb.RandBatch(seed, batchRows, shape)
				seed++
				if err != nil {
					return
				}
				if _, err := sdb.Insert(b); err != nil {
					return
				}
				insMu.Lock()
				inserted += int64(batchRows)
				insMu.Unlock()
			}
		}(s)
	}

	var lats []time.Duration
	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, q := range queries {
			t0 := time.Now()
			if _, _, err := sdb.RunPlan(q, cfg); err != nil {
				return err
			}
			lats = append(lats, time.Since(t0))
		}
	}
	stopInserters()
	elapsed := time.Since(start)

	flushStart := time.Now()
	if err := sdb.FlushIngest(); err != nil {
		return err
	}
	flushDur := time.Since(flushStart)
	ds := sdb.IngestStats()
	ps := sdb.SegmentStore().Pool().Stats()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	mean := sum / time.Duration(len(lats))
	p95 := lats[len(lats)*95/100]
	sys := fmt.Sprintf("%d streams", streams)
	record("ingest", sys, "", "mean_ms", float64(mean.Microseconds())/1e3, "lower")
	record("ingest", sys, "", "p95_ms", float64(p95.Microseconds())/1e3, "lower")
	record("ingest", sys, "", "flush_ms", float64(flushDur.Microseconds())/1e3, "lower")
	if streams > 0 {
		record("ingest", sys, "", "rows_per_s", float64(inserted)/elapsed.Seconds(), "higher")
	}
	fmt.Printf("%-10d%12.3f%12.3f%14.0f%12d%14.2f%12.1f\n",
		streams,
		float64(mean.Microseconds())/1e3, float64(p95.Microseconds())/1e3,
		float64(inserted)/elapsed.Seconds(),
		ds.Compactions, float64(ps.AppendedBytes)/1e6,
		float64(flushDur.Microseconds())/1e3)
	return nil
}
