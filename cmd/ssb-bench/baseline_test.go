package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func art(ms ...measurement) *benchArtifact {
	return &benchArtifact{Schema: benchSchema, SF: 0.01, Measurements: ms}
}

func m(fig, sys, q, metric string, v float64, better string) measurement {
	return measurement{Figure: fig, System: sys, Query: q, Metric: metric, Value: v, Better: better}
}

// TestCompareSelf: an artifact diffed against itself must show zero
// regressions — this is the exact invariant the CI perf gate relies on
// (modulo run-to-run noise, which tolerance absorbs).
func TestCompareSelf(t *testing.T) {
	a := art(
		m("5", "C-Store", "1.1", "total_s", 1.25, "lower"),
		m("serve", "unbounded/4c", "", "qps", 900, "higher"),
		m("kernels", "fused (kernels)", "1.1", "cpu_ns", 5e7, "lower"),
	)
	for _, d := range compareArtifacts(a, a, 0.15) {
		if d.regressed || d.missing || d.firstSeen {
			t.Fatalf("self-compare flagged %s: %+v", d.key, d)
		}
	}
	if n := reportBaseline(a, a, 0.15); n != 0 {
		t.Fatalf("self-compare regressions = %d, want 0", n)
	}
}

// TestCompareDetectsSlowdown: a seeded 2x slowdown on a lower-better metric
// and a halved higher-better metric must both fail the gate.
func TestCompareDetectsSlowdown(t *testing.T) {
	base := art(
		m("5", "C-Store", "1.1", "total_s", 1.0, "lower"),
		m("serve", "unbounded/4c", "", "qps", 1000, "higher"),
	)
	cur := art(
		m("5", "C-Store", "1.1", "total_s", 2.0, "lower"),
		m("serve", "unbounded/4c", "", "qps", 500, "higher"),
	)
	diffs := compareArtifacts(base, cur, 0.15)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2", len(diffs))
	}
	for _, d := range diffs {
		if !d.regressed {
			t.Errorf("%s not flagged (base %g cur %g)", d.key, d.base, d.cur)
		}
		if d.ratio < 1.9 || d.ratio > 2.1 {
			t.Errorf("%s ratio %.2f, want ~2.0", d.key, d.ratio)
		}
	}
	if n := reportBaseline(base, cur, 0.15); n != 2 {
		t.Fatalf("reportBaseline = %d, want 2", n)
	}
}

// TestCompareIgnoresImprovements: faster / higher-throughput runs never
// fail, whatever the magnitude.
func TestCompareIgnoresImprovements(t *testing.T) {
	base := art(
		m("5", "C-Store", "1.1", "total_s", 2.0, "lower"),
		m("serve", "unbounded/4c", "", "qps", 500, "higher"),
	)
	cur := art(
		m("5", "C-Store", "1.1", "total_s", 0.5, "lower"),
		m("serve", "unbounded/4c", "", "qps", 2000, "higher"),
	)
	if n := reportBaseline(base, cur, 0.15); n != 0 {
		t.Fatalf("improvements flagged as %d regressions", n)
	}
}

// TestCompareNoiseFloor: a huge *ratio* on a tiny absolute change stays
// green — 0.3ms -> 0.5ms on a total_s cell is timer noise, not a
// regression — while the same ratio above the floor fails.
func TestCompareNoiseFloor(t *testing.T) {
	base := art(m("5", "C-Store", "1.1", "total_s", 0.0003, "lower"))
	cur := art(m("5", "C-Store", "1.1", "total_s", 0.0005, "lower"))
	if n := reportBaseline(base, cur, 0.15); n != 0 {
		t.Fatalf("sub-floor change flagged (%d regressions)", n)
	}
	base = art(m("5", "C-Store", "1.1", "total_s", 0.3, "lower"))
	cur = art(m("5", "C-Store", "1.1", "total_s", 0.5, "lower"))
	if n := reportBaseline(base, cur, 0.15); n != 1 {
		t.Fatalf("above-floor change not flagged (%d regressions)", n)
	}
}

// TestCompareDisjointCells: cells present on only one side are reported
// but never fail; a baseline sharing nothing with the run errors instead
// of passing vacuously.
func TestCompareDisjointCells(t *testing.T) {
	base := art(
		m("5", "C-Store", "1.1", "total_s", 1.0, "lower"),
		m("6", "C-Store", "2.1", "total_s", 1.0, "lower"), // gone in cur
	)
	cur := art(
		m("5", "C-Store", "1.1", "total_s", 1.0, "lower"),
		m("7", "C-Store", "3.1", "total_s", 1.0, "lower"), // new in cur
	)
	diffs := compareArtifacts(base, cur, 0.15)
	var missing, firstSeen int
	for _, d := range diffs {
		if d.missing {
			missing++
		}
		if d.firstSeen {
			firstSeen++
		}
	}
	if missing != 1 || firstSeen != 1 {
		t.Fatalf("missing=%d firstSeen=%d, want 1/1", missing, firstSeen)
	}
	if n := reportBaseline(base, cur, 0.15); n != 0 {
		t.Fatalf("one-sided cells failed the gate (%d)", n)
	}

	// Fully disjoint: a wrong baseline file must fail loudly, not pass an
	// empty comparison.
	onlyBase := art(m("6", "C-Store", "2.1", "total_s", 1.0, "lower"))
	onlyCur := art(m("7", "C-Store", "3.1", "total_s", 1.0, "lower"))
	if n := reportBaseline(onlyBase, onlyCur, 0.15); n == 0 {
		t.Fatal("zero comparable cells passed the gate")
	}
}

// TestArtifactRoundTrip: writeArtifact -> readArtifact preserves every
// cell, and readArtifact rejects a foreign schema.
func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")

	saved := collector
	defer func() { collector = saved }()
	collector = benchArtifact{}
	recordFigure("5")
	recordFigure("5") // dedup
	record("5", "C-Store", "1.1", "total_s", 1.25, "lower")
	record("serve", "unbounded/4c", "", "qps", 900, "higher")
	if err := writeArtifact(path, 0.01); err != nil {
		t.Fatal(err)
	}

	got, err := readArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != benchSchema || got.SF != 0.01 {
		t.Fatalf("header %q sf=%g", got.Schema, got.SF)
	}
	if len(got.Figures) != 1 || got.Figures[0] != "5" {
		t.Fatalf("figures %v, want [5]", got.Figures)
	}
	if len(got.Measurements) != 2 || got.Measurements[0].key() != "5|C-Store|1.1|total_s" {
		t.Fatalf("measurements %+v", got.Measurements)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"ssb-bench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readArtifact(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}
