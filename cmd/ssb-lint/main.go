// Command ssb-lint statically checks this repository's own invariants:
// buffer-pool pin release on all paths, context cancellation in block
// loops, the iosim.Stats ownership discipline, injected-logger output,
// guarded-by lock annotations, and unchecked Close errors. It is built on
// the standard library's go/parser and go/types only, so running it needs
// nothing beyond the Go toolchain already required to build the tree.
//
// Usage:
//
//	ssb-lint [-c analyzers] [-list] [patterns ...]
//
// Patterns are module-relative directory patterns ("./...", the default,
// or "./internal/exec", "./internal/..."). Exit status is 1 when any
// diagnostic is reported, 2 on a loading failure. Diagnostics print as
//
//	file:line: [analyzer] message
//
// and are suppressed by a "//lint:ignore <analyzer> <reason>" comment on
// the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("c", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		// Print paths relative to the working directory so the output is
		// clickable from the repo root.
		pos := d.Pos
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ssb-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
