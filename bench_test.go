package repro

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
)

// benchSF is the scale factor for the figure benchmarks. The paper uses
// SF=10 (60M rows); the default here keeps `go test -bench .` minutes-scale.
// Override with REPRO_BENCH_SF.
func benchSF() float64 {
	if s := os.Getenv("REPRO_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.02
}

var benchDB = sync.OnceValue(func() *core.DB {
	db := core.Open(benchSF())
	// Force all lazy builds outside the timed regions.
	db.ColumnDB(true)
	db.ColumnDB(false)
	db.RowDB()
	db.DenormDB(exec.DenormNoC)
	db.DenormDB(exec.DenormIntC)
	db.DenormDB(exec.DenormMaxC)
	return db
})

// benchSystem runs all thirteen SSBM queries once per iteration under cfg,
// reporting the simulated I/O time per iteration as an extra metric so the
// paper-comparable total (CPU + simulated I/O) can be reconstructed from
// the benchmark output.
func benchSystem(b *testing.B, db *core.DB, cfg core.Config) {
	queries := ssb.Queries()
	// One warm-up pass also validates the configuration end to end.
	for _, q := range queries {
		if _, _, err := db.Run(q.ID, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var ioSecs float64
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			_, stats, err := db.Run(q.ID, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ioSecs += stats.IOTime.Seconds()
		}
	}
	b.ReportMetric(ioSecs/float64(b.N), "sim-io-s/op")
}

// BenchmarkFigure5 reproduces the paper's Figure 5: baseline RS, RS(MV),
// CS and CS(Row-MV). Each iteration runs all 13 SSBM queries.
func BenchmarkFigure5(b *testing.B) {
	db := benchDB()
	labels := []string{"RS", "RS-MV", "CS", "CS-RowMV"}
	for i, cfg := range core.Figure5Systems() {
		cfg := cfg
		b.Run(labels[i], func(b *testing.B) { benchSystem(b, db, cfg) })
	}
}

// BenchmarkFigure6 reproduces Figure 6: the five row-store physical
// designs T, T(B), MV, VP, AI.
func BenchmarkFigure6(b *testing.B) {
	db := benchDB()
	labels := []string{"T", "TB", "MV", "VP", "AI"}
	for i, cfg := range core.Figure6Systems() {
		cfg := cfg
		b.Run(labels[i], func(b *testing.B) { benchSystem(b, db, cfg) })
	}
}

// BenchmarkFigure7 reproduces Figure 7: the C-Store optimization ablation
// tICL .. Ticl.
func BenchmarkFigure7(b *testing.B) {
	db := benchDB()
	for _, cfg := range core.Figure7Systems() {
		cfg := cfg
		b.Run(cfg.Col.Code(), func(b *testing.B) { benchSystem(b, db, cfg) })
	}
}

// BenchmarkFigure8 reproduces Figure 8: baseline C-Store vs the
// denormalized (pre-joined) table in three compression modes.
func BenchmarkFigure8(b *testing.B) {
	db := benchDB()
	labels := []string{"Base", "PJ-NoC", "PJ-IntC", "PJ-MaxC"}
	for i, cfg := range core.Figure8Systems() {
		cfg := cfg
		b.Run(labels[i], func(b *testing.B) { benchSystem(b, db, cfg) })
	}
}

// BenchmarkFlight1PerQuery gives per-query resolution for the flight the
// paper highlights (order-of-magnitude compression win on sorted data).
func BenchmarkFlight1PerQuery(b *testing.B) {
	db := benchDB()
	for _, id := range []string{"1.1", "1.2", "1.3"} {
		id := id
		for _, sys := range []struct {
			name string
			cfg  core.Config
		}{
			{"CS", core.ColumnStore(exec.FullOpt)},
			{"CS-NoCompress", core.ColumnStore(exec.Config{BlockIter: true, LateMat: true})},
			{"RS", core.RowStore(rowexec.Traditional)},
		} {
			sys := sys
			b.Run("Q"+id+"/"+sys.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := db.Run(id, sys.cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFusedPipeline measures the fused, block-at-a-time pipeline
// against the per-probe pipeline it replaces, on the join flights (2-4) —
// the ten queries whose CPU is dominated by probe application and group
// extraction. One iteration runs all ten queries; compare ns/op between
// the PerProbe and Fused sub-benchmarks for the CPU speedup, and the
// sim-io-s/op metric for the I/O side.
func BenchmarkFusedPipeline(b *testing.B) {
	db := benchDB()
	var joinQueries []*ssb.Query
	for _, q := range ssb.Queries() {
		if q.Flight >= 2 {
			joinQueries = append(joinQueries, q)
		}
	}
	fusedPar := exec.FusedOpt
	fusedPar.Workers = 4
	for _, sys := range []struct {
		name string
		cfg  core.Config
	}{
		{"PerProbe", core.ColumnStore(exec.FullOpt)},
		{"Fused", core.ColumnStore(exec.FusedOpt)},
		{"FusedParallel", core.ColumnStore(fusedPar)},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) {
			// Warm-up validates the configuration end to end.
			for _, q := range joinQueries {
				if _, _, err := db.Run(q.ID, sys.cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var ioSecs float64
			for i := 0; i < b.N; i++ {
				for _, q := range joinQueries {
					_, stats, err := db.Run(q.ID, sys.cfg)
					if err != nil {
						b.Fatal(err)
					}
					ioSecs += stats.IOTime.Seconds()
				}
			}
			b.ReportMetric(ioSecs/float64(b.N), "sim-io-s/op")
		})
	}
}

// BenchmarkStorageSizes reports the Section 6.2 storage comparison as
// benchmark metrics (bytes per value for each layout).
func BenchmarkStorageSizes(b *testing.B) {
	db := benchDB()
	n := float64(db.Data.NumLineorders())
	col := db.ColumnDB(true)
	colPlain := db.ColumnDB(false)
	sx := db.RowDB()
	var vpBytes int64
	for _, vt := range sx.VP {
		vpBytes += vt.HeapBytes()
	}
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// No work: this benchmark exists to publish size metrics.
		}
		b.ReportMetric(float64(sx.Fact.HeapBytes())/(n*17), "rowheap-B/val")
		b.ReportMetric(float64(vpBytes)/(n*float64(len(sx.VP))), "vp-B/val")
		b.ReportMetric(float64(colPlain.Fact.CompressedBytes())/(n*17), "colplain-B/val")
		b.ReportMetric(float64(col.Fact.CompressedBytes())/(n*17), "colcomp-B/val")
	})
}

// BenchmarkPartitioning reports the Section 6.1 partition-pruning ablation:
// one iteration runs all 13 queries with and without pruning.
func BenchmarkPartitioning(b *testing.B) {
	db := benchDB()
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"pruned", core.RowStore(rowexec.Traditional)},
		{"unpruned", core.Config{Kind: core.KindRow, Design: rowexec.Traditional}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) { benchSystem(b, db, mode.cfg) })
	}
}

// BenchmarkProjections reports the redundant-sort-order extension (see
// EXPERIMENTS.md): baseline C-Store vs projection-enabled.
func BenchmarkProjections(b *testing.B) {
	db := benchDB()
	for _, sys := range []struct {
		name string
		cfg  core.Config
	}{
		{"base", core.ColumnStore(exec.FullOpt)},
		{"projected", core.ColumnStoreProjected(exec.FullOpt)},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) { benchSystem(b, db, sys.cfg) })
	}
}

// BenchmarkConclusion reports the super-tuple row-store simulation from the
// paper's conclusion (see EXPERIMENTS.md).
func BenchmarkConclusion(b *testing.B) {
	db := benchDB()
	for _, sys := range []struct {
		name string
		cfg  core.Config
	}{
		{"VP-naive", core.RowStore(rowexec.VerticalPartitioning)},
		{"VP-super", core.SuperTupleVP()},
		{"CS-nocompress", core.ColumnStore(exec.Config{BlockIter: true, InvisibleJoin: true, LateMat: true})},
		{"CS-full", core.ColumnStore(exec.FullOpt)},
	} {
		sys := sys
		b.Run(sys.name, func(b *testing.B) { benchSystem(b, db, sys.cfg) })
	}
}
