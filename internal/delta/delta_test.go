package delta

import (
	"sync"
	"testing"
)

func mkBatch(t *testing.T, vals ...int32) *Batch {
	t.Helper()
	b, err := NewBatch([]Column{{Name: "x", Vals: vals}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchZoneMap(t *testing.T) {
	b := mkBatch(t, 5, -3, 12, 7)
	mn, mx, ok := b.MinMax("x")
	if !ok || mn != -3 || mx != 12 {
		t.Fatalf("MinMax = %d,%d,%v want -3,12,true", mn, mx, ok)
	}
	if _, _, ok := b.MinMax("nope"); ok {
		t.Fatal("MinMax on a missing column reported ok")
	}
	if b.Bytes() != 16 {
		t.Fatalf("Bytes = %d want 16", b.Bytes())
	}
	if _, err := NewBatch([]Column{{Name: "a", Vals: []int32{1}}, {Name: "b", Vals: []int32{1, 2}}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, err := NewBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestSealRetainsSnapshots pins the WS invariant the snapshot design rests
// on: sealing drops batches from the store, but a view taken earlier keeps
// reading the exact rows it covered.
func TestSealRetainsSnapshots(t *testing.T) {
	s := NewStore()
	s.Append(mkBatch(t, 1, 2, 3))
	s.Append(mkBatch(t, 4, 5))
	view := s.Snapshot()
	if view.Len() != 5 {
		t.Fatalf("view len %d want 5", view.Len())
	}

	s.Seal(4) // consumes batch 1 wholly and batch 2 partially
	if got := s.Pending(); got != 1 {
		t.Fatalf("pending %d want 1", got)
	}
	late := s.Snapshot()
	if late.Len() != 1 {
		t.Fatalf("late view len %d want 1", late.Len())
	}
	if got := late.Gather("x", 1, nil); len(got) != 1 || got[0] != 5 {
		t.Fatalf("late view rows = %v want [5]", got)
	}
	// The early view still covers all five rows.
	if got := view.Gather("x", 5, nil); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("early view rows = %v want [1 2 3 4 5]", got)
	}
	s.Seal(1)
	if s.Pending() != 0 || s.Bytes() != 0 {
		t.Fatalf("drained store pending=%d bytes=%d, want 0/0", s.Pending(), s.Bytes())
	}
	if s.Total() != 5 || s.Sealed() != 5 {
		t.Fatalf("total/sealed = %d/%d want 5/5", s.Total(), s.Sealed())
	}
}

func TestViewForEachRanges(t *testing.T) {
	s := NewStore()
	s.Append(mkBatch(t, 0, 1, 2))
	s.Seal(2)
	s.Append(mkBatch(t, 3, 4))
	v := s.Snapshot()
	var got []int32
	v.ForEach(func(b *Batch, lo, hi int) bool {
		got = append(got, b.Col("x")[lo:hi]...)
		return true
	})
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("visible rows = %v want [2 3 4]", got)
	}
	if v.Bytes() == 0 {
		t.Fatal("view over live batches reports zero bytes")
	}
}

// TestStoreConcurrency exercises append/snapshot/seal races under -race.
func TestStoreConcurrency(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Append(mkBatch(t, int32(i), int32(i+1)))
				v := s.Snapshot()
				v.ForEach(func(b *Batch, lo, hi int) bool { return hi > lo })
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if s.Sealed() >= 1600 {
				return
			}
			if p := s.Pending(); p > 0 {
				s.Seal(1)
			}
		}
	}()
	wg.Wait()
	for s.Sealed() < 1600 {
		s.Seal(1)
	}
	<-done
	if s.Total() != 1600 || s.Pending() != 0 {
		t.Fatalf("total=%d pending=%d, want 1600/0", s.Total(), s.Pending())
	}
}
