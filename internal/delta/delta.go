// Package delta is the write-optimized store (WS) of the C-Store-style
// WS/RS split: an in-memory, append-only sequence of columnar row batches
// that absorbs inserts while the read-optimized compressed segment store
// serves scans. Rows live here from the moment a client inserts them until
// the tuple mover (the compactor in internal/exec) freezes a prefix into
// compressed on-disk segments; a snapshot taken at query start sees one
// consistent frontier — every row is in exactly one of the two stores.
//
// Batches are immutable once appended. A View holds references to the
// batches it covers, so the store can drop compacted batches immediately
// (Seal) while in-flight queries keep reading their snapshot; the garbage
// collector reclaims a batch when the last snapshot referencing it
// finishes. Every batch records per-column min/max, so zone-map pruning
// works on unflushed data exactly as it does on sealed segments.
package delta

import (
	"fmt"
	"sync"
)

// Column is one attribute of an insert batch: all values are int32 in the
// fact table's physical representation (foreign keys remapped to dimension
// positions, strings as dictionary codes).
type Column struct {
	Name string
	Vals []int32
}

// Batch is an immutable columnar chunk of inserted rows. Construction takes
// ownership of the value slices; callers must not mutate them afterwards.
type Batch struct {
	n      int
	names  []string
	cols   [][]int32
	mins   []int32
	maxs   []int32
	byName map[string]int
	bytes  int64
}

// NewBatch builds a batch over equal-length columns, computing each
// column's running min/max (the batch's zone map).
func NewBatch(cols []Column) (*Batch, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("delta: batch has no columns")
	}
	n := len(cols[0].Vals)
	if n == 0 {
		return nil, fmt.Errorf("delta: batch has no rows")
	}
	b := &Batch{n: n, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if len(c.Vals) != n {
			return nil, fmt.Errorf("delta: column %q has %d rows, batch has %d", c.Name, len(c.Vals), n)
		}
		if _, dup := b.byName[c.Name]; dup {
			return nil, fmt.Errorf("delta: duplicate column %q in batch", c.Name)
		}
		mn, mx := c.Vals[0], c.Vals[0]
		for _, v := range c.Vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		b.byName[c.Name] = len(b.cols)
		b.names = append(b.names, c.Name)
		b.cols = append(b.cols, c.Vals)
		b.mins = append(b.mins, mn)
		b.maxs = append(b.maxs, mx)
		b.bytes += int64(n) * 4
	}
	return b, nil
}

// Len returns the batch row count.
func (b *Batch) Len() int { return b.n }

// Bytes returns the batch's resident memory (4 bytes per value).
func (b *Batch) Bytes() int64 { return b.bytes }

// Col returns the named column's values, or nil when absent.
func (b *Batch) Col(name string) []int32 {
	i, ok := b.byName[name]
	if !ok {
		return nil
	}
	return b.cols[i]
}

// MinMax returns the named column's zone-map bounds.
func (b *Batch) MinMax(name string) (mn, mx int32, ok bool) {
	i, present := b.byName[name]
	if !present {
		return 0, 0, false
	}
	return b.mins[i], b.maxs[i], true
}

// Store is the write-optimized store: batches in arrival order, addressed
// by a global row index that never rewinds. Rows [0, sealed) have been
// migrated to the read-optimized store and are no longer served from here;
// rows [sealed, total) are the live delta. All methods are safe for
// concurrent use, but the cross-store consistency of (sealed segments,
// delta watermark) is the caller's responsibility: internal/exec takes its
// snapshot and flips the frontier under one lock.
type Store struct {
	mu      sync.Mutex
	batches []*Batch
	offs    []int64 // global row index of each batch's first row
	sealed  int64
	total   int64
	bytes   int64 // resident bytes of retained batches
}

// NewStore returns an empty write store.
func NewStore() *Store { return &Store{} }

// Append adds a batch and returns the new total (rows ever inserted).
func (s *Store) Append(b *Batch) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, b)
	s.offs = append(s.offs, s.total)
	s.total += int64(b.Len())
	s.bytes += b.Bytes()
	return s.total
}

// Total returns the number of rows ever inserted (the store's epoch: it
// increases on every insert and never decreases, so it versions the visible
// data for result caching).
func (s *Store) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Sealed returns the rows migrated to the read-optimized store.
func (s *Store) Sealed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// Pending returns the live delta row count (total - sealed).
func (s *Store) Pending() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - s.sealed
}

// Bytes returns the resident memory of retained batches. Wholly sealed
// batches are dropped by Seal, so this tracks the live delta plus any
// partially sealed batch still referenced.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Snapshot returns a view of the live delta rows [sealed, total). The view
// keeps its batches alive independently of later Seal calls.
func (s *Store) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &View{
		batches: s.batches,
		offs:    s.offs,
		lo:      s.sealed,
		hi:      s.total,
	}
}

// Seal advances the sealed watermark by n rows and drops batches that fall
// entirely below it. Views snapshotted earlier still reference the dropped
// batches and keep working.
func (s *Store) Seal(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed += n
	if s.sealed > s.total {
		panic(fmt.Sprintf("delta: sealed watermark %d past total %d", s.sealed, s.total))
	}
	drop := 0
	for drop < len(s.batches) && s.offs[drop]+int64(s.batches[drop].Len()) <= s.sealed {
		s.bytes -= s.batches[drop].Bytes()
		drop++
	}
	if drop > 0 {
		// Fresh slices so the retained tail does not pin the dropped
		// batches through the old backing array.
		s.batches = append([]*Batch(nil), s.batches[drop:]...)
		s.offs = append([]int64(nil), s.offs[drop:]...)
	}
}

// View is a consistent snapshot of a delta row range. It is immutable and
// safe to share across goroutines.
type View struct {
	batches []*Batch
	offs    []int64
	lo, hi  int64
}

// Len returns the number of visible rows.
func (v *View) Len() int64 { return v.hi - v.lo }

// Lo returns the global row index of the view's first visible row. Callers
// that address rows in the store's global index space (deletion vectors,
// WAL replay) anchor their cursors here: the first row ForEach yields has
// global index Lo, and subsequent rows follow contiguously.
func (v *View) Lo() int64 { return v.lo }

// Bytes returns the resident memory of the batches the view touches — the
// term admission control charges a query for scanning the write store.
func (v *View) Bytes() int64 {
	var n int64
	v.ForEach(func(b *Batch, _, _ int) bool {
		n += b.Bytes()
		return true
	})
	return n
}

// ForEach walks the visible batches in row order, passing each batch with
// its visible batch-local range [lo, hi). fn returns false to stop early.
func (v *View) ForEach(fn func(b *Batch, lo, hi int) bool) {
	for i, b := range v.batches {
		start, end := v.offs[i], v.offs[i]+int64(b.Len())
		if end <= v.lo {
			continue
		}
		if start >= v.hi {
			return
		}
		lo, hi := 0, b.Len()
		if start < v.lo {
			lo = int(v.lo - start)
		}
		if end > v.hi {
			hi = int(v.hi - start)
		}
		if !fn(b, lo, hi) {
			return
		}
	}
}

// Gather appends the named column's values for the first n visible rows to
// dst. It panics if a covered batch lacks the column (insert translation
// populates every physical fact column) or if n exceeds the view.
func (v *View) Gather(name string, n int64, dst []int32) []int32 {
	if n > v.Len() {
		panic(fmt.Sprintf("delta: gather of %d rows from a %d-row view", n, v.Len()))
	}
	remaining := n
	v.ForEach(func(b *Batch, lo, hi int) bool {
		if remaining <= 0 {
			return false
		}
		vals := b.Col(name)
		if vals == nil {
			panic(fmt.Sprintf("delta: batch lacks column %q", name))
		}
		take := int64(hi - lo)
		if take > remaining {
			take = remaining
		}
		dst = append(dst, vals[lo:lo+int(take)]...)
		remaining -= take
		return true
	})
	return dst
}
