package datafile

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ssb"
)

func roundTrip(t *testing.T, d *ssb.Data) *ssb.Data {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	d := ssb.Generate(0.005)
	got := roundTrip(t, d)
	if got.SF != d.SF {
		t.Fatalf("SF = %v want %v", got.SF, d.SF)
	}
	if got.NumLineorders() != d.NumLineorders() || got.NumDates() != d.NumDates() {
		t.Fatal("cardinalities differ after round trip")
	}
	// Spot-check every column type.
	for i := 0; i < d.NumLineorders(); i += 101 {
		if got.Line.Revenue[i] != d.Line.Revenue[i] ||
			got.Line.OrdPriority[i] != d.Line.OrdPriority[i] ||
			got.Line.ShipMode[i] != d.Line.ShipMode[i] {
			t.Fatalf("lineorder row %d differs", i)
		}
	}
	for i := range d.Customer.Key {
		if got.Customer.City[i] != d.Customer.City[i] || got.Customer.Key[i] != d.Customer.Key[i] {
			t.Fatalf("customer row %d differs", i)
		}
	}
	for i := range d.Date.Key {
		if got.Date.YearMonth[i] != d.Date.YearMonth[i] || got.Date.Year[i] != d.Date.Year[i] {
			t.Fatalf("date row %d differs", i)
		}
	}
}

// TestLoadedDataExecutesIdentically: queries over a reloaded dataset return
// exactly the same results as over the original.
func TestLoadedDataExecutesIdentically(t *testing.T) {
	d := ssb.Generate(0.005)
	got := roundTrip(t, d)
	for _, id := range []string{"1.1", "2.1", "3.1", "4.3"} {
		q := ssb.QueryByID(id)
		a := ssb.Reference(d, q)
		b := ssb.Reference(got, q)
		if !a.Equal(b) {
			t.Errorf("Q%s differs after reload:\n%s", id, a.Diff(b))
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := ssb.Generate(0.002)
	path := filepath.Join(t.TempDir(), "ssb.dat")
	if err := Save(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLineorders() != d.NumLineorders() {
		t.Fatal("loaded cardinality differs")
	}
	// Atomic save leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.dat")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTADATAFILE AT ALL"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut at several points: inside the header, inside a payload, at the
	// very end minus a few bytes.
	for _, cut := range []int{4, 15, len(full) / 3, len(full) - 3} {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d of %d not detected", cut, len(full))
		}
	}
}

// TestCorruptionDetected flips bytes throughout the file and requires every
// flip inside a payload to be caught by the CRC (flips in headers are
// caught by structural checks or name mismatches; a handful of length
// fields may legitimately surface as read errors).
func TestCorruptionDetected(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	undetected := 0
	trials := 0
	for off := len(magic) + 12; off < len(full); off += len(full) / 97 {
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0xFF
		trials++
		if _, err := Read(bytes.NewReader(corrupt)); err == nil {
			undetected++
		}
	}
	if undetected > 0 {
		t.Fatalf("%d of %d corruptions went undetected", undetected, trials)
	}
}

func TestReadFailsOnShortReader(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	// A reader that errors halfway.
	half := buf.Len() / 2
	r := io.MultiReader(bytes.NewReader(buf.Bytes()[:half]), errReader{})
	if _, err := Read(r); err == nil {
		t.Fatal("mid-stream read error not propagated")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestDeterministicBytes(t *testing.T) {
	d := ssb.Generate(0.002)
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}
}
