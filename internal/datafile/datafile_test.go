package datafile

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ssb"
)

func roundTrip(t *testing.T, d *ssb.Data) *ssb.Data {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	d := ssb.Generate(0.005)
	got := roundTrip(t, d)
	if got.SF != d.SF {
		t.Fatalf("SF = %v want %v", got.SF, d.SF)
	}
	if got.NumLineorders() != d.NumLineorders() || got.NumDates() != d.NumDates() {
		t.Fatal("cardinalities differ after round trip")
	}
	// Spot-check every column type.
	for i := 0; i < d.NumLineorders(); i += 101 {
		if got.Line.Revenue[i] != d.Line.Revenue[i] ||
			got.Line.OrdPriority[i] != d.Line.OrdPriority[i] ||
			got.Line.ShipMode[i] != d.Line.ShipMode[i] {
			t.Fatalf("lineorder row %d differs", i)
		}
	}
	for i := range d.Customer.Key {
		if got.Customer.City[i] != d.Customer.City[i] || got.Customer.Key[i] != d.Customer.Key[i] {
			t.Fatalf("customer row %d differs", i)
		}
	}
	for i := range d.Date.Key {
		if got.Date.YearMonth[i] != d.Date.YearMonth[i] || got.Date.Year[i] != d.Date.Year[i] {
			t.Fatalf("date row %d differs", i)
		}
	}
}

// TestLoadedDataExecutesIdentically: queries over a reloaded dataset return
// exactly the same results as over the original.
func TestLoadedDataExecutesIdentically(t *testing.T) {
	d := ssb.Generate(0.005)
	got := roundTrip(t, d)
	for _, id := range []string{"1.1", "2.1", "3.1", "4.3"} {
		q := ssb.QueryByID(id)
		a := ssb.Reference(d, q)
		b := ssb.Reference(got, q)
		if !a.Equal(b) {
			t.Errorf("Q%s differs after reload:\n%s", id, a.Diff(b))
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := ssb.Generate(0.002)
	path := filepath.Join(t.TempDir(), "ssb.dat")
	if err := Save(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLineorders() != d.NumLineorders() {
		t.Fatal("loaded cardinality differs")
	}
	// Atomic save leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.dat")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTADATAFILE AT ALL"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut at several points: inside the header, inside a payload, at the
	// very end minus a few bytes.
	for _, cut := range []int{4, 15, len(full) / 3, len(full) - 3} {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d of %d not detected", cut, len(full))
		}
	}
}

// TestCorruptionDetected flips bytes throughout the file and requires every
// flip inside a payload to be caught by the CRC (flips in headers are
// caught by structural checks or name mismatches; a handful of length
// fields may legitimately surface as read errors).
func TestCorruptionDetected(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	undetected := 0
	trials := 0
	for off := len(magic) + 12; off < len(full); off += len(full) / 97 {
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0xFF
		trials++
		if _, err := Read(bytes.NewReader(corrupt)); err == nil {
			undetected++
		}
	}
	if undetected > 0 {
		t.Fatalf("%d of %d corruptions went undetected", undetected, trials)
	}
}

func TestReadFailsOnShortReader(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	// A reader that errors halfway.
	half := buf.Len() / 2
	r := io.MultiReader(bytes.NewReader(buf.Bytes()[:half]), errReader{})
	if _, err := Read(r); err == nil {
		t.Fatal("mid-stream read error not propagated")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

// secLoc records where one section's fields live in the serialized stream,
// so corruption tests can hit each field surgically.
type secLoc struct {
	name       string
	nameOff    int // offset of the name bytes
	kindOff    int // offset of the kind byte
	rowsOff    int // offset of the rows field
	lenOff     int // offset of the payloadLen field
	crcOff     int // offset of the crc field
	payloadOff int // offset of the payload bytes
	payloadLen int
}

// walkSections parses the file layout (magic, sf, nsect, sections) and
// returns the field offsets of every section.
func walkSections(t *testing.T, full []byte) []secLoc {
	t.Helper()
	pos := len(magic) + 8 + 4
	var out []secLoc
	for pos < len(full) {
		var loc secLoc
		nameLen := int(uint16(full[pos]) | uint16(full[pos+1])<<8)
		loc.nameOff = pos + 2
		loc.name = string(full[loc.nameOff : loc.nameOff+nameLen])
		loc.kindOff = loc.nameOff + nameLen
		loc.rowsOff = loc.kindOff + 1
		loc.lenOff = loc.rowsOff + 4
		loc.crcOff = loc.lenOff + 8
		loc.payloadOff = loc.crcOff + 4
		loc.payloadLen = int(uint32(full[loc.lenOff]) | uint32(full[loc.lenOff+1])<<8 |
			uint32(full[loc.lenOff+2])<<16 | uint32(full[loc.lenOff+3])<<24)
		out = append(out, loc)
		pos = loc.payloadOff + loc.payloadLen
	}
	return out
}

// TestSectionErrorPaths exercises every section-level failure mode with a
// surgical corruption, and requires the error to both describe the failure
// and name the offending section.
func TestSectionErrorPaths(t *testing.T) {
	d := ssb.Generate(0.002)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	secs := walkSections(t, full)
	if len(secs) < 3 {
		t.Fatalf("walker found only %d sections", len(secs))
	}
	// Pick sections away from the file edges, one of each kind:
	// customer.key (int32) and customer.city (string).
	var intSec, strSec secLoc
	for _, s := range secs {
		switch s.name {
		case "customer.key":
			intSec = s
		case "customer.city":
			strSec = s
		}
	}
	if intSec.name == "" || strSec.name == "" {
		t.Fatal("expected sections not found")
	}

	cases := []struct {
		label    string
		sec      secLoc
		mutate   func(b []byte, s secLoc) []byte
		wantErr  string
		wantName string
	}{
		{"crc-mismatch-int", intSec, func(b []byte, s secLoc) []byte {
			b[s.payloadOff+5] ^= 0xFF
			return b
		}, "checksum mismatch", intSec.name},
		{"crc-mismatch-str", strSec, func(b []byte, s secLoc) []byte {
			b[s.payloadOff+s.payloadLen-1] ^= 0xFF
			return b
		}, "checksum mismatch", strSec.name},
		{"short-payload", intSec, func(b []byte, s secLoc) []byte {
			return b[:s.payloadOff+s.payloadLen/2]
		}, "truncated payload", intSec.name},
		{"name-mismatch", intSec, func(b []byte, s secLoc) []byte {
			b[s.nameOff] ^= 0x20
			return b
		}, "found section", intSec.name},
		{"kind-mismatch", intSec, func(b []byte, s secLoc) []byte {
			// Flip int32 -> string kind; the CRC still matches, so the
			// kind/type check must catch it.
			b[s.kindOff] = kindStr
			return b
		}, "does not match expected column type", intSec.name},
		{"rows-vs-payload", intSec, func(b []byte, s secLoc) []byte {
			// Shrink the declared row count; payload CRC still matches.
			b[s.rowsOff]--
			return b
		}, "does not match", intSec.name},
		{"implausible-length", intSec, func(b []byte, s secLoc) []byte {
			for i := 0; i < 8; i++ {
				b[s.lenOff+i] = 0xFF
			}
			return b
		}, "implausible payload size", intSec.name},
		{"offsets-out-of-order", strSec, func(b []byte, s secLoc) []byte {
			// Swap two cumulative string offsets so they decrease, then
			// refresh the CRC so only the offset check can object.
			copy(b[s.payloadOff:], []byte{0xFF, 0xFF, 0xFF, 0x7F})
			crc := crc32.ChecksumIEEE(b[s.payloadOff : s.payloadOff+s.payloadLen])
			binary.LittleEndian.PutUint32(b[s.crcOff:], crc)
			return b
		}, "out of order or out of range", strSec.name},
		{"truncated-header", intSec, func(b []byte, s secLoc) []byte {
			return b[:s.kindOff+2] // mid section header
		}, "", intSec.name},
	}
	for _, tc := range cases {
		b := append([]byte(nil), full...)
		_, err := Read(bytes.NewReader(tc.mutate(b, tc.sec)))
		if err == nil {
			t.Errorf("%s: corruption not detected", tc.label)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.label, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), tc.wantName) {
			t.Errorf("%s: err = %v does not name section %q", tc.label, err, tc.wantName)
		}
	}
}

// TestBadMagicNamesProblem pins the non-section framing errors: bad magic
// and a file too short for the header.
func TestHeaderErrorPaths(t *testing.T) {
	if _, err := Read(strings.NewReader("SSBREPR9xxxxxxxxxxxx")); err == nil ||
		!strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("wrong-version magic: %v", err)
	}
	if _, err := Read(strings.NewReader("SSB")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("short header: %v", err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	d := ssb.Generate(0.002)
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}
}
