// Package datafile persists generated SSBM datasets in a compact binary
// columnar format, so large scale factors are generated once (cmd/ssb-gen
// -out) and loaded by the query and benchmark tools (-data) instead of
// regenerated.
//
// Layout (all integers little-endian):
//
//	magic   8  "SSBREPR1"
//	sf      8  float64 bits
//	nsect   4  section count
//	sections, each:
//	  nameLen 2, name, kind 1 (0=int32 column, 1=string column),
//	  rows 4, payloadLen 8, crc32(payload) 4, payload
//
// Int32 payloads are raw 4-byte values. String payloads are a cumulative
// offset table (4 bytes per row, offset of the end of each string) followed
// by the concatenated bytes. Every section carries a CRC32 so corrupt or
// truncated files fail loudly rather than produce wrong benchmark numbers.
package datafile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/ssb"
)

const magic = "SSBREPR1"

const (
	kindInt32 = 0
	kindStr   = 1
)

// section order is fixed so files are deterministic.
type section struct {
	name string
	ints *[]int32
	strs *[]string
}

// sections enumerates every column of a Data in a stable order.
func sections(d *ssb.Data) []section {
	c, s, p, dd, lo := &d.Customer, &d.Supplier, &d.Part, &d.Date, &d.Line
	return []section{
		{"customer.key", &c.Key, nil}, {"customer.name", nil, &c.Name},
		{"customer.address", nil, &c.Address}, {"customer.city", nil, &c.City},
		{"customer.nation", nil, &c.Nation}, {"customer.region", nil, &c.Region},
		{"customer.phone", nil, &c.Phone}, {"customer.mktsegment", nil, &c.MktSegment},

		{"supplier.key", &s.Key, nil}, {"supplier.name", nil, &s.Name},
		{"supplier.address", nil, &s.Address}, {"supplier.city", nil, &s.City},
		{"supplier.nation", nil, &s.Nation}, {"supplier.region", nil, &s.Region},
		{"supplier.phone", nil, &s.Phone},

		{"part.key", &p.Key, nil}, {"part.name", nil, &p.Name},
		{"part.mfgr", nil, &p.MFGR}, {"part.category", nil, &p.Category},
		{"part.brand1", nil, &p.Brand1}, {"part.color", nil, &p.Color},
		{"part.type", nil, &p.Type}, {"part.size", &p.Size, nil},
		{"part.container", nil, &p.Container},

		{"date.key", &dd.Key, nil}, {"date.date", nil, &dd.Date},
		{"date.dayofweek", nil, &dd.DayOfWeek}, {"date.month", nil, &dd.Month},
		{"date.year", &dd.Year, nil}, {"date.yearmonthnum", &dd.YearMonthNum, nil},
		{"date.yearmonth", nil, &dd.YearMonth}, {"date.daynuminweek", &dd.DayNumInWeek, nil},
		{"date.daynuminmonth", &dd.DayNumInMonth, nil}, {"date.daynuminyear", &dd.DayNumInYear, nil},
		{"date.monthnuminyear", &dd.MonthNumInYr, nil}, {"date.weeknuminyear", &dd.WeekNumInYear, nil},
		{"date.sellingseason", nil, &dd.SellingSeason},

		{"lineorder.orderkey", &lo.OrderKey, nil}, {"lineorder.linenumber", &lo.LineNumber, nil},
		{"lineorder.custkey", &lo.CustKey, nil}, {"lineorder.partkey", &lo.PartKey, nil},
		{"lineorder.suppkey", &lo.SuppKey, nil}, {"lineorder.orderdate", &lo.OrderDate, nil},
		{"lineorder.ordpriority", nil, &lo.OrdPriority}, {"lineorder.shippriority", &lo.ShipPriority, nil},
		{"lineorder.quantity", &lo.Quantity, nil}, {"lineorder.extendedprice", &lo.ExtendedPrice, nil},
		{"lineorder.ordtotalprice", &lo.OrdTotalPrice, nil}, {"lineorder.discount", &lo.Discount, nil},
		{"lineorder.revenue", &lo.Revenue, nil}, {"lineorder.supplycost", &lo.SupplyCost, nil},
		{"lineorder.tax", &lo.Tax, nil}, {"lineorder.commitdate", &lo.CommitDate, nil},
		{"lineorder.shipmode", nil, &lo.ShipMode},
	}
}

// Write serializes d to w.
func Write(w io.Writer, d *ssb.Data) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	secs := sections(d)
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(d.SF)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(secs))); err != nil {
		return err
	}
	for _, sec := range secs {
		if err := writeSection(bw, sec); err != nil {
			return fmt.Errorf("datafile: section %s: %w", sec.name, err)
		}
	}
	return bw.Flush()
}

func writeSection(w io.Writer, sec section) error {
	var payload []byte
	var kind byte
	var rows uint32
	if sec.ints != nil {
		kind = kindInt32
		vals := *sec.ints
		rows = uint32(len(vals))
		payload = make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(payload[4*i:], uint32(v))
		}
	} else {
		kind = kindStr
		vals := *sec.strs
		rows = uint32(len(vals))
		total := 0
		for _, s := range vals {
			total += len(s)
		}
		payload = make([]byte, 4*len(vals)+total)
		off := uint32(0)
		for i, s := range vals {
			off += uint32(len(s))
			binary.LittleEndian.PutUint32(payload[4*i:], off)
		}
		pos := 4 * len(vals)
		for _, s := range vals {
			copy(payload[pos:], s)
			pos += len(s)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(sec.name))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, sec.name); err != nil {
		return err
	}
	hdr := make([]byte, 1+4+8+4)
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], rows)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read deserializes a dataset written by Write, verifying section
// checksums.
func Read(r io.Reader) (*ssb.Data, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("datafile: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("datafile: bad magic %q (not an SSB data file, or wrong version)", got)
	}
	var sfBits uint64
	if err := binary.Read(br, binary.LittleEndian, &sfBits); err != nil {
		return nil, err
	}
	var nsect uint32
	if err := binary.Read(br, binary.LittleEndian, &nsect); err != nil {
		return nil, err
	}
	d := &ssb.Data{SF: math.Float64frombits(sfBits)}
	secs := sections(d)
	if int(nsect) != len(secs) {
		return nil, fmt.Errorf("datafile: file has %d sections, expected %d (format mismatch)", nsect, len(secs))
	}
	for _, sec := range secs {
		if err := readSection(br, sec); err != nil {
			return nil, fmt.Errorf("datafile: section %s: %w", sec.name, err)
		}
	}
	return d, nil
}

func readSection(r io.Reader, sec section) error {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return err
	}
	if string(name) != sec.name {
		return fmt.Errorf("found section %q, expected %q", name, sec.name)
	}
	hdr := make([]byte, 1+4+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	kind := hdr[0]
	rows := binary.LittleEndian.Uint32(hdr[1:])
	payloadLen := binary.LittleEndian.Uint64(hdr[5:])
	wantCRC := binary.LittleEndian.Uint32(hdr[13:])
	if payloadLen > 1<<36 {
		return fmt.Errorf("implausible payload size %d", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("truncated payload: %w", err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return fmt.Errorf("checksum mismatch (file corrupt): got %08x want %08x", crc, wantCRC)
	}
	switch {
	case kind == kindInt32 && sec.ints != nil:
		if uint64(rows)*4 != payloadLen {
			return fmt.Errorf("int32 payload size %d does not match %d rows", payloadLen, rows)
		}
		vals := make([]int32, rows)
		for i := range vals {
			vals[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		*sec.ints = vals
	case kind == kindStr && sec.strs != nil:
		if uint64(rows)*4 > payloadLen {
			return fmt.Errorf("string offset table larger than payload")
		}
		vals := make([]string, rows)
		base := uint64(rows) * 4
		// One string backing the whole section keeps allocations flat.
		blob := string(payload[base:])
		prev := uint32(0)
		for i := range vals {
			end := binary.LittleEndian.Uint32(payload[4*i:])
			if end < prev || uint64(end) > uint64(len(blob)) {
				return fmt.Errorf("string offsets out of order or out of range")
			}
			vals[i] = blob[prev:end]
			prev = end
		}
		*sec.strs = vals
	default:
		return fmt.Errorf("section kind %d does not match expected column type", kind)
	}
	return nil
}

// Save writes the dataset to path atomically (temp file + rename).
func Save(path string, d *ssb.Data) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a dataset from path.
func Load(path string) (*ssb.Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
