package sql

import (
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/ssb"
)

// officialSQL holds the thirteen SSBM queries in their published SQL form
// (O'Neil et al., "The Star Schema Benchmark"), with the paper's Q3.1 text
// using table aliases to exercise qualified references.
var officialSQL = map[string]string{
	"1.1": `SELECT sum(lo_extendedprice*lo_discount) AS revenue
		FROM lineorder, dwdate
		WHERE lo_orderdate = d_datekey AND d_year = 1993
		  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;`,
	"1.2": `SELECT sum(lo_extendedprice*lo_discount) AS revenue
		FROM lineorder, dwdate
		WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401
		  AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35;`,
	"1.3": `SELECT sum(lo_extendedprice*lo_discount) AS revenue
		FROM lineorder, dwdate
		WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6
		  AND d_year = 1994
		  AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 36 AND 40;`,
	"2.1": `SELECT sum(lo_revenue), d_year, p_brand1
		FROM lineorder, dwdate, part, supplier
		WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
		  AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12'
		  AND s_region = 'AMERICA'
		GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;`,
	"2.2": `SELECT sum(lo_revenue), d_year, p_brand1
		FROM lineorder, dwdate, part, supplier
		WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
		  AND lo_suppkey = s_suppkey
		  AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'
		  AND s_region = 'ASIA'
		GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;`,
	"2.3": `SELECT sum(lo_revenue), d_year, p_brand1
		FROM lineorder, dwdate, part, supplier
		WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
		  AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2239'
		  AND s_region = 'EUROPE'
		GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;`,
	// Paper Section 5.4's rendition of Q3.1, with aliases.
	"3.1": `SELECT c.nation, s.nation, d.year, sum(lo.revenue) AS revenue
		FROM customer AS c, lineorder AS lo, supplier AS s, dwdate AS d
		WHERE lo.custkey = c.custkey AND lo.suppkey = s.suppkey
		  AND lo.orderdate = d.datekey AND c.region = 'ASIA'
		  AND s.region = 'ASIA' AND d.year >= 1992 AND d.year <= 1997
		GROUP BY c.nation, s.nation, d.year
		ORDER BY d.year ASC, revenue DESC;`,
	"3.2": `SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
		FROM customer, lineorder, supplier, dwdate
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_orderdate = d_datekey AND c_nation = 'UNITED STATES'
		  AND s_nation = 'UNITED STATES' AND d_year BETWEEN 1992 AND 1997
		GROUP BY c_city, s_city, d_year;`,
	"3.3": `SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
		FROM customer, lineorder, supplier, dwdate
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_orderdate = d_datekey
		  AND c_city IN ('UNITED KI1', 'UNITED KI5')
		  AND s_city IN ('UNITED KI1', 'UNITED KI5')
		  AND d_year BETWEEN 1992 AND 1997
		GROUP BY c_city, s_city, d_year;`,
	"3.4": `SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
		FROM customer, lineorder, supplier, dwdate
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_orderdate = d_datekey
		  AND c_city IN ('UNITED KI1', 'UNITED KI5')
		  AND s_city IN ('UNITED KI1', 'UNITED KI5')
		  AND d_yearmonth = 'Dec1997'
		GROUP BY c_city, s_city, d_year;`,
	"4.1": `SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit
		FROM dwdate, customer, supplier, part, lineorder
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
		  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
		  AND p_mfgr IN ('MFGR#1', 'MFGR#2')
		GROUP BY d_year, c_nation;`,
	"4.2": `SELECT d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) AS profit
		FROM dwdate, customer, supplier, part, lineorder
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
		  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
		  AND d_year IN (1997, 1998) AND p_mfgr IN ('MFGR#1', 'MFGR#2')
		GROUP BY d_year, s_nation, p_category;`,
	"4.3": `SELECT d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) AS profit
		FROM dwdate, customer, supplier, part, lineorder
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
		  AND c_region = 'AMERICA' AND s_nation = 'UNITED STATES'
		  AND d_year IN (1997, 1998) AND p_category = 'MFGR#14'
		GROUP BY d_year, s_city, p_brand1;`,
}

var sqlTestData = ssb.Generate(0.01)

// TestOfficialQueriesMatchBuiltins parses the published SQL of all thirteen
// queries and checks the compiled plans produce exactly the same results as
// the hand-built logical plans in internal/ssb.
func TestOfficialQueriesMatchBuiltins(t *testing.T) {
	for id, text := range officialSQL {
		parsed, err := Parse(id, text)
		if err != nil {
			t.Errorf("Q%s: parse failed: %v", id, err)
			continue
		}
		builtin := ssb.QueryByID(id)
		want := ssb.Reference(sqlTestData, builtin)
		got := ssb.Reference(sqlTestData, parsed)
		if !got.Equal(want) {
			t.Errorf("Q%s: parsed plan diverges from builtin:\n%s", id, want.Diff(got))
		}
		if parsed.Flight != builtin.Flight {
			t.Errorf("Q%s: inferred flight %d, want %d", id, parsed.Flight, builtin.Flight)
		}
	}
	if len(officialSQL) != 13 {
		t.Fatalf("expected 13 official queries, have %d", len(officialSQL))
	}
}

func TestParsePieces(t *testing.T) {
	q, err := Parse("x", `SELECT sum(lo_revenue), d_year FROM lineorder, dwdate
		WHERE lo_orderdate = d_datekey AND d_year = 1995 GROUP BY d_year`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != ssb.AggRevenue || len(q.DimFilters) != 1 || len(q.GroupBy) != 1 {
		t.Fatalf("parsed shape wrong: %+v", q)
	}
	f := q.DimFilters[0]
	if f.Dim != ssb.DimDate || f.Col != "year" || !f.IsInt || f.Op != compress.OpEq || f.IntA != 1995 {
		t.Fatalf("dim filter wrong: %+v", f)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	for _, c := range []struct {
		sqlOp string
		op    compress.Op
	}{
		{"=", compress.OpEq}, {"<", compress.OpLt}, {"<=", compress.OpLe},
		{">", compress.OpGt}, {">=", compress.OpGe}, {"<>", compress.OpNe},
	} {
		q, err := Parse("x", `SELECT sum(lo_revenue) FROM lineorder, dwdate
			WHERE lo_orderdate = d_datekey AND d_year `+c.sqlOp+` 1995`)
		if err != nil {
			t.Fatalf("op %q: %v", c.sqlOp, err)
		}
		if q.DimFilters[0].Op != c.op {
			t.Fatalf("op %q compiled to %v", c.sqlOp, q.DimFilters[0].Op)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse("x", `SELECT sum(lo_revenue) FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_name = 'it''s blue'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.DimFilters[0].StrA != "it's blue" {
		t.Fatalf("escaped string = %q", q.DimFilters[0].StrA)
	}
}

func TestParseComments(t *testing.T) {
	_, err := Parse("x", `-- flight one
		SELECT sum(lo_extendedprice*lo_discount) -- the aggregate
		FROM lineorder, dwdate
		WHERE lo_orderdate = d_datekey AND d_year = 1993`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"no aggregate":     `SELECT d_year FROM lineorder, dwdate WHERE lo_orderdate = d_datekey GROUP BY d_year`,
		"unknown table":    `SELECT sum(lo_revenue) FROM warehouse`,
		"unknown column":   `SELECT sum(lo_revenue) FROM lineorder, dwdate WHERE lo_orderdate = d_datekey AND d_quarter = 1`,
		"missing join":     `SELECT sum(lo_revenue) FROM lineorder, dwdate WHERE d_year = 1995`,
		"bad join":         `SELECT sum(lo_revenue) FROM lineorder, dwdate WHERE lo_custkey = d_datekey`,
		"bad aggregate":    `SELECT sum(lo_tax) FROM lineorder`,
		"string for int":   `SELECT sum(lo_revenue) FROM lineorder, dwdate WHERE lo_orderdate = d_datekey AND d_year = 'x'`,
		"int for string":   `SELECT sum(lo_revenue) FROM lineorder, dwdate WHERE lo_orderdate = d_datekey AND d_yearmonth = 5`,
		"fact group by":    `SELECT sum(lo_revenue) FROM lineorder GROUP BY lo_quantity`,
		"ungrouped item":   `SELECT sum(lo_revenue), d_year FROM lineorder, dwdate WHERE lo_orderdate = d_datekey`,
		"unterminated str": `SELECT sum(lo_revenue) FROM lineorder WHERE lo_quantity = 'oops`,
		"trailing":         `SELECT sum(lo_revenue) FROM lineorder ; extra`,
		"fact pred col":    `SELECT sum(lo_revenue) FROM lineorder WHERE lo_tax = 3`,
		"bad alias ref":    `SELECT sum(lo_revenue) FROM lineorder WHERE z.year = 1995`,
	}
	for name, text := range cases {
		if _, err := Parse("x", text); err == nil {
			t.Errorf("%s: expected parse error, got none", name)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT 'a''b' <= 42, x_y.z --tail`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a'b", "<=", "42", ",", "x_y", ".", "z", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q want %q (all: %q)", i, texts[i], want[i], texts)
		}
	}
	if kinds[1] != tokString || kinds[2] != tokOp || kinds[3] != tokNumber {
		t.Fatal("token kinds wrong")
	}
	if _, err := lex("SELECT @"); err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatal("lexer should reject @")
	}
}

// TestAdHocQueryBeyondBenchmark shows the dialect is not limited to the 13
// fixed queries.
func TestAdHocQueryBeyondBenchmark(t *testing.T) {
	q, err := Parse("adhoc", `SELECT sum(lo_revenue), s_region, d_year
		FROM lineorder, supplier, dwdate
		WHERE lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
		  AND s_nation <> 'CHINA' AND d_monthnuminyear <= 6
		GROUP BY s_region, d_year`)
	if err != nil {
		t.Fatal(err)
	}
	res := ssb.Reference(sqlTestData, q)
	if len(res.Rows) == 0 {
		t.Fatal("ad-hoc query returned nothing")
	}
	// 5 regions x up to 7 years.
	if len(res.Rows) > 35 {
		t.Fatalf("unexpected group count %d", len(res.Rows))
	}
}
