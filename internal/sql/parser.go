package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ssb"
)

// colRef is a resolved column reference.
type colRef struct {
	isFact bool
	dim    ssb.Dim
	col    string
}

// pred is one conjunct of the WHERE clause before classification.
type pred struct {
	left    colRef
	op      string // "=", "<", "<=", ">", ">=", "<>", "between", "in"
	joinRHS *colRef
	strVals []string
	intVals []int64
	isStr   bool
}

// aggItem is one parsed aggregate of the SELECT list. count(*) carries no
// operands; count(expr) parses its operands but compiles to the same
// COUNT(*) spec (SSBM measures are never NULL).
type aggItem struct {
	fn ssb.AggFunc
	a  colRef
	op byte // 0: fn(a); '*': fn(a*b); '-': fn(a-b)
	b  colRef
}

// stmt is the parsed and semantically resolved statement.
type stmt struct {
	aggs    []aggItem
	preds   []pred
	groupBy []colRef
	joins   map[ssb.Dim]bool
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	i       int
	aliases map[string]string // alias -> canonical table name
}

// Parse compiles a statement in the SSBM dialect into an ssb.Query with the
// given id.
func Parse(id, src string) (*ssb.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, aliases: map[string]string{}}
	s, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return compile(id, s)
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// kw reports whether the current token is the given keyword and consumes it.
func (p *parser) kw(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("sql: expected %q at offset %d, found %q", word, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) expectSym(sym string) error {
	t := p.cur()
	if (t.kind == tokSymbol || t.kind == tokOp) && t.text == sym {
		p.i++
		return nil
	}
	return fmt.Errorf("sql: expected %q at offset %d, found %q", sym, t.pos, t.text)
}

func (p *parser) parseStatement() (*stmt, error) {
	s := &stmt{joins: map[ssb.Dim]bool{}}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	// SELECT list: one or more aggregates (sum/count/min/max) plus
	// optional output columns that must reappear in GROUP BY.
	var outputCols []string
	for {
		if fn, ok := p.aggKeyword(); ok {
			agg, err := p.parseAggExpr(fn)
			if err != nil {
				return nil, err
			}
			s.aggs = append(s.aggs, agg)
		} else {
			t := p.cur()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected select item at offset %d", t.pos)
			}
			name, err := p.parseRefText()
			if err != nil {
				return nil, err
			}
			outputCols = append(outputCols, name)
		}
		// Optional AS alias on select items.
		if p.kw("as") {
			if p.cur().kind != tokIdent {
				return nil, fmt.Errorf("sql: expected alias after AS at offset %d", p.cur().pos)
			}
			p.next()
		}
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if len(s.aggs) == 0 {
		return nil, fmt.Errorf("sql: SELECT list must contain at least one aggregate (sum/count/min/max)")
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(); err != nil {
		return nil, err
	}

	if p.kw("where") {
		for {
			pr, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			s.preds = append(s.preds, pr)
			if !p.kw("and") {
				break
			}
		}
	}

	if p.kw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseRefText()
			if err != nil {
				return nil, err
			}
			ref, err := p.resolve(name)
			if err != nil {
				return nil, err
			}
			if ref.isFact {
				return nil, fmt.Errorf("sql: GROUP BY on fact column %q is not supported (SSBM groups on dimension attributes)", name)
			}
			s.groupBy = append(s.groupBy, ref)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	// Output columns must be grouped.
	for _, oc := range outputCols {
		ref, err := p.resolve(oc)
		if err != nil {
			return nil, err
		}
		found := false
		for _, g := range s.groupBy {
			if g == ref {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sql: select item %q does not appear in GROUP BY", oc)
		}
	}

	// ORDER BY is parsed and discarded: results are canonically sorted.
	if p.kw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			if _, err := p.parseRefText(); err != nil {
				return nil, err
			}
			if p.kw("asc") || p.kw("desc") {
				// direction noted and ignored
			}
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at offset %d: %q", p.cur().pos, p.cur().text)
	}

	// Move join-equality predicates out of preds into joins.
	var keep []pred
	for _, pr := range s.preds {
		if pr.joinRHS != nil {
			dim, err := classifyJoin(pr.left, *pr.joinRHS)
			if err != nil {
				return nil, err
			}
			s.joins[dim] = true
			continue
		}
		keep = append(keep, pr)
	}
	s.preds = keep
	return s, nil
}

// aggKeyword reports (and consumes) an aggregate function keyword when the
// current token is one of sum/count/min/max followed by "(".
func (p *parser) aggKeyword() (ssb.AggFunc, bool) {
	t := p.cur()
	if t.kind != tokIdent || p.i+1 >= len(p.toks) {
		return 0, false
	}
	nxt := p.toks[p.i+1]
	if !(nxt.kind == tokSymbol && nxt.text == "(") {
		return 0, false
	}
	var fn ssb.AggFunc
	switch strings.ToLower(t.text) {
	case "sum":
		fn = ssb.FuncSum
	case "count":
		fn = ssb.FuncCount
	case "min":
		fn = ssb.FuncMin
	case "max":
		fn = ssb.FuncMax
	default:
		return 0, false
	}
	p.i++
	return fn, true
}

// parseAggExpr parses the parenthesized body of an aggregate: a column, a
// column product or difference, or * for count(*).
func (p *parser) parseAggExpr(fn ssb.AggFunc) (aggItem, error) {
	agg := aggItem{fn: fn}
	if err := p.expectSym("("); err != nil {
		return agg, err
	}
	if t := p.cur(); fn == ssb.FuncCount && (t.kind == tokSymbol || t.kind == tokOp) && t.text == "*" {
		p.next()
		return agg, p.expectSym(")")
	}
	name, err := p.parseRefText()
	if err != nil {
		return agg, err
	}
	a, err := p.resolve(name)
	if err != nil {
		return agg, err
	}
	agg.a = a
	t := p.cur()
	if t.kind == tokSymbol && (t.text == "*" || t.text == "-") {
		agg.op = t.text[0]
		p.next()
		name, err := p.parseRefText()
		if err != nil {
			return agg, err
		}
		b, err := p.resolve(name)
		if err != nil {
			return agg, err
		}
		agg.b = b
	}
	return agg, p.expectSym(")")
}

// parseFrom reads the table list, registering aliases.
func (p *parser) parseFrom() error {
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return fmt.Errorf("sql: expected table name at offset %d", t.pos)
		}
		table := strings.ToLower(t.text)
		canon, ok := canonicalTable(table)
		if !ok {
			return fmt.Errorf("sql: unknown table %q", t.text)
		}
		p.next()
		alias := canon
		if p.kw("as") {
			a := p.cur()
			if a.kind != tokIdent {
				return fmt.Errorf("sql: expected alias after AS at offset %d", a.pos)
			}
			alias = strings.ToLower(a.text)
			p.next()
		} else if p.cur().kind == tokIdent && !isClauseKeyword(p.cur().text) {
			alias = strings.ToLower(p.cur().text)
			p.next()
		}
		p.aliases[alias] = canon
		p.aliases[canon] = canon
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func isClauseKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "group", "order", "as", "and":
		return true
	}
	return false
}

// parseRefText reads a possibly qualified column reference as raw text
// ("lo_revenue", "c.nation", "d_year").
func (p *parser) parseRefText() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected column reference at offset %d, found %q", t.pos, t.text)
	}
	p.next()
	name := t.text
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.next()
		c := p.cur()
		if c.kind != tokIdent {
			return "", fmt.Errorf("sql: expected column after %q. at offset %d", name, c.pos)
		}
		p.next()
		name = name + "." + c.text
	}
	return name, nil
}

// parsePredicate reads one WHERE conjunct.
func (p *parser) parsePredicate() (pred, error) {
	var pr pred
	name, err := p.parseRefText()
	if err != nil {
		return pr, err
	}
	left, err := p.resolve(name)
	if err != nil {
		return pr, err
	}
	pr.left = left

	if p.kw("between") {
		pr.op = "between"
		if err := p.parseLiteralInto(&pr); err != nil {
			return pr, err
		}
		if err := p.expectKw("and"); err != nil {
			return pr, err
		}
		return pr, p.parseLiteralInto(&pr)
	}
	if p.kw("in") {
		pr.op = "in"
		if err := p.expectSym("("); err != nil {
			return pr, err
		}
		for {
			if err := p.parseLiteralInto(&pr); err != nil {
				return pr, err
			}
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
		return pr, p.expectSym(")")
	}

	t := p.cur()
	if t.kind != tokOp {
		return pr, fmt.Errorf("sql: expected comparison operator at offset %d, found %q", t.pos, t.text)
	}
	pr.op = t.text
	p.next()

	// Right side: literal or column (join).
	rt := p.cur()
	if rt.kind == tokIdent {
		rname, err := p.parseRefText()
		if err != nil {
			return pr, err
		}
		rref, err := p.resolve(rname)
		if err != nil {
			return pr, err
		}
		if pr.op != "=" {
			return pr, fmt.Errorf("sql: column-to-column predicate must be an equality join (offset %d)", rt.pos)
		}
		pr.joinRHS = &rref
		return pr, nil
	}
	return pr, p.parseLiteralInto(&pr)
}

// parseLiteralInto appends one literal (number or string) to the predicate.
func (p *parser) parseLiteralInto(pr *pred) error {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return fmt.Errorf("sql: bad number %q at offset %d", t.text, t.pos)
		}
		pr.intVals = append(pr.intVals, v)
		p.next()
		return nil
	case tokString:
		pr.isStr = true
		pr.strVals = append(pr.strVals, t.text)
		p.next()
		return nil
	default:
		return fmt.Errorf("sql: expected literal at offset %d, found %q", t.pos, t.text)
	}
}
