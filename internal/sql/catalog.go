package sql

import (
	"fmt"
	"strings"

	"repro/internal/ssb"
)

// The static catalog: table names, per-table columns and their types. This
// mirrors the schema of paper Figure 1 without needing a generated dataset.

// canonicalTable maps accepted spellings to canonical table names.
func canonicalTable(name string) (string, bool) {
	switch name {
	case "lineorder", "lo":
		return "lineorder", true
	case "customer":
		return "customer", true
	case "supplier":
		return "supplier", true
	case "part":
		return "part", true
	case "dwdate", "date", "ddate":
		return "dwdate", true
	}
	return "", false
}

// dimOfTable maps a canonical dimension table name to its ssb.Dim.
func dimOfTable(name string) (ssb.Dim, bool) {
	switch name {
	case "customer":
		return ssb.DimCustomer, true
	case "supplier":
		return ssb.DimSupplier, true
	case "part":
		return ssb.DimPart, true
	case "dwdate":
		return ssb.DimDate, true
	}
	return 0, false
}

// ssbPrefix maps the SSB column prefix to its table.
var ssbPrefix = map[string]string{
	"lo": "lineorder",
	"c":  "customer",
	"s":  "supplier",
	"p":  "part",
	"d":  "dwdate",
}

// factCols is the LINEORDER schema; all integer except the two noted.
var factCols = map[string]bool{ // name -> isString
	"orderkey": false, "linenumber": false, "custkey": false,
	"partkey": false, "suppkey": false, "orderdate": false,
	"ordpriority": true, "shippriority": false, "quantity": false,
	"extendedprice": false, "ordtotalprice": false, "discount": false,
	"revenue": false, "supplycost": false, "tax": false,
	"commitdate": false, "shipmode": true,
}

// dimCols maps dimension -> column -> isInt.
var dimCols = map[ssb.Dim]map[string]bool{
	ssb.DimCustomer: {
		"custkey": true, "name": false, "address": false, "city": false,
		"nation": false, "region": false, "phone": false, "mktsegment": false,
	},
	ssb.DimSupplier: {
		"suppkey": true, "name": false, "address": false, "city": false,
		"nation": false, "region": false, "phone": false,
	},
	ssb.DimPart: {
		"partkey": true, "name": false, "mfgr": false, "category": false,
		"brand1": false, "color": false, "type": false, "size": true,
		"container": false,
	},
	ssb.DimDate: {
		"datekey": true, "date": false, "dayofweek": false, "month": false,
		"year": true, "yearmonthnum": true, "yearmonth": false,
		"daynuminweek": true, "daynuminmonth": true, "daynuminyear": true,
		"monthnuminyear": true, "weeknuminyear": true, "sellingseason": false,
	},
}

// resolve turns a textual reference into a colRef. Accepted forms:
//
//	lo_revenue, d_year      SSB underscore prefixes
//	c.nation, lo.revenue    alias-qualified (aliases from FROM)
//	customer.nation         table-qualified
func (p *parser) resolve(name string) (colRef, error) {
	lower := strings.ToLower(name)
	var table, col string
	if i := strings.IndexByte(lower, '.'); i >= 0 {
		qual, rest := lower[:i], lower[i+1:]
		canon, ok := p.aliases[qual]
		if !ok {
			canon, ok = canonicalTable(qual)
			if !ok {
				return colRef{}, fmt.Errorf("sql: unknown table or alias %q in %q", qual, name)
			}
		}
		table, col = canon, rest
	} else if i := strings.IndexByte(lower, '_'); i >= 0 {
		if t, ok := ssbPrefix[lower[:i]]; ok {
			table, col = t, lower[i+1:]
		}
	}
	if table == "" {
		return colRef{}, fmt.Errorf("sql: cannot resolve column %q (use an SSB prefix like lo_/d_ or qualify it)", name)
	}
	if table == "lineorder" {
		if _, ok := factCols[col]; !ok {
			return colRef{}, fmt.Errorf("sql: lineorder has no column %q", col)
		}
		return colRef{isFact: true, col: col}, nil
	}
	dim, _ := dimOfTable(table)
	cols := dimCols[dim]
	if _, ok := cols[col]; !ok {
		return colRef{}, fmt.Errorf("sql: %s has no column %q", table, col)
	}
	return colRef{dim: dim, col: col}, nil
}

// colIsInt reports whether a resolved dimension column is an integer.
func colIsInt(ref colRef) bool {
	return dimCols[ref.dim][ref.col]
}

// classifyJoin validates a fact-FK = dimension-key equality.
func classifyJoin(a, b colRef) (ssb.Dim, error) {
	fact, dimRef := a, b
	if !fact.isFact {
		fact, dimRef = b, a
	}
	if !fact.isFact || dimRef.isFact {
		return 0, fmt.Errorf("sql: join must relate a lineorder foreign key to a dimension key")
	}
	if dimRef.col != dimRef.dim.KeyCol() {
		return 0, fmt.Errorf("sql: join on %s.%s: only primary-key joins are supported", dimRef.dim, dimRef.col)
	}
	if fact.col != dimRef.dim.FactFK() {
		return 0, fmt.Errorf("sql: join between lo_%s and %s.%s is not a foreign-key join",
			fact.col, dimRef.dim, dimRef.col)
	}
	return dimRef.dim, nil
}
