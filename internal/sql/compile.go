package sql

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/ssb"
)

// compile lowers a resolved statement to the shared logical plan.
func compile(id string, s *stmt) (*ssb.Query, error) {
	q := &ssb.Query{ID: id}

	// Aggregate.
	switch {
	case s.agg.op == 0 && s.agg.a.isFact && s.agg.a.col == "revenue":
		q.Agg = ssb.AggRevenue
	case s.agg.op == '*' && s.agg.a.isFact && s.agg.b.isFact &&
		s.agg.a.col == "extendedprice" && s.agg.b.col == "discount":
		q.Agg = ssb.AggDiscountRevenue
	case s.agg.op == '-' && s.agg.a.isFact && s.agg.b.isFact &&
		s.agg.a.col == "revenue" && s.agg.b.col == "supplycost":
		q.Agg = ssb.AggProfit
	default:
		return nil, fmt.Errorf("sql: unsupported aggregate (supported: sum(lo_revenue), sum(lo_extendedprice*lo_discount), sum(lo_revenue-lo_supplycost))")
	}

	// Predicates.
	for _, pr := range s.preds {
		if pr.left.isFact {
			ff, err := compileFactFilter(pr)
			if err != nil {
				return nil, err
			}
			q.FactFilters = append(q.FactFilters, ff)
			continue
		}
		df, err := compileDimFilter(pr)
		if err != nil {
			return nil, err
		}
		q.DimFilters = append(q.DimFilters, df)
	}

	// Group by.
	for _, g := range s.groupBy {
		q.GroupBy = append(q.GroupBy, ssb.GroupCol{Dim: g.dim, Col: g.col})
	}

	// Every referenced dimension must be joined in the FROM/WHERE.
	for _, dim := range q.DimsUsed() {
		if !s.joins[dim] {
			return nil, fmt.Errorf("sql: query references %s but has no join between lo_%s and %s.%s",
				dim, dim.FactFK(), dim, dim.KeyCol())
		}
	}
	q.Flight = inferFlight(q)
	return q, nil
}

// compileFactFilter lowers a lineorder measure predicate.
func compileFactFilter(pr pred) (ssb.FactFilter, error) {
	if pr.left.col != "discount" && pr.left.col != "quantity" {
		return ssb.FactFilter{}, fmt.Errorf("sql: fact predicates are supported on lo_discount and lo_quantity only (got lo_%s)", pr.left.col)
	}
	if pr.isStr {
		return ssb.FactFilter{}, fmt.Errorf("sql: lo_%s is an integer column", pr.left.col)
	}
	p, err := intPred(pr)
	if err != nil {
		return ssb.FactFilter{}, err
	}
	return ssb.FactFilter{Col: pr.left.col, Pred: p}, nil
}

// intPred converts the literal(s) of an integer predicate.
func intPred(pr pred) (compress.Pred, error) {
	v := func(i int) int32 { return int32(pr.intVals[i]) }
	switch pr.op {
	case "=":
		return compress.Eq(v(0)), nil
	case "<":
		return compress.Lt(v(0)), nil
	case "<=":
		return compress.Le(v(0)), nil
	case ">":
		return compress.Gt(v(0)), nil
	case ">=":
		return compress.Ge(v(0)), nil
	case "<>":
		return compress.Pred{Op: compress.OpNe, A: v(0)}, nil
	case "between":
		return compress.Between(v(0), v(1)), nil
	case "in":
		set := make([]int32, len(pr.intVals))
		for i := range pr.intVals {
			set[i] = v(i)
		}
		return compress.In(set...), nil
	default:
		return compress.Pred{}, fmt.Errorf("sql: unsupported operator %q", pr.op)
	}
}

// compileDimFilter lowers a dimension attribute predicate.
func compileDimFilter(pr pred) (ssb.DimFilter, error) {
	f := ssb.DimFilter{Dim: pr.left.dim, Col: pr.left.col}
	isInt := colIsInt(pr.left)
	if isInt == pr.isStr && len(pr.strVals)+len(pr.intVals) > 0 {
		want := "integer"
		if !isInt {
			want = "string"
		}
		return f, fmt.Errorf("sql: %s.%s expects %s literals", pr.left.dim, pr.left.col, want)
	}
	var op compress.Op
	switch pr.op {
	case "=":
		op = compress.OpEq
	case "<":
		op = compress.OpLt
	case "<=":
		op = compress.OpLe
	case ">":
		op = compress.OpGt
	case ">=":
		op = compress.OpGe
	case "<>":
		op = compress.OpNe
	case "between":
		op = compress.OpBetween
	case "in":
		op = compress.OpIn
	default:
		return f, fmt.Errorf("sql: unsupported operator %q", pr.op)
	}
	f.Op = op
	if isInt {
		f.IsInt = true
		switch op {
		case compress.OpBetween:
			f.IntA, f.IntB = int32(pr.intVals[0]), int32(pr.intVals[1])
		case compress.OpIn:
			for _, v := range pr.intVals {
				f.IntSet = append(f.IntSet, int32(v))
			}
		default:
			f.IntA = int32(pr.intVals[0])
		}
		return f, nil
	}
	switch op {
	case compress.OpBetween:
		f.StrA, f.StrB = pr.strVals[0], pr.strVals[1]
	case compress.OpIn:
		f.StrSet = append(f.StrSet, pr.strVals...)
	default:
		f.StrA = pr.strVals[0]
	}
	return f, nil
}

// inferFlight classifies the query into the SSBM flight whose per-flight MV
// covers it, or 0 when none does (ad-hoc queries can still run on every
// non-MV design).
func inferFlight(q *ssb.Query) int {
	needed := q.NeededFactColumns()
	for flight := 1; flight <= 4; flight++ {
		cover := map[string]bool{}
		for _, c := range ssb.FlightMVColumns(flight) {
			cover[c] = true
		}
		ok := true
		for _, c := range needed {
			if !cover[c] {
				ok = false
				break
			}
		}
		if ok {
			return flight
		}
	}
	return 0
}
