package sql

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/ssb"
)

// compile lowers a resolved statement to the shared logical plan.
func compile(id string, s *stmt) (*ssb.Query, error) {
	q := &ssb.Query{ID: id}

	// Aggregates: each is sum/min/max over a measure expression, or
	// count(*). The legacy AggKind is kept in sync for the three published
	// SSBM forms so the figure harnesses can still classify plans.
	specs := make([]ssb.AggSpec, len(s.aggs))
	for i, it := range s.aggs {
		spec, err := compileAgg(it)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	q.Aggs = specs
	if len(specs) == 1 && specs[0].Func == ssb.FuncSum {
		switch specs[0].Expr {
		case (ssb.AggExpr{ColA: "extendedprice", Op: '*', ColB: "discount"}):
			q.Agg = ssb.AggDiscountRevenue
		case (ssb.AggExpr{ColA: "revenue"}):
			q.Agg = ssb.AggRevenue
		case (ssb.AggExpr{ColA: "revenue", Op: '-', ColB: "supplycost"}):
			q.Agg = ssb.AggProfit
		}
	}

	// Predicates.
	for _, pr := range s.preds {
		if pr.left.isFact {
			ff, err := compileFactFilter(pr)
			if err != nil {
				return nil, err
			}
			q.FactFilters = append(q.FactFilters, ff)
			continue
		}
		df, err := compileDimFilter(pr)
		if err != nil {
			return nil, err
		}
		q.DimFilters = append(q.DimFilters, df)
	}

	// Group by.
	for _, g := range s.groupBy {
		q.GroupBy = append(q.GroupBy, ssb.GroupCol{Dim: g.dim, Col: g.col})
	}

	// Every referenced dimension must be joined in the FROM/WHERE.
	for _, dim := range q.DimsUsed() {
		if !s.joins[dim] {
			return nil, fmt.Errorf("sql: query references %s but has no join between lo_%s and %s.%s",
				dim, dim.FactFK(), dim, dim.KeyCol())
		}
	}
	q.Flight = inferFlight(q)
	return q, nil
}

// compileAgg lowers one SELECT-list aggregate to its spec, validating the
// expression operands against the measure set every engine materializes.
func compileAgg(it aggItem) (ssb.AggSpec, error) {
	if it.fn == ssb.FuncCount {
		// count(expr) over never-NULL measures is count(*).
		return ssb.AggSpec{Func: ssb.FuncCount}, nil
	}
	check := func(r colRef) error {
		if !r.isFact || !ssb.IsMeasureCol(r.col) {
			return fmt.Errorf("sql: aggregate expressions are supported over lineorder measures (%s)", strings.Join(ssb.MeasureCols, ", "))
		}
		return nil
	}
	if err := check(it.a); err != nil {
		return ssb.AggSpec{}, err
	}
	expr := ssb.AggExpr{ColA: it.a.col, Op: it.op}
	if it.op != 0 {
		if err := check(it.b); err != nil {
			return ssb.AggSpec{}, err
		}
		expr.ColB = it.b.col
	}
	return ssb.AggSpec{Func: it.fn, Expr: expr}, nil
}

// compileFactFilter lowers a lineorder measure predicate.
func compileFactFilter(pr pred) (ssb.FactFilter, error) {
	if !ssb.IsMeasureCol(pr.left.col) {
		return ssb.FactFilter{}, fmt.Errorf("sql: fact predicates are supported on lineorder measures (%s), got lo_%s",
			strings.Join(ssb.MeasureCols, ", "), pr.left.col)
	}
	if pr.isStr {
		return ssb.FactFilter{}, fmt.Errorf("sql: lo_%s is an integer column", pr.left.col)
	}
	p, err := intPred(pr)
	if err != nil {
		return ssb.FactFilter{}, err
	}
	return ssb.FactFilter{Col: pr.left.col, Pred: p}, nil
}

// intPred converts the literal(s) of an integer predicate.
func intPred(pr pred) (compress.Pred, error) {
	v := func(i int) int32 { return int32(pr.intVals[i]) }
	switch pr.op {
	case "=":
		return compress.Eq(v(0)), nil
	case "<":
		return compress.Lt(v(0)), nil
	case "<=":
		return compress.Le(v(0)), nil
	case ">":
		return compress.Gt(v(0)), nil
	case ">=":
		return compress.Ge(v(0)), nil
	case "<>":
		return compress.Pred{Op: compress.OpNe, A: v(0)}, nil
	case "between":
		return compress.Between(v(0), v(1)), nil
	case "in":
		set := make([]int32, len(pr.intVals))
		for i := range pr.intVals {
			set[i] = v(i)
		}
		return compress.In(set...), nil
	default:
		return compress.Pred{}, fmt.Errorf("sql: unsupported operator %q", pr.op)
	}
}

// compileDimFilter lowers a dimension attribute predicate.
func compileDimFilter(pr pred) (ssb.DimFilter, error) {
	f := ssb.DimFilter{Dim: pr.left.dim, Col: pr.left.col}
	isInt := colIsInt(pr.left)
	if isInt == pr.isStr && len(pr.strVals)+len(pr.intVals) > 0 {
		want := "integer"
		if !isInt {
			want = "string"
		}
		return f, fmt.Errorf("sql: %s.%s expects %s literals", pr.left.dim, pr.left.col, want)
	}
	var op compress.Op
	switch pr.op {
	case "=":
		op = compress.OpEq
	case "<":
		op = compress.OpLt
	case "<=":
		op = compress.OpLe
	case ">":
		op = compress.OpGt
	case ">=":
		op = compress.OpGe
	case "<>":
		op = compress.OpNe
	case "between":
		op = compress.OpBetween
	case "in":
		op = compress.OpIn
	default:
		return f, fmt.Errorf("sql: unsupported operator %q", pr.op)
	}
	f.Op = op
	if isInt {
		f.IsInt = true
		switch op {
		case compress.OpBetween:
			f.IntA, f.IntB = int32(pr.intVals[0]), int32(pr.intVals[1])
		case compress.OpIn:
			for _, v := range pr.intVals {
				f.IntSet = append(f.IntSet, int32(v))
			}
		default:
			f.IntA = int32(pr.intVals[0])
		}
		return f, nil
	}
	switch op {
	case compress.OpBetween:
		f.StrA, f.StrB = pr.strVals[0], pr.strVals[1]
	case compress.OpIn:
		f.StrSet = append(f.StrSet, pr.strVals...)
	default:
		f.StrA = pr.strVals[0]
	}
	return f, nil
}

// inferFlight classifies the query into the SSBM flight whose per-flight MV
// covers it, or 0 when none does (ad-hoc queries can still run on every
// non-MV design).
func inferFlight(q *ssb.Query) int {
	needed := q.NeededFactColumns()
	for flight := 1; flight <= 4; flight++ {
		cover := map[string]bool{}
		for _, c := range ssb.FlightMVColumns(flight) {
			cover[c] = true
		}
		ok := true
		for _, c := range needed {
			if !cover[c] {
				ok = false
				break
			}
		}
		if ok {
			return flight
		}
	}
	return 0
}
