// Package sql implements a front-end for the SSBM dialect: the subset of
// SQL the thirteen benchmark queries are written in (single-block
// SELECT/FROM/WHERE/GROUP BY/ORDER BY with sum() aggregates, conjunctive
// predicates, BETWEEN and IN). Parsed statements compile to ssb.Query
// logical plans, so anything expressible in the dialect runs on every
// engine in the repository.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * - . =
	tokOp     // = < <= > >= <>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes a SQL string. Keywords are returned as tokIdent; the
// parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input, returning an error with position context
// for unexpected characters.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '<' || c == '>' || c == '=':
			l.lexOp()
		case strings.ContainsRune("(),*-.;+/", rune(c)):
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	text := string(c)
	if l.pos < len(l.src) {
		two := text + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>":
			text = two
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tokOp, text: text, pos: start})
}
