// Package vector provides the typed value blocks and position-list
// representations that the column-oriented executor operates on.
//
// A Vector is a batch of values from a single column; operators exchange
// vectors rather than tuples, which is the "block iteration" optimization
// from Section 5.3 of the paper. Position lists (Positions) are the
// intermediate results of predicate evaluation under late materialization
// (Section 5.2): ordinal offsets into a column, represented either as a
// contiguous range, an explicit sorted array, or a bitmap.
package vector

import "repro/internal/bitmap"

// Type identifies the value type of a Vector or column.
type Type uint8

const (
	// Int32 is the workhorse type: every SSBM attribute is either a small
	// integer or a dictionary-encoded string whose codes are int32.
	Int32 Type = iota
	// Int64 is used for aggregate accumulators (sums of revenue etc.).
	Int64
	// String is used at the edges: dictionary decode and row construction.
	String
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case String:
		return "string"
	default:
		return "unknown"
	}
}

// Vector is a typed batch of column values. Exactly one of the value slices
// is populated, according to Typ. Vectors are reused across operator calls;
// callers must copy data they retain.
type Vector struct {
	Typ Type
	I32 []int32
	I64 []int64
	Str []string
}

// NewInt32 returns an Int32 vector wrapping vals.
func NewInt32(vals []int32) *Vector { return &Vector{Typ: Int32, I32: vals} }

// NewInt64 returns an Int64 vector wrapping vals.
func NewInt64(vals []int64) *Vector { return &Vector{Typ: Int64, I64: vals} }

// NewString returns a String vector wrapping vals.
func NewString(vals []string) *Vector { return &Vector{Typ: String, Str: vals} }

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Typ {
	case Int32:
		return len(v.I32)
	case Int64:
		return len(v.I64)
	default:
		return len(v.Str)
	}
}

// Reset truncates the vector to length zero, retaining capacity.
func (v *Vector) Reset() {
	v.I32 = v.I32[:0]
	v.I64 = v.I64[:0]
	v.Str = v.Str[:0]
}

// Int32Iterator is the tuple-at-a-time ("getNext") access path over a block
// of int32 values. It exists so the Figure 7 ablation can degrade block
// iteration to one interface call per value, matching how the paper replaced
// C-Store's "asArray" interface with "getNext".
type Int32Iterator interface {
	// Next returns the next value; ok is false when the block is exhausted.
	Next() (val int32, ok bool)
}

// SliceIter adapts a []int32 to Int32Iterator. Each Next is a real interface
// method call, so per-value overhead is paid just as in a Volcano engine.
type SliceIter struct {
	vals []int32
	i    int
}

// NewSliceIter returns an iterator over vals.
func NewSliceIter(vals []int32) *SliceIter { return &SliceIter{vals: vals} }

// Next implements Int32Iterator.
func (it *SliceIter) Next() (int32, bool) {
	if it.i >= len(it.vals) {
		return 0, false
	}
	v := it.vals[it.i]
	it.i++
	return v, true
}

// PosKind identifies the physical representation of a Positions list.
type PosKind uint8

const (
	// PosRange is a contiguous [Start, End) interval — the cheapest
	// representation, produced by predicates on sorted (RLE) columns.
	PosRange PosKind = iota
	// PosExplicit is a sorted array of positions, good for selective
	// predicates.
	PosExplicit
	// PosBitmap is a fixed-length bitmap, good for predicates of moderate
	// selectivity and for fast intersection.
	PosBitmap
)

// Positions is a list of ordinal offsets into a column, in ascending order.
// It is the currency of late-materialized plans.
type Positions struct {
	Kind  PosKind
	Start int32 // PosRange
	End   int32 // PosRange, exclusive
	List  []int32
	Bits  *bitmap.Bitmap
}

// NewRangePositions returns positions covering [start, end).
func NewRangePositions(start, end int32) *Positions {
	return &Positions{Kind: PosRange, Start: start, End: end}
}

// NewExplicitPositions returns positions backed by a sorted slice.
func NewExplicitPositions(list []int32) *Positions {
	return &Positions{Kind: PosExplicit, List: list}
}

// NewBitmapPositions returns positions backed by a bitmap.
func NewBitmapPositions(b *bitmap.Bitmap) *Positions {
	return &Positions{Kind: PosBitmap, Bits: b}
}

// Len returns the number of selected positions.
func (p *Positions) Len() int {
	switch p.Kind {
	case PosRange:
		if p.End <= p.Start {
			return 0
		}
		return int(p.End - p.Start)
	case PosExplicit:
		return len(p.List)
	default:
		return p.Bits.Count()
	}
}

// ForEach calls fn for every selected position in ascending order.
func (p *Positions) ForEach(fn func(pos int32)) {
	switch p.Kind {
	case PosRange:
		for i := p.Start; i < p.End; i++ {
			fn(i)
		}
	case PosExplicit:
		for _, i := range p.List {
			fn(i)
		}
	default:
		p.Bits.ForEach(func(i int) { fn(int32(i)) })
	}
}

// ToBitmap renders the positions as a bitmap of length n. When the positions
// are already a bitmap of the right length it is returned directly (not a
// copy).
func (p *Positions) ToBitmap(n int) *bitmap.Bitmap {
	switch p.Kind {
	case PosBitmap:
		if p.Bits.Len() == n {
			return p.Bits
		}
		b := bitmap.New(n)
		p.Bits.ForEach(func(i int) { b.Set(i) })
		return b
	case PosRange:
		b := bitmap.New(n)
		b.SetRange(int(p.Start), int(p.End))
		return b
	default:
		b := bitmap.New(n)
		for _, i := range p.List {
			b.Set(int(i))
		}
		return b
	}
}

// ToSlice renders the positions as an explicit sorted []int32, appending to
// dst.
func (p *Positions) ToSlice(dst []int32) []int32 {
	switch p.Kind {
	case PosRange:
		for i := p.Start; i < p.End; i++ {
			dst = append(dst, i)
		}
	case PosExplicit:
		dst = append(dst, p.List...)
	default:
		dst = p.Bits.AppendPositions(dst)
	}
	return dst
}

// AppendSeq appends the consecutive positions [start, end) to dst. It is the
// selection-vector analogue of NewRangePositions, used when a fused scan
// keeps an entire block and must materialize explicit survivor indexes.
func AppendSeq(dst []int32, start, end int32) []int32 {
	for i := start; i < end; i++ {
		dst = append(dst, i)
	}
	return dst
}

// And intersects two position lists over a column of n rows and returns the
// result. Representation of the result follows the cheaper input: two ranges
// intersect to a range; anything involving a bitmap stays a bitmap.
func And(a, b *Positions, n int) *Positions {
	if a.Kind == PosRange && b.Kind == PosRange {
		start := a.Start
		if b.Start > start {
			start = b.Start
		}
		end := a.End
		if b.End < end {
			end = b.End
		}
		if end < start {
			end = start
		}
		return NewRangePositions(start, end)
	}
	if a.Kind == PosExplicit && b.Kind == PosExplicit {
		return NewExplicitPositions(intersectSorted(a.List, b.List))
	}
	// Mixed or bitmap-involving: intersect as bitmaps.
	ab := a.ToBitmap(n)
	bb := b.ToBitmap(n)
	out := ab.Clone()
	out.And(bb)
	return NewBitmapPositions(out)
}

// intersectSorted merges two ascending position slices.
func intersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
