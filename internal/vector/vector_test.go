package vector

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
)

func TestVectorLenAndReset(t *testing.T) {
	v := NewInt32([]int32{1, 2, 3})
	if v.Len() != 3 || v.Typ != Int32 {
		t.Fatalf("int32 vector: len=%d typ=%v", v.Len(), v.Typ)
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("after Reset len=%d", v.Len())
	}
	if NewInt64([]int64{1}).Len() != 1 {
		t.Fatal("int64 len")
	}
	if NewString([]string{"a", "b"}).Len() != 2 {
		t.Fatal("string len")
	}
}

func TestTypeString(t *testing.T) {
	if Int32.String() != "int32" || Int64.String() != "int64" || String.String() != "string" {
		t.Fatal("Type.String mismatch")
	}
	if Type(99).String() != "unknown" {
		t.Fatal("unknown type name")
	}
}

func TestSliceIter(t *testing.T) {
	it := NewSliceIter([]int32{5, 6, 7})
	var got []int32
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("SliceIter got %v", got)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded past end")
	}
}

func TestRangePositions(t *testing.T) {
	p := NewRangePositions(3, 8)
	if p.Len() != 5 {
		t.Fatalf("range len = %d", p.Len())
	}
	var got []int32
	p.ForEach(func(i int32) { got = append(got, i) })
	want := []int32{3, 4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach got %v", got)
		}
	}
	if NewRangePositions(5, 5).Len() != 0 {
		t.Fatal("empty range should have len 0")
	}
	if NewRangePositions(7, 3).Len() != 0 {
		t.Fatal("inverted range should have len 0")
	}
}

func TestExplicitPositions(t *testing.T) {
	p := NewExplicitPositions([]int32{1, 4, 9})
	if p.Len() != 3 {
		t.Fatal("explicit len")
	}
	s := p.ToSlice(nil)
	if len(s) != 3 || s[1] != 4 {
		t.Fatalf("ToSlice got %v", s)
	}
	b := p.ToBitmap(10)
	if b.Count() != 3 || !b.Get(9) || b.Get(2) {
		t.Fatal("ToBitmap wrong")
	}
}

func TestBitmapPositions(t *testing.T) {
	bm := bitmap.New(16)
	bm.Set(2)
	bm.Set(15)
	p := NewBitmapPositions(bm)
	if p.Len() != 2 {
		t.Fatal("bitmap positions len")
	}
	s := p.ToSlice(nil)
	if len(s) != 2 || s[0] != 2 || s[1] != 15 {
		t.Fatalf("ToSlice got %v", s)
	}
	// Same length: identity, not copy.
	if p.ToBitmap(16) != bm {
		t.Fatal("ToBitmap should return underlying bitmap when length matches")
	}
	// Different length: converted copy.
	b2 := p.ToBitmap(32)
	if b2 == bm || b2.Count() != 2 || !b2.Get(15) {
		t.Fatal("ToBitmap resize wrong")
	}
}

func TestRangeToBitmapAndSlice(t *testing.T) {
	p := NewRangePositions(60, 70)
	b := p.ToBitmap(100)
	if b.Count() != 10 || !b.Get(60) || !b.Get(69) || b.Get(70) {
		t.Fatal("range ToBitmap wrong")
	}
	s := p.ToSlice(nil)
	if len(s) != 10 || s[0] != 60 || s[9] != 69 {
		t.Fatalf("range ToSlice got %v", s)
	}
}

func TestAndRangeRange(t *testing.T) {
	out := And(NewRangePositions(0, 50), NewRangePositions(30, 80), 100)
	if out.Kind != PosRange || out.Start != 30 || out.End != 50 {
		t.Fatalf("range∧range got kind=%v [%d,%d)", out.Kind, out.Start, out.End)
	}
	// Disjoint ranges.
	out = And(NewRangePositions(0, 10), NewRangePositions(20, 30), 100)
	if out.Len() != 0 {
		t.Fatalf("disjoint ranges len = %d", out.Len())
	}
}

func TestAndExplicitExplicit(t *testing.T) {
	a := NewExplicitPositions([]int32{1, 3, 5, 7})
	b := NewExplicitPositions([]int32{3, 4, 5, 9})
	out := And(a, b, 10)
	s := out.ToSlice(nil)
	if len(s) != 2 || s[0] != 3 || s[1] != 5 {
		t.Fatalf("explicit∧explicit got %v", s)
	}
}

func TestAndMixed(t *testing.T) {
	bm := bitmap.New(10)
	for _, i := range []int{2, 3, 8} {
		bm.Set(i)
	}
	out := And(NewRangePositions(3, 9), NewBitmapPositions(bm), 10)
	s := out.ToSlice(nil)
	if len(s) != 2 || s[0] != 3 || s[1] != 8 {
		t.Fatalf("range∧bitmap got %v", s)
	}
}

// TestQuickAndOracle checks And across all representation pairs against a
// naive set intersection.
func TestQuickAndOracle(t *testing.T) {
	mk := func(rng *rand.Rand, n int) (*Positions, map[int32]bool) {
		set := map[int32]bool{}
		switch rng.Intn(3) {
		case 0:
			s := int32(rng.Intn(n))
			e := s + int32(rng.Intn(n-int(s)+1))
			for i := s; i < e; i++ {
				set[i] = true
			}
			return NewRangePositions(s, e), set
		case 1:
			var list []int32
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					list = append(list, int32(i))
					set[int32(i)] = true
				}
			}
			return NewExplicitPositions(list), set
		default:
			b := bitmap.New(n)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					b.Set(i)
					set[int32(i)] = true
				}
			}
			return NewBitmapPositions(b), set
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		a, as := mk(rng, n)
		b, bs := mk(rng, n)
		out := And(a, b, n)
		var want []int32
		for k := range as {
			if bs[k] {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := out.ToSlice(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripRepresentations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		b := bitmap.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				b.Set(i)
			}
		}
		p := NewBitmapPositions(b)
		slice := p.ToSlice(nil)
		p2 := NewExplicitPositions(slice)
		b2 := p2.ToBitmap(n)
		if b2.Count() != b.Count() {
			return false
		}
		equal := true
		b.ForEach(func(i int) {
			if !b2.Get(i) {
				equal = false
			}
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSeq(t *testing.T) {
	got := AppendSeq(nil, 3, 7)
	want := []int32{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("AppendSeq len = %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSeq[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if out := AppendSeq(got, 9, 9); len(out) != len(got) {
		t.Fatal("empty range should append nothing")
	}
}
