package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture sources:
//
//	code() // want "regexp"
//	// want+1 "regexp"   (diagnostic expected one line below the comment)
//
// Several quoted patterns may follow one want keyword's line.
var wantRe = regexp.MustCompile(`want(\+\d+)? "([^"]*)"`)

// collectWants indexes every fixture expectation as file:line -> patterns
// the diagnostics on that line must match.
func collectWants(t *testing.T, p *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] != "" {
						off, err := strconv.Atoi(strings.TrimPrefix(m[1], "+"))
						if err != nil {
							t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[1])
						}
						line += off
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[2], err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// TestFixtures runs the full analyzer set over each fixture package and
// checks the diagnostics against the // want annotations in the sources:
// every diagnostic must be expected, every expectation must fire.
func TestFixtures(t *testing.T) {
	pkgs, err := Load("testdata/src/fixture", "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	for _, p := range pkgs {
		t.Run(p.Tail(), func(t *testing.T) {
			wants := collectWants(t, p)
			for _, d := range Run([]*Package{p}, All) {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				matched := -1
				for i, re := range wants[key] {
					if re.MatchString(d.String()) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
			}
			for key, res := range wants {
				for _, re := range res {
					t.Errorf("%s: expected a diagnostic matching %q, got none", key, re)
				}
			}
		})
	}
}

// TestFixturesFindViolations guards against the trivially-green failure
// mode: the seeded-bad fixture packages must actually produce diagnostics.
func TestFixturesFindViolations(t *testing.T) {
	pkgs, err := Load("testdata/src/fixture", "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	perAnalyzer := map[string]int{}
	for _, d := range Run(pkgs, All) {
		perAnalyzer[d.Analyzer]++
	}
	for _, a := range All {
		if perAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s found nothing in the fixture tree; its bad fixtures no longer exercise it", a.Name)
		}
	}
	if perAnalyzer["lint"] == 0 {
		t.Error("no malformed-directive diagnostic fired; the suppress fixture no longer exercises parseIgnores")
	}
}

// TestSelfCheck pins the repository itself lint-clean: the same invariant
// the CI lint job enforces with cmd/ssb-lint.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	for _, d := range Run(pkgs, All) {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

// TestByName covers the analyzer-selection flag's parsing.
func TestByName(t *testing.T) {
	cases := []struct {
		list  string
		names []string
		err   bool
	}{
		{list: "", names: []string{"pinleak", "ctxloop", "statsdiscipline", "nologprint", "guardedby", "closeerr"}},
		{list: "pinleak", names: []string{"pinleak"}},
		{list: "closeerr, guardedby", names: []string{"closeerr", "guardedby"}},
		{list: "nosuch", err: true},
	}
	for _, tc := range cases {
		got, err := ByName(tc.list)
		if tc.err {
			if err == nil {
				t.Errorf("ByName(%q): expected error, got %d analyzers", tc.list, len(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("ByName(%q): %v", tc.list, err)
			continue
		}
		var names []string
		for _, a := range got {
			names = append(names, a.Name)
		}
		if fmt.Sprint(names) != fmt.Sprint(tc.names) {
			t.Errorf("ByName(%q) = %v, want %v", tc.list, names, tc.names)
		}
	}
}

// TestMatchAny covers the package-pattern matching Load selects with.
func TestMatchAny(t *testing.T) {
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{[]string{"./..."}, "internal/exec", true},
		{[]string{"./..."}, ".", true},
		{[]string{"./internal/..."}, "internal/exec", true},
		{[]string{"./internal/..."}, "cmd/ssb", false},
		{[]string{"./internal/exec"}, "internal/exec", true},
		{[]string{"./internal/exec"}, "internal/exec/sub", false},
		{[]string{"./cmd/...", "./internal/wal"}, "internal/wal", true},
	}
	for _, tc := range cases {
		if got := matchAny(tc.patterns, tc.rel); got != tc.want {
			t.Errorf("matchAny(%v, %q) = %v, want %v", tc.patterns, tc.rel, got, tc.want)
		}
	}
}
