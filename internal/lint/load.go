package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked, non-test package of the module under
// analysis. Analyzers receive it read-only.
type Package struct {
	// ImportPath is the package's module-qualified import path
	// (e.g. "repro/internal/exec").
	ImportPath string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Fset is the file set all positions resolve through; it is shared by
	// every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Tail returns the last path element of the package's import path — the
// name analyzers key their package scoping on ("iosim", "exec", ...), so
// the same analyzers run unchanged over the real module and over the small
// fixture modules in testdata.
func (p *Package) Tail() string {
	if i := strings.LastIndexByte(p.ImportPath, '/'); i >= 0 {
		return p.ImportPath[i+1:]
	}
	return p.ImportPath
}

// Internal reports whether the package sits under an internal/ directory.
func (p *Package) Internal() bool {
	for _, seg := range strings.Split(p.ImportPath, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// loader type-checks the module rooted at root without any tooling beyond
// the standard library: module-internal import paths are resolved against
// the module root and checked from source recursively; everything else is
// delegated to go/importer's source importer (which compiles the standard
// library from GOROOT source, so no pre-built export data is needed).
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	modPath string
	root    string
	pkgs    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer for the type checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

func (l *loader) load(path string) (*Package, error) {
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		tp, err := l.std.Import(path)
		if err != nil {
			return nil, err
		}
		return &Package{ImportPath: path, Types: tp}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modPath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tp,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of one directory, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// modulePath reads the module path out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load type-checks the module rooted at root and returns the packages
// selected by patterns, sorted by import path. Patterns are directory
// patterns relative to root: "./..." selects every package, "./x/..." a
// subtree, "./x" one directory. Test files are never loaded: the analyzers
// encode invariants of the production tree.
func Load(root string, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	// The source importer compiles stdlib packages from GOROOT source via
	// go/build; with cgo enabled it would shell out to the cgo tool for
	// packages like net. Every stdlib package this module uses has a pure
	// Go fallback, so force it off for a hermetic, exec-free load.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		modPath: mod,
		root:    root,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}

	all, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []*Package
	for _, dir := range all {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if !matchAny(patterns, rel) || seen[dir] {
			continue
		}
		seen[dir] = true
		ip := mod
		if rel != "." {
			ip = mod + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// moduleDirs returns every directory under root containing at least one
// non-test Go file, skipping hidden, underscore and testdata directories.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// matchAny reports whether the root-relative directory rel is selected by
// any of the patterns.
func matchAny(patterns []string, rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "." && rel == ".") {
			return true
		}
	}
	return false
}
