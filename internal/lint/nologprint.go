package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NoLogPrint verifies the injected-logger discipline: internal packages
// never write to stdout/stderr or the process-global logger directly, so
// library output is always routed through the injectable sinks
// (segstore.OpenOptions.Log, the server's Logf) that tests and embedders
// control. Flagged: fmt.Print/Printf/Println, fmt.Fprint* aimed at
// os.Stdout or os.Stderr, every printing function of package log
// (Print*/Fatal*/Panic*/Output), and the built-in print/println.
// Referencing log.Printf as a value (the documented nil-logger default) is
// fine — only calls are flagged.
var NoLogPrint = &Analyzer{
	Name: "nologprint",
	Doc:  "internal packages print only through injected loggers",
	Run:  runNoLogPrint,
}

var logPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

func runNoLogPrint(p *Package) []Diagnostic {
	if !p.Internal() {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "nologprint",
			Message:  msg,
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					report(call, fmt.Sprintf("built-in %s in an internal package: route output through the injected logger", b.Name()))
					return true
				}
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "fmt":
				switch fn.Name() {
				case "Print", "Printf", "Println":
					report(call, fmt.Sprintf("fmt.%s in an internal package writes to stdout: route output through the injected logger", fn.Name()))
				case "Fprint", "Fprintf", "Fprintln":
					if std := stdStream(p, call); std != "" {
						report(call, fmt.Sprintf("fmt.%s to os.%s in an internal package: route output through the injected logger", fn.Name(), std))
					}
				}
			case "log":
				if logPrintFuncs[fn.Name()] && isPackageLevel(fn) {
					report(call, fmt.Sprintf("log.%s in an internal package uses the process-global logger: route output through the injected logger", fn.Name()))
				}
			}
			return true
		})
	}
	return diags
}

// stdStream returns "Stdout"/"Stderr" when the call's first argument is the
// corresponding os stream.
func stdStream(p *Package, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	sel, ok := unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
		return obj.Name()
	}
	return ""
}

// isPackageLevel distinguishes log.Printf (package function) from
// (*log.Logger).Printf (a method on an injected logger, which is fine).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
