package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedBy verifies lock-annotation discipline. A struct field annotated
//
//	foo int // guarded by mu
//
// (doc comment or trailing comment) may only be accessed — read or written
// — inside functions that either call <recv>.mu.Lock() / RLock() somewhere
// in their body, or carry a "// holds mu" annotation declaring that their
// caller locks for them. The check is flow-insensitive by design: it does
// not prove the lock is held at the access, only that the function
// participates in the locking protocol at all — which is exactly the class
// of mistake (a new helper reaching into guarded state with no locking
// anywhere) that survives review.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated \"guarded by <mu>\" are accessed only under that mutex",
	Run:  runGuardedBy,
}

var (
	guardedByRe = regexp.MustCompile(`guarded by (\w+)`)
	holdsRe     = regexp.MustCompile(`holds (\w+)`)
)

// guardSpec records one annotated field and its resolved guard.
type guardSpec struct {
	guardName string
	guardObj  types.Object // the mutex field, nil if unresolved
}

func runGuardedBy(p *Package) []Diagnostic {
	var diags []Diagnostic
	guards := map[types.Object]*guardSpec{} // guarded field -> spec
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "guardedby",
			Message:  msg,
		})
	}

	// Pass 1: collect annotations from struct declarations.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				names := commentMatches(guardedByRe, field.Doc, field.Comment)
				if len(names) == 0 {
					continue
				}
				guardName := names[0]
				guardObj := findFieldObj(p, st, guardName)
				if guardObj == nil {
					report(field, fmt.Sprintf("guarded-by annotation names %q, which is not a field of this struct", guardName))
					continue
				}
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guards[obj] = &guardSpec{guardName: guardName, guardObj: guardObj}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return diags
	}

	// Pass 2: check every function's accesses.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			holds := map[string]bool{}
			for _, name := range commentMatches(holdsRe, fd.Doc) {
				holds[name] = true
			}
			locked := map[types.Object]bool{} // mutex field objects this function locks
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
					return true
				}
				if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
					if obj := fieldObjOf(p, inner); obj != nil {
						locked[obj] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := fieldObjOf(p, sel)
				spec, guarded := guards[obj]
				if !guarded {
					return true
				}
				if holds[spec.guardName] || locked[spec.guardObj] {
					return true
				}
				report(sel, fmt.Sprintf("%s is guarded by %s, but this function neither locks %s nor declares \"// holds %s\"", sel.Sel.Name, spec.guardName, spec.guardName, spec.guardName))
				return true
			})
		}
	}
	return diags
}

// fieldObjOf resolves a selector to the field object it selects, or nil.
func fieldObjOf(p *Package, sel *ast.SelectorExpr) types.Object {
	if selection := p.Info.Selections[sel]; selection != nil && selection.Kind() == types.FieldVal {
		return selection.Obj()
	}
	return nil
}

// findFieldObj locates the field named name in the struct type declaration.
func findFieldObj(p *Package, st *ast.StructType, name string) types.Object {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				return p.Info.Defs[id]
			}
		}
	}
	return nil
}
