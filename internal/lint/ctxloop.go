package lint

import (
	"go/ast"
	"go/types"
)

// blockLoopMethods are the per-block operations whose presence makes a loop
// a "block loop": each call acquires (and releases) one column block, so a
// loop driving them is the unit the cancellation guarantee is defined over
// — an abandoned query must stop within one 64K block.
var blockLoopMethods = map[string]bool{
	"AcquireBlock":      true,
	"GatherBlock":       true,
	"GatherSelectBlock": true,
	"AggSelectBlock":    true,
}

// CtxLoop verifies the PR 4 cancellation invariant: every loop in
// internal/exec and internal/colstore that acquires column blocks (directly
// via AcquireBlock/Acquire or through the per-block Gather/AggSelect
// helpers) — or that iterates segments via NumBlocks in its condition —
// contains a context cancellation check (ctx.Err() or ctx.Done()). The
// check is flow-insensitive: any cancellation observation inside the loop
// body satisfies it. Nested loops are judged independently, so the check
// must sit in the innermost loop that touches blocks.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "block loops in exec/colstore observe context cancellation",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Package) []Diagnostic {
	if p.Tail() != "exec" && p.Tail() != "colstore" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			if !loopTouchesBlocks(p, body) {
				return true
			}
			if !hasCancelCheck(p, body) {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(n.Pos()),
					Analyzer: "ctxloop",
					Message:  "block loop without a cancellation check: an abandoned query must stop within one block (check ctx.Err() or select on ctx.Done())",
				})
			}
			return true
		})
	}
	return diags
}

// loopTouchesBlocks reports whether the loop's direct body (not nested
// loops or function literals, which own their blocks independently) calls a
// block-acquiring method. Segment-iterating loops that only read zone-map
// metadata (min/max sweeps with no acquisition) are free and exempt.
func loopTouchesBlocks(p *Package, body *ast.BlockStmt) bool {
	found := false
	inspectDirect(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isBlockAcquireCall(p, call) {
			found = true
		}
	})
	return found
}

// isBlockAcquireCall matches the per-block data operations: the named
// helpers above, plus any pin acquisition in the pinleak sense (a method
// named Acquire/AcquireBlock returning a func() release).
func isBlockAcquireCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if blockLoopMethods[sel.Sel.Name] {
		if selection := p.Info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}

// inspectDirect walks the loop body without descending into nested loops or
// function literals.
func inspectDirect(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// hasCancelCheck reports whether the body observes context cancellation:
// any use of context.Context's Err or Done methods outside nested function
// literals (a check inside a spawned goroutine does not pace this loop).
func hasCancelCheck(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}
