package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PinLeak verifies that every buffer-pool pin is released on every path out
// of the release function's scope. An acquisition is any call to a method
// named AcquireBlock or Acquire whose results include exactly one func()
// value — the release — optionally alongside an error (the pool returns a
// nil release with a non-nil error, so paths guarded by "if err != nil" are
// exempt). The release must be called or deferred before every return,
// break, continue or fall-off-the-end of the statement list it is declared
// in; storing, returning or passing the release transfers ownership and
// ends local tracking.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc:  "every AcquireBlock/Pool.Acquire pin is released on all paths",
	Run:  runPinLeak,
}

func runPinLeak(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				diags = append(diags, checkPinsInBody(p, body)...)
			}
			return true
		})
	}
	return diags
}

// acquireInfo describes one recognized pin acquisition statement.
type acquireInfo struct {
	assign  *ast.AssignStmt
	callee  string       // "recv.AcquireBlock" for messages
	release *ast.Ident   // LHS ident bound to the func() result; nil for _
	errObj  types.Object // LHS error object, if the call also returns error
}

// checkPinsInBody finds acquisitions in one function body (not descending
// into nested function literals — ast.Inspect visits those separately) and
// path-checks each within its declaring statement list.
func checkPinsInBody(p *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	var walkStmts func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkStmts = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if acq := matchAcquire(p, as); acq != nil {
					diags = append(diags, checkAcquire(p, body, acq, stmts[i+1:])...)
				}
			}
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			walkStmt(s.Body)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.ForStmt:
			walkStmt(s.Body)
		case *ast.RangeStmt:
			walkStmt(s.Body)
		case *ast.SwitchStmt:
			walkStmt(s.Body)
		case *ast.TypeSwitchStmt:
			walkStmt(s.Body)
		case *ast.SelectStmt:
			walkStmt(s.Body)
		case *ast.CaseClause:
			walkStmts(s.Body)
		case *ast.CommClause:
			walkStmts(s.Body)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		}
	}
	walkStmts(body.List)
	return diags
}

// matchAcquire recognizes `a, release[, err] := x.AcquireBlock(...)` /
// `x.Acquire(...)` assignment statements.
func matchAcquire(p *Package, as *ast.AssignStmt) *acquireInfo {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "AcquireBlock" && sel.Sel.Name != "Acquire") {
		return nil
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok {
		return nil
	}
	releaseIdx, errIdx := -1, -1
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if fn, ok := t.Underlying().(*types.Signature); ok && fn.Params().Len() == 0 && fn.Results().Len() == 0 {
			if releaseIdx >= 0 {
				return nil // two func() results: not the pin idiom
			}
			releaseIdx = i
		}
		if isErrorType(t) {
			errIdx = i
		}
	}
	if releaseIdx < 0 || len(as.Lhs) != sig.Results().Len() {
		return nil
	}
	acq := &acquireInfo{assign: as, callee: exprString(sel.X) + "." + sel.Sel.Name}
	if id, ok := as.Lhs[releaseIdx].(*ast.Ident); ok && id.Name != "_" {
		acq.release = id
	}
	if errIdx >= 0 {
		if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name != "_" {
			acq.errObj = p.Info.Defs[id]
			if acq.errObj == nil {
				acq.errObj = p.Info.Uses[id]
			}
		}
	}
	return acq
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expr"
}

// checkAcquire runs the path check for one acquisition over the statements
// following it in its declaring list.
func checkAcquire(p *Package, body *ast.BlockStmt, acq *acquireInfo, rest []ast.Stmt) []Diagnostic {
	if acq.release == nil {
		return []Diagnostic{{
			Pos:      p.Fset.Position(acq.assign.Pos()),
			Analyzer: "pinleak",
			Message:  fmt.Sprintf("release function of %s discarded: the pin can never be released", acq.callee),
		}}
	}
	relObj := p.Info.Defs[acq.release]
	if relObj == nil {
		relObj = p.Info.Uses[acq.release]
	}
	if relObj == nil || releaseEscapes(p, body, acq.release, relObj) {
		// Returned, stored or passed on: ownership transfers to the
		// consumer, whose own scope the analyzer checks separately.
		return nil
	}
	w := &pinWalker{p: p, acq: acq, relObj: relObj}
	rel, falls := w.seq(rest, false, false)
	if falls && !rel {
		w.reportAt(acq.assign, "declaring scope ends without calling release")
	}
	return w.diags
}

// releaseEscapes reports whether the release identifier is used anywhere in
// the function other than being called.
func releaseEscapes(p *Package, body *ast.BlockStmt, decl *ast.Ident, relObj types.Object) bool {
	escaped := false
	var parents []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			parents = parents[:len(parents)-1]
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id != decl && p.Info.Uses[id] == relObj {
			calledDirectly := false
			if len(parents) > 0 {
				if call, ok := parents[len(parents)-1].(*ast.CallExpr); ok && call.Fun == id {
					calledDirectly = true
				}
			}
			if !calledDirectly {
				escaped = true
			}
		}
		parents = append(parents, n)
		return true
	})
	return escaped
}

// pinWalker is the flow walker for one tracked release variable. It models
// straight-line execution with branching: released is threaded through
// statements; exits (return / loop branch) with released == false report.
type pinWalker struct {
	p        *Package
	acq      *acquireInfo
	relObj   types.Object
	diags    []Diagnostic
	reported bool
}

func (w *pinWalker) reportAt(pos ast.Node, what string) {
	if w.reported {
		return
	}
	w.reported = true
	w.diags = append(w.diags, Diagnostic{
		Pos:      w.p.Fset.Position(pos.Pos()),
		Analyzer: "pinleak",
		Message:  fmt.Sprintf("pin from %s leaks: %s", w.acq.callee, what),
	})
}

// seq walks a statement list. released is the entry state; inSwitch marks
// that an unlabeled break ends a switch/select rather than the enclosing
// scope. It returns (released at the fall-through exit, whether control can
// fall off the end).
func (w *pinWalker) seq(stmts []ast.Stmt, released, inSwitch bool) (bool, bool) {
	for _, s := range stmts {
		var falls bool
		released, falls = w.stmt(s, released, inSwitch)
		if !falls {
			return released, false
		}
	}
	return released, true
}

// stmt walks one statement, returning (released after it, can control flow
// continue past it).
func (w *pinWalker) stmt(s ast.Stmt, released, inSwitch bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.isReleaseCall(s.X) {
			return true, true
		}
		if isNoReturnCall(s.X) {
			// panic/os.Exit unwind or terminate the program; the pool is
			// torn down with the process, not leaked query-by-query.
			return released, false
		}
		return released, true
	case *ast.DeferStmt:
		if id, ok := s.Call.Fun.(*ast.Ident); ok && w.uses(id) {
			return true, true
		}
		return released, true
	case *ast.ReturnStmt:
		if !released {
			w.reportAt(s, "return without release")
		}
		return released, false
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if inSwitch && s.Label == nil {
				// Jumps to just past the switch — the same place a clause
				// falls to — so model it as clause fall-through. (The
				// statements after the break are unreachable; walking them
				// anyway is harmless.)
				return released, true
			}
			if !released {
				w.reportAt(s, "break out of scope without release")
			}
			return released, false
		case "continue":
			if !released {
				w.reportAt(s, "continue without release")
			}
			return released, false
		case "fallthrough":
			return released, false
		default: // goto: assume the label knows what it is doing
			return released, false
		}
	case *ast.BlockStmt:
		return w.seq(s.List, released, inSwitch)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, released, inSwitch)
	case *ast.IfStmt:
		if w.isErrGuard(s.Cond) {
			// The error path carries a nil release by contract; only the
			// else/fall-through path owns a live pin.
			relThen, fallsThen := w.seqExempt(s.Body)
			relElse, fallsElse := released, true
			if s.Else != nil {
				relElse, fallsElse = w.stmt(s.Else, released, inSwitch)
			}
			return mergeBranches(relThen, fallsThen, relElse, fallsElse)
		}
		relThen, fallsThen := w.stmt(s.Body, released, inSwitch)
		relElse, fallsElse := released, true
		if s.Else != nil {
			relElse, fallsElse = w.stmt(s.Else, released, inSwitch)
		}
		return mergeBranches(relThen, fallsThen, relElse, fallsElse)
	case *ast.SwitchStmt:
		return w.clauses(clauseBodies(s.Body), hasDefaultClause(s.Body), released)
	case *ast.TypeSwitchStmt:
		return w.clauses(clauseBodies(s.Body), hasDefaultClause(s.Body), released)
	case *ast.SelectStmt:
		// A select with no default blocks until one clause runs, so there
		// is no skip path; treat it as an exhaustive switch.
		return w.clauses(clauseBodies(s.Body), true, released)
	case *ast.ForStmt, *ast.RangeStmt:
		// A nested loop executes zero or more times. If it mentions the
		// release at all, trust it (path-sensitive modelling of loop
		// trip counts is beyond a lint pass); otherwise it cannot change
		// the state.
		if w.mentionsRelease(s) {
			return true, true
		}
		return released, true
	case *ast.GoStmt:
		if id, ok := s.Call.Fun.(*ast.Ident); ok && w.uses(id) {
			return true, true
		}
		return released, true
	default:
		return released, true
	}
}

// seqExempt walks an err-guarded branch: the pin does not exist there (the
// pool returns a nil release alongside a non-nil error), so nothing can
// leak; only whether control falls off the end matters.
func (w *pinWalker) seqExempt(body *ast.BlockStmt) (bool, bool) {
	return true, exemptFalls(body.List)
}

// exemptFalls computes whether control can fall off the end of an exempt
// statement list.
func exemptFalls(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	case *ast.ExprStmt:
		if isNoReturnCall(last.X) {
			return false
		}
	case *ast.BlockStmt:
		return exemptFalls(last.List)
	}
	return true
}

func (w *pinWalker) clauses(bodies [][]ast.Stmt, exhaustive bool, released bool) (bool, bool) {
	relOut, fallsOut := true, false
	for _, b := range bodies {
		rel, falls := w.seq(b, released, true)
		if falls {
			fallsOut = true
			relOut = relOut && rel
		}
	}
	if !exhaustive {
		fallsOut = true
		relOut = relOut && released
	}
	if !fallsOut {
		return released, false
	}
	return relOut, true
}

func (w *pinWalker) uses(id *ast.Ident) bool {
	return w.p.Info.Uses[id] == w.relObj
}

func (w *pinWalker) isReleaseCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && w.uses(id)
}

func (w *pinWalker) mentionsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && w.uses(id) {
			found = true
		}
		return !found
	})
	return found
}

// isErrGuard matches `err != nil` against the acquisition's error object.
func (w *pinWalker) isErrGuard(cond ast.Expr) bool {
	if w.acq.errObj == nil {
		return false
	}
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	isErr := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && (w.p.Info.Uses[id] == w.acq.errObj || w.p.Info.Defs[id] == w.acq.errObj)
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isErr(bin.X) && isNil(bin.Y)) || (isErr(bin.Y) && isNil(bin.X))
}

func mergeBranches(relThen bool, fallsThen bool, relElse bool, fallsElse bool) (bool, bool) {
	if !fallsThen && !fallsElse {
		return true, false
	}
	rel := true
	if fallsThen {
		rel = rel && relThen
	}
	if fallsElse {
		rel = rel && relElse
	}
	return rel, true
}

func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// isNoReturnCall recognizes panic(...) and the handful of stdlib calls that
// never return.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			if pkg.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}
