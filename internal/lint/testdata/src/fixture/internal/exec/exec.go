// Package exec exercises ctxloop: its import-path tail puts it in the
// analyzer's scope, so every loop whose direct body acquires column blocks
// must observe context cancellation. Metadata-only sweeps and outer loops
// that never touch blocks themselves are exempt.
package exec

import "context"

// Col mimics a column with per-block pin and gather operations.
type Col struct{ n int }

// NumBlocks returns the block count.
func (c *Col) NumBlocks() int { return c.n }

// AcquireBlock pins block i.
func (c *Col) AcquireBlock(i int) (int32, func()) {
	return int32(i), func() {}
}

// GatherBlock appends block i's values at the given positions.
func (c *Col) GatherBlock(i int, dst []int32) []int32 {
	return append(dst, int32(i))
}

// Min returns block i's zone-map minimum — metadata, no acquisition.
func (c *Col) Min(i int) int32 { return int32(i) }

func sumNoCheck(c *Col) int32 {
	var total int32
	for i := 0; i < c.NumBlocks(); i++ { // want "block loop without a cancellation check"
		v, release := c.AcquireBlock(i)
		total += v
		release()
	}
	return total
}

func gatherNoCheck(c *Col, dst []int32) []int32 {
	for i := 0; i < c.NumBlocks(); i++ { // want "block loop without a cancellation check"
		dst = c.GatherBlock(i, dst)
	}
	return dst
}

func sumErrChecked(ctx context.Context, c *Col) int32 {
	var total int32
	for i := 0; i < c.NumBlocks(); i++ {
		if ctx.Err() != nil {
			return total
		}
		v, release := c.AcquireBlock(i)
		total += v
		release()
	}
	return total
}

func sumDoneChecked(ctx context.Context, c *Col) int32 {
	var total int32
	for i := 0; i < c.NumBlocks(); i++ {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		v, release := c.AcquireBlock(i)
		total += v
		release()
	}
	return total
}

// maxMeta sweeps zone-map metadata only: no block is acquired, so the loop
// is free and exempt.
func maxMeta(c *Col) int32 {
	var max int32
	for i := 0; i < c.NumBlocks(); i++ {
		if m := c.Min(i); m > max {
			max = m
		}
	}
	return max
}

// nestedInner puts the cancellation check in the outer loop only: the outer
// loop never acquires directly (nested loops are judged independently), so
// the inner block loop is the one that must check — and is flagged.
func nestedInner(ctx context.Context, c *Col) int32 {
	var total int32
	for pass := 0; pass < 2; pass++ {
		if ctx.Err() != nil {
			return total
		}
		for i := 0; i < c.NumBlocks(); i++ { // want "block loop without a cancellation check"
			v, release := c.AcquireBlock(i)
			total += v
			release()
		}
	}
	return total
}
