// Package statsuse exercises statsdiscipline outside internal/iosim: every
// direct mutation of an iosim.Stats value — field write, increment,
// whole-struct store through a pointer, address-of-field — is flagged; the
// Stats methods and Add are the only sanctioned write paths.
package statsuse

import "fixture/internal/iosim"

func bad(st *iosim.Stats, n int64) {
	st.BytesRead = n    // want "direct write to iosim.Stats field BytesRead"
	st.BytesRead += n   // want "direct write to iosim.Stats field BytesRead"
	st.Seeks++          // want "direct increment of iosim.Stats field Seeks"
	*st = iosim.Stats{} // want "whole-struct write through a .iosim.Stats"
	_ = &st.BytesRead   // want "address of iosim.Stats field BytesRead"
}

func good(st, other *iosim.Stats, n int64) {
	st.Read(n)
	st.Add(other)
	snapshot := *st // reading a copy never mutates the owner's value
	_ = snapshot
	total := st.BytesRead + st.Seeks // plain reads are free
	_ = total
}
