// Package closer exercises closeerr: a Close() returning exactly one error
// must not be dropped as a bare statement in an internal package. Checking
// the error, discarding it explicitly with "_ =", and defer are all
// allowed, as are Close methods that return nothing (or more than an
// error).
package closer

import "os"

type noError struct{}

// Close has no error result, so bare calls are fine.
func (noError) Close() {}

type multi struct{}

// Close returns more than a single error, so the single-result rule does
// not apply.
func (multi) Close() (int, error) { return 0, nil }

func bad(f *os.File) {
	f.Close() // want "error from f.Close"
}

func goodChecked(f *os.File) error {
	return f.Close()
}

func goodDiscarded(f *os.File) {
	_ = f.Close()
}

func goodDeferred(f *os.File) error {
	defer f.Close()
	return nil
}

func goodNoError(c noError) {
	c.Close()
}

func goodMulti(m multi) {
	m.Close()
}
