// Package guarded exercises guardedby: a field annotated "guarded by mu"
// may only be accessed in functions that lock that mutex somewhere in their
// body or declare "holds mu" in their doc comment. The check is
// flow-insensitive by design — it catches helpers that reach into guarded
// state with no locking anywhere.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// drain returns and clears the count. holds mu.
func (c *counter) drain() int {
	v := c.n
	c.n = 0
	return v
}

func (c *counter) badRead() int {
	return c.n // want "n is guarded by mu"
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rw) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) badPut(k string, v int) {
	r.m[k] = v // want "m is guarded by mu"
}

type typo struct {
	mu sync.Mutex
	n  int // guarded by mux -- want "guarded-by annotation names"
}

func (t *typo) read() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
