// Package suppress exercises the //lint:ignore machinery: a directive on
// the diagnostic's line (trailing form) or the line above (standalone form)
// suppresses the named analyzers only, the reason is mandatory, and a
// directive naming a different analyzer suppresses nothing.
package suppress

import "os"

func trailing(f *os.File) {
	f.Close() //lint:ignore closeerr cleanup path whose error is already decided
}

func above(f *os.File) {
	//lint:ignore closeerr cleanup path whose error is already decided
	f.Close()
}

func multiName(f *os.File) {
	//lint:ignore closeerr,pinleak a comma list covers several analyzers
	f.Close()
}

func wrongName(f *os.File) {
	//lint:ignore pinleak the directive names a different analyzer
	f.Close() // want "error from f.Close"
}

func reasonless(f *os.File) {
	// want+1 "malformed lint:ignore directive"
	//lint:ignore closeerr
	f.Close() // want "error from f.Close"
}
