// Package logging exercises nologprint: internal packages never print to
// stdout/stderr or the process-global logger directly. Injected sinks —
// a stored logf func, a *log.Logger method, an io.Writer destination — are
// the sanctioned output paths, and referencing log.Printf as a value (the
// documented nil-logger default) is fine because only calls are flagged.
package logging

import (
	"fmt"
	"io"
	"log"
	"os"
)

type sink struct {
	logf func(format string, args ...any)
	l    *log.Logger
}

func bad(v int) {
	fmt.Println("v", v)             // want "fmt.Println in an internal package writes to stdout"
	fmt.Printf("%d", v)             // want "fmt.Printf in an internal package writes to stdout"
	fmt.Fprintf(os.Stderr, "%d", v) // want "fmt.Fprintf to os.Stderr"
	fmt.Fprintln(os.Stdout, v)      // want "fmt.Fprintln to os.Stdout"
	log.Printf("v=%d", v)           // want "log.Printf in an internal package uses the process-global logger"
	println(v)                      // want "built-in println"
}

func good(s *sink, w io.Writer, v int) {
	s.logf("v=%d", v)
	s.l.Printf("v=%d", v)
	fmt.Fprintf(w, "%d", v)
	_, _ = fmt.Fprintln(w, v)
	msg := fmt.Sprintf("v=%d", v) // formatting without printing is free
	_ = msg
}

// defaultSink returns the documented nil-logger default: a value reference
// to log.Printf, not a call.
func defaultSink() func(string, ...any) {
	return log.Printf
}
