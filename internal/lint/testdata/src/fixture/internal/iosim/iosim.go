// Package iosim mirrors the real module's I/O counter block just closely
// enough for statsdiscipline to key on it: a type named Stats in a package
// whose import-path tail is "iosim". Plain field writes are legal here —
// this package owns the type — but sync/atomic calls on a plain Stats field
// are flagged even here, because mixing one atomic access with the
// package's plain writes is a data race by construction.
package iosim

import "sync/atomic"

// Stats is the fixture twin of the real iosim.Stats.
type Stats struct {
	BytesRead int64
	Seeks     int64
}

// Read charges n payload bytes.
func (s *Stats) Read(n int64) {
	s.BytesRead += n
}

// Add folds o into s.
func (s *Stats) Add(o *Stats) {
	s.BytesRead += o.BytesRead
	s.Seeks += o.Seeks
}

// badAtomic mixes an atomic access into the plain-field contract.
func (s *Stats) badAtomic(n int64) {
	atomic.AddInt64(&s.BytesRead, n) // want "sync/atomic access to iosim.Stats field BytesRead"
}
