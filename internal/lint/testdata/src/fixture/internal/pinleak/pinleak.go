// Package pinleak exercises the pinleak analyzer: every path out of a
// release function's declaring scope must call (or defer) it, except
// err-guarded paths — the pool contract returns a nil release alongside a
// non-nil error — and escapes, which transfer ownership to the consumer.
package pinleak

import "errors"

// Pool mimics the segstore buffer pool's pin contract: Acquire returns a
// release func alongside an error, and a non-nil error carries a nil
// release.
type Pool struct{}

// Acquire pins the segment for k.
func (p *Pool) Acquire(k int) (int32, func(), error) {
	if k < 0 {
		return 0, nil, errors.New("bad key")
	}
	return int32(k), func() {}, nil
}

// Col mimics the colstore per-block pin: no error result.
type Col struct{ n int }

// NumBlocks returns the block count.
func (c *Col) NumBlocks() int { return c.n }

// AcquireBlock pins block i.
func (c *Col) AcquireBlock(i int) (int32, func()) {
	return int32(i), func() {}
}

func leakOnReturn(p *Pool) int32 {
	blk, release, err := p.Acquire(1)
	if err != nil {
		return 0
	}
	if blk > 10 {
		return blk // want "return without release"
	}
	release()
	return 0
}

func leakDiscarded(p *Pool) {
	_, _, err := p.Acquire(1) // want "release function of p.Acquire discarded"
	_ = err
}

func leakScopeEnd(p *Pool, cond bool) {
	blk, release, err := p.Acquire(2) // want "declaring scope ends without calling release"
	_ = blk
	_ = err
	if cond {
		release()
	}
}

func leakContinue(p *Pool, n int) {
	for i := 0; i < n; i++ {
		blk, release, err := p.Acquire(i)
		if err != nil {
			continue
		}
		if blk < 0 {
			continue // want "continue without release"
		}
		release()
	}
}

func leakBreak(c *Col) int32 {
	var total int32
	for i := 0; i < c.NumBlocks(); i++ {
		v, release := c.AcquireBlock(i)
		if v == 0 {
			break // want "break out of scope without release"
		}
		total += v
		release()
	}
	return total
}

func releaseEveryPath(p *Pool) (int32, error) {
	blk, release, err := p.Acquire(3)
	if err != nil {
		return 0, err
	}
	if blk > 10 {
		release()
		return blk, nil
	}
	release()
	return 0, nil
}

func deferredRelease(p *Pool) (int32, error) {
	blk, release, err := p.Acquire(4)
	if err != nil {
		return 0, err
	}
	defer release()
	return blk, nil
}

type pinHolder struct {
	rel func()
}

// storeTransfersOwnership parks the release in a struct: the consumer owns
// the pin now, so local path-checking ends at the store.
func storeTransfersOwnership(p *Pool, h *pinHolder) error {
	_, release, err := p.Acquire(5)
	if err != nil {
		return err
	}
	h.rel = release
	return nil
}

func switchReleases(c *Col, mode int) int32 {
	v, release := c.AcquireBlock(mode)
	switch mode {
	case 0:
		release()
		return v
	default:
		release()
	}
	return 0
}

func panicIsNotALeak(c *Col) int32 {
	v, release := c.AcquireBlock(1)
	if v < 0 {
		panic("negative block value")
	}
	release()
	return v
}
