package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CloseErr verifies that Close errors in internal packages are never
// silently dropped as a bare statement. On shutdown paths a Close error is
// the durability verdict (an fsync-on-close failure means acked data may
// not be on disk), so it must be checked; on cleanup-after-error paths
// where the original error already carries the diagnosis, discard
// explicitly with `_ = f.Close()` so the choice is visible. `defer
// f.Close()` on read-only handles is idiomatic and allowed.
var CloseErr = &Analyzer{
	Name: "closeerr",
	Doc:  "Close errors are checked or explicitly discarded",
	Run:  runCloseErr,
}

func runCloseErr(p *Package) []Diagnostic {
	if !p.Internal() {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok {
				return true
			}
			sig, ok := tv.Type.(*types.Signature)
			if !ok || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(stmt.Pos()),
				Analyzer: "closeerr",
				Message:  fmt.Sprintf("error from %s.Close() silently discarded: check it, or write `_ = %s.Close()` to discard on a path whose error is already decided", exprString(sel.X), exprString(sel.X)),
			})
			return true
		})
	}
	return diags
}
