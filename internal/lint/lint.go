// Package lint is a dependency-free static analyzer for this repository's
// own invariants (the ssb-lint tool). Built on the standard library's
// go/parser and go/types only — module-internal imports are type-checked
// from source against the module root, standard-library imports through
// go/importer's source importer — so go.mod stays empty of external
// dependencies.
//
// Each analyzer encodes an invariant the tree otherwise enforces only
// dynamically, by whichever test happens to exercise the breaking path:
//
//   - pinleak: every buffer-pool pin (AcquireBlock / Pool.Acquire) is
//     released on every path out of its scope.
//   - ctxloop: block loops in internal/exec and internal/colstore observe
//     context cancellation, preserving the "abandoned queries stop within
//     one 64K block" guarantee.
//   - statsdiscipline: iosim.Stats fields are mutated only inside
//     internal/iosim (everyone else goes through its methods / Add /
//     Atomic), and no sync/atomic call ever touches a plain Stats field.
//   - nologprint: internal packages never print to stdout/stderr or the
//     global logger directly; output goes through the injected loggers.
//   - guardedby: struct fields annotated "// guarded by <mu>" are accessed
//     only by functions that lock that mutex or declare "// holds <mu>".
//   - closeerr: Close errors are never silently dropped as a bare
//     statement — check them, or discard explicitly with "_ =".
//
// A diagnostic is suppressed by a directive comment on its line or the
// line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression is executable documentation of
// why the invariant legitimately does not apply at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [name] message
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All is the full analyzer set ssb-lint runs by default.
var All = []*Analyzer{PinLeak, CtxLoop, StatsDiscipline, NoLogPrint, GuardedBy, CloseErr}

// ByName returns the analyzers named in the comma-separated list, or All
// for an empty list.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  []string
	reason string
	pos    token.Position
}

// ignoreIndex maps filename -> line -> directives that cover that line. A
// directive covers its own line (trailing comment form) and the line
// directly below it (standalone comment form).
type ignoreIndex map[string]map[int][]*ignoreDirective

func (ix ignoreIndex) add(line int, pos token.Position, d *ignoreDirective) {
	m := ix[pos.Filename]
	if m == nil {
		m = map[int][]*ignoreDirective{}
		ix[pos.Filename] = m
	}
	m[line] = append(m[line], d)
}

func (ix ignoreIndex) covers(d Diagnostic) bool {
	for _, dir := range ix[d.Pos.Filename][d.Pos.Line] {
		for _, n := range dir.names {
			if n == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// parseIgnores indexes every //lint:ignore directive of the package and
// reports malformed ones (missing analyzer name or reason) as diagnostics:
// a suppression without a reason is itself an invariant violation.
func parseIgnores(p *Package, ix ignoreIndex) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{
					names:  strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
					pos:    pos,
				}
				ix.add(pos.Line, pos, d)
				ix.add(pos.Line+1, pos, d)
			}
		}
	}
	return diags
}

// Run applies the analyzers to the packages, filters suppressed findings,
// and returns the survivors sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		ix := ignoreIndex{}
		diags = append(diags, parseIgnores(p, ix)...)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if !ix.covers(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// funcDocMatches extracts every submatch of re from a function's doc
// comment group.
func commentMatches(re *regexp.Regexp, groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			for _, m := range re.FindAllStringSubmatch(c.Text, -1) {
				out = append(out, m[1])
			}
		}
	}
	return out
}
