package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// StatsDiscipline verifies the iosim.Stats ownership contract that keeps
// parallel executors worker-invariant: a Stats value is single-owner and
// mutated only through the package's own methods (Read, BlockFetched, Add,
// ...), with cross-goroutine totals going through iosim.Atomic. Outside
// internal/iosim the analyzer flags every direct field write, increment,
// whole-struct store through a *Stats, and address-of-field; everywhere —
// including iosim itself — it flags sync/atomic calls aimed at a plain
// Stats field, because one atomic access mixed with the package's plain
// writes is a data race by construction.
var StatsDiscipline = &Analyzer{
	Name: "statsdiscipline",
	Doc:  "iosim.Stats is mutated only via its own API; no atomic/plain mixing",
	Run:  runStatsDiscipline,
}

func runStatsDiscipline(p *Package) []Diagnostic {
	var diags []Diagnostic
	inIosim := p.Tail() == "iosim"
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "statsdiscipline",
			Message:  msg,
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if inIosim {
					return true
				}
				for _, lhs := range n.Lhs {
					if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
						if name, ok := statsField(p, sel); ok {
							report(lhs, fmt.Sprintf("direct write to iosim.Stats field %s outside internal/iosim: use the Stats methods (or Add / Atomic) so worker-invariance holds", name))
						}
					}
					if star, ok := unparen(lhs).(*ast.StarExpr); ok && isStatsPointerDeref(p, star) {
						report(lhs, "whole-struct write through a *iosim.Stats outside internal/iosim: use Reset or Add")
					}
				}
			case *ast.IncDecStmt:
				if inIosim {
					return true
				}
				if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
					if name, ok := statsField(p, sel); ok {
						report(n, fmt.Sprintf("direct increment of iosim.Stats field %s outside internal/iosim: use the Stats methods", name))
					}
				}
			case *ast.CallExpr:
				// Outside iosim the address-of rule below already covers
				// atomic calls on Stats fields; this arm catches mixing
				// inside the package itself.
				if !inIosim {
					return true
				}
				if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					for _, arg := range n.Args {
						if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
							if sel, ok := unparen(u.X).(*ast.SelectorExpr); ok {
								if name, ok := statsField(p, sel); ok {
									report(arg, fmt.Sprintf("sync/atomic access to iosim.Stats field %s: Stats fields are plain by contract (single owner); use iosim.Atomic for shared totals", name))
								}
							}
						}
					}
				}
			case *ast.UnaryExpr:
				if inIosim {
					return true
				}
				if n.Op.String() == "&" {
					if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
						if name, ok := statsField(p, sel); ok {
							report(n, fmt.Sprintf("address of iosim.Stats field %s taken outside internal/iosim: the field could then be written outside the Stats API", name))
						}
					}
				}
			}
			return true
		})
	}
	return diags
}

// statsField reports whether sel selects a field of iosim.Stats, returning
// the field name.
func statsField(p *Package, sel *ast.SelectorExpr) (string, bool) {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", false
	}
	if isIosimStats(selection.Recv()) {
		return sel.Sel.Name, true
	}
	return "", false
}

// isStatsPointerDeref reports whether *expr dereferences a *iosim.Stats.
func isStatsPointerDeref(p *Package, star *ast.StarExpr) bool {
	tv, ok := p.Info.Types[star.X]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	return ok && isIosimStats(ptr.Elem())
}

// isIosimStats matches the iosim.Stats named type (possibly behind a
// pointer), keyed by package tail so fixtures exercise the analyzer.
func isIosimStats(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Stats" || obj.Pkg() == nil {
		return false
	}
	return pathTail(obj.Pkg().Path()) == "iosim"
}

// calleeFunc resolves a call's static callee, if it is a plain function or
// method.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = paren.X
	}
}

func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
