// Package core is the public facade of the reproduction: it owns one
// generated SSBM dataset and lazily materializes every physical design the
// paper evaluates — the C-Store-style column store in all Figure 7
// configurations, the row-oriented "System X" in all Figure 6 designs, the
// row-in-column-store MVs of Figure 5, and the denormalized tables of
// Figure 8 — behind a single Run entry point.
//
// Typical use:
//
//	db := core.Open(0.1)
//	res, stats, err := db.Run("2.1", core.ColumnStore(exec.FullOpt))
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datafile"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/rowexec"
	"repro/internal/segstore"
	"repro/internal/ssb"
	"repro/internal/wal"
)

// Kind selects the engine family.
type Kind uint8

const (
	// KindColumn runs the column executor (exec) with a Figure 7
	// configuration.
	KindColumn Kind = iota
	// KindColumnRowMV runs the "CS (Row-MV)" path: row-oriented
	// materialized views stored inside the column store.
	KindColumnRowMV
	// KindRow runs the row executor (rowexec) with a Figure 6 design.
	KindRow
	// KindDenorm runs against the pre-joined denormalized table
	// (Figure 8).
	KindDenorm
)

// Config identifies one system under test.
type Config struct {
	Kind Kind
	// Col configures the column executor (KindColumn).
	Col exec.Config
	// Design selects the row-store physical design (KindRow).
	Design rowexec.Design
	// Partitioning enables orderdate-year partition pruning (KindRow;
	// the paper's default is on).
	Partitioning bool
	// Denorm selects the denormalized storage variant (KindDenorm).
	Denorm exec.DenormMode
	// UseProjections lets the column executor pick among redundant fact
	// projections (KindColumn; the extension experiment the paper left
	// out in Section 5.1).
	UseProjections bool
	// SuperTuples replaces the naive (position, value) vertical
	// partitions with super-tuple column tables and positional merge
	// joins (KindRow with Design VerticalPartitioning only) — the
	// row-store improvements the paper's conclusion calls for.
	SuperTuples bool
}

// ColumnStore returns a column-engine config.
func ColumnStore(c exec.Config) Config { return Config{Kind: KindColumn, Col: c} }

// ColumnStoreProjected returns a column-engine config that may answer
// queries from redundant fact projections in other sort orders.
func ColumnStoreProjected(c exec.Config) Config {
	return Config{Kind: KindColumn, Col: c, UseProjections: true}
}

// RowMV returns the CS (Row-MV) config.
func RowMV() Config { return Config{Kind: KindColumnRowMV} }

// SuperTupleVP returns the row-store configuration the paper's conclusion
// sketches: vertical partitioning with super tuples, virtual record-ids and
// positional merge joins.
func SuperTupleVP() Config {
	return Config{Kind: KindRow, Design: rowexec.VerticalPartitioning, Partitioning: true, SuperTuples: true}
}

// RowStore returns a row-engine config with partitioning enabled.
func RowStore(d rowexec.Design) Config {
	return Config{Kind: KindRow, Design: d, Partitioning: true}
}

// Denormalized returns a pre-joined table config.
func Denormalized(m exec.DenormMode) Config { return Config{Kind: KindDenorm, Denorm: m} }

// Label renders the paper's name for the configuration.
func (c Config) Label() string {
	switch c.Kind {
	case KindColumn:
		code := c.Col.Code()
		if c.Col.Fused {
			code += "+fused"
		}
		if c.UseProjections {
			return "CS:" + code + "+proj"
		}
		return "CS:" + code
	case KindColumnRowMV:
		return "CS(Row-MV)"
	case KindRow:
		if c.SuperTuples {
			return "RS:VP(super)"
		}
		if !c.Partitioning {
			return fmt.Sprintf("RS:%v(nopart)", c.Design)
		}
		return fmt.Sprintf("RS:%v", c.Design)
	default:
		return c.Denorm.String()
	}
}

// Engine describes the physical execution path Run takes under this
// configuration — which engine family runs and in what mode.
func (c Config) Engine() string {
	switch c.Kind {
	case KindColumn:
		switch {
		case !c.Col.LateMat:
			return "column store: early-materialized row-at-a-time pipeline"
		case c.Col.FusedActive():
			w := c.Col.Workers
			if w < 1 {
				w = 1
			}
			return fmt.Sprintf("column store: fused morsel-parallel pipeline (workers=%d)", w)
		default:
			return "column store: per-probe late-materialized pipeline"
		}
	case KindColumnRowMV:
		return "column store: row-oriented MV (string tuple reconstruction)"
	case KindRow:
		if c.SuperTuples {
			return "row store System X: super-tuple vertical partitions with positional merge joins"
		}
		return fmt.Sprintf("row store System X: %v design (partition pruning %v)", c.Design, c.Partitioning)
	default:
		return fmt.Sprintf("denormalized pre-joined table (%s), no joins", c.Denorm)
	}
}

// RunStats reports what one query execution cost.
type RunStats struct {
	// Wall is measured execution time (CPU, in-memory).
	Wall time.Duration
	// IO is the simulated I/O the execution performed.
	IO iosim.Stats
	// IOTime is IO priced by the disk model.
	IOTime time.Duration
	// Total is Wall + IOTime: the paper-comparable "query time".
	Total time.Duration
}

// DB owns the dataset and the lazily built physical designs. Data is nil
// for a segment-store-backed DB (OpenSegmentStore): those serve the
// compressed column engines straight from the file's buffer pool, and
// designs that need the raw dataset (row stores, denormalized tables,
// plain-storage column builds, the brute-force reference) are rejected by
// validation instead of being silently rebuilt.
type DB struct {
	SF   float64
	Data *ssb.Data
	Disk iosim.Model

	// seg is the open segment store for file-backed DBs (nil otherwise).
	seg *segstore.Store

	// ingestOn marks that the compressed column store carries a write
	// store (EnableIngest); validate then restricts configurations that
	// cannot observe it once rows have actually been inserted.
	ingestOn atomic.Bool

	colC      *exec.DB
	colPlain  *exec.DB
	sx        *rowexec.SystemX
	rowMVs    map[int]*exec.RowMV
	denorms   map[exec.DenormMode]*exec.DenormDB
	onceColC  sync.Once
	oncePlain sync.Once
	onceSX    sync.Once
	onceRowMV sync.Once
	onceProj  sync.Once
	onceSuper sync.Once
	superVPs  map[string]*rowexec.SuperVP
	muDenorm  sync.Mutex
}

// Open generates the dataset at the given scale factor. Physical designs
// are built on first use.
func Open(sf float64) *DB {
	return OpenData(ssb.Generate(sf))
}

// OpenData wraps an existing dataset (e.g. loaded from a file written by
// internal/datafile) instead of generating one.
func OpenData(d *ssb.Data) *DB {
	return &DB{
		SF:      d.SF,
		Data:    d,
		Disk:    iosim.PaperDisk,
		denorms: map[exec.DenormMode]*exec.DenormDB{},
	}
}

// OpenSegmentStore opens a segment-store file (written by ssb-gen -out
// *.seg) with the given buffer-pool byte budget (<= 0 for unbounded). The
// returned DB executes the compressed column-store configurations over
// pool-backed columns; engines that need the raw dataset are rejected at
// validation.
func OpenSegmentStore(path string, memBudget int64) (*DB, error) {
	return OpenSegmentStoreWith(path, segstore.OpenOptions{MemBudget: memBudget})
}

// OpenSegmentStoreWith is OpenSegmentStore with full open options — in
// particular an injected recovery-log sink, so daemons route torn-tail
// recovery diagnostics through their own logger instead of the library's
// stderr fallback (and can surface Store.RecoveryNote on /stats).
func OpenSegmentStoreWith(path string, opts segstore.OpenOptions) (*DB, error) {
	st, err := segstore.OpenWith(path, opts)
	if err != nil {
		return nil, err
	}
	return &DB{
		SF:      st.SF(),
		Disk:    iosim.PaperDisk,
		seg:     st,
		denorms: map[exec.DenormMode]*exec.DenormDB{},
	}, nil
}

// SegmentStore returns the backing segment store (pool statistics, segment
// counts), or nil for in-memory DBs.
func (db *DB) SegmentStore() *segstore.Store { return db.seg }

// OpenFile loads a -data file of either on-disk format, sniffing the magic:
// a segment store (ssb-gen -out *.seg) opens lazily behind a buffer pool
// with the given byte budget; a v1 datafile loads the raw dataset wholesale
// into memory (budget ignored).
func OpenFile(path string, memBudget int64) (*DB, error) {
	return OpenFileWith(path, segstore.OpenOptions{MemBudget: memBudget})
}

// OpenFileWith is OpenFile with full segment-store open options (the
// recovery-log sink only applies when the file sniffs as a segment store).
func OpenFileWith(path string, opts segstore.OpenOptions) (*DB, error) {
	isSeg, err := segstore.IsSegmentFile(path)
	if err != nil {
		return nil, err
	}
	if isSeg {
		return OpenSegmentStoreWith(path, opts)
	}
	d, err := datafile.Load(path)
	if err != nil {
		return nil, err
	}
	return OpenData(d), nil
}

// ColumnDB returns the column store with compressed (true) or plain storage.
// For a segment-backed DB the compressed store's columns fault through the
// file's buffer pool; plain storage requires the raw dataset (validation
// rejects it before reaching here).
func (db *DB) ColumnDB(compressed bool) *exec.DB {
	if compressed {
		db.onceColC.Do(func() {
			if db.seg != nil {
				col, err := exec.OpenSegmentDB(db.seg)
				if err != nil {
					panic(err) // validated at Open: tables present and well-formed
				}
				db.colC = col
				return
			}
			db.colC = exec.BuildDB(db.Data, true)
		})
		return db.colC
	}
	db.oncePlain.Do(func() { db.colPlain = exec.BuildDB(db.Data, false) })
	return db.colPlain
}

// RowDB returns the row store with all designs materialized. Join work
// memory is scaled with the dataset so the paper's memory-pressure regime
// (1.5 GB against an SF=10 dataset) is preserved at reduced scale factors:
// the index-only design's giant rid hash joins spill at any SF, as they did
// on the paper's testbed.
func (db *DB) RowDB() *rowexec.SystemX {
	db.onceSX.Do(func() {
		db.sx = rowexec.Build(db.Data, rowexec.AllDesigns)
		wm := int64(float64(1536<<20) * db.SF / 10)
		if wm < 1<<20 {
			wm = 1 << 20
		}
		db.sx.WorkMemBytes = wm
	})
	return db.sx
}

// enableProjections builds one redundant projection per foreign-key sort
// order on the compressed column store (the "more aggressive redundancy"
// the paper declined to use).
func (db *DB) enableProjections() {
	db.onceProj.Do(func() {
		col := db.ColumnDB(true)
		for _, sortCol := range []string{"suppkey", "partkey", "custkey"} {
			p, err := col.BuildProjection("lineorder_by_"+sortCol, []string{sortCol})
			if err != nil {
				panic(err) // static column names; cannot fail
			}
			col.AddProjection(p)
		}
	})
}

// rowMV returns the per-flight row-oriented MV.
func (db *DB) rowMV(flight int) *exec.RowMV {
	db.onceRowMV.Do(func() {
		db.rowMVs = map[int]*exec.RowMV{}
		col := db.ColumnDB(true)
		for f := 1; f <= 4; f++ {
			db.rowMVs[f] = col.BuildRowMV(f)
		}
	})
	return db.rowMVs[flight]
}

// DenormDB returns the pre-joined table in the given mode.
func (db *DB) DenormDB(m exec.DenormMode) *exec.DenormDB {
	db.muDenorm.Lock()
	defer db.muDenorm.Unlock()
	if d, ok := db.denorms[m]; ok {
		return d
	}
	d := exec.BuildDenorm(db.Data, m)
	db.denorms[m] = d
	return d
}

// EnableIngest attaches the write-optimized store to the compressed column
// engine: inserts land in an in-memory delta that every compressed
// column-store query unions with the sealed data, and the tuple mover
// freezes full 64K-row prefixes into the segment store (on disk for
// file-backed DBs). background starts the compactor goroutine; tests that
// need deterministic epochs leave it off and call exec's CompactNow.
// maxWSBytes caps delta memory (0 = unbounded); past it Insert returns
// exec.ErrWriteStoreFull as backpressure.
func (db *DB) EnableIngest(background bool, maxWSBytes int64) error {
	return db.EnableIngestWAL(background, maxWSBytes, "", wal.Options{})
}

// EnableIngestWAL is EnableIngest with a durability log. When walPath is
// non-empty, a write-ahead log is opened (and replayed — an existing log's
// pending inserts and deletion vectors are reconstructed into the write
// store before anything else runs) so every accepted insert and delete is
// group-committed to disk before acking. Replay happens before the
// background compactor starts, so recovery never races the tuple mover.
func (db *DB) EnableIngestWAL(background bool, maxWSBytes int64, walPath string, walOpts wal.Options) error {
	col := db.ColumnDB(true)
	if err := col.EnableDelta(maxWSBytes); err != nil {
		return err
	}
	if walPath != "" {
		if err := col.EnableWAL(walPath, walOpts); err != nil {
			return err
		}
	}
	if background {
		col.StartCompactor()
	}
	db.ingestOn.Store(true)
	return nil
}

// Delete tombstones every visible row matching all the given fact-column
// predicates (identity-valued fact columns only — see exec.DB.Delete) and
// returns the count newly deleted. Durable before return when a WAL is
// attached; atomic for readers on every engine configuration.
func (db *DB) Delete(filters []ssb.FactFilter) (int64, error) {
	if !db.ingestOn.Load() {
		return 0, fmt.Errorf("core: ingest is not enabled on this DB")
	}
	return db.colC.Delete(filters)
}

// WALStats returns the durability log's counters (zero value when no WAL).
func (db *DB) WALStats() exec.WALStats {
	if !db.ingestOn.Load() {
		return exec.WALStats{}
	}
	return db.colC.WALStats()
}

// CloseWAL syncs and closes the durability log, if one is attached; call
// after FlushIngest on shutdown.
func (db *DB) CloseWAL() error {
	if !db.ingestOn.Load() {
		return nil
	}
	return db.colC.CloseWAL()
}

// Insert appends logical lineorder rows to the write store, returning the
// new epoch. EnableIngest must have been called.
func (db *DB) Insert(b *ssb.Lineorders) (int64, error) {
	if !db.ingestOn.Load() {
		return 0, fmt.Errorf("core: ingest is not enabled on this DB")
	}
	return db.colC.Insert(b)
}

// FlushIngest seals every pending delta row into the read-optimized store
// (the zero-loss shutdown path for file-backed DBs). No-op when ingest is
// off.
func (db *DB) FlushIngest() error {
	if !db.ingestOn.Load() {
		return nil
	}
	return db.colC.FlushDelta()
}

// CloseIngest stops the background compactor and waits for any in-flight
// tuple-mover pass. It does not flush.
func (db *DB) CloseIngest() {
	if db.ingestOn.Load() {
		db.colC.CloseDelta()
	}
}

// Epoch is the data version: rows ever inserted (0 for frozen DBs).
func (db *DB) Epoch() int64 {
	if !db.ingestOn.Load() {
		return 0
	}
	return db.colC.Epoch()
}

// IngestStats returns the write store's counters (zero value when off).
func (db *DB) IngestStats() exec.DeltaStats {
	if !db.ingestOn.Load() {
		return exec.DeltaStats{}
	}
	return db.colC.DeltaStats()
}

// IngestShape returns the dimension space seeded insert generators must
// draw from to produce valid rows for this DB.
func (db *DB) IngestShape() (ssb.BatchShape, error) {
	if !db.ingestOn.Load() {
		return ssb.BatchShape{}, fmt.Errorf("core: ingest is not enabled on this DB")
	}
	return db.colC.BatchShape()
}

// Run executes the named SSBM query under the given configuration,
// returning the canonical result and cost statistics.
func (db *DB) Run(queryID string, cfg Config) (*ssb.Result, RunStats, error) {
	q := ssb.QueryByID(queryID)
	if q == nil {
		return nil, RunStats{}, fmt.Errorf("core: unknown SSBM query %q", queryID)
	}
	return db.RunPlan(q, cfg)
}

// RunPlan executes an arbitrary logical plan (for example one parsed from
// SQL by internal/sql) under the given configuration.
func (db *DB) RunPlan(q *ssb.Query, cfg Config) (*ssb.Result, RunStats, error) {
	return db.RunPlanCtx(context.Background(), q, cfg)
}

// RunPlanCtx is RunPlan with cancellation. The column engines check ctx
// between 64K-row blocks and abandon the query promptly, releasing every
// pinned segment; the row-oriented engines run to completion and the
// cancellation is surfaced afterwards. Each call owns its iosim accounting,
// so concurrent calls on one DB never interleave stats.
func (db *DB) RunPlanCtx(ctx context.Context, q *ssb.Query, cfg Config) (*ssb.Result, RunStats, error) {
	if err := db.validate(q, cfg); err != nil {
		return nil, RunStats{}, err
	}
	var st iosim.Stats
	var res *ssb.Result
	var start time.Time
	switch cfg.Kind {
	case KindColumn:
		col := db.ColumnDB(cfg.Col.Compression)
		if cfg.UseProjections && cfg.Col.Compression {
			db.enableProjections()
			start = time.Now()
			var err error
			res, _, err = col.RunBestCtx(ctx, q, cfg.Col, &st)
			if err != nil {
				return nil, RunStats{}, err
			}
			break
		}
		start = time.Now() // exclude lazy build
		var err error
		res, err = col.RunCtx(ctx, q, cfg.Col, &st)
		if err != nil {
			return nil, RunStats{}, err
		}
	case KindColumnRowMV:
		mv := db.rowMV(q.Flight)
		start = time.Now() // exclude lazy MV construction
		res = db.ColumnDB(true).RunRowMV(q, mv, &st)
	case KindRow:
		sx := db.RowDB()
		if cfg.SuperTuples {
			db.onceSuper.Do(func() { db.superVPs = rowexec.BuildSuperVPs(db.Data) })
			start = time.Now()
			res = sx.RunSuperVP(q, db.superVPs, &st)
			break
		}
		start = time.Now() // exclude lazy build
		res = sx.RunOpt(q, cfg.Design, cfg.Partitioning, &st)
	default:
		d := db.DenormDB(cfg.Denorm)
		start = time.Now()
		res = d.Run(q, &st)
	}
	if err := ctx.Err(); err != nil {
		// Row-oriented engines do not observe ctx mid-run; drop their
		// completed result rather than hand back work the caller abandoned.
		return nil, RunStats{}, err
	}
	wall := time.Since(start)
	stats := RunStats{Wall: wall, IO: st, IOTime: db.Disk.Time(st)}
	stats.Total = stats.Wall + stats.IOTime
	return res, stats, nil
}

// validate rejects configuration/plan combinations whose physical design
// does not cover the plan.
func (db *DB) validate(q *ssb.Query, cfg Config) error {
	if db.Data == nil {
		// Segment-store-backed: only the compressed column engines run
		// without the raw dataset.
		if cfg.Kind != KindColumn {
			return fmt.Errorf("core: %s needs the raw dataset; a segment store serves only compressed column-store configurations", cfg.Label())
		}
		if !cfg.Col.Compression {
			return fmt.Errorf("core: segment stores hold the compressed physical design; %s needs a plain-storage build from the raw dataset", cfg.Label())
		}
	}
	if db.ingestOn.Load() && db.colC.Epoch() > 0 {
		// Once rows have been inserted, only the compressed column store
		// (the engine carrying the write store) answers correctly; every
		// other physical design was built from the frozen base and would
		// silently miss the inserted rows.
		if cfg.Kind != KindColumn || !cfg.Col.Compression {
			return fmt.Errorf("core: %s serves the frozen base only; after inserts, use a compressed column-store configuration (it unions the write store)", cfg.Label())
		}
	}
	switch cfg.Kind {
	case KindColumnRowMV:
		if q.Flight < 1 || q.Flight > 4 {
			return fmt.Errorf("core: %s requires a query covered by a per-flight MV (query %s has no flight)", cfg.Label(), q.ID)
		}
	case KindRow:
		if cfg.Design == rowexec.MaterializedViews && (q.Flight < 1 || q.Flight > 4) {
			return fmt.Errorf("core: %s requires a query covered by a per-flight MV (query %s has no flight)", cfg.Label(), q.ID)
		}
	case KindDenorm:
		if !db.DenormDB(cfg.Denorm).Supports(q) {
			return fmt.Errorf("core: query %s references attributes outside the denormalized schema", q.ID)
		}
	}
	return nil
}

// Explain renders the physical plan for the named query under cfg without
// executing it against fact data.
func (db *DB) Explain(queryID string, cfg Config) (string, error) {
	q := ssb.QueryByID(queryID)
	if q == nil {
		return "", fmt.Errorf("core: unknown SSBM query %q", queryID)
	}
	return db.ExplainPlan(q, cfg)
}

// ExplainPlan is Explain for an arbitrary logical plan.
func (db *DB) ExplainPlan(q *ssb.Query, cfg Config) (string, error) {
	if err := db.validate(q, cfg); err != nil {
		return "", err
	}
	switch cfg.Kind {
	case KindColumn:
		return db.ColumnDB(cfg.Col.Compression).Explain(q, cfg.Col), nil
	case KindColumnRowMV:
		return fmt.Sprintf("Query %s on CS(Row-MV): scan flight-%d blob column, parse each tuple, row-at-a-time processing\n", q.ID, q.Flight), nil
	case KindRow:
		return db.RowDB().Explain(q, cfg.Design), nil
	default:
		return fmt.Sprintf("Query %s on %s: predicates and group-by applied directly to inlined denormalized columns (no joins)\n", q.ID, cfg.Denorm), nil
	}
}

// Verify runs the query under cfg and checks the result against the
// brute-force reference, returning an error describing any mismatch.
func (db *DB) Verify(queryID string, cfg Config) error {
	if db.Data == nil {
		return fmt.Errorf("core: verification needs the raw dataset; segment stores are checked against the pinned golden file instead (ssb-query -golden)")
	}
	got, _, err := db.Run(queryID, cfg)
	if err != nil {
		return err
	}
	want := ssb.Reference(db.Data, ssb.QueryByID(queryID))
	if !got.Equal(want) {
		return fmt.Errorf("core: %s under %s diverges from reference:\n%s",
			queryID, cfg.Label(), want.Diff(got))
	}
	return nil
}

// Figure5Systems returns the four configurations of paper Figure 5.
func Figure5Systems() []Config {
	return []Config{
		RowStore(rowexec.Traditional),       // RS
		RowStore(rowexec.MaterializedViews), // RS (MV)
		ColumnStore(exec.FullOpt),           // CS
		RowMV(),                             // CS (Row-MV)
	}
}

// Figure6Systems returns the five row-store designs of Figure 6.
func Figure6Systems() []Config {
	out := make([]Config, 0, 5)
	for _, d := range rowexec.Designs() {
		out = append(out, RowStore(d))
	}
	return out
}

// Figure7Systems returns the seven column-store ablation configurations.
func Figure7Systems() []Config {
	out := make([]Config, 0, 7)
	for _, c := range exec.Figure7Configs() {
		out = append(out, ColumnStore(c))
	}
	return out
}

// Figure8Systems returns baseline C-Store plus the three denormalized
// variants of Figure 8.
func Figure8Systems() []Config {
	return []Config{
		ColumnStore(exec.FullOpt),
		Denormalized(exec.DenormNoC),
		Denormalized(exec.DenormIntC),
		Denormalized(exec.DenormMaxC),
	}
}
