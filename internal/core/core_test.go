package core

import (
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
)

var testDB = Open(0.01)

// TestEverySystemEveryQuery is the top-level integration check: all systems
// from all four figures agree with the reference on all thirteen queries.
func TestEverySystemEveryQuery(t *testing.T) {
	var systems []Config
	systems = append(systems, Figure5Systems()...)
	systems = append(systems, Figure6Systems()...)
	systems = append(systems, Figure7Systems()...)
	systems = append(systems, Figure8Systems()...)
	for _, cfg := range systems {
		for _, id := range []string{"1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1", "3.2", "3.3", "3.4", "4.1", "4.2", "4.3"} {
			if err := testDB.Verify(id, cfg); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

// TestSystemsAgreePairwise: spot-check that two independently implemented
// engines produce byte-identical canonical results.
func TestSystemsAgreePairwise(t *testing.T) {
	for _, id := range []string{"2.1", "3.1", "4.3"} {
		a, _, err := testDB.Run(id, ColumnStore(exec.FullOpt))
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := testDB.Run(id, RowStore(rowexec.Traditional))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("Q%s: CS vs RS diverge:\n%s", id, a.Diff(b))
		}
	}
}

func TestRunStatsPopulated(t *testing.T) {
	_, stats, err := testDB.Run("1.1", ColumnStore(exec.FullOpt))
	if err != nil {
		t.Fatal(err)
	}
	if stats.IO.BytesRead == 0 {
		t.Error("no I/O recorded")
	}
	if stats.IOTime <= 0 || stats.Total < stats.Wall {
		t.Errorf("stats inconsistent: %+v", stats)
	}
}

func TestUnknownQuery(t *testing.T) {
	if _, _, err := testDB.Run("9.9", ColumnStore(exec.FullOpt)); err == nil {
		t.Fatal("unknown query should error")
	}
}

func TestLabels(t *testing.T) {
	cases := map[string]Config{
		"CS:tICL":      ColumnStore(exec.FullOpt),
		"CS(Row-MV)":   RowMV(),
		"RS:T":         RowStore(rowexec.Traditional),
		"RS:MV":        RowStore(rowexec.MaterializedViews),
		"PJ, No C":     Denormalized(exec.DenormNoC),
		"RS:T(nopart)": {Kind: KindRow, Design: rowexec.Traditional},
	}
	for want, cfg := range cases {
		if got := cfg.Label(); got != want {
			t.Errorf("Label() = %q want %q", got, want)
		}
	}
}

func TestFigureSystemCounts(t *testing.T) {
	if len(Figure5Systems()) != 4 || len(Figure6Systems()) != 5 ||
		len(Figure7Systems()) != 7 || len(Figure8Systems()) != 4 {
		t.Fatal("figure system counts wrong")
	}
	// Figure 7 labels in paper order.
	var codes []string
	for _, c := range Figure7Systems() {
		codes = append(codes, c.Col.Code())
	}
	if strings.Join(codes, " ") != "tICL TICL tiCL TiCL ticL TicL Ticl" {
		t.Fatalf("figure 7 order: %v", codes)
	}
}

func TestLazyBuildsShareData(t *testing.T) {
	if testDB.ColumnDB(true) != testDB.ColumnDB(true) {
		t.Fatal("column DB rebuilt")
	}
	if testDB.RowDB() != testDB.RowDB() {
		t.Fatal("row DB rebuilt")
	}
	if testDB.DenormDB(exec.DenormIntC) != testDB.DenormDB(exec.DenormIntC) {
		t.Fatal("denorm rebuilt")
	}
}

func TestExplainAllSystems(t *testing.T) {
	var systems []Config
	systems = append(systems, Figure5Systems()...)
	systems = append(systems, Figure6Systems()...)
	systems = append(systems, Figure8Systems()...)
	for _, cfg := range systems {
		out, err := testDB.Explain("2.1", cfg)
		if err != nil {
			t.Errorf("%s: %v", cfg.Label(), err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty explain", cfg.Label())
		}
	}
	if _, err := testDB.Explain("9.9", ColumnStore(exec.FullOpt)); err == nil {
		t.Error("unknown query should error")
	}
}

func TestValidationErrors(t *testing.T) {
	// A flightless ad-hoc plan cannot run on per-flight MV designs.
	adhoc := &ssb.Query{ID: "adhoc", Agg: ssb.AggRevenue}
	if _, _, err := testDB.RunPlan(adhoc, RowMV()); err == nil {
		t.Error("RowMV should reject flightless plans")
	}
	if _, _, err := testDB.RunPlan(adhoc, RowStore(rowexec.MaterializedViews)); err == nil {
		t.Error("RS MV should reject flightless plans")
	}
	// A plan referencing attributes outside the denormalized schema.
	odd := &ssb.Query{
		ID: "odd", Agg: ssb.AggRevenue,
		DimFilters: []ssb.DimFilter{{Dim: ssb.DimCustomer, Col: "mktsegment", Op: compress.OpEq, StrA: "BUILDING"}},
	}
	if _, _, err := testDB.RunPlan(odd, Denormalized(exec.DenormIntC)); err == nil {
		t.Error("denorm should reject uncovered attributes")
	}
	// The same plan runs fine on the column store.
	if _, _, err := testDB.RunPlan(odd, ColumnStore(exec.FullOpt)); err != nil {
		t.Errorf("column store rejected a valid plan: %v", err)
	}
}

func TestProjectedConfigMatchesReference(t *testing.T) {
	for _, id := range []string{"1.1", "2.1", "2.3", "3.4", "4.2"} {
		if err := testDB.Verify(id, ColumnStoreProjected(exec.FullOpt)); err != nil {
			t.Error(err)
		}
	}
}

func TestParallelConfigMatchesReference(t *testing.T) {
	cfg := exec.FullOpt
	cfg.Workers = 4
	for _, id := range []string{"1.2", "2.2", "3.1", "4.1"} {
		if err := testDB.Verify(id, ColumnStore(cfg)); err != nil {
			t.Error(err)
		}
	}
}

func TestSuperTupleVPMatchesReference(t *testing.T) {
	for _, id := range []string{"1.1", "2.2", "3.3", "4.1"} {
		if err := testDB.Verify(id, SuperTupleVP()); err != nil {
			t.Error(err)
		}
	}
	if SuperTupleVP().Label() != "RS:VP(super)" {
		t.Error("super-tuple label wrong")
	}
}
