package core

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
)

// TestIngestEngineGuard pins the facade's honesty rule: once rows have been
// inserted, only the compressed column-store configurations (which union
// the write store) may run — every other physical design was built from the
// frozen base and would silently return stale results.
func TestIngestEngineGuard(t *testing.T) {
	db := Open(0.002)
	if err := db.EnableIngest(false, 0); err != nil {
		t.Fatalf("EnableIngest: %v", err)
	}
	countQ := &ssb.Query{ID: "count", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}

	// Pre-insert: every engine family still runs (epoch 0, nothing to miss).
	if _, _, err := db.RunPlan(countQ, RowStore(rowexec.Traditional)); err != nil {
		t.Fatalf("row store before any insert: %v", err)
	}

	shape, err := db.IngestShape()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ssb.RandBatch(1, 777, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if got := db.Epoch(); got != 777 {
		t.Fatalf("epoch %d, want 777", got)
	}

	res, _, err := db.RunPlan(countQ, ColumnStore(exec.FusedOpt))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(db.Data.NumLineorders() + 777); res.Rows[0].Agg != want {
		t.Fatalf("compressed column count %d, want %d", res.Rows[0].Agg, want)
	}

	for _, cfg := range []Config{
		RowStore(rowexec.Traditional),
		ColumnStore(exec.Config{BlockIter: true, InvisibleJoin: true, LateMat: true}), // plain storage
		Denormalized(exec.DenormMaxC),
		RowMV(),
	} {
		_, _, err := db.RunPlan(ssb.QueryByID("1.1"), cfg)
		if err == nil || !strings.Contains(err.Error(), "frozen base") {
			t.Errorf("%s after insert: err = %v, want frozen-base rejection", cfg.Label(), err)
		}
	}
}
