package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_sf001.json from the reference engine")

const goldenPath = "testdata/golden_sf001.json"

// goldenRow is one pinned result row.
type goldenRow struct {
	Keys []string `json:"keys,omitempty"`
	Aggs []int64  `json:"aggs"`
}

// goldenFile pins query id -> canonical rows at SF=0.01.
type goldenFile map[string][]goldenRow

func toGoldenRows(res *ssb.Result) []goldenRow {
	rows := make([]goldenRow, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = goldenRow{Keys: r.Keys, Aggs: r.AggValues()}
	}
	return rows
}

func diffGolden(want []goldenRow, got *ssb.Result) string {
	gotRows := toGoldenRows(got)
	if len(want) != len(gotRows) {
		return fmt.Sprintf("row counts differ: golden %d vs got %d", len(want), len(gotRows))
	}
	for i := range want {
		w, g := want[i], gotRows[i]
		if fmt.Sprint(w.Keys) != fmt.Sprint(g.Keys) || fmt.Sprint(w.Aggs) != fmt.Sprint(g.Aggs) {
			return fmt.Sprintf("row %d: golden %v=%v vs got %v=%v", i, w.Keys, w.Aggs, g.Keys, g.Aggs)
		}
	}
	return ""
}

func loadGolden(t *testing.T) goldenFile {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with `go test ./internal/core -run TestGolden -update`): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	return g
}

// TestGoldenReference pins the reference engine's results for all thirteen
// SSBM queries at SF=0.01 against a committed golden file, so neither the
// data generator nor the oracle can silently drift.
func TestGoldenReference(t *testing.T) {
	if *updateGolden {
		g := goldenFile{}
		for _, q := range ssb.Queries() {
			g[q.ID] = toGoldenRows(ssb.Reference(testDB.Data, q))
		}
		raw, err := json.MarshalIndent(g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	g := loadGolden(t)
	if len(g) != 13 {
		t.Fatalf("golden file has %d queries, want 13", len(g))
	}
	for _, q := range ssb.Queries() {
		if d := diffGolden(g[q.ID], ssb.Reference(testDB.Data, q)); d != "" {
			t.Errorf("Q%s: reference drifted from golden: %s", q.ID, d)
		}
	}
}

// goldenMatrix is every engine/Config combination the golden sweep pins:
// the column store per-probe and fused at 1/4/8 workers, all five row-store
// designs (plus the no-partitioning and super-tuple variants), the
// row-oriented MV, and the three denormalized modes.
func goldenMatrix() []Config {
	var out []Config
	for _, fused := range []bool{false, true} {
		for _, w := range []int{1, 4, 8} {
			c := exec.FullOpt
			c.Fused = fused
			c.Workers = w
			out = append(out, ColumnStore(c))
		}
	}
	out = append(out, Figure7Systems()...)
	for _, d := range rowexec.Designs() {
		out = append(out, RowStore(d))
		out = append(out, Config{Kind: KindRow, Design: d})
	}
	out = append(out, SuperTupleVP(), RowMV())
	out = append(out,
		Denormalized(exec.DenormNoC),
		Denormalized(exec.DenormIntC),
		Denormalized(exec.DenormMaxC),
	)
	return out
}

// TestGoldenSegmentStore round-trips the SF=0.01 dataset through a segment
// file and demands that the pool-backed column engines still reproduce the
// golden results exactly — under a buffer-pool budget small enough to force
// evictions — and that engines needing the raw dataset are rejected with a
// useful error rather than run against nothing.
func TestGoldenSegmentStore(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update run")
	}
	g := loadGolden(t)
	path := filepath.Join(t.TempDir(), "golden.seg")
	if err := exec.SaveSegments(path, testDB.SF, testDB.ColumnDB(true)); err != nil {
		t.Fatalf("SaveSegments: %v", err)
	}
	segDB, err := OpenSegmentStore(path, 192<<10)
	if err != nil {
		t.Fatalf("OpenSegmentStore: %v", err)
	}
	defer segDB.SegmentStore().Close()
	if segDB.SF != testDB.SF {
		t.Errorf("segment store SF = %v want %v", segDB.SF, testDB.SF)
	}

	var cfgs []Config
	for _, fused := range []bool{false, true} {
		for _, w := range []int{1, 8} {
			c := exec.FullOpt
			c.Fused = fused
			c.Workers = w
			cfgs = append(cfgs, ColumnStore(c))
		}
	}
	for _, cfg := range cfgs {
		for _, q := range ssb.Queries() {
			res, _, err := segDB.Run(q.ID, cfg)
			if err != nil {
				t.Errorf("Q%s on %s (segment store): %v", q.ID, cfg.Label(), err)
				continue
			}
			if d := diffGolden(g[q.ID], res); d != "" {
				t.Errorf("Q%s on %s from segment store drifted from golden: %s", q.ID, cfg.Label(), d)
			}
		}
	}
	ps := segDB.SegmentStore().Pool().Stats()
	if ps.Evictions == 0 {
		t.Error("192KB budget over the full golden sweep produced no evictions")
	}

	// Raw-dataset engines must be rejected, not crash.
	for _, cfg := range []Config{
		RowStore(rowexec.Traditional),
		RowMV(),
		Denormalized(exec.DenormNoC),
		ColumnStore(exec.Config{BlockIter: true, LateMat: true}), // plain storage
	} {
		if _, _, err := segDB.Run("1.1", cfg); err == nil || !strings.Contains(err.Error(), "segment store") {
			t.Errorf("%s over a segment store: err = %v, want a segment-store rejection", cfg.Label(), err)
		}
	}
	if err := segDB.Verify("1.1", ColumnStore(exec.FullOpt)); err == nil {
		t.Error("Verify over a segment store should explain it needs the raw dataset")
	}
}

// TestGoldenEngineMatrix runs all thirteen queries through every pinned
// engine/Config combination and demands exact agreement with the golden
// file — future optimizations cannot silently change any answer.
func TestGoldenEngineMatrix(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update run")
	}
	g := loadGolden(t)
	for _, cfg := range goldenMatrix() {
		for _, q := range ssb.Queries() {
			res, _, err := testDB.Run(q.ID, cfg)
			if err != nil {
				t.Errorf("Q%s on %s: %v", q.ID, cfg.Label(), err)
				continue
			}
			if d := diffGolden(g[q.ID], res); d != "" {
				t.Errorf("Q%s on %s drifted from golden: %s", q.ID, cfg.Label(), d)
			}
		}
	}
}
