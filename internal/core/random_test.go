package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/exec"
	"repro/internal/rowexec"
	"repro/internal/ssb"
)

// randomQuery builds a star-schema query outside the fixed SSBM thirteen:
// random dimension restrictions over the hierarchy attributes, random
// measure filters, random group-by. Only attributes that every engine
// (including the denormalized table) materializes are used.
func randomQuery(rng *rand.Rand, id int) *ssb.Query {
	q := &ssb.Query{ID: fmt.Sprintf("rnd-%d", id)}

	// Aggregate.
	q.Agg = []ssb.AggKind{ssb.AggDiscountRevenue, ssb.AggRevenue, ssb.AggProfit}[rng.Intn(3)]

	// Fact measure filters.
	if rng.Intn(2) == 0 {
		lo := int32(rng.Intn(9))
		q.FactFilters = append(q.FactFilters, ssb.FactFilter{
			Col: "discount", Pred: compress.Between(lo, lo+int32(rng.Intn(3))),
		})
	}
	if rng.Intn(3) == 0 {
		q.FactFilters = append(q.FactFilters, ssb.FactFilter{
			Col: "quantity", Pred: compress.Lt(int32(rng.Intn(49) + 2)),
		})
	}

	// Dimension filters from a menu covering equality, between, IN, and
	// multi-filter dimensions.
	regions := ssb.Regions
	nations := ssb.Nations
	if rng.Intn(2) == 0 {
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimCustomer, Col: "region", Op: compress.OpEq,
			StrA: regions[rng.Intn(len(regions))],
		})
	}
	switch rng.Intn(3) {
	case 0:
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimSupplier, Col: "nation", Op: compress.OpEq,
			StrA: nations[rng.Intn(len(nations))],
		})
	case 1:
		n := nations[rng.Intn(len(nations))]
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimSupplier, Col: "city", Op: compress.OpIn,
			StrSet: []string{ssb.CityOf(n, rng.Intn(10)), ssb.CityOf(n, rng.Intn(10))},
		})
	}
	switch rng.Intn(3) {
	case 0:
		m := rng.Intn(5) + 1
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimPart, Col: "category", Op: compress.OpEq,
			StrA: ssb.CategoryOf(m, rng.Intn(5)+1),
		})
	case 1:
		m, c := rng.Intn(5)+1, rng.Intn(5)+1
		b := rng.Intn(30) + 1
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimPart, Col: "brand1", Op: compress.OpBetween,
			StrA: ssb.Brand1Of(m, c, b), StrB: ssb.Brand1Of(m, c, b+rng.Intn(5)),
		})
	}
	switch rng.Intn(4) {
	case 0:
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimDate, Col: "year", Op: compress.OpEq,
			IsInt: true, IntA: int32(1992 + rng.Intn(7)),
		})
	case 1:
		y := int32(1992 + rng.Intn(5))
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimDate, Col: "year", Op: compress.OpBetween,
			IsInt: true, IntA: y, IntB: y + int32(rng.Intn(3)),
		})
	case 2:
		// Two filters on the same dimension (the invisible join's
		// double-predicate summarization case).
		q.DimFilters = append(q.DimFilters,
			ssb.DimFilter{Dim: ssb.DimDate, Col: "year", Op: compress.OpEq,
				IsInt: true, IntA: int32(1992 + rng.Intn(7))},
			ssb.DimFilter{Dim: ssb.DimDate, Col: "monthnuminyear", Op: compress.OpBetween,
				IsInt: true, IntA: 1, IntB: int32(1 + rng.Intn(11))},
		)
	}

	// Group-by menu (attributes present in the denormalized table too).
	menu := []ssb.GroupCol{
		{Dim: ssb.DimDate, Col: "year"},
		{Dim: ssb.DimCustomer, Col: "nation"},
		{Dim: ssb.DimSupplier, Col: "region"},
		{Dim: ssb.DimPart, Col: "category"},
		{Dim: ssb.DimSupplier, Col: "city"},
	}
	rng.Shuffle(len(menu), func(i, j int) { menu[i], menu[j] = menu[j], menu[i] })
	q.GroupBy = append(q.GroupBy, menu[:rng.Intn(3)]...)

	if len(q.DimFilters) == 0 && len(q.FactFilters) == 0 && len(q.GroupBy) == 0 {
		// Degenerate; force at least one restriction.
		q.DimFilters = append(q.DimFilters, ssb.DimFilter{
			Dim: ssb.DimCustomer, Col: "region", Op: compress.OpEq, StrA: "ASIA",
		})
	}
	return q
}

// TestRandomQueriesAllEngines fuzzes query plans across every engine that
// can execute ad-hoc queries (the per-flight MV designs are excluded: their
// views are defined only for the fixed SSBM flights). `monthnuminyear` is
// not in the denormalized schema, so denorm runs skip queries using it.
func TestRandomQueriesAllEngines(t *testing.T) {
	db := testDB // SF 0.01, shared with the other integration tests
	rng := rand.New(rand.NewSource(20260611))
	colConfigs := append([]Config{}, Figure7Systems()...)
	rowConfigs := []Config{
		RowStore(rowexec.Traditional),
		RowStore(rowexec.TraditionalBitmap),
		RowStore(rowexec.VerticalPartitioning),
		RowStore(rowexec.AllIndexes),
	}
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng, trial)
		want := ssb.Reference(db.Data, q)
		check := func(label string, got *ssb.Result) {
			if !got.Equal(want) {
				t.Errorf("trial %d (%s): %s diverges\nfilters=%+v groups=%+v\n%s",
					trial, q.ID, label, q.DimFilters, q.GroupBy, want.Diff(got))
			}
		}
		for _, cfg := range colConfigs {
			check(cfg.Label(), db.ColumnDB(cfg.Col.Compression).Run(q, cfg.Col, nil))
		}
		for _, cfg := range rowConfigs {
			check(cfg.Label(), db.RowDB().RunOpt(q, cfg.Design, true, nil))
			check(cfg.Label()+"-nopart", db.RowDB().RunOpt(q, cfg.Design, false, nil))
		}
		if !usesMonthNum(q) {
			for _, mode := range []exec.DenormMode{exec.DenormNoC, exec.DenormIntC, exec.DenormMaxC} {
				check(mode.String(), db.DenormDB(mode).Run(q, nil))
			}
		}
	}
}

func usesMonthNum(q *ssb.Query) bool {
	for _, f := range q.DimFilters {
		if f.Col == "monthnuminyear" {
			return true
		}
	}
	return false
}
