// Package ssb implements the Star Schema Benchmark substrate: the schema of
// paper Figure 1, a deterministic scale-factor-parameterised data generator
// (standing in for the SSB dbgen tool), the thirteen benchmark queries
// expressed as logical plans, and the denormalized variant used by Figure 8.
package ssb

import "fmt"

// Regions are the five TPC-H/SSB regions.
var Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// Nations are the 25 TPC-H/SSB nations; NationRegion maps each to its
// region (5 per region). Order matters only for determinism.
var Nations = []string{
	"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
	"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
	"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
	"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
	"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",
}

// NationRegion maps nation name to region name.
var NationRegion = buildNationRegion()

func buildNationRegion() map[string]string {
	m := make(map[string]string, len(Nations))
	for i, n := range Nations {
		m[n] = Regions[i/5]
	}
	return m
}

// CityOf builds an SSB city name: the nation name truncated or padded to 9
// characters followed by a digit 0–9, e.g. "UNITED KI1" for UNITED KINGDOM.
// Each nation therefore has exactly 10 cities, 250 in total.
func CityOf(nation string, digit int) string {
	name := nation
	if len(name) > 9 {
		name = name[:9]
	}
	for len(name) < 9 {
		name += " "
	}
	return fmt.Sprintf("%s%d", name, digit)
}

// MfgrOf returns the part manufacturer string for 1-based mfgr number m
// (1..5), e.g. "MFGR#3".
func MfgrOf(m int) string { return fmt.Sprintf("MFGR#%d", m) }

// CategoryOf returns the part category for mfgr m (1..5) and category c
// (1..5), e.g. "MFGR#35". There are 25 categories.
func CategoryOf(m, c int) string { return fmt.Sprintf("MFGR#%d%d", m, c) }

// Brand1Of returns the part brand for mfgr m, category c and brand number b
// (1..40), e.g. "MFGR#3512". There are 1000 brands.
func Brand1Of(m, c, b int) string { return fmt.Sprintf("MFGR#%d%d%d", m, c, b) }
