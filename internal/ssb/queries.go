package ssb

import "repro/internal/compress"

// Dim identifies one of the four SSBM dimension tables.
type Dim uint8

const (
	// DimCustomer is the CUSTOMER dimension.
	DimCustomer Dim = iota
	// DimSupplier is the SUPPLIER dimension.
	DimSupplier
	// DimPart is the PART dimension.
	DimPart
	// DimDate is the DATE dimension.
	DimDate
)

// String returns the dimension's table name.
func (d Dim) String() string {
	switch d {
	case DimCustomer:
		return "customer"
	case DimSupplier:
		return "supplier"
	case DimPart:
		return "part"
	case DimDate:
		return "dwdate"
	default:
		return "?"
	}
}

// FactFK returns the fact-table foreign key column referencing d.
func (d Dim) FactFK() string {
	switch d {
	case DimCustomer:
		return "custkey"
	case DimSupplier:
		return "suppkey"
	case DimPart:
		return "partkey"
	default:
		return "orderdate"
	}
}

// KeyCol returns the dimension's primary key column.
func (d Dim) KeyCol() string {
	switch d {
	case DimCustomer:
		return "custkey"
	case DimSupplier:
		return "suppkey"
	case DimPart:
		return "partkey"
	default:
		return "datekey"
	}
}

// DimFilter is one restriction on a dimension attribute. String columns use
// StrA/StrB/StrSet; integer columns (year, yearmonthnum, weeknuminyear) use
// IntA/IntB/IntSet with IsInt set.
type DimFilter struct {
	Dim    Dim
	Col    string
	Op     compress.Op
	StrA   string
	StrB   string
	StrSet []string
	IsInt  bool
	IntA   int32
	IntB   int32
	IntSet []int32
}

// IntPred renders an integer DimFilter as a compress.Pred.
func (f DimFilter) IntPred() compress.Pred {
	switch f.Op {
	case compress.OpEq:
		return compress.Eq(f.IntA)
	case compress.OpBetween:
		return compress.Between(f.IntA, f.IntB)
	case compress.OpIn:
		return compress.In(append([]int32(nil), f.IntSet...)...)
	case compress.OpLt:
		return compress.Lt(f.IntA)
	case compress.OpLe:
		return compress.Le(f.IntA)
	case compress.OpGt:
		return compress.Gt(f.IntA)
	case compress.OpGe:
		return compress.Ge(f.IntA)
	default:
		return compress.Pred{Op: f.Op, A: f.IntA, B: f.IntB}
	}
}

// MatchStr evaluates a string DimFilter against a value.
func (f DimFilter) MatchStr(s string) bool {
	switch f.Op {
	case compress.OpEq:
		return s == f.StrA
	case compress.OpNe:
		return s != f.StrA
	case compress.OpBetween:
		return s >= f.StrA && s <= f.StrB
	case compress.OpIn:
		for _, v := range f.StrSet {
			if s == v {
				return true
			}
		}
		return false
	case compress.OpLt:
		return s < f.StrA
	case compress.OpLe:
		return s <= f.StrA
	case compress.OpGt:
		return s > f.StrA
	case compress.OpGe:
		return s >= f.StrA
	default:
		return false
	}
}

// FactFilter is a predicate on a fact-table measure column (the fixed SSBM
// queries restrict discount and quantity; ad-hoc plans may use any column
// in MeasureCols).
type FactFilter struct {
	Col  string
	Pred compress.Pred
}

// GroupCol names a dimension attribute in the GROUP BY list.
type GroupCol struct {
	Dim Dim
	Col string
}

// AggKind selects the aggregate expression.
type AggKind uint8

const (
	// AggDiscountRevenue is sum(lo_extendedprice * lo_discount)
	// (flight 1).
	AggDiscountRevenue AggKind = iota
	// AggRevenue is sum(lo_revenue) (flights 2 and 3).
	AggRevenue
	// AggProfit is sum(lo_revenue - lo_supplycost) (flight 4).
	AggProfit
)

// Columns returns the fact measure columns the aggregate reads.
func (a AggKind) Columns() []string {
	switch a {
	case AggDiscountRevenue:
		return []string{"extendedprice", "discount"}
	case AggRevenue:
		return []string{"revenue"}
	default:
		return []string{"revenue", "supplycost"}
	}
}

// Query is one SSBM query as a logical plan. Both the row and column
// executors compile Queries from this shared description, so result
// equivalence checks compare like with like.
type Query struct {
	ID          string
	Flight      int
	FactFilters []FactFilter
	DimFilters  []DimFilter
	GroupBy     []GroupCol
	Agg         AggKind
	// Aggs is the generalized aggregate list. When empty the query is a
	// legacy single-SUM plan described by Agg; see AggSpecs.
	Aggs []AggSpec
	// PaperSelectivity is the LINEORDER selectivity published in paper
	// Section 3, pinned by generator tests.
	PaperSelectivity float64
}

// DimsUsed returns the set of dimensions referenced by filters or group-by.
func (q *Query) DimsUsed() []Dim {
	seen := map[Dim]bool{}
	var out []Dim
	add := func(d Dim) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, f := range q.DimFilters {
		add(f.Dim)
	}
	for _, g := range q.GroupBy {
		add(g.Dim)
	}
	return out
}

// strEq builds an equality filter on a string dimension column.
func strEq(d Dim, col, v string) DimFilter {
	return DimFilter{Dim: d, Col: col, Op: compress.OpEq, StrA: v}
}

// Queries returns the thirteen SSBM queries (paper Section 3).
func Queries() []*Query {
	return []*Query{
		{
			ID: "1.1", Flight: 1, Agg: AggDiscountRevenue,
			DimFilters: []DimFilter{
				{Dim: DimDate, Col: "year", Op: compress.OpEq, IsInt: true, IntA: 1993},
			},
			FactFilters: []FactFilter{
				{Col: "discount", Pred: compress.Between(1, 3)},
				{Col: "quantity", Pred: compress.Lt(25)},
			},
			PaperSelectivity: 1.9e-2,
		},
		{
			ID: "1.2", Flight: 1, Agg: AggDiscountRevenue,
			DimFilters: []DimFilter{
				{Dim: DimDate, Col: "yearmonthnum", Op: compress.OpEq, IsInt: true, IntA: 199401},
			},
			FactFilters: []FactFilter{
				{Col: "discount", Pred: compress.Between(4, 6)},
				{Col: "quantity", Pred: compress.Between(26, 35)},
			},
			PaperSelectivity: 6.5e-4,
		},
		{
			ID: "1.3", Flight: 1, Agg: AggDiscountRevenue,
			DimFilters: []DimFilter{
				{Dim: DimDate, Col: "weeknuminyear", Op: compress.OpEq, IsInt: true, IntA: 6},
				{Dim: DimDate, Col: "year", Op: compress.OpEq, IsInt: true, IntA: 1994},
			},
			FactFilters: []FactFilter{
				{Col: "discount", Pred: compress.Between(5, 7)},
				{Col: "quantity", Pred: compress.Between(36, 40)},
			},
			PaperSelectivity: 7.5e-5,
		},
		{
			ID: "2.1", Flight: 2, Agg: AggRevenue,
			DimFilters: []DimFilter{
				strEq(DimPart, "category", "MFGR#12"),
				strEq(DimSupplier, "region", "AMERICA"),
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimPart, Col: "brand1"},
			},
			PaperSelectivity: 8.0e-3,
		},
		{
			ID: "2.2", Flight: 2, Agg: AggRevenue,
			DimFilters: []DimFilter{
				{Dim: DimPart, Col: "brand1", Op: compress.OpBetween, StrA: "MFGR#2221", StrB: "MFGR#2228"},
				strEq(DimSupplier, "region", "ASIA"),
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimPart, Col: "brand1"},
			},
			PaperSelectivity: 1.6e-3,
		},
		{
			ID: "2.3", Flight: 2, Agg: AggRevenue,
			DimFilters: []DimFilter{
				strEq(DimPart, "brand1", "MFGR#2239"),
				strEq(DimSupplier, "region", "EUROPE"),
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimPart, Col: "brand1"},
			},
			PaperSelectivity: 2.0e-4,
		},
		{
			ID: "3.1", Flight: 3, Agg: AggRevenue,
			DimFilters: []DimFilter{
				strEq(DimCustomer, "region", "ASIA"),
				strEq(DimSupplier, "region", "ASIA"),
				{Dim: DimDate, Col: "year", Op: compress.OpBetween, IsInt: true, IntA: 1992, IntB: 1997},
			},
			GroupBy: []GroupCol{
				{Dim: DimCustomer, Col: "nation"},
				{Dim: DimSupplier, Col: "nation"},
				{Dim: DimDate, Col: "year"},
			},
			PaperSelectivity: 3.4e-2,
		},
		{
			ID: "3.2", Flight: 3, Agg: AggRevenue,
			DimFilters: []DimFilter{
				strEq(DimCustomer, "nation", "UNITED STATES"),
				strEq(DimSupplier, "nation", "UNITED STATES"),
				{Dim: DimDate, Col: "year", Op: compress.OpBetween, IsInt: true, IntA: 1992, IntB: 1997},
			},
			GroupBy: []GroupCol{
				{Dim: DimCustomer, Col: "city"},
				{Dim: DimSupplier, Col: "city"},
				{Dim: DimDate, Col: "year"},
			},
			PaperSelectivity: 1.4e-3,
		},
		{
			ID: "3.3", Flight: 3, Agg: AggRevenue,
			DimFilters: []DimFilter{
				{Dim: DimCustomer, Col: "city", Op: compress.OpIn, StrSet: []string{CityOf("UNITED KINGDOM", 1), CityOf("UNITED KINGDOM", 5)}},
				{Dim: DimSupplier, Col: "city", Op: compress.OpIn, StrSet: []string{CityOf("UNITED KINGDOM", 1), CityOf("UNITED KINGDOM", 5)}},
				{Dim: DimDate, Col: "year", Op: compress.OpBetween, IsInt: true, IntA: 1992, IntB: 1997},
			},
			GroupBy: []GroupCol{
				{Dim: DimCustomer, Col: "city"},
				{Dim: DimSupplier, Col: "city"},
				{Dim: DimDate, Col: "year"},
			},
			PaperSelectivity: 5.5e-5,
		},
		{
			ID: "3.4", Flight: 3, Agg: AggRevenue,
			DimFilters: []DimFilter{
				{Dim: DimCustomer, Col: "city", Op: compress.OpIn, StrSet: []string{CityOf("UNITED KINGDOM", 1), CityOf("UNITED KINGDOM", 5)}},
				{Dim: DimSupplier, Col: "city", Op: compress.OpIn, StrSet: []string{CityOf("UNITED KINGDOM", 1), CityOf("UNITED KINGDOM", 5)}},
				strEq(DimDate, "yearmonth", "Dec1997"),
			},
			GroupBy: []GroupCol{
				{Dim: DimCustomer, Col: "city"},
				{Dim: DimSupplier, Col: "city"},
				{Dim: DimDate, Col: "year"},
			},
			PaperSelectivity: 7.6e-7,
		},
		{
			ID: "4.1", Flight: 4, Agg: AggProfit,
			DimFilters: []DimFilter{
				strEq(DimCustomer, "region", "AMERICA"),
				strEq(DimSupplier, "region", "AMERICA"),
				{Dim: DimPart, Col: "mfgr", Op: compress.OpIn, StrSet: []string{"MFGR#1", "MFGR#2"}},
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimCustomer, Col: "nation"},
			},
			PaperSelectivity: 1.6e-2,
		},
		{
			ID: "4.2", Flight: 4, Agg: AggProfit,
			DimFilters: []DimFilter{
				strEq(DimCustomer, "region", "AMERICA"),
				strEq(DimSupplier, "region", "AMERICA"),
				{Dim: DimDate, Col: "year", Op: compress.OpIn, IsInt: true, IntSet: []int32{1997, 1998}},
				{Dim: DimPart, Col: "mfgr", Op: compress.OpIn, StrSet: []string{"MFGR#1", "MFGR#2"}},
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimSupplier, Col: "nation"},
				{Dim: DimPart, Col: "category"},
			},
			PaperSelectivity: 4.5e-3,
		},
		{
			ID: "4.3", Flight: 4, Agg: AggProfit,
			DimFilters: []DimFilter{
				strEq(DimCustomer, "region", "AMERICA"),
				strEq(DimSupplier, "nation", "UNITED STATES"),
				{Dim: DimDate, Col: "year", Op: compress.OpIn, IsInt: true, IntSet: []int32{1997, 1998}},
				strEq(DimPart, "category", "MFGR#14"),
			},
			GroupBy: []GroupCol{
				{Dim: DimDate, Col: "year"},
				{Dim: DimSupplier, Col: "city"},
				{Dim: DimPart, Col: "brand1"},
			},
			PaperSelectivity: 9.1e-5,
		},
	}
}

// QueryByID returns the query with the given id, or nil.
func QueryByID(id string) *Query {
	for _, q := range Queries() {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// NeededFactColumns returns the fact-table columns required to execute q:
// measure filters, foreign keys of referenced dimensions, and aggregate
// inputs.
func (q *Query) NeededFactColumns() []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, f := range q.FactFilters {
		add(f.Col)
	}
	for _, d := range q.DimsUsed() {
		add(d.FactFK())
	}
	for _, s := range q.AggSpecs() {
		for _, c := range s.Expr.Columns() {
			add(c)
		}
	}
	return out
}

// FlightMVColumns returns the fact columns of the optimal per-flight
// materialized view (paper Section 4: "a view with exactly the columns
// needed to answer queries in that flight", with no pre-joining).
func FlightMVColumns(flight int) []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range Queries() {
		if q.Flight != flight {
			continue
		}
		for _, c := range q.NeededFactColumns() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}
