package ssb

import (
	"math"
	"strings"
	"testing"
)

// testSF is small enough for fast tests but large enough that the paper's
// published selectivities are measurable (the rarest query qualifies ~0
// rows below this scale).
const testSF = 0.02

var testData = Generate(testSF)

func TestCardinalities(t *testing.T) {
	d := testData
	if got, want := len(d.Customer.Key), scaled(customersPerSF, testSF); got != want {
		t.Errorf("customers = %d want %d", got, want)
	}
	if got, want := len(d.Supplier.Key), scaled(suppliersPerSF, testSF); got != want {
		t.Errorf("suppliers = %d want %d", got, want)
	}
	if got, want := len(d.Part.Key), PartCount(testSF); got != want {
		t.Errorf("parts = %d want %d", got, want)
	}
	// DATE covers 1992-01-01..1998-12-31: 7*365+2 leap days.
	if got := d.NumDates(); got != 2557 {
		t.Errorf("dates = %d want 2557", got)
	}
	// LINEORDER ~ orders * 4 (1..7 lines uniform).
	orders := scaled(ordersPerSF, testSF)
	got := d.NumLineorders()
	if got < orders*3 || got > orders*5 {
		t.Errorf("lineorders = %d, expected ~%d", got, orders*4)
	}
}

func TestPartCountPaperFormula(t *testing.T) {
	if PartCount(1) != 200000 {
		t.Errorf("PartCount(1) = %d", PartCount(1))
	}
	if PartCount(10) != int(200000*(1+math.Log2(10))) {
		t.Errorf("PartCount(10) = %d", PartCount(10))
	}
	if PartCount(0.001) < 1000 {
		t.Errorf("tiny SF should keep brand combinations populated: %d", PartCount(0.001))
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(0.002)
	b := Generate(0.002)
	if a.NumLineorders() != b.NumLineorders() {
		t.Fatal("nondeterministic cardinality")
	}
	for i := 0; i < a.NumLineorders(); i += 97 {
		if a.Line.Revenue[i] != b.Line.Revenue[i] || a.Line.CustKey[i] != b.Line.CustKey[i] {
			t.Fatalf("row %d differs between runs", i)
		}
	}
}

func TestFactSortOrder(t *testing.T) {
	lo := &testData.Line
	for i := 1; i < len(lo.OrderDate); i++ {
		if lo.OrderDate[i] < lo.OrderDate[i-1] {
			t.Fatal("orderdate not primary sorted")
		}
		if lo.OrderDate[i] == lo.OrderDate[i-1] {
			if lo.Quantity[i] < lo.Quantity[i-1] {
				t.Fatal("quantity not secondarily sorted")
			}
			if lo.Quantity[i] == lo.Quantity[i-1] && lo.Discount[i] < lo.Discount[i-1] {
				t.Fatal("discount not tertiarily sorted")
			}
		}
	}
}

func TestValueDomains(t *testing.T) {
	lo := &testData.Line
	for i := range lo.Quantity {
		if lo.Quantity[i] < 1 || lo.Quantity[i] > 50 {
			t.Fatalf("quantity out of domain: %d", lo.Quantity[i])
		}
		if lo.Discount[i] < 0 || lo.Discount[i] > 10 {
			t.Fatalf("discount out of domain: %d", lo.Discount[i])
		}
		wantRev := lo.ExtendedPrice[i] * (100 - lo.Discount[i]) / 100
		if lo.Revenue[i] != wantRev {
			t.Fatalf("revenue %d != extprice*(100-disc)/100 = %d", lo.Revenue[i], wantRev)
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	d := testData
	dateIdx := d.DateIndex()
	for i := 0; i < d.NumLineorders(); i++ {
		if k := d.Line.CustKey[i]; k < 1 || int(k) > len(d.Customer.Key) {
			t.Fatalf("custkey %d out of range", k)
		}
		if k := d.Line.SuppKey[i]; k < 1 || int(k) > len(d.Supplier.Key) {
			t.Fatalf("suppkey %d out of range", k)
		}
		if k := d.Line.PartKey[i]; k < 1 || int(k) > len(d.Part.Key) {
			t.Fatalf("partkey %d out of range", k)
		}
		if _, ok := dateIdx[d.Line.OrderDate[i]]; !ok {
			t.Fatalf("orderdate %d not in DATE", d.Line.OrderDate[i])
		}
	}
}

func TestHierarchies(t *testing.T) {
	d := testData
	// customer: region determined by nation; city prefixed by nation.
	for i := range d.Customer.Key {
		nation := d.Customer.Nation[i]
		if d.Customer.Region[i] != NationRegion[nation] {
			t.Fatalf("customer %d: region %q for nation %q", i, d.Customer.Region[i], nation)
		}
		prefix := nation
		if len(prefix) > 9 {
			prefix = prefix[:9]
		}
		if !strings.HasPrefix(d.Customer.City[i], strings.TrimRight(prefix, " ")) {
			t.Fatalf("customer city %q does not derive from nation %q", d.Customer.City[i], nation)
		}
	}
	// part: brand1 prefixed by category prefixed by mfgr.
	for i := range d.Part.Key {
		if !strings.HasPrefix(d.Part.Category[i], d.Part.MFGR[i]) {
			t.Fatalf("category %q not under mfgr %q", d.Part.Category[i], d.Part.MFGR[i])
		}
		if !strings.HasPrefix(d.Part.Brand1[i], d.Part.Category[i]) {
			t.Fatalf("brand %q not under category %q", d.Part.Brand1[i], d.Part.Category[i])
		}
	}
	// 25 nations, 5 regions, 10 cities per nation at this scale.
	nations := map[string]bool{}
	for _, n := range d.Customer.Nation {
		nations[n] = true
	}
	if len(nations) != 25 {
		t.Errorf("customer nations = %d want 25", len(nations))
	}
}

func TestDateDimension(t *testing.T) {
	d := testData
	if d.Date.Key[0] != 19920101 || d.Date.Key[len(d.Date.Key)-1] != 19981231 {
		t.Fatalf("date range [%d, %d]", d.Date.Key[0], d.Date.Key[len(d.Date.Key)-1])
	}
	// Spot-check derived fields for 1994-02-14.
	idx := -1
	for i, k := range d.Date.Key {
		if k == 19940214 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("1994-02-14 missing")
	}
	if d.Date.Year[idx] != 1994 || d.Date.YearMonthNum[idx] != 199402 ||
		d.Date.MonthNumInYr[idx] != 2 || d.Date.DayNumInMonth[idx] != 14 {
		t.Fatal("derived date fields wrong for 1994-02-14")
	}
	if d.Date.YearMonth[idx] != "Feb1994" {
		t.Fatalf("yearmonth = %q", d.Date.YearMonth[idx])
	}
	// Dec1997 exists (query 3.4 depends on it).
	found := false
	for _, ym := range d.Date.YearMonth {
		if ym == "Dec1997" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("Dec1997 missing from yearmonth")
	}
}

// TestSelectivitiesMatchPaper pins the generator to the paper's published
// per-query LINEORDER selectivities (Section 3). Tolerance is a factor of
// 2.5 for the common queries and looser for the two rarest (3.3, 3.4)
// whose counts are tiny at test scale.
func TestSelectivitiesMatchPaper(t *testing.T) {
	for _, q := range Queries() {
		got := Selectivity(testData, q)
		want := q.PaperSelectivity
		expectRows := want * float64(testData.NumLineorders())
		if expectRows < 20 {
			// Too few expected qualifying rows at test scale for a
			// two-sided check (e.g. Q3.3 expects ~6, Q3.4 ~0.1);
			// only require the query stays rare.
			if got > want*20+1e-9 {
				t.Errorf("Q%s: selectivity %.2e, paper %.2e", q.ID, got, want)
			}
			continue
		}
		tol := 2.5
		if got > want*tol || got < want/tol {
			t.Errorf("Q%s: selectivity %.3e, paper %.3e (tolerance x%.1f)", q.ID, got, want, tol)
		}
	}
}

func TestQueriesWellFormed(t *testing.T) {
	qs := Queries()
	if len(qs) != 13 {
		t.Fatalf("got %d queries", len(qs))
	}
	flights := map[int]int{}
	for _, q := range qs {
		flights[q.Flight]++
		if q.ID == "" || q.PaperSelectivity <= 0 {
			t.Errorf("query %q malformed", q.ID)
		}
		// Flight 1 has no group-by; others do.
		if (q.Flight == 1) != (len(q.GroupBy) == 0) {
			t.Errorf("Q%s: group-by shape wrong", q.ID)
		}
		if len(q.DimsUsed()) == 0 {
			t.Errorf("Q%s uses no dimensions", q.ID)
		}
	}
	if flights[1] != 3 || flights[2] != 3 || flights[3] != 4 || flights[4] != 3 {
		t.Errorf("flight sizes: %v", flights)
	}
	if QueryByID("2.2") == nil || QueryByID("9.9") != nil {
		t.Error("QueryByID wrong")
	}
}

func TestReferenceQ11Formula(t *testing.T) {
	// Independent recomputation of Q1.1 straight from arrays.
	d := testData
	dateIdx := d.DateIndex()
	var want int64
	for i := 0; i < d.NumLineorders(); i++ {
		if d.Line.Discount[i] >= 1 && d.Line.Discount[i] <= 3 && d.Line.Quantity[i] < 25 {
			di := dateIdx[d.Line.OrderDate[i]]
			if d.Date.Year[di] == 1993 {
				want += int64(d.Line.ExtendedPrice[i]) * int64(d.Line.Discount[i])
			}
		}
	}
	res := Reference(d, QueryByID("1.1"))
	if len(res.Rows) != 1 || res.Rows[0].Agg != want {
		t.Fatalf("Q1.1 reference = %v, want %d", res.Rows, want)
	}
	if want == 0 {
		t.Fatal("Q1.1 selected nothing; test scale too small")
	}
}

func TestReferenceGroupedQueries(t *testing.T) {
	d := testData
	for _, id := range []string{"2.1", "3.1", "4.1"} {
		q := QueryByID(id)
		res := Reference(d, q)
		if len(res.Rows) == 0 {
			t.Errorf("Q%s: empty result at SF %v", id, testSF)
			continue
		}
		// Keys have the right arity and canonical sort order.
		for i, row := range res.Rows {
			if len(row.Keys) != len(q.GroupBy) {
				t.Fatalf("Q%s row %d has %d keys", id, i, len(row.Keys))
			}
			if i > 0 {
				prev := strings.Join(res.Rows[i-1].Keys, "\x00")
				cur := strings.Join(row.Keys, "\x00")
				if cur < prev {
					t.Fatalf("Q%s rows not canonically sorted", id)
				}
			}
		}
	}
}

func TestResultEqualAndDiff(t *testing.T) {
	a := NewResult("x", []ResultRow{{Keys: []string{"b"}, Agg: 2}, {Keys: []string{"a"}, Agg: 1}})
	b := NewResult("x", []ResultRow{{Keys: []string{"a"}, Agg: 1}, {Keys: []string{"b"}, Agg: 2}})
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := NewResult("x", []ResultRow{{Keys: []string{"a"}, Agg: 1}, {Keys: []string{"b"}, Agg: 3}})
	if a.Equal(c) {
		t.Fatal("unequal results compared equal")
	}
	if a.Diff(c) == "" {
		t.Fatal("Diff should describe the mismatch")
	}
	if a.TotalAgg() != 3 {
		t.Fatal("TotalAgg wrong")
	}
	if !strings.Contains(a.String(), "2 rows") {
		t.Fatal("String() header wrong")
	}
}

func TestCityOf(t *testing.T) {
	if got := CityOf("UNITED KINGDOM", 1); got != "UNITED KI1" {
		t.Fatalf("CityOf = %q", got)
	}
	if got := CityOf("PERU", 5); got != "PERU     5" {
		t.Fatalf("CityOf short = %q", got)
	}
	if len(CityOf("PERU", 9)) != 10 {
		t.Fatal("city must be 10 chars")
	}
}

func TestBrandNaming(t *testing.T) {
	if MfgrOf(2) != "MFGR#2" || CategoryOf(2, 2) != "MFGR#22" || Brand1Of(2, 2, 21) != "MFGR#2221" {
		t.Fatal("part hierarchy naming wrong")
	}
	// Q2.2's between range must select exactly brands 21..28 of MFGR#22.
	matched := 0
	for b := 1; b <= 40; b++ {
		s := Brand1Of(2, 2, b)
		if s >= "MFGR#2221" && s <= "MFGR#2228" {
			matched++
			if b < 21 || b > 28 {
				t.Fatalf("brand %d (%s) wrongly in Q2.2 range", b, s)
			}
		}
	}
	if matched != 8 {
		t.Fatalf("Q2.2 range matched %d brands, want 8", matched)
	}
}
