package ssb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/compress"
)

// This file defines the generalized aggregate model: a query carries a list
// of aggregates (SUM/COUNT/MIN/MAX) over fact-measure expressions instead of
// one hardwired AggKind. The thirteen fixed SSBM queries keep their AggKind
// for the figure harnesses; every engine consumes the list form via
// Query.AggSpecs, which normalizes legacy queries to a single SUM spec.

// AggFunc is the aggregate function applied to an expression.
type AggFunc uint8

const (
	// FuncSum is SUM(expr).
	FuncSum AggFunc = iota
	// FuncCount is COUNT(*): the number of qualifying fact rows. The
	// expression is ignored (SSBM measures are never NULL, so COUNT(expr)
	// and COUNT(*) coincide).
	FuncCount
	// FuncMin is MIN(expr).
	FuncMin
	// FuncMax is MAX(expr).
	FuncMax
)

// String returns the SQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case FuncSum:
		return "sum"
	case FuncCount:
		return "count"
	case FuncMin:
		return "min"
	default:
		return "max"
	}
}

// AggExpr is a fact-measure expression: a single column (Op 0), a product
// ('*') or a difference ('-') of two columns — the three forms the SSBM
// queries use, opened up to any measure columns.
type AggExpr struct {
	ColA string
	Op   byte // 0: ColA; '*': ColA*ColB; '-': ColA-ColB
	ColB string
}

// Columns returns the fact columns the expression reads.
func (e AggExpr) Columns() []string {
	if e.ColA == "" {
		return nil
	}
	if e.Op == 0 {
		return []string{e.ColA}
	}
	return []string{e.ColA, e.ColB}
}

// Eval computes the expression over one row's column values (b is ignored
// for single-column expressions).
func (e AggExpr) Eval(a, b int32) int64 {
	switch e.Op {
	case '*':
		return int64(a) * int64(b)
	case '-':
		return int64(a) - int64(b)
	default:
		return int64(a)
	}
}

// String renders the expression with SSB lo_ prefixes.
func (e AggExpr) String() string {
	if e.ColA == "" {
		return "*"
	}
	if e.Op == 0 {
		return "lo_" + e.ColA
	}
	return fmt.Sprintf("lo_%s %c lo_%s", e.ColA, e.Op, e.ColB)
}

// AggSpec is one aggregate of the SELECT list.
type AggSpec struct {
	Func AggFunc
	Expr AggExpr
}

// String renders the aggregate as SQL, e.g. "sum(lo_revenue)".
func (s AggSpec) String() string {
	if s.Func == FuncCount {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Func, s.Expr)
}

// Identity is the accumulator's starting value: the element combining to
// itself under Combine. MIN/MAX identities are the extreme int64 values;
// groups always see at least one row, and ungrouped empty results are
// rendered as zeros by FinalizeCells.
func (s AggSpec) Identity() int64 {
	switch s.Func {
	case FuncMin:
		return math.MaxInt64
	case FuncMax:
		return math.MinInt64
	default:
		return 0
	}
}

// Combine folds one row's evaluated expression value into a cell.
func (s AggSpec) Combine(cell, v int64) int64 {
	switch s.Func {
	case FuncCount:
		return cell + 1
	case FuncMin:
		if v < cell {
			return v
		}
		return cell
	case FuncMax:
		if v > cell {
			return v
		}
		return cell
	default:
		return cell + v
	}
}

// Merge combines two partial accumulations of the same group (morsel
// workers, partitioned scans).
func (s AggSpec) Merge(a, b int64) int64 {
	switch s.Func {
	case FuncMin:
		if b < a {
			return b
		}
		return a
	case FuncMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// InitCells writes each spec's identity into cells.
func InitCells(specs []AggSpec, cells []int64) {
	for k, s := range specs {
		cells[k] = s.Identity()
	}
}

// FinalizeCells canonicalizes an ungrouped accumulation: with zero
// qualifying rows every aggregate renders as 0 (the engines' shared
// convention for SUM over empty input, extended to COUNT/MIN/MAX).
func FinalizeCells(specs []AggSpec, cells []int64, rows int64) []int64 {
	if rows == 0 {
		return make([]int64, len(specs))
	}
	return cells
}

// Spec returns the generalized form of a legacy aggregate kind.
func (a AggKind) Spec() AggSpec {
	switch a {
	case AggDiscountRevenue:
		return AggSpec{Func: FuncSum, Expr: AggExpr{ColA: "extendedprice", Op: '*', ColB: "discount"}}
	case AggRevenue:
		return AggSpec{Func: FuncSum, Expr: AggExpr{ColA: "revenue"}}
	default:
		return AggSpec{Func: FuncSum, Expr: AggExpr{ColA: "revenue", Op: '-', ColB: "supplycost"}}
	}
}

// AggSpecs returns the query's aggregate list. Queries built before the
// generalization (the fixed thirteen) normalize to one SUM spec derived
// from their AggKind.
func (q *Query) AggSpecs() []AggSpec {
	if len(q.Aggs) > 0 {
		return q.Aggs
	}
	return []AggSpec{q.Agg.Spec()}
}

// AggInputs lays out the distinct fact columns the aggregate list reads and
// resolves each spec's expression operands to indexes into that list (-1
// when unused, as for COUNT).
func AggInputs(specs []AggSpec) (cols []string, ia, ib []int) {
	idx := map[string]int{}
	add := func(c string) int {
		if c == "" {
			return -1
		}
		if i, ok := idx[c]; ok {
			return i
		}
		i := len(cols)
		idx[c] = i
		cols = append(cols, c)
		return i
	}
	ia = make([]int, len(specs))
	ib = make([]int, len(specs))
	for k, s := range specs {
		ia[k], ib[k] = -1, -1
		if s.Func == FuncCount {
			continue
		}
		ia[k] = add(s.Expr.ColA)
		if s.Expr.Op != 0 {
			ib[k] = add(s.Expr.ColB)
		}
	}
	return cols, ia, ib
}

// MakeRow builds a canonical result row from accumulated cells: Agg carries
// the first aggregate (what the figure harnesses read); Aggs carries the
// full list only for multi-aggregate queries, so single-aggregate rows
// compare equal regardless of which code path produced them.
func MakeRow(keys []string, cells []int64) ResultRow {
	r := ResultRow{Keys: keys, Agg: cells[0]}
	if len(cells) > 1 {
		r.Aggs = append([]int64(nil), cells...)
	}
	return r
}

// MeasureCols are the LINEORDER measure columns open to generalized fact
// filters and aggregate expressions: the set every engine materializes
// (vertical partitions and fact indexes included).
var MeasureCols = []string{"quantity", "extendedprice", "discount", "revenue", "supplycost"}

// IsMeasureCol reports whether name is in MeasureCols.
func IsMeasureCol(name string) bool {
	for _, c := range MeasureCols {
		if c == name {
			return true
		}
	}
	return false
}

// IntCol returns the named integer fact column, or nil (the two string
// attributes and unknown names).
func (lo *Lineorders) IntCol(name string) []int32 {
	switch name {
	case "orderkey":
		return lo.OrderKey
	case "linenumber":
		return lo.LineNumber
	case "custkey":
		return lo.CustKey
	case "partkey":
		return lo.PartKey
	case "suppkey":
		return lo.SuppKey
	case "orderdate":
		return lo.OrderDate
	case "shippriority":
		return lo.ShipPriority
	case "quantity":
		return lo.Quantity
	case "extendedprice":
		return lo.ExtendedPrice
	case "ordtotalprice":
		return lo.OrdTotalPrice
	case "discount":
		return lo.Discount
	case "revenue":
		return lo.Revenue
	case "supplycost":
		return lo.SupplyCost
	case "tax":
		return lo.Tax
	case "commitdate":
		return lo.CommitDate
	default:
		return nil
	}
}

// MustIntCol is IntCol that panics on unknown columns.
func (lo *Lineorders) MustIntCol(name string) []int32 {
	c := lo.IntCol(name)
	if c == nil {
		panic("ssb: lineorder has no integer column " + name)
	}
	return c
}

// SQL renders the query in the SSBM dialect accepted by internal/sql, so
// any plan — including generated ad-hoc ones — can be reproduced from the
// command line (ssb-query -sql '...') and round-tripped through the
// frontend.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, s := range q.AggSpecs() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" from lineorder")
	dims := q.DimsUsed()
	for _, d := range dims {
		b.WriteString(", ")
		b.WriteString(d.String())
	}
	var conj []string
	for _, d := range dims {
		conj = append(conj, fmt.Sprintf("lo_%s = %s", d.FactFK(), sqlDimRef(d, d.KeyCol())))
	}
	for _, f := range q.FactFilters {
		conj = append(conj, sqlIntPred("lo_"+f.Col, f.Pred))
	}
	for _, f := range q.DimFilters {
		conj = append(conj, f.sqlCond())
	}
	if len(conj) > 0 {
		b.WriteString(" where ")
		b.WriteString(strings.Join(conj, " and "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sqlDimRef(g.Dim, g.Col))
		}
	}
	return b.String()
}

// sqlDimRef renders a dimension column with its SSB prefix (c_/s_/p_/d_).
func sqlDimRef(d Dim, col string) string {
	switch d {
	case DimCustomer:
		return "c_" + col
	case DimSupplier:
		return "s_" + col
	case DimPart:
		return "p_" + col
	default:
		return "d_" + col
	}
}

// sqlIntPred renders an integer predicate over the named column.
func sqlIntPred(name string, p compress.Pred) string {
	switch p.Op {
	case compress.OpBetween:
		return fmt.Sprintf("%s between %d and %d", name, p.A, p.B)
	case compress.OpIn:
		vals := make([]string, len(p.Set))
		for i, v := range p.Set {
			vals[i] = fmt.Sprint(v)
		}
		return fmt.Sprintf("%s in (%s)", name, strings.Join(vals, ", "))
	default:
		return fmt.Sprintf("%s %s %d", name, sqlOp(p.Op), p.A)
	}
}

// sqlCond renders a dimension filter as a WHERE conjunct.
func (f DimFilter) sqlCond() string {
	name := sqlDimRef(f.Dim, f.Col)
	if f.IsInt {
		return sqlIntPred(name, f.IntPred())
	}
	quote := func(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }
	switch f.Op {
	case compress.OpBetween:
		return fmt.Sprintf("%s between %s and %s", name, quote(f.StrA), quote(f.StrB))
	case compress.OpIn:
		vals := make([]string, len(f.StrSet))
		for i, v := range f.StrSet {
			vals[i] = quote(v)
		}
		return fmt.Sprintf("%s in (%s)", name, strings.Join(vals, ", "))
	default:
		return fmt.Sprintf("%s %s %s", name, sqlOp(f.Op), quote(f.StrA))
	}
}

// sqlOp spells a comparison operator in SQL ("<>" for not-equal).
func sqlOp(op compress.Op) string {
	if op == compress.OpNe {
		return "<>"
	}
	return op.String()
}
