package ssb

import (
	"fmt"
	"strconv"
)

// Reference executes a query by brute force directly over the generated
// arrays, with no storage engine, no compression and no clever joins. It is
// the correctness oracle every engine configuration is tested against.
func Reference(d *Data, q *Query) *Result {
	// Per-dimension pass vectors (nil = no filter on that dimension).
	pass := map[Dim][]bool{}
	for _, dim := range []Dim{DimCustomer, DimSupplier, DimPart, DimDate} {
		var filters []DimFilter
		for _, f := range q.DimFilters {
			if f.Dim == dim {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		n := d.DimRows(dim)
		p := make([]bool, n)
		for i := 0; i < n; i++ {
			ok := true
			for _, f := range filters {
				if f.IsInt {
					if !f.IntPred().Match(d.DimInt(dim, f.Col, i)) {
						ok = false
						break
					}
				} else if !f.MatchStr(d.DimStr(dim, f.Col, i)) {
					ok = false
					break
				}
			}
			p[i] = ok
		}
		pass[dim] = p
	}

	dateIdx := d.DateIndex()

	lo := &d.Line
	n := len(lo.OrderKey)
	specs := q.AggSpecs()
	aggColNames, ia, ib := AggInputs(specs)
	aggCols := make([][]int32, len(aggColNames))
	for i, name := range aggColNames {
		aggCols[i] = lo.MustIntCol(name)
	}
	factCols := make([][]int32, len(q.FactFilters))
	for i, f := range q.FactFilters {
		factCols[i] = lo.MustIntCol(f.Col)
	}

	type cell struct {
		keys  []string
		cells []int64
	}
	groups := map[string]*cell{}
	total := make([]int64, len(specs))
	InitCells(specs, total)
	var totalRows int64
	hasGroups := len(q.GroupBy) > 0

	for i := 0; i < n; i++ {
		ok := true
		for fi, f := range q.FactFilters {
			if !f.Pred.Match(factCols[fi][i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for dim, p := range pass {
			if !p[d.FactDimIndex(dim, i, dateIdx)] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cells := total
		if hasGroups {
			keys := make([]string, len(q.GroupBy))
			for k, g := range q.GroupBy {
				di := d.FactDimIndex(g.Dim, i, dateIdx)
				keys[k] = d.DimKeyString(g.Dim, g.Col, di)
			}
			ck := compositeKey(keys)
			row, found := groups[ck]
			if !found {
				row = &cell{keys: keys, cells: make([]int64, len(specs))}
				InitCells(specs, row.cells)
				groups[ck] = row
			}
			cells = row.cells
		}
		totalRows++
		for k, s := range specs {
			var v int64
			if s.Func != FuncCount {
				var a, b int32
				a = aggCols[ia[k]][i]
				if ib[k] >= 0 {
					b = aggCols[ib[k]][i]
				}
				v = s.Expr.Eval(a, b)
			}
			cells[k] = s.Combine(cells[k], v)
		}
	}

	if !hasGroups {
		return NewResult(q.ID, []ResultRow{MakeRow(nil, FinalizeCells(specs, total, totalRows))})
	}
	rows := make([]ResultRow, 0, len(groups))
	for _, r := range groups {
		rows = append(rows, MakeRow(r.keys, r.cells))
	}
	return NewResult(q.ID, rows)
}

// compositeKey joins group keys with an unlikely separator.
func compositeKey(keys []string) string {
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += "\x00"
		}
		s += k
	}
	return s
}

// DateIndex returns a map from datekey (yyyymmdd) to row index in the DATE
// dimension.
func (d *Data) DateIndex() map[int32]int32 {
	m := make(map[int32]int32, len(d.Date.Key))
	for i, k := range d.Date.Key {
		m[k] = int32(i)
	}
	return m
}

// FactDimIndex resolves the dimension row index referenced by fact row i.
// Customer, supplier and part keys are dense 1..N, so index = key-1; dates
// go through the datekey map.
func (d *Data) FactDimIndex(dim Dim, i int, dateIdx map[int32]int32) int {
	switch dim {
	case DimCustomer:
		return int(d.Line.CustKey[i]) - 1
	case DimSupplier:
		return int(d.Line.SuppKey[i]) - 1
	case DimPart:
		return int(d.Line.PartKey[i]) - 1
	default:
		return int(dateIdx[d.Line.OrderDate[i]])
	}
}

// DimRows returns the cardinality of a dimension.
func (d *Data) DimRows(dim Dim) int {
	switch dim {
	case DimCustomer:
		return len(d.Customer.Key)
	case DimSupplier:
		return len(d.Supplier.Key)
	case DimPart:
		return len(d.Part.Key)
	default:
		return len(d.Date.Key)
	}
}

// DimStr returns the string attribute col of dimension row i.
func (d *Data) DimStr(dim Dim, col string, i int) string {
	s := d.DimStrCol(dim, col)
	if s == nil {
		panic(fmt.Sprintf("ssb: %v has no string column %q", dim, col))
	}
	return s[i]
}

// DimInt returns the integer attribute col of dimension row i.
func (d *Data) DimInt(dim Dim, col string, i int) int32 {
	s := d.DimIntCol(dim, col)
	if s == nil {
		panic(fmt.Sprintf("ssb: %v has no int column %q", dim, col))
	}
	return s[i]
}

// DimKeyString renders attribute col of dimension row i as a group key.
func (d *Data) DimKeyString(dim Dim, col string, i int) string {
	if s := d.DimStrCol(dim, col); s != nil {
		return s[i]
	}
	return strconv.Itoa(int(d.DimInt(dim, col, i)))
}

// DimStrCol returns the named string column of a dimension, or nil.
func (d *Data) DimStrCol(dim Dim, col string) []string {
	switch dim {
	case DimCustomer:
		switch col {
		case "name":
			return d.Customer.Name
		case "address":
			return d.Customer.Address
		case "city":
			return d.Customer.City
		case "nation":
			return d.Customer.Nation
		case "region":
			return d.Customer.Region
		case "phone":
			return d.Customer.Phone
		case "mktsegment":
			return d.Customer.MktSegment
		}
	case DimSupplier:
		switch col {
		case "name":
			return d.Supplier.Name
		case "address":
			return d.Supplier.Address
		case "city":
			return d.Supplier.City
		case "nation":
			return d.Supplier.Nation
		case "region":
			return d.Supplier.Region
		case "phone":
			return d.Supplier.Phone
		}
	case DimPart:
		switch col {
		case "name":
			return d.Part.Name
		case "mfgr":
			return d.Part.MFGR
		case "category":
			return d.Part.Category
		case "brand1":
			return d.Part.Brand1
		case "color":
			return d.Part.Color
		case "type":
			return d.Part.Type
		case "container":
			return d.Part.Container
		}
	case DimDate:
		switch col {
		case "date":
			return d.Date.Date
		case "dayofweek":
			return d.Date.DayOfWeek
		case "month":
			return d.Date.Month
		case "yearmonth":
			return d.Date.YearMonth
		case "sellingseason":
			return d.Date.SellingSeason
		}
	}
	return nil
}

// DimIntCol returns the named integer column of a dimension, or nil.
func (d *Data) DimIntCol(dim Dim, col string) []int32 {
	switch dim {
	case DimCustomer:
		if col == "custkey" {
			return d.Customer.Key
		}
	case DimSupplier:
		if col == "suppkey" {
			return d.Supplier.Key
		}
	case DimPart:
		switch col {
		case "partkey":
			return d.Part.Key
		case "size":
			return d.Part.Size
		}
	case DimDate:
		switch col {
		case "datekey":
			return d.Date.Key
		case "year":
			return d.Date.Year
		case "yearmonthnum":
			return d.Date.YearMonthNum
		case "daynuminweek":
			return d.Date.DayNumInWeek
		case "daynuminmonth":
			return d.Date.DayNumInMonth
		case "daynuminyear":
			return d.Date.DayNumInYear
		case "monthnuminyear":
			return d.Date.MonthNumInYr
		case "weeknuminyear":
			return d.Date.WeekNumInYear
		}
	}
	return nil
}

// Selectivity measures the actual LINEORDER selectivity of q over d using
// the reference evaluation path (count of qualifying fact rows / total).
func Selectivity(d *Data, q *Query) float64 {
	pass := map[Dim][]bool{}
	for _, dim := range []Dim{DimCustomer, DimSupplier, DimPart, DimDate} {
		var filters []DimFilter
		for _, f := range q.DimFilters {
			if f.Dim == dim {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		n := d.DimRows(dim)
		p := make([]bool, n)
		for i := 0; i < n; i++ {
			ok := true
			for _, f := range filters {
				if f.IsInt {
					if !f.IntPred().Match(d.DimInt(dim, f.Col, i)) {
						ok = false
						break
					}
				} else if !f.MatchStr(d.DimStr(dim, f.Col, i)) {
					ok = false
					break
				}
			}
			p[i] = ok
		}
		pass[dim] = p
	}
	dateIdx := d.DateIndex()
	match := 0
	n := d.NumLineorders()
	factCols := make([][]int32, len(q.FactFilters))
	for i, f := range q.FactFilters {
		factCols[i] = d.Line.MustIntCol(f.Col)
	}
	for i := 0; i < n; i++ {
		ok := true
		for fi, f := range q.FactFilters {
			if !f.Pred.Match(factCols[fi][i]) {
				ok = false
				break
			}
		}
		for dim, p := range pass {
			if !ok {
				break
			}
			if !p[d.FactDimIndex(dim, i, dateIdx)] {
				ok = false
			}
		}
		if ok {
			match++
		}
	}
	return float64(match) / float64(n)
}
