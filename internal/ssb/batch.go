package ssb

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file supports the write path: seeded generation of additional fact
// batches against an existing dataset's dimension space, and appending those
// batches to a Data instance so the brute-force reference can be rebuilt
// from scratch for any insert history.

// BatchShape describes the dimension space inserted rows must reference:
// the dense key ranges of the three position-keyed dimensions, the valid
// datekeys, and the dictionary vocabularies of the two string fact
// attributes (insert batches may only use values the frozen dictionaries
// already contain).
type BatchShape struct {
	Customers, Suppliers, Parts int
	DateKeys                    []int32
	OrdPriorities               []string
	ShipModes                   []string
}

// Validate reports whether the shape can generate rows at all.
func (sh BatchShape) Validate() error {
	if sh.Customers < 1 || sh.Suppliers < 1 || sh.Parts < 1 {
		return fmt.Errorf("ssb: batch shape needs at least one customer/supplier/part")
	}
	if len(sh.DateKeys) == 0 {
		return fmt.Errorf("ssb: batch shape has no datekeys")
	}
	if len(sh.OrdPriorities) == 0 || len(sh.ShipModes) == 0 {
		return fmt.Errorf("ssb: batch shape has empty string vocabularies")
	}
	return nil
}

// Shape returns the batch shape of a generated dataset.
func (d *Data) Shape() BatchShape {
	return BatchShape{
		Customers:     len(d.Customer.Key),
		Suppliers:     len(d.Supplier.Key),
		Parts:         len(d.Part.Key),
		DateKeys:      d.Date.Key,
		OrdPriorities: ordPriorities,
		ShipModes:     shipModes,
	}
}

// RandBatch generates rows additional fact rows, deterministic in seed,
// drawn from the same distributions as the base generator: orders of 1–7
// line items sharing a customer, order date and priority, with measures in
// the generator's value domains. Rows arrive in insertion order (not sorted
// by orderdate — live writes are what breaks the frozen sort order).
func RandBatch(seed int64, rows int, sh BatchShape) (*Lineorders, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	if rows < 1 {
		return nil, fmt.Errorf("ssb: batch needs at least one row (got %d)", rows)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ead5eed))
	lo := &Lineorders{}
	// Order keys continue far above any generated base key space; they are
	// payload (no query references them), so collisions across seeds are
	// harmless.
	orderKey := int32(1_000_000_000 - rng.Int31n(400_000_000))
	nDate := int32(len(sh.DateKeys))
	for len(lo.OrderKey) < rows {
		lines := rng.Intn(maxLinesPerOrd) + 1
		if rem := rows - len(lo.OrderKey); lines > rem {
			lines = rem
		}
		custKey := rng.Int31n(int32(sh.Customers)) + 1
		dateIdx := rng.Int31n(nDate)
		orderDate := sh.DateKeys[dateIdx]
		prio := sh.OrdPriorities[rng.Intn(len(sh.OrdPriorities))]
		var ordTotal int32
		base := len(lo.OrderKey)
		for l := 1; l <= lines; l++ {
			ext := rng.Int31n(99000) + 1000
			disc := rng.Int31n(11)
			qty := rng.Int31n(50) + 1
			commitIdx := dateIdx + rng.Int31n(90) + 1
			if commitIdx >= nDate {
				commitIdx = nDate - 1
			}
			lo.OrderKey = append(lo.OrderKey, orderKey)
			lo.LineNumber = append(lo.LineNumber, int32(l))
			lo.CustKey = append(lo.CustKey, custKey)
			lo.PartKey = append(lo.PartKey, rng.Int31n(int32(sh.Parts))+1)
			lo.SuppKey = append(lo.SuppKey, rng.Int31n(int32(sh.Suppliers))+1)
			lo.OrderDate = append(lo.OrderDate, orderDate)
			lo.OrdPriority = append(lo.OrdPriority, prio)
			lo.ShipPriority = append(lo.ShipPriority, 0)
			lo.Quantity = append(lo.Quantity, qty)
			lo.ExtendedPrice = append(lo.ExtendedPrice, ext)
			lo.Discount = append(lo.Discount, disc)
			lo.Revenue = append(lo.Revenue, ext*(100-disc)/100)
			lo.SupplyCost = append(lo.SupplyCost, ext*6/10)
			lo.Tax = append(lo.Tax, rng.Int31n(9))
			lo.CommitDate = append(lo.CommitDate, sh.DateKeys[commitIdx])
			lo.ShipMode = append(lo.ShipMode, sh.ShipModes[rng.Intn(len(sh.ShipModes))])
			ordTotal += ext
		}
		for i := base; i < len(lo.OrderKey); i++ {
			lo.OrdTotalPrice = append(lo.OrdTotalPrice, ordTotal)
		}
		orderKey++
	}
	return lo, nil
}

// Len returns the row count (the length of every column; CheckLens verifies
// the invariant for externally assembled batches).
func (lo *Lineorders) Len() int { return len(lo.OrderKey) }

// CheckLens verifies that every column of the batch has the same length.
func (lo *Lineorders) CheckLens() error {
	n := lo.Len()
	for name, l := range map[string]int{
		"linenumber": len(lo.LineNumber), "custkey": len(lo.CustKey),
		"partkey": len(lo.PartKey), "suppkey": len(lo.SuppKey),
		"orderdate": len(lo.OrderDate), "ordpriority": len(lo.OrdPriority),
		"shippriority": len(lo.ShipPriority), "quantity": len(lo.Quantity),
		"extendedprice": len(lo.ExtendedPrice), "ordtotalprice": len(lo.OrdTotalPrice),
		"discount": len(lo.Discount), "revenue": len(lo.Revenue),
		"supplycost": len(lo.SupplyCost), "tax": len(lo.Tax),
		"commitdate": len(lo.CommitDate), "shipmode": len(lo.ShipMode),
	} {
		if l != n {
			return fmt.Errorf("ssb: batch column %s has %d rows, orderkey has %d", name, l, n)
		}
	}
	return nil
}

// AppendBatch appends a batch's rows to the fact table in arrival order.
// The reference evaluator brute-forces over the raw arrays with no sort
// assumptions, so an appended Data is the from-scratch oracle for any
// engine serving the same insert history.
func (d *Data) AppendBatch(b *Lineorders) {
	lo := &d.Line
	lo.OrderKey = append(lo.OrderKey, b.OrderKey...)
	lo.LineNumber = append(lo.LineNumber, b.LineNumber...)
	lo.CustKey = append(lo.CustKey, b.CustKey...)
	lo.PartKey = append(lo.PartKey, b.PartKey...)
	lo.SuppKey = append(lo.SuppKey, b.SuppKey...)
	lo.OrderDate = append(lo.OrderDate, b.OrderDate...)
	lo.OrdPriority = append(lo.OrdPriority, b.OrdPriority...)
	lo.ShipPriority = append(lo.ShipPriority, b.ShipPriority...)
	lo.Quantity = append(lo.Quantity, b.Quantity...)
	lo.ExtendedPrice = append(lo.ExtendedPrice, b.ExtendedPrice...)
	lo.OrdTotalPrice = append(lo.OrdTotalPrice, b.OrdTotalPrice...)
	lo.Discount = append(lo.Discount, b.Discount...)
	lo.Revenue = append(lo.Revenue, b.Revenue...)
	lo.SupplyCost = append(lo.SupplyCost, b.SupplyCost...)
	lo.Tax = append(lo.Tax, b.Tax...)
	lo.CommitDate = append(lo.CommitDate, b.CommitDate...)
	lo.ShipMode = append(lo.ShipMode, b.ShipMode...)
}

// DeleteWhere removes every fact row matching ALL of the given measure
// predicates (the same conjunction semantics as the engine's Delete) and
// returns how many were removed. It is the brute-force oracle for the
// deletion-vector path: a Data that replayed the same insert+delete history
// through AppendBatch/DeleteWhere is the from-scratch reference any engine
// snapshot must agree with.
func (d *Data) DeleteWhere(filters []FactFilter) int64 {
	lo := &d.Line
	n := lo.Len()
	cols := make([][]int32, len(filters))
	for i, f := range filters {
		cols[i] = lo.MustIntCol(f.Col)
	}
	keep := make([]bool, n)
	var removed int64
	for i := 0; i < n; i++ {
		keep[i] = false
		for fi := range filters {
			if !filters[fi].Pred.Match(cols[fi][i]) {
				keep[i] = true
				break
			}
		}
		if !keep[i] {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	filterInt := func(s []int32) []int32 {
		out := s[:0]
		for i, v := range s {
			if keep[i] {
				out = append(out, v)
			}
		}
		return out
	}
	filterStr := func(s []string) []string {
		out := s[:0]
		for i, v := range s {
			if keep[i] {
				out = append(out, v)
			}
		}
		return out
	}
	lo.OrderKey = filterInt(lo.OrderKey)
	lo.LineNumber = filterInt(lo.LineNumber)
	lo.CustKey = filterInt(lo.CustKey)
	lo.PartKey = filterInt(lo.PartKey)
	lo.SuppKey = filterInt(lo.SuppKey)
	lo.OrderDate = filterInt(lo.OrderDate)
	lo.OrdPriority = filterStr(lo.OrdPriority)
	lo.ShipPriority = filterInt(lo.ShipPriority)
	lo.Quantity = filterInt(lo.Quantity)
	lo.ExtendedPrice = filterInt(lo.ExtendedPrice)
	lo.OrdTotalPrice = filterInt(lo.OrdTotalPrice)
	lo.Discount = filterInt(lo.Discount)
	lo.Revenue = filterInt(lo.Revenue)
	lo.SupplyCost = filterInt(lo.SupplyCost)
	lo.Tax = filterInt(lo.Tax)
	lo.CommitDate = filterInt(lo.CommitDate)
	lo.ShipMode = filterStr(lo.ShipMode)
	return removed
}

// SortLineorders re-sorts the fact table into the generator's physical
// order (orderdate primary, quantity and discount secondary). A Data that
// absorbed AppendBatch rows is logically complete but physically unsorted;
// BuildDB requires the physical sort (it marks orderdate as the primary
// sort key), so rebuild-from-scratch paths sort first. Query results are
// unaffected — the reference evaluator is order-independent.
func (d *Data) SortLineorders() {
	lo := &d.Line
	n := lo.Len()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		if lo.OrderDate[i] != lo.OrderDate[j] {
			return lo.OrderDate[i] < lo.OrderDate[j]
		}
		if lo.Quantity[i] != lo.Quantity[j] {
			return lo.Quantity[i] < lo.Quantity[j]
		}
		return lo.Discount[i] < lo.Discount[j]
	})
	permuteInt := func(s []int32) []int32 {
		out := make([]int32, n)
		for p, i := range perm {
			out[p] = s[i]
		}
		return out
	}
	permuteStr := func(s []string) []string {
		out := make([]string, n)
		for p, i := range perm {
			out[p] = s[i]
		}
		return out
	}
	lo.OrderKey = permuteInt(lo.OrderKey)
	lo.LineNumber = permuteInt(lo.LineNumber)
	lo.CustKey = permuteInt(lo.CustKey)
	lo.PartKey = permuteInt(lo.PartKey)
	lo.SuppKey = permuteInt(lo.SuppKey)
	lo.OrderDate = permuteInt(lo.OrderDate)
	lo.OrdPriority = permuteStr(lo.OrdPriority)
	lo.ShipPriority = permuteInt(lo.ShipPriority)
	lo.Quantity = permuteInt(lo.Quantity)
	lo.ExtendedPrice = permuteInt(lo.ExtendedPrice)
	lo.OrdTotalPrice = permuteInt(lo.OrdTotalPrice)
	lo.Discount = permuteInt(lo.Discount)
	lo.Revenue = permuteInt(lo.Revenue)
	lo.SupplyCost = permuteInt(lo.SupplyCost)
	lo.Tax = permuteInt(lo.Tax)
	lo.CommitDate = permuteInt(lo.CommitDate)
	lo.ShipMode = permuteStr(lo.ShipMode)
}
