package ssb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Customers holds the CUSTOMER dimension column-wise.
type Customers struct {
	Key        []int32
	Name       []string
	Address    []string
	City       []string
	Nation     []string
	Region     []string
	Phone      []string
	MktSegment []string
}

// Suppliers holds the SUPPLIER dimension column-wise.
type Suppliers struct {
	Key     []int32
	Name    []string
	Address []string
	City    []string
	Nation  []string
	Region  []string
	Phone   []string
}

// Parts holds the PART dimension column-wise.
type Parts struct {
	Key       []int32
	Name      []string
	MFGR      []string
	Category  []string
	Brand1    []string
	Color     []string
	Type      []string
	Size      []int32
	Container []string
}

// Dates holds the DATE dimension column-wise, one row per calendar day of
// 1992-01-01 .. 1998-12-31.
type Dates struct {
	Key           []int32 // yyyymmdd
	Date          []string
	DayOfWeek     []string
	Month         []string
	Year          []int32
	YearMonthNum  []int32 // yyyymm
	YearMonth     []string
	DayNumInWeek  []int32
	DayNumInMonth []int32
	DayNumInYear  []int32
	MonthNumInYr  []int32
	WeekNumInYear []int32
	SellingSeason []string
}

// Lineorders holds the LINEORDER fact table column-wise (17 attributes, as
// in paper Figure 1).
type Lineorders struct {
	OrderKey      []int32
	LineNumber    []int32
	CustKey       []int32
	PartKey       []int32
	SuppKey       []int32
	OrderDate     []int32 // yyyymmdd, FK to Dates.Key
	OrdPriority   []string
	ShipPriority  []int32
	Quantity      []int32 // 1..50
	ExtendedPrice []int32
	OrdTotalPrice []int32
	Discount      []int32 // 0..10
	Revenue       []int32
	SupplyCost    []int32
	Tax           []int32
	CommitDate    []int32
	ShipMode      []string
}

// Data is one generated SSBM instance. The fact table is sorted by
// (orderdate, quantity, discount), matching the paper's C-Store physical
// design: "only one of the seventeen columns in the fact table can be sorted
// (and two others secondarily sorted)".
type Data struct {
	SF       float64
	Customer Customers
	Supplier Suppliers
	Part     Parts
	Date     Dates
	Line     Lineorders
}

// Cardinality constants from paper Figure 1.
const (
	customersPerSF = 30000
	suppliersPerSF = 2000
	ordersPerSF    = 1500000 // x avg 4 lines = 6,000,000 lineorders
	maxLinesPerOrd = 7
)

// PartCount returns the PART cardinality for a scale factor: the paper's
// 200,000 x (1 + log2 sf) for sf >= 1. SSB defines only integer sf >= 1; for
// the fractional factors used in tests we scale linearly with a floor that
// keeps all 1000 (category, brand) combinations populated.
func PartCount(sf float64) int {
	if sf >= 1 {
		return int(200000 * (1 + math.Log2(sf)))
	}
	n := int(200000 * sf)
	if n < 4000 {
		n = 4000
	}
	return n
}

// scaled returns max(1, round(n*sf)).
func scaled(n int, sf float64) int {
	v := int(math.Round(float64(n) * sf))
	if v < 1 {
		v = 1
	}
	return v
}

var (
	mktSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	ordPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	shipModes     = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	colors        = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush"}
	types         = []string{"ECONOMY ANODIZED", "LARGE BRUSHED", "MEDIUM POLISHED", "PROMO BURNISHED", "SMALL PLATED", "STANDARD BURNISHED"}
	containers    = []string{"JUMBO BAG", "LG BOX", "MED CASE", "SM PKG", "WRAP DRUM"}
	seasons       = []string{"Winter", "Spring", "Summer", "Fall", "Christmas"}
)

// Generate builds a deterministic SSBM instance at the given scale factor.
// The same (sf) always yields identical data.
func Generate(sf float64) *Data {
	rng := rand.New(rand.NewSource(int64(sf*1e6) + 42))
	d := &Data{SF: sf}
	d.genDates()
	d.genCustomers(rng, scaled(customersPerSF, sf))
	d.genSuppliers(rng, scaled(suppliersPerSF, sf))
	d.genParts(rng, PartCount(sf))
	d.genLineorders(rng, scaled(ordersPerSF, sf))
	return d
}

func (d *Data) genDates() {
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1998, 12, 31, 0, 0, 0, 0, time.UTC)
	dd := &d.Date
	for t := start; !t.After(end); t = t.AddDate(0, 0, 1) {
		key := int32(t.Year()*10000 + int(t.Month())*100 + t.Day())
		dd.Key = append(dd.Key, key)
		dd.Date = append(dd.Date, t.Format("January 2, 2006"))
		dd.DayOfWeek = append(dd.DayOfWeek, t.Weekday().String())
		dd.Month = append(dd.Month, t.Month().String())
		dd.Year = append(dd.Year, int32(t.Year()))
		dd.YearMonthNum = append(dd.YearMonthNum, int32(t.Year()*100+int(t.Month())))
		dd.YearMonth = append(dd.YearMonth, t.Format("Jan2006"))
		dd.DayNumInWeek = append(dd.DayNumInWeek, int32(t.Weekday())+1)
		dd.DayNumInMonth = append(dd.DayNumInMonth, int32(t.Day()))
		dd.DayNumInYear = append(dd.DayNumInYear, int32(t.YearDay()))
		dd.MonthNumInYr = append(dd.MonthNumInYr, int32(t.Month()))
		_, week := t.ISOWeek()
		dd.WeekNumInYear = append(dd.WeekNumInYear, int32(week))
		dd.SellingSeason = append(dd.SellingSeason, seasons[(int(t.Month())-1)/3])
	}
}

// NumDates returns the DATE cardinality (2557 days: 7 years, two leap).
func (d *Data) NumDates() int { return len(d.Date.Key) }

func (d *Data) genCustomers(rng *rand.Rand, n int) {
	c := &d.Customer
	for i := 1; i <= n; i++ {
		nation := Nations[rng.Intn(len(Nations))]
		c.Key = append(c.Key, int32(i))
		c.Name = append(c.Name, fmt.Sprintf("Customer#%09d", i))
		c.Address = append(c.Address, randAddress(rng))
		c.City = append(c.City, CityOf(nation, rng.Intn(10)))
		c.Nation = append(c.Nation, nation)
		c.Region = append(c.Region, NationRegion[nation])
		c.Phone = append(c.Phone, randPhone(rng))
		c.MktSegment = append(c.MktSegment, mktSegments[rng.Intn(len(mktSegments))])
	}
}

func (d *Data) genSuppliers(rng *rand.Rand, n int) {
	s := &d.Supplier
	for i := 1; i <= n; i++ {
		nation := Nations[rng.Intn(len(Nations))]
		s.Key = append(s.Key, int32(i))
		s.Name = append(s.Name, fmt.Sprintf("Supplier#%09d", i))
		s.Address = append(s.Address, randAddress(rng))
		s.City = append(s.City, CityOf(nation, rng.Intn(10)))
		s.Nation = append(s.Nation, nation)
		s.Region = append(s.Region, NationRegion[nation])
		s.Phone = append(s.Phone, randPhone(rng))
	}
}

func (d *Data) genParts(rng *rand.Rand, n int) {
	p := &d.Part
	for i := 1; i <= n; i++ {
		m := rng.Intn(5) + 1
		c := rng.Intn(5) + 1
		b := rng.Intn(40) + 1
		p.Key = append(p.Key, int32(i))
		p.Name = append(p.Name, colors[rng.Intn(len(colors))]+" "+colors[rng.Intn(len(colors))])
		p.MFGR = append(p.MFGR, MfgrOf(m))
		p.Category = append(p.Category, CategoryOf(m, c))
		p.Brand1 = append(p.Brand1, Brand1Of(m, c, b))
		p.Color = append(p.Color, colors[rng.Intn(len(colors))])
		p.Type = append(p.Type, types[rng.Intn(len(types))])
		p.Size = append(p.Size, rng.Int31n(50)+1)
		p.Container = append(p.Container, containers[rng.Intn(len(containers))])
	}
}

func (d *Data) genLineorders(rng *rand.Rand, orders int) {
	lo := &d.Line
	nCust := int32(len(d.Customer.Key))
	nSupp := int32(len(d.Supplier.Key))
	nPart := int32(len(d.Part.Key))
	nDate := int32(len(d.Date.Key))
	type rec struct {
		orderKey, lineNum, custKey, partKey, suppKey int32
		orderDate, quantity, extPrice, ordTotal      int32
		discount, supplyCost, tax, commitDate        int32
		ordPriority, shipMode                        uint8
	}
	var recs []rec
	for o := 1; o <= orders; o++ {
		lines := rng.Intn(maxLinesPerOrd) + 1
		custKey := rng.Int31n(nCust) + 1
		dateIdx := rng.Int31n(nDate)
		orderDate := d.Date.Key[dateIdx]
		prio := uint8(rng.Intn(len(ordPriorities)))
		var ordTotal int32
		base := len(recs)
		for l := 1; l <= lines; l++ {
			ext := rng.Int31n(99000) + 1000 // 1000..99999 (price in cents)
			disc := rng.Int31n(11)          // 0..10 percent
			qty := rng.Int31n(50) + 1       // 1..50
			commitIdx := dateIdx + rng.Int31n(90) + 1
			if commitIdx >= nDate {
				commitIdx = nDate - 1
			}
			recs = append(recs, rec{
				orderKey:    int32(o),
				lineNum:     int32(l),
				custKey:     custKey,
				partKey:     rng.Int31n(nPart) + 1,
				suppKey:     rng.Int31n(nSupp) + 1,
				orderDate:   orderDate,
				quantity:    qty,
				extPrice:    ext,
				discount:    disc,
				supplyCost:  ext * 6 / 10,
				tax:         rng.Int31n(9),
				commitDate:  d.Date.Key[commitIdx],
				ordPriority: prio,
				shipMode:    uint8(rng.Intn(len(shipModes))),
			})
			ordTotal += ext
		}
		for i := base; i < len(recs); i++ {
			recs[i].ordTotal = ordTotal
		}
	}
	// Physical sort order of the C-Store projection: orderdate primary,
	// quantity and discount secondary (paper Section 6.3.2).
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.orderDate != b.orderDate {
			return a.orderDate < b.orderDate
		}
		if a.quantity != b.quantity {
			return a.quantity < b.quantity
		}
		return a.discount < b.discount
	})
	n := len(recs)
	lo.OrderKey = make([]int32, n)
	lo.LineNumber = make([]int32, n)
	lo.CustKey = make([]int32, n)
	lo.PartKey = make([]int32, n)
	lo.SuppKey = make([]int32, n)
	lo.OrderDate = make([]int32, n)
	lo.OrdPriority = make([]string, n)
	lo.ShipPriority = make([]int32, n)
	lo.Quantity = make([]int32, n)
	lo.ExtendedPrice = make([]int32, n)
	lo.OrdTotalPrice = make([]int32, n)
	lo.Discount = make([]int32, n)
	lo.Revenue = make([]int32, n)
	lo.SupplyCost = make([]int32, n)
	lo.Tax = make([]int32, n)
	lo.CommitDate = make([]int32, n)
	lo.ShipMode = make([]string, n)
	for i, r := range recs {
		lo.OrderKey[i] = r.orderKey
		lo.LineNumber[i] = r.lineNum
		lo.CustKey[i] = r.custKey
		lo.PartKey[i] = r.partKey
		lo.SuppKey[i] = r.suppKey
		lo.OrderDate[i] = r.orderDate
		lo.OrdPriority[i] = ordPriorities[r.ordPriority]
		lo.ShipPriority[i] = 0
		lo.Quantity[i] = r.quantity
		lo.ExtendedPrice[i] = r.extPrice
		lo.OrdTotalPrice[i] = r.ordTotal
		lo.Discount[i] = r.discount
		lo.Revenue[i] = r.extPrice * (100 - r.discount) / 100
		lo.SupplyCost[i] = r.supplyCost
		lo.Tax[i] = r.tax
		lo.CommitDate[i] = r.commitDate
		lo.ShipMode[i] = shipModes[r.shipMode]
	}
}

// NumLineorders returns the fact cardinality.
func (d *Data) NumLineorders() int { return len(d.Line.OrderKey) }

func randAddress(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz "
	n := rng.Intn(15) + 10
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func randPhone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", rng.Intn(25)+10, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}
