package ssb

import (
	"fmt"
	"math/rand"

	"repro/internal/compress"
)

// RandQuery builds a pseudo-random ad-hoc query over the SSBM schema,
// deterministic in seed: any subset of dimension filters (equality, range,
// IN and not-equal over the hierarchy attributes), any combination of
// fact-measure predicates, any group-by set over dimension attributes, and
// a 1–3 element aggregate list drawn from SUM/COUNT/MIN/MAX over the
// measure expression forms. Every attribute it samples is materialized by
// every engine, so a generated query is a valid differential-test input
// for the full engine matrix (the denormalized designs may still decline
// via DenormDB.Supports).
func RandQuery(seed int64) *Query {
	rng := rand.New(rand.NewSource(seed))
	q := &Query{ID: fmt.Sprintf("fuzz-%d", seed)}

	q.Aggs = randAggs(rng)
	randFactFilters(rng, q)
	randDimFilters(rng, q)
	randGroupBy(rng, q)
	return q
}

// randAggs samples the aggregate list.
func randAggs(rng *rand.Rand) []AggSpec {
	n := 1 + rng.Intn(3)
	specs := make([]AggSpec, 0, n)
	for len(specs) < n {
		fn := []AggFunc{FuncSum, FuncSum, FuncCount, FuncMin, FuncMax}[rng.Intn(5)]
		if fn == FuncCount {
			specs = append(specs, AggSpec{Func: FuncCount})
			continue
		}
		expr := AggExpr{ColA: MeasureCols[rng.Intn(len(MeasureCols))]}
		switch rng.Intn(3) {
		case 0: // single column
		case 1:
			expr.Op = '*'
			expr.ColB = MeasureCols[rng.Intn(len(MeasureCols))]
		default:
			expr.Op = '-'
			expr.ColB = MeasureCols[rng.Intn(len(MeasureCols))]
		}
		specs = append(specs, AggSpec{Func: fn, Expr: expr})
	}
	return specs
}

// randFactFilters samples 0–2 measure predicates with value ranges matched
// to the generator's column domains.
func randFactFilters(rng *rand.Rand, q *Query) {
	domain := map[string][2]int32{
		"quantity":      {1, 50},
		"discount":      {0, 10},
		"extendedprice": {1000, 99999},
		"revenue":       {900, 99999},
		"supplycost":    {600, 59999},
	}
	for _, col := range MeasureCols {
		if rng.Intn(4) != 0 {
			continue
		}
		lo, hi := domain[col][0], domain[col][1]
		span := hi - lo
		a := lo + rng.Int31n(span+1)
		var p compress.Pred
		switch rng.Intn(6) {
		case 0:
			p = compress.Between(a, a+rng.Int31n(span/4+1))
		case 1:
			p = compress.Lt(a)
		case 2:
			p = compress.Ge(a)
		case 3:
			p = compress.Eq(a)
		case 4:
			set := make([]int32, 0, 3)
			for len(set) < 1+rng.Intn(3) {
				set = append(set, lo+rng.Int31n(span+1))
			}
			p = compress.In(set...)
		default:
			p = compress.Pred{Op: compress.OpNe, A: a}
		}
		q.FactFilters = append(q.FactFilters, FactFilter{Col: col, Pred: p})
		// Occasionally stack a second predicate on the same column — the
		// conjunction class that exposes engines collapsing per-column
		// predicate lists.
		if rng.Intn(4) == 0 {
			q.FactFilters = append(q.FactFilters, FactFilter{Col: col, Pred: compress.Le(a + rng.Int31n(span/2+1))})
		}
	}
}

// strFilter builds a string dimension filter.
func strFilter(d Dim, col string, op compress.Op, a, b string, set []string) DimFilter {
	return DimFilter{Dim: d, Col: col, Op: op, StrA: a, StrB: b, StrSet: set}
}

// intFilter builds an integer dimension filter.
func intFilter(d Dim, col string, op compress.Op, a, b int32, set []int32) DimFilter {
	return DimFilter{Dim: d, Col: col, Op: op, IsInt: true, IntA: a, IntB: b, IntSet: set}
}

// randDimFilters samples restrictions per dimension, including occasional
// double predicates on one dimension (the invisible join's summarization
// case) and not-equal / IN shapes outside the fixed thirteen.
func randDimFilters(rng *rand.Rand, q *Query) {
	pick := func(vals []string) string { return vals[rng.Intn(len(vals))] }

	// Customer.
	switch rng.Intn(6) {
	case 0:
		q.DimFilters = append(q.DimFilters, strFilter(DimCustomer, "region", compress.OpEq, pick(Regions), "", nil))
	case 1:
		q.DimFilters = append(q.DimFilters, strFilter(DimCustomer, "nation", compress.OpEq, pick(Nations), "", nil))
	case 2:
		n := pick(Nations)
		q.DimFilters = append(q.DimFilters, strFilter(DimCustomer, "city", compress.OpIn, "", "",
			[]string{CityOf(n, rng.Intn(10)), CityOf(n, rng.Intn(10)), CityOf(pick(Nations), rng.Intn(10))}))
	case 3:
		q.DimFilters = append(q.DimFilters,
			strFilter(DimCustomer, "region", compress.OpEq, pick(Regions), "", nil),
			strFilter(DimCustomer, "mktsegment", compress.OpNe, pick([]string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}), "", nil))
	}

	// Supplier.
	switch rng.Intn(5) {
	case 0:
		q.DimFilters = append(q.DimFilters, strFilter(DimSupplier, "region", compress.OpEq, pick(Regions), "", nil))
	case 1:
		q.DimFilters = append(q.DimFilters, strFilter(DimSupplier, "nation", compress.OpBetween,
			pick(Nations), pick(Nations), nil))
	case 2:
		n := pick(Nations)
		q.DimFilters = append(q.DimFilters, strFilter(DimSupplier, "city", compress.OpIn, "", "",
			[]string{CityOf(n, rng.Intn(10)), CityOf(n, rng.Intn(10))}))
	}

	// Part.
	switch rng.Intn(6) {
	case 0:
		q.DimFilters = append(q.DimFilters, strFilter(DimPart, "mfgr", compress.OpEq, MfgrOf(rng.Intn(5)+1), "", nil))
	case 1:
		q.DimFilters = append(q.DimFilters, strFilter(DimPart, "category", compress.OpEq,
			CategoryOf(rng.Intn(5)+1, rng.Intn(5)+1), "", nil))
	case 2:
		m, c, b := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(30)+1
		q.DimFilters = append(q.DimFilters, strFilter(DimPart, "brand1", compress.OpBetween,
			Brand1Of(m, c, b), Brand1Of(m, c, b+rng.Intn(8)), nil))
	case 3:
		q.DimFilters = append(q.DimFilters, intFilter(DimPart, "size", compress.OpBetween,
			int32(1+rng.Intn(40)), int32(10+rng.Intn(41)), nil))
	case 4:
		q.DimFilters = append(q.DimFilters,
			strFilter(DimPart, "mfgr", compress.OpEq, MfgrOf(rng.Intn(5)+1), "", nil),
			strFilter(DimPart, "container", compress.OpIn, "", "",
				[]string{"JUMBO BAG", "LG BOX", "MED CASE"}[:1+rng.Intn(3)]))
	}

	// Date.
	switch rng.Intn(7) {
	case 0:
		q.DimFilters = append(q.DimFilters, intFilter(DimDate, "year", compress.OpEq, int32(1992+rng.Intn(7)), 0, nil))
	case 1:
		y := int32(1992 + rng.Intn(5))
		q.DimFilters = append(q.DimFilters, intFilter(DimDate, "year", compress.OpBetween, y, y+int32(rng.Intn(4)), nil))
	case 2:
		q.DimFilters = append(q.DimFilters, intFilter(DimDate, "yearmonthnum", compress.OpEq,
			int32((1992+rng.Intn(7))*100+1+rng.Intn(12)), 0, nil))
	case 3:
		q.DimFilters = append(q.DimFilters, intFilter(DimDate, "year", compress.OpIn, 0, 0,
			[]int32{int32(1992 + rng.Intn(7)), int32(1992 + rng.Intn(7))}))
	case 4:
		q.DimFilters = append(q.DimFilters,
			intFilter(DimDate, "year", compress.OpEq, int32(1992+rng.Intn(7)), 0, nil),
			intFilter(DimDate, "weeknuminyear", compress.OpBetween, int32(1+rng.Intn(20)), int32(21+rng.Intn(32)), nil))
	case 5:
		q.DimFilters = append(q.DimFilters, strFilter(DimDate, "sellingseason", compress.OpEq,
			pick([]string{"Winter", "Spring", "Summer", "Fall", "Christmas"}), "", nil))
	}
}

// randGroupBy samples 0–3 distinct group columns.
func randGroupBy(rng *rand.Rand, q *Query) {
	menu := []GroupCol{
		{Dim: DimDate, Col: "year"},
		{Dim: DimDate, Col: "month"},
		{Dim: DimDate, Col: "sellingseason"},
		{Dim: DimCustomer, Col: "region"},
		{Dim: DimCustomer, Col: "nation"},
		{Dim: DimCustomer, Col: "city"},
		{Dim: DimCustomer, Col: "mktsegment"},
		{Dim: DimSupplier, Col: "region"},
		{Dim: DimSupplier, Col: "nation"},
		{Dim: DimSupplier, Col: "city"},
		{Dim: DimPart, Col: "mfgr"},
		{Dim: DimPart, Col: "category"},
		{Dim: DimPart, Col: "brand1"},
		{Dim: DimPart, Col: "container"},
	}
	rng.Shuffle(len(menu), func(i, j int) { menu[i], menu[j] = menu[j], menu[i] })
	q.GroupBy = append(q.GroupBy, menu[:rng.Intn(4)]...)
}
