package ssb

import (
	"fmt"
	"sort"
	"strings"
)

// ResultRow is one output row: the group-by key values (rendered as
// strings, integers in decimal) and the aggregate.
type ResultRow struct {
	Keys []string
	Agg  int64
}

// Result is a canonicalized query result: rows sorted by group keys so that
// results from different engines compare with simple equality.
type Result struct {
	QueryID string
	Rows    []ResultRow
}

// NewResult sorts rows into canonical order and returns a Result.
func NewResult(queryID string, rows []ResultRow) *Result {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Keys, rows[j].Keys
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return &Result{QueryID: queryID, Rows: rows}
}

// Equal reports whether two results have identical rows.
func (r *Result) Equal(o *Result) bool {
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		a, b := r.Rows[i], o.Rows[i]
		if a.Agg != b.Agg || len(a.Keys) != len(b.Keys) {
			return false
		}
		for k := range a.Keys {
			if a.Keys[k] != b.Keys[k] {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between two results, for test failure messages.
func (r *Result) Diff(o *Result) string {
	var b strings.Builder
	if len(r.Rows) != len(o.Rows) {
		fmt.Fprintf(&b, "row counts differ: %d vs %d\n", len(r.Rows), len(o.Rows))
	}
	n := len(r.Rows)
	if len(o.Rows) < n {
		n = len(o.Rows)
	}
	diffs := 0
	for i := 0; i < n && diffs < 5; i++ {
		a, c := r.Rows[i], o.Rows[i]
		if a.Agg != c.Agg || strings.Join(a.Keys, "|") != strings.Join(c.Keys, "|") {
			fmt.Fprintf(&b, "row %d: %v=%d vs %v=%d\n", i, a.Keys, a.Agg, c.Keys, c.Agg)
			diffs++
		}
	}
	return b.String()
}

// TotalAgg sums the aggregate over all rows (a cheap checksum).
func (r *Result) TotalAgg() int64 {
	var t int64
	for _, row := range r.Rows {
		t += row.Agg
	}
	return t
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q%s (%d rows)\n", r.QueryID, len(r.Rows))
	for i, row := range r.Rows {
		if i >= 20 {
			fmt.Fprintf(&b, "  ... %d more rows\n", len(r.Rows)-20)
			break
		}
		fmt.Fprintf(&b, "  %-40s %15d\n", strings.Join(row.Keys, " | "), row.Agg)
	}
	return b.String()
}
