package ssb

import (
	"fmt"
	"sort"
	"strings"
)

// ResultRow is one output row: the group-by key values (rendered as
// strings, integers in decimal) and the aggregate(s).
type ResultRow struct {
	Keys []string
	// Agg is the first (for the thirteen SSBM queries: only) aggregate.
	Agg int64
	// Aggs holds the full aggregate list for multi-aggregate queries
	// (Aggs[0] == Agg); nil for single-aggregate rows. Engines build rows
	// through MakeRow so the representation is canonical.
	Aggs []int64
}

// AggValues returns all aggregate values of the row.
func (r ResultRow) AggValues() []int64 {
	if r.Aggs != nil {
		return r.Aggs
	}
	return []int64{r.Agg}
}

// Result is a canonicalized query result: rows sorted by group keys so that
// results from different engines compare with simple equality.
type Result struct {
	QueryID string
	Rows    []ResultRow
}

// NewResult sorts rows into canonical order and returns a Result.
func NewResult(queryID string, rows []ResultRow) *Result {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Keys, rows[j].Keys
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return &Result{QueryID: queryID, Rows: rows}
}

// Equal reports whether two results have identical rows.
func (r *Result) Equal(o *Result) bool {
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		a, b := r.Rows[i], o.Rows[i]
		if a.Agg != b.Agg || len(a.Keys) != len(b.Keys) {
			return false
		}
		for k := range a.Keys {
			if a.Keys[k] != b.Keys[k] {
				return false
			}
		}
		av, bv := a.AggValues(), b.AggValues()
		if len(av) != len(bv) {
			return false
		}
		for k := range av {
			if av[k] != bv[k] {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between two results, for test failure messages.
func (r *Result) Diff(o *Result) string {
	var b strings.Builder
	if len(r.Rows) != len(o.Rows) {
		fmt.Fprintf(&b, "row counts differ: %d vs %d\n", len(r.Rows), len(o.Rows))
	}
	n := len(r.Rows)
	if len(o.Rows) < n {
		n = len(o.Rows)
	}
	diffs := 0
	for i := 0; i < n && diffs < 5; i++ {
		a, c := r.Rows[i], o.Rows[i]
		if fmt.Sprint(a.AggValues()) != fmt.Sprint(c.AggValues()) || strings.Join(a.Keys, "|") != strings.Join(c.Keys, "|") {
			fmt.Fprintf(&b, "row %d: %v=%v vs %v=%v\n", i, a.Keys, a.AggValues(), c.Keys, c.AggValues())
			diffs++
		}
	}
	return b.String()
}

// TotalAgg sums the aggregate over all rows (a cheap checksum).
func (r *Result) TotalAgg() int64 {
	var t int64
	for _, row := range r.Rows {
		t += row.Agg
	}
	return t
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q%s (%d rows)\n", r.QueryID, len(r.Rows))
	for i, row := range r.Rows {
		if i >= 20 {
			fmt.Fprintf(&b, "  ... %d more rows\n", len(r.Rows)-20)
			break
		}
		vals := row.AggValues()
		rendered := make([]string, len(vals))
		for k, v := range vals {
			rendered[k] = fmt.Sprintf("%15d", v)
		}
		fmt.Fprintf(&b, "  %-40s %s\n", strings.Join(row.Keys, " | "), strings.Join(rendered, " "))
	}
	return b.String()
}
