package rowexec

import (
	"encoding/binary"
	"sort"

	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// This file implements the experiment the paper's conclusion asks for: "A
// successful column-oriented simulation will require some important system
// improvements, such as virtual record-ids, reduced tuple overhead, fast
// merge joins of sorted data" — the "super tuple" idea of Halverson et al.
// that the paper endorses ("the type of higher-level optimization that this
// paper concludes will be needed to be added to row-stores").
//
// A super-tuple vertical partition stores one fact column as heap tuples of
// superBatch packed values each: the 8-byte tuple header amortizes to
// ~0.002 bytes/value and there is no explicit position column (record-ids
// are virtual: position = batch ordinal * superBatch + offset). Because all
// column tables share the same implicit order, tuple reconstruction is a
// positional merge (a zip), not a hash join.

// superBatch is the number of column values packed into one super tuple,
// sized so one tuple (payload + header + length prefix) fills a 32 KB heap
// page with minimal slack.
const superBatch = (rowstore.PageSize - 16) / 4

// SuperVP is one fact column stored as super tuples.
type SuperVP struct {
	Col   string
	table *rowstore.Table
	n     int
}

// BuildSuperVP packs vals into a super-tuple heap table.
func BuildSuperVP(col string, vals []int32) *SuperVP {
	schema := rowstore.NewSchema([]string{"payload"}, []rowstore.ColType{rowstore.TStr})
	t := rowstore.NewTable("super."+col, schema)
	buf := make([]byte, 0, superBatch*4)
	for off := 0; off < len(vals); off += superBatch {
		end := off + superBatch
		if end > len(vals) {
			end = len(vals)
		}
		buf = buf[:0]
		for _, v := range vals[off:end] {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v))
			buf = append(buf, b[:]...)
		}
		t.Append(rowstore.Row{{S: string(buf)}})
	}
	return &SuperVP{Col: col, table: t, n: len(vals)}
}

// HeapBytes is the on-disk footprint.
func (s *SuperVP) HeapBytes() int64 { return s.table.HeapBytes() }

// superIter is a pull cursor over a super-tuple column: each next() yields
// one decoded batch of values in position order.
type superIter struct {
	it  *rowstore.Iter
	buf []int32
}

// iter opens a cursor, charging heap pages as batches are read.
func (s *SuperVP) iter(st *iosim.Stats) *superIter {
	return &superIter{it: s.table.Iter(st), buf: make([]int32, superBatch)}
}

// next returns the next batch; the slice is reused between calls.
func (it *superIter) next() ([]int32, bool) {
	_, row, ok := it.it.Next()
	if !ok {
		return nil, false
	}
	payload := row[0].S
	n := len(payload) / 4
	for i := 0; i < n; i++ {
		it.buf[i] = int32(binary.LittleEndian.Uint32([]byte(payload[4*i : 4*i+4])))
	}
	return it.buf[:n], true
}

// BuildSuperVPs materializes super-tuple tables for every fact column the
// workload touches (mirrors the VP design's column set).
func BuildSuperVPs(d *ssb.Data) map[string]*SuperVP {
	out := map[string]*SuperVP{}
	for _, c := range queryFactCols {
		out[c] = BuildSuperVP(c, factIntColumn(&d.Line, c))
	}
	return out
}

// RunSuperVP executes q over super-tuple vertical partitions: the needed
// columns are zip-scanned in lockstep (positional merge join — no hash
// tables, no explicit record-ids), predicates apply during the merge, and
// group attributes resolve through dimension maps as in the other row-store
// plans.
func (sx *SystemX) RunSuperVP(q *ssb.Query, super map[string]*SuperVP, st *iosim.Stats) *ssb.Result {
	cols := q.NeededFactColumns()

	// Dimension structures, keyed by FK value.
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	for _, f := range q.DimFilters {
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	type restrict struct {
		col  int
		keys map[int32]struct{}
	}
	colPos := map[string]int{}
	for i, c := range cols {
		colPos[c] = i
	}
	var restricts []restrict
	for _, dim := range q.DimsUsed() {
		if fs := byDim[dim]; len(fs) > 0 {
			restricts = append(restricts, restrict{
				col:  colPos[dim.FactFK()],
				keys: sx.dimKeySet(dim, fs, st),
			})
		}
	}
	sort.Slice(restricts, func(i, j int) bool { return len(restricts[i].keys) < len(restricts[j].keys) })

	type fp struct {
		col  int
		pred func(int32) bool
	}
	var fps []fp
	for _, f := range q.FactFilters {
		fps = append(fps, fp{col: colPos[f.Col], pred: f.Pred.Match})
	}

	attrMaps := make([]map[int32]string, len(q.GroupBy))
	attrCol := make([]int, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		attrMaps[gi] = sx.dimAttrMap(g.Dim, g.Col, st)
		attrCol[gi] = colPos[g.Dim.FactFK()]
	}
	agg := newAggEval(q.AggSpecs(), func(c string) int { return colPos[c] })

	// Zip-scan: pull one batch from every column cursor in lockstep (the
	// positional merge join of the paper's conclusion — virtual
	// record-ids mean batch k of every column covers the same rows).
	iters := make([]*superIter, len(cols))
	for i, c := range cols {
		sv, ok := super[c]
		if !ok {
			panic("rowexec: no super-tuple table for " + c)
		}
		iters[i] = sv.iter(st)
	}
	batches := make([][]int32, len(cols))

	out := newAggregator(q.ID, len(q.GroupBy) > 0, agg.specs)
	keys := make([]string, len(q.GroupBy))
	for {
		n := -1
		for i, it := range iters {
			b, ok := it.next()
			if !ok {
				b = nil
			}
			batches[i] = b
			if b != nil && (n < 0 || len(b) < n) {
				n = len(b)
			}
		}
		if n < 0 {
			break
		}
	rowLoop:
		for r := 0; r < n; r++ {
			for _, p := range fps {
				if !p.pred(batches[p.col][r]) {
					continue rowLoop
				}
			}
			for _, rs := range restricts {
				if _, ok := rs.keys[batches[rs.col][r]]; !ok {
					continue rowLoop
				}
			}
			for gi := range q.GroupBy {
				keys[gi] = attrMaps[gi][batches[attrCol[gi]][r]]
			}
			out.add(keys, agg.evalFunc(func(i int) int32 { return batches[i][r] }))
		}
	}
	return out.result()
}
