// Package rowexec implements "System X", the commercial row-oriented DBMS
// of the paper, as a Volcano-style executor over rowstore heap tables. It
// provides the five physical designs of Section 4 / Figure 6:
//
//	Traditional        one heap table per relation, partitioned on
//	                   orderdate year, hash joins ordered by selectivity
//	TraditionalBitmap  traditional biased to bitmap plans: predicate
//	                   bitmaps built from indexes, page-skipping heap fetch
//	MaterializedViews  per-flight minimal-projection MVs (no pre-joins)
//	VerticalPartition  one (position, value) two-column table per fact
//	                   column, stitched back together with hash joins
//	AllIndexes         index-only plans: full index scans joined on
//	                   record-id, never touching the heap
package rowexec

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// Design selects a physical design for query execution.
type Design uint8

const (
	// Traditional is the paper's "T".
	Traditional Design = iota
	// TraditionalBitmap is "T(B)".
	TraditionalBitmap
	// MaterializedViews is "MV".
	MaterializedViews
	// VerticalPartitioning is "VP".
	VerticalPartitioning
	// AllIndexes is "AI".
	AllIndexes
)

// String returns the paper's abbreviation.
func (d Design) String() string {
	switch d {
	case Traditional:
		return "T"
	case TraditionalBitmap:
		return "T(B)"
	case MaterializedViews:
		return "MV"
	case VerticalPartitioning:
		return "VP"
	default:
		return "AI"
	}
}

// Designs lists all five designs in Figure 6 order.
func Designs() []Design {
	return []Design{Traditional, TraditionalBitmap, MaterializedViews, VerticalPartitioning, AllIndexes}
}

// factColOrder is the storage order of the LINEORDER row schema (paper
// Figure 1).
var factColOrder = []string{
	"orderkey", "linenumber", "custkey", "partkey", "suppkey", "orderdate",
	"ordpriority", "shippriority", "quantity", "extendedprice",
	"ordtotalprice", "discount", "revenue", "supplycost", "tax",
	"commitdate", "shipmode",
}

// queryFactCols is the set of integer fact columns any SSBM query touches;
// these get B+Tree indexes in the AllIndexes design and vertical tables in
// the VerticalPartitioning design.
var queryFactCols = []string{
	"custkey", "partkey", "suppkey", "orderdate",
	"quantity", "extendedprice", "discount", "revenue", "supplycost",
}

// SystemX is the row-store database with every physical design materialized
// side by side.
type SystemX struct {
	// Fact is the base LINEORDER heap, stored in orderdate order so that
	// orderdate-year partitions are contiguous rid ranges.
	Fact *rowstore.Table
	// YearRange maps orderdate year -> [startRid, endRid) within Fact;
	// partition pruning scans only qualifying ranges.
	YearRange map[int32][2]int32
	// Dims holds the four dimension heap tables.
	Dims map[ssb.Dim]*rowstore.Table
	// MVs holds the per-flight materialized views (minimal projections
	// of Fact, same row order, hence same partitioning).
	MVs map[int]*rowstore.Table
	// VP holds the vertical two-column tables, one per fact column used
	// by the workload.
	VP map[string]*rowstore.VerticalTable
	// FactIdx holds unclustered B+Trees over fact columns (AllIndexes
	// and the bitmap design's join-index probes).
	FactIdx map[string]*btree.Tree[int32]
	// DiscountBM and QuantityBM are bitmap indexes over the two fact
	// measure columns flight 1 restricts.
	DiscountBM *rowstore.BitmapIndex
	QuantityBM *rowstore.BitmapIndex

	// WorkMemBytes is the memory available to joins before they spill
	// (the paper's System X configuration: "a 1.5 GB maximum memory for
	// sorts, joins, intermediate results"). Hash builds larger than this
	// are charged a GRACE-style partition spill: the build side is
	// written out and read back once.
	WorkMemBytes int64

	// Lazily built dimension attribute indexes for index-only plans.
	dimIntIdx map[ssb.Dim]map[string]*rowstore.IntIndex
	dimStrIdx map[ssb.Dim]map[string]*rowstore.StrIndex

	data *ssb.Data
}

// BuildOptions selects which (memory-hungry) auxiliary designs to
// materialize.
type BuildOptions struct {
	MVs     bool
	VP      bool
	Indexes bool
	Bitmaps bool
}

// AllDesigns enables everything Figure 6 needs.
var AllDesigns = BuildOptions{MVs: true, VP: true, Indexes: true, Bitmaps: true}

// Build loads generated SSBM data into the row store.
func Build(d *ssb.Data, opts BuildOptions) *SystemX {
	sx := &SystemX{
		WorkMemBytes: 1536 << 20,
		YearRange:    map[int32][2]int32{},
		Dims:         map[ssb.Dim]*rowstore.Table{},
		MVs:          map[int]*rowstore.Table{},
		VP:           map[string]*rowstore.VerticalTable{},
		FactIdx:      map[string]*btree.Tree[int32]{},
		data:         d,
	}

	// Fact heap (input is orderdate-sorted, so years are contiguous).
	factSchema := rowstore.NewSchema(factColOrder, []rowstore.ColType{
		rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt,
		rowstore.TStr, rowstore.TInt, rowstore.TInt, rowstore.TInt,
		rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt,
		rowstore.TInt, rowstore.TStr,
	})
	sx.Fact = rowstore.NewTable("lineorder", factSchema)
	lo := &d.Line
	n := d.NumLineorders()
	var curYear int32 = -1
	for i := 0; i < n; i++ {
		year := lo.OrderDate[i] / 10000
		if year != curYear {
			if curYear >= 0 {
				r := sx.YearRange[curYear]
				r[1] = int32(i)
				sx.YearRange[curYear] = r
			}
			sx.YearRange[year] = [2]int32{int32(i), int32(n)}
			curYear = year
		}
		sx.Fact.Append(rowstore.Row{
			{I: lo.OrderKey[i]}, {I: lo.LineNumber[i]}, {I: lo.CustKey[i]},
			{I: lo.PartKey[i]}, {I: lo.SuppKey[i]}, {I: lo.OrderDate[i]},
			{S: lo.OrdPriority[i]}, {I: lo.ShipPriority[i]}, {I: lo.Quantity[i]},
			{I: lo.ExtendedPrice[i]}, {I: lo.OrdTotalPrice[i]}, {I: lo.Discount[i]},
			{I: lo.Revenue[i]}, {I: lo.SupplyCost[i]}, {I: lo.Tax[i]},
			{I: lo.CommitDate[i]}, {S: lo.ShipMode[i]},
		})
	}
	if curYear >= 0 {
		r := sx.YearRange[curYear]
		r[1] = int32(n)
		sx.YearRange[curYear] = r
	}

	sx.buildDims(d)

	if opts.MVs {
		for flight := 1; flight <= 4; flight++ {
			cols := ssb.FlightMVColumns(flight)
			sx.MVs[flight] = rowstore.BuildMV(sx.Fact, fmt.Sprintf("mv_flight%d", flight), cols)
		}
	}
	if opts.VP {
		full := rowstore.BuildVertical(sx.Fact)
		for _, c := range queryFactCols {
			sx.VP[c] = full[c]
		}
	}
	if opts.Indexes {
		for _, c := range queryFactCols {
			sx.FactIdx[c] = buildArrayIndex(factIntColumn(lo, c))
		}
	}
	if opts.Bitmaps {
		sx.DiscountBM = rowstore.BuildBitmapIndex(sx.Fact, "discount")
		sx.QuantityBM = rowstore.BuildBitmapIndex(sx.Fact, "quantity")
	}
	return sx
}

// buildDims loads the four dimension heap tables.
func (sx *SystemX) buildDims(d *ssb.Data) {
	add := func(dim ssb.Dim, names []string, types []rowstore.ColType, row func(i int) rowstore.Row, n int) {
		t := rowstore.NewTable(dim.String(), rowstore.NewSchema(names, types))
		for i := 0; i < n; i++ {
			t.Append(row(i))
		}
		sx.Dims[dim] = t
	}
	c := &d.Customer
	add(ssb.DimCustomer,
		[]string{"custkey", "name", "address", "city", "nation", "region", "phone", "mktsegment"},
		[]rowstore.ColType{rowstore.TInt, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr},
		func(i int) rowstore.Row {
			return rowstore.Row{{I: c.Key[i]}, {S: c.Name[i]}, {S: c.Address[i]}, {S: c.City[i]}, {S: c.Nation[i]}, {S: c.Region[i]}, {S: c.Phone[i]}, {S: c.MktSegment[i]}}
		}, len(c.Key))
	s := &d.Supplier
	add(ssb.DimSupplier,
		[]string{"suppkey", "name", "address", "city", "nation", "region", "phone"},
		[]rowstore.ColType{rowstore.TInt, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr},
		func(i int) rowstore.Row {
			return rowstore.Row{{I: s.Key[i]}, {S: s.Name[i]}, {S: s.Address[i]}, {S: s.City[i]}, {S: s.Nation[i]}, {S: s.Region[i]}, {S: s.Phone[i]}}
		}, len(s.Key))
	p := &d.Part
	add(ssb.DimPart,
		[]string{"partkey", "name", "mfgr", "category", "brand1", "color", "type", "size", "container"},
		[]rowstore.ColType{rowstore.TInt, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TInt, rowstore.TStr},
		func(i int) rowstore.Row {
			return rowstore.Row{{I: p.Key[i]}, {S: p.Name[i]}, {S: p.MFGR[i]}, {S: p.Category[i]}, {S: p.Brand1[i]}, {S: p.Color[i]}, {S: p.Type[i]}, {I: p.Size[i]}, {S: p.Container[i]}}
		}, len(p.Key))
	dd := &d.Date
	add(ssb.DimDate,
		[]string{"datekey", "date", "dayofweek", "month", "year", "yearmonthnum", "yearmonth", "daynuminweek", "daynuminmonth", "daynuminyear", "monthnuminyear", "weeknuminyear", "sellingseason"},
		[]rowstore.ColType{rowstore.TInt, rowstore.TStr, rowstore.TStr, rowstore.TStr, rowstore.TInt, rowstore.TInt, rowstore.TStr, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TInt, rowstore.TStr},
		func(i int) rowstore.Row {
			return rowstore.Row{{I: dd.Key[i]}, {S: dd.Date[i]}, {S: dd.DayOfWeek[i]}, {S: dd.Month[i]}, {I: dd.Year[i]}, {I: dd.YearMonthNum[i]}, {S: dd.YearMonth[i]}, {I: dd.DayNumInWeek[i]}, {I: dd.DayNumInMonth[i]}, {I: dd.DayNumInYear[i]}, {I: dd.MonthNumInYr[i]}, {I: dd.WeekNumInYear[i]}, {S: dd.SellingSeason[i]}}
		}, len(dd.Key))
}

// factIntColumn returns the named integer fact column from the generated
// arrays (used for index construction: index-only plans never touch the
// heap, so indexes are built straight from the column values with rid = row
// ordinal).
func factIntColumn(lo *ssb.Lineorders, name string) []int32 {
	switch name {
	case "custkey":
		return lo.CustKey
	case "partkey":
		return lo.PartKey
	case "suppkey":
		return lo.SuppKey
	case "orderdate":
		return lo.OrderDate
	case "quantity":
		return lo.Quantity
	case "extendedprice":
		return lo.ExtendedPrice
	case "discount":
		return lo.Discount
	case "revenue":
		return lo.Revenue
	case "supplycost":
		return lo.SupplyCost
	default:
		panic("rowexec: unknown fact column " + name)
	}
}

// buildArrayIndex bulk-loads a B+Tree over (value, rid) pairs.
func buildArrayIndex(vals []int32) *btree.Tree[int32] {
	entries := make([]btree.Entry[int32], len(vals))
	for i, v := range vals {
		entries[i] = btree.Entry[int32]{Key: v, RID: int32(i)}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].RID < entries[j].RID
	})
	return btree.Build(entries, 4)
}

// chargeHashSpill charges the I/O of spilling a hash-join build side that
// exceeds work memory: the build is partitioned to disk and read back once.
func (sx *SystemX) chargeHashSpill(buildBytes int64, st *iosim.Stats) {
	if buildBytes > sx.WorkMemBytes {
		st.Write(buildBytes)
		st.Read(buildBytes)
	}
}

// hashEntryBytes estimates the in-memory footprint of one rid-keyed hash
// entry holding k int32 values (Go map overhead included).
func hashEntryBytes(k int) int64 { return int64(4*k) + 48 }

// dimKeySet scans a dimension heap table, applies the query's filters on
// that dimension, and returns the set of qualifying primary keys (join
// phase 1, row-store style).
func (sx *SystemX) dimKeySet(dim ssb.Dim, filters []ssb.DimFilter, st *iosim.Stats) map[int32]struct{} {
	t := sx.Dims[dim]
	keyIdx := t.Schema.MustColIndex(dim.KeyCol())
	type colFilter struct {
		idx   int
		f     ssb.DimFilter
		isInt bool
	}
	var cfs []colFilter
	for _, f := range filters {
		cfs = append(cfs, colFilter{idx: t.Schema.MustColIndex(f.Col), f: f, isInt: f.IsInt})
	}
	set := map[int32]struct{}{}
	t.Scan(st, func(_ int32, row rowstore.Row) bool {
		for _, cf := range cfs {
			if cf.isInt {
				if !cf.f.IntPred().Match(row[cf.idx].I) {
					return true
				}
			} else if !cf.f.MatchStr(row[cf.idx].S) {
				return true
			}
		}
		set[row[keyIdx].I] = struct{}{}
		return true
	})
	return set
}

// dimAttrMap scans a dimension and returns primary key -> rendered group
// attribute (the build side of the group-by join).
func (sx *SystemX) dimAttrMap(dim ssb.Dim, col string, st *iosim.Stats) map[int32]string {
	t := sx.Dims[dim]
	keyIdx := t.Schema.MustColIndex(dim.KeyCol())
	attrIdx := t.Schema.MustColIndex(col)
	isInt := t.Schema.Types[attrIdx] == rowstore.TInt
	m := make(map[int32]string, t.NumRows())
	t.Scan(st, func(_ int32, row rowstore.Row) bool {
		if isInt {
			m[row[keyIdx].I] = fmt.Sprintf("%d", row[attrIdx].I)
		} else {
			m[row[keyIdx].I] = row[attrIdx].S
		}
		return true
	})
	return m
}

// pruneYears returns the fact rid ranges to scan given the query's date
// filters: partition pruning on orderdate year. When prune is false (the
// paper's "without partitioning" ablation) or the query has no date filter,
// the whole table is one range.
func (sx *SystemX) pruneYears(q *ssb.Query, prune bool, st *iosim.Stats) [][2]int32 {
	if !prune {
		return [][2]int32{{0, int32(sx.Fact.NumRows())}}
	}
	var dateFilters []ssb.DimFilter
	for _, f := range q.DimFilters {
		if f.Dim == ssb.DimDate {
			dateFilters = append(dateFilters, f)
		}
	}
	if len(dateFilters) == 0 {
		return [][2]int32{{0, int32(sx.Fact.NumRows())}}
	}
	// Qualifying years = years of qualifying date-dimension rows.
	keys := sx.dimKeySet(ssb.DimDate, dateFilters, st)
	years := map[int32]struct{}{}
	for k := range keys {
		years[k/10000] = struct{}{}
	}
	var sortedYears []int32
	for y := range years {
		sortedYears = append(sortedYears, y)
	}
	sort.Slice(sortedYears, func(i, j int) bool { return sortedYears[i] < sortedYears[j] })
	var out [][2]int32
	for _, y := range sortedYears {
		if r, ok := sx.YearRange[y]; ok {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return [][2]int32{{0, 0}}
	}
	return out
}
