package rowexec

import (
	"repro/internal/btree"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// runIndexOnlyPlan is the "all indexes" design: every column is reached
// through an unclustered B+Tree and base tuples are never fetched. As the
// paper's Section 6.2.1 plan for Q2.1 describes, System X first joins the
// needed fact-table columns together on record-id with hash joins ("the
// system is forced to join columns of the fact table together using
// expensive hash joins before filtering the fact table using dimension
// columns" — it cannot defer them), then hash-joins the dimension columns
// obtained from index range scans.
func (sx *SystemX) runIndexOnlyPlan(q *ssb.Query, st *iosim.Stats) *ssb.Result {
	if len(sx.FactIdx) == 0 {
		panic("rowexec: AllIndexes design requires the Indexes build option")
	}
	cols := q.NeededFactColumns()
	colPos := map[string]int{}
	for i, c := range cols {
		colPos[c] = i
	}

	// Step 1: full index scans of every needed fact column, hash-joined
	// on record-id. The first scan seeds a rid-keyed hash table with one
	// entry per fact row — the "giant hash joins" the paper blames for
	// AI's poor performance.
	tuples := make(map[int32][]int32, sx.Fact.NumRows())
	// Each per-column rid join re-materializes the accumulating hash
	// table; once it outgrows work memory every join spills (the paper's
	// "giant hash joins [that] lead to extremely slow performance").
	buildBytes := int64(sx.Fact.NumRows()) * hashEntryBytes(len(cols))
	for ci, col := range cols {
		idx := sx.FactIdx[col]
		st.Read(idx.SizeBytes())
		sx.chargeHashSpill(buildBytes, st)
		if ci == 0 {
			idx.Scan(func(e btree.Entry[int32]) bool {
				vals := make([]int32, len(cols))
				vals[0] = e.Key
				tuples[e.RID] = vals
				return true
			})
			continue
		}
		idx.Scan(func(e btree.Entry[int32]) bool {
			if vals, ok := tuples[e.RID]; ok {
				vals[ci] = e.Key
			}
			return true
		})
	}

	// Step 2: dimension restrictions through index range scans on the
	// dimension attribute indexes; the composite-key payload (Aux) is the
	// dimension primary key, so the base dimension tuples are never
	// fetched either.
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	for _, f := range q.DimFilters {
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	type dimRestrict struct {
		fkPos int
		keys  map[int32]struct{}
	}
	var restricts []dimRestrict
	for _, dim := range q.DimsUsed() {
		fs := byDim[dim]
		if len(fs) == 0 {
			continue
		}
		var keys map[int32]struct{}
		for _, f := range fs {
			ks := sx.dimIndexKeys(dim, f, st)
			if keys == nil {
				keys = ks
				continue
			}
			// Merge rid-lists in memory (paper Section 4).
			for k := range keys {
				if _, ok := ks[k]; !ok {
					delete(keys, k)
				}
			}
		}
		restricts = append(restricts, dimRestrict{fkPos: colPos[dim.FactFK()], keys: keys})
	}

	// Fact measure predicates evaluate on the joined tuples.
	type fp struct {
		pos  int
		pred func(int32) bool
	}
	var fps []fp
	for _, f := range q.FactFilters {
		fps = append(fps, fp{pos: colPos[f.Col], pred: f.Pred.Match})
	}

	// Group attribute maps, also built from index scans (key payload ->
	// attribute value).
	attrMaps := make([]map[int32]string, len(q.GroupBy))
	attrPos := make([]int, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		attrMaps[gi] = sx.dimIndexAttrMap(g.Dim, g.Col, st)
		attrPos[gi] = colPos[g.Dim.FactFK()]
	}
	agg := newAggEval(q.AggSpecs(), func(c string) int { return colPos[c] })

	out := newAggregator(q.ID, len(q.GroupBy) > 0, agg.specs)
	keys := make([]string, len(q.GroupBy))
tupleLoop:
	for _, vals := range tuples {
		for _, p := range fps {
			if !p.pred(vals[p.pos]) {
				continue tupleLoop
			}
		}
		for _, r := range restricts {
			if _, ok := r.keys[vals[r.fkPos]]; !ok {
				continue tupleLoop
			}
		}
		for gi := range q.GroupBy {
			keys[gi] = attrMaps[gi][vals[attrPos[gi]]]
		}
		out.add(keys, agg.evalVals(vals))
	}
	return out.result()
}

// dimIndexKeys evaluates one dimension filter through an index range scan
// over the attribute index, returning qualifying primary keys from the
// index's Aux payload. Dimension indexes are built lazily and cached.
func (sx *SystemX) dimIndexKeys(dim ssb.Dim, f ssb.DimFilter, st *iosim.Stats) map[int32]struct{} {
	keys := map[int32]struct{}{}
	if f.IsInt {
		ix := sx.dimIntIndex(dim, f.Col)
		pred := f.IntPred()
		lo, hi, exact := pred.Bounds()
		if !exact {
			// Non-interval predicate: scan the bounds superset and
			// re-check.
			visited := int64(0)
			ix.Tree.Range(lo, hi, func(e btree.Entry[int32]) bool {
				visited++
				if pred.Match(e.Key) {
					keys[e.Aux] = struct{}{}
				}
				return true
			})
			st.AddSeeks(1)
			st.Read(visited * ix.Tree.EntryBytes())
			return keys
		}
		ix.Range(lo, hi, st, func(_, _, aux int32) bool {
			keys[aux] = struct{}{}
			return true
		})
		return keys
	}
	ix := sx.dimStrIndex(dim, f.Col)
	switch {
	case f.Op == compress.OpEq:
		ix.Range(f.StrA, f.StrA, st, func(_ string, _, aux int32) bool {
			keys[aux] = struct{}{}
			return true
		})
	case f.Op == compress.OpBetween:
		ix.Range(f.StrA, f.StrB, st, func(_ string, _, aux int32) bool {
			keys[aux] = struct{}{}
			return true
		})
	default:
		// IN and others: one range probe per member, or a full scan
		// with a residual check.
		if len(f.StrSet) > 0 {
			for _, s := range f.StrSet {
				ix.Range(s, s, st, func(_ string, _, aux int32) bool {
					keys[aux] = struct{}{}
					return true
				})
			}
			return keys
		}
		ix.ScanAll(st, func(k string, _, aux int32) bool {
			if f.MatchStr(k) {
				keys[aux] = struct{}{}
			}
			return true
		})
	}
	return keys
}

// dimIndexAttrMap builds primary key -> rendered attribute from a full scan
// of the dimension attribute index.
func (sx *SystemX) dimIndexAttrMap(dim ssb.Dim, col string, st *iosim.Stats) map[int32]string {
	t := sx.Dims[dim]
	ci := t.Schema.MustColIndex(col)
	m := make(map[int32]string, t.NumRows())
	if t.Schema.Types[ci] == rowstore.TInt {
		ix := sx.dimIntIndex(dim, col)
		ix.ScanAll(st, func(key, _, aux int32) bool {
			m[aux] = renderInt(key)
			return true
		})
		return m
	}
	ix := sx.dimStrIndex(dim, col)
	ix.ScanAll(st, func(key string, _, aux int32) bool {
		m[aux] = key
		return true
	})
	return m
}

// Lazy dimension index caches.

func (sx *SystemX) dimIntIndex(dim ssb.Dim, col string) *rowstore.IntIndex {
	if sx.dimIntIdx == nil {
		sx.dimIntIdx = map[ssb.Dim]map[string]*rowstore.IntIndex{}
	}
	if sx.dimIntIdx[dim] == nil {
		sx.dimIntIdx[dim] = map[string]*rowstore.IntIndex{}
	}
	if ix, ok := sx.dimIntIdx[dim][col]; ok {
		return ix
	}
	ix := rowstore.BuildIntIndex(sx.Dims[dim], col, dim.KeyCol())
	sx.dimIntIdx[dim][col] = ix
	return ix
}

func (sx *SystemX) dimStrIndex(dim ssb.Dim, col string) *rowstore.StrIndex {
	if sx.dimStrIdx == nil {
		sx.dimStrIdx = map[ssb.Dim]map[string]*rowstore.StrIndex{}
	}
	if sx.dimStrIdx[dim] == nil {
		sx.dimStrIdx[dim] = map[string]*rowstore.StrIndex{}
	}
	if ix, ok := sx.dimStrIdx[dim][col]; ok {
		return ix
	}
	ix := rowstore.BuildStrIndex(sx.Dims[dim], col, dim.KeyCol())
	sx.dimStrIdx[dim][col] = ix
	return ix
}
