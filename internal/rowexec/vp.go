package rowexec

import (
	"sort"
	"strconv"

	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// runVPPlan is the fully-vertically-partitioned design: each needed fact
// column lives in its own two-column (position, value) heap table, and the
// plan hash-joins them back together on position (paper Section 6.2.1:
// "the vertical partitioning approach hash-joins the partkey column with
// the filtered part table, and the suppkey column with the filtered
// supplier table, and then hash-joins these two result sets...").
//
// The costs the paper highlights are physical here: every value drags a
// 4-byte position and an 8-byte tuple header through the scan, and each
// additional column is another hash join keyed on position.
func (sx *SystemX) runVPPlan(q *ssb.Query, st *iosim.Stats) *ssb.Result {
	if len(sx.VP) == 0 {
		panic("rowexec: VP design not built")
	}

	// Dimension key sets and group-attribute maps (dimension tables are
	// regular row tables; the interesting costs are on the fact side).
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	for _, f := range q.DimFilters {
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	type dimInfo struct {
		dim   ssb.Dim
		keys  map[int32]struct{} // nil when the dimension has no filter
		ratio float64
	}
	infos := map[ssb.Dim]*dimInfo{}
	for _, dim := range q.DimsUsed() {
		info := &dimInfo{dim: dim, ratio: 1}
		if fs := byDim[dim]; len(fs) > 0 {
			info.keys = sx.dimKeySet(dim, fs, st)
			info.ratio = float64(len(info.keys)) / float64(sx.Dims[dim].NumRows())
		}
		infos[dim] = info
	}

	// Fact measure predicates by column (a query may carry several on one
	// column; all must hold).
	factPred := map[string][]func(int32) bool{}
	for _, f := range q.FactFilters {
		factPred[f.Col] = append(factPred[f.Col], f.Pred.Match)
	}
	passAll := func(preds []func(int32) bool, v int32) bool {
		for _, p := range preds {
			if !p(v) {
				return false
			}
		}
		return true
	}

	// Column processing order: filtered columns first, most selective
	// first, so the position hash table starts as small as possible.
	cols := q.NeededFactColumns()
	selOf := func(c string) float64 {
		if _, ok := factPred[c]; ok {
			return 0.5 // measure predicates are moderately selective
		}
		for dim, info := range infos {
			if dim.FactFK() == c && info.keys != nil {
				return info.ratio
			}
		}
		return 1
	}
	sort.SliceStable(cols, func(i, j int) bool { return selOf(cols[i]) < selOf(cols[j]) })

	keySetOf := func(c string) map[int32]struct{} {
		for dim, info := range infos {
			if dim.FactFK() == c {
				return info.keys
			}
		}
		return nil
	}

	// Hash-join the vertical tables on position, column by column.
	// tuples[pos] accumulates the column values in processing order.
	var tuples map[int32][]int32
	for ci, col := range cols {
		vt, ok := sx.VP[col]
		if !ok {
			panic("rowexec: no vertical table for " + col)
		}
		preds := factPred[col]
		keys := keySetOf(col)
		if ci > 0 {
			// Position-keyed hash join against the accumulated
			// tuples; spill when it exceeds work memory.
			sx.chargeHashSpill(int64(len(tuples))*hashEntryBytes(len(cols)), st)
		}
		if ci == 0 {
			tuples = make(map[int32][]int32, 1024)
			vt.Scan(st, func(_ int32, row rowstore.Row) bool {
				v := row[1].I
				if !passAll(preds, v) {
					return true
				}
				if keys != nil {
					if _, hit := keys[v]; !hit {
						return true
					}
				}
				vals := make([]int32, 1, len(cols))
				vals[0] = v
				tuples[row[0].I] = vals
				return true
			})
			continue
		}
		vt.Scan(st, func(_ int32, row rowstore.Row) bool {
			vals, hit := tuples[row[0].I]
			if !hit {
				return true
			}
			v := row[1].I
			if !passAll(preds, v) || (keys != nil && !inSet(keys, v)) {
				delete(tuples, row[0].I)
				return true
			}
			tuples[row[0].I] = append(vals, v)
			return true
		})
	}

	// Group attribute maps.
	attrMaps := make([]map[int32]string, len(q.GroupBy))
	attrCol := make([]int, len(q.GroupBy))
	colPos := map[string]int{}
	for i, c := range cols {
		colPos[c] = i
	}
	for gi, g := range q.GroupBy {
		attrMaps[gi] = sx.dimAttrMap(g.Dim, g.Col, st)
		attrCol[gi] = colPos[g.Dim.FactFK()]
	}
	agg := newAggEval(q.AggSpecs(), func(c string) int { return colPos[c] })

	out := newAggregator(q.ID, len(q.GroupBy) > 0, agg.specs)
	keys := make([]string, len(q.GroupBy))
	for _, vals := range tuples {
		if len(vals) != len(cols) {
			continue // dropped mid-join
		}
		for gi := range q.GroupBy {
			keys[gi] = attrMaps[gi][vals[attrCol[gi]]]
		}
		out.add(keys, agg.evalVals(vals))
	}
	return out.result()
}

func inSet(s map[int32]struct{}, v int32) bool {
	_, ok := s[v]
	return ok
}

// renderInt is strconv.Itoa for int32 (shared by drivers).
func renderInt(v int32) string { return strconv.Itoa(int(v)) }
