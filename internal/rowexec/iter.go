package rowexec

import (
	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// Iterator is the Volcano interface [Graefe 94]: each Next call produces
// one tuple. The per-call interface dispatch and attribute extraction are
// the row-store overheads Section 5.3 of the paper contrasts with block
// iteration.
type Iterator interface {
	Next() (rowstore.Row, bool)
}

// tableScan streams a set of rid ranges from a heap table.
type tableScan struct {
	t      *rowstore.Table
	ranges [][2]int32
	ri     int
	cur    *rowstore.Iter
	st     *iosim.Stats
}

// newTableScan returns a scan over the given rid ranges of t.
func newTableScan(t *rowstore.Table, ranges [][2]int32, st *iosim.Stats) *tableScan {
	return &tableScan{t: t, ranges: ranges, st: st}
}

// Next implements Iterator.
func (s *tableScan) Next() (rowstore.Row, bool) {
	for {
		if s.cur == nil {
			if s.ri >= len(s.ranges) {
				return nil, false
			}
			r := s.ranges[s.ri]
			s.ri++
			s.cur = s.t.RangeIter(r[0], r[1], s.st)
		}
		if _, row, ok := s.cur.Next(); ok {
			return row, true
		}
		s.cur = nil
	}
}

// filter drops rows failing pred.
type filter struct {
	child Iterator
	pred  func(rowstore.Row) bool
}

// Next implements Iterator.
func (f *filter) Next() (rowstore.Row, bool) {
	for {
		row, ok := f.child.Next()
		if !ok {
			return nil, false
		}
		if f.pred(row) {
			return row, true
		}
	}
}

// hashJoin probes a prebuilt hash table with the child's foreign-key column
// and emits the child row extended with the build side's payload columns
// (an FK->PK join always matches at most one build row). Rows failing the
// probe are dropped — the join doubles as the dimension filter.
type hashJoin struct {
	child   Iterator
	fkIdx   int
	build   map[int32][]rowstore.Value
	scratch rowstore.Row
}

// newHashJoin builds the operator; build maps dimension key -> payload
// values to append (empty but non-nil slice when the dimension contributes
// no group columns).
func newHashJoin(child Iterator, fkIdx int, build map[int32][]rowstore.Value) *hashJoin {
	return &hashJoin{child: child, fkIdx: fkIdx, build: build}
}

// Next implements Iterator.
func (j *hashJoin) Next() (rowstore.Row, bool) {
	for {
		row, ok := j.child.Next()
		if !ok {
			return nil, false
		}
		payload, hit := j.build[row[j.fkIdx].I]
		if !hit {
			continue
		}
		j.scratch = append(append(j.scratch[:0], row...), payload...)
		return j.scratch, true
	}
}

// hashAgg drains the child, grouping on the given row positions (string
// values produced by joins, or integer columns rendered in decimal).
func hashAgg(child Iterator, queryID string, groupIdx []int, agg *aggEval) *ssb.Result {
	out := newAggregator(queryID, len(groupIdx) > 0, agg.specs)
	keys := make([]string, len(groupIdx))
	for {
		row, ok := child.Next()
		if !ok {
			break
		}
		for i, gi := range groupIdx {
			keys[i] = row[gi].S
		}
		out.add(keys, agg.evalRow(row))
	}
	return out.result()
}
