package rowexec

import "repro/internal/ssb"

// aggregator accumulates grouped sums from rendered group keys. It backs
// both the Volcano hashAgg operator and the callback-style drivers (bitmap,
// vertical-partitioning and index-only plans).
type aggregator struct {
	queryID string
	grouped bool
	total   int64
	groups  map[string]*aggCell
	kb      []byte
}

type aggCell struct {
	keys []string
	sum  int64
}

// newAggregator returns an aggregator for a query with (grouped=true) or
// without group-by columns.
func newAggregator(queryID string, grouped bool) *aggregator {
	return &aggregator{queryID: queryID, grouped: grouped, groups: map[string]*aggCell{}}
}

// add accumulates v under the given group keys (ignored when ungrouped).
// keys is borrowed: the aggregator copies it on first sight of a group.
func (a *aggregator) add(keys []string, v int64) {
	if !a.grouped {
		a.total += v
		return
	}
	a.kb = a.kb[:0]
	for i, k := range keys {
		if i > 0 {
			a.kb = append(a.kb, 0)
		}
		a.kb = append(a.kb, k...)
	}
	c, ok := a.groups[string(a.kb)]
	if !ok {
		c = &aggCell{keys: append([]string(nil), keys...)}
		a.groups[string(a.kb)] = c
	}
	c.sum += v
}

// result renders the canonical query result.
func (a *aggregator) result() *ssb.Result {
	if !a.grouped {
		return ssb.NewResult(a.queryID, []ssb.ResultRow{{Keys: nil, Agg: a.total}})
	}
	rows := make([]ssb.ResultRow, 0, len(a.groups))
	for _, c := range a.groups {
		rows = append(rows, ssb.ResultRow{Keys: c.keys, Agg: c.sum})
	}
	return ssb.NewResult(a.queryID, rows)
}
