package rowexec

import (
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// aggregator accumulates grouped aggregates from rendered group keys. It
// backs both the Volcano hashAgg operator and the callback-style drivers
// (bitmap, vertical-partitioning, index-only and super-tuple plans).
type aggregator struct {
	queryID string
	grouped bool
	specs   []ssb.AggSpec
	totals  []int64
	rows    int64
	groups  map[string]*aggCell
	kb      []byte
}

type aggCell struct {
	keys  []string
	cells []int64
}

// newAggregator returns an aggregator over the given aggregate list for a
// query with (grouped=true) or without group-by columns.
func newAggregator(queryID string, grouped bool, specs []ssb.AggSpec) *aggregator {
	a := &aggregator{
		queryID: queryID,
		grouped: grouped,
		specs:   specs,
		totals:  make([]int64, len(specs)),
		groups:  map[string]*aggCell{},
	}
	ssb.InitCells(specs, a.totals)
	return a
}

// add accumulates one qualifying row's evaluated expression values (one per
// spec; COUNT entries are ignored) under the given group keys. keys is
// borrowed: the aggregator copies it on first sight of a group.
func (a *aggregator) add(keys []string, vals []int64) {
	cells := a.totals
	if a.grouped {
		a.kb = a.kb[:0]
		for i, k := range keys {
			if i > 0 {
				a.kb = append(a.kb, 0)
			}
			a.kb = append(a.kb, k...)
		}
		c, ok := a.groups[string(a.kb)]
		if !ok {
			c = &aggCell{
				keys:  append([]string(nil), keys...),
				cells: make([]int64, len(a.specs)),
			}
			ssb.InitCells(a.specs, c.cells)
			a.groups[string(a.kb)] = c
		}
		cells = c.cells
	} else {
		a.rows++
	}
	for k, s := range a.specs {
		cells[k] = s.Combine(cells[k], vals[k])
	}
}

// result renders the canonical query result.
func (a *aggregator) result() *ssb.Result {
	if !a.grouped {
		return ssb.NewResult(a.queryID, []ssb.ResultRow{
			ssb.MakeRow(nil, ssb.FinalizeCells(a.specs, a.totals, a.rows)),
		})
	}
	rows := make([]ssb.ResultRow, 0, len(a.groups))
	for _, c := range a.groups {
		rows = append(rows, ssb.MakeRow(c.keys, c.cells))
	}
	return ssb.NewResult(a.queryID, rows)
}

// aggEval resolves the aggregate list's expression operands to positions in
// whatever row representation a plan uses (rowstore.Row for heap scans,
// []int32 tuples for the vertical and index-only plans) and evaluates them
// into a reused per-row value slice.
type aggEval struct {
	specs  []ssb.AggSpec
	ia, ib []int // positions per spec (-1 unused)
	out    []int64
}

// newAggEval maps each spec's expression columns through pos.
func newAggEval(specs []ssb.AggSpec, pos func(string) int) *aggEval {
	cols, ia, ib := ssb.AggInputs(specs)
	at := make([]int, len(cols))
	for i, c := range cols {
		at[i] = pos(c)
	}
	resolve := func(src []int) []int {
		out := make([]int, len(src))
		for i, v := range src {
			if v < 0 {
				out[i] = -1
			} else {
				out[i] = at[v]
			}
		}
		return out
	}
	return &aggEval{specs: specs, ia: resolve(ia), ib: resolve(ib), out: make([]int64, len(specs))}
}

// evalFunc evaluates the expressions reading column values through get; the
// returned slice is reused across calls.
func (a *aggEval) evalFunc(get func(int) int32) []int64 {
	for k, s := range a.specs {
		if s.Func == ssb.FuncCount {
			a.out[k] = 0
			continue
		}
		var va, vb int32
		va = get(a.ia[k])
		if a.ib[k] >= 0 {
			vb = get(a.ib[k])
		}
		a.out[k] = s.Expr.Eval(va, vb)
	}
	return a.out
}

// evalRow evaluates over a heap row.
func (a *aggEval) evalRow(row rowstore.Row) []int64 {
	return a.evalFunc(func(i int) int32 { return row[i].I })
}

// evalVals evaluates over an []int32 tuple.
func (a *aggEval) evalVals(vals []int32) []int64 {
	return a.evalFunc(func(i int) int32 { return vals[i] })
}
