package rowexec

import (
	"fmt"
	"sort"

	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// Run executes an SSBM query under the given physical design. prunePartitions
// controls orderdate-year partition pruning for the heap-scanning designs
// (the paper's System X has it on; turning it off reproduces the "without
// partitioning" ablation of Section 6.1).
func (sx *SystemX) Run(q *ssb.Query, d Design, st *iosim.Stats) *ssb.Result {
	return sx.RunOpt(q, d, true, st)
}

// RunOpt is Run with explicit partition-pruning control.
func (sx *SystemX) RunOpt(q *ssb.Query, d Design, prunePartitions bool, st *iosim.Stats) *ssb.Result {
	switch d {
	case Traditional:
		return sx.runScanPlan(q, sx.Fact, prunePartitions, st)
	case TraditionalBitmap:
		return sx.runBitmapPlan(q, st)
	case MaterializedViews:
		mv, ok := sx.MVs[q.Flight]
		if !ok {
			panic(fmt.Sprintf("rowexec: MV design not built (flight %d)", q.Flight))
		}
		return sx.runScanPlan(q, mv, prunePartitions, st)
	case VerticalPartitioning:
		return sx.runVPPlan(q, st)
	default:
		return sx.runIndexOnlyPlan(q, st)
	}
}

// dimBuild is the build side of one dimension hash join.
type dimBuild struct {
	dim ssb.Dim
	// table maps dimension key -> payload of rendered group attributes.
	table map[int32][]rowstore.Value
	// ratio estimates selectivity (|table| / |dim|) for join ordering.
	ratio float64
	// groupCols records which q.GroupBy entries this join's payload
	// serves, in payload order.
	groupCols []int
}

// buildDimHash scans one dimension and prepares the hash-join build side:
// only keys passing the query's filters on that dimension are present, and
// each key carries the rendered group-by attributes the query needs from
// that dimension.
func (sx *SystemX) buildDimHash(q *ssb.Query, dim ssb.Dim, st *iosim.Stats) *dimBuild {
	t := sx.Dims[dim]
	keyIdx := t.Schema.MustColIndex(dim.KeyCol())
	type colFilter struct {
		idx int
		f   ssb.DimFilter
	}
	var cfs []colFilter
	for _, f := range q.DimFilters {
		if f.Dim == dim {
			cfs = append(cfs, colFilter{idx: t.Schema.MustColIndex(f.Col), f: f})
		}
	}
	var attrIdx []int
	var attrIsInt []bool
	b := &dimBuild{dim: dim, table: map[int32][]rowstore.Value{}}
	for gi, g := range q.GroupBy {
		if g.Dim != dim {
			continue
		}
		i := t.Schema.MustColIndex(g.Col)
		attrIdx = append(attrIdx, i)
		attrIsInt = append(attrIsInt, t.Schema.Types[i] == rowstore.TInt)
		b.groupCols = append(b.groupCols, gi)
	}
	t.Scan(st, func(_ int32, row rowstore.Row) bool {
		for _, cf := range cfs {
			if cf.f.IsInt {
				if !cf.f.IntPred().Match(row[cf.idx].I) {
					return true
				}
			} else if !cf.f.MatchStr(row[cf.idx].S) {
				return true
			}
		}
		payload := make([]rowstore.Value, len(attrIdx))
		for k, ai := range attrIdx {
			if attrIsInt[k] {
				payload[k] = rowstore.Value{S: fmt.Sprintf("%d", row[ai].I)}
			} else {
				payload[k] = rowstore.Value{S: row[ai].S}
			}
		}
		b.table[row[keyIdx].I] = payload
		return true
	})
	b.ratio = float64(len(b.table)) / float64(t.NumRows())
	return b
}

// runScanPlan is the traditional plan (and the MV plan, whose source table
// simply has fewer columns): sequential scan -> filter -> pipelined hash
// joins in selectivity order -> hash aggregation (Section 6.2.1).
func (sx *SystemX) runScanPlan(q *ssb.Query, src *rowstore.Table, prune bool, st *iosim.Stats) *ssb.Result {
	var ranges [][2]int32
	if src == sx.Fact {
		ranges = sx.pruneYears(q, prune, st)
	} else {
		// MVs preserve fact row order, so year pruning applies to the
		// same rid ranges.
		ranges = sx.pruneYears(q, prune, st)
	}

	var it Iterator = newTableScan(src, ranges, st)

	// Fact measure predicates.
	if len(q.FactFilters) > 0 {
		type fp struct {
			idx  int
			pred func(int32) bool
		}
		var fps []fp
		for _, f := range q.FactFilters {
			fps = append(fps, fp{idx: src.Schema.MustColIndex(f.Col), pred: f.Pred.Match})
		}
		it = &filter{child: it, pred: func(row rowstore.Row) bool {
			for _, p := range fps {
				if !p.pred(row[p.idx].I) {
					return false
				}
			}
			return true
		}}
	}

	// Hash joins in order of predicate selectivity ("the traditional
	// plan ... pipelines joins in order of predicate selectivity").
	builds := make([]*dimBuild, 0, 4)
	for _, dim := range q.DimsUsed() {
		builds = append(builds, sx.buildDimHash(q, dim, st))
	}
	sort.SliceStable(builds, func(i, j int) bool { return builds[i].ratio < builds[j].ratio })

	width := src.Schema.NumCols()
	groupIdx := make([]int, len(q.GroupBy))
	for _, b := range builds {
		fkIdx := src.Schema.MustColIndex(b.dim.FactFK())
		for pi, gi := range b.groupCols {
			groupIdx[gi] = width + pi
		}
		width += len(b.groupCols)
		it = newHashJoin(it, fkIdx, b.table)
	}

	agg := newAggEval(q.AggSpecs(), src.Schema.MustColIndex)
	return hashAgg(it, q.ID, groupIdx, agg)
}
