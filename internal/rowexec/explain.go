package rowexec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ssb"
)

// Explain renders the physical plan the row engine would run for q under
// the given design: partition pruning outcome, join order with build-side
// cardinalities, and the design-specific access path. Dimension predicates
// are evaluated for real (they are the planner's selectivity input); fact
// data is not touched.
func (sx *SystemX) Explain(q *ssb.Query, d Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query %s on row store [%v]\n", q.ID, d)
	switch d {
	case Traditional, MaterializedViews:
		ranges := sx.pruneYears(q, true, nil)
		var rows int32
		for _, r := range ranges {
			rows += r[1] - r[0]
		}
		src := "lineorder heap (17 columns)"
		if d == MaterializedViews {
			src = fmt.Sprintf("flight-%d MV %v", q.Flight, ssb.FlightMVColumns(q.Flight))
		}
		fmt.Fprintf(&b, "  seq scan %s: %d partition range(s), %d of %d rows after pruning\n",
			src, len(ranges), rows, sx.Fact.NumRows())
		if len(q.FactFilters) > 0 {
			var cols []string
			for _, f := range q.FactFilters {
				cols = append(cols, f.Col)
			}
			fmt.Fprintf(&b, "  filter on %s\n", strings.Join(cols, ", "))
		}
		builds := make([]*dimBuild, 0, 4)
		for _, dim := range q.DimsUsed() {
			builds = append(builds, sx.buildDimHash(q, dim, nil))
		}
		sort.SliceStable(builds, func(i, j int) bool { return builds[i].ratio < builds[j].ratio })
		for _, bu := range builds {
			fmt.Fprintf(&b, "  hash join %s on %s: build side %d keys (selectivity %.3f)\n",
				bu.dim, bu.dim.FactFK(), len(bu.table), bu.ratio)
		}
		fmt.Fprintf(&b, "  hash aggregate (%d group columns)\n", len(q.GroupBy))
	case TraditionalBitmap:
		for _, f := range q.FactFilters {
			fmt.Fprintf(&b, "  bitmap index lookup on %s\n", f.Col)
		}
		byDim := map[ssb.Dim][]ssb.DimFilter{}
		for _, f := range q.DimFilters {
			byDim[f.Dim] = append(byDim[f.Dim], f)
		}
		for dim, fs := range byDim {
			keys := sx.dimKeySet(dim, fs, nil)
			mode := "per-key index probes"
			if len(keys) >= rangeScanKeyThreshold {
				mode = "filtered index range scan"
			}
			fmt.Fprintf(&b, "  rid bitmap from %s index: %d keys via %s\n", dim.FactFK(), len(keys), mode)
		}
		fmt.Fprintf(&b, "  AND bitmaps; fetch matching heap pages; join group attributes; aggregate\n")
	case VerticalPartitioning:
		cols := q.NeededFactColumns()
		fmt.Fprintf(&b, "  scan %d vertical (pos,value) tables: %s\n", len(cols), strings.Join(cols, ", "))
		fmt.Fprintf(&b, "  hash join on position, column by column (16 bytes/value on disk)\n")
	default:
		cols := q.NeededFactColumns()
		fmt.Fprintf(&b, "  full index scans of %d fact columns: %s\n", len(cols), strings.Join(cols, ", "))
		buildBytes := int64(sx.Fact.NumRows()) * hashEntryBytes(len(cols))
		spill := ""
		if buildBytes > sx.WorkMemBytes {
			spill = fmt.Sprintf(" (SPILLS: %d MB build vs %d MB work memory)",
				buildBytes>>20, sx.WorkMemBytes>>20)
		}
		fmt.Fprintf(&b, "  hash join on record-id before any dimension filtering%s\n", spill)
		fmt.Fprintf(&b, "  dimension restrictions via index range scans; aggregate\n")
	}
	return b.String()
}
