package rowexec

import (
	"strings"
	"testing"

	"repro/internal/ssb"
)

func TestExplainAllDesigns(t *testing.T) {
	q := ssb.QueryByID("2.1")
	for _, d := range Designs() {
		out := testSX.Explain(q, d)
		if !strings.Contains(out, "Query 2.1") {
			t.Errorf("%v: missing header:\n%s", d, out)
		}
	}
	// Traditional mentions pruning and hash joins in selectivity order.
	out := testSX.Explain(ssb.QueryByID("1.1"), Traditional)
	if !strings.Contains(out, "after pruning") || !strings.Contains(out, "hash join") {
		t.Errorf("traditional explain incomplete:\n%s", out)
	}
	// The one-year query must prune to fewer rows than the table.
	if strings.Contains(out, "13 partition") {
		t.Errorf("pruning did not reduce partitions:\n%s", out)
	}
	// MV names the flight view.
	out = testSX.Explain(q, MaterializedViews)
	if !strings.Contains(out, "flight-2 MV") {
		t.Errorf("MV explain missing view:\n%s", out)
	}
	// VP mentions position joins; AI mentions rid joins.
	if out = testSX.Explain(q, VerticalPartitioning); !strings.Contains(out, "hash join on position") {
		t.Errorf("VP explain:\n%s", out)
	}
	if out = testSX.Explain(q, AllIndexes); !strings.Contains(out, "hash join on record-id") {
		t.Errorf("AI explain:\n%s", out)
	}
	// T(B) distinguishes probe modes.
	out = testSX.Explain(ssb.QueryByID("3.1"), TraditionalBitmap)
	if !strings.Contains(out, "rid bitmap") {
		t.Errorf("T(B) explain:\n%s", out)
	}
}

func TestExplainAISpillNote(t *testing.T) {
	old := testSX.WorkMemBytes
	defer func() { testSX.WorkMemBytes = old }()
	testSX.WorkMemBytes = 1 << 10
	out := testSX.Explain(ssb.QueryByID("3.1"), AllIndexes)
	if !strings.Contains(out, "SPILLS") {
		t.Errorf("AI explain should note the spill under tiny work memory:\n%s", out)
	}
	testSX.WorkMemBytes = 1 << 40
	out = testSX.Explain(ssb.QueryByID("3.1"), AllIndexes)
	if strings.Contains(out, "SPILLS") {
		t.Errorf("AI explain should not note a spill with huge work memory:\n%s", out)
	}
}
