package rowexec

import (
	"testing"

	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

const testSF = 0.02

var (
	testData = ssb.Generate(testSF)
	testSX   = Build(testData, AllDesigns)
)

// TestAllDesignsMatchReference: the five Figure 6 physical designs must all
// return the reference result for all thirteen queries.
func TestAllDesignsMatchReference(t *testing.T) {
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		for _, d := range Designs() {
			var st iosim.Stats
			got := testSX.Run(q, d, &st)
			if !got.Equal(want) {
				t.Errorf("Q%s design %v: results differ\n%s", q.ID, d, want.Diff(got))
			}
			if st.BytesRead == 0 {
				t.Errorf("Q%s design %v: no I/O charged", q.ID, d)
			}
		}
	}
}

// TestNoPartitionPruningStillCorrect: disabling pruning must not change
// results, only increase I/O on date-restricted queries.
func TestNoPartitionPruningStillCorrect(t *testing.T) {
	for _, id := range []string{"1.1", "3.4", "4.3"} {
		q := ssb.QueryByID(id)
		want := ssb.Reference(testData, q)
		var stP, stNoP iosim.Stats
		gotP := testSX.RunOpt(q, Traditional, true, &stP)
		gotNoP := testSX.RunOpt(q, Traditional, false, &stNoP)
		if !gotP.Equal(want) || !gotNoP.Equal(want) {
			t.Fatalf("Q%s: pruning changed results", id)
		}
		if stP.BytesRead >= stNoP.BytesRead {
			t.Errorf("Q%s: pruning did not reduce I/O (%d vs %d)", id, stP.BytesRead, stNoP.BytesRead)
		}
	}
}

// TestPartitionPruningFactorOnFlight1: queries restricted to one year scan
// about 1/7th of the fact heap.
func TestPartitionPruningFactorOnFlight1(t *testing.T) {
	q := ssb.QueryByID("1.1")
	var stP, stNoP iosim.Stats
	testSX.RunOpt(q, Traditional, true, &stP)
	testSX.RunOpt(q, Traditional, false, &stNoP)
	ratio := float64(stNoP.BytesRead) / float64(stP.BytesRead)
	if ratio < 3 || ratio > 12 {
		t.Errorf("pruning ratio %.1f, expected ~7 for a one-year query", ratio)
	}
}

// TestMVReadsLessThanTraditional: the minimal-projection MV scans fewer
// bytes than the 17-column fact table.
func TestMVReadsLessThanTraditional(t *testing.T) {
	for _, id := range []string{"1.1", "2.1", "3.1", "4.1"} {
		q := ssb.QueryByID(id)
		var stT, stMV iosim.Stats
		testSX.Run(q, Traditional, &stT)
		testSX.Run(q, MaterializedViews, &stMV)
		if stMV.BytesRead >= stT.BytesRead {
			t.Errorf("Q%s: MV read %d >= traditional %d", id, stMV.BytesRead, stT.BytesRead)
		}
	}
}

// TestVPTupleOverheadIO: scanning k vertical columns costs roughly
// k*(16B+slack)/row; for queries needing >= 4 fact columns VP should read
// at least as much as the MV design (paper Section 6.2: "scanning just four
// of the columns in the vertical partitioning approach will take as long as
// scanning the entire fact table in the traditional approach").
func TestVPTupleOverheadIO(t *testing.T) {
	q := ssb.QueryByID("2.1") // needs suppkey, partkey, orderdate, revenue
	var stVP, stMV iosim.Stats
	testSX.Run(q, VerticalPartitioning, &stVP)
	testSX.Run(q, MaterializedViews, &stMV)
	if stVP.BytesRead <= stMV.BytesRead {
		t.Errorf("VP read %d <= MV %d; tuple overheads missing", stVP.BytesRead, stMV.BytesRead)
	}
}

// TestAIReadsIndexesNotHeap: the index-only plan must not charge heap page
// reads for the fact table (it reads index leaf levels instead, which for
// multi-column queries is still expensive).
func TestAIIsExpensive(t *testing.T) {
	q := ssb.QueryByID("3.1")
	var stAI, stT iosim.Stats
	testSX.Run(q, AllIndexes, &stAI)
	testSX.Run(q, Traditional, &stT)
	if stAI.BytesRead == 0 {
		t.Fatal("AI charged nothing")
	}
	// At minimum AI reads the leaf level of every needed fact index.
	var minBytes int64
	for _, c := range ssb.QueryByID("3.1").NeededFactColumns() {
		minBytes += testSX.FactIdx[c].SizeBytes()
	}
	if stAI.BytesRead < minBytes {
		t.Fatalf("AI read %d < index leaves %d", stAI.BytesRead, minBytes)
	}
}

func TestDesignStrings(t *testing.T) {
	want := []string{"T", "T(B)", "MV", "VP", "AI"}
	for i, d := range Designs() {
		if d.String() != want[i] {
			t.Fatalf("design %d = %q want %q", i, d, want[i])
		}
	}
}

func TestYearRangesCoverFact(t *testing.T) {
	n := int32(testSX.Fact.NumRows())
	var covered int32
	for y, r := range testSX.YearRange {
		if r[0] < 0 || r[1] > n || r[0] > r[1] {
			t.Fatalf("year %d range %v invalid", y, r)
		}
		covered += r[1] - r[0]
	}
	if covered != n {
		t.Fatalf("year ranges cover %d of %d rows", covered, n)
	}
	if len(testSX.YearRange) != 7 {
		t.Fatalf("expected 7 year partitions, got %d", len(testSX.YearRange))
	}
}

// TestVolcanoOperators exercises the iterator framework directly.
func TestVolcanoOperators(t *testing.T) {
	// Scan a dimension table through the Volcano path.
	cust := testSX.Dims[ssb.DimCustomer]
	regionIdx := cust.Schema.MustColIndex("region")
	var st iosim.Stats
	scan := newTableScan(cust, [][2]int32{{0, int32(cust.NumRows())}}, &st)
	f := &filter{child: scan, pred: func(row rowstore.Row) bool {
		return row[regionIdx].S == "ASIA"
	}}
	count := 0
	for {
		_, ok := f.Next()
		if !ok {
			break
		}
		count++
	}
	want := 0
	for _, r := range testData.Customer.Region {
		if r == "ASIA" {
			want++
		}
	}
	if count != want {
		t.Fatalf("Volcano filter passed %d rows, want %d", count, want)
	}
	if st.BytesRead != cust.HeapBytes() {
		t.Fatalf("scan charged %d, heap is %d", st.BytesRead, cust.HeapBytes())
	}
}

// TestWorkMemSpillCharged: shrinking work memory below the AI design's rid
// hash table must charge spill write+read traffic without changing results.
func TestWorkMemSpillCharged(t *testing.T) {
	q := ssb.QueryByID("2.1")
	want := ssb.Reference(testData, q)
	old := testSX.WorkMemBytes
	defer func() { testSX.WorkMemBytes = old }()

	testSX.WorkMemBytes = 1 << 40 // everything fits
	var stFit iosim.Stats
	if got := testSX.Run(q, AllIndexes, &stFit); !got.Equal(want) {
		t.Fatal("AI with huge work memory diverges")
	}
	if stFit.BytesWritten != 0 {
		t.Fatalf("no spill expected, wrote %d", stFit.BytesWritten)
	}

	testSX.WorkMemBytes = 1 << 10 // everything spills
	var stSpill iosim.Stats
	if got := testSX.Run(q, AllIndexes, &stSpill); !got.Equal(want) {
		t.Fatal("AI with tiny work memory diverges")
	}
	if stSpill.BytesWritten == 0 {
		t.Fatal("spill writes not charged")
	}
	if stSpill.BytesRead <= stFit.BytesRead {
		t.Fatal("spilled join should also re-read its partitions")
	}
	// VP spills too once its position hash exceeds memory.
	var stVP iosim.Stats
	if got := testSX.Run(q, VerticalPartitioning, &stVP); !got.Equal(want) {
		t.Fatal("VP with tiny work memory diverges")
	}
	if stVP.BytesWritten == 0 {
		t.Fatal("VP spill writes not charged")
	}
}
