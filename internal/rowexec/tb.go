package rowexec

import (
	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/iosim"
	"repro/internal/rowstore"
	"repro/internal/ssb"
)

// runBitmapPlan is the "traditional (bitmap)" design T(B): plans are biased
// to build rid bitmaps from indexes for every predicate, AND them, and then
// fetch only the heap pages containing matches. As the paper observes, this
// "sometimes helps — especially when the selectivity of queries is low —
// ... in other cases merging bitmaps adds overhead and bitmap scans can be
// slower than pure sequential scans": building the FK-side bitmaps costs
// one index probe per qualifying dimension key.
func (sx *SystemX) runBitmapPlan(q *ssb.Query, st *iosim.Stats) *ssb.Result {
	if sx.DiscountBM == nil || len(sx.FactIdx) == 0 {
		panic("rowexec: bitmap design requires Bitmaps and Indexes build options")
	}
	n := sx.Fact.NumRows()
	var acc *bitmap.Bitmap
	and := func(bm *bitmap.Bitmap) {
		if acc == nil {
			acc = bm
		} else {
			acc.And(bm)
		}
	}

	// Fact measure predicates via bitmap indexes where one exists
	// (discount and quantity); other measure columns fall back to residual
	// predicates evaluated during the heap fetch.
	type residual struct {
		idx  int
		pred func(int32) bool
	}
	var residuals []residual
	for _, f := range q.FactFilters {
		pred := f.Pred
		switch f.Col {
		case "discount":
			and(sx.DiscountBM.Lookup(pred.Match, st))
		case "quantity":
			and(sx.QuantityBM.Lookup(pred.Match, st))
		default:
			residuals = append(residuals, residual{idx: sx.Fact.Schema.MustColIndex(f.Col), pred: pred.Match})
		}
	}

	// Dimension predicates: qualifying dimension keys probe the fact FK
	// B+Tree one key at a time; matching rids accumulate into a bitmap.
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	var dimOrder []ssb.Dim
	for _, f := range q.DimFilters {
		if _, ok := byDim[f.Dim]; !ok {
			dimOrder = append(dimOrder, f.Dim)
		}
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	for _, dim := range dimOrder {
		keys := sx.dimKeySet(dim, byDim[dim], st)
		idx := sx.FactIdx[dim.FactFK()]
		bm := bitmap.New(n)
		if len(keys) >= rangeScanKeyThreshold {
			// Large key sets: one index range scan over [min, max]
			// with a membership filter beats thousands of random
			// probes (one seek instead of one per key).
			var lo, hi int32
			first := true
			for k := range keys {
				if first || k < lo {
					lo = k
				}
				if first || k > hi {
					hi = k
				}
				first = false
			}
			st.AddSeeks(1)
			visited := int64(0)
			idx.Range(lo, hi, func(e btree.Entry[int32]) bool {
				visited++
				if _, ok := keys[e.Key]; ok {
					bm.Set(int(e.RID))
				}
				return true
			})
			st.Read(visited * idx.EntryBytes())
		} else {
			for k := range keys {
				st.AddSeeks(1)
				visited := int64(0)
				idx.Range(k, k, func(e btree.Entry[int32]) bool {
					bm.Set(int(e.RID))
					visited++
					return true
				})
				st.Read(visited * idx.EntryBytes())
			}
		}
		and(bm)
	}

	if acc == nil {
		acc = bitmap.NewFull(n)
	}

	// Group-by build sides (unfiltered here: the bitmaps already applied
	// the dimension restrictions, but keys must still resolve to group
	// attributes).
	builds := make([]*dimBuild, 0, 4)
	for _, dim := range q.DimsUsed() {
		builds = append(builds, sx.buildDimHash(q, dim, st))
	}

	fkIdx := make([]int, len(builds))
	for i, b := range builds {
		fkIdx[i] = sx.Fact.Schema.MustColIndex(b.dim.FactFK())
	}
	agg := newAggEval(q.AggSpecs(), sx.Fact.Schema.MustColIndex)

	out := newAggregator(q.ID, len(q.GroupBy) > 0, agg.specs)
	keys := make([]string, len(q.GroupBy))
	sx.Fact.ScanRidBitmap(acc, st, func(_ int32, row rowstore.Row) bool {
		for _, r := range residuals {
			if !r.pred(row[r.idx].I) {
				return true
			}
		}
		for i, b := range builds {
			payload, hit := b.table[row[fkIdx[i]].I]
			if !hit {
				return true
			}
			for pi, gi := range b.groupCols {
				keys[gi] = payload[pi].S
			}
		}
		out.add(keys, agg.evalRow(row))
		return true
	})
	return out.result()
}

// rangeScanKeyThreshold is the optimizer crossover between per-key index
// probes and a single filtered index range scan when building a rid bitmap:
// above it, the accumulated seek cost of individual probes exceeds one
// sequential pass over the relevant leaf range.
const rangeScanKeyThreshold = 64
