package rowexec

import (
	"testing"

	"repro/internal/iosim"
	"repro/internal/ssb"
)

var testSuper = BuildSuperVPs(testData)

func TestSuperVPMatchesReference(t *testing.T) {
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		var st iosim.Stats
		got := testSX.RunSuperVP(q, testSuper, &st)
		if !got.Equal(want) {
			t.Errorf("Q%s super-tuple VP: results differ\n%s", q.ID, want.Diff(got))
		}
		if st.BytesRead == 0 {
			t.Errorf("Q%s super-tuple VP: no I/O charged", q.ID)
		}
	}
}

// TestSuperVPKillsTupleOverhead: the paper's Section 6.2 complaint about
// vertical partitioning is the ~16 bytes/value footprint; super tuples must
// bring that to ~4 bytes/value, the column store's uncompressed figure.
func TestSuperVPKillsTupleOverhead(t *testing.T) {
	n := float64(testData.NumLineorders())
	sv := testSuper["revenue"]
	perValue := float64(sv.HeapBytes()) / n
	if perValue > 4.5 {
		t.Fatalf("super-tuple column costs %.2f bytes/value, want ~4", perValue)
	}
	// And it is ~4x smaller than the naive (pos,value) vertical table.
	naive := testSX.VP["revenue"]
	if sv.HeapBytes()*3 > naive.HeapBytes() {
		t.Fatalf("super tuples (%d) should be far smaller than naive VP (%d)",
			sv.HeapBytes(), naive.HeapBytes())
	}
}

// TestSuperVPBeatsNaiveVPOnIO: the same query charges much less I/O through
// super tuples than through (pos,value) tables.
func TestSuperVPBeatsNaiveVPOnIO(t *testing.T) {
	q := ssb.QueryByID("2.1")
	var stNaive, stSuper iosim.Stats
	testSX.Run(q, VerticalPartitioning, &stNaive)
	testSX.RunSuperVP(q, testSuper, &stSuper)
	if stSuper.BytesRead*2 > stNaive.BytesRead {
		t.Fatalf("super tuples read %d, naive VP %d; expected >2x saving",
			stSuper.BytesRead, stNaive.BytesRead)
	}
}

func TestSuperVPDecode(t *testing.T) {
	vals := []int32{-5, 0, 7, 1 << 30}
	sv := BuildSuperVP("x", vals)
	it := sv.iter(nil)
	got, ok := it.next()
	if !ok || len(got) != 4 {
		t.Fatalf("batch decode wrong: %v %v", got, ok)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d want %d", i, got[i], vals[i])
		}
	}
	if _, ok := it.next(); ok {
		t.Fatal("iterator should be exhausted")
	}
}
