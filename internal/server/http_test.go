package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/ssb"
)

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, client *http.Client, u string, out any) int {
	t.Helper()
	resp, err := client.Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", u, err)
	}
	return resp.StatusCode
}

// checkRows compares an HTTP response's rows to a reference result.
func checkRows(t *testing.T, label string, got queryResponse, want *ssb.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i, row := range got.Rows {
		w := want.Rows[i]
		if fmt.Sprint(row.Keys) != fmt.Sprint(w.Keys) || fmt.Sprint(row.Aggs) != fmt.Sprint(w.AggValues()) {
			t.Fatalf("%s row %d: got %v=%v want %v=%v", label, i, row.Keys, row.Aggs, w.Keys, w.AggValues())
		}
	}
}

// TestHTTPQueryEndpoints serves real traffic through the HTTP layer: the
// fixed queries by id, the same plans as ad-hoc SQL, seeded random plans,
// concurrent clients, and the stats endpoint. Every response must match the
// brute-force reference.
func TestHTTPQueryEndpoints(t *testing.T) {
	srv, data, _ := openSegServer(t, 1<<20, Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// All 13 by id, then by their SQL text; id-then-SQL also exercises the
	// cache across selector forms (same normalized key).
	for _, q := range ssb.Queries() {
		want := ssb.Reference(data, q)
		var byID queryResponse
		if code := getJSON(t, ts.Client(), ts.URL+"/query?id="+q.ID, &byID); code != http.StatusOK {
			t.Fatalf("Q%s by id: status %d", q.ID, code)
		}
		checkRows(t, "Q"+q.ID+" by id", byID, want)

		var bySQL queryResponse
		u := ts.URL + "/query?sql=" + url.QueryEscape(q.SQL())
		if code := getJSON(t, ts.Client(), u, &bySQL); code != http.StatusOK {
			t.Fatalf("Q%s by sql: status %d", q.ID, code)
		}
		checkRows(t, "Q"+q.ID+" by sql", bySQL, want)
		if !bySQL.Cached {
			t.Fatalf("Q%s by sql: expected a cache hit after the id-form run", q.ID)
		}
	}

	// Seeded random plans from several concurrent clients.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := stressSeedBase + 500 + int64(i)
				q := ssb.RandQuery(seed)
				want := ssb.Reference(data, q)
				var got queryResponse
				u := fmt.Sprintf("%s/query?seed=%d", ts.URL, seed)
				if code := getJSON(t, ts.Client(), u, &got); code != http.StatusOK {
					t.Errorf("seed %d: status %d", seed, code)
					return
				}
				checkRows(t, fmt.Sprintf("seed %d", seed), got, want)
			}
		}(c)
	}
	wg.Wait()

	// Seed 0 is a valid plan (the selector is presence, not nonzero).
	var zero queryResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/query?seed=0", &zero); code != http.StatusOK {
		t.Fatalf("seed 0: status %d", code)
	}
	checkRows(t, "seed 0", zero, ssb.Reference(data, ssb.RandQuery(0)))

	// POST form.
	body := strings.NewReader(`{"id": "2.1"}`)
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var posted queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checkRows(t, "POST 2.1", posted, ssb.Reference(data, ssb.QueryByID("2.1")))

	// Stats: queries counted, pool present for the segment-backed store,
	// nothing pinned between requests.
	var st statsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if st.Server.Queries == 0 || st.Server.CacheHits == 0 {
		t.Fatalf("stats show no traffic: %+v", st.Server)
	}
	if st.Pool == nil {
		t.Fatal("stats missing pool section for a segment-backed store")
	}
	if st.Pool.Pinned != 0 {
		t.Fatalf("%d frames pinned with no query in flight", st.Pool.Pinned)
	}

	// Error shapes.
	var e map[string]string
	if code := getJSON(t, ts.Client(), ts.URL+"/query?id=9.9", &e); code != http.StatusBadRequest {
		t.Fatalf("unknown id: status %d", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/query", &e); code != http.StatusBadRequest {
		t.Fatalf("no selector: status %d", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/query?sql=selec+nonsense", &e); code != http.StatusBadRequest {
		t.Fatalf("bad sql: status %d (%v)", code, e)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/query?id=1.1&seed=7", &e); code != http.StatusBadRequest {
		t.Fatalf("two selectors: status %d", code)
	}
}
