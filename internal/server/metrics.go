package server

import "repro/internal/obs"

// initMetrics builds the /metrics registry. Every counter and gauge is a
// closure over state the server already maintains (its atomics, the cache,
// the buffer pool, the write store), read at scrape time — serving traffic
// pays nothing for the endpoint's existence. Only the two latency
// histograms are populated on the query path, two atomic adds per query.
//
// Pool- and ingest-backed families register unconditionally and report zero
// when the store is in-memory or ingest is off, so the exposition shape is
// stable across deployments and scrapers never see families come and go.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.metrics = r

	r.CounterFunc("ssb_queries_total", "Execute calls accepted, including cache hits and failed runs.",
		s.queries.Load)
	r.CounterFunc("ssb_query_errors_total", "Queries that returned an error (admission cancellation included).",
		s.errors.Load)
	r.CounterFunc("ssb_cache_hits_total", "Result-cache hits.",
		func() int64 { h, _, _ := s.cache.counters(); return h })
	r.CounterFunc("ssb_cache_misses_total", "Result-cache misses.",
		func() int64 { _, m, _ := s.cache.counters(); return m })
	r.CounterFunc("ssb_admission_rejects_total", "Admission waits that ended in cancellation instead of a grant.",
		s.admitRejects.Load)
	r.CounterFunc("ssb_inserts_total", "Accepted insert batches.", s.inserts.Load)
	r.CounterFunc("ssb_inserted_rows_total", "Rows across accepted insert batches.", s.insertedRows.Load)
	r.CounterFunc("ssb_deletes_total", "Accepted delete operations.", s.deletes.Load)
	r.CounterFunc("ssb_deleted_rows_total", "Rows tombstoned by accepted deletes.", s.deletedRows.Load)
	r.CounterFunc("ssb_ws_full_rejects_total", "Inserts bounced because the write store hit its byte cap.",
		s.wsFullRejects.Load)
	r.CounterFunc("ssb_retry_after_sent_total", "HTTP 503 responses that carried a Retry-After backpressure hint.",
		s.retryAfters.Load)
	r.CounterFunc("ssb_wal_fsyncs_total", "WAL fsyncs (group commits); zero when no WAL is attached.",
		func() int64 { return s.db.WALStats().Syncs })
	r.CounterFunc("ssb_pool_evictions_total", "Buffer-pool frame evictions; zero for in-memory stores.",
		func() int64 {
			if st := s.db.SegmentStore(); st != nil {
				return st.Pool().Stats().Evictions
			}
			return 0
		})

	r.GaugeFunc("ssb_in_flight_queries", "Queries currently executing or queued for admission.",
		s.inFlight.Load)
	r.GaugeFunc("ssb_cache_entries", "Result-cache entries resident.",
		func() int64 { _, _, e := s.cache.counters(); return int64(e) })
	r.GaugeFunc("ssb_pool_resident_bytes", "Compressed payload bytes resident in the buffer pool.",
		func() int64 {
			if st := s.db.SegmentStore(); st != nil {
				return st.Pool().Stats().Resident
			}
			return 0
		})
	r.GaugeFunc("ssb_pool_resident_logical_bytes", "Decoded (4 B/value) size of the pool's resident working set.",
		func() int64 {
			if st := s.db.SegmentStore(); st != nil {
				return st.Pool().Stats().ResidentLogical
			}
			return 0
		})
	r.GaugeFunc("ssb_pool_pinned_frames", "Buffer-pool frames currently pinned by executing queries.",
		func() int64 {
			if st := s.db.SegmentStore(); st != nil {
				return int64(st.Pool().PinnedFrames())
			}
			return 0
		})
	r.GaugeFunc("ssb_ws_pending_bytes", "Write-store bytes awaiting compaction; zero when ingest is off.",
		func() int64 { return s.db.IngestStats().PendingBytes })
	r.GaugeFunc("ssb_ws_pending_rows", "Write-store rows awaiting compaction; zero when ingest is off.",
		func() int64 { return s.db.IngestStats().PendingRows })

	// 100µs..~3.3s and 10µs..~5.2s: log-spaced so the histogram stays 16
	// buckets while covering cache-warm sub-millisecond queries and
	// admission stalls behind a heavy scan alike.
	s.durHist = r.NewHistogram("ssb_query_duration_seconds",
		"Query execution latency (admission wait excluded); cache hits not observed.",
		obs.ExpBuckets(100e-6, 2, 16))
	s.admitHist = r.NewHistogram("ssb_admission_wait_seconds",
		"Time queries spent queued in admission control before their grant.",
		obs.ExpBuckets(10e-6, 2, 20))
}

// Metrics exposes the registry (the HTTP layer's /metrics renders it; tests
// scrape it directly).
func (s *Server) Metrics() *obs.Registry { return s.metrics }
