package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// debugQueriesResponse is the JSON shape of /debug/queries: the newest
// records first, straight from the flight recorder.
type debugQueriesResponse struct {
	Count   int               `json:"count"`
	Queries []obs.QueryRecord `json:"queries"`
}

// handleDebugQueries serves the flight recorder's ring: GET
// /debug/queries?n= returns the newest n records (default 50, n<=0 or
// larger than the ring means everything retained).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad n: "+err.Error())
			return
		}
		n = parsed
	}
	recs := s.recorder.Snapshot(n)
	writeJSON(w, http.StatusOK, debugQueriesResponse{Count: len(recs), Queries: recs})
}

// handleDebugSummary serves the windowed engine×flight percentile rollup:
// GET /debug/summary?window= takes the lookback in seconds (default 60,
// 0 means the whole ring).
func (s *Server) handleDebugSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	window := 60.0
	if v := r.URL.Query().Get("window"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 {
			httpError(w, http.StatusBadRequest, "bad window (seconds)")
			return
		}
		window = parsed
	}
	sum := s.recorder.Summary(time.Now().UnixNano(), int64(window*float64(time.Second)))
	writeJSON(w, http.StatusOK, sum)
}

// historyResponse is the JSON shape of /metrics/history: the sample ring
// oldest-first, per-second rates over the newest pair of samples, and each
// series' type so clients know which values rate math applies to.
type historyResponse struct {
	Samples []obs.HistorySample `json:"samples"`
	Rates   map[string]float64  `json:"rates"`
	Types   map[string]string   `json:"types"`
}

// handleMetricsHistory serves the metrics-history ring: GET
// /metrics/history?n=&sample=1. n bounds the samples returned (default
// all); sample=1 takes a fresh sample first, so a poller (ssb-top, CI)
// gets current rates even when the background cadence is long or off.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad n: "+err.Error())
			return
		}
		n = parsed
	}
	if v := r.URL.Query().Get("sample"); v == "1" || v == "true" {
		s.history.Sample(time.Now().UnixNano())
	}
	samples := s.history.Snapshot(n)
	types := make(map[string]string, len(samples))
	if len(samples) > 0 {
		for name := range samples[len(samples)-1].Values {
			types[name] = s.history.SeriesType(name)
		}
	}
	rates := s.history.Rates()
	if rates == nil {
		rates = map[string]float64{}
	}
	writeJSON(w, http.StatusOK, historyResponse{Samples: samples, Rates: rates, Types: types})
}

// registerDebug adds the observability read endpoints to mux. They are on
// the serving mux (ssb-top polls the serving port) and on the optional
// debug listener.
func (s *Server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/summary", s.handleDebugSummary)
	mux.HandleFunc("/metrics/history", s.handleMetricsHistory)
}

// DebugHandler returns the opt-in debug surface for a separate listener
// (ssb-serve's -debug-addr): pprof plus the same observability read
// endpoints the serving mux carries — so profiling traffic never competes
// with queries on the serving port, and a firewall can fence the debug
// port off wholesale.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.registerDebug(mux)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}
