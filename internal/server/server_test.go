package server

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ssb"
)

// stressSeedBase pins the stress suite's plan space; a failure reproduces
// with ssb-query -fuzz-seed <seed> -verify.
const stressSeedBase int64 = 2026_0728_4000

// openSegServer generates SF=0.01 data, round-trips it through a segment
// file opened under budget, and returns both the serving layer and the raw
// dataset for reference execution.
func openSegServer(t *testing.T, budget int64, opts Options) (*Server, *ssb.Data, *core.DB) {
	t.Helper()
	data := ssb.Generate(0.01)
	memDB := core.OpenData(data)
	path := filepath.Join(t.TempDir(), "serve.seg")
	if err := exec.SaveSegments(path, data.SF, memDB.ColumnDB(true)); err != nil {
		t.Fatalf("SaveSegments: %v", err)
	}
	segDB, err := core.OpenSegmentStore(path, budget)
	if err != nil {
		t.Fatalf("OpenSegmentStore: %v", err)
	}
	t.Cleanup(func() { segDB.SegmentStore().Close() })
	srv, err := New(segDB, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, data, segDB
}

// TestServeStressRace is the acceptance stress: 16 concurrent clients each
// execute 200 seeded random plans (shuffled per client) against one shared
// segment-backed DB whose 256KB pool budget forces continuous eviction
// churn, and every result must be bit-identical to the brute-force
// reference. The cache is disabled so all 3200 executions hit the engine.
// At shutdown: zero pinned frames and zero leaked goroutines. Run with
// -race in CI.
func TestServeStressRace(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const clients = 16
	const plansPerClient = 200

	srv, data, segDB := openSegServer(t, 256<<10, Options{
		Workers:      4,
		CacheEntries: -1,       // every execution must hit the engine
		AdmitBytes:   64 << 20, // generous: real overlap, pool thrash allowed
	})

	plans := make([]*ssb.Query, plansPerClient)
	want := make([]*ssb.Result, plansPerClient)
	for i := range plans {
		plans[i] = ssb.RandQuery(stressSeedBase + int64(i))
		want[i] = ssb.Reference(data, plans[i])
	}

	// A poller hammers every observability read endpoint over HTTP while
	// the clients run, so /debug/queries, /debug/summary, /metrics/history
	// and the recorder behind them are race-exercised against live traffic.
	ts := httptest.NewServer(srv.Handler())
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		paths := []string{
			"/debug/queries?n=25", "/debug/summary?window=5",
			"/metrics/history?sample=1", "/stats", "/metrics",
		}
		for i := 0; ; i++ {
			select {
			case <-pollStop:
				return
			default:
			}
			resp, err := ts.Client().Get(ts.URL + paths[i%len(paths)])
			if err != nil {
				t.Errorf("poller: %v", err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("poller: %s status %d", paths[i%len(paths)], resp.StatusCode)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			order := rand.New(rand.NewSource(int64(c))).Perm(plansPerClient)
			for _, pi := range order {
				resp, err := srv.Execute(context.Background(), plans[pi])
				if err != nil {
					t.Errorf("client %d seed %d: %v", c, stressSeedBase+int64(pi), err)
					return
				}
				if resp.Cached {
					t.Errorf("client %d: cache hit with caching disabled", c)
					return
				}
				if !resp.Result.Equal(want[pi]) {
					t.Errorf("client %d seed %d: result diverges from reference\nSQL: %s\n%s",
						c, stressSeedBase+int64(pi), plans[pi].SQL(), want[pi].Diff(resp.Result))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(pollStop)
	<-pollDone
	ts.Close()

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := srv.Recorder().Len(); n == 0 || n > srv.Recorder().Cap() {
		t.Fatalf("recorder len %d (cap %d) after stress", n, srv.Recorder().Cap())
	}
	if n := segDB.SegmentStore().Pool().PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned at shutdown", n)
	}
	st := srv.Stats()
	if st.Queries != clients*plansPerClient {
		t.Fatalf("served %d queries, want %d", st.Queries, clients*plansPerClient)
	}
	if st.Errors != 0 || st.InFlight != 0 {
		t.Fatalf("errors=%d in-flight=%d at shutdown", st.Errors, st.InFlight)
	}

	// Zero leaked goroutines: executor workers all join before Execute
	// returns, so the count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: %d at shutdown vs %d at start", n, baseline)
	}
}

// TestServeGoldenConcurrent runs the thirteen fixed queries from many
// clients with the cache on: responses must stay bit-identical to the
// reference whether they were computed or served from cache, and the cache
// must absorb the repeats.
func TestServeGoldenConcurrent(t *testing.T) {
	srv, data, _ := openSegServer(t, 1<<20, Options{Workers: 2})
	defer srv.Close()

	queries := ssb.Queries()
	want := make(map[string]*ssb.Result, len(queries))
	for _, q := range queries {
		want[q.ID] = ssb.Reference(data, q)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for _, q := range queries {
					resp, err := srv.Execute(context.Background(), q)
					if err != nil {
						t.Errorf("client %d Q%s: %v", c, q.ID, err)
						return
					}
					if !resp.Result.Equal(want[q.ID]) {
						t.Errorf("client %d Q%s (cached=%v): diverges\n%s",
							c, q.ID, resp.Cached, want[q.ID].Diff(resp.Result))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits across 8 clients x 4 repetitions of 13 queries")
	}
	if st.CacheMisses < int64(len(queries)) {
		t.Fatalf("cache misses %d below the %d distinct queries", st.CacheMisses, len(queries))
	}
}

// TestExecuteCancellation covers both abandonment points: a context
// canceled while the query is queued for admission, and one canceled
// before execution begins.
func TestExecuteCancellation(t *testing.T) {
	srv, _, segDB := openSegServer(t, 256<<10, Options{CacheEntries: -1})
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Execute(ctx, ssb.QueryByID("1.1")); err == nil {
		t.Fatal("no error from pre-canceled context")
	}
	if n := segDB.SegmentStore().Pool().PinnedFrames(); n != 0 {
		t.Fatalf("%d pinned frames after canceled execute", n)
	}
	// The server keeps serving after cancellations.
	if _, err := srv.Execute(context.Background(), ssb.QueryByID("1.1")); err != nil {
		t.Fatalf("execute after cancellation: %v", err)
	}
	st := srv.Stats()
	if st.Errors != 1 {
		t.Fatalf("errors = %d want 1", st.Errors)
	}
}

// TestCloseRejects pins shutdown semantics: Execute after Close fails with
// ErrClosed and Close is idempotent.
func TestCloseRejects(t *testing.T) {
	srv, _, _ := openSegServer(t, 0, Options{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Execute(context.Background(), ssb.QueryByID("1.1")); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestByteSemFIFO pins the admission semaphore: grants are FIFO, a waiter
// canceled while queued is skipped, and oversized requests clamp to the
// capacity instead of deadlocking.
func TestByteSemFIFO(t *testing.T) {
	s := newByteSem(100)

	// Oversized acquire clamps and runs alone.
	granted, err := s.acquire(context.Background(), 1000)
	if err != nil || granted != 100 {
		t.Fatalf("oversized acquire: granted=%d err=%v", granted, err)
	}

	// Two waiters queue behind the full semaphore in order.
	type result struct {
		id      int
		granted int64
	}
	results := make(chan result, 2)
	started := make(chan struct{}, 2)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	go func() {
		started <- struct{}{}
		g, err := s.acquire(context.Background(), 60)
		if err != nil {
			t.Errorf("waiter A: %v", err)
		}
		results <- result{1, g}
	}()
	<-started
	waitForWaiters(t, s, 1)
	go func() {
		started <- struct{}{}
		g, err := s.acquire(ctxB, 60)
		if err != nil {
			t.Errorf("waiter B: %v", err)
		}
		results <- result{2, g}
	}()
	<-started
	waitForWaiters(t, s, 2)

	// Releasing the head grant admits A (FIFO); B still blocks because
	// 60+60 > 100.
	s.release(granted)
	first := <-results
	if first.id != 1 {
		t.Fatalf("grant order violated: waiter %d admitted first", first.id)
	}
	select {
	case r := <-results:
		t.Fatalf("waiter %d admitted while semaphore full", r.id)
	case <-time.After(20 * time.Millisecond):
	}
	s.release(first.granted)
	second := <-results
	if second.id != 2 {
		t.Fatalf("waiter %d finished second, want 2", second.id)
	}
	s.release(second.granted)

	// A canceled waiter leaves the queue and later grants skip it.
	g, err := s.acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctxC, cancelC := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.acquire(ctxC, 10)
		errCh <- err
	}()
	waitForWaiters(t, s, 1)
	cancelC()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("canceled waiter returned %v", err)
	}
	s.release(g)
	if g, err := s.acquire(context.Background(), 100); err != nil || g != 100 {
		t.Fatalf("semaphore unusable after canceled waiter: granted=%d err=%v", g, err)
	}
	s.release(100)

	// Canceling a heavy head must immediately admit a lighter waiter
	// behind it that already fits — not leave it stalled until the next
	// unrelated release.
	gHold, err := s.acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	ctxH, cancelH := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := s.acquire(ctxH, 80)
		headErr <- err
	}()
	waitForWaiters(t, s, 1)
	lightGrant := make(chan int64, 1)
	go func() {
		g, err := s.acquire(context.Background(), 20)
		if err != nil {
			t.Errorf("light waiter: %v", err)
		}
		lightGrant <- g
	}()
	waitForWaiters(t, s, 2)
	cancelH()
	if err := <-headErr; err != context.Canceled {
		t.Fatalf("canceled head returned %v", err)
	}
	select {
	case g := <-lightGrant:
		s.release(g)
	case <-time.After(2 * time.Second):
		t.Fatal("light waiter stalled behind a canceled head")
	}
	s.release(gHold)
}

// waitForWaiters spins until the semaphore queue holds n entries.
func waitForWaiters(t *testing.T, s *byteSem, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		queued := len(s.waiters)
		s.mu.Unlock()
		if queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResultCacheLRU pins the cache: repeated keys hit, capacity evicts
// the least recently used entry, and disabled caches never hit.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r := ssb.NewResult("x", nil)
	c.put("a", r, core.RunStats{})
	c.put("b", r, core.RunStats{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", r, core.RunStats{}) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	hits, misses, entries := c.counters()
	if hits != 3 || misses != 1 || entries != 2 {
		t.Fatalf("hits=%d misses=%d entries=%d", hits, misses, entries)
	}

	off := newResultCache(-1)
	off.put("a", r, core.RunStats{})
	if _, ok := off.get("a"); ok {
		t.Fatal("disabled cache served a hit")
	}
}
