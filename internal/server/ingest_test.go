package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/ssb"
)

// countQ is the count(*) probe the ingest tests observe epochs through.
var countQ = &ssb.Query{ID: "count", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}

// newIngestServer builds a segment-backed server with the write path on.
func newIngestServer(t *testing.T, opts Options) (*Server, *ssb.Data) {
	t.Helper()
	opts.Ingest = true
	srv, data, _ := openSegServer(t, 0, opts)
	return srv, data
}

// TestInsertVisibilityAndCacheEpoch pins the serving-layer write-path
// contract: a query after an insert sees it, the result cache never serves
// a pre-insert entry for a post-insert query (epoch keying), and repeated
// queries within one epoch still hit.
func TestInsertVisibilityAndCacheEpoch(t *testing.T) {
	srv, data := newIngestServer(t, Options{CacheEntries: 32})
	defer srv.Close()
	base := int64(data.NumLineorders())
	ctx := context.Background()

	r1, err := srv.Execute(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Result.Rows[0].Agg != base || r1.Cached {
		t.Fatalf("first count: agg=%d cached=%v, want %d/false", r1.Result.Rows[0].Agg, r1.Cached, base)
	}
	r2, err := srv.Execute(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("same-epoch repeat was not served from cache")
	}

	shape, err := srv.DB().IngestShape()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ssb.RandBatch(3, 2500, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Insert(batch); err != nil {
		t.Fatal(err)
	}

	r3, err := srv.Execute(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("post-insert query served from the pre-insert cache entry — epoch keying broken")
	}
	if got := r3.Result.Rows[0].Agg; got != base+2500 {
		t.Fatalf("post-insert count %d, want %d", got, base+2500)
	}
	st := srv.Stats()
	if st.Inserts != 1 || st.InsertedRows != 2500 || !st.Delta.Enabled || st.Delta.Epoch != 2500 {
		t.Fatalf("stats after insert: %+v", st)
	}
}

// TestInsertHTTP drives the write path through the real HTTP surface:
// seeded batches, explicit rows, validation failures, and /stats shape.
func TestInsertHTTP(t *testing.T) {
	srv, data := newIngestServer(t, Options{CacheEntries: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := data.NumLineorders()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	if code, out := post(`{"seed":9,"count":1500}`); code != http.StatusOK || out["inserted"].(float64) != 1500 {
		t.Fatalf("seeded insert: code=%d out=%v", code, out)
	}
	row := `{"rows":[{"custkey":1,"suppkey":1,"partkey":1,"orderdate":19940105,"quantity":9,"extendedprice":5000,"discount":2,"revenue":4900,"supplycost":3000}]}`
	if code, out := post(row); code != http.StatusOK || out["inserted"].(float64) != 1 {
		t.Fatalf("row insert: code=%d out=%v", code, out)
	}
	if code, out := post(`{"rows":[{"custkey":999999999,"suppkey":1,"partkey":1,"orderdate":19940105}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad custkey accepted: code=%d out=%v", code, out)
	}
	if code, _ := post(`{"seed":1,"rows":[{"custkey":1}]}`); code != http.StatusBadRequest {
		t.Fatalf("ambiguous selector accepted: code=%d", code)
	}

	resp, err := http.Get(ts.URL + "/query?sql=select+count(*)+from+lineorder")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rows []struct {
			Aggs []int64 `json:"aggs"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, want := body.Rows[0].Aggs[0], int64(base+1501); got != want {
		t.Fatalf("HTTP count after inserts = %d, want %d", got, want)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Server struct {
			Inserts int64 `json:"inserts"`
			Delta   struct {
				Enabled     bool  `json:"enabled"`
				PendingRows int64 `json:"pending_rows"`
			} `json:"delta"`
		} `json:"server"`
		Pool struct {
			Appends int64 `json:"appends"`
		} `json:"pool"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Server.Inserts != 2 || !stats.Server.Delta.Enabled || stats.Server.Delta.PendingRows != 1501 {
		t.Fatalf("/stats shape: %+v", stats.Server)
	}
}

// TestDeleteHTTP drives deletion vectors through the real HTTP surface
// with a WAL attached: count before, /delete a value predicate, count
// after (zero), idempotent re-delete, validation failures, and the /stats
// durability counters.
func TestDeleteHTTP(t *testing.T) {
	srv, _ := newIngestServer(t, Options{
		CacheEntries: -1,
		WALPath:      filepath.Join(t.TempDir(), "ingest.wal"),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	shape, err := srv.DB().IngestShape()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ssb.RandBatch(17, 3000, shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Insert(batch); err != nil {
		t.Fatal(err)
	}

	qtyQ := &ssb.Query{ID: "qty30", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}},
		FactFilters: []ssb.FactFilter{{Col: "quantity", Pred: compress.Eq(30)}}}
	pre, err := srv.Execute(ctx, qtyQ)
	if err != nil {
		t.Fatal(err)
	}
	matching := pre.Result.Rows[0].Agg
	if matching == 0 {
		t.Fatal("no rows with quantity=30; the fixture lost its value domain")
	}
	total, err := srv.Execute(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/delete", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	code, out := post(`{"filters":[{"col":"quantity","op":"eq","a":30}]}`)
	if code != http.StatusOK || int64(out["deleted"].(float64)) != matching {
		t.Fatalf("delete: code=%d out=%v, want 200/%d deleted", code, out, matching)
	}
	after, err := srv.Execute(ctx, qtyQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Result.Rows[0].Agg; got != 0 {
		t.Fatalf("post-delete quantity=30 count %d, want 0", got)
	}
	afterTotal, err := srv.Execute(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := afterTotal.Result.Rows[0].Agg, total.Result.Rows[0].Agg-matching; got != want {
		t.Fatalf("post-delete count(*) %d, want %d", got, want)
	}
	// Idempotent: the same predicate now tombstones nothing.
	if code, out := post(`{"filters":[{"col":"quantity","op":"eq","a":30}]}`); code != http.StatusOK || out["deleted"].(float64) != 0 {
		t.Fatalf("re-delete: code=%d out=%v, want 200/0 deleted", code, out)
	}
	// Validation: empty conjunction and non-identity columns are rejected.
	if code, _ := post(`{"filters":[]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("empty filter list accepted: code=%d", code)
	}
	if code, _ := post(`{"filters":[{"col":"custkey","op":"eq","a":1}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("delete by remapped FK column accepted: code=%d", code)
	}
	if code, _ := post(`{"filters":[{"col":"quantity","op":"frob","a":1}]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op accepted: code=%d", code)
	}

	// Two accepted operations (the second tombstoned nothing), one batch of
	// rows actually removed.
	st := srv.Stats()
	if st.Deletes != 2 || st.DeletedRows != matching {
		t.Fatalf("stats after delete: deletes=%d deleted_rows=%d, want 2/%d", st.Deletes, st.DeletedRows, matching)
	}
	if !st.WAL.Enabled || st.WAL.Appends == 0 || st.WAL.Syncs == 0 {
		t.Fatalf("WAL stats not surfaced: %+v", st.WAL)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Server struct {
			Deletes int64 `json:"deletes"`
			WAL     struct {
				Enabled bool  `json:"enabled"`
				Appends int64 `json:"appends"`
			} `json:"wal"`
		} `json:"server"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Server.Deletes != 2 || !stats.Server.WAL.Enabled || stats.Server.WAL.Appends == 0 {
		t.Fatalf("/stats durability shape: %+v", stats.Server)
	}
}

// TestInsertBackpressureRetryAfter pins the 503 + Retry-After contract:
// once the write store is over its byte cap, /insert tells well-behaved
// clients how long to pace off instead of hammering.
func TestInsertBackpressureRetryAfter(t *testing.T) {
	// A 1-byte cap: the first insert lands (the store is empty), every
	// subsequent one bounces until compaction drains — which a 2.5K-row
	// delta never triggers (64K block threshold), so the 503 is stable.
	srv, _ := newIngestServer(t, Options{CacheEntries: -1, IngestMaxBytes: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/insert", "application/json",
			bytes.NewBufferString(`{"seed":5,"count":2500}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first insert into an empty store: %d, want 200", resp.StatusCode)
	}
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert over cap: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 backpressure response carries no Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
}

// TestIngestDisabled pins the 501 for /insert on a read-only server.
func TestIngestDisabled(t *testing.T) {
	srv, _, _ := openSegServer(t, 0, Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBufferString(`{"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert on read-only server: %d, want 501", resp.StatusCode)
	}
}

// TestConcurrentInsertQueryStress races inserters against query clients on
// one shared server (run with -race in CI): every count observation must be
// batch-aligned and monotone, the final state must account for every row,
// and Close must flush the remainder with zero pinned frames.
func TestConcurrentInsertQueryStress(t *testing.T) {
	srv, data := newIngestServer(t, Options{Workers: 2, CacheEntries: 64})
	base := int64(data.NumLineorders())
	shape, err := srv.DB().IngestShape()
	if err != nil {
		t.Fatal(err)
	}

	const inserters = 3
	const batches = 6
	const batchRows = 4000
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, inserters+4)
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch, err := ssb.RandBatch(int64(i*100+b), batchRows, shape)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := srv.Insert(batch); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		qwg.Add(1)
		go func(c int) {
			defer qwg.Done()
			last := base
			for {
				select {
				case <-stop:
					return
				default:
				}
				var q *ssb.Query = countQ
				if c%2 == 1 {
					q = ssb.RandQuery(int64(c) * 31)
				}
				resp, err := srv.Execute(ctx, q)
				if err != nil {
					errCh <- err
					return
				}
				if q == countQ {
					got := resp.Result.Rows[0].Agg
					if got < last || (got-base)%batchRows != 0 {
						errCh <- fmt.Errorf("count invariant violated: got %d after %d (base %d)", got, last, base)
						return
					}
					last = got
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close (drain+flush): %v", err)
	}
	ds := srv.DB().IngestStats()
	want := int64(inserters * batches * batchRows)
	if ds.Epoch != want || ds.PendingRows != 0 {
		t.Fatalf("after close: epoch=%d pending=%d, want %d/0", ds.Epoch, ds.PendingRows, want)
	}
	if seg := srv.DB().SegmentStore(); seg != nil {
		if p := seg.Pool().PinnedFrames(); p != 0 {
			t.Errorf("%d frames pinned after close", p)
		}
	}
}
