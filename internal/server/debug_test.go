package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// getStrictJSON fetches u and decodes the body into out rejecting unknown
// fields, so the wire shape and the Go mirror can't drift apart silently.
func getStrictJSON(t *testing.T, client *http.Client, u string, out any) int {
	t.Helper()
	resp, err := client.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		t.Fatalf("GET %s: strict decode: %v", u, err)
	}
	return resp.StatusCode
}

// TestDebugQueriesEndpoint drives an engine run, a cache hit, and a failed
// query, then pins the flight recorder's wire shape: newest first, the hit
// marked cached with engine "cache", the failure carrying its error, the
// run carrying engine/config/workers and a non-empty counter rollup.
func TestDebugQueriesEndpoint(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{Workers: 2, HistoryInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/query?id=1.1",  // engine run
		"/query?id=1.1",  // cache hit
		"/query?id=nope", // selector failures never reach Execute
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var out debugQueriesResponse
	if code := getStrictJSON(t, ts.Client(), ts.URL+"/debug/queries?n=10", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// The bad-SQL request failed at parse, before Execute: two records.
	if out.Count != 2 || len(out.Queries) != 2 {
		t.Fatalf("count=%d queries=%d, want 2 records", out.Count, len(out.Queries))
	}
	hit, run := out.Queries[0], out.Queries[1]
	if hit.Seq <= run.Seq {
		t.Fatalf("not newest-first: seq %d then %d", hit.Seq, run.Seq)
	}
	if !hit.Cached || hit.Engine != "cache" || hit.Query != "1.1" {
		t.Fatalf("cache-hit record: %+v", hit)
	}
	if run.Cached || run.Engine == "" || run.Config == "" || run.Workers < 1 {
		t.Fatalf("engine record: %+v", run)
	}
	if run.ExecNs <= 0 || run.Totals.RowsIn == 0 || run.Totals.BytesRead == 0 {
		t.Fatalf("engine record has a degenerate rollup: %+v", run)
	}
	if run.UnixNano <= 0 || hit.UnixNano < run.UnixNano {
		t.Fatalf("timestamps: run=%d hit=%d", run.UnixNano, hit.UnixNano)
	}

	// An execution-level failure (unknown column reaches the engine? no —
	// use an admission-style failure via a canceled context is unit-level).
	// The wire contract for errors is covered by the recorder unit tests;
	// here pin that n= bounds the response.
	var one debugQueriesResponse
	getStrictJSON(t, ts.Client(), ts.URL+"/debug/queries?n=1", &one)
	if one.Count != 1 || one.Queries[0].Seq != hit.Seq {
		t.Fatalf("n=1: %+v", one)
	}
	resp, err := ts.Client().Get(ts.URL + "/debug/queries?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d", resp.StatusCode)
	}
}

// TestDebugSummaryEndpoint pins /debug/summary: the rollup must reflect
// the traffic just driven, bucketed by engine×flight.
func TestDebugSummaryEndpoint(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{HistoryInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, id := range []string{"1.1", "1.2", "4.1", "1.1"} { // last is a hit
		resp, err := ts.Client().Get(ts.URL + "/query?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var sum struct {
		WindowNs  int64 `json:"window_ns"`
		Count     int   `json:"count"`
		Errors    int   `json:"errors"`
		CacheHits int   `json:"cache_hits"`
		Runs      int   `json:"runs"`
		P50Ns     int64 `json:"p50_ns"`
		P95Ns     int64 `json:"p95_ns"`
		P99Ns     int64 `json:"p99_ns"`
		Groups    []struct {
			Engine    string `json:"engine"`
			Flight    string `json:"flight"`
			Count     int    `json:"count"`
			Errors    int    `json:"errors"`
			CacheHits int    `json:"cache_hits"`
			Runs      int    `json:"runs"`
			P50Ns     int64  `json:"p50_ns"`
			P95Ns     int64  `json:"p95_ns"`
			P99Ns     int64  `json:"p99_ns"`
			MaxNs     int64  `json:"max_ns"`
			MeanNs    int64  `json:"mean_ns"`
		} `json:"groups"`
	}
	if code := getStrictJSON(t, ts.Client(), ts.URL+"/debug/summary", &sum); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if sum.WindowNs != int64(60*time.Second) {
		t.Fatalf("default window %d", sum.WindowNs)
	}
	if sum.Count != 4 || sum.CacheHits != 1 || sum.Errors != 0 || sum.Runs != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.P50Ns <= 0 || sum.P99Ns < sum.P50Ns {
		t.Fatalf("percentiles: p50=%d p99=%d", sum.P50Ns, sum.P99Ns)
	}
	// Flights 1 and 4 ran on the engine; the hit lands in a "cache" group.
	var flights []string
	for _, g := range sum.Groups {
		flights = append(flights, g.Engine+"/"+g.Flight)
	}
	joined := strings.Join(flights, " ")
	if !strings.Contains(joined, "cache/1") || !strings.Contains(joined, "/4") {
		t.Fatalf("groups: %v", flights)
	}
	// A zero-width future window is empty.
	var empty struct {
		WindowNs  int64           `json:"window_ns"`
		Count     int             `json:"count"`
		Errors    int             `json:"errors"`
		CacheHits int             `json:"cache_hits"`
		Runs      int             `json:"runs"`
		P50Ns     int64           `json:"p50_ns"`
		P95Ns     int64           `json:"p95_ns"`
		P99Ns     int64           `json:"p99_ns"`
		Groups    json.RawMessage `json:"groups"`
	}
	getStrictJSON(t, ts.Client(), ts.URL+"/debug/summary?window=0.000001", &empty)
	if empty.Count != 0 {
		t.Fatalf("microsecond window saw %d records", empty.Count)
	}
}

// TestMetricsHistoryEndpoint pins /metrics/history: ?sample=1 forces a
// fresh reading, counters are monotone across samples, rates appear once
// two samples exist, and types classify every series.
func TestMetricsHistoryEndpoint(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{HistoryInterval: -1, CacheEntries: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	run := func(id string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/query?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var h historyResponse
	run("1.1")
	if code := getStrictJSON(t, ts.Client(), ts.URL+"/metrics/history?sample=1", &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(h.Samples) != 1 || len(h.Rates) != 0 {
		t.Fatalf("first poll: %d samples, %d rates", len(h.Samples), len(h.Rates))
	}
	run("2.1")
	run("3.1")
	getStrictJSON(t, ts.Client(), ts.URL+"/metrics/history?sample=1", &h)
	if len(h.Samples) != 2 {
		t.Fatalf("second poll: %d samples", len(h.Samples))
	}
	first, second := h.Samples[0], h.Samples[1]
	if second.UnixNano <= first.UnixNano {
		t.Fatal("samples not in time order")
	}
	for name, typ := range h.Types {
		if typ != "counter" && typ != "gauge" {
			t.Fatalf("series %s has type %q", name, typ)
		}
		if typ == "counter" && second.Values[name] < first.Values[name] {
			t.Fatalf("counter %s went backwards: %g -> %g", name, first.Values[name], second.Values[name])
		}
	}
	if d := second.Values["ssb_queries_total"] - first.Values["ssb_queries_total"]; d != 2 {
		t.Fatalf("queries delta %g, want 2", d)
	}
	if _, ok := h.Rates["ssb_queries_total"]; !ok {
		t.Fatal("no rate for ssb_queries_total with two samples")
	}
	if h.Rates["ssb_queries_total"] <= 0 {
		t.Fatalf("qps rate %g", h.Rates["ssb_queries_total"])
	}
	if _, ok := h.Rates["ssb_in_flight_queries"]; ok {
		t.Fatal("gauge got a rate")
	}
	// Histogram expansion shows up as _count/_sum counter series.
	if h.Types["ssb_query_duration_seconds_count"] != "counter" {
		t.Fatalf("histogram count series type %q", h.Types["ssb_query_duration_seconds_count"])
	}
	// n= bounds the samples returned.
	getStrictJSON(t, ts.Client(), ts.URL+"/metrics/history?n=1", &h)
	if len(h.Samples) != 1 || h.Samples[0].UnixNano != second.UnixNano {
		t.Fatalf("n=1 returned %d samples", len(h.Samples))
	}
}

// TestQueryCachedField pins the explicit "cached" key in raw /query JSON —
// true on a result-cache hit, false on an engine run — and that the
// recorder logged the hit as such.
func TestQueryCachedField(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{HistoryInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	raw := func() string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/query?id=2.2")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := raw(); !strings.Contains(body, `"cached":false`) {
		t.Fatalf("engine run body lacks \"cached\":false: %.200s", body)
	}
	if body := raw(); !strings.Contains(body, `"cached":true`) {
		t.Fatalf("cache-hit body lacks \"cached\":true: %.200s", body)
	}
	recs := srv.Recorder().Snapshot(1)
	if len(recs) != 1 || !recs[0].Cached || recs[0].Engine != "cache" {
		t.Fatalf("recorder's newest record is not the cache hit: %+v", recs)
	}
}

// TestStatsUptimeGoroutines pins the /stats liveness basics ssb-top reads.
func TestStatsUptimeGoroutines(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{HistoryInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, key := range []string{`"uptime_seconds":`, `"goroutines":`} {
		if !strings.Contains(body, key) {
			t.Fatalf("/stats lacks %s: %.300s", key, body)
		}
	}
	var parsed struct {
		Server Stats           `json:"server"`
		Pool   json.RawMessage `json:"pool"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Server.UptimeSeconds <= 0 {
		t.Fatalf("uptime %g", parsed.Server.UptimeSeconds)
	}
	if parsed.Server.Goroutines < 2 {
		t.Fatalf("goroutines %d", parsed.Server.Goroutines)
	}
}

// TestDebugHandlerPprof pins the separate debug surface: pprof index and a
// heap profile respond, and the observability endpoints ride along.
func TestDebugHandlerPprof(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{HistoryInterval: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	for _, path := range []string{
		"/debug/pprof/", "/debug/pprof/heap?debug=1",
		"/debug/queries", "/debug/summary", "/metrics/history", "/stats", "/metrics",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
