// Package server is the concurrent query-serving layer: many clients
// execute generalized ssb.Query plans against one shared, buffer-managed
// column store at once, with the three controls single-query execution
// never needed:
//
//   - Admission control. A FIFO byte-budget semaphore (admit.go) bounds the
//     estimated transient footprint (exec.DB.EstimateFootprint: pinned
//     segments + dense aggregation arrays + position lists) of the queries
//     executing at any instant, so concurrent traffic cannot thrash a small
//     segstore.Pool into fetch-evict-refetch livelock.
//   - Cancellation. Every query runs under its caller's context (for HTTP,
//     the request context — a disconnected client is a canceled query), and
//     the executors' block loops observe it, so abandoned queries stop
//     acquiring segments within one block and leave zero pinned frames.
//   - Isolation. Each query owns its iosim.Stats and its fused-worker
//     scratch for the whole run; finished stats fold into shared
//     iosim.Atomic totals. Results are bit-identical to serial reference
//     execution no matter how queries interleave — the stress tests pin
//     exactly that.
//
// An LRU keyed by normalized SQL plus the data epoch (cache.go)
// short-circuits repeated queries. On a frozen store the epoch never moves
// and entries live forever; with ingest enabled (Options.Ingest) every
// accepted insert bumps the epoch, so entries computed before a write stop
// being addressable and age out — queries after an insert always reach the
// engine and see the write store.
package server

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
	"repro/internal/wal"
)

// ErrClosed is returned by Execute after Close has begun.
var ErrClosed = errors.New("server: closed")

// defaultAdmitBytes bounds concurrent query footprint when neither the
// options nor a bounded pool budget say otherwise.
const defaultAdmitBytes = 256 << 20

// Options configures a Server. The zero value serves the fused pipeline
// single-threaded with a 256-entry result cache and a footprint budget
// derived from the store.
type Options struct {
	// Exec is the column configuration queries run under; zero means
	// exec.FusedOpt.
	Exec exec.Config
	// Workers is the per-query worker count applied to Exec.
	Workers int
	// AdmitBytes is the admission semaphore's byte capacity: the total
	// estimated footprint allowed to execute concurrently. 0 derives it
	// from the segment store's pool budget when bounded, else 256 MB.
	AdmitBytes int64
	// CacheEntries caps the result cache (entries, not bytes); 0 means
	// 256, negative disables caching.
	CacheEntries int
	// Ingest enables the write path: /insert accepts row batches, queries
	// snapshot a consistent (sealed, delta) frontier, and a background
	// tuple mover compacts full 64K-row deltas into the segment store.
	Ingest bool
	// IngestMaxBytes caps write-store memory (0 means 256 MB; negative
	// unbounded). Inserts past the cap get backpressure (ErrWriteStoreFull
	// -> 503) until compaction drains.
	IngestMaxBytes int64
	// WALPath, when non-empty (and Ingest is on), attaches a write-ahead
	// log: an existing log at the path is replayed before serving, and
	// every accepted insert/delete is group-committed before acking.
	WALPath string
	// WALWindow is the group-commit window: how long a commit leader waits
	// for more batches to share its fsync. Zero syncs immediately.
	WALWindow time.Duration
	// SlowQuery, when positive, enables the slow-query log: every query
	// whose execution (admission wait excluded) takes at least this long is
	// logged as one compact trace line saying where the time went.
	SlowQuery time.Duration
	// AccessLog enables one log line per HTTP request (method, path, query
	// selector, status, admission wait, total latency). Off by default —
	// the serving benchmarks must not pay per-request logging.
	AccessLog bool
	// Logf receives slow-query and access-log lines; nil means log.Printf.
	Logf func(format string, args ...any)
	// RecorderEntries caps the flight recorder's ring (last N completed
	// queries, served at /debug/queries). 0 means 512; negative keeps the
	// minimum of 1. The recorder is always on — its cost is one mutex
	// acquisition and one struct copy per query.
	RecorderEntries int
	// HistoryEntries caps the metrics-history ring (periodic registry
	// samples served at /metrics/history). 0 means 360 — an hour at the
	// default cadence.
	HistoryEntries int
	// HistoryInterval is the metrics-history sampling cadence. 0 means 10s;
	// negative disables the background sampler (tests drive Sample by hand,
	// and /metrics/history?sample=1 still works).
	HistoryInterval time.Duration
}

// Server executes queries from many goroutines against one shared DB.
type Server struct {
	db      *core.DB
	col     *exec.DB
	coreCfg core.Config
	sem     *byteSem
	cache   *resultCache

	logical iosim.Atomic

	queries      atomic.Int64
	errors       atomic.Int64
	waits        atomic.Int64 // queries that blocked in admission
	waitNs       atomic.Int64
	admitRejects atomic.Int64 // acquires that ended in cancellation
	inFlight     atomic.Int64

	ingest        bool
	inserts       atomic.Int64
	insertedRows  atomic.Int64
	deletes       atomic.Int64
	deletedRows   atomic.Int64
	wsFullRejects atomic.Int64 // inserts bounced on ErrWriteStoreFull
	retryAfters   atomic.Int64 // HTTP 503s that carried a Retry-After hint
	wal           bool

	slowQuery time.Duration
	accessLog bool
	logf      func(format string, args ...any)

	metrics   *obs.Registry
	admitHist *obs.Histogram
	durHist   *obs.Histogram
	recorder  *obs.Recorder
	history   *obs.History
	start     time.Time

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// New builds a serving layer over db. db must serve the compressed column
// engines (any in-memory build, or a segment store); the column DB is
// materialized eagerly so the first request doesn't pay the build.
func New(db *core.DB, opts Options) (*Server, error) {
	cfg := opts.Exec
	if cfg == (exec.Config{}) {
		cfg = exec.FusedOpt
	}
	if !cfg.Compression && db.Data == nil {
		return nil, fmt.Errorf("server: plain-storage configurations need the raw dataset")
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	admit := opts.AdmitBytes
	if admit <= 0 {
		admit = defaultAdmitBytes
		if st := db.SegmentStore(); st != nil && st.Pool().Budget() > 0 {
			admit = st.Pool().Budget()
		}
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = 256
	}
	s := &Server{
		db:        db,
		col:       db.ColumnDB(cfg.Compression),
		coreCfg:   core.ColumnStore(cfg),
		sem:       newByteSem(admit),
		cache:     newResultCache(entries),
		slowQuery: opts.SlowQuery,
		accessLog: opts.AccessLog,
		logf:      opts.Logf,
		start:     time.Now(),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	recEntries := opts.RecorderEntries
	if recEntries == 0 {
		recEntries = 512
	}
	s.recorder = obs.NewRecorder(recEntries)
	s.initMetrics()
	histEntries := opts.HistoryEntries
	if histEntries == 0 {
		histEntries = 360
	}
	s.history = obs.NewHistory(s.metrics, histEntries)
	if opts.Ingest {
		if !cfg.Compression {
			return nil, fmt.Errorf("server: ingest requires the compressed column engine (it carries the write store)")
		}
		maxWS := opts.IngestMaxBytes
		if maxWS == 0 {
			maxWS = 256 << 20
		}
		if maxWS < 0 {
			maxWS = 0
		}
		if err := db.EnableIngestWAL(true, maxWS, opts.WALPath, wal.Options{Window: opts.WALWindow}); err != nil {
			return nil, err
		}
		s.ingest = true
		s.wal = opts.WALPath != ""
	}
	// Start the history sampler last so no goroutine leaks when an earlier
	// option fails construction.
	if opts.HistoryInterval >= 0 {
		interval := opts.HistoryInterval
		if interval == 0 {
			interval = 10 * time.Second
		}
		s.history.Start(interval)
	}
	return s, nil
}

// Recorder exposes the always-on flight recorder (the HTTP layer's
// /debug/queries and /debug/summary render it; tests read it directly).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// History exposes the metrics-history ring behind /metrics/history.
func (s *Server) History() *obs.History { return s.history }

// Insert appends a batch of logical lineorder rows to the write store,
// returning the new epoch. Concurrent with queries and other inserters; a
// query started before this call never observes the batch, one started
// after always does.
func (s *Server) Insert(b *ssb.Lineorders) (int64, error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return 0, ErrClosed
	}
	s.wg.Add(1)
	s.closeMu.RUnlock()
	defer s.wg.Done()
	if !s.ingest {
		return 0, fmt.Errorf("server: ingest is disabled (start with Options.Ingest)")
	}
	epoch, err := s.db.Insert(b)
	if err != nil {
		if errors.Is(err, exec.ErrWriteStoreFull) {
			s.wsFullRejects.Add(1)
		}
		return 0, err
	}
	s.inserts.Add(1)
	s.insertedRows.Add(int64(b.Len()))
	return epoch, nil
}

// Delete tombstones every visible row matching all the given fact-column
// predicates, returning the count deleted and the new epoch. Durable before
// return when the server runs with a WAL; concurrent with queries and
// inserts — a query started before this call sees none of the deletions,
// one started after sees all of them.
func (s *Server) Delete(filters []ssb.FactFilter) (int64, int64, error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return 0, 0, ErrClosed
	}
	s.wg.Add(1)
	s.closeMu.RUnlock()
	defer s.wg.Done()
	if !s.ingest {
		return 0, 0, fmt.Errorf("server: ingest is disabled (start with Options.Ingest)")
	}
	deleted, err := s.db.Delete(filters)
	if err != nil {
		return 0, 0, err
	}
	s.deletes.Add(1)
	s.deletedRows.Add(deleted)
	return deleted, s.db.Epoch(), nil
}

// Config returns the column configuration queries execute under.
func (s *Server) Config() core.Config { return s.coreCfg }

// DB returns the shared database.
func (s *Server) DB() *core.DB { return s.db }

// Response is one served query: the canonical result plus what it cost.
type Response struct {
	Result *ssb.Result
	// Stats is the run's cost. For a cache hit it is the cost of the run
	// that populated the entry; Cached distinguishes the two.
	Stats  core.RunStats
	Cached bool
	// Wait is the time spent blocked in admission (zero for cache hits).
	Wait time.Duration
}

// Execute runs one query plan. It is safe for any number of concurrent
// callers; each call owns its stats and scratch end to end. Cancellation
// of ctx abandons the query at the next block boundary (releasing all
// pinned segments) or, while still queued for admission, immediately.
func (s *Server) Execute(ctx context.Context, q *ssb.Query) (*Response, error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.closeMu.RUnlock()
	defer s.wg.Done()

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.queries.Add(1)

	var key string
	if s.cache.enabled() {
		// The key carries the epoch observed *before* execution: an insert
		// landing mid-query may store a result one epoch fresher than its
		// label, which is indistinguishable from the query having run an
		// instant later; an entry is never served for a newer epoch.
		key = cacheKey(q, s.coreCfg, s.db.Epoch())
		if e, ok := s.cache.get(key); ok {
			s.recorder.Record(obs.QueryRecord{
				UnixNano: time.Now().UnixNano(),
				Query:    q.ID,
				Engine:   "cache",
				Config:   s.coreCfg.Col.Code(),
				Epoch:    s.db.Epoch(),
				Cached:   true,
			})
			return &Response{Result: e.res, Stats: e.stats, Cached: true}, nil
		}
	}

	weight := s.col.EstimateFootprint(q, s.coreCfg.Col)
	admitStart := time.Now()
	granted, err := s.sem.acquire(ctx, weight)
	if err != nil {
		s.admitRejects.Add(1)
		s.errors.Add(1)
		s.recorder.Record(obs.QueryRecord{
			UnixNano: time.Now().UnixNano(),
			Query:    q.ID,
			Epoch:    s.db.Epoch(),
			Error:    "admission: " + err.Error(),
			WaitNs:   int64(time.Since(admitStart)),
		})
		return nil, err
	}
	wait := time.Since(admitStart)
	if wait > time.Millisecond {
		s.waits.Add(1)
	}
	s.waitNs.Add(int64(wait))
	s.admitHist.ObserveDuration(wait)
	defer s.sem.release(granted)

	// The flight recorder needs a trace for its stage-counter rollup, so
	// every run carries one: the caller's (a /query?trace=1 request), else
	// one attached here. The slow-query log reuses the same trace.
	runCtx := ctx
	tr := obs.FromContext(ctx)
	if tr == nil {
		tr = &obs.Trace{}
		runCtx = obs.WithTrace(ctx, tr)
	}
	execStart := time.Now()
	res, stats, err := s.db.RunPlanCtx(runCtx, q, s.coreCfg)
	dur := time.Since(execStart)
	s.durHist.ObserveDuration(dur)
	rec := obs.QueryRecord{
		UnixNano: time.Now().UnixNano(),
		Query:    q.ID,
		Engine:   tr.Engine,
		Config:   tr.Config,
		Workers:  tr.Workers,
		Epoch:    tr.Epoch,
		WaitNs:   int64(wait),
		ExecNs:   int64(dur),
		Totals:   tr.Totals(),
	}
	if err != nil {
		s.errors.Add(1)
		rec.Error = err.Error()
		s.recorder.Record(rec)
		return nil, err
	}
	s.recorder.Record(rec)
	s.logical.AddStats(stats.IO)
	if s.slowQuery > 0 && dur >= s.slowQuery {
		s.logf("slow-query wait=%s %s", wait.Round(time.Microsecond), tr.CompactLine())
	}
	if key != "" {
		s.cache.put(key, res, stats)
	}
	return &Response{Result: res, Stats: stats, Wait: wait}, nil
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// UptimeSeconds is time since the server was built; Goroutines the
	// process's live goroutine count — the liveness basics ssb-top needs
	// without a second endpoint.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	// Queries counts Execute calls accepted (including cache hits and
	// failed runs); Errors the subset that returned an error.
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// InFlight is the number of queries currently executing or queued.
	InFlight int64 `json:"in_flight"`
	// CacheHits/CacheMisses/CacheEntries describe the result cache.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// AdmitWaits counts queries that blocked >1ms in admission;
	// AdmitWaitNs is total time all queries spent queued; AdmitRejects the
	// queries whose wait ended in cancellation instead of a grant.
	AdmitWaits   int64 `json:"admit_waits"`
	AdmitWaitNs  int64 `json:"admit_wait_ns"`
	AdmitRejects int64 `json:"admit_rejects"`
	// AdmitBytes is the admission budget.
	AdmitBytes int64 `json:"admit_bytes"`
	// Logical is the summed per-query logical I/O of completed queries.
	Logical iosim.Stats `json:"logical_io"`
	// Inserts/InsertedRows count accepted insert batches and their rows;
	// Deletes/DeletedRows the accepted delete operations and the rows they
	// tombstoned; Delta is the write store's state (zero value when ingest
	// is off).
	Inserts      int64           `json:"inserts"`
	InsertedRows int64           `json:"inserted_rows"`
	Deletes      int64           `json:"deletes"`
	DeletedRows  int64           `json:"deleted_rows"`
	Delta        exec.DeltaStats `json:"delta"`
	// WSFullRejects counts inserts bounced because the write store hit its
	// byte cap (ErrWriteStoreFull); RetryAfterSent the HTTP 503 responses
	// that carried the matching Retry-After backpressure hint.
	WSFullRejects  int64 `json:"ws_full_rejects"`
	RetryAfterSent int64 `json:"retry_after_sent"`
	// WAL is the durability log's state (zero value when no WAL).
	WAL exec.WALStats `json:"wal"`
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	hits, misses, entries := s.cache.counters()
	return Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		Queries:        s.queries.Load(),
		Errors:         s.errors.Load(),
		InFlight:       s.inFlight.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEntries:   entries,
		AdmitWaits:     s.waits.Load(),
		AdmitWaitNs:    s.waitNs.Load(),
		AdmitRejects:   s.admitRejects.Load(),
		AdmitBytes:     s.sem.cap,
		Logical:        s.logical.Snapshot(),
		Inserts:        s.inserts.Load(),
		InsertedRows:   s.insertedRows.Load(),
		Deletes:        s.deletes.Load(),
		DeletedRows:    s.deletedRows.Load(),
		Delta:          s.db.IngestStats(),
		WSFullRejects:  s.wsFullRejects.Load(),
		RetryAfterSent: s.retryAfters.Load(),
		WAL:            s.db.WALStats(),
	}
}

// Close stops accepting queries and inserts, waits for every in-flight one
// (queued or executing) to finish, then — when the server owns a write
// store — stops the tuple mover and flushes every pending delta row into
// the read-optimized store, so a clean shutdown loses nothing: zero pinned
// frames, zero executor goroutines, zero unflushed delta. A caller that
// also cancels outstanding contexts gets the shutdown promptly.
func (s *Server) Close() error {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if already {
		return nil
	}
	s.history.Stop()
	s.wg.Wait()
	if s.ingest {
		s.db.CloseIngest()
		err := s.db.FlushIngest()
		if werr := s.db.CloseWAL(); err == nil {
			err = werr
		}
		return err
	}
	return nil
}
