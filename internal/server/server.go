// Package server is the concurrent query-serving layer: many clients
// execute generalized ssb.Query plans against one shared, buffer-managed
// column store at once, with the three controls single-query execution
// never needed:
//
//   - Admission control. A FIFO byte-budget semaphore (admit.go) bounds the
//     estimated transient footprint (exec.DB.EstimateFootprint: pinned
//     segments + dense aggregation arrays + position lists) of the queries
//     executing at any instant, so concurrent traffic cannot thrash a small
//     segstore.Pool into fetch-evict-refetch livelock.
//   - Cancellation. Every query runs under its caller's context (for HTTP,
//     the request context — a disconnected client is a canceled query), and
//     the executors' block loops observe it, so abandoned queries stop
//     acquiring segments within one block and leave zero pinned frames.
//   - Isolation. Each query owns its iosim.Stats and its fused-worker
//     scratch for the whole run; finished stats fold into shared
//     iosim.Atomic totals. Results are bit-identical to serial reference
//     execution no matter how queries interleave — the stress tests pin
//     exactly that.
//
// A normalized-SQL-keyed LRU (cache.go) short-circuits repeated queries;
// the backing data is immutable so entries never go stale.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/ssb"
)

// ErrClosed is returned by Execute after Close has begun.
var ErrClosed = errors.New("server: closed")

// defaultAdmitBytes bounds concurrent query footprint when neither the
// options nor a bounded pool budget say otherwise.
const defaultAdmitBytes = 256 << 20

// Options configures a Server. The zero value serves the fused pipeline
// single-threaded with a 256-entry result cache and a footprint budget
// derived from the store.
type Options struct {
	// Exec is the column configuration queries run under; zero means
	// exec.FusedOpt.
	Exec exec.Config
	// Workers is the per-query worker count applied to Exec.
	Workers int
	// AdmitBytes is the admission semaphore's byte capacity: the total
	// estimated footprint allowed to execute concurrently. 0 derives it
	// from the segment store's pool budget when bounded, else 256 MB.
	AdmitBytes int64
	// CacheEntries caps the result cache (entries, not bytes); 0 means
	// 256, negative disables caching.
	CacheEntries int
}

// Server executes queries from many goroutines against one shared DB.
type Server struct {
	db      *core.DB
	col     *exec.DB
	coreCfg core.Config
	sem     *byteSem
	cache   *resultCache

	logical iosim.Atomic

	queries  atomic.Int64
	errors   atomic.Int64
	waits    atomic.Int64 // queries that blocked in admission
	waitNs   atomic.Int64
	inFlight atomic.Int64

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// New builds a serving layer over db. db must serve the compressed column
// engines (any in-memory build, or a segment store); the column DB is
// materialized eagerly so the first request doesn't pay the build.
func New(db *core.DB, opts Options) (*Server, error) {
	cfg := opts.Exec
	if cfg == (exec.Config{}) {
		cfg = exec.FusedOpt
	}
	if !cfg.Compression && db.Data == nil {
		return nil, fmt.Errorf("server: plain-storage configurations need the raw dataset")
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	admit := opts.AdmitBytes
	if admit <= 0 {
		admit = defaultAdmitBytes
		if st := db.SegmentStore(); st != nil && st.Pool().Budget() > 0 {
			admit = st.Pool().Budget()
		}
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = 256
	}
	s := &Server{
		db:      db,
		col:     db.ColumnDB(cfg.Compression),
		coreCfg: core.ColumnStore(cfg),
		sem:     newByteSem(admit),
		cache:   newResultCache(entries),
	}
	return s, nil
}

// Config returns the column configuration queries execute under.
func (s *Server) Config() core.Config { return s.coreCfg }

// DB returns the shared database.
func (s *Server) DB() *core.DB { return s.db }

// Response is one served query: the canonical result plus what it cost.
type Response struct {
	Result *ssb.Result
	// Stats is the run's cost. For a cache hit it is the cost of the run
	// that populated the entry; Cached distinguishes the two.
	Stats  core.RunStats
	Cached bool
	// Wait is the time spent blocked in admission (zero for cache hits).
	Wait time.Duration
}

// Execute runs one query plan. It is safe for any number of concurrent
// callers; each call owns its stats and scratch end to end. Cancellation
// of ctx abandons the query at the next block boundary (releasing all
// pinned segments) or, while still queued for admission, immediately.
func (s *Server) Execute(ctx context.Context, q *ssb.Query) (*Response, error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.closeMu.RUnlock()
	defer s.wg.Done()

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.queries.Add(1)

	var key string
	if s.cache.enabled() {
		key = cacheKey(q, s.coreCfg)
		if e, ok := s.cache.get(key); ok {
			return &Response{Result: e.res, Stats: e.stats, Cached: true}, nil
		}
	}

	weight := s.col.EstimateFootprint(q, s.coreCfg.Col)
	admitStart := time.Now()
	granted, err := s.sem.acquire(ctx, weight)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	wait := time.Since(admitStart)
	if wait > time.Millisecond {
		s.waits.Add(1)
	}
	s.waitNs.Add(int64(wait))
	defer s.sem.release(granted)

	res, stats, err := s.db.RunPlanCtx(ctx, q, s.coreCfg)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.logical.AddStats(stats.IO)
	if key != "" {
		s.cache.put(key, res, stats)
	}
	return &Response{Result: res, Stats: stats, Wait: wait}, nil
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Queries counts Execute calls accepted (including cache hits and
	// failed runs); Errors the subset that returned an error.
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// InFlight is the number of queries currently executing or queued.
	InFlight int64 `json:"in_flight"`
	// CacheHits/CacheMisses/CacheEntries describe the result cache.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// AdmitWaits counts queries that blocked >1ms in admission;
	// AdmitWaitNs is total time all queries spent queued.
	AdmitWaits  int64 `json:"admit_waits"`
	AdmitWaitNs int64 `json:"admit_wait_ns"`
	// AdmitBytes is the admission budget.
	AdmitBytes int64 `json:"admit_bytes"`
	// Logical is the summed per-query logical I/O of completed queries.
	Logical iosim.Stats `json:"logical_io"`
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	hits, misses, entries := s.cache.counters()
	return Stats{
		Queries:      s.queries.Load(),
		Errors:       s.errors.Load(),
		InFlight:     s.inFlight.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		AdmitWaits:   s.waits.Load(),
		AdmitWaitNs:  s.waitNs.Load(),
		AdmitBytes:   s.sem.cap,
		Logical:      s.logical.Snapshot(),
	}
}

// Close stops accepting queries and waits for every in-flight one (queued
// or executing) to finish, so a caller that also cancels outstanding
// contexts gets a prompt, leak-free shutdown: zero pinned frames, zero
// executor goroutines.
func (s *Server) Close() error {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if already {
		return nil
	}
	s.wg.Wait()
	return nil
}
