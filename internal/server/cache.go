package server

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/ssb"
)

// resultCache is an LRU over canonical query keys. The stored data the
// server runs on is immutable (a generated dataset or a read-only segment
// file), so entries never need invalidation: a key's result is the result.
// Cached *ssb.Result values are shared between responses and must be
// treated as read-only by everyone downstream.
type resultCache struct {
	mu    sync.Mutex
	cap   int                      // immutable after newResultCache
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu

	hits, misses int64 // guarded by mu
}

// cacheEntry is one cached result plus the stats of the run that produced
// it (a cache hit reports the original run's cost alongside zero cost of
// its own).
type cacheEntry struct {
	key   string
	res   *ssb.Result
	stats core.RunStats
}

// newResultCache returns a cache holding at most cap entries; cap <= 0
// disables caching (every lookup misses, stores are dropped).
func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), items: map[string]*list.Element{}}
}

// enabled reports whether the cache stores anything, so callers can skip
// building keys for a disabled cache.
func (c *resultCache) enabled() bool { return c.cap > 0 }

// cacheKey renders the canonical identity of one execution: the normalized
// SQL of the plan (Query.SQL is deterministic for equivalent plans — it is
// the same text TestDifferential round-trips through the parser), the
// engine configuration knobs that could change the rows, and the data
// epoch. The epoch bumps on every accepted insert, so an entry computed
// before a write can never answer a query issued after it — stale entries
// simply stop being addressable and age out of the LRU. On a frozen DB the
// epoch is constantly zero and keys reduce to the old scheme.
func cacheKey(q *ssb.Query, cfg core.Config, epoch int64) string {
	code := cfg.Col.Code()
	if cfg.Col.Fused {
		code += "+f"
	}
	return q.SQL() + "\x00" + code + "\x00" + strconv.FormatInt(epoch, 10)
}

// get returns the cached entry for key, promoting it to most recent.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a result, evicting the least recently used entry past cap.
func (c *resultCache) put(key string, res *ssb.Result, stats core.RunStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, stats: stats})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// counters returns hit/miss totals and the current entry count.
func (c *resultCache) counters() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
