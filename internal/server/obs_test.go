package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ssb"
)

// logCapture is a concurrency-safe Logf sink for asserting on slow-query
// and access-log lines.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (c *logCapture) logf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

func (c *logCapture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

// scrape fetches /metrics and returns the parsed samples, failing the test
// on anything a Prometheus scraper would reject.
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d has no value: %q", i+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d value unparseable: %q", i+1, line)
		}
		values[line[:sp]] = v
	}
	return values
}

// TestMetricsEndpoint drives real traffic and pins the scrape against the
// server's own /stats counters: queries, cache hits, and the execution
// histogram must reflect exactly what ran.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := openSegServer(t, 1<<20, Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Same query twice: one engine execution, one cache hit.
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/query?id=1.1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	v := scrape(t, ts)
	for _, fam := range []string{
		"ssb_queries_total", "ssb_query_errors_total", "ssb_cache_hits_total",
		"ssb_cache_misses_total", "ssb_admission_rejects_total",
		"ssb_inserts_total", "ssb_deletes_total", "ssb_wal_fsyncs_total",
		"ssb_pool_evictions_total", "ssb_in_flight_queries",
		"ssb_pool_resident_bytes", "ssb_pool_resident_logical_bytes",
		"ssb_pool_pinned_frames", "ssb_ws_pending_bytes",
		"ssb_ws_full_rejects_total", "ssb_retry_after_sent_total",
	} {
		if _, ok := v[fam]; !ok {
			t.Errorf("family %s missing from scrape", fam)
		}
	}
	if v["ssb_queries_total"] != 2 || v["ssb_cache_hits_total"] != 1 || v["ssb_cache_misses_total"] != 1 {
		t.Fatalf("counters: queries=%g hits=%g misses=%g",
			v["ssb_queries_total"], v["ssb_cache_hits_total"], v["ssb_cache_misses_total"])
	}
	// The histogram sees engine executions only (the cache hit skips it),
	// and its +Inf bucket equals its count.
	if v["ssb_query_duration_seconds_count"] != 1 {
		t.Fatalf("duration count %g, want 1", v["ssb_query_duration_seconds_count"])
	}
	if v[`ssb_query_duration_seconds_bucket{le="+Inf"}`] != v["ssb_query_duration_seconds_count"] {
		t.Fatal("+Inf bucket != count")
	}
	if v["ssb_pool_resident_bytes"] <= 0 {
		t.Fatalf("pool resident %g after a segment-backed query", v["ssb_pool_resident_bytes"])
	}
	// Scrape-time reads: one more query moves the counter with no metric
	// bookkeeping on the query path.
	resp, err := ts.Client().Get(ts.URL + "/query?id=2.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v2 := scrape(t, ts); v2["ssb_queries_total"] != 3 {
		t.Fatalf("second scrape queries=%g, want 3", v2["ssb_queries_total"])
	}
}

// TestQueryTraceParam pins /query?trace=1: an engine execution returns the
// per-stage trace, a cache hit returns none (the cached entry's run
// predates the request).
func TestQueryTraceParam(t *testing.T) {
	srv, data, _ := openSegServer(t, 1<<20, Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var first queryResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/query?id=1.1&trace=1", &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached || first.Trace == nil {
		t.Fatalf("first run: cached=%t trace=%v", first.Cached, first.Trace)
	}
	if first.Trace.Engine == "" || len(first.Trace.Stages) == 0 {
		t.Fatalf("degenerate trace: %+v", first.Trace)
	}
	var tot obs.StageCounters
	for _, s := range first.Trace.Stages {
		tot.Add(s.StageCounters)
	}
	if tot.BytesRead != first.IOBytes {
		t.Fatalf("trace bytes %d != response io_bytes %d", tot.BytesRead, first.IOBytes)
	}
	checkRows(t, "traced", first, ssb.Reference(data, ssb.QueryByID("1.1")))

	var second queryResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/query?id=1.1&trace=1", &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !second.Cached || second.Trace != nil {
		t.Fatalf("cache hit: cached=%t trace=%v", second.Cached, second.Trace)
	}
	// Untraced requests must never pay for or carry a trace.
	var plain queryResponse
	getJSON(t, ts.Client(), ts.URL+"/query?id=2.1", &plain)
	if plain.Trace != nil {
		t.Fatal("untraced request returned a trace")
	}
}

// TestSlowQueryLog sets the threshold to zero-ish so every engine run is
// "slow" and must emit one compact line carrying the plan shape.
func TestSlowQueryLog(t *testing.T) {
	cap := &logCapture{}
	srv, _, _ := openSegServer(t, 1<<20, Options{SlowQuery: time.Nanosecond, Logf: cap.logf})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/query?id=1.1", "/query?id=1.1", "/query?id=3.2&trace=1"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	lines := cap.all()
	// Three requests, but the second was a cache hit: two engine runs, two
	// slow lines (the traced request reuses its own trace).
	var slow []string
	for _, l := range lines {
		if strings.Contains(l, "slow-query") {
			slow = append(slow, l)
		}
	}
	if len(slow) != 2 {
		t.Fatalf("got %d slow lines, want 2: %q", len(slow), lines)
	}
	for _, l := range slow {
		if !strings.Contains(l, "engine=") || !strings.Contains(l, "stages=[") {
			t.Fatalf("slow line missing trace content: %q", l)
		}
	}
	if !strings.Contains(slow[0], "query=1.1") || !strings.Contains(slow[1], "query=3.2") {
		t.Fatalf("slow lines name the wrong queries: %q", slow)
	}
}

// TestAccessLog pins the per-request line: method, path, resolved
// selector, status, and that disabling it (the default) logs nothing.
func TestAccessLog(t *testing.T) {
	cap := &logCapture{}
	srv, _, _ := openSegServer(t, 1<<20, Options{AccessLog: true, Logf: cap.logf})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/query?id=1.1", "/query?sql=select+count%28%2A%29+from+lineorder", "/stats", "/query?id=nope"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	lines := cap.all()
	if len(lines) != 4 {
		t.Fatalf("got %d access lines, want 4: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "access 200 GET /query q=1.1") {
		t.Fatalf("id line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "q=sql=") || strings.Contains(lines[1], "count(") {
		t.Fatalf("sql line must carry a hash, not the text: %q", lines[1])
	}
	if !strings.Contains(lines[2], "access 200 GET /stats") {
		t.Fatalf("stats line: %q", lines[2])
	}
	if !strings.Contains(lines[3], "access 400 GET /query") {
		t.Fatalf("bad-request line: %q", lines[3])
	}

	quiet := &logCapture{}
	srv2, _, _ := openSegServer(t, 1<<20, Options{Logf: quiet.logf})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Get(ts2.URL + "/query?id=1.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := len(quiet.all()); n != 0 {
		t.Fatalf("access log off but %d lines logged", n)
	}
}

// TestBackpressureCounters extends the 503/Retry-After contract with its
// accounting: the server must count both the ErrWriteStoreFull rejections
// and the Retry-After responses, in /stats and /metrics alike.
func TestBackpressureCounters(t *testing.T) {
	srv, _ := newIngestServer(t, Options{CacheEntries: -1, IngestMaxBytes: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/insert", "application/json",
			bytes.NewBufferString(`{"seed":5,"count":2500}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("first insert: %d", code)
	}
	for i := 0; i < 2; i++ {
		if code := post(); code != http.StatusServiceUnavailable {
			t.Fatalf("insert over cap: %d", code)
		}
	}
	st := srv.Stats()
	if st.WSFullRejects != 2 || st.RetryAfterSent != 2 {
		t.Fatalf("ws_full_rejects=%d retry_after_sent=%d, want 2/2", st.WSFullRejects, st.RetryAfterSent)
	}
	v := scrape(t, ts)
	if v["ssb_ws_full_rejects_total"] != 2 || v["ssb_retry_after_sent_total"] != 2 {
		t.Fatalf("metrics: ws_full=%g retry_after=%g", v["ssb_ws_full_rejects_total"], v["ssb_retry_after_sent_total"])
	}
	if v["ssb_inserts_total"] != 1 {
		t.Fatalf("accepted inserts %g, want 1", v["ssb_inserts_total"])
	}
}
