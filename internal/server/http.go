package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"

	"repro/internal/compress"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/ssb"
)

// queryRequest is the POST body of /query. Exactly one of ID, SQL or Seed
// selects the plan.
type queryRequest struct {
	// ID names one of the thirteen fixed SSBM queries ("1.1" .. "4.3").
	ID string `json:"id,omitempty"`
	// SQL is an ad-hoc query in the SSBM dialect.
	SQL string `json:"sql,omitempty"`
	// Seed runs the seeded random plan ssb.RandQuery(*Seed) — the same
	// plan space the fuzz and stress harnesses draw from. A pointer so
	// seed 0 is expressible.
	Seed *int64 `json:"seed,omitempty"`
	// Trace requests a per-stage execution trace in the response (GET:
	// trace=1). Cache hits carry no trace — the entry's run predates the
	// request.
	Trace bool `json:"trace,omitempty"`
}

// queryResponse is the JSON shape of one served query.
type queryResponse struct {
	ID     string     `json:"id"`
	SQL    string     `json:"sql"`
	Rows   []queryRow `json:"rows"`
	Cached bool       `json:"cached"`
	// WaitNs is admission queueing, CPUNs measured execution, IOBytes /
	// IOSeeks the logical I/O, TotalNs the paper-comparable total (CPU +
	// modeled disk time).
	WaitNs  int64 `json:"wait_ns"`
	CPUNs   int64 `json:"cpu_ns"`
	IOBytes int64 `json:"io_bytes"`
	IOSeeks int64 `json:"io_seeks"`
	TotalNs int64 `json:"total_ns"`
	// Trace is the per-stage execution trace, present only when the request
	// asked for one (trace=1) and the query actually ran (not a cache hit).
	Trace *obs.Trace `json:"trace,omitempty"`
}

// queryRow mirrors ssb.ResultRow with the aggregate list always explicit.
type queryRow struct {
	Keys []string `json:"keys,omitempty"`
	Aggs []int64  `json:"aggs"`
}

// insertRequest is the POST body of /insert: either explicit rows or a
// seeded server-side batch (seed + count), which is how the bench and CI
// harnesses drive insert load without shipping row payloads.
type insertRequest struct {
	Seed  *int64      `json:"seed,omitempty"`
	Count int         `json:"count,omitempty"`
	Rows  []insertRow `json:"rows,omitempty"`
}

// insertRow is one logical lineorder row. Foreign keys are logical
// (custkey/suppkey/partkey as generated, orderdate as yyyymmdd datekey);
// empty string attributes default to the first dictionary value.
type insertRow struct {
	OrderKey      int32  `json:"orderkey"`
	LineNumber    int32  `json:"linenumber"`
	CustKey       int32  `json:"custkey"`
	PartKey       int32  `json:"partkey"`
	SuppKey       int32  `json:"suppkey"`
	OrderDate     int32  `json:"orderdate"`
	OrdPriority   string `json:"ordpriority,omitempty"`
	ShipPriority  int32  `json:"shippriority"`
	Quantity      int32  `json:"quantity"`
	ExtendedPrice int32  `json:"extendedprice"`
	OrdTotalPrice int32  `json:"ordtotalprice"`
	Discount      int32  `json:"discount"`
	Revenue       int32  `json:"revenue"`
	SupplyCost    int32  `json:"supplycost"`
	Tax           int32  `json:"tax"`
	CommitDate    int32  `json:"commitdate"`
	ShipMode      string `json:"shipmode,omitempty"`
}

// maxInsertBodyBytes bounds one /insert request body (~64 MB comfortably
// fits the seeded path's row cap; explicit-row batches larger than this
// should be split).
const maxInsertBodyBytes = 64 << 20

// retryAfterSeconds is the Retry-After hint sent with write-store
// backpressure: roughly how long one background tuple-mover pass takes on
// a loaded store, so well-behaved clients pace their retries instead of
// hammering the 503.
const retryAfterSeconds = 1

// deleteRequest is the POST body of /delete: a conjunction of predicates
// over identity-valued fact columns. Every visible row matching all of
// them is tombstoned.
type deleteRequest struct {
	Filters []deleteFilter `json:"filters"`
}

// deleteFilter is one predicate: col plus an op. eq/lt/le/gt/ge use A;
// between uses A and B; in uses Values.
type deleteFilter struct {
	Col    string  `json:"col"`
	Op     string  `json:"op"`
	A      int32   `json:"a,omitempty"`
	B      int32   `json:"b,omitempty"`
	Values []int32 `json:"values,omitempty"`
}

// pred translates the wire filter to an executor predicate.
func (f *deleteFilter) pred() (compress.Pred, error) {
	switch f.Op {
	case "eq":
		return compress.Eq(f.A), nil
	case "between":
		return compress.Between(f.A, f.B), nil
	case "lt":
		return compress.Lt(f.A), nil
	case "le":
		return compress.Le(f.A), nil
	case "gt":
		return compress.Gt(f.A), nil
	case "ge":
		return compress.Ge(f.A), nil
	case "in":
		if len(f.Values) == 0 {
			return compress.Pred{}, errors.New("op \"in\" needs a non-empty values list")
		}
		return compress.In(f.Values...), nil
	default:
		return compress.Pred{}, fmt.Errorf("unknown op %q (eq, between, lt, le, gt, ge, in)", f.Op)
	}
}

// deleteResponse reports one accepted delete operation.
type deleteResponse struct {
	Deleted int64 `json:"deleted"`
	Epoch   int64 `json:"epoch"`
}

// insertResponse reports one accepted batch.
type insertResponse struct {
	Inserted int   `json:"inserted"`
	Epoch    int64 `json:"epoch"`
	// PendingRows/PendingBytes describe the write store after the batch.
	PendingRows  int64 `json:"pending_rows"`
	PendingBytes int64 `json:"pending_bytes"`
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	Server Stats      `json:"server"`
	Pool   *poolStats `json:"pool,omitempty"`
	// Recovery is the segment store's torn-tail recovery diagnostic, set
	// when Open discarded a corrupted append and fell back to the previous
	// valid directory. Surfaced here so the evidence outlives the daemon's
	// startup log.
	Recovery string `json:"recovery,omitempty"`
}

// poolStats is the segment-store buffer pool's view (absent for in-memory
// stores).
type poolStats struct {
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	BytesRead int64 `json:"bytes_read"`
	// Resident counts compressed payload bytes (frames hold wire-native
	// blocks); ResidentLogical is the decoded 4 B/value size of the same
	// working set — their ratio is the pool's effective compression win.
	Resident        int64 `json:"resident"`
	ResidentLogical int64 `json:"resident_logical"`
	Peak            int64 `json:"peak"`
	Pinned          int   `json:"pinned_frames"`
	// Appends/AppendedBytes count tuple-mover compactions landing on the
	// backing file and their payload bytes.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
}

// Handler returns the HTTP API: POST or GET /query (id= | sql= | seed=,
// plus trace=1 for a per-stage execution trace), GET /stats, GET /metrics
// (Prometheus text exposition), and the observability read endpoints
// /debug/queries, /debug/summary, and /metrics/history (debug.go). Request
// contexts propagate into execution, so a client that disconnects cancels
// its query at the next block boundary.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.registerDebug(mux)
	if s.accessLog {
		return s.withAccessLog(mux)
	}
	return mux
}

// handleMetrics renders the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// accessRecord is filled in by handlers with what the URL alone doesn't
// say (the resolved plan selector, admission wait, cache disposition) so
// the access-log line can carry it.
type accessRecord struct {
	query  string
	wait   time.Duration
	cached bool
}

type accessKey struct{}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withAccessLog emits one line per request: method, path, plan selector,
// status, admission wait, total latency.
func (s *Server) withAccessLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &accessRecord{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), accessKey{}, rec)))
		q := rec.query
		if q == "" {
			q = "-"
		}
		s.logf("access %d %s %s q=%s cached=%t wait=%s total=%s",
			sw.status, r.Method, r.URL.Path, q, rec.cached,
			rec.wait.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	})
}

// querySelector renders the resolved plan selector for the access log: the
// SSBM id, the seed, or an FNV-64a hash of the ad-hoc SQL (logs stay
// one-line and never reproduce request text).
func (r *queryRequest) querySelector() string {
	switch {
	case r.ID != "":
		return r.ID
	case r.Seed != nil:
		return fmt.Sprintf("seed=%d", *r.Seed)
	case r.SQL != "":
		h := fnv.New64a()
		h.Write([]byte(r.SQL))
		return fmt.Sprintf("sql=%016x", h.Sum64())
	default:
		return "-"
	}
}

// handleDelete tombstones the rows matching the request's predicate
// conjunction, durably when the server runs with a WAL.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.ingest {
		httpError(w, http.StatusNotImplemented, "ingest is disabled; start the server with ingest enabled")
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInsertBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	filters := make([]ssb.FactFilter, 0, len(req.Filters))
	for _, f := range req.Filters {
		pred, err := f.pred()
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		filters = append(filters, ssb.FactFilter{Col: f.Col, Pred: pred})
	}
	deleted, epoch, err := s.Delete(filters)
	switch {
	case err == nil:
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted, Epoch: epoch})
}

// handleInsert accepts one batch of rows (explicit or seeded) and appends
// it to the write store.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.ingest {
		httpError(w, http.StatusNotImplemented, "ingest is disabled; start the server with ingest enabled")
		return
	}
	var req insertRequest
	// The explicit-rows path must be bounded like the seeded path is (its
	// row cap): without a body limit one request could materialize
	// arbitrarily much JSON in memory before validation runs.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInsertBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	batch, err := req.batch(s)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	epoch, err := s.Insert(batch)
	switch {
	case err == nil:
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, exec.ErrWriteStoreFull):
		// Backpressure: the tuple mover is behind. Retry-After tells
		// well-behaved clients how long to pace off before retrying.
		s.retryAfters.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	delta := s.db.IngestStats()
	writeJSON(w, http.StatusOK, insertResponse{
		Inserted:     batch.Len(),
		Epoch:        epoch,
		PendingRows:  delta.PendingRows,
		PendingBytes: delta.PendingBytes,
	})
}

// batch resolves the request to a logical row batch.
func (r *insertRequest) batch(s *Server) (*ssb.Lineorders, error) {
	if (r.Seed != nil) == (len(r.Rows) > 0) {
		return nil, errors.New("specify exactly one of rows or seed(+count)")
	}
	if r.Seed != nil {
		n := r.Count
		if n <= 0 {
			n = 1000
		}
		if n > 1<<22 {
			return nil, fmt.Errorf("count %d too large (max %d rows per batch)", n, 1<<22)
		}
		shape, err := s.db.IngestShape()
		if err != nil {
			return nil, err
		}
		return ssb.RandBatch(*r.Seed, n, shape)
	}
	shape, err := s.db.IngestShape()
	if err != nil {
		return nil, err
	}
	b := &ssb.Lineorders{}
	for _, row := range r.Rows {
		prio, ship := row.OrdPriority, row.ShipMode
		if prio == "" {
			prio = shape.OrdPriorities[0]
		}
		if ship == "" {
			ship = shape.ShipModes[0]
		}
		b.OrderKey = append(b.OrderKey, row.OrderKey)
		b.LineNumber = append(b.LineNumber, row.LineNumber)
		b.CustKey = append(b.CustKey, row.CustKey)
		b.PartKey = append(b.PartKey, row.PartKey)
		b.SuppKey = append(b.SuppKey, row.SuppKey)
		b.OrderDate = append(b.OrderDate, row.OrderDate)
		b.OrdPriority = append(b.OrdPriority, prio)
		b.ShipPriority = append(b.ShipPriority, row.ShipPriority)
		b.Quantity = append(b.Quantity, row.Quantity)
		b.ExtendedPrice = append(b.ExtendedPrice, row.ExtendedPrice)
		b.OrdTotalPrice = append(b.OrdTotalPrice, row.OrdTotalPrice)
		b.Discount = append(b.Discount, row.Discount)
		b.Revenue = append(b.Revenue, row.Revenue)
		b.SupplyCost = append(b.SupplyCost, row.SupplyCost)
		b.Tax = append(b.Tax, row.Tax)
		b.CommitDate = append(b.CommitDate, row.CommitDate)
		b.ShipMode = append(b.ShipMode, ship)
	}
	return b, nil
}

// handleQuery parses the plan selector, executes, and renders the result.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.ID = r.URL.Query().Get("id")
		req.SQL = r.URL.Query().Get("sql")
		if v := r.URL.Query().Get("seed"); v != "" {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad seed: "+err.Error())
				return
			}
			req.Seed = &seed
		}
		if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
			req.Trace = true
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}

	q, err := req.plan()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rec, _ := r.Context().Value(accessKey{}).(*accessRecord)
	if rec != nil {
		rec.query = req.querySelector()
	}

	ctx := r.Context()
	var tr *obs.Trace
	if req.Trace {
		tr = &obs.Trace{}
		ctx = obs.WithTrace(ctx, tr)
	}
	resp, err := s.Execute(ctx, q)
	switch {
	case err == nil:
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone or out of time; the query was abandoned at a
		// block boundary. 504 for the (rare) reader still listening.
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	if rec != nil {
		rec.wait = resp.Wait
		rec.cached = resp.Cached
	}
	out := queryResponse{
		ID:      q.ID,
		SQL:     q.SQL(),
		Rows:    make([]queryRow, 0, len(resp.Result.Rows)),
		Cached:  resp.Cached,
		WaitNs:  int64(resp.Wait),
		CPUNs:   int64(resp.Stats.Wall),
		IOBytes: resp.Stats.IO.BytesRead,
		IOSeeks: resp.Stats.IO.Seeks,
		TotalNs: int64(resp.Stats.Total),
	}
	if tr != nil && !resp.Cached {
		out.Trace = tr
	}
	for _, row := range resp.Result.Rows {
		out.Rows = append(out.Rows, queryRow{Keys: row.Keys, Aggs: row.AggValues()})
	}
	writeJSON(w, http.StatusOK, out)
}

// plan resolves the request's selector to a logical plan.
func (r *queryRequest) plan() (*ssb.Query, error) {
	selectors := 0
	for _, set := range []bool{r.ID != "", r.SQL != "", r.Seed != nil} {
		if set {
			selectors++
		}
	}
	if selectors != 1 {
		return nil, errors.New("specify exactly one of id, sql, seed")
	}
	switch {
	case r.ID != "":
		q := ssb.QueryByID(r.ID)
		if q == nil {
			return nil, errors.New("unknown SSBM query id " + r.ID)
		}
		return q, nil
	case r.Seed != nil:
		return ssb.RandQuery(*r.Seed), nil
	default:
		return sql.Parse("http", r.SQL)
	}
}

// handleStats renders server counters plus pool state for segment-backed
// stores.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := statsResponse{Server: s.Stats()}
	if st := s.db.SegmentStore(); st != nil {
		ps := st.Pool().Stats()
		out.Pool = &poolStats{
			Budget:          st.Pool().Budget(),
			Hits:            ps.Hits,
			Misses:          ps.Misses,
			Evictions:       ps.Evictions,
			BytesRead:       ps.BytesRead,
			Resident:        ps.Resident,
			ResidentLogical: ps.ResidentLogical,
			Peak:            ps.Peak,
			Pinned:          st.Pool().PinnedFrames(),
			Appends:         ps.Appends,
			AppendedBytes:   ps.AppendedBytes,
		}
		out.Recovery = st.RecoveryNote()
	}
	writeJSON(w, http.StatusOK, out)
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeJSON renders v with the status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
