package server

import (
	"context"
	"sync"
)

// byteSem is the admission-control semaphore: a FIFO weighted semaphore
// over estimated query footprint bytes. Admitting queries in arrival order
// (a waiting head blocks everything behind it) is what prevents the
// livelock a tight buffer pool invites — with free-for-all admission, many
// mid-weight queries can perpetually leapfrog a heavy one while
// collectively thrashing the pool; FIFO guarantees every query's turn
// comes, and the byte cap guarantees the admitted set fits.
type byteSem struct {
	mu      sync.Mutex
	cap     int64        // immutable after newByteSem
	used    int64        // guarded by mu
	waiters []*semWaiter // guarded by mu
}

// semWaiter is one queued acquire; ready is closed when the grant happens.
type semWaiter struct {
	n     int64
	ready chan struct{}
}

func newByteSem(cap int64) *byteSem {
	return &byteSem{cap: cap}
}

// acquire blocks until n bytes are granted or ctx is done. n is clamped to
// the semaphore's capacity, so a query whose estimate exceeds the whole
// budget still runs — alone.
func (s *byteSem) acquire(ctx context.Context, n int64) (int64, error) {
	if n > s.cap {
		n = s.cap
	}
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.used+n <= s.cap {
		s.used += n
		s.mu.Unlock()
		return n, nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: give the grant back
			// and pass it down the queue.
			s.used -= n
			s.grantLocked()
		default:
			for i, q := range s.waiters {
				if q == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
			// A canceled head may have been the only thing blocking
			// smaller waiters behind it; re-run the grant sweep so they
			// don't stall until the next unrelated release.
			s.grantLocked()
		}
		s.mu.Unlock()
		return 0, ctx.Err()
	}
}

// release returns n bytes and wakes whatever prefix of the queue now fits.
func (s *byteSem) release(n int64) {
	s.mu.Lock()
	s.used -= n
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked admits waiters in FIFO order while they fit. An idle
// semaphore always grants its head (clamping makes n <= cap, so this is
// the used == 0 case), guaranteeing progress. holds mu.
func (s *byteSem) grantLocked() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.used > 0 && s.used+w.n > s.cap {
			return
		}
		s.waiters = s.waiters[1:]
		s.used += w.n
		close(w.ready)
	}
}
