package compress

import (
	"encoding/binary"
	"testing"

	"repro/internal/bitmap"
)

// fuzzDecodeValues turns raw fuzz bytes into a value slice plus predicate
// operands. The first byte biases the value range (small domains exercise
// RLE/BitVec run and bitmap paths, large ones BitPack/Delta width logic).
func fuzzDecodeValues(data []byte) (vals []int32, a, b int32) {
	if len(data) == 0 {
		return nil, 0, 0
	}
	mode := data[0]
	data = data[1:]
	for len(data) >= 4 {
		v := int32(binary.LittleEndian.Uint32(data[:4]))
		switch mode % 4 {
		case 0:
			v = v % 8 // tiny domain: RLE / bit-vector territory
		case 1:
			v = v % 1024
		case 2:
			v = v % 1_000_000
		}
		vals = append(vals, v)
		data = data[4:]
	}
	if n := len(vals); n > 0 {
		a, b = vals[0]%97, vals[n-1]%97
		if a > b {
			a, b = b, a
		}
	}
	return vals, a, b
}

// encodersFor returns every encoding construction of vals: the five
// explicit constructors plus the storage manager's Choose. Bit-vector
// encoding is defined only for tiny cardinalities (its constructor treats
// more as a chooser bug), so it is gated exactly like the chooser gates it.
func encodersFor(vals []int32) map[string]IntBlock {
	m := map[string]IntBlock{
		"plain":   NewPlainBlock(vals),
		"rle":     NewRLEBlock(vals),
		"bitpack": NewBitPackBlock(vals),
		"delta":   NewDeltaBlock(vals),
		"choose":  Choose(vals),
	}
	if DistinctSmall(vals, maxBitVecValues) {
		m["bitvec"] = NewBitVecBlock(vals)
	}
	return m
}

// checkBlockOracle compares one encoded block against the plain-slice
// oracle: full decode, random access, Filter, FilterSet and Gather.
func checkBlockOracle(t *testing.T, name string, blk IntBlock, vals []int32, preds []Pred, setMin int32, set *bitmap.Bitmap, gatherIdx []int32) {
	t.Helper()
	n := len(vals)
	if blk.Len() != n {
		t.Fatalf("%s: Len=%d want %d", name, blk.Len(), n)
	}

	// Round-trip decode.
	got := blk.AppendTo(nil)
	if len(got) != n {
		t.Fatalf("%s: AppendTo returned %d values, want %d", name, len(got), n)
	}
	for i, v := range got {
		if v != vals[i] {
			t.Fatalf("%s: decode[%d]=%d want %d", name, i, v, vals[i])
		}
	}
	if n > 0 {
		wantMn, wantMx := minMax(vals)
		mn, mx := blk.MinMax()
		if mn != wantMn || mx != wantMx {
			t.Fatalf("%s: MinMax=(%d,%d) want (%d,%d)", name, mn, mx, wantMn, wantMx)
		}
		// Random access at a few positions.
		for _, i := range []int{0, n / 2, n - 1} {
			if blk.Get(i) != vals[i] {
				t.Fatalf("%s: Get(%d)=%d want %d", name, i, blk.Get(i), vals[i])
			}
		}
	}

	// Filter against the oracle for every predicate.
	for _, p := range preds {
		bm := bitmap.New(n)
		blk.Filter(p, 0, bm)
		for i, v := range vals {
			if bm.Get(i) != p.Match(v) {
				t.Fatalf("%s: Filter(%+v) bit %d = %v, oracle %v (value %d)",
					name, p, i, bm.Get(i), p.Match(v), v)
			}
		}
	}

	// FilterSet against the membership oracle.
	bm := bitmap.New(n)
	blk.FilterSet(set, setMin, 0, bm)
	for i, v := range vals {
		want := setContains(set, setMin, v)
		if bm.Get(i) != want {
			t.Fatalf("%s: FilterSet bit %d = %v, oracle %v (value %d, setMin %d)",
				name, i, bm.Get(i), want, v, setMin)
		}
	}

	// Gather at sorted positions.
	out := blk.Gather(gatherIdx, nil)
	if len(out) != len(gatherIdx) {
		t.Fatalf("%s: Gather returned %d values, want %d", name, len(out), len(gatherIdx))
	}
	for k, i := range gatherIdx {
		if out[k] != vals[i] {
			t.Fatalf("%s: Gather[%d] (pos %d) = %d want %d", name, k, i, out[k], vals[i])
		}
	}

	// Aggregation/selection kernels against the plain-slice oracle, with a
	// selection bitmap derived from the first predicate.
	sel := bitmap.New(n)
	if len(preds) > 0 {
		blkFilterOracle(vals, preds[0], sel)
	} else {
		sel = bitmap.NewFull(n)
	}
	checkKernelOracle(t, name, blk, vals, sel, 0)
	checkKernelOracle(t, name, blk, vals, nil, 0)
}

// blkFilterOracle sets bit i of bm for every vals[i] matching p.
func blkFilterOracle(vals []int32, p Pred, bm *bitmap.Bitmap) {
	for i, v := range vals {
		if p.Match(v) {
			bm.Set(i)
		}
	}
}

// checkKernelOracle compares AggSelect, GatherSelect and FilterFunc against
// straight loops over the decoded values. sel == nil means all-selected;
// otherwise bit base+i of sel selects vals[i].
func checkKernelOracle(t *testing.T, name string, blk IntBlock, vals []int32, sel *bitmap.Bitmap, base int) {
	t.Helper()
	selected := func(i int) bool { return sel == nil || sel.Get(base+i) }

	want := NewAggAcc()
	for i, v := range vals {
		if selected(i) {
			want.observe(v, 1)
		}
	}
	got := NewAggAcc()
	blk.AggSelect(sel, base, &got)
	if got != want {
		t.Fatalf("%s: AggSelect=%+v oracle=%+v (base %d)", name, got, want, base)
	}

	var wantVals []int32
	for i, v := range vals {
		if selected(i) {
			wantVals = append(wantVals, v)
		}
	}
	gotVals := blk.GatherSelect(sel, base, nil)
	if len(gotVals) != len(wantVals) {
		t.Fatalf("%s: GatherSelect returned %d values, want %d (base %d)",
			name, len(gotVals), len(wantVals), base)
	}
	for k := range wantVals {
		if gotVals[k] != wantVals[k] {
			t.Fatalf("%s: GatherSelect[%d]=%d want %d (base %d)",
				name, k, gotVals[k], wantVals[k], base)
		}
	}

	match := func(v int32) bool { return v%3 == 1 || v < 0 }
	bm := bitmap.New(base + len(vals) + 3)
	blk.FilterFunc(match, base, bm)
	for i, v := range vals {
		if bm.Get(base+i) != match(v) {
			t.Fatalf("%s: FilterFunc bit %d = %v, oracle %v (value %d, base %d)",
				name, i, bm.Get(base+i), match(v), v, base)
		}
	}
	for i := 0; i < base; i++ {
		if bm.Get(i) {
			t.Fatalf("%s: FilterFunc stray bit below base at %d", name, i)
		}
	}
}

// FuzzRoundTrip is the native fuzz target shared by all five encodings:
// whatever bytes arrive, encode -> decode/Filter/FilterSet/Gather must
// agree with the plain-slice oracle on every scheme.
func FuzzRoundTrip(f *testing.F) {
	// Seed corpus: sorted runs, alternation, negatives, single values,
	// wide ranges, empty.
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{1, 5, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0})
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x80, 0x39, 0x30, 0x00, 0x00})
	f.Add([]byte{3, 0x10, 0x27, 0x00, 0x00, 0x20, 0x4e, 0x00, 0x00, 0x30, 0x75, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound block size like the storage layer does
		}
		vals, a, b := fuzzDecodeValues(data)
		n := len(vals)

		preds := []Pred{
			Eq(a), Between(a, b), Lt(b), Le(a), Gt(a), Ge(b),
			{Op: OpNe, A: a}, In(a, b, a+3),
		}
		// Membership set over a window of the value domain.
		setMin := a - 1
		set := bitmap.New(64)
		for i := 0; i < 64; i += 3 {
			set.Set(i)
		}
		var gatherIdx []int32
		for i := 0; i < n; i += 2 {
			gatherIdx = append(gatherIdx, int32(i))
		}

		for name, blk := range encodersFor(vals) {
			checkBlockOracle(t, name, blk, vals, preds, setMin, set, gatherIdx)
		}
	})
}

// FuzzAggSelect fuzzes the aggregation/selection kernels: for arbitrary
// values and an arbitrary selection pattern, AggSelect / GatherSelect /
// FilterFunc on every encoding must agree with straight loops over the
// decoded values, at aligned and unaligned bases.
func FuzzAggSelect(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0}, []byte{0xff})
	f.Add([]byte{1, 5, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0}, []byte{0xaa, 0x55})
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0x39, 0x30, 0x00, 0x00}, []byte{})
	f.Add([]byte{3, 0x10, 0x27, 0x00, 0x00, 0x20, 0x4e, 0x00, 0x00}, []byte{0x01})
	f.Fuzz(func(t *testing.T, data, selBytes []byte) {
		if len(data) > 1<<16 {
			return
		}
		vals, _, _ := fuzzDecodeValues(data)
		n := len(vals)
		for _, base := range []int{0, 64, 13} {
			sel := bitmap.New(base + n)
			for i := 0; i < n; i++ {
				if len(selBytes) > 0 && selBytes[i%len(selBytes)]&(1<<uint(i%8)) != 0 {
					sel.Set(base + i)
				}
			}
			for name, blk := range encodersFor(vals) {
				checkKernelOracle(t, name, blk, vals, sel, base)
				if base == 0 {
					checkKernelOracle(t, name, blk, vals, nil, 0)
				}
			}
		}
	})
}

// FuzzDictEncodePred fuzzes the order-preserving dictionary: EncodePred
// over codes must agree with direct string comparison for every operator.
func FuzzDictEncodePred(f *testing.F) {
	f.Add("apple\nbanana\ncherry", "banana", "cherry", uint8(0))
	f.Add("x\ny\nz\nx", "w", "zz", uint8(6))
	f.Add("", "a", "b", uint8(2))
	f.Fuzz(func(t *testing.T, blob, a, b string, opRaw uint8) {
		var vals []string
		start := 0
		for i := 0; i <= len(blob); i++ {
			if i == len(blob) || blob[i] == '\n' {
				vals = append(vals, blob[start:i])
				start = i + 1
			}
		}
		dict := BuildDict(vals)
		op := Op(opRaw % 8)
		set := []string{a, b}
		pred := dict.EncodePred(op, a, b, set)

		match := func(s string) bool {
			switch op {
			case OpEq:
				return s == a
			case OpNe:
				return s != a
			case OpLt:
				return s < a
			case OpLe:
				return s <= a
			case OpGt:
				return s > a
			case OpGe:
				return s >= a
			case OpBetween:
				return s >= a && s <= b
			default: // OpIn
				return s == a || s == b
			}
		}
		for _, v := range vals {
			code, ok := dict.Code(v)
			if !ok {
				t.Fatalf("dictionary lost value %q", v)
			}
			if pred.Match(code) != match(v) {
				t.Fatalf("op %v (%q, %q): code predicate says %v for %q, strings say %v",
					op, a, b, pred.Match(code), v, match(v))
			}
		}
	})
}
