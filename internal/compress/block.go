package compress

import "repro/internal/bitmap"

// Encoding identifies a physical compression scheme for an int32 block.
type Encoding uint8

const (
	// Plain stores values as a raw []int32 (4 bytes/value).
	Plain Encoding = iota
	// RLE stores (value, start, runLength) triples; ideal for sorted or
	// secondarily sorted columns.
	RLE
	// BitPack stores values offset from the block minimum in the fewest
	// bits that cover the value range.
	BitPack
	// Delta stores the first value plus bit-packed deltas; good for
	// near-monotonic sequences such as order keys.
	Delta
	// BitVec stores one position bitmap per distinct value; predicate
	// application is a word-level OR of matching bitmaps.
	BitVec
)

// String returns the encoding name used in stats output.
func (e Encoding) String() string {
	switch e {
	case Plain:
		return "plain"
	case RLE:
		return "rle"
	case BitPack:
		return "bitpack"
	case Delta:
		return "delta"
	case BitVec:
		return "bitvec"
	default:
		return "unknown"
	}
}

// IntBlock is one encoded block of int32 column values. Implementations
// support full decode, random access, predicate application directly on the
// compressed representation, and gather at sorted positions.
type IntBlock interface {
	// Len returns the number of values in the block.
	Len() int
	// Encoding identifies the physical scheme.
	Encoding() Encoding
	// MinMax returns the minimum and maximum value in the block.
	MinMax() (min, max int32)
	// AppendTo decodes the whole block, appending to dst.
	AppendTo(dst []int32) []int32
	// Get returns the value at index i (0-based within the block).
	Get(i int) int32
	// Filter applies p to every value and sets bit base+i in bm for each
	// match. Implementations exploit their representation (e.g. RLE sets
	// whole ranges per matching run).
	Filter(p Pred, base int, bm *bitmap.Bitmap)
	// FilterSet is the dense-membership analogue of Filter: it sets bit
	// base+i in bm for every value v at index i whose bit (v-setMin) is
	// set in set. Values outside [setMin, setMin+set.Len()) never match.
	// Implementations probe membership directly on the compressed
	// representation (RLE tests one bit per run, bit-vector encoding ORs
	// whole value bitmaps), which is what makes the fused executor's
	// join probes branch-light.
	FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap)
	// Gather appends the values at the given sorted block-local indexes
	// to dst.
	Gather(idx []int32, dst []int32) []int32
	// CompressedBytes is the size the block would occupy on disk; it
	// feeds the simulated I/O model.
	CompressedBytes() int64
}

// PlainBlock stores raw values.
type PlainBlock struct {
	vals     []int32
	min, max int32
}

// NewPlainBlock wraps vals in a PlainBlock. The slice is retained.
func NewPlainBlock(vals []int32) *PlainBlock {
	b := &PlainBlock{vals: vals}
	b.min, b.max = minMax(vals)
	return b
}

// setContains reports whether v is a member of the dense set anchored at
// setMin (bit k of set encodes value setMin+k).
func setContains(set *bitmap.Bitmap, setMin int32, v int32) bool {
	k := int64(v) - int64(setMin)
	return k >= 0 && k < int64(set.Len()) && set.Get(int(k))
}

func minMax(vals []int32) (int32, int32) {
	if len(vals) == 0 {
		return 0, 0
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Len implements IntBlock.
func (b *PlainBlock) Len() int { return len(b.vals) }

// Encoding implements IntBlock.
func (b *PlainBlock) Encoding() Encoding { return Plain }

// MinMax implements IntBlock.
func (b *PlainBlock) MinMax() (int32, int32) { return b.min, b.max }

// AppendTo implements IntBlock.
func (b *PlainBlock) AppendTo(dst []int32) []int32 { return append(dst, b.vals...) }

// Values exposes the underlying slice for the block-iteration fast path.
func (b *PlainBlock) Values() []int32 { return b.vals }

// Get implements IntBlock.
func (b *PlainBlock) Get(i int) int32 { return b.vals[i] }

// Filter implements IntBlock. The common operators are specialized so the
// inner loop is a tight compare over a raw array — this is precisely the
// "iterate through values directly as an array" behaviour block iteration
// relies on.
func (b *PlainBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	switch p.Op {
	case OpEq:
		for i, v := range b.vals {
			if v == p.A {
				bm.Set(base + i)
			}
		}
	case OpBetween:
		for i, v := range b.vals {
			if v >= p.A && v <= p.B {
				bm.Set(base + i)
			}
		}
	case OpLt:
		for i, v := range b.vals {
			if v < p.A {
				bm.Set(base + i)
			}
		}
	case OpGe:
		for i, v := range b.vals {
			if v >= p.A {
				bm.Set(base + i)
			}
		}
	default:
		for i, v := range b.vals {
			if p.Match(v) {
				bm.Set(base + i)
			}
		}
	}
}

// FilterSet implements IntBlock with a tight membership test over the raw
// array.
func (b *PlainBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	for i, v := range b.vals {
		if setContains(set, setMin, v) {
			bm.Set(base + i)
		}
	}
}

// Gather implements IntBlock.
func (b *PlainBlock) Gather(idx []int32, dst []int32) []int32 {
	for _, i := range idx {
		dst = append(dst, b.vals[i])
	}
	return dst
}

// CompressedBytes implements IntBlock.
func (b *PlainBlock) CompressedBytes() int64 { return int64(len(b.vals)) * 4 }
