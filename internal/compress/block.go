package compress

import (
	"math"
	mathbits "math/bits"
	"sync/atomic"

	"repro/internal/bitmap"
)

// decodedBytes counts bytes materialized as raw int32 values by AppendTo,
// Gather and GatherSelect across every block. It is a measurement counter
// for the "operate directly on compressed data" experiments (the paper's
// Section 5 ablation) — deliberately NOT part of iosim.Stats, whose values
// the differential harness compares bit-for-bit across configurations: the
// kernels change how many bytes are decoded without changing how many are
// read.
var decodedBytes atomic.Int64

// selWords yields the block-local position i-base for every set bit i of
// sel within [base, base+n), walking the selection's words with
// trailing-zeros steps — one branch per selected position instead of a
// NextSet call per bit. The kernels' partial-selection arms range over it.
func selWords(sel *bitmap.Bitmap, base, n int) func(yield func(int) bool) {
	return func(yield func(int) bool) {
		words := sel.Words()
		end := base + n
		if selLen := sel.Len(); end > selLen {
			end = selLen
		}
		for w := base / 64; w < len(words) && w*64 < end; w++ {
			word := words[w]
			if word == 0 {
				continue
			}
			if w*64 < base {
				word &= ^uint64(0) << uint(base-w*64)
			}
			if (w+1)*64 > end {
				word &= ^uint64(0) >> uint((w+1)*64-end)
			}
			for word != 0 {
				tz := mathbits.TrailingZeros64(word)
				word &= word - 1
				if !yield(w*64 + tz - base) {
					return
				}
			}
		}
	}
}

// DecodedBytes returns the total bytes decoded to raw values since the last
// ResetDecodedBytes (4 bytes per materialized value).
func DecodedBytes() int64 { return decodedBytes.Load() }

// ResetDecodedBytes zeroes the decoded-bytes counter.
func ResetDecodedBytes() { decodedBytes.Store(0) }

func countDecoded(nVals int) { decodedBytes.Add(int64(nVals) * 4) }

// AggAcc accumulates sum/count/min/max over the values an aggregation
// kernel visits. Sums are widened to int64 once per block (encodings that
// accumulate in code space add count*min at the end), so a full-column sum
// never overflows en route. The zero value is NOT ready to use — NewAggAcc
// seeds Min/Max with the identity elements.
type AggAcc struct {
	Sum   int64
	Count int64
	Min   int64
	Max   int64
}

// NewAggAcc returns an accumulator seeded with aggregation identities
// (Min = +inf, Max = -inf), matching ssb.AggFunc.Identity.
func NewAggAcc() AggAcc {
	return AggAcc{Min: math.MaxInt64, Max: math.MinInt64}
}

// Observe folds one value occurring cnt times into the accumulator. It is
// the scalar fallback executors use for encodings with no cheaper kernel.
func (a *AggAcc) Observe(v int32, cnt int64) { a.observe(v, cnt) }

// observe folds one value occurring cnt times into the accumulator.
func (a *AggAcc) observe(v int32, cnt int64) {
	if cnt <= 0 {
		return
	}
	a.Sum += int64(v) * cnt
	a.Count += cnt
	if int64(v) < a.Min {
		a.Min = int64(v)
	}
	if int64(v) > a.Max {
		a.Max = int64(v)
	}
}

// Encoding identifies a physical compression scheme for an int32 block.
type Encoding uint8

const (
	// Plain stores values as a raw []int32 (4 bytes/value).
	Plain Encoding = iota
	// RLE stores (value, start, runLength) triples; ideal for sorted or
	// secondarily sorted columns.
	RLE
	// BitPack stores values offset from the block minimum in the fewest
	// bits that cover the value range.
	BitPack
	// Delta stores the first value plus bit-packed deltas; good for
	// near-monotonic sequences such as order keys.
	Delta
	// BitVec stores one position bitmap per distinct value; predicate
	// application is a word-level OR of matching bitmaps.
	BitVec
)

// String returns the encoding name used in stats output.
func (e Encoding) String() string {
	switch e {
	case Plain:
		return "plain"
	case RLE:
		return "rle"
	case BitPack:
		return "bitpack"
	case Delta:
		return "delta"
	case BitVec:
		return "bitvec"
	default:
		return "unknown"
	}
}

// IntBlock is one encoded block of int32 column values. Implementations
// support full decode, random access, predicate application directly on the
// compressed representation, and gather at sorted positions.
type IntBlock interface {
	// Len returns the number of values in the block.
	Len() int
	// Encoding identifies the physical scheme.
	Encoding() Encoding
	// MinMax returns the minimum and maximum value in the block.
	MinMax() (min, max int32)
	// AppendTo decodes the whole block, appending to dst.
	AppendTo(dst []int32) []int32
	// Get returns the value at index i (0-based within the block).
	Get(i int) int32
	// Filter applies p to every value and sets bit base+i in bm for each
	// match. Implementations exploit their representation (e.g. RLE sets
	// whole ranges per matching run).
	Filter(p Pred, base int, bm *bitmap.Bitmap)
	// FilterSet is the dense-membership analogue of Filter: it sets bit
	// base+i in bm for every value v at index i whose bit (v-setMin) is
	// set in set. Values outside [setMin, setMin+set.Len()) never match.
	// Implementations probe membership directly on the compressed
	// representation (RLE tests one bit per run, bit-vector encoding ORs
	// whole value bitmaps), which is what makes the fused executor's
	// join probes branch-light.
	FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap)
	// Gather appends the values at the given sorted block-local indexes
	// to dst.
	Gather(idx []int32, dst []int32) []int32
	// AggSelect folds every value whose bit base+i is set in sel into acc
	// (sum, count, min, max) without materializing the block: RLE prices a
	// run as value x selected-run-length, bit-vector encoding AND-popcounts
	// words per distinct value, and bit-packed encodings accumulate in code
	// space and widen once per block. sel may be nil, meaning every value
	// is selected.
	AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc)
	// GatherSelect appends the values at the selected positions (bits
	// base+i of sel, ascending) to dst — Gather driven by a bitmap instead
	// of an index list, so run/bitmap encodings can walk their compressed
	// representation once instead of random-accessing per position.
	GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32
	// FilterFunc sets bit base+i in bm for every value v with match(v),
	// calling match once per run / distinct value where the encoding
	// allows. It is the arbitrary-predicate analogue of Filter/FilterSet
	// for membership tests that are neither a Pred nor a dense set.
	FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap)
	// CompressedBytes is the size the block would occupy on disk; it
	// feeds the simulated I/O model.
	CompressedBytes() int64
}

// PlainBlock stores raw values.
type PlainBlock struct {
	vals     []int32
	min, max int32
}

// NewPlainBlock wraps vals in a PlainBlock. The slice is retained.
func NewPlainBlock(vals []int32) *PlainBlock {
	b := &PlainBlock{vals: vals}
	b.min, b.max = minMax(vals)
	return b
}

// setContains reports whether v is a member of the dense set anchored at
// setMin (bit k of set encodes value setMin+k).
func setContains(set *bitmap.Bitmap, setMin int32, v int32) bool {
	k := int64(v) - int64(setMin)
	return k >= 0 && k < int64(set.Len()) && set.Get(int(k))
}

func minMax(vals []int32) (int32, int32) {
	if len(vals) == 0 {
		return 0, 0
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Len implements IntBlock.
func (b *PlainBlock) Len() int { return len(b.vals) }

// Encoding implements IntBlock.
func (b *PlainBlock) Encoding() Encoding { return Plain }

// MinMax implements IntBlock.
func (b *PlainBlock) MinMax() (int32, int32) { return b.min, b.max }

// AppendTo implements IntBlock.
func (b *PlainBlock) AppendTo(dst []int32) []int32 {
	countDecoded(len(b.vals))
	return append(dst, b.vals...)
}

// Values exposes the underlying slice for the block-iteration fast path.
func (b *PlainBlock) Values() []int32 { return b.vals }

// Get implements IntBlock.
func (b *PlainBlock) Get(i int) int32 { return b.vals[i] }

// Filter implements IntBlock. The common operators are specialized so the
// inner loop is a tight compare over a raw array — this is precisely the
// "iterate through values directly as an array" behaviour block iteration
// relies on.
func (b *PlainBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	switch p.Op {
	case OpEq:
		for i, v := range b.vals {
			if v == p.A {
				bm.Set(base + i)
			}
		}
	case OpBetween:
		for i, v := range b.vals {
			if v >= p.A && v <= p.B {
				bm.Set(base + i)
			}
		}
	case OpLt:
		for i, v := range b.vals {
			if v < p.A {
				bm.Set(base + i)
			}
		}
	case OpGe:
		for i, v := range b.vals {
			if v >= p.A {
				bm.Set(base + i)
			}
		}
	default:
		for i, v := range b.vals {
			if p.Match(v) {
				bm.Set(base + i)
			}
		}
	}
}

// FilterSet implements IntBlock with a tight membership test over the raw
// array.
func (b *PlainBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	for i, v := range b.vals {
		if setContains(set, setMin, v) {
			bm.Set(base + i)
		}
	}
}

// Gather implements IntBlock.
func (b *PlainBlock) Gather(idx []int32, dst []int32) []int32 {
	countDecoded(len(idx))
	for _, i := range idx {
		dst = append(dst, b.vals[i])
	}
	return dst
}

// AggSelect implements IntBlock; being the raw-array encoding, this is the
// oracle the fuzz targets compare the native kernels against.
func (b *PlainBlock) AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc) {
	if sel == nil {
		for _, v := range b.vals {
			acc.observe(v, 1)
		}
		return
	}
	for pos := range selWords(sel, base, len(b.vals)) {
		acc.observe(b.vals[pos], 1)
	}
}

// GatherSelect implements IntBlock.
func (b *PlainBlock) GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32 {
	if sel == nil {
		countDecoded(len(b.vals))
		return append(dst, b.vals...)
	}
	n := len(dst)
	for pos := range selWords(sel, base, len(b.vals)) {
		dst = append(dst, b.vals[pos])
	}
	countDecoded(len(dst) - n)
	return dst
}

// FilterFunc implements IntBlock.
func (b *PlainBlock) FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap) {
	for i, v := range b.vals {
		if match(v) {
			bm.Set(base + i)
		}
	}
}

// CompressedBytes implements IntBlock.
func (b *PlainBlock) CompressedBytes() int64 { return int64(len(b.vals)) * 4 }
