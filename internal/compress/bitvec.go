package compress

import "repro/internal/bitmap"

// maxBitVecValues caps the cardinality at which bit-vector encoding makes
// sense (one bitmap per distinct value).
const maxBitVecValues = 32

// BitVecBlock is bit-vector encoding from the C-Store compression work
// (Abadi, Madden, Ferreira, SIGMOD 2006): for each distinct value the block
// stores one bitmap marking the positions holding that value. Predicate
// application is "free" — the result is the word-level OR of the bitmaps of
// matching values, with no per-position work at all — at the cost of k bits
// per value of storage. It suits very-low-cardinality unsorted columns.
type BitVecBlock struct {
	vals     []int32 // distinct values, ascending
	maps     []*bitmap.Bitmap
	n        int
	min, max int32
}

// NewBitVecBlock encodes vals, which must have at most maxBitVecValues
// distinct values (callers check via DistinctSmall); it panics otherwise
// since that is a chooser bug, not a data condition.
func NewBitVecBlock(vals []int32) *BitVecBlock {
	b := &BitVecBlock{n: len(vals)}
	b.min, b.max = minMax(vals)
	index := make(map[int32]int, maxBitVecValues)
	for _, v := range vals {
		if _, ok := index[v]; !ok {
			if len(b.vals) >= maxBitVecValues {
				panic("compress: too many distinct values for bit-vector encoding")
			}
			index[v] = 0 // placeholder; indexes assigned after sort
			b.vals = append(b.vals, v)
		}
	}
	// Ascending value order keeps decode deterministic and lets interval
	// predicates skip early.
	sortInt32(b.vals)
	for i, v := range b.vals {
		index[v] = i
	}
	b.maps = make([]*bitmap.Bitmap, len(b.vals))
	for i := range b.maps {
		b.maps[i] = bitmap.New(len(vals))
	}
	for pos, v := range vals {
		b.maps[index[v]].Set(pos)
	}
	return b
}

// DistinctSmall reports whether vals has at most limit distinct values,
// scanning with early exit.
func DistinctSmall(vals []int32, limit int) bool {
	seen := make(map[int32]struct{}, limit+1)
	for _, v := range vals {
		seen[v] = struct{}{}
		if len(seen) > limit {
			return false
		}
	}
	return true
}

func sortInt32(s []int32) {
	// Insertion sort: cardinality is tiny by construction.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Len implements IntBlock.
func (b *BitVecBlock) Len() int { return b.n }

// Encoding implements IntBlock.
func (b *BitVecBlock) Encoding() Encoding { return BitVec }

// MinMax implements IntBlock.
func (b *BitVecBlock) MinMax() (int32, int32) { return b.min, b.max }

// Cardinality returns the number of distinct values (diagnostics).
func (b *BitVecBlock) Cardinality() int { return len(b.vals) }

// AppendTo implements IntBlock.
func (b *BitVecBlock) AppendTo(dst []int32) []int32 {
	countDecoded(b.n)
	out := dst
	start := len(dst)
	out = append(out, make([]int32, b.n)...)
	for vi, bm := range b.maps {
		v := b.vals[vi]
		bm.ForEach(func(pos int) { out[start+pos] = v })
	}
	return out
}

// Get implements IntBlock by probing each value bitmap (k is small).
func (b *BitVecBlock) Get(i int) int32 {
	for vi, bm := range b.maps {
		if bm.Get(i) {
			return b.vals[vi]
		}
	}
	return 0
}

// Filter implements IntBlock: the result is the OR of the bitmaps of
// matching values — zero per-position work. base must be 64-bit aligned
// (column blocks are).
func (b *BitVecBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	if base%64 != 0 {
		// Fallback for unaligned callers (not used by colstore).
		for vi, vm := range b.maps {
			if p.Match(b.vals[vi]) {
				vm.ForEach(func(pos int) { bm.Set(base + pos) })
			}
		}
		return
	}
	for vi, vm := range b.maps {
		if p.Match(b.vals[vi]) {
			bm.OrWordsAt(base/64, vm)
		}
	}
}

// FilterSet implements IntBlock: one membership bit test per distinct value,
// then a word-level OR of the bitmaps of member values — no per-position
// work at all.
func (b *BitVecBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	for vi, vm := range b.maps {
		if !setContains(set, setMin, b.vals[vi]) {
			continue
		}
		if base%64 == 0 {
			bm.OrWordsAt(base/64, vm)
		} else {
			vm.ForEach(func(pos int) { bm.Set(base + pos) })
		}
	}
}

// Gather implements IntBlock.
func (b *BitVecBlock) Gather(idx []int32, dst []int32) []int32 {
	countDecoded(len(idx))
	for _, i := range idx {
		dst = append(dst, b.Get(int(i)))
	}
	return dst
}

// AggSelect implements IntBlock: for each distinct value, an AND-popcount
// of its position bitmap against the selection gives the selected
// occurrence count in one word-level pass — the "count AND words per
// distinct value" kernel.
func (b *BitVecBlock) AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc) {
	for vi, vm := range b.maps {
		cnt := int64(vm.Count())
		if sel != nil {
			cnt = int64(sel.AndCountAt(vm, base))
		}
		acc.observe(b.vals[vi], cnt)
	}
}

// GatherSelect implements IntBlock: selected positions of each value bitmap
// scatter that value into a dense output, preserving position order without
// per-position value probes.
func (b *BitVecBlock) GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32 {
	// Count selected positions first so the output region can be filled by
	// per-value scatter in one allocation.
	total := 0
	if sel == nil {
		total = b.n
	} else {
		total = sel.CountRange(base, base+b.n)
	}
	if total == 0 {
		return dst
	}
	countDecoded(total)
	if sel == nil {
		start := len(dst)
		dst = append(dst, make([]int32, total)...)
		for vi, vm := range b.maps {
			v := b.vals[vi]
			vm.ForEach(func(pos int) { dst[start+pos] = v })
		}
		return dst
	}
	// Walk the selected positions in order; each value probe is at most k
	// (<= 32) bitmap tests, so cost scales with the selection, not the
	// block.
	end := base + b.n
	for pos := sel.NextSet(base); pos >= 0 && pos < end; pos = sel.NextSet(pos + 1) {
		dst = append(dst, b.Get(pos-base))
	}
	return dst
}

// FilterFunc implements IntBlock: one callback per distinct value, then a
// word-level OR of member bitmaps (mirrors FilterSet).
func (b *BitVecBlock) FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap) {
	for vi, vm := range b.maps {
		if !match(b.vals[vi]) {
			continue
		}
		if base%64 == 0 {
			bm.OrWordsAt(base/64, vm)
		} else {
			vm.ForEach(func(pos int) { bm.Set(base + pos) })
		}
	}
}

// CompressedBytes implements IntBlock: k bitmaps of n bits plus the value
// directory.
func (b *BitVecBlock) CompressedBytes() int64 {
	var bytes int64
	for _, bm := range b.maps {
		bytes += bm.SizeBytes()
	}
	return bytes + int64(len(b.vals))*4
}
