package compress

import "sort"

// Dict is an order-preserving string dictionary: codes are assigned in
// lexicographic order, so value comparisons translate to code comparisons.
// This is the "dictionary encoding for the purpose of key reassignment"
// mechanism from Section 5.4.2 — because codes form a dense, ordered,
// contiguous set starting at 0, predicates on dictionary-encoded dimension
// attributes yield contiguous code ranges, enabling between-predicate
// rewriting of joins.
type Dict struct {
	vals []string
	idx  map[string]int32
}

// BuildDict constructs an order-preserving dictionary over the distinct
// values in vals.
func BuildDict(vals []string) *Dict {
	seen := make(map[string]struct{}, 64)
	for _, v := range vals {
		seen[v] = struct{}{}
	}
	d := &Dict{
		vals: make([]string, 0, len(seen)),
		idx:  make(map[string]int32, len(seen)),
	}
	for v := range seen {
		d.vals = append(d.vals, v)
	}
	sort.Strings(d.vals)
	for i, v := range d.vals {
		d.idx[v] = int32(i)
	}
	return d
}

// Size returns the number of distinct values.
func (d *Dict) Size() int { return len(d.vals) }

// Code returns the code for value s, with ok=false when s is not in the
// dictionary.
func (d *Dict) Code(s string) (int32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// Value returns the string for code c.
func (d *Dict) Value(c int32) string { return d.vals[c] }

// Values returns the sorted distinct values (do not mutate).
func (d *Dict) Values() []string { return d.vals }

// Encode maps vals to codes, appending to dst. Values absent from the
// dictionary map to -1.
func (d *Dict) Encode(vals []string, dst []int32) []int32 {
	for _, v := range vals {
		if c, ok := d.idx[v]; ok {
			dst = append(dst, c)
		} else {
			dst = append(dst, -1)
		}
	}
	return dst
}

// EncodePred translates a string predicate into the equivalent predicate
// over dictionary codes. Because the dictionary is order-preserving,
// range predicates map to code ranges exactly.
//
// For operators with a value not present in the dictionary, the tightest
// enclosing code interval is used (e.g. "< x" becomes "< firstCodeGE(x)").
func (d *Dict) EncodePred(op Op, a, b string, set []string) Pred {
	switch op {
	case OpEq:
		if c, ok := d.idx[a]; ok {
			return Eq(c)
		}
		return Between(1, 0) // matches nothing
	case OpNe:
		if c, ok := d.idx[a]; ok {
			return Pred{Op: OpNe, A: c}
		}
		return Between(0, int32(len(d.vals)-1)) // everything
	case OpBetween:
		lo := d.lowerBound(a)
		hi := d.upperBound(b)
		return Between(lo, hi-1)
	case OpLt:
		return Lt(d.lowerBound(a))
	case OpLe:
		return Lt(d.upperBound(a))
	case OpGt:
		return Ge(d.upperBound(a))
	case OpGe:
		return Ge(d.lowerBound(a))
	case OpIn:
		codes := make([]int32, 0, len(set))
		for _, s := range set {
			if c, ok := d.idx[s]; ok {
				codes = append(codes, c)
			}
		}
		return In(codes...)
	default:
		return Between(1, 0)
	}
}

// lowerBound returns the first code whose value is >= s.
func (d *Dict) lowerBound(s string) int32 {
	return int32(sort.SearchStrings(d.vals, s))
}

// upperBound returns the first code whose value is > s.
func (d *Dict) upperBound(s string) int32 {
	return int32(sort.Search(len(d.vals), func(i int) bool { return d.vals[i] > s }))
}

// BytesSize approximates the dictionary's storage footprint.
func (d *Dict) BytesSize() int64 {
	var n int64
	for _, v := range d.vals {
		n += int64(len(v)) + 4
	}
	return n
}
