package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
)

// genVals produces test columns with different shapes: random, sorted,
// low-cardinality, near-monotonic.
func genVals(rng *rand.Rand, n int) []int32 {
	vals := make([]int32, n)
	switch rng.Intn(4) {
	case 0: // random wide
		for i := range vals {
			vals[i] = rng.Int31n(1 << 20)
		}
	case 1: // sorted runs (RLE-friendly)
		v := int32(0)
		for i := range vals {
			if rng.Intn(10) == 0 {
				v += rng.Int31n(5) + 1
			}
			vals[i] = v
		}
	case 2: // low cardinality (bitpack-friendly)
		for i := range vals {
			vals[i] = rng.Int31n(11)
		}
	default: // near-monotonic (delta-friendly)
		v := int32(rng.Int31n(1000))
		for i := range vals {
			v += rng.Int31n(4)
			vals[i] = v
		}
	}
	return vals
}

func genPred(rng *rand.Rand, vals []int32) Pred {
	pick := func() int32 {
		if len(vals) == 0 {
			return 0
		}
		return vals[rng.Intn(len(vals))]
	}
	switch rng.Intn(8) {
	case 0:
		return Eq(pick())
	case 1:
		return Lt(pick())
	case 2:
		return Le(pick())
	case 3:
		return Gt(pick())
	case 4:
		return Ge(pick())
	case 5:
		a, b := pick(), pick()
		if a > b {
			a, b = b, a
		}
		return Between(a, b)
	case 6:
		return In(pick(), pick(), pick())
	default:
		return Pred{Op: OpNe, A: pick()}
	}
}

func allEncoders() map[string]func([]int32) IntBlock {
	return map[string]func([]int32) IntBlock{
		"plain":   func(v []int32) IntBlock { return NewPlainBlock(v) },
		"rle":     func(v []int32) IntBlock { return NewRLEBlock(v) },
		"bitpack": func(v []int32) IntBlock { return NewBitPackBlock(v) },
		"delta":   func(v []int32) IntBlock { return NewDeltaBlock(v) },
		"choose":  Choose,
	}
}

// TestRoundTrip: every encoding decodes back to the original values.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, enc := range allEncoders() {
		for trial := 0; trial < 20; trial++ {
			vals := genVals(rng, rng.Intn(500)+1)
			blk := enc(vals)
			if blk.Len() != len(vals) {
				t.Fatalf("%s: Len=%d want %d", name, blk.Len(), len(vals))
			}
			got := blk.AppendTo(nil)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s trial %d: decode[%d]=%d want %d", name, trial, i, got[i], vals[i])
				}
			}
			mn, mx := blk.MinMax()
			wantMn, wantMx := minMax(vals)
			if mn != wantMn || mx != wantMx {
				t.Fatalf("%s: MinMax=(%d,%d) want (%d,%d)", name, mn, mx, wantMn, wantMx)
			}
		}
	}
}

// TestGetRandomAccess: Get(i) == vals[i] for all encodings.
func TestGetRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for name, enc := range allEncoders() {
		vals := genVals(rng, 200)
		blk := enc(vals)
		for i := range vals {
			if got := blk.Get(i); got != vals[i] {
				t.Fatalf("%s: Get(%d)=%d want %d", name, i, got, vals[i])
			}
		}
	}
}

// TestFilterEquivalence: direct operation on compressed data must produce
// exactly the positions the naive decoded filter produces.
func TestFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, enc := range allEncoders() {
		for trial := 0; trial < 30; trial++ {
			vals := genVals(rng, rng.Intn(400)+1)
			p := genPred(rng, vals)
			blk := enc(vals)
			const base = 13
			bm := bitmap.New(base + len(vals) + 5)
			blk.Filter(p, base, bm)
			for i, v := range vals {
				if bm.Get(base+i) != p.Match(v) {
					t.Fatalf("%s trial %d pred %v %d..%d: pos %d got %v val %d",
						name, trial, p.Op, p.A, p.B, i, bm.Get(base+i), v)
				}
			}
			// No bits outside [base, base+len).
			for i := 0; i < base; i++ {
				if bm.Get(i) {
					t.Fatalf("%s: stray bit below base at %d", name, i)
				}
			}
		}
	}
}

// TestGatherEquivalence: Gather at sorted positions equals indexed decode.
func TestGatherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for name, enc := range allEncoders() {
		for trial := 0; trial < 20; trial++ {
			vals := genVals(rng, rng.Intn(300)+1)
			blk := enc(vals)
			var idx []int32
			for i := range vals {
				if rng.Intn(3) == 0 {
					idx = append(idx, int32(i))
				}
			}
			got := blk.Gather(idx, nil)
			if len(got) != len(idx) {
				t.Fatalf("%s: Gather len=%d want %d", name, len(got), len(idx))
			}
			for k, i := range idx {
				if got[k] != vals[i] {
					t.Fatalf("%s: Gather[%d]=%d want vals[%d]=%d", name, k, got[k], i, vals[i])
				}
			}
		}
	}
}

func TestRLESortedFilterRange(t *testing.T) {
	vals := []int32{1, 1, 1, 3, 3, 5, 5, 5, 5, 9}
	blk := NewRLEBlock(vals)
	cases := []struct {
		p          Pred
		start, end int32
	}{
		{Eq(3), 3, 5},
		{Eq(2), 0, 0}, // absent value -> empty
		{Between(3, 5), 3, 9},
		{Between(0, 100), 0, 10},
		{Lt(5), 0, 5},
		{Ge(5), 5, 10},
		{Eq(9), 9, 10},
	}
	for _, c := range cases {
		s, e, ok := blk.SortedFilterRange(c.p)
		if !ok {
			t.Fatalf("pred %v: not ok", c.p)
		}
		if e < s {
			s, e = 0, 0
		}
		if s != c.start || e != c.end {
			t.Fatalf("pred %v %d..%d: got [%d,%d) want [%d,%d)", c.p.Op, c.p.A, c.p.B, s, e, c.start, c.end)
		}
	}
	if _, _, ok := blk.SortedFilterRange(Pred{Op: OpNe, A: 3}); ok {
		t.Fatal("OpNe should not be range-expressible")
	}
}

func TestRLERunAccounting(t *testing.T) {
	vals := []int32{7, 7, 7, 8, 8, 9}
	blk := NewRLEBlock(vals)
	if blk.NumRuns() != 3 {
		t.Fatalf("NumRuns=%d want 3", blk.NumRuns())
	}
	if CountRuns(vals) != 3 {
		t.Fatalf("CountRuns=%d want 3", CountRuns(vals))
	}
	if CountRuns(nil) != 0 {
		t.Fatal("CountRuns(nil) should be 0")
	}
	runs := blk.Runs()
	total := int32(0)
	for _, r := range runs {
		total += r.Len
	}
	if total != int32(len(vals)) {
		t.Fatalf("run lengths sum to %d want %d", total, len(vals))
	}
}

func TestBitPackWidth(t *testing.T) {
	blk := NewBitPackBlock([]int32{100, 101, 102, 103})
	if blk.Width() != 2 {
		t.Fatalf("width=%d want 2", blk.Width())
	}
	// Constant column packs into 1 bit.
	one := NewBitPackBlock([]int32{5, 5, 5})
	if one.Width() != 1 {
		t.Fatalf("constant width=%d want 1", one.Width())
	}
	// Negative values round-trip.
	neg := NewBitPackBlock([]int32{-10, -5, 0, 5})
	got := neg.AppendTo(nil)
	if got[0] != -10 || got[3] != 5 {
		t.Fatalf("negatives: %v", got)
	}
}

func TestChoosePicksSensibly(t *testing.T) {
	// Long runs -> RLE.
	runsVals := make([]int32, 10000)
	for i := range runsVals {
		runsVals[i] = int32(i / 1000)
	}
	if enc := Choose(runsVals).Encoding(); enc != RLE {
		t.Fatalf("long runs chose %v, want rle", enc)
	}
	// Low-cardinality random -> BitPack (runs too short for RLE).
	rng := rand.New(rand.NewSource(3))
	lc := make([]int32, 10000)
	for i := range lc {
		lc[i] = rng.Int31n(11)
	}
	if enc := Choose(lc).Encoding(); enc != BitPack {
		t.Fatalf("low cardinality chose %v, want bitpack", enc)
	}
	// Wide random -> Plain or BitPack(delta), but must round-trip; the
	// size must not exceed plain.
	wide := make([]int32, 4096)
	for i := range wide {
		wide[i] = rng.Int31()
	}
	blk := Choose(wide)
	if blk.CompressedBytes() > int64(len(wide))*4+64 {
		t.Fatalf("chosen encoding (%v) larger than plain: %d", blk.Encoding(), blk.CompressedBytes())
	}
}

func TestCompressedSizesOrdered(t *testing.T) {
	// A sorted column must compress far better with RLE than plain.
	vals := make([]int32, 60000)
	for i := range vals {
		vals[i] = int32(i / 5000) // 12 runs
	}
	rle := NewRLEBlock(vals)
	plain := NewPlainBlock(vals)
	if rle.CompressedBytes() >= plain.CompressedBytes()/100 {
		t.Fatalf("rle %dB vs plain %dB: expected >100x", rle.CompressedBytes(), plain.CompressedBytes())
	}
}

func TestPredBounds(t *testing.T) {
	cases := []struct {
		p      Pred
		lo, hi int32
		ok     bool
	}{
		{Eq(5), 5, 5, true},
		{Between(2, 9), 2, 9, true},
		{Lt(5), -1 << 31, 4, true},
		{Le(5), -1 << 31, 5, true},
		{Gt(5), 6, 1<<31 - 1, true},
		{Ge(5), 5, 1<<31 - 1, true},
		{In(3, 4, 5), 3, 5, true}, // contiguous set -> interval
		{In(3, 7), 3, 7, false},   // gap -> not an interval
		{Pred{Op: OpNe, A: 1}, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := c.p.Bounds()
		if ok != c.ok {
			t.Fatalf("pred %v: ok=%v want %v", c.p, ok, c.ok)
		}
		if ok && (lo != c.lo || hi != c.hi) {
			t.Fatalf("pred %v: bounds (%d,%d) want (%d,%d)", c.p, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPredMayMatch(t *testing.T) {
	if !Eq(5).MayMatch(0, 10) || Eq(11).MayMatch(0, 10) {
		t.Fatal("Eq MayMatch wrong")
	}
	if !In(3, 7).MayMatch(6, 8) || In(3, 7).MayMatch(4, 6) {
		t.Fatal("In MayMatch wrong")
	}
	ne := Pred{Op: OpNe, A: 5}
	if ne.MayMatch(5, 5) || !ne.MayMatch(5, 6) {
		t.Fatal("Ne MayMatch wrong")
	}
}

func TestDictOrderPreserving(t *testing.T) {
	d := BuildDict([]string{"EUROPE", "ASIA", "AMERICA", "ASIA", "AFRICA", "MIDDLE EAST"})
	if d.Size() != 5 {
		t.Fatalf("size=%d want 5", d.Size())
	}
	// Codes must be in lexicographic order.
	prev := ""
	for c := int32(0); c < int32(d.Size()); c++ {
		if d.Value(c) < prev {
			t.Fatalf("dictionary not order-preserving at code %d", c)
		}
		prev = d.Value(c)
	}
	code, ok := d.Code("ASIA")
	if !ok || d.Value(code) != "ASIA" {
		t.Fatal("Code/Value round trip failed")
	}
	if _, ok := d.Code("ATLANTIS"); ok {
		t.Fatal("absent value should not have a code")
	}
}

func TestDictEncodePred(t *testing.T) {
	d := BuildDict([]string{"a", "c", "e", "g"})
	vals := d.Values()
	codeOf := func(s string) int32 {
		c, _ := d.Code(s)
		return c
	}
	// Equality on present value.
	p := d.EncodePred(OpEq, "c", "", nil)
	if !p.Match(codeOf("c")) || p.Match(codeOf("a")) {
		t.Fatal("OpEq encode wrong")
	}
	// Equality on absent value matches nothing.
	p = d.EncodePred(OpEq, "b", "", nil)
	for c := range vals {
		if p.Match(int32(c)) {
			t.Fatal("absent OpEq matched something")
		}
	}
	// Between spanning absent endpoints: "b".."f" selects c,e.
	p = d.EncodePred(OpBetween, "b", "f", nil)
	want := map[string]bool{"c": true, "e": true}
	for c, s := range vals {
		if p.Match(int32(c)) != want[s] {
			t.Fatalf("between: value %q match=%v", s, p.Match(int32(c)))
		}
	}
	// In with some absent members.
	p = d.EncodePred(OpIn, "", "", []string{"a", "x", "g"})
	wantIn := map[string]bool{"a": true, "g": true}
	for c, s := range vals {
		if p.Match(int32(c)) != wantIn[s] {
			t.Fatalf("in: value %q match=%v", s, p.Match(int32(c)))
		}
	}
	// Lt / Ge with absent pivot.
	p = d.EncodePred(OpLt, "d", "", nil)
	if !p.Match(codeOf("c")) || p.Match(codeOf("e")) {
		t.Fatal("OpLt encode wrong")
	}
	p = d.EncodePred(OpGe, "d", "", nil)
	if p.Match(codeOf("c")) || !p.Match(codeOf("e")) {
		t.Fatal("OpGe encode wrong")
	}
}

// TestQuickDictPredEquivalence: for random string universes and predicates,
// evaluating the string predicate directly must equal evaluating the encoded
// code predicate.
func TestQuickDictPredEquivalence(t *testing.T) {
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var universe []string
		for _, l := range letters {
			if rng.Intn(2) == 0 {
				universe = append(universe, l)
			}
		}
		if len(universe) == 0 {
			universe = []string{"a"}
		}
		d := BuildDict(universe)
		a := letters[rng.Intn(len(letters))]
		b := letters[rng.Intn(len(letters))]
		if a > b {
			a, b = b, a
		}
		ops := []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpBetween}
		op := ops[rng.Intn(len(ops))]
		p := d.EncodePred(op, a, b, nil)
		strMatch := func(s string) bool {
			switch op {
			case OpEq:
				return s == a
			case OpLt:
				return s < a
			case OpLe:
				return s <= a
			case OpGt:
				return s > a
			case OpGe:
				return s >= a
			default:
				return s >= a && s <= b
			}
		}
		for c, s := range d.Values() {
			if p.Match(int32(c)) != strMatch(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripAll is the property-based sweep across encodings.
func TestQuickRoundTripAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := genVals(rng, rng.Intn(600)+1)
		for _, enc := range allEncoders() {
			blk := enc(vals)
			got := blk.AppendTo(nil)
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterPlainVsRLE(b *testing.B) {
	vals := make([]int32, 1<<16)
	for i := range vals {
		vals[i] = int32(i / 4096) // 16 runs
	}
	plain := NewPlainBlock(vals)
	rle := NewRLEBlock(vals)
	p := Between(3, 7)
	b.Run("plain", func(b *testing.B) {
		bm := bitmap.New(len(vals))
		b.SetBytes(int64(len(vals)) * 4)
		for i := 0; i < b.N; i++ {
			bm.Reset()
			plain.Filter(p, 0, bm)
		}
	})
	b.Run("rle", func(b *testing.B) {
		bm := bitmap.New(len(vals))
		b.SetBytes(int64(len(vals)) * 4)
		for i := 0; i < b.N; i++ {
			bm.Reset()
			rle.Filter(p, 0, bm)
		}
	})
}

// TestFilterSetEquivalence: FilterSet on every encoding agrees with a naive
// membership test over the decoded values, at aligned and unaligned bases.
func TestFilterSetEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for name, enc := range allEncoders() {
		for trial := 0; trial < 30; trial++ {
			vals := genVals(rng, rng.Intn(400)+1)
			blk := enc(vals)
			checkFilterSet(t, name, trial, blk, vals, rng)
		}
	}
	// Bit-vector encoding explicitly (Choose only picks it sometimes).
	for trial := 0; trial < 30; trial++ {
		vals := make([]int32, rng.Intn(300)+1)
		for i := range vals {
			vals[i] = rng.Int31n(9) * 3
		}
		checkFilterSet(t, "bitvec", trial, NewBitVecBlock(vals), vals, rng)
	}
}

// TestKernelEquivalence: AggSelect / GatherSelect / FilterFunc on every
// encoding agree with straight loops over the decoded values, at aligned
// and unaligned bases, under random selection densities including empty and
// full (mirrors TestFilterSetEquivalence).
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for name, enc := range allEncoders() {
		for trial := 0; trial < 30; trial++ {
			vals := genVals(rng, rng.Intn(400)+1)
			checkKernels(t, name, trial, enc(vals), vals, rng)
		}
	}
	// Bit-vector encoding explicitly (Choose only picks it sometimes).
	for trial := 0; trial < 30; trial++ {
		vals := make([]int32, rng.Intn(300)+1)
		for i := range vals {
			vals[i] = rng.Int31n(9) * 3
		}
		checkKernels(t, "bitvec", trial, NewBitVecBlock(vals), vals, rng)
	}
}

func checkKernels(t *testing.T, name string, trial int, blk IntBlock, vals []int32, rng *rand.Rand) {
	t.Helper()
	n := len(vals)
	density := rng.Intn(4) // 0: empty, 1: sparse, 2: dense, 3: full
	for _, base := range []int{0, 64, 13} {
		sel := bitmap.New(base + n)
		for i := 0; i < n; i++ {
			switch density {
			case 1:
				if rng.Intn(8) == 0 {
					sel.Set(base + i)
				}
			case 2:
				if rng.Intn(8) != 0 {
					sel.Set(base + i)
				}
			case 3:
				sel.Set(base + i)
			}
		}
		selected := func(i int) bool { return sel.Get(base + i) }

		want := NewAggAcc()
		for i, v := range vals {
			if selected(i) {
				want.observe(v, 1)
			}
		}
		got := NewAggAcc()
		blk.AggSelect(sel, base, &got)
		if got != want {
			t.Fatalf("%s trial %d base %d density %d: AggSelect=%+v oracle=%+v",
				name, trial, base, density, got, want)
		}

		var wantVals []int32
		for i, v := range vals {
			if selected(i) {
				wantVals = append(wantVals, v)
			}
		}
		gotVals := blk.GatherSelect(sel, base, nil)
		if len(gotVals) != len(wantVals) {
			t.Fatalf("%s trial %d base %d: GatherSelect len=%d want %d",
				name, trial, base, len(gotVals), len(wantVals))
		}
		for k := range wantVals {
			if gotVals[k] != wantVals[k] {
				t.Fatalf("%s trial %d base %d: GatherSelect[%d]=%d want %d",
					name, trial, base, k, gotVals[k], wantVals[k])
			}
		}
	}

	// FilterFunc against an arbitrary closure (a hash-set membership stand-in).
	pivot := int32(0)
	if n > 0 {
		pivot = vals[rng.Intn(n)]
	}
	match := func(v int32) bool { return v == pivot || v%5 == 2 }
	for _, base := range []int{0, 64, 13} {
		bm := bitmap.New(base + n + 5)
		blk.FilterFunc(match, base, bm)
		for i, v := range vals {
			if bm.Get(base+i) != match(v) {
				t.Fatalf("%s trial %d base %d: FilterFunc pos %d val %d got %v want %v",
					name, trial, base, i, v, bm.Get(base+i), match(v))
			}
		}
		for i := 0; i < base; i++ {
			if bm.Get(i) {
				t.Fatalf("%s base %d: FilterFunc stray bit below base at %d", name, base, i)
			}
		}
	}

	// nil selection == everything selected.
	wantAll := NewAggAcc()
	for _, v := range vals {
		wantAll.observe(v, 1)
	}
	gotAll := NewAggAcc()
	blk.AggSelect(nil, 0, &gotAll)
	if gotAll != wantAll {
		t.Fatalf("%s trial %d: AggSelect(nil)=%+v oracle=%+v", name, trial, gotAll, wantAll)
	}
	all := blk.GatherSelect(nil, 0, nil)
	if len(all) != n {
		t.Fatalf("%s trial %d: GatherSelect(nil) len=%d want %d", name, trial, len(all), n)
	}
	for i := range vals {
		if all[i] != vals[i] {
			t.Fatalf("%s trial %d: GatherSelect(nil)[%d]=%d want %d", name, trial, i, all[i], vals[i])
		}
	}
}

func checkFilterSet(t *testing.T, name string, trial int, blk IntBlock, vals []int32, rng *rand.Rand) {
	t.Helper()
	// Build a random membership set around the value range, anchored at a
	// random offset so out-of-window values are exercised.
	mn, mx := minMax(vals)
	setMin := mn - rng.Int31n(5)
	width := int(mx-setMin) + 1 - rng.Intn(3) // sometimes truncate the window
	if width < 1 {
		width = 1
	}
	set := bitmap.New(width)
	for i := 0; i < width; i++ {
		if rng.Intn(3) == 0 {
			set.Set(i)
		}
	}
	for _, base := range []int{0, 64, 13} {
		bm := bitmap.New(base + len(vals) + 5)
		blk.FilterSet(set, setMin, base, bm)
		for i, v := range vals {
			want := setContains(set, setMin, v)
			if bm.Get(base+i) != want {
				t.Fatalf("%s trial %d base %d: pos %d val %d got %v want %v",
					name, trial, base, i, v, bm.Get(base+i), want)
			}
		}
		for i := 0; i < base; i++ {
			if bm.Get(i) {
				t.Fatalf("%s base %d: stray bit below base at %d", name, base, i)
			}
		}
	}
}
