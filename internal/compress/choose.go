package compress

import "math/bits"

// Choose selects the cheapest encoding for vals by estimating the encoded
// size of each candidate, mirroring how a column-store's storage manager
// picks a per-segment scheme. Forced Plain (compression disabled) is
// expressed by calling NewPlainBlock directly.
func Choose(vals []int32) IntBlock {
	n := len(vals)
	if n == 0 {
		return NewPlainBlock(vals)
	}
	plainBytes := int64(n) * 4

	runs := CountRuns(vals)
	rleBytes := int64(runs) * 12

	mn, mx := minMax(vals)
	span := uint64(int64(mx) - int64(mn))
	packWidth := uint(bits.Len64(span))
	if packWidth == 0 {
		packWidth = 1
	}
	packBytes := int64((uint(n)*packWidth+63)/64)*8 + 16

	deltaWidth := DeltaWidth(vals)
	deltaBytes := int64((uint(n-0)*deltaWidth+63)/64)*8 + 24

	best := plainBytes
	choice := Plain
	if rleBytes < best {
		best, choice = rleBytes, RLE
	}
	if packBytes < best {
		best, choice = packBytes, BitPack
	}
	if deltaBytes < best {
		best, choice = deltaBytes, Delta
	}
	// Bit-vector encoding only beats bit-packing on size for binary-ish
	// columns, but its predicate path is free; prefer it when it is
	// size-competitive and the cardinality is tiny.
	if span <= maxBitVecValues && DistinctSmall(vals, 8) {
		bvBytes := int64(8) * int64((n+63)/64) * int64(8) // worst case 8 values
		if bvBytes <= best*2 {
			return NewBitVecBlock(vals)
		}
	}

	switch choice {
	case RLE:
		return NewRLEBlock(vals)
	case BitPack:
		return NewBitPackBlock(vals)
	case Delta:
		return NewDeltaBlock(vals)
	default:
		return NewPlainBlock(vals)
	}
}
