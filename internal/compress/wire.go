package compress

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitmap"
)

// This file is the wire format for encoded blocks: the byte layout a block
// occupies inside a segment file (internal/segstore). Each encoding
// serializes its in-memory representation directly — deserializing
// reconstructs the identical block, so predicate application, membership
// probes, and gathers over a block loaded from disk behave bit-for-bit like
// the block the writer held. All integers are little-endian.
//
// The payload carries no encoding tag, row count, or checksum of its own;
// the segment file's zone-map entry stores those (encoding, rows, min/max,
// CRC32), which is what lets readers prune a segment from its zone map
// without ever touching the payload.

// AppendBlock serializes b's encoded representation, appending to dst.
func AppendBlock(b IntBlock, dst []byte) []byte {
	switch blk := b.(type) {
	case *PlainBlock:
		for _, v := range blk.vals {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	case *RLEBlock:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blk.runs)))
		for _, r := range blk.runs {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Val))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Start))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Len))
		}
	case *BitPackBlock:
		dst = append(dst, byte(blk.width))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(blk.min))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(blk.max))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blk.words)))
		for _, w := range blk.words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	case *DeltaBlock:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(blk.first))
		dst = append(dst, byte(blk.width))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(blk.minDelta))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(blk.min))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(blk.max))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blk.deltas)))
		for _, w := range blk.deltas {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	case *BitVecBlock:
		dst = append(dst, byte(len(blk.vals)))
		for _, v := range blk.vals {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
		for _, bm := range blk.maps {
			words := bm.Words()
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
			for _, w := range words {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	default:
		panic(fmt.Sprintf("compress: no wire format for %T", b))
	}
	return dst
}

// wireReader walks a payload with bounds checking; any overrun marks the
// reader bad and subsequent reads return zero, so decoders can validate once
// at the end instead of after every field.
type wireReader struct {
	data []byte
	pos  int
	bad  bool
}

func (r *wireReader) u8() byte {
	if r.pos+1 > len(r.data) {
		r.bad = true
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *wireReader) u32() uint32 {
	if r.pos+4 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.pos+8 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *wireReader) words(n int) []uint64 {
	if n < 0 || r.pos+8*n > len(r.data) {
		r.bad = true
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.data[r.pos+8*i:])
	}
	r.pos += 8 * n
	return out
}

// done reports whether the payload was consumed exactly and without overrun.
func (r *wireReader) done() bool { return !r.bad && r.pos == len(r.data) }

// DecodeBlock reconstructs a block of rows values from its wire payload.
// enc and rows come from the segment's zone-map entry. The payload is
// structurally validated (sizes, run coverage, widths); content integrity is
// the caller's CRC.
func DecodeBlock(enc Encoding, rows int, data []byte) (IntBlock, error) {
	if rows < 0 {
		return nil, fmt.Errorf("compress: negative row count %d", rows)
	}
	r := &wireReader{data: data}
	switch enc {
	case Plain:
		if len(data) != 4*rows {
			return nil, fmt.Errorf("compress: plain payload is %d bytes, want %d for %d rows", len(data), 4*rows, rows)
		}
		vals := make([]int32, rows)
		for i := range vals {
			vals[i] = int32(r.u32())
		}
		return NewPlainBlock(vals), nil
	case RLE:
		nruns := int(r.u32())
		if r.bad || nruns < 0 || len(data) != 4+12*nruns {
			return nil, fmt.Errorf("compress: rle payload is %d bytes, want %d for %d runs", len(data), 4+12*nruns, nruns)
		}
		b := &RLEBlock{n: rows, runs: make([]Run, nruns)}
		next := int32(0)
		for i := range b.runs {
			run := Run{Val: int32(r.u32()), Start: int32(r.u32()), Len: int32(r.u32())}
			if run.Start != next || run.Len <= 0 {
				return nil, fmt.Errorf("compress: rle run %d does not tile the block (start %d len %d, expected start %d)", i, run.Start, run.Len, next)
			}
			next = run.Start + run.Len
			b.runs[i] = run
			if i == 0 || run.Val < b.min {
				b.min = run.Val
			}
			if i == 0 || run.Val > b.max {
				b.max = run.Val
			}
		}
		if int(next) != rows {
			return nil, fmt.Errorf("compress: rle runs cover %d rows, want %d", next, rows)
		}
		return b, nil
	case BitPack:
		width := uint(r.u8())
		mn, mx := int32(r.u32()), int32(r.u32())
		nwords := int(r.u32())
		words := r.words(nwords)
		if !r.done() || width < 1 || width > 32 {
			return nil, fmt.Errorf("compress: malformed bitpack payload (%d bytes, width %d)", len(data), width)
		}
		if want := int((uint(rows)*width + 63) / 64); nwords != want {
			return nil, fmt.Errorf("compress: bitpack has %d words, want %d for %d rows at width %d", nwords, want, rows, width)
		}
		return &BitPackBlock{words: words, width: width, n: rows, min: mn, max: mx}, nil
	case Delta:
		first := int32(r.u32())
		width := uint(r.u8())
		minDelta := int64(r.u64())
		mn, mx := int32(r.u32()), int32(r.u32())
		nwords := int(r.u32())
		words := r.words(nwords)
		// Delta widths can exceed 32 bits: two int32 extremes differ by up
		// to 2^32-1 in either direction, so the delta span needs up to 34.
		if !r.done() || width < 1 || width > 34 {
			return nil, fmt.Errorf("compress: malformed delta payload (%d bytes, width %d)", len(data), width)
		}
		wantRows := rows - 1
		if rows == 0 {
			wantRows = 0
		}
		if want := int((uint(wantRows)*width + 63) / 64); nwords != want {
			return nil, fmt.Errorf("compress: delta has %d words, want %d for %d rows at width %d", nwords, want, rows, width)
		}
		return &DeltaBlock{first: first, deltas: words, width: width, minDelta: minDelta, n: rows, min: mn, max: mx}, nil
	case BitVec:
		card := int(r.u8())
		if card < 1 || card > maxBitVecValues {
			return nil, fmt.Errorf("compress: bitvec cardinality %d out of range", card)
		}
		b := &BitVecBlock{n: rows, vals: make([]int32, card), maps: make([]*bitmap.Bitmap, card)}
		for i := range b.vals {
			b.vals[i] = int32(r.u32())
			if i > 0 && b.vals[i] <= b.vals[i-1] {
				return nil, fmt.Errorf("compress: bitvec values not strictly ascending")
			}
		}
		wantWords := (rows + 63) / 64
		for i := range b.maps {
			nwords := int(r.u32())
			if nwords != wantWords {
				return nil, fmt.Errorf("compress: bitvec map %d has %d words, want %d for %d rows", i, nwords, wantWords, rows)
			}
			b.maps[i] = bitmap.FromWords(r.words(nwords), rows)
		}
		if !r.done() {
			return nil, fmt.Errorf("compress: malformed bitvec payload (%d bytes)", len(data))
		}
		b.min, b.max = b.vals[0], b.vals[card-1]
		return b, nil
	default:
		return nil, fmt.Errorf("compress: unknown encoding tag %d", enc)
	}
}
