package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
)

func lowCardVals(rng *rand.Rand, n, card int) []int32 {
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = rng.Int31n(int32(card)) * 3 // non-dense value space
	}
	return vals
}

func TestBitVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		vals := lowCardVals(rng, rng.Intn(500)+1, rng.Intn(maxBitVecValues)+1)
		b := NewBitVecBlock(vals)
		got := b.AppendTo(nil)
		if len(got) != len(vals) {
			t.Fatalf("len %d want %d", len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("decode[%d]=%d want %d", i, got[i], vals[i])
			}
			if b.Get(i) != vals[i] {
				t.Fatalf("Get(%d)=%d want %d", i, b.Get(i), vals[i])
			}
		}
		mn, mx := b.MinMax()
		wmn, wmx := minMax(vals)
		if mn != wmn || mx != wmx {
			t.Fatal("minmax wrong")
		}
		if b.Cardinality() > maxBitVecValues {
			t.Fatal("cardinality overflow")
		}
	}
}

func TestBitVecFilterAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vals := lowCardVals(rng, 300, 6)
	b := NewBitVecBlock(vals)
	for _, p := range []Pred{Eq(vals[0]), Between(0, 9), Ge(6), In(0, 3, 12)} {
		bm := bitmap.New(64 + len(vals))
		b.Filter(p, 64, bm) // aligned base
		for i, v := range vals {
			if bm.Get(64+i) != p.Match(v) {
				t.Fatalf("pred %v pos %d: got %v for value %d", p, i, bm.Get(64+i), v)
			}
		}
	}
}

func TestBitVecFilterUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := lowCardVals(rng, 100, 4)
	b := NewBitVecBlock(vals)
	bm := bitmap.New(7 + len(vals))
	p := Ge(3)
	b.Filter(p, 7, bm) // exercises the fallback path
	for i, v := range vals {
		if bm.Get(7+i) != p.Match(v) {
			t.Fatalf("unaligned filter wrong at %d", i)
		}
	}
}

func TestBitVecGather(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	vals := lowCardVals(rng, 400, 8)
	b := NewBitVecBlock(vals)
	idx := []int32{0, 5, 63, 64, 399}
	got := b.Gather(idx, nil)
	for k, i := range idx {
		if got[k] != vals[i] {
			t.Fatalf("gather[%d] wrong", k)
		}
	}
}

func TestBitVecPanicsOnHighCardinality(t *testing.T) {
	vals := make([]int32, 100)
	for i := range vals {
		vals[i] = int32(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >32 distinct values")
		}
	}()
	NewBitVecBlock(vals)
}

func TestDistinctSmall(t *testing.T) {
	if !DistinctSmall([]int32{1, 1, 2, 2, 3}, 3) {
		t.Fatal("3 distinct <= 3 should pass")
	}
	if DistinctSmall([]int32{1, 2, 3, 4}, 3) {
		t.Fatal("4 distinct > 3 should fail")
	}
	if !DistinctSmall(nil, 0) {
		t.Fatal("empty should pass")
	}
}

func TestBitVecSizeAccounting(t *testing.T) {
	vals := lowCardVals(rand.New(rand.NewSource(15)), 640, 4)
	b := NewBitVecBlock(vals)
	// k bitmaps of ceil(640/64)*8 bytes plus directory.
	want := int64(b.Cardinality())*80 + int64(b.Cardinality())*4
	if b.CompressedBytes() != want {
		t.Fatalf("CompressedBytes=%d want %d", b.CompressedBytes(), want)
	}
}

// TestQuickBitVecFilterOracle: direct operation equals decoded filtering.
func TestQuickBitVecFilterOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := lowCardVals(rng, rng.Intn(700)+1, rng.Intn(16)+1)
		b := NewBitVecBlock(vals)
		p := genPred(rng, vals)
		bm := bitmap.New(len(vals))
		b.Filter(p, 0, bm)
		for i, v := range vals {
			if bm.Get(i) != p.Match(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBitVecVsBitPackFilter is the encoding ablation: bit-vector's
// predicate path does no per-position work.
func BenchmarkBitVecVsBitPackFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	vals := lowCardVals(rng, 1<<16, 5)
	bv := NewBitVecBlock(vals)
	bp := NewBitPackBlock(vals)
	p := In(0, 6)
	b.Run("bitvec", func(b *testing.B) {
		bm := bitmap.New(len(vals))
		b.SetBytes(int64(len(vals)) * 4)
		for i := 0; i < b.N; i++ {
			bm.Reset()
			bv.Filter(p, 0, bm)
		}
	})
	b.Run("bitpack", func(b *testing.B) {
		bm := bitmap.New(len(vals))
		b.SetBytes(int64(len(vals)) * 4)
		for i := 0; i < b.N; i++ {
			bm.Reset()
			bp.Filter(p, 0, bm)
		}
	})
}
