package compress

import (
	"math/rand"
	"testing"

	"repro/internal/bitmap"
)

// wireShapes generates value distributions that exercise every encoding the
// chooser can pick plus every constructor directly.
func wireShapes() map[string][]int32 {
	rng := rand.New(rand.NewSource(42))
	sorted := make([]int32, 5000)
	for i := range sorted {
		sorted[i] = int32(i / 7)
	}
	monotonic := make([]int32, 5000)
	v := int32(-2_000_000_000)
	for i := range monotonic {
		v += rng.Int31n(1000)
		monotonic[i] = v
	}
	lowCard := make([]int32, 5000)
	for i := range lowCard {
		lowCard[i] = []int32{-3, 0, 7, 1 << 20}[rng.Intn(4)]
	}
	narrow := make([]int32, 5000)
	for i := range narrow {
		narrow[i] = 100_000 + rng.Int31n(37)
	}
	random := make([]int32, 5000)
	for i := range random {
		random[i] = rng.Int31() - rng.Int31()
	}
	extremes := []int32{-1 << 31, 1<<31 - 1, 0, -1, 1, -1 << 31, 1<<31 - 1}
	return map[string][]int32{
		"sorted-runs": sorted,
		"monotonic":   monotonic,
		"low-card":    lowCard,
		"narrow":      narrow,
		"random":      random,
		"extremes":    extremes,
		"single":      {12345},
		"constant":    {7, 7, 7, 7, 7, 7, 7, 7},
	}
}

func checkWireRoundTrip(t *testing.T, label string, blk IntBlock, vals []int32) {
	t.Helper()
	payload := AppendBlock(blk, nil)
	got, err := DecodeBlock(blk.Encoding(), blk.Len(), payload)
	if err != nil {
		t.Fatalf("%s: DecodeBlock(%v): %v", label, blk.Encoding(), err)
	}
	if got.Encoding() != blk.Encoding() || got.Len() != blk.Len() {
		t.Fatalf("%s: decoded to %v/%d, want %v/%d", label, got.Encoding(), got.Len(), blk.Encoding(), blk.Len())
	}
	gmn, gmx := got.MinMax()
	wmn, wmx := blk.MinMax()
	if gmn != wmn || gmx != wmx {
		t.Fatalf("%s: min/max [%d,%d] want [%d,%d]", label, gmn, gmx, wmn, wmx)
	}
	if got.CompressedBytes() != blk.CompressedBytes() {
		t.Errorf("%s: CompressedBytes %d want %d", label, got.CompressedBytes(), blk.CompressedBytes())
	}
	dec := got.AppendTo(nil)
	for i, v := range vals {
		if dec[i] != v {
			t.Fatalf("%s: value %d decoded %d want %d", label, i, dec[i], v)
		}
	}
	// Behavioural spot checks: a filter and a gather must agree with the
	// original block (the executor runs both on pool-loaded blocks).
	p := Between(vals[0]-1, vals[0]+1)
	a, b := bitmap.New(len(vals)), bitmap.New(len(vals))
	blk.Filter(p, 0, a)
	got.Filter(p, 0, b)
	if a.Count() != b.Count() {
		t.Fatalf("%s: filter count %d want %d", label, b.Count(), a.Count())
	}
	idx := []int32{0, int32(len(vals) / 2), int32(len(vals) - 1)}
	ga, gb := blk.Gather(idx, nil), got.Gather(idx, nil)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("%s: gather[%d] %d want %d", label, i, gb[i], ga[i])
		}
	}
}

// TestWireRoundTrip serializes and reconstructs every encoding over several
// value shapes, requiring bit-identical decode, statistics, size accounting,
// and operator behaviour.
func TestWireRoundTrip(t *testing.T) {
	for name, vals := range wireShapes() {
		checkWireRoundTrip(t, name+"/chosen", Choose(vals), vals)
		checkWireRoundTrip(t, name+"/plain", NewPlainBlock(vals), vals)
		checkWireRoundTrip(t, name+"/rle", NewRLEBlock(vals), vals)
		checkWireRoundTrip(t, name+"/bitpack", NewBitPackBlock(vals), vals)
		checkWireRoundTrip(t, name+"/delta", NewDeltaBlock(vals), vals)
		if DistinctSmall(vals, maxBitVecValues) {
			checkWireRoundTrip(t, name+"/bitvec", NewBitVecBlock(vals), vals)
		}
	}
}

// TestWireRejectsMalformed feeds corrupted payloads to every decoder; all
// must fail loudly rather than build a block over bad state.
func TestWireRejectsMalformed(t *testing.T) {
	vals := []int32{1, 2, 3, 4, 5, 5, 5, 9}
	for _, blk := range []IntBlock{
		NewPlainBlock(vals), NewRLEBlock(vals), NewBitPackBlock(vals),
		NewDeltaBlock(vals), NewBitVecBlock(vals),
	} {
		payload := AppendBlock(blk, nil)
		if _, err := DecodeBlock(blk.Encoding(), blk.Len(), payload[:len(payload)-1]); err == nil {
			t.Errorf("%v: truncated payload accepted", blk.Encoding())
		}
		if _, err := DecodeBlock(blk.Encoding(), blk.Len(), append(payload, 0xCC)); err == nil {
			t.Errorf("%v: oversized payload accepted", blk.Encoding())
		}
		// +64 keeps the mismatch visible to every encoding's structural
		// checks (bit-vector maps are sized in 64-bit words, so a +1 row
		// miscount lands in the same word count and only the CRC layer
		// above can catch it).
		if _, err := DecodeBlock(blk.Encoding(), blk.Len()+64, payload); err == nil {
			t.Errorf("%v: wrong row count accepted", blk.Encoding())
		}
	}
	if _, err := DecodeBlock(Encoding(99), 8, nil); err == nil {
		t.Error("unknown encoding accepted")
	}
}

// FuzzWireDecode hammers DecodeBlock with arbitrary bytes: it must never
// panic, and whenever it succeeds the block must decode exactly the declared
// number of rows.
func FuzzWireDecode(f *testing.F) {
	for _, vals := range wireShapes() {
		blk := Choose(vals)
		f.Add(uint8(blk.Encoding()), uint16(blk.Len()), AppendBlock(blk, nil))
	}
	f.Fuzz(func(t *testing.T, enc uint8, rows uint16, data []byte) {
		blk, err := DecodeBlock(Encoding(enc), int(rows), data)
		if err != nil {
			return
		}
		if got := len(blk.AppendTo(nil)); got != int(rows) {
			t.Fatalf("decoded %d rows, declared %d", got, rows)
		}
	})
}
