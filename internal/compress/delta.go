package compress

import (
	"math/bits"

	"repro/internal/bitmap"
)

// DeltaBlock stores the first value and bit-packed successive differences.
// It suits near-monotonic sequences such as order keys, where deltas are
// tiny even though absolute values span the whole int32 range.
type DeltaBlock struct {
	first    int32
	deltas   []uint64 // packed
	width    uint
	minDelta int64
	n        int
	min, max int32
}

// NewDeltaBlock delta-encodes vals.
func NewDeltaBlock(vals []int32) *DeltaBlock {
	mn, mx := minMax(vals)
	b := &DeltaBlock{n: len(vals), min: mn, max: mx}
	if len(vals) == 0 {
		return b
	}
	b.first = vals[0]
	// Find delta range.
	minD, maxD := int64(0), int64(0)
	for i := 1; i < len(vals); i++ {
		d := int64(vals[i]) - int64(vals[i-1])
		if i == 1 || d < minD {
			minD = d
		}
		if i == 1 || d > maxD {
			maxD = d
		}
	}
	b.minDelta = minD
	width := uint(bits.Len64(uint64(maxD - minD)))
	if width == 0 {
		width = 1
	}
	b.width = width
	b.deltas = make([]uint64, (uint(len(vals)-1)*width+63)/64)
	for i := 1; i < len(vals); i++ {
		d := uint64(int64(vals[i]) - int64(vals[i-1]) - minD)
		bitPos := uint(i-1) * width
		w, off := bitPos/64, bitPos%64
		b.deltas[w] |= d << off
		if off+width > 64 {
			b.deltas[w+1] |= d >> (64 - off)
		}
	}
	return b
}

// DeltaWidth returns the packed width vals would need, for the chooser.
func DeltaWidth(vals []int32) uint {
	if len(vals) < 2 {
		return 1
	}
	minD, maxD := int64(vals[1])-int64(vals[0]), int64(vals[1])-int64(vals[0])
	for i := 2; i < len(vals); i++ {
		d := int64(vals[i]) - int64(vals[i-1])
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	w := uint(bits.Len64(uint64(maxD - minD)))
	if w == 0 {
		w = 1
	}
	return w
}

func (b *DeltaBlock) delta(i int) int64 {
	bitPos := uint(i) * b.width
	w, off := bitPos/64, bitPos%64
	u := b.deltas[w] >> off
	if off+b.width > 64 {
		u |= b.deltas[w+1] << (64 - off)
	}
	return int64(u&((1<<b.width)-1)) + b.minDelta
}

// Len implements IntBlock.
func (b *DeltaBlock) Len() int { return b.n }

// Encoding implements IntBlock.
func (b *DeltaBlock) Encoding() Encoding { return Delta }

// MinMax implements IntBlock.
func (b *DeltaBlock) MinMax() (int32, int32) { return b.min, b.max }

// AppendTo implements IntBlock.
func (b *DeltaBlock) AppendTo(dst []int32) []int32 {
	if b.n == 0 {
		return dst
	}
	countDecoded(b.n)
	v := int64(b.first)
	dst = append(dst, b.first)
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		dst = append(dst, int32(v))
	}
	return dst
}

// Get implements IntBlock. Delta blocks have no random access; Get decodes a
// prefix, so executors should prefer AppendTo or Gather. It exists to keep
// the interface total.
func (b *DeltaBlock) Get(i int) int32 {
	v := int64(b.first)
	for k := 0; k < i; k++ {
		v += b.delta(k)
	}
	return int32(v)
}

// Filter implements IntBlock by streaming the decoded sequence.
func (b *DeltaBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	if b.n == 0 {
		return
	}
	v := int64(b.first)
	if p.Match(int32(v)) {
		bm.Set(base)
	}
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		if p.Match(int32(v)) {
			bm.Set(base + i + 1)
		}
	}
}

// FilterSet implements IntBlock by streaming the decoded sequence through
// the membership test.
func (b *DeltaBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	if b.n == 0 {
		return
	}
	v := int64(b.first)
	if setContains(set, setMin, int32(v)) {
		bm.Set(base)
	}
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		if setContains(set, setMin, int32(v)) {
			bm.Set(base + i + 1)
		}
	}
}

// Gather implements IntBlock with one forward decode pass (idx is sorted).
func (b *DeltaBlock) Gather(idx []int32, dst []int32) []int32 {
	if len(idx) == 0 {
		return dst
	}
	countDecoded(len(idx))
	v := int64(b.first)
	pos := int32(0)
	k := 0
	for k < len(idx) && idx[k] == 0 {
		dst = append(dst, b.first)
		k++
	}
	for i := 0; i < b.n-1 && k < len(idx); i++ {
		v += b.delta(i)
		pos = int32(i + 1)
		for k < len(idx) && idx[k] == pos {
			dst = append(dst, int32(v))
			k++
		}
	}
	return dst
}

// AggSelect implements IntBlock with one forward streaming pass — the same
// cost as Filter, since delta encoding has no random access to exploit.
func (b *DeltaBlock) AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc) {
	if b.n == 0 {
		return
	}
	v := int64(b.first)
	if sel == nil || sel.Get(base) {
		acc.observe(int32(v), 1)
	}
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		if sel == nil || sel.Get(base+i+1) {
			acc.observe(int32(v), 1)
		}
	}
}

// GatherSelect implements IntBlock with one forward streaming pass.
func (b *DeltaBlock) GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32 {
	if b.n == 0 {
		return dst
	}
	n := len(dst)
	v := int64(b.first)
	if sel == nil || sel.Get(base) {
		dst = append(dst, b.first)
	}
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		if sel == nil || sel.Get(base+i+1) {
			dst = append(dst, int32(v))
		}
	}
	countDecoded(len(dst) - n)
	return dst
}

// FilterFunc implements IntBlock by streaming the decoded sequence.
func (b *DeltaBlock) FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap) {
	if b.n == 0 {
		return
	}
	v := int64(b.first)
	if match(int32(v)) {
		bm.Set(base)
	}
	for i := 0; i < b.n-1; i++ {
		v += b.delta(i)
		if match(int32(v)) {
			bm.Set(base + i + 1)
		}
	}
}

// CompressedBytes implements IntBlock.
func (b *DeltaBlock) CompressedBytes() int64 { return int64(len(b.deltas))*8 + 24 }
