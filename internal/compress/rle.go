package compress

import (
	"sort"

	"repro/internal/bitmap"
)

// Run is one run of identical values: vals[Start : Start+Len] == Val.
type Run struct {
	Val   int32
	Start int32
	Len   int32
}

// RLEBlock stores a block as runs of repeated values. Predicate application
// touches each run once regardless of run length, which is the "perform the
// same operation on multiple column values at once" benefit described in
// Section 5.1.
type RLEBlock struct {
	runs     []Run
	n        int
	min, max int32
}

// NewRLEBlock run-length encodes vals.
func NewRLEBlock(vals []int32) *RLEBlock {
	b := &RLEBlock{n: len(vals)}
	b.min, b.max = minMax(vals)
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		b.runs = append(b.runs, Run{Val: vals[i], Start: int32(i), Len: int32(j - i)})
		i = j
	}
	return b
}

// CountRuns returns the number of runs vals would encode to, used by the
// encoding chooser.
func CountRuns(vals []int32) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}

// Len implements IntBlock.
func (b *RLEBlock) Len() int { return b.n }

// Encoding implements IntBlock.
func (b *RLEBlock) Encoding() Encoding { return RLE }

// MinMax implements IntBlock.
func (b *RLEBlock) MinMax() (int32, int32) { return b.min, b.max }

// NumRuns returns the run count (compression diagnostics).
func (b *RLEBlock) NumRuns() int { return len(b.runs) }

// Runs exposes the run list for executors that aggregate directly over
// compressed data (e.g. summing val*len per run).
func (b *RLEBlock) Runs() []Run { return b.runs }

// AppendTo implements IntBlock.
func (b *RLEBlock) AppendTo(dst []int32) []int32 {
	countDecoded(b.n)
	for _, r := range b.runs {
		for k := int32(0); k < r.Len; k++ {
			dst = append(dst, r.Val)
		}
	}
	return dst
}

// Get implements IntBlock via binary search over run starts.
func (b *RLEBlock) Get(i int) int32 {
	ri := sort.Search(len(b.runs), func(k int) bool { return b.runs[k].Start > int32(i) }) - 1
	return b.runs[ri].Val
}

// Filter implements IntBlock: one predicate evaluation per run, with whole
// ranges set at once for matching runs.
func (b *RLEBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	for _, r := range b.runs {
		if p.Match(r.Val) {
			bm.SetRange(base+int(r.Start), base+int(r.Start+r.Len))
		}
	}
}

// FilterSet implements IntBlock: one membership bit test per run, with whole
// ranges set at once for matching runs.
func (b *RLEBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	for _, r := range b.runs {
		if setContains(set, setMin, r.Val) {
			bm.SetRange(base+int(r.Start), base+int(r.Start+r.Len))
		}
	}
}

// Gather implements IntBlock with a merge walk: positions are sorted, so a
// single forward pass over runs suffices.
func (b *RLEBlock) Gather(idx []int32, dst []int32) []int32 {
	countDecoded(len(idx))
	ri := 0
	for _, i := range idx {
		for b.runs[ri].Start+b.runs[ri].Len <= i {
			ri++
		}
		dst = append(dst, b.runs[ri].Val)
	}
	return dst
}

// AggSelect implements IntBlock: each run contributes val x (number of
// selected positions inside the run), priced by a word-wise popcount over
// the selection bitmap — the paper's "sum over a run = value x run length"
// executed without decoding a single value.
func (b *RLEBlock) AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc) {
	for _, r := range b.runs {
		cnt := int64(r.Len)
		if sel != nil {
			cnt = int64(sel.CountRange(base+int(r.Start), base+int(r.Start+r.Len)))
		}
		acc.observe(r.Val, cnt)
	}
}

// GatherSelect implements IntBlock: one CountRange per run tells how many
// copies of the run value to emit, so output cost is proportional to the
// selection, never the block.
func (b *RLEBlock) GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32 {
	n := len(dst)
	for _, r := range b.runs {
		cnt := int(r.Len)
		if sel != nil {
			cnt = sel.CountRange(base+int(r.Start), base+int(r.Start+r.Len))
		}
		for k := 0; k < cnt; k++ {
			dst = append(dst, r.Val)
		}
	}
	countDecoded(len(dst) - n)
	return dst
}

// FilterFunc implements IntBlock: one callback per run.
func (b *RLEBlock) FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap) {
	for _, r := range b.runs {
		if match(r.Val) {
			bm.SetRange(base+int(r.Start), base+int(r.Start+r.Len))
		}
	}
}

// CompressedBytes implements IntBlock: 12 bytes per run (value, start,
// length).
func (b *RLEBlock) CompressedBytes() int64 { return int64(len(b.runs)) * 12 }

// SortedFilterRange exploits a fully sorted block: when the block is sorted
// ascending, the set of positions matching an interval predicate is itself
// one contiguous range. Returns ok=false if the predicate has no interval
// bounds. start/end are block-local, end exclusive.
func (b *RLEBlock) SortedFilterRange(p Pred) (start, end int32, ok bool) {
	lo, hi, ok := p.Bounds()
	if !ok {
		return 0, 0, false
	}
	// First run with Val >= lo.
	i := sort.Search(len(b.runs), func(k int) bool { return b.runs[k].Val >= lo })
	// First run with Val > hi.
	j := sort.Search(len(b.runs), func(k int) bool { return b.runs[k].Val > hi })
	if i >= j {
		return 0, 0, true // empty match
	}
	return b.runs[i].Start, b.runs[j-1].Start + b.runs[j-1].Len, true
}
