package compress

import (
	"math/bits"

	"repro/internal/bitmap"
)

// BitPackBlock stores values as fixed-width bit fields offset from the block
// minimum. A block of discounts 0..10 packs into 4 bits/value instead of 32.
type BitPackBlock struct {
	words    []uint64
	width    uint // bits per value, 1..32
	n        int
	min, max int32
}

// NewBitPackBlock packs vals using the narrowest width that covers
// max(vals)-min(vals).
func NewBitPackBlock(vals []int32) *BitPackBlock {
	mn, mx := minMax(vals)
	span := uint64(int64(mx) - int64(mn))
	width := uint(bits.Len64(span))
	if width == 0 {
		width = 1
	}
	b := &BitPackBlock{
		words: make([]uint64, (uint(len(vals))*width+63)/64),
		width: width,
		n:     len(vals),
		min:   mn,
		max:   mx,
	}
	for i, v := range vals {
		b.put(i, uint64(int64(v)-int64(mn)))
	}
	return b
}

func (b *BitPackBlock) put(i int, u uint64) {
	bitPos := uint(i) * b.width
	w, off := bitPos/64, bitPos%64
	b.words[w] |= u << off
	if off+b.width > 64 {
		b.words[w+1] |= u >> (64 - off)
	}
}

func (b *BitPackBlock) get(i int) uint64 {
	bitPos := uint(i) * b.width
	w, off := bitPos/64, bitPos%64
	u := b.words[w] >> off
	if off+b.width > 64 {
		u |= b.words[w+1] << (64 - off)
	}
	return u & ((1 << b.width) - 1)
}

// Len implements IntBlock.
func (b *BitPackBlock) Len() int { return b.n }

// Encoding implements IntBlock.
func (b *BitPackBlock) Encoding() Encoding { return BitPack }

// MinMax implements IntBlock.
func (b *BitPackBlock) MinMax() (int32, int32) { return b.min, b.max }

// Width returns the bits used per value (diagnostics).
func (b *BitPackBlock) Width() uint { return b.width }

// AppendTo implements IntBlock.
func (b *BitPackBlock) AppendTo(dst []int32) []int32 {
	countDecoded(b.n)
	for i := 0; i < b.n; i++ {
		dst = append(dst, int32(int64(b.min)+int64(b.get(i))))
	}
	return dst
}

// Get implements IntBlock.
func (b *BitPackBlock) Get(i int) int32 { return int32(int64(b.min) + int64(b.get(i))) }

// Filter implements IntBlock. The predicate is rebased into code space so
// the inner loop compares packed codes without reconstructing values; the
// word cursor advances incrementally rather than recomputing the bit
// position per value.
func (b *BitPackBlock) Filter(p Pred, base int, bm *bitmap.Bitmap) {
	if lo, hi, ok := p.Bounds(); ok {
		// Rebase interval to code space, clamping at block bounds.
		cl := int64(lo) - int64(b.min)
		ch := int64(hi) - int64(b.min)
		if ch < 0 || cl > int64(b.max)-int64(b.min) {
			return
		}
		if cl < 0 {
			cl = 0
		}
		ulo, uhi := uint64(cl), uint64(ch)
		mask := uint64(1)<<b.width - 1
		w, off := 0, uint(0)
		for i := 0; i < b.n; i++ {
			u := b.words[w] >> off
			if off+b.width > 64 {
				u |= b.words[w+1] << (64 - off)
			}
			off += b.width
			if off >= 64 {
				off -= 64
				w++
			}
			if c := u & mask; c >= ulo && c <= uhi {
				bm.Set(base + i)
			}
		}
		return
	}
	for i := 0; i < b.n; i++ {
		if p.Match(b.Get(i)) {
			bm.Set(base + i)
		}
	}
}

// FilterSet implements IntBlock. The set window is rebased into code space
// once, so the inner loop tests packed codes without reconstructing values.
func (b *BitPackBlock) FilterSet(set *bitmap.Bitmap, setMin int32, base int, bm *bitmap.Bitmap) {
	if b.max < setMin || int64(b.min) > int64(setMin)+int64(set.Len())-1 {
		return
	}
	rebase := int64(b.min) - int64(setMin)
	n := int64(set.Len())
	mask := uint64(1)<<b.width - 1
	w, off := 0, uint(0)
	for i := 0; i < b.n; i++ {
		u := b.words[w] >> off
		if off+b.width > 64 {
			u |= b.words[w+1] << (64 - off)
		}
		off += b.width
		if off >= 64 {
			off -= 64
			w++
		}
		if k := int64(u&mask) + rebase; k >= 0 && k < n && set.Get(int(k)) {
			bm.Set(base + i)
		}
	}
}

// Gather implements IntBlock.
func (b *BitPackBlock) Gather(idx []int32, dst []int32) []int32 {
	countDecoded(len(idx))
	for _, i := range idx {
		dst = append(dst, b.Get(int(i)))
	}
	return dst
}

// AggSelect implements IntBlock. Codes are accumulated in code space with
// the streaming word cursor and widened exactly once at the end
// (sum = count*min + sum(codes)), so the hot loop is shift/mask/popcount
// with no value reconstruction.
func (b *BitPackBlock) AggSelect(sel *bitmap.Bitmap, base int, acc *AggAcc) {
	var codeSum uint64
	var count int64
	cMin, cMax := uint64(1)<<63, uint64(0)
	if sel == nil {
		mask := uint64(1)<<b.width - 1
		w, off := 0, uint(0)
		for i := 0; i < b.n; i++ {
			u := b.words[w] >> off
			if off+b.width > 64 {
				u |= b.words[w+1] << (64 - off)
			}
			off += b.width
			if off >= 64 {
				off -= 64
				w++
			}
			c := u & mask
			codeSum += c
			count++
			if c < cMin {
				cMin = c
			}
			if c > cMax {
				cMax = c
			}
		}
	} else {
		// Partial selections walk the selection words directly — one
		// trailing-zeros step per selected position, O(selected) random
		// accesses (fields are fixed-width, so position i is bit i*width).
		for pos := range selWords(sel, base, b.n) {
			c := b.get(pos)
			codeSum += c
			count++
			if c < cMin {
				cMin = c
			}
			if c > cMax {
				cMax = c
			}
		}
	}
	if count == 0 {
		return
	}
	acc.Sum += count*int64(b.min) + int64(codeSum)
	acc.Count += count
	if v := int64(b.min) + int64(cMin); v < acc.Min {
		acc.Min = v
	}
	if v := int64(b.min) + int64(cMax); v > acc.Max {
		acc.Max = v
	}
}

// GatherSelect implements IntBlock: full blocks stream the word cursor,
// partial selections hop set bits with the random-access cursor.
func (b *BitPackBlock) GatherSelect(sel *bitmap.Bitmap, base int, dst []int32) []int32 {
	n := len(dst)
	if sel == nil {
		mask := uint64(1)<<b.width - 1
		w, off := 0, uint(0)
		for i := 0; i < b.n; i++ {
			u := b.words[w] >> off
			if off+b.width > 64 {
				u |= b.words[w+1] << (64 - off)
			}
			off += b.width
			if off >= 64 {
				off -= 64
				w++
			}
			dst = append(dst, int32(int64(b.min)+int64(u&mask)))
		}
	} else {
		for pos := range selWords(sel, base, b.n) {
			dst = append(dst, int32(int64(b.min)+int64(b.get(pos))))
		}
	}
	countDecoded(len(dst) - n)
	return dst
}

// FilterFunc implements IntBlock: streaming decode, one callback per value.
func (b *BitPackBlock) FilterFunc(match func(int32) bool, base int, bm *bitmap.Bitmap) {
	mask := uint64(1)<<b.width - 1
	w, off := 0, uint(0)
	for i := 0; i < b.n; i++ {
		u := b.words[w] >> off
		if off+b.width > 64 {
			u |= b.words[w+1] << (64 - off)
		}
		off += b.width
		if off >= 64 {
			off -= 64
			w++
		}
		if match(int32(int64(b.min) + int64(u&mask))) {
			bm.Set(base + i)
		}
	}
}

// CompressedBytes implements IntBlock.
func (b *BitPackBlock) CompressedBytes() int64 { return int64(len(b.words))*8 + 16 }
