// Package compress implements the column-oriented compression schemes from
// Section 5.1 of the paper — run-length encoding, bit-packing, delta
// encoding, and order-preserving dictionary encoding — together with the
// "direct operation on compressed data" access paths (predicate application
// and value gather without full decompression).
package compress

import "sort"

// Op is a comparison operator applied to int32 column values.
type Op uint8

const (
	// OpEq matches v == A.
	OpEq Op = iota
	// OpNe matches v != A.
	OpNe
	// OpLt matches v < A.
	OpLt
	// OpLe matches v <= A.
	OpLe
	// OpGt matches v > A.
	OpGt
	// OpGe matches v >= A.
	OpGe
	// OpBetween matches A <= v <= B (inclusive on both ends, as in the
	// paper's between-predicate rewriting).
	OpBetween
	// OpIn matches v ∈ Set (Set must be sorted ascending).
	OpIn
)

// String returns the SQL-ish spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "between"
	case OpIn:
		return "in"
	default:
		return "?"
	}
}

// Pred is a predicate over int32 values. A and B are operands; Set is used
// only by OpIn and must be sorted ascending.
type Pred struct {
	Op  Op
	A   int32
	B   int32
	Set []int32
}

// Eq returns an equality predicate.
func Eq(a int32) Pred { return Pred{Op: OpEq, A: a} }

// Between returns an inclusive range predicate A <= v <= B.
func Between(a, b int32) Pred { return Pred{Op: OpBetween, A: a, B: b} }

// Lt returns v < a.
func Lt(a int32) Pred { return Pred{Op: OpLt, A: a} }

// Le returns v <= a.
func Le(a int32) Pred { return Pred{Op: OpLe, A: a} }

// Gt returns v > a.
func Gt(a int32) Pred { return Pred{Op: OpGt, A: a} }

// Ge returns v >= a.
func Ge(a int32) Pred { return Pred{Op: OpGe, A: a} }

// In returns v ∈ set. The slice is sorted in place.
func In(set ...int32) Pred {
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return Pred{Op: OpIn, Set: set}
}

// Match reports whether v satisfies the predicate.
func (p Pred) Match(v int32) bool {
	switch p.Op {
	case OpEq:
		return v == p.A
	case OpNe:
		return v != p.A
	case OpLt:
		return v < p.A
	case OpLe:
		return v <= p.A
	case OpGt:
		return v > p.A
	case OpGe:
		return v >= p.A
	case OpBetween:
		return v >= p.A && v <= p.B
	case OpIn:
		i := sort.Search(len(p.Set), func(i int) bool { return p.Set[i] >= v })
		return i < len(p.Set) && p.Set[i] == v
	default:
		return false
	}
}

// Bounds returns the closed interval [lo, hi] of values that could satisfy
// the predicate, and ok=false when the predicate is not representable as a
// single interval (OpNe, OpIn with gaps). It is used for block pruning via
// min/max statistics and for the sorted-column fast path.
func (p Pred) Bounds() (lo, hi int32, ok bool) {
	const (
		minI = -1 << 31
		maxI = 1<<31 - 1
	)
	switch p.Op {
	case OpEq:
		return p.A, p.A, true
	case OpLt:
		return minI, p.A - 1, true
	case OpLe:
		return minI, p.A, true
	case OpGt:
		return p.A + 1, maxI, true
	case OpGe:
		return p.A, maxI, true
	case OpBetween:
		return p.A, p.B, true
	case OpIn:
		if len(p.Set) == 0 {
			return 0, -1, true // empty: matches nothing
		}
		// Contiguous integer sets collapse to a between interval.
		for i := 1; i < len(p.Set); i++ {
			if p.Set[i] != p.Set[i-1]+1 {
				return p.Set[0], p.Set[len(p.Set)-1], false
			}
		}
		return p.Set[0], p.Set[len(p.Set)-1], true
	default:
		return minI, maxI, false
	}
}

// MayMatch reports whether any value in [min, max] could satisfy the
// predicate; used to skip whole blocks.
func (p Pred) MayMatch(min, max int32) bool {
	switch p.Op {
	case OpNe:
		return !(min == max && min == p.A)
	case OpIn:
		for _, v := range p.Set {
			if v >= min && v <= max {
				return true
			}
		}
		return false
	default:
		lo, hi, _ := p.Bounds()
		return lo <= max && hi >= min
	}
}
