// Package colstore implements the C-Store-style storage layer: tables whose
// columns are stored separately as sequences of encoded blocks, matched up
// implicitly by position (Section 6.3.1 — "they use implicit column
// positions to reconstruct columns... tuple headers are stored in their own
// separate columns").
//
// String columns are dictionary encoded with an order-preserving dictionary
// (compress.Dict); all physical storage and execution is over int32 codes.
package colstore

import (
	"fmt"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/vector"
)

// BlockSize is the number of values per encoded block (a C-Store-style
// segment). 64K values keeps per-block min/max pruning useful.
const BlockSize = 1 << 16

// SortKind describes a column's sort property within its projection.
type SortKind uint8

const (
	// Unsorted columns have no ordering guarantee.
	Unsorted SortKind = iota
	// PrimarySort means the whole column is sorted ascending (the
	// projection's leading sort key, e.g. orderdate).
	PrimarySort
	// SecondarySort means the column is sorted within runs of the
	// preceding sort keys (e.g. quantity within orderdate).
	SecondarySort
)

// Column is one attribute stored as encoded blocks. For string attributes,
// Dict is non-nil and block values are dictionary codes.
type Column struct {
	Name   string
	Sorted SortKind
	Dict   *compress.Dict

	blocks []compress.IntBlock
	n      int
}

// NewColumn builds a column over vals. When compressed is true each block
// picks its own encoding via compress.Choose; otherwise all blocks are
// plain, which is how the Figure 7 "compression removed" configuration is
// expressed.
func NewColumn(name string, vals []int32, dict *compress.Dict, sorted SortKind, compressed bool) *Column {
	c := &Column{Name: name, Sorted: sorted, Dict: dict, n: len(vals)}
	for off := 0; off < len(vals); off += BlockSize {
		end := off + BlockSize
		if end > len(vals) {
			end = len(vals)
		}
		chunk := vals[off:end]
		if compressed {
			c.blocks = append(c.blocks, compress.Choose(chunk))
		} else {
			c.blocks = append(c.blocks, compress.NewPlainBlock(chunk))
		}
	}
	return c
}

// NumRows returns the number of values in the column.
func (c *Column) NumRows() int { return c.n }

// NumBlocks returns the block count.
func (c *Column) NumBlocks() int { return len(c.blocks) }

// Block returns the i-th block (for executors that stream blocks).
func (c *Column) Block(i int) compress.IntBlock { return c.blocks[i] }

// CompressedBytes is the on-disk footprint charged when scanning the column.
func (c *Column) CompressedBytes() int64 {
	var n int64
	for _, b := range c.blocks {
		n += b.CompressedBytes()
	}
	return n
}

// RawBytes is the uncompressed footprint (4 bytes per value).
func (c *Column) RawBytes() int64 { return int64(c.n) * 4 }

// Encodings summarises block encodings, for stats output.
func (c *Column) Encodings() map[compress.Encoding]int {
	m := map[compress.Encoding]int{}
	for _, b := range c.blocks {
		m[b.Encoding()]++
	}
	return m
}

// Filter scans the column with predicate p and returns the matching
// positions. Blocks whose min/max statistics exclude the predicate are
// skipped without charging I/O (their values are never read). For a
// primary-sorted column with an interval predicate the result collapses to a
// contiguous PosRange found by block statistics plus an in-block range
// probe, reading only the boundary blocks.
func (c *Column) Filter(p compress.Pred, st *iosim.Stats) *vector.Positions {
	if c.Sorted == PrimarySort {
		if pos, ok := c.sortedFilter(p, st); ok {
			return pos
		}
	}
	bm := bitmap.New(c.n)
	base := 0
	for _, blk := range c.blocks {
		mn, mx := blk.MinMax()
		if p.MayMatch(mn, mx) {
			st.Read(blk.CompressedBytes())
			blk.Filter(p, base, bm)
		}
		base += blk.Len()
	}
	return vector.NewBitmapPositions(bm)
}

// sortedFilter exploits a globally sorted column: the matching positions are
// one contiguous range.
func (c *Column) sortedFilter(p compress.Pred, st *iosim.Stats) (*vector.Positions, bool) {
	lo, hi, ok := p.Bounds()
	if !ok {
		return nil, false
	}
	start, end := int32(-1), int32(-1)
	base := int32(0)
	for _, blk := range c.blocks {
		mn, mx := blk.MinMax()
		blkLen := int32(blk.Len())
		if mx >= lo && mn <= hi {
			// Boundary or interior block.
			if mn >= lo && mx <= hi {
				// Fully inside: covered without reading values.
				if start < 0 {
					start = base
				}
				end = base + blkLen
			} else {
				// Boundary block: read it to locate the edge.
				st.Read(blk.CompressedBytes())
				s, e := c.blockRange(blk, p)
				if e > s {
					if start < 0 {
						start = base + s
					}
					end = base + e
				}
			}
		}
		base += blkLen
	}
	if start < 0 {
		return vector.NewRangePositions(0, 0), true
	}
	return vector.NewRangePositions(start, end), true
}

// blockRange finds the in-block contiguous match range for a sorted block.
func (c *Column) blockRange(blk compress.IntBlock, p compress.Pred) (int32, int32) {
	if rle, ok := blk.(*compress.RLEBlock); ok {
		s, e, ok := rle.SortedFilterRange(p)
		if ok {
			if e < s {
				return 0, 0
			}
			return s, e
		}
	}
	// Other encodings: decode the boundary block once (this happens for
	// at most two blocks per sorted filter) and binary-search the sorted
	// values.
	lo, hi, _ := p.Bounds()
	vals := blk.AppendTo(nil)
	start := sort.Search(len(vals), func(i int) bool { return vals[i] >= lo })
	end := sort.Search(len(vals), func(i int) bool { return vals[i] > hi })
	if start >= end {
		return 0, 0
	}
	return int32(start), int32(end)
}

// FilterAt applies p only at candidate positions (pipelined predicate
// application from Section 5.4: "the results of a predicate application can
// be pipelined into another predicate application to reduce the number of
// times the second predicate must be applied"). Only blocks containing
// candidates are read.
func (c *Column) FilterAt(p compress.Pred, candidates *vector.Positions, st *iosim.Stats) *vector.Positions {
	out := bitmap.New(c.n)
	var scratchIdx []int32
	var scratchVals []int32
	c.forEachCandidateBlock(candidates, st, func(base int32, blk compress.IntBlock, idx []int32) {
		mn, mx := blk.MinMax()
		if !p.MayMatch(mn, mx) {
			return
		}
		scratchVals = blk.Gather(idx, scratchVals[:0])
		for k, v := range scratchVals {
			if p.Match(v) {
				out.Set(int(base + idx[k]))
			}
		}
	}, &scratchIdx)
	return vector.NewBitmapPositions(out)
}

// GatherBlock gathers the values at sorted block-local indexes idx from
// block bi, charging positional I/O for the pages the indexes touch. It is
// the block-at-a-time access path of the fused executor: the caller owns the
// block loop and reuses idx/dst scratch across blocks.
func (c *Column) GatherBlock(bi int, idx []int32, dst []int32, st *iosim.Stats) []int32 {
	if len(idx) == 0 {
		return dst
	}
	chargePositional(c.blocks[bi], idx, st)
	return c.blocks[bi].Gather(idx, dst)
}

// MinMax returns the column-wide minimum and maximum from block statistics,
// without decoding any values or charging I/O.
func (c *Column) MinMax() (int32, int32) {
	if len(c.blocks) == 0 {
		return 0, 0
	}
	mn, mx := c.blocks[0].MinMax()
	for _, b := range c.blocks[1:] {
		bmn, bmx := b.MinMax()
		if bmn < mn {
			mn = bmn
		}
		if bmx > mx {
			mx = bmx
		}
	}
	return mn, mx
}

// Gather appends the values at the given positions to dst, reading only the
// blocks that contain selected positions.
func (c *Column) Gather(positions *vector.Positions, dst []int32, st *iosim.Stats) []int32 {
	var scratchIdx []int32
	c.forEachCandidateBlock(positions, st, func(base int32, blk compress.IntBlock, idx []int32) {
		dst = blk.Gather(idx, dst)
	}, &scratchIdx)
	return dst
}

// ioPageBytes is the granularity of positional reads: fetching values at
// scattered positions transfers only the pages containing them, not the
// whole segment. 32 KB matches the paper's System X page size.
const ioPageBytes = 32 * 1024

// chargePositional records the I/O for reading the given sorted block-local
// indexes from blk: the number of distinct pages they fall on.
func chargePositional(blk compress.IntBlock, idx []int32, st *iosim.Stats) {
	if st == nil || len(idx) == 0 {
		return
	}
	bytesPerVal := float64(blk.CompressedBytes()) / float64(blk.Len())
	lastPage := int64(-1)
	var pages int64
	for _, i := range idx {
		page := int64(float64(i) * bytesPerVal / ioPageBytes)
		if page != lastPage {
			pages++
			lastPage = page
		}
	}
	total := blk.CompressedBytes()
	charged := pages * ioPageBytes
	if charged > total {
		charged = total
	}
	st.Read(charged)
}

// forEachCandidateBlock groups sorted candidate positions by block, charges
// I/O for the pages the candidates touch, and invokes fn with block-local
// indexes.
func (c *Column) forEachCandidateBlock(candidates *vector.Positions, st *iosim.Stats, fn func(base int32, blk compress.IntBlock, idx []int32), scratch *[]int32) {
	bi := 0
	base := int32(0)
	blkEnd := int32(0)
	if len(c.blocks) > 0 {
		blkEnd = int32(c.blocks[0].Len())
	}
	idx := (*scratch)[:0]
	flush := func() {
		if len(idx) > 0 {
			chargePositional(c.blocks[bi], idx, st)
			fn(base, c.blocks[bi], idx)
			idx = idx[:0]
		}
	}
	candidates.ForEach(func(pos int32) {
		for pos >= blkEnd {
			flush()
			base = blkEnd
			bi++
			blkEnd += int32(c.blocks[bi].Len())
		}
		idx = append(idx, pos-base)
	})
	flush()
	*scratch = idx[:0]
}

// DecodeAll decodes the whole column, appending to dst, charging a full
// sequential scan.
func (c *Column) DecodeAll(dst []int32, st *iosim.Stats) []int32 {
	for _, blk := range c.blocks {
		st.Read(blk.CompressedBytes())
		dst = blk.AppendTo(dst)
	}
	return dst
}

// Get returns the value at position i without I/O accounting (used by tests
// and by point lookups whose cost is charged by the caller).
func (c *Column) Get(i int32) int32 {
	bi := int(i) / BlockSize
	return c.blocks[bi].Get(int(i) % BlockSize)
}

// ValueString renders the value at position i using the dictionary when
// present.
func (c *Column) ValueString(i int32) string {
	v := c.Get(i)
	if c.Dict != nil {
		return c.Dict.Value(v)
	}
	return fmt.Sprintf("%d", v)
}
