// Package colstore implements the C-Store-style storage layer: tables whose
// columns are stored separately as sequences of encoded blocks, matched up
// implicitly by position (Section 6.3.1 — "they use implicit column
// positions to reconstruct columns... tuple headers are stored in their own
// separate columns").
//
// String columns are dictionary encoded with an order-preserving dictionary
// (compress.Dict); all physical storage and execution is over int32 codes.
//
// A column's blocks live in one of two places: resident (the []IntBlock the
// column was built with, the in-memory engines' mode) or behind a
// ColumnSource (a segment file's buffer pool, internal/segstore). Executors
// see one API either way: zone-map queries (BlockMinMax, BlockLen,
// BlockEncoding, BlockBytes) never perform I/O, and AcquireBlock pins the
// decoded block only when values are actually needed — which is what makes
// min/max pruning skip pruned segments before any disk read happens.
package colstore

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/vector"
)

// BlockSize is the number of values per encoded block (a C-Store-style
// segment). 64K values keeps per-block min/max pruning useful.
const BlockSize = 1 << 16

// SortKind describes a column's sort property within its projection.
type SortKind uint8

const (
	// Unsorted columns have no ordering guarantee.
	Unsorted SortKind = iota
	// PrimarySort means the whole column is sorted ascending (the
	// projection's leading sort key, e.g. orderdate).
	PrimarySort
	// SecondarySort means the column is sorted within runs of the
	// preceding sort keys (e.g. quantity within orderdate).
	SecondarySort
)

// ColumnSource supplies a column's encoded segments on demand from external
// storage. The zone-map queries (SegRows, SegMinMax, SegEncoding, SegBytes)
// answer from persisted metadata and must not perform I/O; Acquire returns
// the decoded segment pinned in the source's buffer pool until the release
// function is called. Every segment except the last must hold exactly
// BlockSize rows (positional addressing depends on it). Implementations
// must be safe for concurrent use: the fused executor acquires blocks from
// multiple morsel workers at once.
type ColumnSource interface {
	// NumSegments returns the segment count.
	NumSegments() int
	// SegRows returns segment i's row count.
	SegRows(i int) int
	// SegMinMax returns segment i's persisted zone-map bounds.
	SegMinMax(i int) (min, max int32)
	// SegEncoding returns segment i's physical encoding tag.
	SegEncoding(i int) compress.Encoding
	// SegBytes returns segment i's model-accounting compressed size —
	// what IntBlock.CompressedBytes reports for the decoded block, which
	// the logical I/O layer charges. It intentionally differs from the
	// raw on-disk payload length (the wire format adds small structural
	// headers); returning the payload length here would skew logical I/O
	// away from the resident-column engines.
	SegBytes(i int) int64
	// Acquire returns segment i decoded and pinned; the caller must call
	// the release function exactly once when done with the block.
	Acquire(i int) (compress.IntBlock, func(), error)
}

// Column is one attribute stored as encoded blocks. For string attributes,
// Dict is non-nil and block values are dictionary codes.
type Column struct {
	Name   string
	Sorted SortKind
	Dict   *compress.Dict

	blocks []compress.IntBlock // resident mode
	src    ColumnSource        // sourced mode (nil when resident)
	n      int
}

// NewColumn builds a resident column over vals. When compressed is true each
// block picks its own encoding via compress.Choose; otherwise all blocks are
// plain, which is how the Figure 7 "compression removed" configuration is
// expressed.
func NewColumn(name string, vals []int32, dict *compress.Dict, sorted SortKind, compressed bool) *Column {
	c := &Column{Name: name, Sorted: sorted, Dict: dict, n: len(vals)}
	for off := 0; off < len(vals); off += BlockSize {
		end := off + BlockSize
		if end > len(vals) {
			end = len(vals)
		}
		chunk := vals[off:end]
		if compressed {
			c.blocks = append(c.blocks, compress.Choose(chunk))
		} else {
			c.blocks = append(c.blocks, compress.NewPlainBlock(chunk))
		}
	}
	return c
}

// NewSourcedColumn builds a column whose blocks are served by src (a segment
// file's buffer pool). Zone-map queries answer from src metadata without
// I/O; values load lazily through Acquire.
func NewSourcedColumn(name string, dict *compress.Dict, sorted SortKind, src ColumnSource) *Column {
	c := &Column{Name: name, Sorted: sorted, Dict: dict, src: src}
	for i := 0; i < src.NumSegments(); i++ {
		c.n += src.SegRows(i)
	}
	return c
}

// noopRelease is the release function for resident blocks, shared to keep
// AcquireBlock allocation-free on the in-memory path.
func noopRelease() {}

// AcquireBlock returns block i and a release function the caller must invoke
// when finished with it. Resident blocks return a no-op release; sourced
// blocks are pinned in the source's buffer pool until released. A source
// read failure (corrupt or vanished segment file) panics with the column and
// segment named: executors have no error path mid-scan, and a storage-layer
// integrity failure is not a recoverable query condition.
func (c *Column) AcquireBlock(i int) (compress.IntBlock, func()) {
	if c.src == nil {
		return c.blocks[i], noopRelease
	}
	blk, release, err := c.src.Acquire(i)
	if err != nil {
		panic(fmt.Sprintf("colstore: column %q segment %d: %v", c.Name, i, err))
	}
	return blk, release
}

// NumRows returns the number of values in the column.
func (c *Column) NumRows() int { return c.n }

// NumBlocks returns the block count.
func (c *Column) NumBlocks() int {
	if c.src != nil {
		return c.src.NumSegments()
	}
	return len(c.blocks)
}

// BlockLen returns block i's row count without touching values.
func (c *Column) BlockLen(i int) int {
	if c.src != nil {
		return c.src.SegRows(i)
	}
	return c.blocks[i].Len()
}

// BlockMinMax returns block i's zone-map bounds without touching values:
// from the persisted zone map for sourced columns, from the in-memory block
// statistics otherwise. This is the pruning entry point — callers decide
// from it whether a block is ever acquired.
func (c *Column) BlockMinMax(i int) (int32, int32) {
	if c.src != nil {
		return c.src.SegMinMax(i)
	}
	return c.blocks[i].MinMax()
}

// BlockEncoding returns block i's physical encoding without touching values.
func (c *Column) BlockEncoding(i int) compress.Encoding {
	if c.src != nil {
		return c.src.SegEncoding(i)
	}
	return c.blocks[i].Encoding()
}

// BlockBytes returns block i's on-disk footprint without touching values.
func (c *Column) BlockBytes(i int) int64 {
	if c.src != nil {
		return c.src.SegBytes(i)
	}
	return c.blocks[i].CompressedBytes()
}

// CompressedBytes is the on-disk footprint charged when scanning the column.
func (c *Column) CompressedBytes() int64 {
	var n int64
	for i := 0; i < c.NumBlocks(); i++ {
		n += c.BlockBytes(i)
	}
	return n
}

// RawBytes is the uncompressed footprint (4 bytes per value).
func (c *Column) RawBytes() int64 { return int64(c.n) * 4 }

// Encodings summarises block encodings, for stats output.
func (c *Column) Encodings() map[compress.Encoding]int {
	m := map[compress.Encoding]int{}
	for i := 0; i < c.NumBlocks(); i++ {
		m[c.BlockEncoding(i)]++
	}
	return m
}

// Filter scans the column with predicate p and returns the matching
// positions. Blocks whose zone-map statistics exclude the predicate are
// skipped without charging I/O or being acquired (for sourced columns their
// segments are never read from disk). For a primary-sorted column with an
// interval predicate the result collapses to a contiguous PosRange found by
// block statistics plus an in-block range probe, reading only the boundary
// blocks.
func (c *Column) Filter(p compress.Pred, st *iosim.Stats) *vector.Positions {
	return c.FilterCtx(context.Background(), p, st)
}

// FilterCtx is Filter with cancellation: the block loop checks ctx before
// acquiring each block and stops scanning once it is done (the sorted fast
// path reads at most two boundary blocks, below any useful cancellation
// granularity). A canceled scan's positions are a prefix and must be
// discarded by the caller.
func (c *Column) FilterCtx(ctx context.Context, p compress.Pred, st *iosim.Stats) *vector.Positions {
	if c.Sorted == PrimarySort {
		if pos, ok := c.sortedFilter(p, st); ok {
			return pos
		}
	}
	bm := bitmap.New(c.n)
	base := 0
	for bi := 0; bi < c.NumBlocks(); bi++ {
		if ctx.Err() != nil {
			break
		}
		mn, mx := c.BlockMinMax(bi)
		if p.MayMatch(mn, mx) {
			blk, release := c.AcquireBlock(bi)
			st.BlockFetched()
			st.Read(blk.CompressedBytes())
			st.KernelFold()
			blk.Filter(p, base, bm)
			release()
		} else {
			st.BlockPruned()
		}
		base += c.BlockLen(bi)
	}
	return vector.NewBitmapPositions(bm)
}

// sortedFilter exploits a globally sorted column: the matching positions are
// one contiguous range. Only boundary blocks are acquired; fully covered
// blocks are answered from the zone map alone.
func (c *Column) sortedFilter(p compress.Pred, st *iosim.Stats) (*vector.Positions, bool) {
	lo, hi, ok := p.Bounds()
	if !ok {
		return nil, false
	}
	start, end := int32(-1), int32(-1)
	base := int32(0)
	//lint:ignore ctxloop bounded: a sorted column's match range is contiguous, so at most two boundary blocks are ever acquired; the rest of the sweep is zone-map metadata
	for bi := 0; bi < c.NumBlocks(); bi++ {
		mn, mx := c.BlockMinMax(bi)
		blkLen := int32(c.BlockLen(bi))
		if mx >= lo && mn <= hi {
			// Boundary or interior block.
			if mn >= lo && mx <= hi {
				// Fully inside: covered without reading values.
				st.BlockCovered()
				if start < 0 {
					start = base
				}
				end = base + blkLen
			} else {
				// Boundary block: read it to locate the edge.
				blk, release := c.AcquireBlock(bi)
				st.BlockFetched()
				st.Read(blk.CompressedBytes())
				s, e := blockRange(blk, p, st)
				release()
				if e > s {
					if start < 0 {
						start = base + s
					}
					end = base + e
				}
			}
		} else {
			st.BlockPruned()
		}
		base += blkLen
	}
	if start < 0 {
		return vector.NewRangePositions(0, 0), true
	}
	return vector.NewRangePositions(start, end), true
}

// blockRange finds the in-block contiguous match range for a sorted block.
func blockRange(blk compress.IntBlock, p compress.Pred, st *iosim.Stats) (int32, int32) {
	if rle, ok := blk.(*compress.RLEBlock); ok {
		s, e, ok := rle.SortedFilterRange(p)
		if ok {
			st.KernelFold()
			if e < s {
				return 0, 0
			}
			return s, e
		}
	}
	// Other encodings: decode the boundary block once (this happens for
	// at most two blocks per sorted filter) and binary-search the sorted
	// values.
	lo, hi, _ := p.Bounds()
	vals := blk.AppendTo(nil)
	st.Gathered()
	st.Decoded(int64(len(vals)) * 4)
	start := sort.Search(len(vals), func(i int) bool { return vals[i] >= lo })
	end := sort.Search(len(vals), func(i int) bool { return vals[i] > hi })
	if start >= end {
		return 0, 0
	}
	return int32(start), int32(end)
}

// FilterAt applies p only at candidate positions (pipelined predicate
// application from Section 5.4: "the results of a predicate application can
// be pipelined into another predicate application to reduce the number of
// times the second predicate must be applied"). Only blocks containing
// candidates are read.
func (c *Column) FilterAt(p compress.Pred, candidates *vector.Positions, st *iosim.Stats) *vector.Positions {
	return c.FilterAtCtx(context.Background(), p, candidates, st)
}

// FilterAtCtx is FilterAt with cancellation, checked per candidate block.
func (c *Column) FilterAtCtx(ctx context.Context, p compress.Pred, candidates *vector.Positions, st *iosim.Stats) *vector.Positions {
	out := bitmap.New(c.n)
	var scratchIdx []int32
	var scratchVals []int32
	c.forEachCandidateBlockCtx(ctx, candidates, st, func(base int32, blk compress.IntBlock, idx []int32) {
		mn, mx := blk.MinMax()
		if !p.MayMatch(mn, mx) {
			return
		}
		st.Gathered()
		st.Decoded(int64(len(idx)) * 4)
		scratchVals = blk.Gather(idx, scratchVals[:0])
		for k, v := range scratchVals {
			if p.Match(v) {
				out.Set(int(base + idx[k]))
			}
		}
	}, &scratchIdx)
	return vector.NewBitmapPositions(out)
}

// GatherBlock gathers the values at sorted block-local indexes idx from
// block bi, charging positional I/O for the pages the indexes touch. It is
// the block-at-a-time access path of the fused executor: the caller owns the
// block loop and reuses idx/dst scratch across blocks.
func (c *Column) GatherBlock(bi int, idx []int32, dst []int32, st *iosim.Stats) []int32 {
	if len(idx) == 0 {
		return dst
	}
	blk, release := c.AcquireBlock(bi)
	st.BlockFetched()
	chargePositional(blk, idx, st)
	st.Gathered()
	st.Decoded(int64(len(idx)) * 4)
	dst = blk.Gather(idx, dst)
	release()
	return dst
}

// AggSelectBlock folds the values of block bi selected by the block-local
// bitmap sel into acc without materializing them, charging positional I/O
// for the pages the selected positions touch — the same pages GatherBlock
// would charge for the same positions, so kernel aggregation is
// storage-invariant in the I/O model.
func (c *Column) AggSelectBlock(bi int, sel *bitmap.Bitmap, st *iosim.Stats, acc *compress.AggAcc) {
	blk, release := c.AcquireBlock(bi)
	st.BlockFetched()
	chargePositionalSel(blk, sel, st)
	st.KernelFold()
	blk.AggSelect(sel, 0, acc)
	release()
}

// GatherSelectBlock appends the values of block bi selected by the
// block-local bitmap sel to dst — GatherBlock driven by a bitmap instead of
// an index list, so run/bitmap encodings walk their compressed
// representation once. I/O charging matches GatherBlock at the same
// positions.
func (c *Column) GatherSelectBlock(bi int, sel *bitmap.Bitmap, dst []int32, st *iosim.Stats) []int32 {
	blk, release := c.AcquireBlock(bi)
	st.BlockFetched()
	chargePositionalSel(blk, sel, st)
	n0 := len(dst)
	dst = blk.GatherSelect(sel, 0, dst)
	st.Gathered()
	st.Decoded(int64(len(dst)-n0) * 4)
	release()
	return dst
}

// AggSelectPositions folds the column's values at the given positions into
// acc. Blocks with no selected positions are never acquired, and I/O is
// charged exactly as Gather at the same positions would charge it. RLE and
// bit-vector blocks aggregate natively on their compressed representation
// (value x selected-run-length, AND-popcount per distinct value);
// random-access encodings fold per position in code space; only
// delta-encoded blocks (prefix sums — no random access) gather the
// selected values and fold them scalar-wise.
func (c *Column) AggSelectPositions(ctx context.Context, positions *vector.Positions, st *iosim.Stats, acc *compress.AggAcc) {
	var scratchIdx, scratchVals []int32
	var sel *bitmap.Bitmap
	c.forEachCandidateBlockCtx(ctx, positions, st, func(base int32, blk compress.IntBlock, idx []int32) {
		if len(idx) == blk.Len() {
			// Fully covered block: every encoding folds natively (RLE by
			// run, BitVec by popcount, Dict/BitPack in code space) without
			// materializing a single value.
			st.KernelFold()
			blk.AggSelect(nil, 0, acc)
			return
		}
		switch blk.Encoding() {
		case compress.RLE, compress.BitVec:
			if sel == nil {
				sel = bitmap.New(BlockSize)
			}
			for _, i := range idx {
				sel.Set(int(i))
			}
			st.KernelFold()
			blk.AggSelect(sel, 0, acc)
			for _, i := range idx {
				sel.Clear(int(i))
			}
		case compress.Delta:
			st.Gathered()
			st.Decoded(int64(len(idx)) * 4)
			scratchVals = blk.Gather(idx, scratchVals[:0])
			for _, v := range scratchVals {
				acc.Observe(v, 1)
			}
		default:
			// Per-position code-space folds: a materializing op for the
			// trace, but no bytes decoded (Get never hits the decode
			// meter), keeping Stats.DecodedBytes an exact mirror of the
			// global compress.DecodedBytes() delta.
			st.Gathered()
			for _, i := range idx {
				acc.Observe(blk.Get(int(i)), 1)
			}
		}
	}, &scratchIdx)
}

// chargePositionalSel is chargePositional driven by a block-local selection
// bitmap: it records the same distinct-page count the explicit index list
// of sel's set bits would produce.
func chargePositionalSel(blk compress.IntBlock, sel *bitmap.Bitmap, st *iosim.Stats) {
	if st == nil {
		return
	}
	if sel == nil {
		st.Read(blk.CompressedBytes())
		return
	}
	// Count the distinct pages containing a selected position by hopping
	// from one occupied page to the first set bit past its end, instead of
	// classifying every set bit — O(occupied pages), not O(selection).
	bytesPerVal := float64(blk.CompressedBytes()) / float64(blk.Len())
	var pages int64
	end := blk.Len()
	for i := sel.NextSet(0); i >= 0 && i < end; {
		pages++
		page := int64(float64(i) * bytesPerVal / ioPageBytes)
		// First position past this page, under the same rounding as the
		// per-position formula (nudge for float boundary error).
		next := int(float64(page+1) * ioPageBytes / bytesPerVal)
		if next <= i {
			next = i + 1
		}
		for next > i+1 && int64(float64(next-1)*bytesPerVal/ioPageBytes) > page {
			next--
		}
		for int64(float64(next)*bytesPerVal/ioPageBytes) == page {
			next++
		}
		i = sel.NextSet(next)
	}
	if pages == 0 {
		return
	}
	total := blk.CompressedBytes()
	charged := pages * ioPageBytes
	if charged > total {
		charged = total
	}
	st.Read(charged)
}

// MinMax returns the column-wide minimum and maximum from zone-map
// statistics, without decoding any values or charging I/O.
func (c *Column) MinMax() (int32, int32) {
	nb := c.NumBlocks()
	if nb == 0 {
		return 0, 0
	}
	mn, mx := c.BlockMinMax(0)
	for i := 1; i < nb; i++ {
		bmn, bmx := c.BlockMinMax(i)
		if bmn < mn {
			mn = bmn
		}
		if bmx > mx {
			mx = bmx
		}
	}
	return mn, mx
}

// Gather appends the values at the given positions to dst, reading only the
// blocks that contain selected positions.
func (c *Column) Gather(positions *vector.Positions, dst []int32, st *iosim.Stats) []int32 {
	return c.GatherCtx(context.Background(), positions, dst, st)
}

// GatherCtx is Gather with cancellation, checked per candidate block. A
// canceled gather returns a prefix; callers must discard it.
func (c *Column) GatherCtx(ctx context.Context, positions *vector.Positions, dst []int32, st *iosim.Stats) []int32 {
	var scratchIdx []int32
	c.forEachCandidateBlockCtx(ctx, positions, st, func(base int32, blk compress.IntBlock, idx []int32) {
		st.Gathered()
		st.Decoded(int64(len(idx)) * 4)
		dst = blk.Gather(idx, dst)
	}, &scratchIdx)
	return dst
}

// ioPageBytes is the granularity of positional reads: fetching values at
// scattered positions transfers only the pages containing them, not the
// whole segment. 32 KB matches the paper's System X page size.
const ioPageBytes = 32 * 1024

// chargePositional records the I/O for reading the given sorted block-local
// indexes from blk: the number of distinct pages they fall on.
func chargePositional(blk compress.IntBlock, idx []int32, st *iosim.Stats) {
	if st == nil || len(idx) == 0 {
		return
	}
	bytesPerVal := float64(blk.CompressedBytes()) / float64(blk.Len())
	lastPage := int64(-1)
	var pages int64
	for _, i := range idx {
		page := int64(float64(i) * bytesPerVal / ioPageBytes)
		if page != lastPage {
			pages++
			lastPage = page
		}
	}
	total := blk.CompressedBytes()
	charged := pages * ioPageBytes
	if charged > total {
		charged = total
	}
	st.Read(charged)
}

// forEachCandidateBlock groups sorted candidate positions by block, charges
// I/O for the pages the candidates touch, and invokes fn with block-local
// indexes. Blocks with no candidates are never acquired.
func (c *Column) forEachCandidateBlock(candidates *vector.Positions, st *iosim.Stats, fn func(base int32, blk compress.IntBlock, idx []int32), scratch *[]int32) {
	c.forEachCandidateBlockCtx(context.Background(), candidates, st, fn, scratch)
}

// forEachCandidateBlockCtx is forEachCandidateBlock with cancellation: once
// ctx is done, no further block is acquired (the remaining candidate
// positions are still walked, but only to group them — pure CPU, no pins,
// no I/O).
func (c *Column) forEachCandidateBlockCtx(ctx context.Context, candidates *vector.Positions, st *iosim.Stats, fn func(base int32, blk compress.IntBlock, idx []int32), scratch *[]int32) {
	bi := 0
	base := int32(0)
	blkEnd := int32(0)
	if c.NumBlocks() > 0 {
		blkEnd = int32(c.BlockLen(0))
	}
	idx := (*scratch)[:0]
	flush := func() {
		if len(idx) > 0 {
			if ctx.Err() != nil {
				idx = idx[:0]
				return
			}
			blk, release := c.AcquireBlock(bi)
			st.BlockFetched()
			chargePositional(blk, idx, st)
			fn(base, blk, idx)
			release()
			idx = idx[:0]
		}
	}
	candidates.ForEach(func(pos int32) {
		for pos >= blkEnd {
			flush()
			base = blkEnd
			bi++
			blkEnd += int32(c.BlockLen(bi))
		}
		idx = append(idx, pos-base)
	})
	flush()
	*scratch = idx[:0]
}

// DecodeAll decodes the whole column, appending to dst, charging a full
// sequential scan. It cannot be cancelled; query paths decoding more than
// a few blocks should use DecodeAllCtx.
func (c *Column) DecodeAll(dst []int32, st *iosim.Stats) []int32 {
	return c.DecodeAllCtx(context.Background(), dst, st)
}

// DecodeAllCtx is DecodeAll under a context: a cancelled ctx stops the
// decode within one block, returning the (truncated) prefix decoded so
// far. Callers racing cancellation must check ctx.Err before using the
// result, exactly as with the block pipelines.
func (c *Column) DecodeAllCtx(ctx context.Context, dst []int32, st *iosim.Stats) []int32 {
	for bi := 0; bi < c.NumBlocks(); bi++ {
		if ctx.Err() != nil {
			return dst
		}
		blk, release := c.AcquireBlock(bi)
		st.BlockFetched()
		st.Read(blk.CompressedBytes())
		st.Gathered()
		st.Decoded(int64(blk.Len()) * 4)
		dst = blk.AppendTo(dst)
		release()
	}
	return dst
}

// Get returns the value at position i without I/O accounting (used by tests
// and by point lookups whose cost is charged by the caller).
func (c *Column) Get(i int32) int32 {
	blk, release := c.AcquireBlock(int(i) / BlockSize)
	v := blk.Get(int(i) % BlockSize)
	release()
	return v
}

// GetCounted is Get with block-acquire accounting: it records the pool
// acquire in st (one fetched block per call) without charging byte I/O,
// for point lookups whose byte cost the caller prices separately. Keeping
// the fetch counted is what lets a traced query's BlocksFetched reconcile
// exactly with the buffer pool's hit+miss delta.
func (c *Column) GetCounted(i int32, st *iosim.Stats) int32 {
	st.BlockFetched()
	return c.Get(i)
}

// ValueString renders the value at position i using the dictionary when
// present.
func (c *Column) ValueString(i int32) string {
	v := c.Get(i)
	if c.Dict != nil {
		return c.Dict.Value(v)
	}
	return fmt.Sprintf("%d", v)
}
