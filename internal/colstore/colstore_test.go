package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/vector"
)

func seqCol(n int, runLen int, compressed bool, sorted SortKind) (*Column, []int32) {
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i / runLen)
	}
	return NewColumn("c", vals, nil, sorted, compressed), vals
}

func TestColumnBasics(t *testing.T) {
	c, vals := seqCol(200000, 1000, true, PrimarySort)
	if c.NumRows() != len(vals) {
		t.Fatalf("NumRows=%d", c.NumRows())
	}
	if c.NumBlocks() != (len(vals)+BlockSize-1)/BlockSize {
		t.Fatalf("NumBlocks=%d", c.NumBlocks())
	}
	for _, i := range []int32{0, 999, 1000, 65535, 65536, 199999} {
		if c.Get(i) != vals[i] {
			t.Fatalf("Get(%d)=%d want %d", i, c.Get(i), vals[i])
		}
	}
	if c.CompressedBytes() >= c.RawBytes() {
		t.Fatalf("sorted column did not compress: %d vs %d", c.CompressedBytes(), c.RawBytes())
	}
}

func TestDecodeAll(t *testing.T) {
	c, vals := seqCol(100000, 7, true, Unsorted)
	var st iosim.Stats
	got := c.DecodeAll(nil, &st)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("DecodeAll[%d]=%d want %d", i, got[i], vals[i])
		}
	}
	if st.BytesRead != c.CompressedBytes() {
		t.Fatalf("I/O charged %d, want %d", st.BytesRead, c.CompressedBytes())
	}
}

func TestFilterSortedFastPath(t *testing.T) {
	c, vals := seqCol(200000, 1000, true, PrimarySort)
	var st iosim.Stats
	pos := c.Filter(compress.Between(10, 19), &st)
	if pos.Kind != vector.PosRange {
		t.Fatalf("sorted filter kind = %v, want range", pos.Kind)
	}
	if pos.Start != 10000 || pos.End != 20000 {
		t.Fatalf("range [%d,%d), want [10000,20000)", pos.Start, pos.End)
	}
	// Fast path should read far less than the whole column.
	if st.BytesRead >= c.CompressedBytes() {
		t.Fatalf("sorted filter read %d bytes, whole column is %d", st.BytesRead, c.CompressedBytes())
	}
	_ = vals
	// Empty result.
	pos = c.Filter(compress.Eq(1<<30), &st)
	if pos.Len() != 0 {
		t.Fatalf("absent value matched %d positions", pos.Len())
	}
}

func TestFilterUnsortedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int32, 150000)
	for i := range vals {
		vals[i] = rng.Int31n(50)
	}
	for _, compressed := range []bool{true, false} {
		c := NewColumn("q", vals, nil, Unsorted, compressed)
		var st iosim.Stats
		pos := c.Filter(compress.Between(10, 20), &st)
		want := 0
		for _, v := range vals {
			if v >= 10 && v <= 20 {
				want++
			}
		}
		if pos.Len() != want {
			t.Fatalf("compressed=%v: matched %d want %d", compressed, pos.Len(), want)
		}
		if st.BytesRead != c.CompressedBytes() {
			t.Fatalf("compressed=%v: full scan should charge full column (got %d want %d)",
				compressed, st.BytesRead, c.CompressedBytes())
		}
	}
}

func TestBlockPruningSkipsIO(t *testing.T) {
	// Values grouped so most blocks exclude the predicate by min/max.
	vals := make([]int32, 4*BlockSize)
	for i := range vals {
		vals[i] = int32(i / BlockSize * 100) // blocks have values 0,100,200,300
	}
	c := NewColumn("p", vals, nil, Unsorted, false)
	var st iosim.Stats
	pos := c.Filter(compress.Eq(200), &st)
	if pos.Len() != BlockSize {
		t.Fatalf("matched %d want %d", pos.Len(), BlockSize)
	}
	if st.BytesRead != int64(BlockSize)*4 {
		t.Fatalf("pruning failed: read %d bytes, want one block (%d)", st.BytesRead, BlockSize*4)
	}
}

func TestFilterAtPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 120000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = rng.Int31n(10)
		b[i] = rng.Int31n(10)
	}
	ca := NewColumn("a", a, nil, Unsorted, true)
	cb := NewColumn("b", b, nil, Unsorted, true)
	var st iosim.Stats
	p1 := ca.Filter(compress.Eq(3), &st)
	p2 := cb.FilterAt(compress.Eq(7), p1, &st)
	want := 0
	for i := range a {
		if a[i] == 3 && b[i] == 7 {
			want++
		}
	}
	if p2.Len() != want {
		t.Fatalf("pipelined matched %d want %d", p2.Len(), want)
	}
	// FilterAt result must be a subset of candidates.
	bm1 := p1.ToBitmap(n)
	bad := false
	p2.ForEach(func(pos int32) {
		if !bm1.Get(int(pos)) {
			bad = true
		}
	})
	if bad {
		t.Fatal("FilterAt produced positions outside candidates")
	}
}

func TestGather(t *testing.T) {
	c, vals := seqCol(150000, 3, true, Unsorted)
	positions := []int32{0, 1, 2, 65535, 65536, 149999}
	var st iosim.Stats
	got := c.Gather(vector.NewExplicitPositions(positions), nil, &st)
	for k, p := range positions {
		if got[k] != vals[p] {
			t.Fatalf("Gather[%d]=%d want %d", k, got[k], vals[p])
		}
	}
	if st.BytesRead == 0 {
		t.Fatal("Gather charged no I/O")
	}
	// Gathering from one block must not charge the whole column.
	st.Reset()
	c.Gather(vector.NewExplicitPositions([]int32{5}), nil, &st)
	if st.BytesRead >= c.CompressedBytes() {
		t.Fatalf("single-block gather read %d of %d", st.BytesRead, c.CompressedBytes())
	}
}

func TestGatherRangePositions(t *testing.T) {
	c, vals := seqCol(100000, 10, true, PrimarySort)
	got := c.Gather(vector.NewRangePositions(65530, 65545), nil, nil)
	if len(got) != 15 {
		t.Fatalf("gather range len=%d", len(got))
	}
	for k := 0; k < 15; k++ {
		if got[k] != vals[65530+k] {
			t.Fatalf("gather range [%d]=%d want %d", k, got[k], vals[65530+k])
		}
	}
}

func TestStringColumnWithDict(t *testing.T) {
	raw := []string{"ASIA", "EUROPE", "ASIA", "AFRICA", "ASIA"}
	d := compress.BuildDict(raw)
	codes := d.Encode(raw, nil)
	c := NewColumn("region", codes, d, Unsorted, true)
	p := d.EncodePred(compress.OpEq, "ASIA", "", nil)
	pos := c.Filter(p, nil)
	if pos.Len() != 3 {
		t.Fatalf("ASIA matched %d want 3", pos.Len())
	}
	if c.ValueString(0) != "ASIA" || c.ValueString(1) != "EUROPE" {
		t.Fatal("ValueString via dict wrong")
	}
	cInt := NewColumn("k", []int32{42}, nil, Unsorted, true)
	if cInt.ValueString(0) != "42" {
		t.Fatal("ValueString without dict wrong")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("fact")
	tb.AddColumn(NewColumn("a", []int32{1, 2, 3}, nil, Unsorted, true))
	tb.AddColumn(NewColumn("b", []int32{4, 5, 6}, nil, Unsorted, true))
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows=%d", tb.NumRows())
	}
	if _, err := tb.Column("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Column("zz"); err == nil {
		t.Fatal("missing column should error")
	}
	if !tb.HasColumn("b") || tb.HasColumn("zz") {
		t.Fatal("HasColumn wrong")
	}
	if len(tb.ColumnNames()) != 2 {
		t.Fatal("ColumnNames wrong")
	}
	if tb.RawBytes() != 24 {
		t.Fatalf("RawBytes=%d", tb.RawBytes())
	}
	if len(tb.EncodingSummary()) != 2 {
		t.Fatal("EncodingSummary wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched length should panic")
		}
	}()
	tb.AddColumn(NewColumn("c", []int32{1}, nil, Unsorted, true))
}

func TestTableDuplicatePanics(t *testing.T) {
	tb := NewTable("x")
	tb.AddColumn(NewColumn("a", []int32{1}, nil, Unsorted, true))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column should panic")
		}
	}()
	tb.AddColumn(NewColumn("a", []int32{2}, nil, Unsorted, true))
}

func TestMustColumnPanics(t *testing.T) {
	tb := NewTable("x")
	defer func() {
		if recover() == nil {
			t.Fatal("MustColumn on missing column should panic")
		}
	}()
	tb.MustColumn("nope")
}

func TestBlobTable(t *testing.T) {
	bt := NewBlobTable("rowmv", [][]byte{[]byte("abc"), []byte("defg")})
	if bt.NumRows() != 2 || bt.Bytes() != 7 {
		t.Fatalf("blob table rows=%d bytes=%d", bt.NumRows(), bt.Bytes())
	}
}

// TestQuickFilterOracle cross-checks Filter against a naive scan for random
// columns, predicates, compression settings and sort kinds.
func TestQuickFilterOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000) + 1
		vals := make([]int32, n)
		sorted := Unsorted
		if rng.Intn(2) == 0 {
			v := int32(0)
			for i := range vals {
				if rng.Intn(4) == 0 {
					v++
				}
				vals[i] = v
			}
			sorted = PrimarySort
		} else {
			for i := range vals {
				vals[i] = rng.Int31n(100)
			}
		}
		var p compress.Pred
		switch rng.Intn(3) {
		case 0:
			p = compress.Eq(vals[rng.Intn(n)])
		case 1:
			a, b := vals[rng.Intn(n)], vals[rng.Intn(n)]
			if a > b {
				a, b = b, a
			}
			p = compress.Between(a, b)
		default:
			p = compress.Ge(vals[rng.Intn(n)])
		}
		c := NewColumn("c", vals, nil, sorted, rng.Intn(2) == 0)
		got := c.Filter(p, nil).ToSlice(nil)
		var want []int32
		for i, v := range vals {
			if p.Match(v) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGatherOracle cross-checks Gather against direct indexing.
func TestQuickGatherOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200000) + 1
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = rng.Int31n(1000)
		}
		c := NewColumn("c", vals, nil, Unsorted, rng.Intn(2) == 0)
		var idx []int32
		for i := 0; i < n; i += rng.Intn(1000) + 1 {
			idx = append(idx, int32(i))
		}
		got := c.Gather(vector.NewExplicitPositions(idx), nil, nil)
		for k, i := range idx {
			if got[k] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherBlockMatchesGather: block-local gather returns the same values
// as the whole-column positional gather, and charges positional I/O.
func TestGatherBlockMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := BlockSize + 1234
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = rng.Int31n(5000)
	}
	c := NewColumn("c", vals, nil, Unsorted, true)
	// Scattered positions across both blocks.
	var pos []int32
	for p := int32(7); p < int32(n); p += 997 {
		pos = append(pos, p)
	}
	var stWant iosim.Stats
	want := c.Gather(vector.NewExplicitPositions(pos), nil, &stWant)
	var got []int32
	var stGot iosim.Stats
	var idx []int32
	for bi := 0; bi < c.NumBlocks(); bi++ {
		base := int32(bi) * BlockSize
		idx = idx[:0]
		for _, p := range pos {
			if p >= base && p < base+int32(c.BlockLen(bi)) {
				idx = append(idx, p-base)
			}
		}
		got = c.GatherBlock(bi, idx, got, &stGot)
	}
	if len(got) != len(want) {
		t.Fatalf("GatherBlock returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GatherBlock[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if stGot.BytesRead != stWant.BytesRead {
		t.Fatalf("GatherBlock charged %d bytes, Gather charged %d", stGot.BytesRead, stWant.BytesRead)
	}
	if stGot.BytesRead == 0 {
		t.Fatal("no positional I/O charged")
	}
}

// TestColumnMinMax: column-wide stats equal the true extrema and charge no
// I/O.
func TestColumnMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	vals := make([]int32, BlockSize+99)
	for i := range vals {
		vals[i] = rng.Int31n(1<<20) - 500
	}
	c := NewColumn("c", vals, nil, Unsorted, true)
	wantMn, wantMx := vals[0], vals[0]
	for _, v := range vals {
		if v < wantMn {
			wantMn = v
		}
		if v > wantMx {
			wantMx = v
		}
	}
	mn, mx := c.MinMax()
	if mn != wantMn || mx != wantMx {
		t.Fatalf("MinMax = (%d, %d) want (%d, %d)", mn, mx, wantMn, wantMx)
	}
}
