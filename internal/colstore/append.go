package colstore

import (
	"fmt"

	"repro/internal/compress"
)

// AppendedColumn returns a new resident column holding c's values followed
// by vals. The original column is untouched — snapshots that still hold it
// keep scanning exactly what they saw — and the shared block prefix is
// reused: only the old partial tail block (if any) is re-encoded, merged
// with the new values and re-chunked so that every block except the last
// stays exactly BlockSize rows (the invariant positional addressing relies
// on). The sort property is re-derived by appendSortKind, since appended
// rows generally break the frozen physical sort order.
func AppendedColumn(c *Column, vals []int32, compressed bool) *Column {
	if c.src != nil {
		panic(fmt.Sprintf("colstore: AppendedColumn on sourced column %q (segment stores append through segstore)", c.Name))
	}
	keep := c.blocks
	var tail []int32
	if nb := len(c.blocks); nb > 0 && c.blocks[nb-1].Len() < BlockSize {
		tail = c.blocks[nb-1].AppendTo(nil)
		keep = c.blocks[:nb-1]
	}
	prevMax, hasPrev := int32(0), false
	if len(keep) > 0 {
		_, prevMax = keep[len(keep)-1].MinMax()
		hasPrev = true
	}
	all := append(tail, vals...)
	blocks := make([]compress.IntBlock, 0, len(keep)+len(all)/BlockSize+1)
	blocks = append(blocks, keep...)
	for off := 0; off < len(all); off += BlockSize {
		end := off + BlockSize
		if end > len(all) {
			end = len(all)
		}
		if compressed {
			blocks = append(blocks, compress.Choose(all[off:end]))
		} else {
			blocks = append(blocks, compress.NewPlainBlock(all[off:end]))
		}
	}
	return &Column{
		Name:   c.Name,
		Sorted: AppendSortKind(c.Sorted, hasPrev, prevMax, all),
		Dict:   c.Dict,
		blocks: blocks,
		n:      c.n + len(vals),
	}
}

// AppendSortKind decides the sort property of a column after an append: a
// primary sort survives only if the appended run is itself ascending and
// starts at or above the retained prefix's maximum (provable from the data
// in hand); a secondary sort is within-run ordering that cannot be verified
// from one column alone, so it conservatively demotes to Unsorted. Old
// snapshots keep their original (still correct) sort kinds.
func AppendSortKind(old SortKind, hasPrev bool, prevMax int32, appended []int32) SortKind {
	if old != PrimarySort {
		return Unsorted
	}
	last := prevMax
	if !hasPrev && len(appended) > 0 {
		last = appended[0]
	}
	for _, v := range appended {
		if v < last {
			return Unsorted
		}
		last = v
	}
	return PrimarySort
}
