package colstore

import (
	"fmt"
	"sort"

	"repro/internal/compress"
)

// Table is a set of equal-length columns matched by position.
type Table struct {
	Name  string
	cols  map[string]*Column
	order []string
	n     int
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, cols: map[string]*Column{}}
}

// AddColumn attaches col to the table. It panics if the name is duplicated
// or the length disagrees with existing columns, since both indicate
// construction bugs rather than runtime conditions.
func (t *Table) AddColumn(col *Column) {
	if _, dup := t.cols[col.Name]; dup {
		panic(fmt.Sprintf("colstore: duplicate column %q in table %q", col.Name, t.Name))
	}
	if len(t.order) > 0 && col.NumRows() != t.n {
		panic(fmt.Sprintf("colstore: column %q has %d rows, table %q has %d",
			col.Name, col.NumRows(), t.Name, t.n))
	}
	t.n = col.NumRows()
	t.cols[col.Name] = col
	t.order = append(t.order, col.Name)
}

// Column returns the named column, or an error naming the table.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.Name, name)
	}
	return c, nil
}

// MustColumn is Column for statically known names (query plans for the
// built-in SSBM queries).
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.cols[name]
	return ok
}

// ColumnNames returns the column names in insertion order.
func (t *Table) ColumnNames() []string { return t.order }

// NumRows returns the table cardinality.
func (t *Table) NumRows() int { return t.n }

// CompressedBytes sums the on-disk footprint of all columns.
func (t *Table) CompressedBytes() int64 {
	var b int64
	for _, c := range t.cols {
		b += c.CompressedBytes()
	}
	return b
}

// RawBytes sums the uncompressed footprint of all columns.
func (t *Table) RawBytes() int64 {
	var b int64
	for _, c := range t.cols {
		b += c.RawBytes()
	}
	return b
}

// EncodingSummary returns "colname:encoding xN" lines sorted by column name,
// for cmd/ssb-gen diagnostics.
func (t *Table) EncodingSummary() []string {
	names := append([]string(nil), t.order...)
	sort.Strings(names)
	var out []string
	for _, name := range names {
		c := t.cols[name]
		encs := c.Encodings()
		var kinds []string
		for _, e := range []compress.Encoding{compress.Plain, compress.RLE, compress.BitPack, compress.Delta} {
			if n := encs[e]; n > 0 {
				kinds = append(kinds, fmt.Sprintf("%s x%d", e, n))
			}
		}
		out = append(out, fmt.Sprintf("%s: %v (%d bytes)", name, kinds, c.CompressedBytes()))
	}
	return out
}

// BlobTable stores whole tuples as opaque byte payloads in a single logical
// column. It models the paper's "CS (Row-MV)" configuration (Section 6.1):
// row-oriented materialized view data stored inside the column-store as
// "tables that have a single column of type string" whose values are entire
// tuples.
type BlobTable struct {
	Name string
	Rows [][]byte
	size int64
}

// NewBlobTable builds a blob table over pre-serialized rows.
func NewBlobTable(name string, rows [][]byte) *BlobTable {
	t := &BlobTable{Name: name, Rows: rows}
	for _, r := range rows {
		t.size += int64(len(r))
	}
	return t
}

// NumRows returns the row count.
func (t *BlobTable) NumRows() int { return len(t.Rows) }

// Bytes returns the total payload size, charged when the single "column" is
// scanned.
func (t *BlobTable) Bytes() int64 { return t.size }
