// Package iosim provides byte-level I/O accounting and an analytic disk
// cost model.
//
// The paper's experiments ran on a 4-disk striped array with 160–200 MB/s of
// aggregate sequential bandwidth, and almost every SSBM query at SF=10 is
// I/O bound. Our reproduction executes in memory, so instead of real disk
// time each operator records the bytes it would have read (compressed size
// for compressed columns, page bytes for row heaps, index bytes for
// index-only plans). Model converts those stats into simulated seconds,
// which the harness reports next to measured CPU time. This preserves the
// paper's "bytes touched" ordering — the mechanism behind RS vs MV vs VP
// differences — while CPU-bound effects (block iteration, invisible join,
// operating on compressed data) come from real measured execution.
package iosim

import (
	"sync/atomic"
	"time"
)

// Stats accumulates simulated I/O performed by a query. Methods are safe on
// a nil receiver so executors can run without accounting.
//
// A Stats value is single-owner: it is mutated without synchronization, so
// exactly one query execution may write to it at a time. Parallel executors
// give each worker a private Stats and merge with Add after the workers
// join; a serving layer running queries from many goroutines must allocate
// one Stats per query and fold finished queries' stats into an Atomic (or
// behind its own lock), never hand two in-flight queries the same pointer.
type Stats struct {
	// BytesRead is the total bytes transferred from "disk".
	BytesRead int64
	// BytesWritten is the total bytes spilled to "disk" (e.g. hash-join
	// partitions that exceed work memory).
	BytesWritten int64
	// Seeks counts random repositionings (index lookups, unclustered
	// leaf hops).
	Seeks int64

	// The remaining counters feed the per-query execution trace
	// (internal/obs). They are block-granular and deterministic for a
	// given plan: parallel executors make identical per-block decisions
	// and merge per-worker counters by addition, so — like BytesRead —
	// the differential harness can compare Stats values bit-for-bit
	// across worker counts and storage backends.

	// BlocksFetched counts column blocks actually acquired (from the
	// segment buffer pool or the in-memory column), BlocksPruned blocks
	// skipped entirely by a zone-map bound, and BlocksCovered blocks whose
	// zone map proved every row matches (no fetch either way).
	BlocksFetched int64
	BlocksPruned  int64
	BlocksCovered int64
	// DecodedBytes counts bytes materialized as raw int32 values (4 bytes
	// per value) — the per-query mirror of the global
	// compress.DecodedBytes() ablation meter.
	DecodedBytes int64
	// KernelFolds counts operator applications executed natively on the
	// compressed representation (Filter/FilterSet/FilterFunc/AggSelect);
	// Gathers counts value-materializing block operations
	// (AppendTo/Gather/GatherSelect and per-position Get loops).
	KernelFolds int64
	Gathers     int64
}

// Read records n sequentially transferred bytes.
func (s *Stats) Read(n int64) {
	if s != nil {
		s.BytesRead += n
	}
}

// Write records n bytes spilled to disk.
func (s *Stats) Write(n int64) {
	if s != nil {
		s.BytesWritten += n
	}
}

// AddSeeks records n random seeks.
func (s *Stats) AddSeeks(n int64) {
	if s != nil {
		s.Seeks += n
	}
}

// BlockFetched records one column block acquired for processing.
func (s *Stats) BlockFetched() {
	if s != nil {
		s.BlocksFetched++
	}
}

// BlockPruned records one block skipped entirely by a zone-map bound.
func (s *Stats) BlockPruned() {
	if s != nil {
		s.BlocksPruned++
	}
}

// BlockCovered records one block fully accepted by a zone-map bound.
func (s *Stats) BlockCovered() {
	if s != nil {
		s.BlocksCovered++
	}
}

// Decoded records n bytes materialized as raw values.
func (s *Stats) Decoded(n int64) {
	if s != nil {
		s.DecodedBytes += n
	}
}

// KernelFold records one operation applied natively on compressed data.
func (s *Stats) KernelFold() {
	if s != nil {
		s.KernelFolds++
	}
}

// Gathered records one value-materializing block operation.
func (s *Stats) Gathered() {
	if s != nil {
		s.Gathers++
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	if s != nil {
		s.BytesRead += o.BytesRead
		s.BytesWritten += o.BytesWritten
		s.Seeks += o.Seeks
		s.BlocksFetched += o.BlocksFetched
		s.BlocksPruned += o.BlocksPruned
		s.BlocksCovered += o.BlocksCovered
		s.DecodedBytes += o.DecodedBytes
		s.KernelFolds += o.KernelFolds
		s.Gathers += o.Gathers
	}
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	if s != nil {
		*s = Stats{}
	}
}

// Atomic accumulates Stats from many goroutines without locking: the
// shared, cross-query side of the accounting split. Per-query Stats stay
// plain and single-owner (the executors mutate them with no
// synchronization); a server folds each finished query's Stats in with
// AddStats and reads running totals with Snapshot.
type Atomic struct {
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	seeks         atomic.Int64
	blocksFetched atomic.Int64
	blocksPruned  atomic.Int64
	blocksCovered atomic.Int64
	decodedBytes  atomic.Int64
	kernelFolds   atomic.Int64
	gathers       atomic.Int64
}

// AddStats folds one finished query's stats into the shared totals.
func (a *Atomic) AddStats(s Stats) {
	a.bytesRead.Add(s.BytesRead)
	a.bytesWritten.Add(s.BytesWritten)
	a.seeks.Add(s.Seeks)
	a.blocksFetched.Add(s.BlocksFetched)
	a.blocksPruned.Add(s.BlocksPruned)
	a.blocksCovered.Add(s.BlocksCovered)
	a.decodedBytes.Add(s.DecodedBytes)
	a.kernelFolds.Add(s.KernelFolds)
	a.gathers.Add(s.Gathers)
}

// Snapshot returns the accumulated totals as a plain Stats value. Each
// counter is read atomically; the set is not a single linearization
// point, which is fine for monitoring totals.
func (a *Atomic) Snapshot() Stats {
	return Stats{
		BytesRead:     a.bytesRead.Load(),
		BytesWritten:  a.bytesWritten.Load(),
		Seeks:         a.seeks.Load(),
		BlocksFetched: a.blocksFetched.Load(),
		BlocksPruned:  a.blocksPruned.Load(),
		BlocksCovered: a.blocksCovered.Load(),
		DecodedBytes:  a.decodedBytes.Load(),
		KernelFolds:   a.kernelFolds.Load(),
		Gathers:       a.gathers.Load(),
	}
}

// Model is an analytic disk: aggregate sequential throughput plus a fixed
// cost per seek.
type Model struct {
	// SeqMBPerSec is aggregate sequential read bandwidth in MB/s.
	SeqMBPerSec float64
	// SeekMillis is the cost of one random seek in milliseconds.
	SeekMillis float64
}

// PaperDisk models the paper's testbed: 4 striped disks at 40–50 MB/s each
// (180 MB/s aggregate) with commodity 2008-era seek times.
var PaperDisk = Model{SeqMBPerSec: 180, SeekMillis: 4}

// Time converts accumulated stats into simulated disk time.
func (m Model) Time(s Stats) time.Duration {
	if m.SeqMBPerSec <= 0 {
		return 0
	}
	secs := float64(s.BytesRead+s.BytesWritten)/(m.SeqMBPerSec*1e6) + float64(s.Seeks)*m.SeekMillis/1e3
	return time.Duration(secs * float64(time.Second))
}
