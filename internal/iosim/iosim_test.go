package iosim

import (
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var s *Stats
	s.Read(100)
	s.AddSeeks(1)
	s.Add(Stats{BytesRead: 5})
	s.BlockFetched()
	s.BlockPruned()
	s.BlockCovered()
	s.Decoded(64)
	s.KernelFold()
	s.Gathered()
	s.Reset() // must not panic
}

func TestAccumulation(t *testing.T) {
	var s Stats
	s.Read(1000)
	s.Read(500)
	s.AddSeeks(3)
	s.Add(Stats{BytesRead: 100, Seeks: 2})
	if s.BytesRead != 1600 || s.Seeks != 5 {
		t.Fatalf("got %+v", s)
	}
	s.Reset()
	if s.BytesRead != 0 || s.Seeks != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

// TestBlockCounters pins the trace-feeding counters through the direct
// methods, Add, and the atomic fold — all three paths the engines use.
func TestBlockCounters(t *testing.T) {
	var s Stats
	s.BlockFetched()
	s.BlockFetched()
	s.BlockPruned()
	s.BlockCovered()
	s.Decoded(4096)
	s.KernelFold()
	s.Gathered()
	s.Gathered()
	want := Stats{BlocksFetched: 2, BlocksPruned: 1, BlocksCovered: 1, DecodedBytes: 4096, KernelFolds: 1, Gathers: 2}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	// Worker merge: Add must carry every counter, so whole-struct equality
	// across worker counts (the differential harness's invariant) holds.
	var merged Stats
	merged.Add(s)
	merged.Add(s)
	var a Atomic
	a.AddStats(s)
	a.AddStats(s)
	if snap := a.Snapshot(); snap != merged {
		t.Fatalf("atomic snapshot %+v != plain merge %+v", snap, merged)
	}
	if merged.BlocksFetched != 4 || merged.DecodedBytes != 8192 || merged.Gathers != 4 {
		t.Fatalf("merge: %+v", merged)
	}
}

func TestModelTime(t *testing.T) {
	m := Model{SeqMBPerSec: 100, SeekMillis: 10}
	// 100 MB at 100 MB/s = 1s; 10 seeks at 10ms = 100ms.
	d := m.Time(Stats{BytesRead: 100e6, Seeks: 10})
	want := 1100 * time.Millisecond
	if d < want-time.Millisecond || d > want+time.Millisecond {
		t.Fatalf("Time = %v, want ~%v", d, want)
	}
	if (Model{}).Time(Stats{BytesRead: 1 << 40}) != 0 {
		t.Fatal("zero model should cost nothing")
	}
}

func TestPaperDiskOrdering(t *testing.T) {
	// Reading the whole 17-column fact table must cost ~3x more than a
	// 6-column materialized view at the paper's bandwidth.
	full := PaperDisk.Time(Stats{BytesRead: 6e9})
	mv := PaperDisk.Time(Stats{BytesRead: 2e9})
	if full <= mv || float64(full)/float64(mv) < 2.5 {
		t.Fatalf("full=%v mv=%v: expected ~3x", full, mv)
	}
}
