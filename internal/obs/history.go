package obs

import (
	"math"
	"sync"
	"time"
)

// SamplePoint is one scrape-time reading of a registered family. Histograms
// contribute two points — <name>_count and <name>_sum, both monotone and
// therefore typed "counter" — so rate math over a histogram's observation
// count needs no special casing.
type SamplePoint struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // "counter" | "gauge"
	Value float64 `json:"value"`
}

// Sample reads every registered family once, in registration order. It is
// the programmatic twin of WritePrometheus: the same callbacks, read at
// call time.
func (r *Registry) Sample() []SamplePoint {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	out := make([]SamplePoint, 0, len(fams)+2)
	for _, f := range fams {
		switch f.typ {
		case "counter", "gauge":
			out = append(out, SamplePoint{Name: f.name, Type: f.typ, Value: float64(f.intFn())})
		case "histogram":
			out = append(out,
				SamplePoint{Name: f.name + "_count", Type: "counter", Value: float64(f.hist.Count())},
				SamplePoint{Name: f.name + "_sum", Type: "counter", Value: math.Float64frombits(f.hist.sumBits.Load())})
		}
	}
	return out
}

// HistorySample is one timestamped reading of the whole registry.
type HistorySample struct {
	UnixNano int64              `json:"unix_nano"`
	Values   map[string]float64 `json:"values"`
}

// History is the metrics-history snapshotter: it samples a Registry into a
// fixed-capacity ring on demand (Sample) or on a cadence (Start), so rate
// questions — qps, fsync rate, eviction rate — are answerable from the
// server itself without an external scraper retaining state. All methods
// are safe for concurrent use.
type History struct {
	reg *Registry

	mu    sync.Mutex
	buf   []HistorySample   // guarded by mu; ring storage
	next  int               // guarded by mu
	n     int               // guarded by mu
	types map[string]string // guarded by mu; series name -> counter|gauge

	stopOnce sync.Once
	started  bool // guarded by mu; set once by Start
	stop     chan struct{}
	done     chan struct{}
}

// NewHistory returns a history ring over reg keeping capacity samples
// (minimum 2 — rates need two points).
func NewHistory(reg *Registry, capacity int) *History {
	if capacity < 2 {
		capacity = 2
	}
	return &History{
		reg:   reg,
		buf:   make([]HistorySample, capacity),
		types: map[string]string{},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Sample takes one reading of the registry, stamped with the caller's
// clock (tests pass synthetic times; Start passes time.Now).
func (h *History) Sample(nowUnixNano int64) {
	pts := h.reg.Sample()
	values := make(map[string]float64, len(pts))
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range pts {
		values[p.Name] = p.Value
		h.types[p.Name] = p.Type
	}
	h.buf[h.next] = HistorySample{UnixNano: nowUnixNano, Values: values}
	h.next = (h.next + 1) % len(h.buf)
	if h.n < len(h.buf) {
		h.n++
	}
}

// Len returns the number of live samples.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Snapshot returns up to n samples oldest-first (n <= 0 means all). The
// slice and its maps are shared snapshots — treat them as read-only.
func (h *History) Snapshot(n int) []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n <= 0 || n > h.n {
		n = h.n
	}
	out := make([]HistorySample, 0, n)
	for i := n; i >= 1; i-- {
		out = append(out, h.buf[(h.next-i+len(h.buf))%len(h.buf)])
	}
	return out
}

// SeriesType returns "counter" or "gauge" for a sampled series name, ""
// if the series has never been sampled.
func (h *History) SeriesType(name string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.types[name]
}

// Rates computes per-second rates for every counter series between the two
// newest samples. Empty when fewer than two samples exist or no time
// passed. A counter that moved backwards (a reset) contributes zero rather
// than a negative rate.
func (h *History) Rates() map[string]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < 2 {
		return nil
	}
	last := h.buf[(h.next-1+len(h.buf))%len(h.buf)]
	prev := h.buf[(h.next-2+len(h.buf))%len(h.buf)]
	dt := float64(last.UnixNano-prev.UnixNano) / float64(time.Second)
	if dt <= 0 {
		return nil
	}
	rates := make(map[string]float64, len(last.Values))
	for name, v := range last.Values {
		if h.types[name] != "counter" {
			continue
		}
		d := v - prev.Values[name]
		if d < 0 {
			d = 0
		}
		rates[name] = d / dt
	}
	return rates
}

// Start samples immediately and then every interval until Stop is called.
// Start may be called at most once.
func (h *History) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		panic("obs: History.Start called twice")
	}
	h.started = true
	h.mu.Unlock()
	h.Sample(time.Now().UnixNano())
	go func() {
		defer close(h.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case now := <-t.C:
				h.Sample(now.UnixNano())
			}
		}
	}()
}

// Stop halts the sampling goroutine started by Start and waits for it to
// exit. Safe to call multiple times, and safe (a no-op beyond closing the
// stop channel) if Start never ran.
func (h *History) Stop() {
	h.stopOnce.Do(func() {
		close(h.stop)
		h.mu.Lock()
		started := h.started
		h.mu.Unlock()
		if started {
			<-h.done
		}
	})
}
