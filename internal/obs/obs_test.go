package obs

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestTraceNilSafety pins the contract the executors rely on: a nil *Trace
// accepts every method without recording or panicking, so the untraced hot
// path needs no guards beyond one pointer test.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.AddStage("probe", "x", StageCounters{RowsIn: 1})
	if tot := tr.Totals(); tot != (StageCounters{}) {
		t.Fatalf("nil trace totals: %+v", tot)
	}
	var b strings.Builder
	tr.Render(&b)
	if b.Len() != 0 {
		t.Fatalf("nil trace rendered %q", b.String())
	}
	if tr.String() != "" || tr.CompactLine() != "" {
		t.Fatal("nil trace stringers must be empty")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context must carry no trace")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := &Trace{Engine: "fused"}
	if got := FromContext(WithTrace(context.Background(), tr)); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestTraceTotalsAndRender(t *testing.T) {
	tr := &Trace{Query: "1.1", Engine: "fused", Config: "tICL", Workers: 2, WallNs: 5000}
	tr.AddStage("probe", "orderdate", StageCounters{RowsIn: 100, RowsOut: 40, BlocksFetched: 3, BytesRead: 1 << 20, KernelFolds: 3, WallNs: 2000})
	tr.AddStage("extract+aggregate", "", StageCounters{RowsIn: 40, RowsOut: 40, BlocksFetched: 2, DecodedBytes: 4096, Gathers: 2, Tombstoned: 7, WallNs: 3000})
	tot := tr.Totals()
	if tot.RowsIn != 140 || tot.BlocksFetched != 5 || tot.KernelFolds != 3 || tot.Gathers != 2 || tot.Tombstoned != 7 {
		t.Fatalf("totals: %+v", tot)
	}
	out := tr.String()
	for _, want := range []string{"engine=fused", "probe orderdate", "extract+aggregate", "total", "1.0MB", "4.0KB", "tombstones masked: 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	line := tr.CompactLine()
	if strings.ContainsRune(line, '\n') {
		t.Fatal("CompactLine must be one line")
	}
	for _, want := range []string{"query=1.1", "fetched=5", "probe(orderdate):100/40"} {
		if !strings.Contains(line, want) {
			t.Fatalf("compact line missing %q: %s", want, line)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	if len(b) != 5 || b[0] != 1 || b[4] != 16 {
		t.Fatalf("ExpBuckets: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("not ascending: %v", b)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "t", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// An observation equal to a bound lands in that bound's bucket (le is
	// inclusive); cumulative counts must be nondecreasing up to +Inf.
	for _, want := range []string{
		`test_seconds_bucket{le="1"} 1`,
		`test_seconds_bucket{le="2"} 2`,
		`test_seconds_bucket{le="4"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_sum 105.5`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.CounterFunc("dup_total", "d", func() int64 { return 0 })
	mustPanic("duplicate", func() { r.GaugeFunc("dup_total", "d", func() int64 { return 0 }) })
	mustPanic("bad name", func() { r.CounterFunc("9starts_with_digit", "d", func() int64 { return 0 }) })
	mustPanic("unsorted bounds", func() { r.NewHistogram("h_seconds", "h", []float64{2, 1}) })
}

// TestRegistryExposition validates the full exposition the way a scraper
// would: HELP/TYPE precede every family, each sample line is
// "name[{labels}] value" with a parseable float, and callbacks are read at
// scrape time (a second scrape sees the new counter value).
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.CounterFunc("q_total", "queries\nwith newline", func() int64 { return n })
	r.GaugeFunc("g_bytes", "resident", func() int64 { return 42 })
	h := r.NewHistogram("lat_seconds", "latency", ExpBuckets(1e-3, 2, 3))
	h.ObserveDuration(0)

	scrape := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	n = 7
	out := scrape()
	if !strings.Contains(out, "q_total 7") {
		t.Fatalf("callback not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, `queries\nwith newline`) {
		t.Fatalf("HELP newline not escaped:\n%s", out)
	}
	n = 8
	if !strings.Contains(scrape(), "q_total 8") {
		t.Fatal("second scrape must see the new value")
	}

	declared := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", i+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, f[3])
			}
			declared[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("line %d: unparseable value in %q: %v", i+1, line, err)
		}
	}
	for _, fam := range []string{"q_total", "g_bytes", "lat_seconds"} {
		if !declared[fam] {
			t.Fatalf("family %s not declared", fam)
		}
	}
}
