package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRecorderRing pins the ring semantics: newest-first snapshots,
// overwrite at capacity, monotone sequence numbers.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 6; i++ {
		seq := r.Record(QueryRecord{Query: fmt.Sprintf("q%d", i), UnixNano: int64(i)})
		if seq != int64(i) {
			t.Fatalf("record %d assigned seq %d", i, seq)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d after overflow, want 4", r.Len())
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, want := range []string{"q6", "q5", "q4", "q3"} {
		if snap[i].Query != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, snap[i].Query, want)
		}
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq >= snap[i-1].Seq {
			t.Fatalf("seq not descending: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Query != "q6" {
		t.Fatalf("Snapshot(2) = %+v", got)
	}
	// A snapshot larger than the ring clamps.
	if got := r.Snapshot(100); len(got) != 4 {
		t.Fatalf("Snapshot(100) len %d", len(got))
	}
}

// TestRecorderBoundedMemory asserts the overflow contract the "always-on"
// promise rests on: after any number of records, the ring holds exactly
// cap entries and Resize keeps only the newest.
func TestRecorderBoundedMemory(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 10_000; i++ {
		r.Record(QueryRecord{Query: fmt.Sprint(i)})
	}
	if r.Len() != 8 || r.Cap() != 8 {
		t.Fatalf("after 10k records: len=%d cap=%d", r.Len(), r.Cap())
	}
	if newest := r.Snapshot(1)[0]; newest.Query != "9999" || newest.Seq != 10_000 {
		t.Fatalf("newest = %+v", newest)
	}

	r.Resize(3)
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("after shrink: len=%d cap=%d", r.Len(), r.Cap())
	}
	snap := r.Snapshot(0)
	for i, want := range []string{"9999", "9998", "9997"} {
		if snap[i].Query != want {
			t.Fatalf("post-shrink snapshot[%d] = %s, want %s", i, snap[i].Query, want)
		}
	}
	r.Resize(16)
	if r.Len() != 3 || r.Cap() != 16 {
		t.Fatalf("after grow: len=%d cap=%d", r.Len(), r.Cap())
	}
	r.Record(QueryRecord{Query: "new"})
	if snap := r.Snapshot(0); len(snap) != 4 || snap[0].Query != "new" || snap[3].Query != "9997" {
		t.Fatalf("post-grow snapshot: %+v", snap)
	}
	// Degenerate capacities clamp to 1 instead of panicking.
	r.Resize(0)
	if r.Cap() != 1 || r.Len() != 1 {
		t.Fatalf("Resize(0): cap=%d len=%d", r.Cap(), r.Len())
	}
	if NewRecorder(-5).Cap() != 1 {
		t.Fatal("NewRecorder(-5) must clamp to 1")
	}
}

// TestRecorderConcurrent is the -race hammer: concurrent Record, Snapshot,
// Summary, and Resize must be safe and leave a consistent ring.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Record(QueryRecord{
					Query:    "1.1",
					Engine:   "fused",
					UnixNano: int64(i),
					ExecNs:   int64(w*1000 + i),
				})
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot(0)
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq >= snap[i-1].Seq {
					t.Errorf("snapshot seq order violated under concurrency")
					return
				}
			}
			_ = r.Summary(1<<40, 0)
		}
	}()
	go func() {
		defer wg.Done()
		sizes := []int{16, 64, 8, 128, 32}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Resize(sizes[i%len(sizes)])
		}
	}()
	// Give the writers time to finish, then halt the readers/resizer.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if r.Len() > r.Cap() {
		t.Fatalf("len %d exceeds cap %d", r.Len(), r.Cap())
	}
}

// TestRecorderSummary pins the windowed engine×flight rollup: grouping,
// percentiles over successful runs only, error/cache-hit tallies, and the
// window cut.
func TestRecorderSummary(t *testing.T) {
	r := NewRecorder(64)
	now := int64(1_000_000_000_000)
	// 100 fused flight-1 runs with latencies 1..100 (shuffled deterministically).
	for i := 1; i <= 100; i++ {
		r.Record(QueryRecord{
			Query: "1.1", Engine: "fused", UnixNano: now,
			ExecNs: int64((i*37)%100 + 1),
		})
	}
	// Overwrite pressure: the above only keeps the last 64; rebuild exact.
	r = NewRecorder(256)
	for i := 1; i <= 100; i++ {
		r.Record(QueryRecord{
			Query: "1.1", Engine: "fused", UnixNano: now,
			ExecNs: int64((i*37)%100 + 1),
		})
	}
	r.Record(QueryRecord{Query: "2.3", Engine: "per-probe", UnixNano: now, ExecNs: 500})
	r.Record(QueryRecord{Query: "1.2", Engine: "cache", UnixNano: now, Cached: true})
	r.Record(QueryRecord{Query: "fuzz-7", Engine: "fused", UnixNano: now, Error: "boom"})
	// An old record outside the window.
	r.Record(QueryRecord{Query: "1.3", Engine: "fused", UnixNano: now - 120e9, ExecNs: 9999})

	s := r.Summary(now, 60e9)
	if s.Count != 103 {
		t.Fatalf("windowed count %d, want 103 (the stale record excluded)", s.Count)
	}
	if s.Errors != 1 || s.CacheHits != 1 || s.Runs != 101 {
		t.Fatalf("errors=%d cacheHits=%d runs=%d", s.Errors, s.CacheHits, s.Runs)
	}
	if len(s.Groups) != 4 {
		t.Fatalf("groups: %+v", s.Groups)
	}
	// Sorted by engine then flight: cache/1, fused/1, fused/adhoc, per-probe/2.
	var fused1 *SummaryGroup
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Engine == "fused" && g.Flight == "1" {
			fused1 = g
		}
	}
	if fused1 == nil {
		t.Fatalf("no fused/1 group in %+v", s.Groups)
	}
	if fused1.Runs != 100 || fused1.P50Ns != 50 || fused1.P95Ns != 95 || fused1.P99Ns != 99 || fused1.MaxNs != 100 {
		t.Fatalf("fused/1 percentiles: %+v", fused1)
	}
	// Unwindowed summary sees the stale record too.
	if all := r.Summary(now, 0); all.Count != 104 {
		t.Fatalf("unwindowed count %d, want 104", all.Count)
	}
}

// TestQueryRecordFlight pins the flight derivation.
func TestQueryRecordFlight(t *testing.T) {
	for q, want := range map[string]string{
		"1.1": "1", "4.3": "4", "11.2": "11",
		"fuzz-42": "adhoc", "http": "adhoc", "": "adhoc", "x.y": "adhoc",
	} {
		if got := (&QueryRecord{Query: q}).Flight(); got != want {
			t.Errorf("Flight(%q) = %q, want %q", q, got, want)
		}
	}
}

// TestHistoryRing covers the snapshotter: sampling a live registry,
// ring overflow, counter/gauge typing, and rate math including resets.
func TestHistoryRing(t *testing.T) {
	var queries, resident int64
	reg := NewRegistry()
	reg.CounterFunc("q_total", "q", func() int64 { return queries })
	reg.GaugeFunc("res_bytes", "r", func() int64 { return resident })
	h := NewHistory(reg, 3)

	queries, resident = 10, 100
	h.Sample(1e9)
	queries, resident = 40, 50
	h.Sample(3e9)
	if h.Len() != 2 {
		t.Fatalf("len %d", h.Len())
	}
	rates := h.Rates()
	if got := rates["q_total"]; got != 15 {
		t.Fatalf("q_total rate %g, want 15 (30 over 2s)", got)
	}
	if _, ok := rates["res_bytes"]; ok {
		t.Fatal("gauge must not get a rate")
	}
	if h.SeriesType("q_total") != "counter" || h.SeriesType("res_bytes") != "gauge" {
		t.Fatal("series types lost")
	}

	// Overflow: capacity 3, four samples — oldest dropped, order kept.
	queries = 45
	h.Sample(4e9)
	queries = 50
	h.Sample(5e9)
	snap := h.Snapshot(0)
	if len(snap) != 3 || snap[0].UnixNano != 3e9 || snap[2].UnixNano != 5e9 {
		t.Fatalf("snapshot after overflow: %+v", snap)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Values["q_total"] < snap[i-1].Values["q_total"] {
			t.Fatal("counter went backwards across samples")
		}
	}

	// A counter reset clamps the rate at zero instead of going negative.
	queries = 7
	h.Sample(6e9)
	if got := h.Rates()["q_total"]; got != 0 {
		t.Fatalf("post-reset rate %g, want 0", got)
	}
}

// TestHistorySampleRegistryHistograms pins the histogram expansion in
// Registry.Sample: one _count and one _sum point, both counters.
func TestHistorySampleRegistryHistograms(t *testing.T) {
	reg := NewRegistry()
	hist := reg.NewHistogram("lat_seconds", "l", []float64{1, 2})
	hist.Observe(0.5)
	hist.Observe(10)
	pts := map[string]SamplePoint{}
	for _, p := range reg.Sample() {
		pts[p.Name] = p
	}
	if p := pts["lat_seconds_count"]; p.Type != "counter" || p.Value != 2 {
		t.Fatalf("count point: %+v", p)
	}
	if p := pts["lat_seconds_sum"]; p.Type != "counter" || p.Value != 10.5 {
		t.Fatalf("sum point: %+v", p)
	}
}

// TestHistoryStartStop exercises the cadence goroutine: samples accumulate
// and Stop joins cleanly (twice).
func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("x_total", "x", func() int64 { return time.Now().UnixNano() })
	h := NewHistory(reg, 8)
	h.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Len() < 3 {
		t.Fatalf("only %d samples after 2s at 1ms cadence", h.Len())
	}
	h.Stop()
	h.Stop() // idempotent
	n := h.Len()
	time.Sleep(5 * time.Millisecond)
	if h.Len() != n {
		t.Fatal("samples kept accumulating after Stop")
	}

	// Stop without Start must not hang.
	NewHistory(reg, 2).Stop()
}
