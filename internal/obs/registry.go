package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a minimal metrics registry that renders the Prometheus text
// exposition format (version 0.0.4). It supports exactly what the serving
// layer needs — function-backed counters and gauges plus log-bucketed
// histograms — with no dependency outside the standard library.
//
// Counters and gauges are read at scrape time from the callback, so the
// server registers closures over its existing atomic counters instead of
// maintaining a second set.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]struct{}
}

type family struct {
	name, help string
	typ        string // "counter" | "gauge" | "histogram"
	intFn      func() int64
	hist       *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !validMetricName(f.name) {
		panic("obs: invalid metric name " + f.name)
	}
	if _, dup := r.names[f.name]; dup {
		panic("obs: duplicate metric name " + f.name)
	}
	r.names[f.name] = struct{}{}
	r.fams = append(r.fams, f)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterFunc registers a monotonically increasing counter whose value is
// read from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "counter", intFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "gauge", intFn: fn})
}

// Histogram accumulates observations into fixed buckets. Concurrency-safe;
// Observe touches two atomics and the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (in the metric's native unit, seconds for latencies).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending: " + name)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// ExpBuckets returns n ascending bounds start, start*factor, ... — the
// log-spaced buckets latency histograms want.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered family in text exposition
// format. Families render in registration order; histogram buckets are
// cumulative as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch f.typ {
		case "counter", "gauge":
			fmt.Fprintf(bw, "%s %d\n", f.name, f.intFn())
		case "histogram":
			h := f.hist
			var cum int64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", f.name, formatFloat(ub), cum)
			}
			cum += h.inf.Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
			sum := math.Float64frombits(h.sumBits.Load())
			fmt.Fprintf(bw, "%s_sum %s\n", f.name, formatFloat(sum))
			fmt.Fprintf(bw, "%s_count %d\n", f.name, cum)
		}
	}
	return bw.Flush()
}
