// Package obs is the observability layer: a per-query execution trace
// (the data behind EXPLAIN ANALYZE, /query?trace=1 and the slow-query
// log) and a dependency-free metrics registry that renders Prometheus
// text exposition format for /metrics.
//
// The package deliberately imports nothing but the standard library so
// every layer of the engine — compress, colstore, exec, server — can
// depend on it without cycles.
package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// StageCounters is the per-stage slice of a query's work. Every field is
// additive: engines that run a stage across workers merge per-worker
// counters by summation, which keeps traced counter totals deterministic
// for a given plan regardless of worker count.
type StageCounters struct {
	// RowsIn/RowsOut are the candidate counts entering and surviving the
	// stage (positions for probes, rows for scans and aggregation).
	RowsIn  int64 `json:"rows_in"`
	RowsOut int64 `json:"rows_out"`
	// BlocksPruned counts blocks skipped entirely by a zone-map bound,
	// BlocksCovered blocks accepted entirely by one (no fetch either way),
	// and BlocksFetched blocks actually acquired from the segment pool or
	// in-memory column.
	BlocksPruned  int64 `json:"blocks_pruned"`
	BlocksCovered int64 `json:"blocks_covered"`
	BlocksFetched int64 `json:"blocks_fetched"`
	// BytesRead is the simulated compressed I/O charged to the stage.
	BytesRead int64 `json:"bytes_read"`
	// DecodedBytes counts bytes materialized as raw int32 values (4 bytes
	// per value) — the per-query attribution of compress.DecodedBytes().
	DecodedBytes int64 `json:"decoded_bytes"`
	// KernelFolds counts operations executed natively on the compressed
	// representation (Filter/FilterSet/FilterFunc/AggSelect); Gathers
	// counts value-materializing operations (AppendTo/Gather/GatherSelect).
	KernelFolds int64 `json:"kernel_folds"`
	Gathers     int64 `json:"gathers"`
	// Tombstoned counts rows masked by deletion vectors in this stage.
	Tombstoned int64 `json:"tombstoned"`
	// WallNs is monotonic wall clock spent in the stage. Parallel stages
	// report the summed per-worker time (work time), which can exceed the
	// query's elapsed wall clock.
	WallNs int64 `json:"wall_ns"`
}

// Add folds o into c field by field.
func (c *StageCounters) Add(o StageCounters) {
	c.RowsIn += o.RowsIn
	c.RowsOut += o.RowsOut
	c.BlocksPruned += o.BlocksPruned
	c.BlocksCovered += o.BlocksCovered
	c.BlocksFetched += o.BlocksFetched
	c.BytesRead += o.BytesRead
	c.DecodedBytes += o.DecodedBytes
	c.KernelFolds += o.KernelFolds
	c.Gathers += o.Gathers
	c.Tombstoned += o.Tombstoned
	c.WallNs += o.WallNs
}

// Stage is one named step of the executed plan: planning, one join/filter
// probe, the deletion mask, extraction+aggregation, or the write-store scan.
type Stage struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	StageCounters
}

// Trace records what one query execution actually did: the plan shape the
// executor chose and a counter record per stage. A nil *Trace is valid
// everywhere and records nothing — engines test the pointer once per
// block-sized unit of work, so the untraced hot path pays one compare.
type Trace struct {
	Query   string  `json:"query,omitempty"`
	SQL     string  `json:"sql,omitempty"`
	Engine  string  `json:"engine"`
	Config  string  `json:"config"`
	Workers int     `json:"workers"`
	Epoch   int64   `json:"epoch"`
	WallNs  int64   `json:"wall_ns"`
	Stages  []Stage `json:"stages"`
}

// AddStage appends a completed stage record. Nil-safe.
func (t *Trace) AddStage(name, detail string, c StageCounters) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, Stage{Name: name, Detail: detail, StageCounters: c})
}

// Totals sums the counters across all stages.
func (t *Trace) Totals() StageCounters {
	var tot StageCounters
	if t == nil {
		return tot
	}
	for i := range t.Stages {
		tot.Add(t.Stages[i].StageCounters)
	}
	return tot
}

type ctxKey struct{}

// WithTrace returns a context carrying t. The executor extracts it once
// per query at RunCtx entry, so no signature above exec changes.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// humanBytes renders a byte count with a binary-ish short unit, fixed to
// one decimal so trace tables line up.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func humanNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// Render writes the human-readable stage table (the EXPLAIN ANALYZE
// output) to w.
func (t *Trace) Render(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "query=%s engine=%s config=%s workers=%d epoch=%d wall=%s\n",
		t.Query, t.Engine, t.Config, t.Workers, t.Epoch, humanNs(t.WallNs))
	if t.SQL != "" {
		fmt.Fprintf(w, "sql: %s\n", t.SQL)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "stage\trows in\trows out\tpruned\tcovered\tfetched\tread\tdecoded\tfolds\tgathers\twall\t")
	row := func(name string, c StageCounters) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t\n",
			name, c.RowsIn, c.RowsOut, c.BlocksPruned, c.BlocksCovered,
			c.BlocksFetched, humanBytes(c.BytesRead), humanBytes(c.DecodedBytes),
			c.KernelFolds, c.Gathers, humanNs(c.WallNs))
	}
	for i := range t.Stages {
		s := &t.Stages[i]
		name := s.Name
		if s.Detail != "" {
			name += " " + s.Detail
		}
		row(name, s.StageCounters)
	}
	tot := t.Totals()
	tot.WallNs = t.WallNs
	row("total", tot)
	tw.Flush()
	if tot.Tombstoned > 0 {
		fmt.Fprintf(w, "tombstones masked: %d\n", tot.Tombstoned)
	}
}

// String renders the stage table to a string.
func (t *Trace) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CompactLine renders the one-line form used by the slow-query log:
// plan shape, total counters, and per-stage wall clock.
func (t *Trace) CompactLine() string {
	if t == nil {
		return ""
	}
	tot := t.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "query=%s engine=%s config=%s workers=%d epoch=%d wall=%s read=%s decoded=%s fetched=%d pruned=%d covered=%d folds=%d gathers=%d tombstoned=%d stages=[",
		t.Query, t.Engine, t.Config, t.Workers, t.Epoch, humanNs(t.WallNs),
		humanBytes(tot.BytesRead), humanBytes(tot.DecodedBytes),
		tot.BlocksFetched, tot.BlocksPruned, tot.BlocksCovered,
		tot.KernelFolds, tot.Gathers, tot.Tombstoned)
	for i := range t.Stages {
		s := &t.Stages[i]
		if i > 0 {
			b.WriteByte(' ')
		}
		name := s.Name
		if s.Detail != "" {
			name += "(" + s.Detail + ")"
		}
		fmt.Fprintf(&b, "%s:%d/%d:%s", name, s.RowsIn, s.RowsOut, humanNs(s.WallNs))
	}
	b.WriteByte(']')
	return b.String()
}
