package obs

import (
	"sort"
	"strings"
	"sync"
)

// QueryRecord is the flight recorder's evidence for one completed query:
// the plan shape the executor chose, where the time went, and the
// stage-counter rollup. Records are small and fixed-shape (one struct,
// a few strings), so a ring of them has bounded memory no matter how much
// traffic the server takes.
type QueryRecord struct {
	// Seq is the recorder-assigned monotone sequence number (newest
	// records have the highest Seq).
	Seq int64 `json:"seq"`
	// UnixNano is the completion timestamp, supplied by the caller so the
	// recorder itself stays clock-free and deterministic under test.
	UnixNano int64 `json:"unix_nano"`
	// Query is the plan selector: an SSBM id ("1.1"), a fuzz seed id
	// ("fuzz-42"), or the parser-assigned id of an ad-hoc SQL query.
	Query string `json:"query"`
	// Engine is the executor that ran ("fused", "per-probe", "early-mat"),
	// "cache" for result-cache hits, or "" when the run failed before an
	// engine was chosen.
	Engine  string `json:"engine"`
	Config  string `json:"config,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Epoch   int64  `json:"epoch"`
	// Cached marks result-cache hits (no engine ran; ExecNs is the hit's
	// lookup time, effectively zero).
	Cached bool `json:"cached,omitempty"`
	// Error is the failure, "" on success. Admission cancellations land
	// here too — the recorder sees every query the server accepted.
	Error string `json:"error,omitempty"`
	// WaitNs is admission queueing; ExecNs the engine execution wall.
	WaitNs int64 `json:"wait_ns"`
	ExecNs int64 `json:"exec_ns"`
	// Totals is the stage-counter rollup of the run's trace (zero for
	// cache hits and pre-execution failures).
	Totals StageCounters `json:"totals"`
}

// Flight buckets the record for the summary's engine×flight grouping: the
// SSBM flight digit ("1".."4") for canonical ids, "adhoc" for everything
// else.
func (r *QueryRecord) Flight() string {
	if i := strings.IndexByte(r.Query, '.'); i > 0 && i <= 2 {
		digits := true
		for _, c := range r.Query[:i] {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits {
			return r.Query[:i]
		}
	}
	return "adhoc"
}

// Recorder is the always-on flight recorder: a fixed-capacity ring of the
// last N completed QueryRecords. Record is one mutex acquisition and one
// struct copy — cheap enough to run unconditionally on the serving path.
// All methods are safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	buf  []QueryRecord // guarded by mu; ring storage, cap == len(buf)
	next int           // guarded by mu; index the next record lands in
	n    int           // guarded by mu; live records (<= len(buf))
	seq  int64         // guarded by mu; last assigned sequence number
}

// NewRecorder returns a recorder keeping the last capacity records
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]QueryRecord, capacity)}
}

// Record stores rec, overwriting the oldest entry once the ring is full,
// and returns the sequence number it assigned.
func (r *Recorder) Record(rec QueryRecord) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	return rec.Seq
}

// Len returns the number of live records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Snapshot returns up to n records, newest first (n <= 0 means all). The
// returned slice is a copy; the caller owns it.
func (r *Recorder) Snapshot(n int) []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Resize grows or shrinks the ring to capacity (minimum 1), keeping the
// newest records.
func (r *Recorder) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity == len(r.buf) {
		return
	}
	keep := r.n
	if keep > capacity {
		keep = capacity
	}
	buf := make([]QueryRecord, capacity)
	// Copy the newest `keep` records oldest-first into the new ring.
	for i := 0; i < keep; i++ {
		buf[i] = r.buf[(r.next-keep+i+len(r.buf))%len(r.buf)]
	}
	r.buf = buf
	r.n = keep
	r.next = keep % capacity
}

// SummaryGroup is one engine×flight cell of the windowed summary.
// Percentiles are over engine execution wall time (ExecNs) of successful,
// non-cached runs; Count/Errors/CacheHits count every record in the cell.
type SummaryGroup struct {
	Engine    string `json:"engine"`
	Flight    string `json:"flight"`
	Count     int    `json:"count"`
	Errors    int    `json:"errors"`
	CacheHits int    `json:"cache_hits"`
	// Runs is the number of latency observations behind the percentiles.
	Runs   int   `json:"runs"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// Summary is the windowed rollup behind /debug/summary.
type Summary struct {
	// WindowNs is the lookback the summary covers; records older than
	// (now - WindowNs) are excluded even if still in the ring.
	WindowNs  int64 `json:"window_ns"`
	Count     int   `json:"count"`
	Errors    int   `json:"errors"`
	CacheHits int   `json:"cache_hits"`
	Runs      int   `json:"runs"`
	P50Ns     int64 `json:"p50_ns"`
	P95Ns     int64 `json:"p95_ns"`
	P99Ns     int64 `json:"p99_ns"`
	// Groups is the per-engine×flight breakdown, sorted by engine then
	// flight for stable rendering.
	Groups []SummaryGroup `json:"groups"`
}

// Summary computes the windowed percentile rollup from the ring: records
// with UnixNano >= now-windowNs contribute (windowNs <= 0 means the whole
// ring). The caller supplies now so tests stay deterministic.
func (r *Recorder) Summary(nowUnixNano, windowNs int64) Summary {
	recs := r.Snapshot(0)
	s := Summary{WindowNs: windowNs}
	var all []int64
	type cell struct {
		g    SummaryGroup
		lats []int64
	}
	cells := map[string]*cell{}
	for i := range recs {
		rec := &recs[i]
		if windowNs > 0 && rec.UnixNano < nowUnixNano-windowNs {
			continue
		}
		s.Count++
		key := rec.Engine + "\x00" + rec.Flight()
		c := cells[key]
		if c == nil {
			c = &cell{g: SummaryGroup{Engine: rec.Engine, Flight: rec.Flight()}}
			cells[key] = c
		}
		c.g.Count++
		switch {
		case rec.Error != "":
			s.Errors++
			c.g.Errors++
		case rec.Cached:
			s.CacheHits++
			c.g.CacheHits++
		default:
			all = append(all, rec.ExecNs)
			c.lats = append(c.lats, rec.ExecNs)
		}
	}
	s.Runs = len(all)
	s.P50Ns, s.P95Ns, s.P99Ns = percentiles(all)
	for _, c := range cells {
		c.g.Runs = len(c.lats)
		c.g.P50Ns, c.g.P95Ns, c.g.P99Ns = percentiles(c.lats)
		var sum int64
		for _, l := range c.lats {
			sum += l
			if l > c.g.MaxNs {
				c.g.MaxNs = l
			}
		}
		if len(c.lats) > 0 {
			c.g.MeanNs = sum / int64(len(c.lats))
		}
		s.Groups = append(s.Groups, c.g)
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		if s.Groups[i].Engine != s.Groups[j].Engine {
			return s.Groups[i].Engine < s.Groups[j].Engine
		}
		return s.Groups[i].Flight < s.Groups[j].Flight
	})
	return s
}

// percentiles returns the nearest-rank p50/p95/p99 of lats (zeros for an
// empty input). lats is sorted in place.
func percentiles(lats []int64) (p50, p95, p99 int64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(p float64) int64 {
		i := int(p*float64(len(lats))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}
