package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collect[K int32 | string](t *Tree[K]) []Entry[K] {
	var out []Entry[K]
	t.Scan(func(e Entry[K]) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New[int32](4)
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if got := collect(tr); len(got) != 0 {
		t.Fatal("empty tree scan produced entries")
	}
	hops := tr.Range(0, 100, func(Entry[int32]) bool { return true })
	if hops == 0 {
		t.Log("empty range still visits the (empty) first leaf — fine")
	}
}

func TestInsertAndScanSorted(t *testing.T) {
	tr := New[int32](4)
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(rng.Int31n(500), int32(i), int32(i*2))
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d want %d", tr.Len(), n)
	}
	got := collect(tr)
	if len(got) != n {
		t.Fatalf("scan len=%d want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatalf("scan out of order at %d: %d < %d", i, got[i].Key, got[i-1].Key)
		}
		if got[i].Key == got[i-1].Key && got[i].RID < got[i-1].RID {
			t.Fatalf("duplicate keys out of RID order at %d", i)
		}
	}
	// Aux payload survives.
	for _, e := range got {
		if e.Aux != e.RID*2 {
			t.Fatalf("aux corrupted: rid=%d aux=%d", e.RID, e.Aux)
		}
	}
}

func TestBuildMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	entries := make([]Entry[int32], n)
	for i := range entries {
		entries[i] = Entry[int32]{Key: rng.Int31n(1000), RID: int32(i), Aux: int32(i)}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].RID < entries[j].RID
	})
	built := Build(entries, 4)
	ins := New[int32](4)
	for _, e := range entries {
		ins.Insert(e.Key, e.RID, e.Aux)
	}
	a, b := collect(built), collect(ins)
	if len(a) != n || len(b) != n {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRange(t *testing.T) {
	entries := make([]Entry[int32], 1000)
	for i := range entries {
		entries[i] = Entry[int32]{Key: int32(i * 2), RID: int32(i)} // even keys 0..1998
	}
	tr := Build(entries, 4)
	var got []int32
	tr.Range(100, 110, func(e Entry[int32]) bool {
		got = append(got, e.Key)
		return true
	})
	want := []int32{100, 102, 104, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("range got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range got %v want %v", got, want)
		}
	}
	// Range outside key space.
	count := 0
	tr.Range(5000, 6000, func(Entry[int32]) bool { count++; return true })
	if count != 0 {
		t.Fatalf("out-of-range matched %d", count)
	}
	// Early stop.
	count = 0
	tr.Range(0, 2000, func(Entry[int32]) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string](10)
	words := []string{"EUROPE", "ASIA", "AMERICA", "AFRICA", "MIDDLE EAST"}
	for i, w := range words {
		tr.Insert(w, int32(i), 0)
	}
	var got []string
	tr.Range("AMERICA", "EUROPE", func(e Entry[string]) bool {
		got = append(got, e.Key)
		return true
	})
	want := []string{"AMERICA", "ASIA", "EUROPE"}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := New[int32](4)
	for i := 0; i < 100; i++ {
		tr.Insert(int32(i), int32(i), 0)
	}
	if tr.EntryBytes() != 12 {
		t.Fatalf("EntryBytes=%d want 12", tr.EntryBytes())
	}
	if tr.SizeBytes() != 1200 {
		t.Fatalf("SizeBytes=%d want 1200", tr.SizeBytes())
	}
}

// TestQuickAgainstSortedSliceOracle: random inserts, then every range query
// must match a sorted-slice reference.
func TestQuickAgainstSortedSliceOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000) + 1
		tr := New[int32](4)
		keys := make([]int32, n)
		for i := 0; i < n; i++ {
			k := rng.Int31n(200)
			keys[i] = k
			tr.Insert(k, int32(i), 0)
		}
		sorted := append([]int32(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for q := 0; q < 20; q++ {
			lo := rng.Int31n(220) - 10
			hi := lo + rng.Int31n(50)
			count := 0
			tr.Range(lo, hi, func(e Entry[int32]) bool {
				if e.Key < lo || e.Key > hi {
					return false
				}
				count++
				return true
			})
			want := sort.Search(len(sorted), func(i int) bool { return sorted[i] > hi }) -
				sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
			if count != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	const n = 1 << 18
	entries := make([]Entry[int32], n)
	for i := range entries {
		entries[i] = Entry[int32]{Key: int32(i), RID: int32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(entries, 4)
	}
}

func BenchmarkRangeScan(b *testing.B) {
	const n = 1 << 18
	entries := make([]Entry[int32], n)
	for i := range entries {
		entries[i] = Entry[int32]{Key: int32(i), RID: int32(i)}
	}
	tr := Build(entries, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := int64(0)
		tr.Range(0, n-1, func(e Entry[int32]) bool {
			sum += int64(e.RID)
			return true
		})
	}
}
