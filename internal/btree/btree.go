// Package btree implements an in-memory B+Tree used by the row engine's
// unclustered secondary indexes and index-only plans (paper Section 4,
// "index-only plans ... an additional unclustered B+Tree index is added on
// every column of every table").
//
// Leaf entries carry the indexed key, the record id of the base tuple, and
// an auxiliary payload used for the paper's composite-key optimization
// ("storing the primary key of each dimension table as a secondary sort
// attribute on the indices over the attributes of that dimension table"),
// which lets a plan read the join key straight out of the index without
// visiting the base relation.
//
// The tree is totally ordered by the composite (Key, RID), including the
// interior separators, so duplicate keys that span node splits are still
// found by range scans.
package btree

import (
	"cmp"
	"math"
)

// degree is the maximum number of children per interior node.
const degree = 64

// Entry is one leaf slot: key, record id, and auxiliary payload.
type Entry[K cmp.Ordered] struct {
	Key K
	RID int32
	Aux int32
}

// less orders entries by (Key, RID).
func less[K cmp.Ordered](aK K, aR int32, bK K, bR int32) bool {
	if aK != bK {
		return aK < bK
	}
	return aR < bR
}

type leaf[K cmp.Ordered] struct {
	entries []Entry[K]
	next    *leaf[K]
}

type interior[K cmp.Ordered] struct {
	// Separator i is (keys[i], rids[i]) — the smallest composite
	// reachable under children[i+1].
	keys     []K
	rids     []int32
	children []node[K]
}

type node[K cmp.Ordered] interface{ isNode() }

func (*leaf[K]) isNode()     {}
func (*interior[K]) isNode() {}

// Tree is a B+Tree keyed by K. The zero value is not usable; call New or
// Build.
type Tree[K cmp.Ordered] struct {
	root      node[K]
	firstLeaf *leaf[K]
	n         int
	keyBytes  int
}

// New returns an empty tree. keyBytes is the on-disk size of one key,
// used for I/O accounting (e.g. 4 for int32 keys, avg length for strings).
func New[K cmp.Ordered](keyBytes int) *Tree[K] {
	lf := &leaf[K]{}
	return &Tree[K]{root: lf, firstLeaf: lf, keyBytes: keyBytes}
}

// Build bulk-loads a tree from entries sorted ascending by (Key, RID). It is
// the fast path used when indexing a freshly generated table.
func Build[K cmp.Ordered](entries []Entry[K], keyBytes int) *Tree[K] {
	t := &Tree[K]{keyBytes: keyBytes, n: len(entries)}
	if len(entries) == 0 {
		lf := &leaf[K]{}
		t.root, t.firstLeaf = lf, lf
		return t
	}
	const leafCap = degree - 1
	var leaves []*leaf[K]
	for off := 0; off < len(entries); off += leafCap {
		end := off + leafCap
		if end > len(entries) {
			end = len(entries)
		}
		leaves = append(leaves, &leaf[K]{entries: append([]Entry[K](nil), entries[off:end]...)})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.firstLeaf = leaves[0]
	level := make([]node[K], len(leaves))
	firstK := make([]K, len(leaves))
	firstR := make([]int32, len(leaves))
	for i, lf := range leaves {
		level[i] = lf
		firstK[i] = lf.entries[0].Key
		firstR[i] = lf.entries[0].RID
	}
	for len(level) > 1 {
		var nextLevel []node[K]
		var nextK []K
		var nextR []int32
		for off := 0; off < len(level); off += degree {
			end := off + degree
			if end > len(level) {
				end = len(level)
			}
			in := &interior[K]{
				children: append([]node[K](nil), level[off:end]...),
				keys:     append([]K(nil), firstK[off+1:end]...),
				rids:     append([]int32(nil), firstR[off+1:end]...),
			}
			nextLevel = append(nextLevel, in)
			nextK = append(nextK, firstK[off])
			nextR = append(nextR, firstR[off])
		}
		level, firstK, firstR = nextLevel, nextK, nextR
	}
	t.root = level[0]
	return t
}

// Len returns the number of entries.
func (t *Tree[K]) Len() int { return t.n }

// Insert adds an entry, keeping duplicates (secondary indexes are
// non-unique).
func (t *Tree[K]) Insert(key K, rid, aux int32) {
	t.n++
	newChild, sk, sr := t.insert(t.root, Entry[K]{Key: key, RID: rid, Aux: aux})
	if newChild != nil {
		t.root = &interior[K]{
			keys:     []K{sk},
			rids:     []int32{sr},
			children: []node[K]{t.root, newChild},
		}
	}
}

func (t *Tree[K]) insert(nd node[K], e Entry[K]) (node[K], K, int32) {
	var zeroK K
	switch n := nd.(type) {
	case *leaf[K]:
		i := lowerBoundEntry(n.entries, e.Key, e.RID)
		n.entries = append(n.entries, Entry[K]{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) < degree {
			return nil, zeroK, 0
		}
		mid := len(n.entries) / 2
		right := &leaf[K]{entries: append([]Entry[K](nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid]
		n.next = right
		return right, right.entries[0].Key, right.entries[0].RID
	case *interior[K]:
		// Descend to the rightmost child whose range can hold e:
		// first separator strictly greater than (key, rid).
		ci := n.childFor(e.Key, e.RID)
		newChild, sk, sr := t.insert(n.children[ci], e)
		if newChild == nil {
			return nil, zeroK, 0
		}
		n.keys = append(n.keys, zeroK)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sk
		n.rids = append(n.rids, 0)
		copy(n.rids[ci+1:], n.rids[ci:])
		n.rids[ci] = sr
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = newChild
		if len(n.children) <= degree {
			return nil, zeroK, 0
		}
		mid := len(n.keys) / 2
		upK, upR := n.keys[mid], n.rids[mid]
		right := &interior[K]{
			keys:     append([]K(nil), n.keys[mid+1:]...),
			rids:     append([]int32(nil), n.rids[mid+1:]...),
			children: append([]node[K](nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.rids = n.rids[:mid]
		n.children = n.children[:mid+1]
		return right, upK, upR
	}
	return nil, zeroK, 0
}

// childFor returns the index of the child whose subtree should contain the
// composite (key, rid): the first separator > (key, rid).
func (n *interior[K]) childFor(key K, rid int32) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		m := (lo + hi) / 2
		if less(key, rid, n.keys[m], n.rids[m]) {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// lowerBoundEntry finds the first slot whose (Key,RID) >= (key,rid).
func lowerBoundEntry[K cmp.Ordered](entries []Entry[K], key K, rid int32) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		m := (lo + hi) / 2
		if less(entries[m].Key, entries[m].RID, key, rid) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// seekLeaf returns the leaf and slot of the first entry with
// (Key, RID) >= (key, rid).
func (t *Tree[K]) seekLeaf(key K, rid int32) (*leaf[K], int) {
	nd := t.root
	for {
		switch n := nd.(type) {
		case *interior[K]:
			nd = n.children[n.childFor(key, rid)]
		case *leaf[K]:
			i := lowerBoundEntry(n.entries, key, rid)
			if i == len(n.entries) && n.next != nil {
				return n.next, 0
			}
			return n, i
		}
	}
}

// Range visits entries with lo <= Key <= hi in (Key, RID) order; fn returns
// false to stop early. It also returns the number of leaf hops performed,
// which the caller converts to seeks.
func (t *Tree[K]) Range(lo, hi K, fn func(Entry[K]) bool) (leafHops int64) {
	lf, i := t.seekLeaf(lo, math.MinInt32)
	for lf != nil {
		leafHops++
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if e.Key > hi {
				return leafHops
			}
			if !fn(e) {
				return leafHops
			}
		}
		lf, i = lf.next, 0
	}
	return leafHops
}

// Scan visits every entry in (Key, RID) order (a "full index scan").
func (t *Tree[K]) Scan(fn func(Entry[K]) bool) {
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		for _, e := range lf.entries {
			if !fn(e) {
				return
			}
		}
	}
}

// EntryBytes is the on-disk size of one leaf entry (key + rid + aux).
func (t *Tree[K]) EntryBytes() int64 { return int64(t.keyBytes) + 8 }

// SizeBytes approximates the on-disk size of the leaf level, charged when a
// plan scans the whole index.
func (t *Tree[K]) SizeBytes() int64 { return int64(t.n) * t.EntryBytes() }
