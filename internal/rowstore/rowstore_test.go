package rowstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/iosim"
)

func testSchema() *Schema {
	return NewSchema(
		[]string{"id", "qty", "name", "city"},
		[]ColType{TInt, TInt, TStr, TStr},
	)
}

func mkRow(id, qty int32, name, city string) Row {
	return Row{{I: id}, {I: qty}, {S: name}, {S: city}}
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.NumCols() != 4 {
		t.Fatal("NumCols")
	}
	if i, err := s.ColIndex("qty"); err != nil || i != 1 {
		t.Fatalf("ColIndex qty = %d, %v", i, err)
	}
	if _, err := s.ColIndex("zz"); err == nil {
		t.Fatal("missing column should error")
	}
	p := s.Project([]string{"city", "id"})
	if p.NumCols() != 2 || p.Types[0] != TStr || p.Types[1] != TInt {
		t.Fatal("Project wrong")
	}
}

func TestSchemaPanicsOnBadConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { NewSchema([]string{"a"}, nil) },
		"duplicate":       func() { NewSchema([]string{"a", "a"}, []ColType{TInt, TInt}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	rows := []Row{
		mkRow(1, 10, "alpha", "boston"),
		mkRow(-5, 0, "", "x"),
		mkRow(1<<30, -1, "long name with spaces", ""),
	}
	for _, r := range rows {
		buf := s.Encode(r, nil)
		if len(buf) != s.EncodedSize(r) {
			t.Fatalf("EncodedSize=%d actual=%d", s.EncodedSize(r), len(buf))
		}
		got := make(Row, s.NumCols())
		n := s.DecodeInto(buf, got)
		if n != len(buf) {
			t.Fatalf("DecodeInto consumed %d of %d", n, len(buf))
		}
		for i := range r {
			if got[i] != r[i] {
				t.Fatalf("field %d: got %+v want %+v", i, got[i], r[i])
			}
		}
		// Single-column decode agrees.
		for i := range r {
			if v := s.DecodeCol(buf, i); v != r[i] {
				t.Fatalf("DecodeCol(%d): got %+v want %+v", i, v, r[i])
			}
		}
	}
}

func TestTableAppendScanFetch(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	const n = 10000
	for i := 0; i < n; i++ {
		rid := tb.Append(mkRow(int32(i), int32(i%7), fmt.Sprintf("name%d", i), "c"))
		if rid != int32(i) {
			t.Fatalf("rid=%d want %d", rid, i)
		}
	}
	if tb.NumRows() != n {
		t.Fatal("NumRows")
	}
	if tb.NumPages() < 2 {
		t.Fatal("expected multiple pages")
	}
	var st iosim.Stats
	count := 0
	tb.Scan(&st, func(rid int32, row Row) bool {
		if row[0].I != rid {
			t.Fatalf("scan rid %d has id %d", rid, row[0].I)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
	if st.BytesRead != tb.HeapBytes() {
		t.Fatalf("scan charged %d, heap is %d", st.BytesRead, tb.HeapBytes())
	}
	// Random fetches.
	for _, rid := range []int32{0, 1, 4999, 9999} {
		st.Reset()
		row := tb.Fetch(rid, &st)
		if row[0].I != rid {
			t.Fatalf("Fetch(%d) got id %d", rid, row[0].I)
		}
		if st.Seeks != 1 || st.BytesRead != PageSize {
			t.Fatalf("Fetch accounting: %+v", st)
		}
	}
	// Early termination.
	count = 0
	tb.Scan(nil, func(int32, Row) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestTupleOverheadVisible(t *testing.T) {
	// A 2-column int table spends TupleHeaderBytes+8 per tuple: the
	// vertical-partitioning overhead the paper measures (~16 bytes/value
	// vs 4 in a column store).
	s := NewSchema([]string{"pos", "v"}, []ColType{TInt, TInt})
	tb := NewTable("vp", s)
	for i := 0; i < 1000; i++ {
		tb.Append(Row{{I: int32(i)}, {I: int32(i)}})
	}
	perTuple := float64(tb.DataBytes()) / 1000
	if perTuple != TupleHeaderBytes+8 {
		t.Fatalf("per-tuple bytes = %v, want %d", perTuple, TupleHeaderBytes+8)
	}
}

func TestPartitionedTable(t *testing.T) {
	s := NewSchema([]string{"orderdate", "v"}, []ColType{TInt, TInt})
	pt := NewPartitionedTable("lo", s, "orderdate", func(d int32) int32 { return d / 10000 })
	for y := int32(1992); y <= 1998; y++ {
		for i := 0; i < 100; i++ {
			pt.Append(Row{{I: y*10000 + 101 + int32(i)%300}, {I: int32(i)}})
		}
	}
	if pt.NumPartitions() != 7 || pt.NumRows() != 700 {
		t.Fatalf("parts=%d rows=%d", pt.NumPartitions(), pt.NumRows())
	}
	// Full scan.
	count := 0
	pt.Scan(nil, nil, func(Row) bool { count++; return true })
	if count != 700 {
		t.Fatalf("full scan visited %d", count)
	}
	// Pruned scan reads fewer bytes.
	var stAll, stOne iosim.Stats
	pt.Scan(nil, &stAll, func(Row) bool { return true })
	count = 0
	pt.Scan(func(k int32) bool { return k == 1994 }, &stOne, func(row Row) bool {
		if row[0].I/10000 != 1994 {
			t.Fatal("pruned scan leaked other years")
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("pruned scan visited %d", count)
	}
	if stOne.BytesRead*5 > stAll.BytesRead {
		t.Fatalf("pruning saved too little: %d vs %d", stOne.BytesRead, stAll.BytesRead)
	}
}

func TestBuildVertical(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	for i := 0; i < 500; i++ {
		tb.Append(mkRow(int32(i), int32(i*2), fmt.Sprintf("n%d", i), "city"))
	}
	vp := BuildVertical(tb)
	if len(vp) != 4 {
		t.Fatalf("got %d vertical tables", len(vp))
	}
	qty := vp["qty"]
	if qty.NumRows() != 500 {
		t.Fatal("vertical rows")
	}
	// Each row is (pos, value) and positions align with source rids.
	qty.Scan(nil, func(_ int32, row Row) bool {
		if row[1].I != row[0].I*2 {
			t.Fatalf("vertical mismatch: pos=%d val=%d", row[0].I, row[1].I)
		}
		return true
	})
	// The string column's vertical table holds strings.
	name := vp["name"]
	name.Scan(nil, func(_ int32, row Row) bool {
		if row[1].S == "" {
			t.Fatal("vertical string column empty")
		}
		return true
	})
}

func TestBuildMV(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	for i := 0; i < 5000; i++ {
		tb.Append(mkRow(int32(i), int32(i%5), "nm", "ct"))
	}
	mv := BuildMV(tb, "mv1", []string{"qty", "id"})
	if mv.NumRows() != 5000 || mv.Schema.NumCols() != 2 {
		t.Fatal("MV shape wrong")
	}
	mv.Scan(nil, func(_ int32, row Row) bool {
		if row[0].I != row[1].I%5 {
			t.Fatalf("MV row mismatch: %+v", row)
		}
		return true
	})
	if mv.HeapBytes() >= tb.HeapBytes() {
		t.Fatalf("MV (%d) not smaller than base (%d)", mv.HeapBytes(), tb.HeapBytes())
	}
}

func TestIntIndex(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	rng := rand.New(rand.NewSource(4))
	vals := make([]int32, 5000)
	for i := range vals {
		vals[i] = rng.Int31n(100)
		tb.Append(mkRow(int32(i), vals[i], "x", "y"))
	}
	ix := BuildIntIndex(tb, "qty", "id")
	// Range query matches naive filter.
	var st iosim.Stats
	got := map[int32]bool{}
	ix.Range(10, 20, &st, func(key, rid, aux int32) bool {
		if key < 10 || key > 20 {
			t.Fatalf("range leaked key %d", key)
		}
		if aux != rid {
			t.Fatalf("aux=%d rid=%d: composite payload should be id column", aux, rid)
		}
		got[rid] = true
		return true
	})
	want := 0
	for _, v := range vals {
		if v >= 10 && v <= 20 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("index range matched %d want %d", len(got), want)
	}
	if st.Seeks == 0 || st.BytesRead == 0 {
		t.Fatalf("index range charged nothing: %+v", st)
	}
	// Full scan visits everything in key order.
	st.Reset()
	prev := int32(-1)
	n := 0
	ix.ScanAll(&st, func(key, rid, aux int32) bool {
		if key < prev {
			t.Fatal("ScanAll out of order")
		}
		prev = key
		n++
		return true
	})
	if n != 5000 {
		t.Fatalf("ScanAll visited %d", n)
	}
	if st.BytesRead != ix.Tree.SizeBytes() {
		t.Fatalf("ScanAll charged %d want %d", st.BytesRead, ix.Tree.SizeBytes())
	}
}

func TestStrIndex(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	for i := 0; i < 1000; i++ {
		tb.Append(mkRow(int32(i), 0, "x", regions[i%5]))
	}
	ix := BuildStrIndex(tb, "city", "id")
	count := 0
	ix.Range("ASIA", "ASIA", nil, func(key string, rid, aux int32) bool {
		if key != "ASIA" {
			t.Fatalf("leaked key %q", key)
		}
		count++
		return true
	})
	if count != 200 {
		t.Fatalf("ASIA matched %d want 200", count)
	}
}

func TestBitmapIndex(t *testing.T) {
	s := testSchema()
	tb := NewTable("t", s)
	for i := 0; i < 2000; i++ {
		tb.Append(mkRow(int32(i), int32(i%11), "x", "y"))
	}
	ix := BuildBitmapIndex(tb, "qty")
	if len(ix.ByValue) != 11 {
		t.Fatalf("distinct values = %d", len(ix.ByValue))
	}
	var st iosim.Stats
	bm := ix.Lookup(func(v int32) bool { return v >= 1 && v <= 3 }, &st)
	want := 0
	for i := 0; i < 2000; i++ {
		if m := i % 11; m >= 1 && m <= 3 {
			want++
		}
	}
	if bm.Count() != want {
		t.Fatalf("bitmap lookup matched %d want %d", bm.Count(), want)
	}
	if st.BytesRead == 0 || ix.SizeBytes() == 0 {
		t.Fatal("bitmap accounting missing")
	}
}

// TestQuickEncodeDecode round-trips random rows through the tuple format.
func TestQuickEncodeDecode(t *testing.T) {
	s := testSchema()
	f := func(id, qty int32, name, city string) bool {
		if len(name) > 60000 {
			name = name[:60000]
		}
		if len(city) > 60000 {
			city = city[:60000]
		}
		r := mkRow(id, qty, name, city)
		buf := s.Encode(r, nil)
		got := make(Row, 4)
		s.DecodeInto(buf, got)
		for i := range r {
			if got[i] != r[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFetchMatchesScan: Fetch(rid) must agree with the rid seen during
// Scan for random table sizes.
func TestQuickFetchMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := testSchema()
		tb := NewTable("t", s)
		n := rng.Intn(3000) + 1
		for i := 0; i < n; i++ {
			tb.Append(mkRow(int32(i), rng.Int31n(100), "abcdefg", "hijk"))
		}
		for k := 0; k < 20; k++ {
			rid := int32(rng.Intn(n))
			row := tb.Fetch(rid, nil)
			if row[0].I != rid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
