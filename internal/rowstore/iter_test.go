package rowstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
	"repro/internal/iosim"
)

func buildIterTable(n int) *Table {
	s := NewSchema([]string{"id", "pad"}, []ColType{TInt, TStr})
	t := NewTable("t", s)
	for i := 0; i < n; i++ {
		t.Append(Row{{I: int32(i)}, {S: "xxxxxxxxxxxxxxxxxxxxxxxx"}})
	}
	return t
}

func TestIterFullScan(t *testing.T) {
	tb := buildIterTable(5000)
	var st iosim.Stats
	it := tb.Iter(&st)
	want := int32(0)
	for {
		rid, row, ok := it.Next()
		if !ok {
			break
		}
		if rid != want || row[0].I != want {
			t.Fatalf("rid=%d row=%d want %d", rid, row[0].I, want)
		}
		want++
	}
	if want != 5000 {
		t.Fatalf("visited %d", want)
	}
	if st.BytesRead != tb.HeapBytes() {
		t.Fatalf("charged %d want %d", st.BytesRead, tb.HeapBytes())
	}
}

func TestRangeIter(t *testing.T) {
	tb := buildIterTable(5000)
	cases := []struct{ lo, hi int32 }{
		{0, 0}, {0, 1}, {100, 200}, {4999, 5000}, {4000, 9999}, {2500, 2500},
	}
	for _, c := range cases {
		it := tb.RangeIter(c.lo, c.hi, nil)
		want := c.lo
		end := c.hi
		if end > 5000 {
			end = 5000
		}
		for {
			rid, _, ok := it.Next()
			if !ok {
				break
			}
			if rid != want {
				t.Fatalf("[%d,%d): rid=%d want %d", c.lo, c.hi, rid, want)
			}
			want++
		}
		if want != end && !(c.lo >= end && want == c.lo) {
			t.Fatalf("[%d,%d): stopped at %d want %d", c.lo, c.hi, want, end)
		}
	}
}

func TestRangeIterChargesOnlyCoveredPages(t *testing.T) {
	tb := buildIterTable(20000)
	var stAll, stRange iosim.Stats
	for it := tb.Iter(&stAll); ; {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	for it := tb.RangeIter(0, 100, &stRange); ; {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	if stRange.BytesRead >= stAll.BytesRead/10 {
		t.Fatalf("range scan charged %d of %d", stRange.BytesRead, stAll.BytesRead)
	}
}

func TestScanRidBitmap(t *testing.T) {
	tb := buildIterTable(10000)
	bm := bitmap.New(10000)
	want := map[int32]bool{}
	rng := rand.New(rand.NewSource(9))
	// Cluster matches on a small rid prefix so most pages have none.
	for i := 0; i < 50; i++ {
		r := int32(rng.Intn(700))
		bm.Set(int(r))
		want[r] = true
	}
	bm.Set(9999)
	want[9999] = true
	var st iosim.Stats
	got := map[int32]bool{}
	tb.ScanRidBitmap(bm, &st, func(rid int32, row Row) bool {
		if row[0].I != rid {
			t.Fatalf("decoded wrong tuple for rid %d", rid)
		}
		got[rid] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d rids want %d", len(got), len(want))
	}
	// Sparse fetch must charge less than a full scan.
	if st.BytesRead >= tb.HeapBytes() {
		t.Fatalf("bitmap fetch charged %d, heap %d", st.BytesRead, tb.HeapBytes())
	}
	if st.Seeks == 0 {
		t.Fatal("sparse page jumps should count seeks")
	}
	// Early stop.
	n := 0
	tb.ScanRidBitmap(bm, nil, func(int32, Row) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanRidBitmapDensePagesChargedOnce(t *testing.T) {
	tb := buildIterTable(10000)
	bm := bitmap.NewFull(10000)
	var st iosim.Stats
	tb.ScanRidBitmap(bm, &st, func(int32, Row) bool { return true })
	if st.BytesRead != tb.HeapBytes() {
		t.Fatalf("dense bitmap fetch charged %d, heap %d", st.BytesRead, tb.HeapBytes())
	}
	if st.Seeks != 0 {
		t.Fatalf("sequential pages should not seek, got %d", st.Seeks)
	}
}

// TestQuickRangeIterOracle: any range yields exactly the rids in range.
func TestQuickRangeIterOracle(t *testing.T) {
	tb := buildIterTable(3000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := int32(rng.Intn(3000))
		hi := lo + int32(rng.Intn(3000))
		count := int32(0)
		for it := tb.RangeIter(lo, hi, nil); ; {
			rid, _, ok := it.Next()
			if !ok {
				break
			}
			if rid != lo+count {
				return false
			}
			count++
		}
		end := hi
		if end > 3000 {
			end = 3000
		}
		return count == end-lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
