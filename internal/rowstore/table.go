package rowstore

import (
	"sort"

	"repro/internal/iosim"
)

// PageSize matches the paper's System X configuration ("32 KB disk pages").
const PageSize = 32 * 1024

// page is one heap page: raw tuple bytes plus a slot directory.
type page struct {
	buf   []byte
	slots []int32 // byte offset of each tuple
}

// Table is a heap file of encoded tuples.
type Table struct {
	Name   string
	Schema *Schema

	pages      []*page
	pageStarts []int32 // first rid on each page
	n          int
	scratch    Row // reused by Fetch
}

// NewTable returns an empty heap table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Append stores a tuple and returns its record id.
func (t *Table) Append(r Row) int32 {
	sz := t.Schema.EncodedSize(r)
	var p *page
	if len(t.pages) > 0 {
		last := t.pages[len(t.pages)-1]
		if len(last.buf)+sz <= PageSize {
			p = last
		}
	}
	if p == nil {
		p = &page{buf: make([]byte, 0, PageSize)}
		t.pages = append(t.pages, p)
		t.pageStarts = append(t.pageStarts, int32(t.n))
	}
	p.slots = append(p.slots, int32(len(p.buf)))
	p.buf = t.Schema.Encode(r, p.buf)
	rid := int32(t.n)
	t.n++
	return rid
}

// NumRows returns the tuple count.
func (t *Table) NumRows() int { return t.n }

// NumPages returns the heap page count.
func (t *Table) NumPages() int { return len(t.pages) }

// HeapBytes is the on-disk footprint of the heap file. Pages are charged in
// full (a real scan reads whole pages, including slack).
func (t *Table) HeapBytes() int64 { return int64(len(t.pages)) * PageSize }

// DataBytes is the sum of encoded tuple bytes (diagnostics).
func (t *Table) DataBytes() int64 {
	var b int64
	for _, p := range t.pages {
		b += int64(len(p.buf))
	}
	return b
}

// Scan invokes fn with (rid, row) for every tuple in heap order, charging
// one page read per page. The row is reused between calls; clone to retain.
func (t *Table) Scan(st *iosim.Stats, fn func(rid int32, row Row) bool) {
	row := make(Row, t.Schema.NumCols())
	for pi, p := range t.pages {
		st.Read(PageSize)
		rid := t.pageStarts[pi]
		for _, off := range p.slots {
			t.Schema.DecodeInto(p.buf[off:], row)
			if !fn(rid, row) {
				return
			}
			rid++
		}
	}
}

// Fetch decodes the tuple with the given rid. Each fetch charges one page
// read plus a seek — the cost an unclustered index pays to visit the base
// relation. The returned row is valid until the next Fetch.
func (t *Table) Fetch(rid int32, st *iosim.Stats) Row {
	pi := sort.Search(len(t.pageStarts), func(i int) bool { return t.pageStarts[i] > rid }) - 1
	p := t.pages[pi]
	slot := rid - t.pageStarts[pi]
	if t.scratch == nil {
		t.scratch = make(Row, t.Schema.NumCols())
	}
	st.Read(PageSize)
	st.AddSeeks(1)
	t.Schema.DecodeInto(p.buf[p.slots[slot]:], t.scratch)
	return t.scratch
}

// PartitionedTable horizontally partitions tuples by an integer column
// (the paper's System X "partitions the lineorder table on orderdate by
// year"). Each partition is its own heap table; a query with a restriction
// on the partitioning column scans only matching partitions.
type PartitionedTable struct {
	Name    string
	Schema  *Schema
	PartCol string

	partCol int
	keyOf   func(v int32) int32 // maps column value -> partition key
	parts   map[int32]*Table
	keys    []int32
	n       int
}

// NewPartitionedTable partitions on column partCol, grouping values through
// keyOf (e.g. orderdate 19930214 -> year 1993).
func NewPartitionedTable(name string, schema *Schema, partCol string, keyOf func(int32) int32) *PartitionedTable {
	return &PartitionedTable{
		Name:    name,
		Schema:  schema,
		PartCol: partCol,
		partCol: schema.MustColIndex(partCol),
		keyOf:   keyOf,
		parts:   map[int32]*Table{},
	}
}

// Append routes the tuple to its partition.
func (t *PartitionedTable) Append(r Row) {
	key := t.keyOf(r[t.partCol].I)
	p, ok := t.parts[key]
	if !ok {
		p = NewTable(t.Name, t.Schema)
		t.parts[key] = p
		t.keys = append(t.keys, key)
		sort.Slice(t.keys, func(i, j int) bool { return t.keys[i] < t.keys[j] })
	}
	p.Append(r)
	t.n++
}

// NumRows returns the total tuple count across partitions.
func (t *PartitionedTable) NumRows() int { return t.n }

// NumPartitions returns the partition count.
func (t *PartitionedTable) NumPartitions() int { return len(t.parts) }

// HeapBytes sums all partition heaps.
func (t *PartitionedTable) HeapBytes() int64 {
	var b int64
	for _, p := range t.parts {
		b += p.HeapBytes()
	}
	return b
}

// Scan visits tuples in partitions whose key k satisfies keep(k); pass nil
// to scan everything. Row is reused; rid is partition-local and therefore
// NOT globally unique — partition scans are used only by full-tuple plans.
func (t *PartitionedTable) Scan(keep func(key int32) bool, st *iosim.Stats, fn func(row Row) bool) {
	for _, k := range t.keys {
		if keep != nil && !keep(k) {
			continue
		}
		done := false
		t.parts[k].Scan(st, func(_ int32, row Row) bool {
			if !fn(row) {
				done = true
				return false
			}
			return true
		})
		if done {
			return
		}
	}
}

// VerticalTable is one column's two-column table in the fully vertically
// partitioned design: (position, value) pairs, exactly as Section 4
// describes ("this approach creates one physical table for each column...
// one with values from column i and one with the corresponding value in the
// position column").
type VerticalTable struct {
	*Table
}

// BuildVertical produces one two-column heap table per column of src.
func BuildVertical(src *Table) map[string]*VerticalTable {
	out := make(map[string]*VerticalTable, src.Schema.NumCols())
	cols := make([]*Table, src.Schema.NumCols())
	for i, name := range src.Schema.Names {
		sch := NewSchema([]string{"pos", name}, []ColType{TInt, src.Schema.Types[i]})
		cols[i] = NewTable(src.Name+"."+name, sch)
	}
	var st iosim.Stats // construction I/O is not part of query accounting
	src.Scan(&st, func(rid int32, row Row) bool {
		for i := range cols {
			cols[i].Append(Row{{I: rid}, row[i]})
		}
		return true
	})
	for i, name := range src.Schema.Names {
		out[name] = &VerticalTable{Table: cols[i]}
	}
	return out
}

// BuildMV materializes a view with exactly the named columns of src (the
// paper's "materialized views" design: minimal projections, no pre-joining).
func BuildMV(src *Table, name string, cols []string) *Table {
	sch := src.Schema.Project(cols)
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = src.Schema.MustColIndex(c)
	}
	mv := NewTable(name, sch)
	out := make(Row, len(cols))
	var st iosim.Stats
	src.Scan(&st, func(_ int32, row Row) bool {
		for i, j := range idx {
			out[i] = row[j]
		}
		mv.Append(out)
		return true
	})
	return mv
}
