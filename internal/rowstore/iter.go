package rowstore

import (
	"sort"

	"repro/internal/bitmap"
	"repro/internal/iosim"
)

// Iter is an explicit cursor over a heap table, used by the Volcano-style
// row executor. The row returned by Next is reused between calls.
type Iter struct {
	t      *Table
	st     *iosim.Stats
	pi     int
	si     int
	rid    int32
	endRid int32
	row    Row
	opened bool
}

// Iter returns a cursor over the whole table.
func (t *Table) Iter(st *iosim.Stats) *Iter {
	return t.RangeIter(0, int32(t.n), st)
}

// RangeIter returns a cursor over rids [startRid, endRid). Because tuples
// are stored in rid order, this reads only the pages covering the range —
// the mechanism behind partition pruning (a partition on a sorted key is a
// contiguous rid range).
func (t *Table) RangeIter(startRid, endRid int32, st *iosim.Stats) *Iter {
	if endRid > int32(t.n) {
		endRid = int32(t.n)
	}
	it := &Iter{t: t, st: st, endRid: endRid, row: make(Row, t.Schema.NumCols())}
	if startRid >= endRid {
		it.pi = len(t.pages)
		return it
	}
	pi := sort.Search(len(t.pageStarts), func(i int) bool { return t.pageStarts[i] > startRid }) - 1
	it.pi = pi
	it.si = int(startRid - t.pageStarts[pi])
	it.rid = startRid
	return it
}

// Next returns the next tuple; ok is false at the end. One page read is
// charged per visited page.
func (it *Iter) Next() (rid int32, row Row, ok bool) {
	for {
		if it.pi >= len(it.t.pages) || it.rid >= it.endRid {
			return 0, nil, false
		}
		p := it.t.pages[it.pi]
		if it.si == 0 || !it.opened {
			// Entering a page (possibly mid-page for range scans).
			it.st.Read(PageSize)
			it.opened = true
		}
		if it.si >= len(p.slots) {
			it.pi++
			it.si = 0
			it.opened = false
			continue
		}
		it.t.Schema.DecodeInto(p.buf[p.slots[it.si]:], it.row)
		rid = it.rid
		it.si++
		it.rid++
		return rid, it.row, true
	}
}

// ScanRidBitmap decodes exactly the tuples whose rid bit is set, reading
// each containing page once (plus a seek per page jump) — the access
// pattern of a bitmap-index plan ("they allow the system to skip over some
// pages of the fact table when scanning it").
func (t *Table) ScanRidBitmap(bm *bitmap.Bitmap, st *iosim.Stats, fn func(rid int32, row Row) bool) {
	row := make(Row, t.Schema.NumCols())
	lastPage := -1
	for rid := bm.NextSet(0); rid >= 0; rid = bm.NextSet(rid + 1) {
		pi := sort.Search(len(t.pageStarts), func(i int) bool { return t.pageStarts[i] > int32(rid) }) - 1
		if pi != lastPage {
			st.Read(PageSize)
			if lastPage >= 0 && pi != lastPage+1 {
				st.AddSeeks(1)
			}
			lastPage = pi
		}
		p := t.pages[pi]
		slot := int32(rid) - t.pageStarts[pi]
		t.Schema.DecodeInto(p.buf[p.slots[slot]:], row)
		if !fn(int32(rid), row) {
			return
		}
	}
}
