package rowstore

import (
	"sort"

	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/iosim"
)

// IntIndex is an unclustered B+Tree over an integer column. Aux carries an
// optional second column value (the composite-key optimization from
// Section 4: dimension indexes store the dimension primary key as a
// secondary attribute so index-only plans never touch the heap).
type IntIndex struct {
	Col  string
	Tree *btree.Tree[int32]
}

// BuildIntIndex indexes table column col; auxCol, when non-empty, names the
// integer column stored as the Aux payload.
func BuildIntIndex(t *Table, col, auxCol string) *IntIndex {
	ci := t.Schema.MustColIndex(col)
	ai := -1
	if auxCol != "" {
		ai = t.Schema.MustColIndex(auxCol)
	}
	entries := make([]btree.Entry[int32], 0, t.NumRows())
	var st iosim.Stats
	t.Scan(&st, func(rid int32, row Row) bool {
		e := btree.Entry[int32]{Key: row[ci].I, RID: rid}
		if ai >= 0 {
			e.Aux = row[ai].I
		}
		entries = append(entries, e)
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].RID < entries[j].RID
	})
	return &IntIndex{Col: col, Tree: btree.Build(entries, 4)}
}

// ScanAll visits every (key, rid, aux) in key order, charging a sequential
// read of the leaf level (the paper's "full index scan ... relatively fast
// sequential scans of the entire index file").
func (ix *IntIndex) ScanAll(st *iosim.Stats, fn func(key, rid, aux int32) bool) {
	st.Read(ix.Tree.SizeBytes())
	ix.Tree.Scan(func(e btree.Entry[int32]) bool { return fn(e.Key, e.RID, e.Aux) })
}

// Range visits entries with lo <= key <= hi, charging bytes for the visited
// leaves plus one seek to descend (an "index range scan").
func (ix *IntIndex) Range(lo, hi int32, st *iosim.Stats, fn func(key, rid, aux int32) bool) {
	visited := int64(0)
	hops := ix.Tree.Range(lo, hi, func(e btree.Entry[int32]) bool {
		visited++
		return fn(e.Key, e.RID, e.Aux)
	})
	st.AddSeeks(1)
	st.Read(visited * ix.Tree.EntryBytes())
	_ = hops
}

// StrIndex is an unclustered B+Tree over a string column.
type StrIndex struct {
	Col  string
	Tree *btree.Tree[string]
}

// BuildStrIndex indexes string column col with integer auxCol as payload.
func BuildStrIndex(t *Table, col, auxCol string) *StrIndex {
	ci := t.Schema.MustColIndex(col)
	ai := -1
	if auxCol != "" {
		ai = t.Schema.MustColIndex(auxCol)
	}
	entries := make([]btree.Entry[string], 0, t.NumRows())
	totalKey := 0
	var st iosim.Stats
	t.Scan(&st, func(rid int32, row Row) bool {
		e := btree.Entry[string]{Key: row[ci].S, RID: rid}
		if ai >= 0 {
			e.Aux = row[ai].I
		}
		totalKey += len(e.Key)
		entries = append(entries, e)
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].RID < entries[j].RID
	})
	avgKey := 8
	if len(entries) > 0 {
		avgKey = totalKey / len(entries)
	}
	return &StrIndex{Col: col, Tree: btree.Build(entries, avgKey)}
}

// ScanAll visits every entry in key order, charging the leaf level.
func (ix *StrIndex) ScanAll(st *iosim.Stats, fn func(key string, rid, aux int32) bool) {
	st.Read(ix.Tree.SizeBytes())
	ix.Tree.Scan(func(e btree.Entry[string]) bool { return fn(e.Key, e.RID, e.Aux) })
}

// Range visits entries with lo <= key <= hi (inclusive, lexicographic).
func (ix *StrIndex) Range(lo, hi string, st *iosim.Stats, fn func(key string, rid, aux int32) bool) {
	visited := int64(0)
	ix.Tree.Range(lo, hi, func(e btree.Entry[string]) bool {
		visited++
		return fn(e.Key, e.RID, e.Aux)
	})
	st.AddSeeks(1)
	st.Read(visited * ix.Tree.EntryBytes())
}

// BitmapIndex holds one bitmap per distinct value of a low-cardinality
// column, enabling the "traditional (bitmap)" plans: predicate bitmaps are
// ANDed and the heap scan skips pages with no matching tuples.
type BitmapIndex struct {
	Col     string
	ByValue map[int32]*bitmap.Bitmap
	n       int
}

// BuildBitmapIndex indexes integer column col of t.
func BuildBitmapIndex(t *Table, col string) *BitmapIndex {
	ci := t.Schema.MustColIndex(col)
	ix := &BitmapIndex{Col: col, ByValue: map[int32]*bitmap.Bitmap{}, n: t.NumRows()}
	var st iosim.Stats
	t.Scan(&st, func(rid int32, row Row) bool {
		v := row[ci].I
		bm, ok := ix.ByValue[v]
		if !ok {
			bm = bitmap.New(ix.n)
			ix.ByValue[v] = bm
		}
		bm.Set(int(rid))
		return true
	})
	return ix
}

// Lookup returns the bitmap of rids whose column value satisfies keep,
// charging a read of each consulted value bitmap.
func (ix *BitmapIndex) Lookup(keep func(v int32) bool, st *iosim.Stats) *bitmap.Bitmap {
	out := bitmap.New(ix.n)
	for v, bm := range ix.ByValue {
		if keep(v) {
			st.Read(bm.SizeBytes())
			out.Or(bm)
		}
	}
	return out
}

// SizeBytes is the total footprint of all value bitmaps.
func (ix *BitmapIndex) SizeBytes() int64 {
	var b int64
	for _, bm := range ix.ByValue {
		b += bm.SizeBytes()
	}
	return b
}
