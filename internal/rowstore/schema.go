// Package rowstore implements the storage layer of "System X", the
// commercial row-oriented DBMS the paper compares against: slotted heap
// pages holding tuples with per-tuple headers, optional horizontal
// partitioning, vertical two-column partitions, and materialized views
// (paper Section 4).
//
// The costs the paper attributes to row stores are physical here: every
// tuple carries a header (TupleHeaderBytes), vertical partitions duplicate a
// record-id per value, and all reads are whole-tuple reads charged to the
// I/O model page by page.
package rowstore

import (
	"encoding/binary"
	"fmt"
)

// ColType is the physical type of a row-store column.
type ColType uint8

const (
	// TInt is a 4-byte little-endian integer field.
	TInt ColType = iota
	// TStr is a length-prefixed string field.
	TStr
)

// Schema describes tuple layout: field names and types in storage order.
type Schema struct {
	Names []string
	Types []ColType
	index map[string]int
}

// NewSchema builds a schema; names and types must be parallel.
func NewSchema(names []string, types []ColType) *Schema {
	if len(names) != len(types) {
		panic("rowstore: schema names/types length mismatch")
	}
	s := &Schema{Names: names, Types: types, index: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			panic(fmt.Sprintf("rowstore: duplicate schema column %q", n))
		}
		s.index[n] = i
	}
	return s
}

// NumCols returns the field count.
func (s *Schema) NumCols() int { return len(s.Names) }

// ColIndex returns the ordinal of the named column, or an error.
func (s *Schema) ColIndex(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("rowstore: no column %q in schema %v", name, s.Names)
	}
	return i, nil
}

// MustColIndex is ColIndex for statically known names.
func (s *Schema) MustColIndex(name string) int {
	i, err := s.ColIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names []string) *Schema {
	types := make([]ColType, len(names))
	for i, n := range names {
		types[i] = s.Types[s.MustColIndex(n)]
	}
	return NewSchema(append([]string(nil), names...), types)
}

// Value is one field of a row: I for TInt columns, S for TStr columns.
type Value struct {
	I int32
	S string
}

// Row is a decoded tuple in schema order.
type Row []Value

// Clone deep-copies a row (strings are shared, which is safe: they are
// immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// TupleHeaderBytes is the per-tuple storage overhead. The paper measures
// about 8 bytes of overhead per row in System X plus a 4-byte record-id
// where one must be stored explicitly; we charge the 8-byte header on every
// stored tuple.
const TupleHeaderBytes = 8

// EncodedSize returns the on-page size of row under schema s, including the
// tuple header.
func (s *Schema) EncodedSize(r Row) int {
	n := TupleHeaderBytes
	for i, t := range s.Types {
		if t == TInt {
			n += 4
		} else {
			n += 2 + len(r[i].S)
		}
	}
	return n
}

// Encode appends the serialized tuple (header + fields) to dst.
func (s *Schema) Encode(r Row, dst []byte) []byte {
	// Header: tuple length placeholder + null bitmap space; contents are
	// irrelevant, only the bytes-on-disk matter to the experiments.
	var hdr [TupleHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(s.EncodedSize(r)))
	dst = append(dst, hdr[:]...)
	for i, t := range s.Types {
		if t == TInt {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(r[i].I))
			dst = append(dst, b[:]...)
		} else {
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(r[i].S)))
			dst = append(dst, b[:]...)
			dst = append(dst, r[i].S...)
		}
	}
	return dst
}

// DecodeInto parses the tuple at buf into row, which must have NumCols
// slots. It returns the number of bytes consumed.
func (s *Schema) DecodeInto(buf []byte, row Row) int {
	off := TupleHeaderBytes
	for i, t := range s.Types {
		if t == TInt {
			row[i].I = int32(binary.LittleEndian.Uint32(buf[off:]))
			row[i].S = ""
			off += 4
		} else {
			l := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			row[i].S = string(buf[off : off+l])
			row[i].I = 0
			off += l
		}
	}
	return off
}

// DecodeCol extracts a single field from the tuple at buf without decoding
// the rest — but note it still walks the preceding variable-width fields,
// which is exactly the per-tuple attribute-extraction cost row stores pay
// (paper Section 5.3).
func (s *Schema) DecodeCol(buf []byte, col int) Value {
	off := TupleHeaderBytes
	for i := 0; i < col; i++ {
		if s.Types[i] == TInt {
			off += 4
		} else {
			off += 2 + int(binary.LittleEndian.Uint16(buf[off:]))
		}
	}
	if s.Types[col] == TInt {
		return Value{I: int32(binary.LittleEndian.Uint32(buf[off:]))}
	}
	l := int(binary.LittleEndian.Uint16(buf[off:]))
	return Value{S: string(buf[off+2 : off+2+l])}
}
