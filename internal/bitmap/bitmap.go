// Package bitmap provides a dense, fixed-length bitmap used throughout the
// column executor as one of the position-list representations described in
// Section 5.2 of the paper ("a bit string where a 1 in the ith bit indicates
// that the ith value passed the predicate"), and by the row engine as the
// backing store for bitmap indexes.
//
// The implementation is a plain []uint64 with word-wise boolean algebra so
// that intersecting predicate results (the paper's "fast bitmap operations")
// costs one AND per 64 positions.
package bitmap

import "math/bits"

const wordBits = 64

// Bitmap is a fixed-length sequence of bits. The zero value is an empty
// bitmap of length 0; use New to create one with capacity for n positions.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a bitmap able to hold n bits, all initially zero.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a bitmap of length n with every bit set.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// clearTail zeroes bits beyond n in the last word so Count and And/Or stay
// exact after whole-word operations.
func (b *Bitmap) clearTail() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Len returns the number of bit positions in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i/wordBits] |= 1 << uint(i%wordBits) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i/wordBits] &^= 1 << uint(i%wordBits) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetRange sets every bit in [start, end).
func (b *Bitmap) SetRange(start, end int) {
	if start >= end {
		return
	}
	sw, ew := start/wordBits, (end-1)/wordBits
	sMask := ^uint64(0) << uint(start%wordBits)
	eMask := ^uint64(0) >> uint(wordBits-1-(end-1)%wordBits)
	if sw == ew {
		b.words[sw] |= sMask & eMask
		return
	}
	b.words[sw] |= sMask
	for w := sw + 1; w < ew; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[ew] |= eMask
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// And replaces b with b AND other. Both bitmaps must have the same length.
func (b *Bitmap) And(other *Bitmap) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// AndNot replaces b with b AND NOT other.
func (b *Bitmap) AndNot(other *Bitmap) {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Or replaces b with b OR other. Both bitmaps must have the same length.
func (b *Bitmap) Or(other *Bitmap) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	b.clearTail()
}

// Not inverts every bit in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clearTail()
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Grow returns a copy of b extended to n bits; the added bits are zero.
// The executor's deletion vectors use it when the sealed store grows: the
// old snapshot keeps serving in-flight queries while the copy covers the
// new rows. n must be >= b.Len().
func (b *Bitmap) Grow(n int) *Bitmap {
	if n < b.n {
		panic("bitmap: Grow to a shorter length")
	}
	nb := New(n)
	copy(nb.words, b.words)
	return nb
}

// Reset clears all bits, keeping the length.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach invokes fn with each set position in ascending order.
func (b *Bitmap) ForEach(fn func(pos int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// AppendPositions appends each set position to dst and returns it. It is the
// bridge from bitmap representation to explicit position lists.
func (b *Bitmap) AppendPositions(dst []int32) []int32 {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, int32(base+tz))
			w &= w - 1
		}
	}
	return dst
}

// NextSet returns the first set position >= from, or -1 when none exists.
func (b *Bitmap) NextSet(from int) int {
	if from >= b.n {
		return -1
	}
	wi := from / wordBits
	w := b.words[wi] >> uint(from%wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// SizeBytes reports the in-memory size of the bit data, used by the I/O
// accounting layer when bitmaps are materialized by index-only plans.
func (b *Bitmap) SizeBytes() int64 { return int64(len(b.words) * 8) }

// Words exposes the backing word slice for serialization (internal/compress
// persists bit-vector blocks word-for-word). The slice is live: callers must
// not mutate it.
func (b *Bitmap) Words() []uint64 { return b.words }

// FromWords reconstructs a bitmap of length n over the given backing words
// (the inverse of Words, used when deserializing persisted blocks). The
// slice is retained. Bits beyond n are cleared so Count stays exact.
func FromWords(words []uint64, n int) *Bitmap {
	b := &Bitmap{words: words, n: n}
	b.clearTail()
	return b
}

// CountRange returns the number of set bits in [start, end). It is the
// popcount analogue of SetRange: whole interior words cost one OnesCount64
// each, so an RLE aggregation kernel can price a run against a selection
// bitmap without visiting individual positions.
func (b *Bitmap) CountRange(start, end int) int {
	if start < 0 {
		start = 0
	}
	if end > b.n {
		end = b.n
	}
	if start >= end {
		return 0
	}
	sw, ew := start/wordBits, (end-1)/wordBits
	sMask := ^uint64(0) << uint(start%wordBits)
	eMask := ^uint64(0) >> uint(wordBits-1-(end-1)%wordBits)
	if sw == ew {
		return bits.OnesCount64(b.words[sw] & sMask & eMask)
	}
	c := bits.OnesCount64(b.words[sw] & sMask)
	for w := sw + 1; w < ew; w++ {
		c += bits.OnesCount64(b.words[w])
	}
	return c + bits.OnesCount64(b.words[ew]&eMask)
}

// AndCountAt returns the popcount of b AND other, where other is shifted
// left by off bits relative to b (bit i of other aligns with bit off+i of
// b). Neither bitmap is modified. The bit-vector aggregation kernel uses it
// to count, per distinct value, how many of that value's occurrences fall
// in a selection bitmap — one AND-popcount pass per word instead of a
// per-position probe. Arbitrary (non-word-aligned) offsets are handled by
// stitching adjacent words of other.
func (b *Bitmap) AndCountAt(other *Bitmap, off int) int {
	if off%wordBits == 0 {
		wo := off / wordBits
		c := 0
		for i, w := range other.words {
			if wo+i >= len(b.words) {
				break
			}
			c += bits.OnesCount64(b.words[wo+i] & w)
		}
		return c
	}
	c := 0
	for i := range other.words {
		lo := off + i*wordBits
		w := uint64(0)
		if wi := lo / wordBits; wi < len(b.words) {
			w = b.words[wi] >> uint(lo%wordBits)
			if wi+1 < len(b.words) {
				w |= b.words[wi+1] << uint(wordBits-lo%wordBits)
			}
		}
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// AndNotWordsFrom clears, in b, every bit that is set in other, treating
// other as starting at word offset wordOff of b (the AndNot analogue of
// OrWordsAt). The fused executor uses it to mask a block-local selection
// bitmap against the column-global deletion vector; fact blocks are 64-bit
// aligned by construction so the offset is always whole words.
func (b *Bitmap) AndNotWordsFrom(other *Bitmap, wordOff int) {
	for i := range b.words {
		if wordOff+i >= len(other.words) {
			return
		}
		b.words[i] &^= other.words[wordOff+i]
	}
}

// OrWordsAt ORs other into b starting at the given word offset (bit offset
// wordOff*64). It lets a block-local bitmap be merged into a column-global
// one without per-bit shifting; column blocks are 64-bit aligned by
// construction. The destination tail is NOT re-masked: callers must ensure
// other has no bits beyond the destination length (true for block-local
// bitmaps, whose length never exceeds the remaining destination bits).
// This keeps the operation word-local so parallel scans over disjoint
// blocks need no synchronization.
func (b *Bitmap) OrWordsAt(wordOff int, other *Bitmap) {
	for i, w := range other.words {
		if wordOff+i >= len(b.words) {
			return
		}
		b.words[wordOff+i] |= w
	}
}
