package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Count() != 0 || b.Any() {
		t.Fatalf("empty bitmap misbehaves: len=%d count=%d any=%v", b.Len(), b.Count(), b.Any())
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 1000} {
		b := NewFull(n)
		if b.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, b.Count())
		}
	}
}

func TestSetRange(t *testing.T) {
	cases := []struct{ n, start, end int }{
		{100, 0, 100}, {100, 10, 20}, {100, 0, 0}, {100, 50, 50},
		{200, 63, 65}, {200, 64, 128}, {200, 1, 199}, {64, 0, 64},
		{130, 63, 130}, {130, 128, 130},
	}
	for _, c := range cases {
		b := New(c.n)
		b.SetRange(c.start, c.end)
		for i := 0; i < c.n; i++ {
			want := i >= c.start && i < c.end
			if b.Get(i) != want {
				t.Fatalf("SetRange(%d,%d) on n=%d: bit %d = %v, want %v", c.start, c.end, c.n, i, b.Get(i), want)
			}
		}
		if got := b.Count(); got != c.end-c.start {
			t.Fatalf("SetRange(%d,%d): Count=%d want %d", c.start, c.end, got, c.end-c.start)
		}
	}
}

func TestAndOrNot(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(1))
	a, b := New(n), New(n)
	as, bs := make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			a.Set(i)
			as[i] = true
		}
		if rng.Intn(3) == 0 {
			b.Set(i)
			bs[i] = true
		}
	}
	and := a.Clone()
	and.And(b)
	or := a.Clone()
	or.Or(b)
	andnot := a.Clone()
	andnot.AndNot(b)
	not := a.Clone()
	not.Not()
	for i := 0; i < n; i++ {
		if and.Get(i) != (as[i] && bs[i]) {
			t.Fatalf("And bit %d wrong", i)
		}
		if or.Get(i) != (as[i] || bs[i]) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if andnot.Get(i) != (as[i] && !bs[i]) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
		if not.Get(i) != !as[i] {
			t.Fatalf("Not bit %d wrong", i)
		}
	}
	if not.Count() != n-a.Count() {
		t.Fatalf("Not.Count()=%d want %d (tail bits leaked)", not.Count(), n-a.Count())
	}
}

func TestForEachAndAppendPositions(t *testing.T) {
	b := New(200)
	want := []int32{0, 5, 63, 64, 100, 199}
	for _, p := range want {
		b.Set(int(p))
	}
	var got []int32
	b.ForEach(func(p int) { got = append(got, int32(p)) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d positions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	got2 := b.AppendPositions(nil)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("AppendPositions[%d] = %d, want %d", i, got2[i], want[i])
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(300)
	b.Set(10)
	b.Set(64)
	b.Set(299)
	cases := []struct{ from, want int }{
		{0, 10}, {10, 10}, {11, 64}, {64, 64}, {65, 299}, {299, 299}, {300, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(100).NextSet(0) != -1 {
		t.Error("NextSet on empty bitmap should return -1")
	}
}

func TestReset(t *testing.T) {
	b := NewFull(100)
	b.Reset()
	if b.Count() != 0 || b.Len() != 100 {
		t.Fatalf("Reset: count=%d len=%d", b.Count(), b.Len())
	}
}

// TestQuickAgainstMapOracle drives the bitmap with random operations and
// checks every observable against a map-based set oracle.
func TestQuickAgainstMapOracle(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%257 + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		oracle := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				oracle[i] = true
			case 1:
				b.Clear(i)
				delete(oracle, i)
			case 2:
				if b.Get(i) != oracle[i] {
					return false
				}
			}
		}
		if b.Count() != len(oracle) {
			return false
		}
		ok := true
		b.ForEach(func(p int) {
			if !oracle[p] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetRangeOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		start := rng.Intn(n)
		end := start + rng.Intn(n-start+1)
		b := New(n)
		b.SetRange(start, end)
		for i := 0; i < n; i++ {
			if b.Get(i) != (i >= start && i < end) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd(b *testing.B) {
	const n = 1 << 20
	x, y := NewFull(n), NewFull(n)
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkCount(b *testing.B) {
	const n = 1 << 20
	x := NewFull(n)
	b.SetBytes(int64(n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func TestOrWordsAt(t *testing.T) {
	dst := New(256)
	src := New(128)
	src.Set(0)
	src.Set(127)
	dst.OrWordsAt(2, src) // bit offset 128
	if !dst.Get(128) || !dst.Get(255) || dst.Count() != 2 {
		t.Fatalf("OrWordsAt wrong: count=%d", dst.Count())
	}
	// Clipped at destination end.
	dst2 := New(64)
	dst2.OrWordsAt(0, src)
	if !dst2.Get(0) || dst2.Count() != 1 {
		t.Fatalf("OrWordsAt clip wrong: count=%d", dst2.Count())
	}
}
