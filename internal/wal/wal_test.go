package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func tempLog(t testing.TB) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func sampleRecords() []Record {
	return []Record{
		Base{FileRows: 1000, DelLen: 130, DelWords: []uint64{0xdeadbeef, 0x1, 0x3}},
		Insert{Cols: [][]int32{{1, 2, 3}, {-4, 5, 6}, {7, 8, 9}}},
		Delete{Sealed: []uint32{5, 99, 1000}, WS: []int64{0, 7}},
		Checkpoint{SealedRows: 42, FileRows: 1042},
		Delete{WS: []int64{12}},
		Insert{Cols: [][]int32{{10}, {11}, {12}}},
	}
}

func appendAll(t *testing.T, l *Log, recs []Record) uint64 {
	t.Helper()
	var last uint64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
	}
	return last
}

func TestRoundTrip(t *testing.T) {
	path := tempLog(t)
	l, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := sampleRecords()
	last := appendAll(t, l, want)
	if err := l.Commit(last); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %#v\nwant %#v", got, want)
	}
	st := l2.Stats()
	if st.Replayed != int64(len(want)) || st.TornBytes != 0 {
		t.Fatalf("stats = %+v, want Replayed=%d TornBytes=0", st, len(want))
	}
	// Appending after replay must keep LSNs monotonic across the reopen.
	lsn, err := l2.Append(Checkpoint{SealedRows: 1, FileRows: 1})
	if err != nil {
		t.Fatalf("append after replay: %v", err)
	}
	if lsn != uint64(len(want))+1 {
		t.Fatalf("post-replay LSN = %d, want %d", lsn, len(want)+1)
	}
}

func TestTornTail(t *testing.T) {
	path := tempLog(t)
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := sampleRecords()
	last := appendAll(t, l, want)
	if err := l.Commit(last); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	l.Close()

	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append at every cut point inside the final
	// record: replay must recover exactly the preceding records and
	// truncate the tail.
	lastFrame := appendFrame(nil, want[len(want)-1], uint64(len(want)))
	for cut := 1; cut < len(lastFrame); cut++ {
		torn := append(append([]byte(nil), clean[:len(clean)-len(lastFrame)]...), lastFrame[:cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), len(want)-1)
		}
		st := l2.Stats()
		if st.TornBytes != int64(cut) {
			t.Fatalf("cut %d: TornBytes = %d", cut, st.TornBytes)
		}
		l2.Close()
		// The truncation is durable: a second reopen sees a clean log.
		l3, got3, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		if len(got3) != len(want)-1 || l3.Stats().TornBytes != 0 {
			t.Fatalf("cut %d: truncation not durable", cut)
		}
		l3.Close()
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	path := tempLog(t)
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	last := appendAll(t, l, want)
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file: replay must stop at the
	// corrupt frame (CRC) and keep only the intact prefix.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(got) >= len(want) {
		t.Fatalf("replayed %d records through a corrupt frame", len(got))
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, want[i]) {
			t.Fatalf("prefix record %d mutated: %#v", i, r)
		}
	}
}

func TestRewrite(t *testing.T) {
	path := tempLog(t)
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := appendAll(t, l, sampleRecords())
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		Base{FileRows: 2000},
		Insert{Cols: [][]int32{{1}, {2}}},
	}
	if err := l.Rewrite(want); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// Rewritten state is durable without further commits.
	st := l.Stats()
	if st.DurableLSN != st.LastLSN {
		t.Fatalf("rewrite left undurable tail: %+v", st)
	}
	// Post-rewrite appends extend the new log.
	lsn, err := l.Append(Checkpoint{SealedRows: 9, FileRows: 2009})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	want = append(want, Checkpoint{SealedRows: 9, FileRows: 2009})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after rewrite:\n got %#v\nwant %#v", got, want)
	}
	if tmp := path + ".tmp"; fileExists(tmp) {
		t.Fatalf("rewrite left temp file %s", tmp)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func TestCommitAlreadyDurable(t *testing.T) {
	path := tempLog(t)
	l, _, err := Open(path, Options{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Already durable: Commit must return without waiting out the window.
	done := make(chan error, 1)
	go func() { done <- l.Commit(lsn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit blocked on an already-durable LSN")
	}
}

// TestGroupCommitAmortizes pins the acceptance criterion: with several
// concurrent insert streams and a small window, fsyncs are strictly fewer
// than committed batches.
func TestGroupCommitAmortizes(t *testing.T) {
	path := tempLog(t)
	l, _, err := Open(path, Options{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const streams, batches = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				lsn, err := l.Append(Insert{Cols: [][]int32{{int32(s)}, {int32(b)}}})
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Commits != streams*batches {
		t.Fatalf("Commits = %d, want %d", st.Commits, streams*batches)
	}
	if st.Syncs >= st.Commits {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d commits", st.Syncs, st.Commits)
	}
	if st.DurableLSN != uint64(streams*batches) {
		t.Fatalf("DurableLSN = %d, want %d", st.DurableLSN, streams*batches)
	}
}

// BenchmarkGroupCommit measures per-batch ack latency and fsync rate across
// the stream-count x window matrix reported in PERFORMANCE.md.
func BenchmarkGroupCommit(b *testing.B) {
	for _, streams := range []int{1, 4, 16} {
		for _, window := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
			name := fmt.Sprintf("streams=%d/window=%s", streams, window)
			b.Run(name, func(b *testing.B) {
				l, _, err := Open(tempLog(b), Options{Window: window})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				cols := make([][]int32, 17)
				for i := range cols {
					cols[i] = make([]int32, 1000)
				}
				start := time.Now()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := (b.N + streams - 1) / streams
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							lsn, err := l.Append(Insert{Cols: cols})
							if err != nil {
								b.Error(err)
								return
							}
							if err := l.Commit(lsn); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				el := time.Since(start)
				st := l.Stats()
				b.ReportMetric(float64(st.Syncs)/el.Seconds(), "fsyncs/sec")
				b.ReportMetric(float64(st.Commits)/el.Seconds(), "batches/sec")
				b.ReportMetric(float64(el.Nanoseconds())/float64(per), "ns/ack")
			})
		}
	}
}
