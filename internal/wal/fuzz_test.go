package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// validLogBytes builds a small, fully valid log image: the seed the fuzzer
// mutates. Mutations must never panic the replay path — every outcome is
// either a clean (possibly shorter) replay or an open error, and a replayed
// prefix must round-trip through re-encoding unchanged.
func validLogBytes() []byte {
	buf := []byte(magic)
	for i, r := range sampleRecords() {
		buf = appendFrame(buf, r, uint64(i+1))
	}
	return buf
}

func FuzzWALRecord(f *testing.F) {
	clean := validLogBytes()
	f.Add(clean)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(clean[:len(clean)-3])                     // torn tail
	f.Add(append(clean, 0xff, 0x00, 0x01))          // trailing garbage
	f.Add(append([]byte("XXBADMAG"), clean[8:]...)) // wrong magic
	mut := append([]byte(nil), clean...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut) // corrupt middle frame

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, recs, err := Open(path, Options{})
		if err != nil {
			// A rejected file (bad magic, I/O error) is a clean stop.
			return
		}
		// Whatever replayed is by definition an intact prefix: re-encoding
		// it must reproduce frame-identical bytes, and reopening must
		// replay it identically (truncation already removed the tail).
		st := l.Stats()
		if st.Replayed != int64(len(recs)) {
			t.Fatalf("Replayed=%d but %d records returned", st.Replayed, len(recs))
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, recs2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after truncation: %v", err)
		}
		defer l2.Close()
		if !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("reopen replayed different records:\n got %#v\nwant %#v", recs2, recs)
		}
		if l2.Stats().TornBytes != 0 {
			t.Fatalf("first open left a torn tail behind")
		}
	})
}
