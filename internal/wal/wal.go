// Package wal is the durability layer of the write path: an append-only,
// CRC32-framed record log that sits in front of the in-memory delta store
// (internal/delta). Every accepted insert or delete is framed, sequenced and
// fsynced before the caller's ack, so a crash at any point after the ack can
// lose nothing: reopening the store replays the log and reconstructs the
// exact delta state.
//
// The log holds four record kinds:
//
//   - Base: the sealed-store state the log starts from (fact rows in the
//     segment file plus the sealed-side deletion bitmap). The delta store is
//     empty at every log start — rewrites re-anchor the log whenever the
//     tuple mover changes the sealed frontier.
//   - Insert: one accepted batch, all fact columns in canonical order.
//   - Delete: one accepted delete — tombstoned sealed positions plus
//     tombstoned write-store row indexes.
//   - Checkpoint: a durable compaction — the cumulative count of delta rows
//     sealed since Base and the resulting fact-row count. Replay past a
//     checkpoint is idempotent: sealed rows are read from the segment file,
//     not re-inserted.
//
// Framing is [u32 len][u8 kind][u64 lsn][payload][u32 crc32] with the CRC
// over kind+lsn+payload. LSNs are strictly monotonic within a file. Replay
// stops at the first torn or corrupt frame and truncates the file there —
// a torn tail is the expected shape of a crash mid-append and is never an
// error. Decoding is fully bounds-checked and never panics on arbitrary
// bytes (FuzzWALRecord pins that).
//
// Commit implements group commit: an Append writes the frame into the OS
// buffer immediately; Commit(lsn) blocks until that LSN is durable. The
// first committer becomes the group leader, waits a configurable window for
// more writers to pile on (or until a byte threshold forces an early
// flush), then issues one File.Sync covering every frame written so far.
// Concurrent insert streams therefore share fsyncs instead of paying one
// each.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"encoding/binary"
)

const (
	magic = "SSBWAL01"
	// maxFrame bounds a single record's framed size; anything larger in a
	// length field is corruption, not data.
	maxFrame = 1 << 28
	// frame overhead: u32 len + u32 crc around the body, body holds
	// kind (1) + lsn (8) before the payload.
	frameBodyMin = 9

	kindBase       byte = 1
	kindInsert     byte = 2
	kindDelete     byte = 3
	kindCheckpoint byte = 4
)

// record caps: limits well above anything the write path produces, so a
// corrupt count field fails validation instead of driving an allocation.
const (
	maxCols    = 1 << 10
	maxDelBits = int64(1) << 40
)

// Record is one replayable log entry: Base, Insert, Delete or Checkpoint.
type Record interface {
	kind() byte
	appendPayload(dst []byte) []byte
}

// Base anchors the log: the sealed fact-row count and the sealed-side
// deletion bitmap (as raw words) at the moment the log was (re)written. The
// delta store is empty at this point by construction.
type Base struct {
	FileRows int64
	// DelLen/DelWords encode the sealed deletion bitmap; DelWords is empty
	// when nothing is tombstoned.
	DelLen   int64
	DelWords []uint64
}

// Insert is one accepted insert batch: the fact columns in the canonical
// physical order (the same order the delta store carries them).
type Insert struct {
	Cols [][]int32
}

// Delete is one accepted delete: positions tombstoned in the sealed store
// plus global write-store row indexes tombstoned in the delta.
type Delete struct {
	Sealed []uint32
	WS     []int64
}

// Checkpoint records a durable compaction: SealedRows is the cumulative
// number of delta rows sealed since Base (tombstoned rows included — they
// are consumed, just not copied), FileRows the fact-row count of the
// segment file afterwards.
type Checkpoint struct {
	SealedRows int64
	FileRows   int64
}

func (Base) kind() byte       { return kindBase }
func (Insert) kind() byte     { return kindInsert }
func (Delete) kind() byte     { return kindDelete }
func (Checkpoint) kind() byte { return kindCheckpoint }

func (r Base) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.FileRows))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.DelLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.DelWords)))
	for _, w := range r.DelWords {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func (r Insert) appendPayload(dst []byte) []byte {
	rows := 0
	if len(r.Cols) > 0 {
		rows = len(r.Cols[0])
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Cols)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	for _, col := range r.Cols {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	}
	return dst
}

func (r Delete) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Sealed)))
	for _, p := range r.Sealed {
		dst = binary.LittleEndian.AppendUint32(dst, p)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.WS)))
	for _, i := range r.WS {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(i))
	}
	return dst
}

func (r Checkpoint) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.SealedRows))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.FileRows))
	return dst
}

// cursor is a bounds-checked little-endian reader over a payload. Every
// accessor records overrun in bad instead of panicking; callers check ok()
// once at the end.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// ok reports a clean, fully consumed payload.
func (c *cursor) ok() bool { return !c.bad && c.off == len(c.b) }

var errCorrupt = errors.New("wal: corrupt record")

func decodePayload(kind byte, payload []byte) (Record, error) {
	c := &cursor{b: payload}
	switch kind {
	case kindBase:
		r := Base{FileRows: int64(c.u64()), DelLen: int64(c.u64())}
		nWords := int64(c.u32())
		if c.bad || r.FileRows < 0 || r.DelLen < 0 || r.DelLen > maxDelBits ||
			nWords != (r.DelLen+63)/64 || int64(len(payload)-c.off) != nWords*8 {
			return nil, errCorrupt
		}
		if nWords > 0 {
			r.DelWords = make([]uint64, nWords)
			for i := range r.DelWords {
				r.DelWords[i] = c.u64()
			}
		}
		if !c.ok() {
			return nil, errCorrupt
		}
		return r, nil
	case kindInsert:
		nCols := int64(c.u32())
		nRows := int64(c.u32())
		if c.bad || nCols == 0 || nCols > maxCols || nRows == 0 ||
			int64(len(payload)-c.off) != nCols*nRows*4 {
			return nil, errCorrupt
		}
		r := Insert{Cols: make([][]int32, nCols)}
		for i := range r.Cols {
			col := make([]int32, nRows)
			for j := range col {
				col[j] = int32(c.u32())
			}
			r.Cols[i] = col
		}
		if !c.ok() {
			return nil, errCorrupt
		}
		return r, nil
	case kindDelete:
		nSealed := int64(c.u32())
		if c.bad || nSealed*4 > int64(len(payload)-c.off) {
			return nil, errCorrupt
		}
		r := Delete{}
		if nSealed > 0 {
			r.Sealed = make([]uint32, nSealed)
			for i := range r.Sealed {
				r.Sealed[i] = c.u32()
			}
		}
		nWS := int64(c.u32())
		if c.bad || nWS*8 != int64(len(payload)-c.off) {
			return nil, errCorrupt
		}
		if nWS > 0 {
			r.WS = make([]int64, nWS)
			for i := range r.WS {
				r.WS[i] = int64(c.u64())
			}
		}
		if !c.ok() {
			return nil, errCorrupt
		}
		return r, nil
	case kindCheckpoint:
		r := Checkpoint{SealedRows: int64(c.u64()), FileRows: int64(c.u64())}
		if !c.ok() || r.SealedRows < 0 || r.FileRows < 0 {
			return nil, errCorrupt
		}
		return r, nil
	default:
		return nil, errCorrupt
	}
}

// appendFrame frames one record with the given LSN onto dst.
func appendFrame(dst []byte, r Record, lsn uint64) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	bodyAt := len(dst)
	dst = append(dst, r.kind())
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = r.appendPayload(dst)
	body := dst[bodyAt:]
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(body)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}

// decodeFrame decodes one frame from data, returning the record, its LSN
// and the framed byte count. Any inconsistency — short data, implausible
// length, CRC mismatch, unknown kind, malformed payload — returns an error;
// replay treats every error as the torn tail.
func decodeFrame(data []byte) (Record, uint64, int, error) {
	if len(data) < 4 {
		return nil, 0, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(data)
	if n < frameBodyMin || n > maxFrame {
		return nil, 0, 0, errCorrupt
	}
	total := 4 + int(n) + 4
	if len(data) < total {
		return nil, 0, 0, io.ErrUnexpectedEOF
	}
	body := data[4 : 4+int(n)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4+int(n):]) {
		return nil, 0, 0, errCorrupt
	}
	lsn := binary.LittleEndian.Uint64(body[1:9])
	rec, err := decodePayload(body[0], body[9:])
	if err != nil {
		return nil, 0, 0, err
	}
	return rec, lsn, total, nil
}

// Options configures group commit.
type Options struct {
	// Window is how long a commit leader waits for more writers before
	// issuing the group's fsync. Zero syncs immediately (each group still
	// covers every frame written by the time the sync runs).
	Window time.Duration
	// FlushBytes cuts a leader's window short once this many unsynced
	// bytes have accumulated. 0 means 1 MB.
	FlushBytes int64
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	// Appends counts records appended; Commits counts Commit calls;
	// Syncs counts fsyncs issued. Group commit shows as Commits > Syncs.
	Appends int64 `json:"appends"`
	Commits int64 `json:"commits"`
	Syncs   int64 `json:"syncs"`
	// Rewrites counts log rewrites (compaction truncation points).
	Rewrites int64 `json:"rewrites"`
	// Replayed is the record count recovered at Open; TornBytes the bytes
	// discarded from the tail (0 for a clean shutdown).
	Replayed  int64 `json:"replayed"`
	TornBytes int64 `json:"torn_bytes"`
	// LastLSN is the newest assigned LSN, DurableLSN the newest fsynced
	// one; Bytes is the current file size.
	LastLSN    uint64 `json:"last_lsn"`
	DurableLSN uint64 `json:"durable_lsn"`
	Bytes      int64  `json:"bytes"`
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// Log is an open write-ahead log. Append/Commit are safe for concurrent
// use; Rewrite requires the caller to exclude concurrent Appends (the
// ingest layer holds its own mutex across both).
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File // guarded by mu (sync leaders copy it out under the lock)
	path string
	opts Options
	enc  []byte // guarded by mu; reused frame-encoding buffer

	nextLSN    uint64 // guarded by mu
	writtenLSN uint64 // guarded by mu
	durableLSN uint64 // guarded by mu
	syncing    bool   // guarded by mu
	unsynced   int64  // guarded by mu
	bigWrite   chan struct{}
	err        error // guarded by mu

	// guarded by mu
	appends, commits, syncs, rewrites, replayed, tornBytes, bytes int64
}

// Open opens (creating if absent) the log at path and replays it: every
// intact record in order, stopping at the first torn or corrupt frame and
// truncating the file there. The returned records are the durable history
// the caller must reduce into its in-memory state. holds mu vacuously: the
// Log is unpublished until Open returns, so this goroutine has exclusive
// access without locking.
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 1 << 20
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	l := &Log{f: f, path: path, opts: opts, bigWrite: make(chan struct{}, 1)}
	l.cond = sync.NewCond(&l.mu)
	if len(data) < len(magic) {
		// New log, or a crash before the header became durable (nothing
		// was ever acked from it) — start fresh.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(int64(len(magic)), io.SeekStart); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		l.bytes = int64(len(magic))
		l.nextLSN = 1
		return l, nil, nil
	}
	if string(data[:len(magic)]) != magic {
		_ = f.Close()
		return nil, nil, fmt.Errorf("wal: %s is not a WAL file", path)
	}
	var recs []Record
	off := len(magic)
	good := off
	var prev uint64
	for off < len(data) {
		rec, lsn, n, err := decodeFrame(data[off:])
		if err != nil || lsn <= prev {
			break
		}
		recs = append(recs, rec)
		prev = lsn
		off += n
		good = off
	}
	if good < len(data) {
		l.tornBytes = int64(len(data) - good)
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	l.bytes = int64(good)
	l.replayed = int64(len(recs))
	l.nextLSN = prev + 1
	l.writtenLSN = prev
	l.durableLSN = prev
	return l, recs, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append frames r, assigns it the next LSN and writes it into the OS
// buffer. The record is NOT durable until a Commit at or past the returned
// LSN succeeds.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.nextLSN
	frame := appendFrame(l.enc[:0], r, lsn)
	l.enc = frame[:0]
	if _, err := l.f.Write(frame); err != nil {
		l.fail(err)
		return 0, err
	}
	l.nextLSN++
	l.writtenLSN = lsn
	l.appends++
	l.bytes += int64(len(frame))
	l.unsynced += int64(len(frame))
	if l.unsynced >= l.opts.FlushBytes {
		select {
		case l.bigWrite <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

// Commit blocks until every record up to and including lsn is durable. The
// first blocked committer leads the group: it waits the configured window
// (cut short when FlushBytes accumulate), then issues one fsync covering
// all frames written so far and wakes everyone it covered.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	l.commits++
	for l.durableLSN < lsn && l.err == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		if w := l.opts.Window; w > 0 {
			l.mu.Unlock()
			t := time.NewTimer(w)
			select {
			case <-t.C:
			case <-l.bigWrite:
				t.Stop()
			}
			l.mu.Lock()
		}
		target := l.writtenLSN
		f := l.f
		l.unsynced = 0
		select {
		case <-l.bigWrite: // drop a stale threshold signal
		default:
		}
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.fail(err)
		} else {
			l.syncs++
			if target > l.durableLSN {
				l.durableLSN = target
			}
		}
		l.cond.Broadcast()
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// fail latches the first error; the log is unusable afterwards. holds mu.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}

// Rewrite atomically replaces the log's contents with recs (temp file +
// fsync + rename), re-anchoring it at a new Base. LSNs keep counting up
// across the rewrite, so committers blocked on pre-rewrite LSNs observe
// their state durable (the rewrite contains it by construction) and return.
// The caller must exclude concurrent Appends.
func (l *Log) Rewrite(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	buf := append(l.enc[:0], magic...)
	next := l.nextLSN
	for _, r := range recs {
		buf = appendFrame(buf, r, next)
		next++
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.fail(err)
		return err
	}
	if _, err := nf.Write(buf); err == nil {
		err = nf.Sync()
	}
	if err == nil {
		err = os.Rename(tmp, l.path)
	}
	if err != nil {
		_ = nf.Close()
		os.Remove(tmp)
		l.fail(err)
		return err
	}
	syncDir(filepath.Dir(l.path))
	// The old file was just renamed over; its descriptor's close verdict
	// cannot affect anything durable.
	_ = l.f.Close()
	l.f = nf
	l.enc = buf[:0]
	l.nextLSN = next
	l.writtenLSN = next - 1
	l.durableLSN = next - 1
	l.unsynced = 0
	l.bytes = int64(len(buf))
	l.rewrites++
	l.syncs++
	l.cond.Broadcast()
	return nil
}

// syncDir makes a rename durable on filesystems that need the directory
// fsynced; errors are ignored (not all platforms/filesystems support it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Sync forces an immediate fsync of everything written so far, outside any
// group (used by shutdown paths).
func (l *Log) Sync() error {
	l.mu.Lock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	target := l.writtenLSN
	f := l.f
	l.unsynced = 0
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	if err != nil {
		l.fail(err)
	} else {
		l.syncs++
		if target > l.durableLSN {
			l.durableLSN = target
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		if err == ErrClosed {
			return nil
		}
		return err
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.err = ErrClosed
	l.cond.Broadcast()
	l.mu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:    l.appends,
		Commits:    l.commits,
		Syncs:      l.syncs,
		Rewrites:   l.rewrites,
		Replayed:   l.replayed,
		TornBytes:  l.tornBytes,
		LastLSN:    l.writtenLSN,
		DurableLSN: l.durableLSN,
		Bytes:      l.bytes,
	}
}
