package exec

import (
	"context"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
	"repro/internal/vector"
)

// runEarlyMat is the early-materialization path ("l" in Figure 7): every
// needed fact column is read in full and stitched into tuples at the very
// start of the plan; all predicates, joins and aggregation then run
// row-at-a-time over constructed tuples, exactly like a row store executing
// over a column-sourced materialized view. The paper removes late
// materialization last because early materialization forces decompression
// during tuple construction and precludes the invisible join.
func (db *DB) runEarlyMat(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats, del *bitmap.Bitmap, tr *obs.Trace) *ssb.Result {
	if tr != nil {
		tr.Engine = "early-mat"
	}
	rec := newStageRec(tr, st)
	needed := q.NeededFactColumns()
	colIdx := make(map[string]int, len(needed))
	cols := make([][]int32, len(needed))
	for i, name := range needed {
		if ctx.Err() != nil {
			return emptyResult(q)
		}
		colIdx[name] = i
		cols[i] = db.Fact.MustColumn(name).DecodeAllCtx(ctx, nil, st)
	}
	n := db.numRows
	if rec != nil {
		rec.rec("decode-columns", fmt.Sprintf("%d fact columns in full", len(needed)), st, 0, int64(n), 0)
	}

	// Tuple construction: one allocation per row, before any predicate
	// runs. This is deliberately the expensive step ("the more selective
	// the predicate, the more wasteful it is to construct tuples at the
	// start of a query plan"). Cancellation is observed at the same 64K
	// granularity as the block pipelines — this loop is where an abandoned
	// early-mat query burns its time.
	rows := make([][]int32, n)
	for r := 0; r < n; r++ {
		if r&0xFFFF == 0 && ctx.Err() != nil {
			return emptyResult(q)
		}
		tup := make([]int32, len(cols))
		for c := range cols {
			tup[c] = cols[c][r]
		}
		rows[r] = tup
	}
	rec.rec("construct-tuples", "", st, int64(n), int64(n), 0)

	// Row-store-style join structures: per-dimension pass sets and
	// group-attribute maps keyed by FK value.
	passSets := make([]map[int32]struct{}, 0, 4)
	passCols := make([]int, 0, 4)
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	var dimOrder []ssb.Dim
	for _, f := range q.DimFilters {
		if _, ok := byDim[f.Dim]; !ok {
			dimOrder = append(dimOrder, f.Dim)
		}
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	for _, dim := range dimOrder {
		dimTab := db.Dims[dim]
		var set map[int32]struct{}
		if !cfg.NoKernels {
			// Dimension predicates evaluate natively on the compressed
			// dimension columns (run/bit-vector blocks filter without
			// decoding), exactly as the late-materialized planner's phase 1
			// does. The fact-side tuple construction above stays fully
			// decoded — that is the early-materialization cost the ablation
			// measures; the dimension tables are not part of it.
			var dimPos *vector.Positions
			for _, f := range byDim[dim] {
				col := dimTab.MustColumn(f.Col)
				pred := dimFilterPred(col, f)
				if dimPos == nil {
					dimPos = col.Filter(pred, st)
				} else {
					dimPos = col.FilterAt(pred, dimPos, st)
				}
			}
			set = make(map[int32]struct{}, dimPos.Len())
			if dim == ssb.DimDate {
				for _, k := range dimTab.MustColumn("datekey").Gather(dimPos, nil, st) {
					set[k] = struct{}{}
				}
			} else {
				for _, p := range dimPos.ToSlice(nil) {
					set[p] = struct{}{}
				}
			}
		} else {
			pos := map[int32]struct{}{}
			for fi, f := range byDim[dim] {
				col := dimTab.MustColumn(f.Col)
				pred := dimFilterPred(col, f)
				vals := col.DecodeAll(nil, st)
				if fi == 0 {
					for i, v := range vals {
						if pred.Match(v) {
							pos[int32(i)] = struct{}{}
						}
					}
					continue
				}
				for p := range pos {
					if !pred.Match(vals[p]) {
						delete(pos, p)
					}
				}
			}
			// Key the pass set by FK value: positions for customer /
			// supplier / part, datekeys for date.
			set = make(map[int32]struct{}, len(pos))
			if dim == ssb.DimDate {
				keys := dimTab.MustColumn("datekey").DecodeAll(nil, st)
				for p := range pos {
					set[keys[p]] = struct{}{}
				}
			} else {
				for p := range pos {
					set[p] = struct{}{}
				}
			}
		}
		passSets = append(passSets, set)
		passCols = append(passCols, colIdx[dim.FactFK()])
	}

	// Fact measure filters.
	type factPred struct {
		col  int
		pred func(int32) bool
	}
	var factPreds []factPred
	for _, f := range q.FactFilters {
		pred := f.Pred
		factPreds = append(factPreds, factPred{col: colIdx[f.Col], pred: pred.Match})
	}

	// Group extraction maps (always hash-based here: early
	// materialization precludes the invisible join's direct extraction).
	hashCfg := cfg
	hashCfg.InvisibleJoin = false
	exs := make([]*groupExtractor, len(q.GroupBy))
	exCols := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		exs[i] = db.newGroupExtractor(g, hashCfg, st)
		exCols[i] = colIdx[g.Dim.FactFK()]
	}

	specs := q.AggSpecs()
	agg := newTupleAgg(specs, func(name string) int { return colIdx[name] })

	// Dense group accumulation (same layout as the late-mat path so
	// results are identical).
	strides := make([]int64, len(exs))
	totalCard := int64(1)
	for i := len(exs) - 1; i >= 0; i-- {
		strides[i] = totalCard
		totalCard *= int64(exs[i].card)
	}
	nAggs := len(specs)
	var sums []int64
	var seen []bool
	if len(exs) > 0 {
		sums = make([]int64, totalCard*int64(nAggs))
		seen = make([]bool, totalCard)
	}
	total := make([]int64, nAggs)
	ssb.InitCells(specs, total)
	var totalRows int64
	rec.rec("plan", "dimension pass sets + extractors", st, 0, 0, 0)
	var qual, tomb int64

rowLoop:
	for r := 0; r < n; r++ {
		// One cancellation check per 64K rows — the same granularity as
		// the block-iterated pipelines.
		if r&0xFFFF == 0 && ctx.Err() != nil {
			return emptyResult(q)
		}
		// Deletion vector first: a tombstoned row fails every plan the same
		// way, before any predicate evaluates.
		if del != nil && del.Get(r) {
			if rec != nil {
				tomb++
			}
			continue
		}
		tup := rows[r]
		for _, fp := range factPreds {
			if !fp.pred(tup[fp.col]) {
				continue rowLoop
			}
		}
		for i, set := range passSets {
			if _, ok := set[tup[passCols[i]]]; !ok {
				continue rowLoop
			}
		}
		if rec != nil {
			qual++
		}
		if len(exs) == 0 {
			totalRows++
			agg.accumulate(total, tup)
			continue
		}
		idx := int64(0)
		for i := range exs {
			idx += int64(exs[i].viaHash[tup[exCols[i]]]) * strides[i]
		}
		base := idx * int64(nAggs)
		if !seen[idx] {
			seen[idx] = true
			ssb.InitCells(specs, sums[base:base+int64(nAggs)])
		}
		agg.accumulate(sums[base:base+int64(nAggs)], tup)
	}
	rec.rec("row-loop", "filters + hash probes + aggregation", st, int64(n), qual, tomb)

	if len(exs) == 0 {
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, total, totalRows))})
	}
	var out []ssb.ResultRow
	for idx := int64(0); idx < totalCard; idx++ {
		if !seen[idx] {
			continue
		}
		keys := make([]string, len(exs))
		rem := idx
		for i := range exs {
			keys[i] = exs[i].render(int32(rem / strides[i]))
			rem %= strides[i]
		}
		base := idx * int64(nAggs)
		out = append(out, ssb.MakeRow(keys, sums[base:base+int64(nAggs)]))
	}
	return ssb.NewResult(q.ID, out)
}

// tupleAgg evaluates the aggregate list over constructed []int32 tuples —
// the shared accumulation helper of the row-oriented paths (early
// materialization and the row-oriented MV).
type tupleAgg struct {
	specs  []ssb.AggSpec
	ia, ib []int // tuple positions per spec (-1 unused)
}

// newTupleAgg resolves each spec's expression operands through the caller's
// column->tuple-position mapping.
func newTupleAgg(specs []ssb.AggSpec, pos func(string) int) *tupleAgg {
	cols, ia, ib := ssb.AggInputs(specs)
	at := make([]int, len(cols))
	for i, c := range cols {
		at[i] = pos(c)
	}
	resolve := func(src []int) []int {
		out := make([]int, len(src))
		for i, v := range src {
			if v < 0 {
				out[i] = -1
			} else {
				out[i] = at[v]
			}
		}
		return out
	}
	return &tupleAgg{specs: specs, ia: resolve(ia), ib: resolve(ib)}
}

// accumulate folds one qualifying tuple into cells.
func (a *tupleAgg) accumulate(cells []int64, tup []int32) {
	for k, s := range a.specs {
		var v int64
		if s.Func != ssb.FuncCount {
			var x, y int32
			x = tup[a.ia[k]]
			if a.ib[k] >= 0 {
				y = tup[a.ib[k]]
			}
			v = s.Expr.Eval(x, y)
		}
		cells[k] = s.Combine(cells[k], v)
	}
}
