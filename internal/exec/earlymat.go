package exec

import (
	"repro/internal/iosim"
	"repro/internal/ssb"
)

// runEarlyMat is the early-materialization path ("l" in Figure 7): every
// needed fact column is read in full and stitched into tuples at the very
// start of the plan; all predicates, joins and aggregation then run
// row-at-a-time over constructed tuples, exactly like a row store executing
// over a column-sourced materialized view. The paper removes late
// materialization last because early materialization forces decompression
// during tuple construction and precludes the invisible join.
func (db *DB) runEarlyMat(q *ssb.Query, cfg Config, st *iosim.Stats) *ssb.Result {
	needed := q.NeededFactColumns()
	colIdx := make(map[string]int, len(needed))
	cols := make([][]int32, len(needed))
	for i, name := range needed {
		colIdx[name] = i
		cols[i] = db.Fact.MustColumn(name).DecodeAll(nil, st)
	}
	n := db.numRows

	// Tuple construction: one allocation per row, before any predicate
	// runs. This is deliberately the expensive step ("the more selective
	// the predicate, the more wasteful it is to construct tuples at the
	// start of a query plan").
	rows := make([][]int32, n)
	for r := 0; r < n; r++ {
		tup := make([]int32, len(cols))
		for c := range cols {
			tup[c] = cols[c][r]
		}
		rows[r] = tup
	}

	// Row-store-style join structures: per-dimension pass sets and
	// group-attribute maps keyed by FK value.
	passSets := make([]map[int32]struct{}, 0, 4)
	passCols := make([]int, 0, 4)
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	var dimOrder []ssb.Dim
	for _, f := range q.DimFilters {
		if _, ok := byDim[f.Dim]; !ok {
			dimOrder = append(dimOrder, f.Dim)
		}
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	for _, dim := range dimOrder {
		dimTab := db.Dims[dim]
		pos := map[int32]struct{}{}
		for fi, f := range byDim[dim] {
			col := dimTab.MustColumn(f.Col)
			pred := dimFilterPred(col, f)
			vals := col.DecodeAll(nil, st)
			if fi == 0 {
				for i, v := range vals {
					if pred.Match(v) {
						pos[int32(i)] = struct{}{}
					}
				}
				continue
			}
			for p := range pos {
				if !pred.Match(vals[p]) {
					delete(pos, p)
				}
			}
		}
		// Key the pass set by FK value: positions for customer /
		// supplier / part, datekeys for date.
		set := make(map[int32]struct{}, len(pos))
		if dim == ssb.DimDate {
			keys := dimTab.MustColumn("datekey").DecodeAll(nil, st)
			for p := range pos {
				set[keys[p]] = struct{}{}
			}
		} else {
			for p := range pos {
				set[p] = struct{}{}
			}
		}
		passSets = append(passSets, set)
		passCols = append(passCols, colIdx[dim.FactFK()])
	}

	// Fact measure filters.
	type factPred struct {
		col  int
		pred func(int32) bool
	}
	var factPreds []factPred
	for _, f := range q.FactFilters {
		pred := f.Pred
		factPreds = append(factPreds, factPred{col: colIdx[f.Col], pred: pred.Match})
	}

	// Group extraction maps (always hash-based here: early
	// materialization precludes the invisible join's direct extraction).
	hashCfg := cfg
	hashCfg.InvisibleJoin = false
	exs := make([]*groupExtractor, len(q.GroupBy))
	exCols := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		exs[i] = db.newGroupExtractor(g, hashCfg, st)
		exCols[i] = colIdx[g.Dim.FactFK()]
	}

	aggIdx := make([]int, len(q.Agg.Columns()))
	for i, c := range q.Agg.Columns() {
		aggIdx[i] = colIdx[c]
	}

	// Dense group accumulation (same layout as the late-mat path so
	// results are identical).
	strides := make([]int64, len(exs))
	totalCard := int64(1)
	for i := len(exs) - 1; i >= 0; i-- {
		strides[i] = totalCard
		totalCard *= int64(exs[i].card)
	}
	var sums []int64
	var seen []bool
	if len(exs) > 0 {
		sums = make([]int64, totalCard)
		seen = make([]bool, totalCard)
	}
	var total int64

rowLoop:
	for r := 0; r < n; r++ {
		tup := rows[r]
		for _, fp := range factPreds {
			if !fp.pred(tup[fp.col]) {
				continue rowLoop
			}
		}
		for i, set := range passSets {
			if _, ok := set[tup[passCols[i]]]; !ok {
				continue rowLoop
			}
		}
		var v int64
		switch q.Agg {
		case ssb.AggDiscountRevenue:
			v = int64(tup[aggIdx[0]]) * int64(tup[aggIdx[1]])
		case ssb.AggRevenue:
			v = int64(tup[aggIdx[0]])
		default:
			v = int64(tup[aggIdx[0]]) - int64(tup[aggIdx[1]])
		}
		if len(exs) == 0 {
			total += v
			continue
		}
		idx := int64(0)
		for i := range exs {
			idx += int64(exs[i].viaHash[tup[exCols[i]]]) * strides[i]
		}
		sums[idx] += v
		seen[idx] = true
	}

	if len(exs) == 0 {
		return ssb.NewResult(q.ID, []ssb.ResultRow{{Keys: nil, Agg: total}})
	}
	var out []ssb.ResultRow
	for idx := int64(0); idx < totalCard; idx++ {
		if !seen[idx] {
			continue
		}
		keys := make([]string, len(exs))
		rem := idx
		for i := range exs {
			keys[i] = exs[i].render(int32(rem / strides[i]))
			rem %= strides[i]
		}
		out = append(out, ssb.ResultRow{Keys: keys, Agg: sums[idx]})
	}
	return ssb.NewResult(q.ID, out)
}
