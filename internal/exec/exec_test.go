package exec

import (
	"context"

	"testing"

	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/ssb"
	"repro/internal/vector"
)

const testSF = 0.02

var (
	testData    = ssb.Generate(testSF)
	testDBC     = BuildDB(testData, true)  // compressed storage
	testDBPlain = BuildDB(testData, false) // uncompressed storage
)

func dbFor(cfg Config) *DB {
	if cfg.Compression {
		return testDBC
	}
	return testDBPlain
}

// TestAllConfigsMatchReference is the backbone correctness check: every
// Figure 7 configuration must return exactly the reference result on all
// thirteen queries.
func TestAllConfigsMatchReference(t *testing.T) {
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		for _, cfg := range Figure7Configs() {
			var st iosim.Stats
			got := dbFor(cfg).Run(q, cfg, &st)
			if !got.Equal(want) {
				t.Errorf("Q%s config %s: results differ\n%s", q.ID, cfg.Code(), want.Diff(got))
			}
			if st.BytesRead == 0 {
				t.Errorf("Q%s config %s: no I/O charged", q.ID, cfg.Code())
			}
		}
	}
}

// TestCompressionFlagsOrthogonal runs the remaining flag combinations not in
// Figure 7 (e.g. block iteration off but invisible join on with plain
// storage) to ensure flags compose safely.
func TestCompressionFlagsOrthogonal(t *testing.T) {
	extra := []Config{
		{BlockIter: true, InvisibleJoin: true, Compression: false, LateMat: true},  // tIcL
		{BlockIter: false, InvisibleJoin: true, Compression: false, LateMat: true}, // TIcL
		{BlockIter: true, InvisibleJoin: false, Compression: true, LateMat: false}, // ticl... early mat w/ compression
		{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: false},  // IJ flag ignored under early mat
	}
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		for _, cfg := range extra {
			got := dbFor(cfg).Run(q, cfg, nil)
			if !got.Equal(want) {
				t.Errorf("Q%s config %s: results differ\n%s", q.ID, cfg.Code(), want.Diff(got))
			}
		}
	}
}

func TestRowMVMatchesReference(t *testing.T) {
	for flight := 1; flight <= 4; flight++ {
		mv := testDBC.BuildRowMV(flight)
		for _, q := range ssb.Queries() {
			if q.Flight != flight {
				continue
			}
			want := ssb.Reference(testData, q)
			var st iosim.Stats
			got := testDBC.RunRowMV(q, mv, &st)
			if !got.Equal(want) {
				t.Errorf("Q%s Row-MV: results differ\n%s", q.ID, want.Diff(got))
			}
			if st.BytesRead < mv.Blob.Bytes() {
				t.Errorf("Q%s Row-MV: charged %d bytes, blob is %d", q.ID, st.BytesRead, mv.Blob.Bytes())
			}
		}
	}
}

func TestDenormMatchesReference(t *testing.T) {
	for _, mode := range []DenormMode{DenormNoC, DenormIntC, DenormMaxC} {
		db := BuildDenorm(testData, mode)
		for _, q := range ssb.Queries() {
			want := ssb.Reference(testData, q)
			var st iosim.Stats
			got := db.Run(q, &st)
			if !got.Equal(want) {
				t.Errorf("Q%s %v: results differ\n%s", q.ID, mode, want.Diff(got))
			}
		}
	}
}

func TestDenormSizesOrdered(t *testing.T) {
	noc := BuildDenorm(testData, DenormNoC)
	intc := BuildDenorm(testData, DenormIntC)
	maxc := BuildDenorm(testData, DenormMaxC)
	if !(noc.Bytes() > intc.Bytes() && intc.Bytes() > maxc.Bytes()) {
		t.Fatalf("denorm sizes not ordered: NoC=%d IntC=%d MaxC=%d",
			noc.Bytes(), intc.Bytes(), maxc.Bytes())
	}
}

func TestConfigCodes(t *testing.T) {
	if FullOpt.Code() != "tICL" {
		t.Fatalf("FullOpt code = %s", FullOpt.Code())
	}
	want := []string{"tICL", "TICL", "tiCL", "TiCL", "ticL", "TicL", "Ticl"}
	for i, cfg := range Figure7Configs() {
		if cfg.Code() != want[i] {
			t.Fatalf("config %d code = %s want %s", i, cfg.Code(), want[i])
		}
	}
}

func TestBetweenPredicateRewritingFires(t *testing.T) {
	// Supplier region = 'ASIA' on a hierarchy-sorted dimension must
	// produce a contiguous range and therefore a between predicate.
	probe := testDBC.dimProbe(ssb.DimSupplier,
		[]ssb.DimFilter{{Dim: ssb.DimSupplier, Col: "region", Op: compress.OpEq, StrA: "ASIA"}},
		FullOpt, nil)
	if !probe.isPred {
		t.Fatal("region equality should rewrite to a between predicate")
	}
	if probe.pred.Op != compress.OpBetween {
		t.Fatalf("probe op = %v", probe.pred.Op)
	}
	// Verify the range covers exactly the ASIA suppliers.
	regionCol := testDBC.Dims[ssb.DimSupplier].MustColumn("region")
	asiaCode, _ := regionCol.Dict.Code("ASIA")
	n := testDBC.Dims[ssb.DimSupplier].NumRows()
	count := 0
	for i := 0; i < n; i++ {
		if regionCol.Get(int32(i)) == asiaCode {
			count++
			if int32(i) < probe.pred.A || int32(i) > probe.pred.B {
				t.Fatalf("ASIA supplier at position %d outside between range [%d,%d]", i, probe.pred.A, probe.pred.B)
			}
		}
	}
	if int(probe.pred.B-probe.pred.A)+1 != count {
		t.Fatalf("between range width %d != ASIA supplier count %d", probe.pred.B-probe.pred.A+1, count)
	}
}

func TestCityInFallsBackToHash(t *testing.T) {
	// Two cities are two non-adjacent runs -> no contiguous range -> hash.
	q := ssb.QueryByID("3.3")
	var cityFilter ssb.DimFilter
	for _, f := range q.DimFilters {
		if f.Dim == ssb.DimSupplier {
			cityFilter = f
			break
		}
	}
	probe := testDBC.dimProbe(ssb.DimSupplier, []ssb.DimFilter{cityFilter}, FullOpt, nil)
	if probe.isPred {
		// Only acceptable if one of the two cities is empty at this
		// scale (then the match set is a single contiguous run).
		cityCol := testDBC.Dims[ssb.DimSupplier].MustColumn("city")
		pred := dimFilterPred(cityCol, cityFilter)
		matches := cityCol.Filter(pred, nil).Len()
		if int(probe.pred.B-probe.pred.A)+1 < matches {
			t.Fatalf("city IN rewrote to between but range %d < matches %d", probe.pred.B-probe.pred.A+1, matches)
		}
	} else if probe.set == nil {
		t.Fatal("hash probe has no set")
	}
}

func TestDateBetweenRewriting(t *testing.T) {
	// d.year = 1993 must become a between predicate on the orderdate FK
	// values (19930101..19931231) applied via the sorted fast path.
	probe := testDBC.dimProbe(ssb.DimDate,
		[]ssb.DimFilter{{Dim: ssb.DimDate, Col: "year", Op: compress.OpEq, IsInt: true, IntA: 1993}},
		FullOpt, nil)
	if !probe.isPred || !probe.sortedFirst {
		t.Fatal("year predicate should become a sorted-first between probe")
	}
	if probe.pred.A != 19930101 || probe.pred.B != 19931231 {
		t.Fatalf("date between = [%d, %d]", probe.pred.A, probe.pred.B)
	}
	// Applying it must produce a contiguous position range.
	var st iosim.Stats
	pos := probe.apply(context.Background(), testDBC, nil, FullOpt, &st)
	if pos.Kind != vector.PosRange {
		t.Fatalf("sorted probe produced %v, want range", pos.Kind)
	}
	// The I/O charged must be far less than the whole column (only
	// boundary blocks are read).
	full := testDBC.Fact.MustColumn("orderdate").CompressedBytes()
	if st.BytesRead >= full {
		t.Fatalf("sorted probe read %d of %d", st.BytesRead, full)
	}
}

func TestInvisibleJoinReducesIO(t *testing.T) {
	q := ssb.QueryByID("3.1")
	var stI, sti iosim.Stats
	cfgI := FullOpt
	cfgi := FullOpt
	cfgi.InvisibleJoin = false
	testDBC.Run(q, cfgI, &stI)
	testDBC.Run(q, cfgi, &sti)
	if stI.BytesRead > sti.BytesRead {
		t.Fatalf("invisible join read more than hash join: %d vs %d", stI.BytesRead, sti.BytesRead)
	}
}

func TestCompressionReducesIO(t *testing.T) {
	q := ssb.QueryByID("1.1")
	var stC, stc iosim.Stats
	cfgC := Config{BlockIter: true, InvisibleJoin: false, Compression: true, LateMat: true}
	cfgc := cfgC
	cfgc.Compression = false
	testDBC.Run(q, cfgC, &stC)
	testDBPlain.Run(q, cfgc, &stc)
	if stC.BytesRead*2 > stc.BytesRead {
		t.Fatalf("compression saved too little I/O on flight 1: %d vs %d", stC.BytesRead, stc.BytesRead)
	}
}

func TestLateMatReducesIO(t *testing.T) {
	// Early materialization reads every needed column in full; late
	// materialization reads only qualifying positions of non-predicate
	// columns. Q1.1's year restriction keeps qualifying positions
	// contiguous (sorted orderdate), so the page-level savings are
	// visible even at test scale.
	q := ssb.QueryByID("1.1")
	var stL, stl iosim.Stats
	cfgL := Config{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: true}
	cfgl := cfgL
	cfgl.LateMat = false
	testDBC.Run(q, cfgL, &stL)
	testDBC.Run(q, cfgl, &stl)
	if stL.BytesRead >= stl.BytesRead {
		t.Fatalf("late materialization did not reduce I/O: %d vs %d", stL.BytesRead, stl.BytesRead)
	}
}

func TestContiguousRange(t *testing.T) {
	cases := []struct {
		pos    *vector.Positions
		lo, hi int32
		ok     bool
	}{
		{vector.NewRangePositions(3, 9), 3, 9, true},
		{vector.NewExplicitPositions([]int32{4, 5, 6}), 4, 7, true},
		{vector.NewExplicitPositions([]int32{4, 6}), 0, 0, false},
		{vector.NewExplicitPositions(nil), 0, 0, true},
	}
	for i, c := range cases {
		lo, hi, ok := contiguousRange(c.pos)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Fatalf("case %d: got (%d,%d,%v) want (%d,%d,%v)", i, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
	// Bitmap cases.
	mk := func(bits ...int) *vector.Positions {
		bm := vector.NewExplicitPositions(nil).ToBitmap(64)
		for _, b := range bits {
			bm.Set(b)
		}
		return vector.NewBitmapPositions(bm)
	}
	if lo, hi, ok := contiguousRange(mk(10, 11, 12)); !ok || lo != 10 || hi != 13 {
		t.Fatalf("bitmap contiguous: (%d,%d,%v)", lo, hi, ok)
	}
	if _, _, ok := contiguousRange(mk(10, 12)); ok {
		t.Fatal("bitmap with gap reported contiguous")
	}
	if _, _, ok := contiguousRange(mk()); !ok {
		t.Fatal("empty bitmap should be (degenerately) contiguous")
	}
}

func TestParseTuple(t *testing.T) {
	tup := make([]int32, 4)
	parseTuple([]byte("12|-7|0|2147480000"), tup)
	want := []int32{12, -7, 0, 2147480000}
	for i := range want {
		if tup[i] != want[i] {
			t.Fatalf("parseTuple[%d] = %d want %d", i, tup[i], want[i])
		}
	}
}

func TestDBShape(t *testing.T) {
	if testDBC.NumRows() != testData.NumLineorders() {
		t.Fatal("fact cardinality mismatch")
	}
	if len(testDBC.Fact.ColumnNames()) != 17 {
		t.Fatalf("fact has %d columns, want 17", len(testDBC.Fact.ColumnNames()))
	}
	// Compressed fact must be smaller than plain.
	if testDBC.Fact.CompressedBytes() >= testDBPlain.Fact.CompressedBytes() {
		t.Fatalf("compressed fact (%d) not smaller than plain (%d)",
			testDBC.Fact.CompressedBytes(), testDBPlain.Fact.CompressedBytes())
	}
	// Dimension hierarchy sort: supplier region codes ascending.
	reg := testDBC.Dims[ssb.DimSupplier].MustColumn("region")
	prev := int32(-1)
	for i := 0; i < testDBC.Dims[ssb.DimSupplier].NumRows(); i++ {
		v := reg.Get(int32(i))
		if v < prev {
			t.Fatal("supplier not sorted by region")
		}
		prev = v
	}
	// DatePos round-trips.
	dk := testDBC.Dims[ssb.DimDate].MustColumn("datekey")
	if dk.Get(testDBC.DatePos(19940214)) != 19940214 {
		t.Fatal("DatePos broken")
	}
}

func TestFactFKRemapPreservesAttributes(t *testing.T) {
	// After key reassignment, fact row i's supplier FK must point at a
	// dimension row with the same nation as the original data.
	suppNation := testDBC.Dims[ssb.DimSupplier].MustColumn("nation")
	fk := testDBC.Fact.MustColumn("suppkey")
	for i := 0; i < testDBC.NumRows(); i += 1000 {
		pos := fk.Get(int32(i))
		got := suppNation.Dict.Value(suppNation.Get(pos))
		// The fact table was re-sorted during BuildDB? No: fact order
		// comes from ssb.Data directly, so row i aligns.
		want := testData.Supplier.Nation[testData.Line.SuppKey[i]-1]
		if got != want {
			t.Fatalf("fact row %d: supplier nation %q want %q", i, got, want)
		}
	}
}
