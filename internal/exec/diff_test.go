package exec

import (
	"path/filepath"
	"testing"

	"repro/internal/iosim"
	"repro/internal/rowexec"
	"repro/internal/segstore"
	"repro/internal/sql"
	"repro/internal/ssb"
)

// diffTrials is the number of seeded random ad-hoc queries the differential
// harness executes against every engine.
const diffTrials = 220

// diffSeedBase pins the seed sequence so a reported failure reproduces with
// `ssb-fuzz -seed <n> -n 1` or `ssb-query -sql '<printed SQL>' -verify`.
const diffSeedBase int64 = 2026_0728_0000

// segBackedDB round-trips db through a segment file in a temp dir and opens
// it behind a buffer pool with the given byte budget.
func segBackedDB(t *testing.T, db *DB, sf float64, budget int64) (*DB, *segstore.Store) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "diff.seg")
	if err := SaveSegments(path, sf, db); err != nil {
		t.Fatalf("SaveSegments: %v", err)
	}
	store, err := segstore.Open(path, budget)
	if err != nil {
		t.Fatalf("segstore.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	segDB, err := OpenSegmentDB(store)
	if err != nil {
		t.Fatalf("OpenSegmentDB: %v", err)
	}
	return segDB, store
}

// TestDifferential is the cross-engine differential harness: seeded random
// ad-hoc queries run through the brute-force reference, the per-probe
// column pipeline, the fused pipeline at 1 and 8 workers, the segment-
// store-backed engines (same queries over a buffer pool small enough to
// force eviction churn), and the row-store engines, and every result must
// be byte-identical. The fused pipeline must also report identical I/O
// accounting at every worker count (the morsel merge invariant), and the
// segment-backed fused pipeline must charge exactly the logical I/O the
// in-memory one does. Each plan additionally round-trips through the SQL
// frontend, pinning Query.SQL and the parser to the same semantics.
func TestDifferential(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	sx := rowexec.Build(data, rowexec.BuildOptions{VP: true, Indexes: true, Bitmaps: true})
	// A 256 KB budget on a ~1.2 MB compressed dataset keeps the pool under
	// real eviction pressure for the whole run.
	segDB, _ := segBackedDB(t, dbc, data.SF, 256<<10)

	for i := 0; i < diffTrials; i++ {
		seed := diffSeedBase + int64(i)
		q := ssb.RandQuery(seed)
		want := ssb.Reference(data, q)

		check := func(label string, got *ssb.Result) {
			t.Helper()
			if !got.Equal(want) {
				t.Errorf("seed %d (%s): %s diverges from reference\nSQL: %s\n%s",
					seed, q.ID, label, q.SQL(), want.Diff(got))
			}
		}

		// SQL round-trip: the rendered text must compile to an equivalent
		// plan.
		parsed, err := sql.Parse(q.ID, q.SQL())
		if err != nil {
			t.Fatalf("seed %d: SQL round-trip failed to parse %q: %v", seed, q.SQL(), err)
		}
		check("sql-roundtrip(reference)", ssb.Reference(data, parsed))

		// Column per-probe pipeline.
		check("column per-probe", dbc.Run(q, FullOpt, nil))

		// Fused pipeline at 1 and 8 workers: identical results AND
		// identical I/O accounting.
		cfg1, cfg8 := FusedOpt, FusedOpt
		cfg1.Workers, cfg8.Workers = 1, 8
		var st1, st8 iosim.Stats
		check("fused workers=1", dbc.Run(q, cfg1, &st1))
		check("fused workers=8", dbc.Run(q, cfg8, &st8))
		if st1 != st8 {
			t.Errorf("seed %d (%s): fused I/O accounting depends on worker count: %+v vs %+v\nSQL: %s",
				seed, q.ID, st1, st8, q.SQL())
		}

		// Segment-backed engines: per-probe and fused over pool-loaded
		// blocks, with the fused run's logical I/O matching the
		// in-memory pipeline byte for byte (pool hits/misses are
		// physical-side accounting and must not leak into it).
		var stSeg iosim.Stats
		check("segstore per-probe", segDB.Run(q, FullOpt, nil))
		check("segstore fused workers=8", segDB.Run(q, cfg8, &stSeg))
		if stSeg != st8 {
			t.Errorf("seed %d (%s): segment-backed fused logical I/O %+v differs from in-memory %+v\nSQL: %s",
				seed, q.ID, stSeg, st8, q.SQL())
		}

		// Kernels-off ablation: results must stay bit-identical with the
		// encoding-native kernels disabled, and the kernels-off fused
		// pipeline must keep its own worker-count and storage-backend I/O
		// invariants. (The two modes may legally charge different I/O —
		// kernel charging depends only on the block and its selection —
		// but each mode's accounting is storage-invariant.)
		nkFull := FullOpt
		nkFull.NoKernels = true
		check("column per-probe kernels-off", dbc.Run(q, nkFull, nil))
		nk1, nk8 := cfg1, cfg8
		nk1.NoKernels, nk8.NoKernels = true, true
		var stNk1, stNk8, stNkSeg iosim.Stats
		check("fused kernels-off workers=1", dbc.Run(q, nk1, &stNk1))
		check("fused kernels-off workers=8", dbc.Run(q, nk8, &stNk8))
		if stNk1 != stNk8 {
			t.Errorf("seed %d (%s): kernels-off fused I/O accounting depends on worker count: %+v vs %+v\nSQL: %s",
				seed, q.ID, stNk1, stNk8, q.SQL())
		}
		check("segstore fused kernels-off", segDB.Run(q, nk8, &stNkSeg))
		if stNkSeg != stNk8 {
			t.Errorf("seed %d (%s): segment-backed kernels-off fused logical I/O %+v differs from in-memory %+v\nSQL: %s",
				seed, q.ID, stNkSeg, stNk8, q.SQL())
		}

		// Row store: the traditional design on every trial, the heavier
		// designs on a rotating subset to bound test time.
		check("rowexec T", sx.Run(q, rowexec.Traditional, nil))
		switch i % 4 {
		case 0:
			check("rowexec T(B)", sx.Run(q, rowexec.TraditionalBitmap, nil))
		case 1:
			check("rowexec VP", sx.Run(q, rowexec.VerticalPartitioning, nil))
		case 2:
			check("rowexec AI", sx.Run(q, rowexec.AllIndexes, nil))
		}
	}
}

// TestDifferentialMultiAggShapes pins a few hand-picked generalized plans —
// multi-aggregate lists, COUNT-only, MIN/MAX over expressions, empty
// results — across the four engine families.
func TestDifferentialMultiAggShapes(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	sx := rowexec.Build(data, rowexec.BuildOptions{})

	queries := []*ssb.Query{
		{
			ID: "multi-1",
			Aggs: []ssb.AggSpec{
				{Func: ssb.FuncSum, Expr: ssb.AggExpr{ColA: "revenue"}},
				{Func: ssb.FuncCount},
				{Func: ssb.FuncMin, Expr: ssb.AggExpr{ColA: "quantity"}},
				{Func: ssb.FuncMax, Expr: ssb.AggExpr{ColA: "extendedprice", Op: '*', ColB: "discount"}},
			},
			DimFilters: []ssb.DimFilter{
				{Dim: ssb.DimDate, Col: "year", Op: ssb.QueryByID("1.1").DimFilters[0].Op, IsInt: true, IntA: 1995},
			},
			GroupBy: []ssb.GroupCol{{Dim: ssb.DimSupplier, Col: "region"}},
		},
		{
			ID:   "count-only",
			Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}},
		},
		{
			ID: "empty-result",
			Aggs: []ssb.AggSpec{
				{Func: ssb.FuncMin, Expr: ssb.AggExpr{ColA: "revenue"}},
				{Func: ssb.FuncCount},
			},
			DimFilters: []ssb.DimFilter{
				{Dim: ssb.DimCustomer, Col: "nation", Op: ssb.QueryByID("3.2").DimFilters[0].Op, StrA: "NO SUCH NATION"},
			},
		},
		{
			ID: "empty-grouped",
			Aggs: []ssb.AggSpec{
				{Func: ssb.FuncMax, Expr: ssb.AggExpr{ColA: "supplycost"}},
			},
			DimFilters: []ssb.DimFilter{
				{Dim: ssb.DimPart, Col: "brand1", Op: ssb.QueryByID("2.3").DimFilters[0].Op, StrA: "MFGR#9999"},
			},
			GroupBy: []ssb.GroupCol{{Dim: ssb.DimDate, Col: "year"}},
		},
	}
	for _, q := range queries {
		want := ssb.Reference(data, q)
		nkFull, nkFused := FullOpt, FusedOpt
		nkFull.NoKernels, nkFused.NoKernels = true, true
		for _, cfg := range []Config{FullOpt, FusedOpt, nkFull, nkFused} {
			for _, w := range []int{1, 8} {
				c := cfg
				c.Workers = w
				if got := dbc.Run(q, c, nil); !got.Equal(want) {
					t.Errorf("%s [%s workers=%d]: diverges\n%s", q.ID, c.Code(), w, want.Diff(got))
				}
			}
		}
		if got := sx.Run(q, rowexec.Traditional, nil); !got.Equal(want) {
			t.Errorf("%s [rowexec T]: diverges\n%s", q.ID, want.Diff(got))
		}
	}
}
