package exec

import (
	"fmt"
	"testing"

	"repro/internal/ssb"
)

// TestEstimateFootprintBounds pins the admission estimate as a provable
// upper bound: for every engine configuration (kernels on and off), the
// estimate must be at least the peak bytes the query actually held resident
// in the buffer pool. The pool runs with the smallest budget the store
// accepts (256 KB here, just over the largest single segment) so unpinned
// frames evict aggressively — its Peak high-water mark then tracks the
// maximum concurrently pinned payload plus at most one budget's worth of
// cached frames, which is exactly the shared-resource pressure the
// estimate exists to bound. Scratch
// (selection bitmaps, gather buffers, dense aggregation arrays) is charged
// by the estimate on top, so the inequality has real slack by construction;
// what this test refutes is an estimate recalibrated below the pinned
// working set.
func TestEstimateFootprintBounds(t *testing.T) {
	data := ssb.Generate(0.01)
	mem := BuildDB(data, true)
	segDB, store := segBackedDB(t, mem, data.SF, 256<<10)

	w8, nkFull, nkW8 := FusedOpt, FullOpt, FusedOpt
	w8.Workers = 8
	nkFull.NoKernels = true
	nkW8.Workers, nkW8.NoKernels = 8, true
	configs := []struct {
		label string
		cfg   Config
	}{
		{"per-probe", FullOpt},
		{"per-probe kernels-off", nkFull},
		{"fused w1", FusedOpt},
		{"fused w8", w8},
		{"fused w8 kernels-off", nkW8},
		{"early-mat", earlyMatCfg},
	}

	queries := []*ssb.Query{
		ssb.QueryByID("1.1"), // ungrouped, fact measure filters (kernel fold)
		ssb.QueryByID("2.1"), // grouped, two dimension joins
		ssb.QueryByID("3.1"), // grouped, three dimension joins
		ssb.QueryByID("4.1"), // grouped, SUM of a two-operand expression
		{ID: "count-only", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}},
	}
	for i := 0; i < 8; i++ {
		queries = append(queries, ssb.RandQuery(diffSeedBase+1000+int64(i)))
	}

	for _, q := range queries {
		for _, c := range configs {
			t.Run(fmt.Sprintf("%s/%s", q.ID, c.label), func(t *testing.T) {
				store.Pool().Reset()
				est := segDB.EstimateFootprint(q, c.cfg)
				segDB.Run(q, c.cfg, nil)
				ps := store.Pool().Stats()
				if est < ps.Peak {
					t.Errorf("estimate %d < observed peak resident %d (pinned working set)\nSQL: %s",
						est, ps.Peak, q.SQL())
				}
				if n := store.Pool().PinnedFrames(); n != 0 {
					t.Errorf("query left %d frames pinned", n)
				}
			})
		}
	}
}
