package exec

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/delta"
	"repro/internal/segstore"
	"repro/internal/ssb"
	"repro/internal/wal"
)

// This file is the crash-recovery harness for the durable ingest path: a
// child process (this same test binary re-exec'd with CRASH_CHILD=1) opens
// a segment-store-backed DB with a WAL, streams marked insert batches and
// interleaved deletes while a background tuple mover runs, and records an
// intent line in a fsynced ledger before each operation and an ack line
// after the engine's durable acknowledgement. The parent SIGKILLs it at a
// randomized point, reopens the store (WAL replay, torn-segment recovery),
// and asserts the transactional contract against the ledger:
//
//   - every acked insert is visible exactly once (no loss, no duplicates);
//   - every acked delete is fully invisible;
//   - an operation whose intent was logged but not acked is atomic — all
//     of its rows or none of them, never a torn prefix.
//
// Batches are marked by giving every row a unique high orderkey, so
// visibility is a per-key histogram over the reopened store. Iterations
// accumulate in one directory: each child replays the previous crash's log
// before appending more, so recovery-of-recovered-state is exercised too.
// CRASH_ITERS overrides the kill-iteration count (CI loops it higher).

const (
	crashKeyMin  = int32(1_500_000_000) // marker keys live above any generated orderkey
	crashRowsPer = 2000                 // rows per marked batch
)

func crashKeyFor(iter, batch int) int32 {
	return crashKeyMin + int32(iter)*1000 + int32(batch)
}

// TestCrashRecoveryChild is the child-process body; it only runs when the
// parent harness re-execs the test binary with CRASH_CHILD=1.
func TestCrashRecoveryChild(t *testing.T) {
	if os.Getenv("CRASH_CHILD") != "1" {
		t.Skip("crash-harness child; run via TestCrashRecovery")
	}
	if err := crashChild(os.Getenv("CRASH_DIR")); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	// Completed every batch before the kill landed; a clean exit is fine.
}

// crashChild ingests until killed: open store + WAL (replaying whatever the
// previous crash left), start the background mover, then loop marked
// inserts with periodic explicit compactions and every-5th-batch deletes,
// ledgering intent and ack around each durable operation.
func crashChild(dir string) error {
	iter, _ := strconv.Atoi(os.Getenv("CRASH_ITER"))
	maxBatch, _ := strconv.Atoi(os.Getenv("CRASH_MAXBATCH"))
	store, err := segstore.Open(filepath.Join(dir, "data.seg"), 0)
	if err != nil {
		return err
	}
	db, err := OpenSegmentDB(store)
	if err != nil {
		return err
	}
	if err := db.EnableDelta(0); err != nil {
		return err
	}
	if err := db.EnableWAL(filepath.Join(dir, "wal.log"), wal.Options{Window: 200 * time.Microsecond}); err != nil {
		return err
	}
	db.StartCompactor()
	ledger, err := os.OpenFile(filepath.Join(dir, "ledger"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	logLine := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(ledger, format, args...); err != nil {
			return err
		}
		return ledger.Sync()
	}
	shape, err := db.BatchShape()
	if err != nil {
		return err
	}
	for i := 0; i < maxBatch; i++ {
		key := crashKeyFor(iter, i)
		batch, err := ssb.RandBatch(int64(iter)*100000+int64(i), crashRowsPer, shape)
		if err != nil {
			return err
		}
		for r := range batch.OrderKey {
			batch.OrderKey[r] = key
		}
		if err := logLine("i %d %d\n", key, crashRowsPer); err != nil {
			return err
		}
		if _, err := db.Insert(batch); err != nil {
			return err
		}
		if err := logLine("I %d %d\n", key, crashRowsPer); err != nil {
			return err
		}
		switch {
		case i%5 == 4:
			// Delete a batch acked two rounds ago (its rows may sit in the
			// write store, the sealed store, or both).
			victim := crashKeyFor(iter, i-2)
			if err := logLine("d %d\n", victim); err != nil {
				return err
			}
			if _, err := db.Delete([]ssb.FactFilter{{Col: "orderkey", Pred: compress.Eq(victim)}}); err != nil {
				return err
			}
			if err := logLine("D %d\n", victim); err != nil {
				return err
			}
		case i%10 == 9:
			// Synchronous seal on top of the background mover: forces
			// checkpoint + log-rewrite traffic into the kill window.
			if _, err := db.CompactNow(); err != nil {
				return err
			}
		}
	}
	db.CloseDelta()
	if err := db.FlushDelta(); err != nil {
		return err
	}
	if err := db.CloseWAL(); err != nil {
		return err
	}
	return store.Close()
}

// ledgerEntry is the parent's per-key expectation parsed from the ledger.
type ledgerEntry struct {
	rows      int64
	acked     bool // insert ack seen
	delIntent bool
	delAcked  bool
}

// parseLedger reads the child ledger, tolerating exactly one torn final
// line (the fsync granularity is one line).
func parseLedger(path string) (map[int32]*ledgerEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[int32]*ledgerEntry{}, nil // killed before any intent
		}
		return nil, err
	}
	entries := map[int32]*ledgerEntry{}
	lines := strings.Split(string(raw), "\n")
	for li, line := range lines {
		if line == "" {
			continue
		}
		last := li >= len(lines)-2 // final (possibly torn) record
		f := strings.Fields(line)
		bad := func() error {
			if last {
				return nil
			}
			return fmt.Errorf("ledger line %d corrupt mid-file: %q", li+1, line)
		}
		if len(f) < 2 {
			if err := bad(); err != nil {
				return nil, err
			}
			continue
		}
		key64, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			if err := bad(); err != nil {
				return nil, err
			}
			continue
		}
		key := int32(key64)
		e := entries[key]
		if e == nil {
			e = &ledgerEntry{}
			entries[key] = e
		}
		switch f[0] {
		case "i", "I":
			if len(f) != 3 {
				if err := bad(); err != nil {
					return nil, err
				}
				continue
			}
			rows, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil {
				if err := bad(); err != nil {
					return nil, err
				}
				continue
			}
			e.rows = rows
			if f[0] == "I" {
				e.acked = true
			}
		case "d":
			e.delIntent = true
		case "D":
			e.delIntent, e.delAcked = true, true
		default:
			if err := bad(); err != nil {
				return nil, err
			}
		}
	}
	return entries, nil
}

// visibleKeyCounts histograms the marker orderkeys visible in one snapshot
// — sealed rows minus the sealed deletion vector, plus delta rows minus the
// write-store deletion vector.
func visibleKeyCounts(db *DB) map[int32]int64 {
	sdb, view, del := db.snapshotForRead()
	counts := map[int32]int64{}
	col, err := sdb.Fact.Column("orderkey")
	if err != nil {
		panic(err)
	}
	for i, v := range col.DecodeAll(nil, nil) {
		if v < crashKeyMin {
			continue
		}
		if del.sealed != nil && del.sealed.Get(i) {
			continue
		}
		counts[v]++
	}
	if view == nil {
		return counts
	}
	next := view.Lo()
	view.ForEach(func(b *delta.Batch, lo, hi int) bool {
		base := next - int64(lo)
		next += int64(hi - lo)
		ok := b.Col("orderkey")
		for r := lo; r < hi; r++ {
			g := base + int64(r)
			if del.ws != nil && g < int64(del.ws.Len()) && del.ws.Get(int(g)) {
				continue
			}
			if v := ok[r]; v >= crashKeyMin {
				counts[v]++
			}
		}
		return true
	})
	return counts
}

// verifyCrashState reopens the store (replaying the WAL) and checks every
// ledger expectation, plus end-to-end engine counts for a sample of keys.
func verifyCrashState(t *testing.T, dir string) {
	t.Helper()
	store, err := segstore.Open(filepath.Join(dir, "data.seg"), 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store.Close()
	db, err := OpenSegmentDB(store)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := db.EnableDelta(0); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := db.EnableWAL(filepath.Join(dir, "wal.log"), wal.Options{}); err != nil {
		t.Fatalf("reopen: WAL replay: %v", err)
	}
	defer db.CloseWAL()

	expect, err := parseLedger(filepath.Join(dir, "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	// Any ledgered intent implies the child had a live log (it opens the WAL
	// before the ledger), so reopen must have replayed at least its base.
	if ws := db.WALStats(); len(expect) > 0 && (!ws.Enabled || ws.Replayed == 0) {
		t.Fatalf("reopen replayed no WAL records: %+v", ws)
	}
	counts := visibleKeyCounts(db)
	var exact []int32 // keys with a single admissible count, for engine spot checks
	for key, e := range expect {
		got := counts[key]
		switch {
		case e.delAcked:
			if got != 0 {
				t.Errorf("key %d: delete was acked but %d rows are still visible", key, got)
			}
			exact = append(exact, key)
		case e.delIntent:
			if got != 0 && got != e.rows {
				t.Errorf("key %d: un-acked delete left a torn state: %d rows visible, want 0 or %d", key, got, e.rows)
			}
		case e.acked:
			if got != e.rows {
				t.Errorf("key %d: acked insert has %d visible rows, want exactly %d", key, got, e.rows)
			}
			exact = append(exact, key)
		default:
			if got != 0 && got != e.rows {
				t.Errorf("key %d: un-acked insert is torn: %d rows visible, want 0 or %d", key, got, e.rows)
			}
		}
	}
	for key, got := range counts {
		if _, ok := expect[key]; !ok {
			t.Errorf("key %d: %d rows visible but the ledger never mentioned it", key, got)
		}
	}

	// End-to-end spot checks: the same per-key counts through the full
	// engine matrix (sealed scan + WS scan + deletion vectors).
	if len(exact) > 4 {
		exact = exact[:4]
	}
	for _, key := range exact {
		e := expect[key]
		want := e.rows
		if e.delAcked {
			want = 0
		}
		q := &ssb.Query{
			ID:          fmt.Sprintf("crash-%d", key),
			Aggs:        []ssb.AggSpec{{Func: ssb.FuncCount}},
			FactFilters: []ssb.FactFilter{{Col: "orderkey", Pred: compress.Eq(key)}},
		}
		for _, eng := range ingestEngines() {
			if got := db.Run(q, eng.cfg, nil).Rows[0].AggValues()[0]; got != want {
				t.Errorf("key %d [%s]: count %d, want %d", key, eng.label, got, want)
			}
		}
	}
}

// TestCrashRecovery is the parent harness: N kill iterations at randomized
// points, each verified by a fresh reopen+replay, then one uninterrupted
// child run (guaranteeing seal/checkpoint/rewrite coverage regardless of
// kill timing) verified the same way.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	dir := t.TempDir()
	seed := BuildDB(ssb.Generate(0.005), true)
	if err := SaveSegments(filepath.Join(dir, "data.seg"), 0.005, seed); err != nil {
		t.Fatalf("SaveSegments: %v", err)
	}

	iters := 3
	if s := os.Getenv("CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_ITERS %q", s)
		}
		iters = n
	}
	for iter := 0; iter < iters; iter++ {
		runCrashChild(t, dir, iter, 5000, true)
		verifyCrashState(t, dir)
	}
	// Final uninterrupted run: deterministic seal + delete + flush coverage.
	runCrashChild(t, dir, iters, 60, false)
	verifyCrashState(t, dir)
}

// runCrashChild re-execs the test binary in child mode; kill=true SIGKILLs
// it after a randomized 5–150ms.
func runCrashChild(t *testing.T, dir string, iter, maxBatch int, kill bool) {
	t.Helper()
	cmd := osexec.Command(os.Args[0], "-test.run=TestCrashRecoveryChild", "-test.v")
	cmd.Env = append(os.Environ(),
		"CRASH_CHILD=1",
		"CRASH_DIR="+dir,
		"CRASH_ITER="+strconv.Itoa(iter),
		"CRASH_MAXBATCH="+strconv.Itoa(maxBatch),
	)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	if kill {
		time.Sleep(time.Duration(5+rand.Intn(145)) * time.Millisecond)
		cmd.Process.Kill()
	}
	err := cmd.Wait()
	code := cmd.ProcessState.ExitCode()
	switch {
	case err == nil:
		// Child finished every batch (possible when the kill lands late).
	case kill && code == -1:
		// Died by our SIGKILL: the expected outcome.
	default:
		t.Fatalf("child iter %d failed (exit %d): %v\n%s", iter, code, err, out.String())
	}
}
