package exec

import (
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/ssb"
)

// TestSegmentZoneMapPruningSSBM is the acceptance check for zone-map
// pruning on a real SSBM flight: at SF=0.05 the fact table spans several
// 64K-row segments, and flight 1's selective year predicate must keep the
// fused scan from ever fetching the segments its orderdate zone maps
// exclude. Without pruning, each of the three probe columns (orderdate,
// quantity, discount) would fault in every fact segment.
func TestSegmentZoneMapPruningSSBM(t *testing.T) {
	data := ssb.Generate(0.05)
	dbc := BuildDB(data, true)
	segDB, store := segBackedDB(t, dbc, data.SF, 0)

	factBlocks := (dbc.NumRows() + colstore.BlockSize - 1) / colstore.BlockSize
	if factBlocks < 3 {
		t.Fatalf("SF too small to exercise pruning: %d fact segments", factBlocks)
	}

	q := ssb.QueryByID("1.1")
	want := dbc.Run(q, FusedOpt, nil)
	got := segDB.Run(q, FusedOpt, nil)
	if !got.Equal(want) {
		t.Fatalf("segment-backed Q1.1 diverges:\n%s", want.Diff(got))
	}

	ps := store.Pool().Stats()
	// Q1.1 probes three fact columns; a zone-map-blind scan would read at
	// least 3*factBlocks fact segments. The year-1993 predicate covers
	// ~1/7 of the orderdate-sorted fact table, so pruning must skip most
	// of them — and with an unbounded pool, misses counts exactly the
	// distinct segments ever read.
	unpruned := int64(3 * factBlocks)
	if ps.Misses >= unpruned {
		t.Errorf("zone-map pruning skipped nothing: %d segment fetches, a blind scan needs >= %d", ps.Misses, unpruned)
	}
	if ps.Misses == 0 {
		t.Error("no segments fetched at all — the query cannot have run")
	}
	t.Logf("Q1.1 fetched %d segments (file holds %d; blind probe scan alone would read %d)",
		ps.Misses, store.NumSegments(), unpruned)
}

// TestSegmentDBAllFlights runs every SSBM query over a budget-constrained
// segment store under both column pipelines and several worker counts,
// demanding exact agreement with the in-memory engines while evictions
// churn the pool.
func TestSegmentDBAllFlights(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	// The tightest budget Open accepts: it must at least fit the largest
	// single segment (~148KB at this SF) — anything smaller is rejected as
	// a guaranteed eviction livelock — while staying far below the ~1.4MB
	// working set so the pool churns for the whole run.
	segDB, store := segBackedDB(t, dbc, data.SF, 160<<10)

	for _, q := range ssb.Queries() {
		want := ssb.Reference(data, q)
		for _, base := range []Config{FullOpt, FusedOpt} {
			for _, w := range []int{1, 8} {
				cfg := base
				cfg.Workers = w
				if got := segDB.Run(q, cfg, nil); !got.Equal(want) {
					t.Errorf("Q%s [%s workers=%d] over segment store diverges:\n%s",
						q.ID, cfg.Code(), w, want.Diff(got))
				}
			}
		}
	}
	ps := store.Pool().Stats()
	if ps.Evictions == 0 {
		t.Errorf("128KB budget produced no evictions over a %.1fKB compressed dataset — budget not enforced",
			float64(store.CompressedBytes())/1024)
	}
}

// TestSaveSegmentsRejectsPlain pins the compressed-only contract.
func TestSaveSegmentsRejectsPlain(t *testing.T) {
	data := ssb.Generate(0.002)
	plain := BuildDB(data, false)
	err := SaveSegments(t.TempDir()+"/x.seg", data.SF, plain)
	if err == nil || !strings.Contains(err.Error(), "compressed") {
		t.Fatalf("err = %v", err)
	}
}
