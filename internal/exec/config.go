// Package exec implements the column-oriented query executor modeled on
// C-Store (paper Section 5): late materialization with position lists,
// block iteration, direct operation on compressed data, and the invisible
// join with between-predicate rewriting.
//
// Every optimization is a runtime flag (Config) so the Figure 7 ablation —
// removing column-oriented optimizations until the executor behaves like a
// row store — is a configuration sweep over the same storage.
package exec

// Config selects which column-oriented optimizations are active. The zero
// value is the most row-store-like configuration ("Ticl" in Figure 7).
type Config struct {
	// BlockIter enables block iteration ("t" in the paper's code):
	// operators process column values as arrays. When false, values are
	// pulled one at a time through an iterator interface ("getNext"),
	// paying a function call per value ("T").
	BlockIter bool
	// InvisibleJoin enables the invisible join with between-predicate
	// rewriting ("I"). When false, joins fall back to late-materialized
	// hash joins: dimension keys go into a hash table, every fact
	// foreign key is probed, and group-by attributes are fetched through
	// the hash table rather than by direct array extraction ("i").
	InvisibleJoin bool
	// Compression enables compressed column storage and direct operation
	// on compressed data ("C"). When false the executor must run against
	// a DB built with BuildDB(..., compressed=false) ("c").
	Compression bool
	// LateMat enables late materialization ("L"): predicates produce
	// position lists and values are fetched only at qualifying
	// positions. When false, tuples are constructed at the start of the
	// plan and processing is row-oriented ("l"), which also precludes
	// the invisible join (paper Section 6.3.2).
	LateMat bool
	// Workers enables intra-query parallelism when > 1: full-column
	// predicate scans on the per-probe path, and the whole morsel loop on
	// the fused path. The paper's engines are single-threaded, so
	// Figure 7 parity requires 0 or 1; see parallel.go and fused.go for
	// the extension experiments.
	Workers int
	// Fused enables the fused, block-at-a-time pipeline (fused.go): each
	// fact block is scanned once against every predicate and dense-bitmap
	// join probe with per-block min/max short-circuiting, and aggregation
	// happens inside the same pass. It replaces the per-probe pipeline's
	// full-table bitmap per probe and map[int32]struct{} membership
	// lookups. Requires BlockIter and LateMat (ignored otherwise); keep
	// it false for the Figure 5/7 ablations, whose per-probe pipeline
	// stays the faithful reproduction path.
	Fused bool
	// NoKernels disables the encoding-native aggregation and selection
	// kernels (AggSelect/GatherSelect/FilterFunc): membership probes decode
	// blocks before testing, aggregation always gathers its inputs, and
	// the fused pipeline degrades its selection to an index list at the
	// first non-run/bit-vector probe. The zero value (kernels ON) is the
	// production path; set this for the operate-on-compressed ablation
	// (Section 5) and for the kernels-on/off differential harness.
	NoKernels bool
}

// KernelsActive reports whether the encoding-native kernels run under c:
// they require compressed storage to have anything to exploit and block
// iteration to be meaningful (the getNext ablation deliberately pays a call
// per value).
func (c Config) KernelsActive() bool { return !c.NoKernels && c.BlockIter }

// FullOpt is the baseline C-Store configuration "tICL".
var FullOpt = Config{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: true}

// FusedOpt is FullOpt with the fused block-at-a-time pipeline enabled — the
// performance configuration beyond the paper's ablation grid.
var FusedOpt = Config{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: true, Fused: true}

// FusedActive reports whether the fused pipeline executes under c: the
// fused pass is inherently block-iterated and late-materialized, so the
// flag is inert in configurations that ablate either.
func (c Config) FusedActive() bool { return c.Fused && c.BlockIter && c.LateMat }

// Figure7Configs returns the seven configurations of Figure 7 in the
// paper's order: tICL, TICL, tiCL, TiCL, ticL, TicL, Ticl.
func Figure7Configs() []Config {
	return []Config{
		{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: true},     // tICL
		{BlockIter: false, InvisibleJoin: true, Compression: true, LateMat: true},    // TICL
		{BlockIter: true, InvisibleJoin: false, Compression: true, LateMat: true},    // tiCL
		{BlockIter: false, InvisibleJoin: false, Compression: true, LateMat: true},   // TiCL
		{BlockIter: true, InvisibleJoin: false, Compression: false, LateMat: true},   // ticL
		{BlockIter: false, InvisibleJoin: false, Compression: false, LateMat: true},  // TicL
		{BlockIter: false, InvisibleJoin: false, Compression: false, LateMat: false}, // Ticl
	}
}

// Code renders the configuration in the paper's four-letter notation:
// t/T block vs tuple iteration, I/i invisible join, C/c compression,
// L/l late materialization.
func (c Config) Code() string {
	b := []byte{'T', 'i', 'c', 'l'}
	if c.BlockIter {
		b[0] = 't'
	}
	if c.InvisibleJoin {
		b[1] = 'I'
	}
	if c.Compression {
		b[2] = 'C'
	}
	if c.LateMat {
		b[3] = 'L'
	}
	if c.NoKernels {
		return string(b) + "-nk"
	}
	return string(b)
}
