package exec

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/ssb"
)

// Projection is a redundant copy of the fact table stored in a different
// sort order — the C-Store mechanism the paper deliberately left out
// ("we do not store multiple copies of the fact table in different sort
// orders ... so we expect compression to have a somewhat smaller effect on
// performance than it could if more aggressive redundancy was used",
// Section 5.1). All 17 columns are permuted together, so position semantics
// and foreign-key reassignment are preserved; only the sort keys change.
type Projection struct {
	Name string
	// SortCols is the sort hierarchy, most significant first.
	SortCols []string
	// Table holds the permuted columns; SortCols[0] is PrimarySort.
	Table *colstore.Table
}

// BuildProjection materializes a projection of db's fact table sorted by
// the given column hierarchy.
func (db *DB) BuildProjection(name string, sortCols []string) (*Projection, error) {
	if len(sortCols) == 0 {
		return nil, fmt.Errorf("exec: projection needs at least one sort column")
	}
	keys := make([][]int32, len(sortCols))
	for i, c := range sortCols {
		col, err := db.Fact.Column(c)
		if err != nil {
			return nil, err
		}
		keys[i] = col.DecodeAll(nil, nil)
	}
	n := db.numRows
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		for _, k := range keys {
			if k[ia] != k[ib] {
				return k[ia] < k[ib]
			}
		}
		return ia < ib
	})

	t := colstore.NewTable(name)
	for _, colName := range db.Fact.ColumnNames() {
		src := db.Fact.MustColumn(colName)
		vals := src.DecodeAll(nil, nil)
		re := make([]int32, n)
		for p, orig := range perm {
			re[p] = vals[orig]
		}
		kind := colstore.Unsorted
		for si, sc := range sortCols {
			if sc == colName {
				if si == 0 {
					kind = colstore.PrimarySort
				} else {
					kind = colstore.SecondarySort
				}
			}
		}
		t.AddColumn(colstore.NewColumn(colName, re, src.Dict, kind, db.Compressed))
	}
	return &Projection{Name: name, SortCols: append([]string(nil), sortCols...), Table: t}, nil
}

// AddProjection registers a projection for optimizer consideration.
func (db *DB) AddProjection(p *Projection) {
	db.projections = append(db.projections, p)
}

// Projections returns the registered projections.
func (db *DB) Projections() []*Projection { return db.projections }

// withFact returns a shallow copy of db whose fact table is t; used to run
// the standard pipeline against a projection.
func (db *DB) withFact(t *colstore.Table) *DB {
	clone := *db
	clone.Fact = t
	return &clone
}

// chooseProjection picks the best table for q: a projection whose primary
// sort column will receive an interval probe (so predicate application
// collapses to a contiguous position range) wins over the base table; the
// base table's own orderdate sort competes on the same terms.
func (db *DB) chooseProjection(q *ssb.Query, cfg Config) *DB {
	if len(db.projections) == 0 || !cfg.LateMat {
		return db
	}
	best := db
	bestScore := db.projectionScore(q, cfg, "orderdate")
	for _, p := range db.projections {
		if s := db.projectionScore(q, cfg, p.SortCols[0]); s > bestScore {
			best = db.withFact(p.Table)
			bestScore = s
		}
	}
	return best
}

// projectionScore estimates the benefit of a table whose primary sort
// column is sortCol: the count of fact rows eliminated by turning that
// column's probe into a contiguous range. Zero when no interval probe
// targets the column.
func (db *DB) projectionScore(q *ssb.Query, cfg Config, sortCol string) float64 {
	// Fact measure filter directly on the sort column.
	for _, f := range q.FactFilters {
		if f.Col == sortCol {
			if _, _, ok := f.Pred.Bounds(); ok {
				return 1
			}
		}
	}
	if !cfg.InvisibleJoin {
		return 0
	}
	// Dimension probe that rewrites to a between predicate on the sort
	// column: evaluate phase 1 to learn its selectivity.
	for _, dim := range q.DimsUsed() {
		if dim.FactFK() != sortCol {
			continue
		}
		var filters []ssb.DimFilter
		for _, f := range q.DimFilters {
			if f.Dim == dim {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		probe := db.dimProbe(dim, filters, cfg, nil)
		if probe.isPred && probe.pred.Op == compress.OpBetween {
			// Selectivity of the range on the dimension translates
			// directly to eliminated fact rows under the sort.
			dimN := float64(db.Dims[dim].NumRows())
			width := float64(probe.pred.B-probe.pred.A) + 1
			if dim == ssb.DimDate {
				dimN = float64(len(db.dateByKey))
				// Key-space width over-counts (yyyymmdd gaps);
				// good enough for ranking.
			}
			if width < dimN {
				return 2 * (1 - width/dimN)
			}
		}
	}
	return 0
}

// RunBest executes q using the best available projection (falling back to
// the base orderdate-sorted table), returning the chosen table name along
// with the result.
func (db *DB) RunBest(q *ssb.Query, cfg Config, st *iosim.Stats) (*ssb.Result, string) {
	res, name, _ := db.RunBestCtx(context.Background(), q, cfg, st)
	return res, name
}

// RunBestCtx is RunBest with cancellation, observed by the chosen clone's
// pipelines exactly as in RunCtx (projection choice itself is metadata-only
// and not worth a check).
func (db *DB) RunBestCtx(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats) (*ssb.Result, string, error) {
	if db.ingest != nil {
		// Projections index the frozen base row space only; a DB taking
		// writes answers from the base table plus the write store.
		res, err := db.RunCtx(ctx, q, cfg, st)
		return res, db.Fact.Name, err
	}
	chosen := db.chooseProjection(q, cfg)
	res, err := chosen.RunCtx(ctx, q, cfg, st)
	return res, chosen.Fact.Name, err
}
