package exec

import (
	"context"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/vector"
)

// Workers on a Config enables intra-query parallelism for full-column
// predicate scans. The paper's C-Store was single-threaded and the authors
// note it "is unable to take advantage of the extra core" of the dual-core
// testbed; this extension quantifies what a parallel scan buys. Position
// semantics make the parallelization embarrassingly clean: column blocks
// are 64-bit aligned in the result bitmap, so worker goroutines write
// disjoint bitmap words and need no synchronization beyond the WaitGroup.
//
// Only the full-scan probe paths parallelize; pipelined probes over
// already-selective candidate lists stay serial (they are not the
// bottleneck, and the paper's single-thread parity matters for Figure 7).

// parallelFilter applies pred over all blocks of col using n workers,
// returning the matching positions. I/O accounting is accumulated per
// worker and merged, keeping Stats mutation single-threaded per worker.
func parallelFilter(ctx context.Context, col *colstore.Column, pred compress.Pred, n int, st *iosim.Stats) *vector.Positions {
	out := bitmap.New(col.NumRows())
	nb := col.NumBlocks()
	var wg sync.WaitGroup
	stats := make([]iosim.Stats, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 0
			for bi := 0; bi < nb; bi++ {
				if ctx.Err() != nil {
					return
				}
				if bi%n == w {
					mn, mx := col.BlockMinMax(bi)
					if pred.MayMatch(mn, mx) {
						blk, release := col.AcquireBlock(bi)
						stats[w].BlockFetched()
						stats[w].Read(blk.CompressedBytes())
						stats[w].KernelFold()
						blk.Filter(pred, base, out)
						release()
					} else {
						stats[w].BlockPruned()
					}
				}
				base += col.BlockLen(bi)
			}
		}(w)
	}
	wg.Wait()
	for w := range stats {
		st.Add(stats[w])
	}
	return vector.NewBitmapPositions(out)
}

// parallelProbeSet is the membership analogue of parallelFilter. Blocks
// whose min/max range cannot intersect the probe's key range are skipped
// before charging I/O or decoding, mirroring probeSet.
func parallelProbeSet(ctx context.Context, p *factProbe, n int, st *iosim.Stats) *vector.Positions {
	col := p.col
	out := bitmap.New(col.NumRows())
	nb := col.NumBlocks()
	var wg sync.WaitGroup
	stats := make([]iosim.Stats, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch []int32
			base := 0
			for bi := 0; bi < nb; bi++ {
				if ctx.Err() != nil {
					return
				}
				if bi%n == w {
					if mn, mx := col.BlockMinMax(bi); p.mayMatch(mn, mx) {
						blk, release := col.AcquireBlock(bi)
						stats[w].BlockFetched()
						stats[w].Read(blk.CompressedBytes())
						scratch = blk.AppendTo(scratch[:0])
						stats[w].Gathered()
						stats[w].Decoded(int64(len(scratch)) * 4)
						release()
						for i, v := range scratch {
							if p.matches(v) {
								out.Set(base + i)
							}
						}
					} else {
						stats[w].BlockPruned()
					}
				}
				base += col.BlockLen(bi)
			}
		}(w)
	}
	wg.Wait()
	for w := range stats {
		st.Add(stats[w])
	}
	return vector.NewBitmapPositions(out)
}
