package exec

import (
	"fmt"
	"time"

	"repro/internal/iosim"
	"repro/internal/obs"
)

// countersBetween converts the growth of an iosim.Stats between two
// snapshots into stage counters. Row counts, tombstones and wall clock are
// the caller's to fill — they are not carried by Stats.
func countersBetween(prev, cur iosim.Stats) obs.StageCounters {
	return obs.StageCounters{
		BlocksPruned:  cur.BlocksPruned - prev.BlocksPruned,
		BlocksCovered: cur.BlocksCovered - prev.BlocksCovered,
		BlocksFetched: cur.BlocksFetched - prev.BlocksFetched,
		BytesRead:     cur.BytesRead - prev.BytesRead,
		DecodedBytes:  cur.DecodedBytes - prev.DecodedBytes,
		KernelFolds:   cur.KernelFolds - prev.KernelFolds,
		Gathers:       cur.Gathers - prev.Gathers,
	}
}

// stageRec slices a query's single Stats accumulator into per-stage trace
// records: each rec() call attributes everything charged since the previous
// call (plus its own wall clock) to one named stage. A nil *stageRec is
// valid and records nothing, so untraced executions pay one pointer test
// per stage boundary — never per block or per row.
type stageRec struct {
	tr   *obs.Trace
	prev iosim.Stats
	t    time.Time
}

// newStageRec starts stage recording at st's current value; returns nil
// when tr is nil.
func newStageRec(tr *obs.Trace, st *iosim.Stats) *stageRec {
	if tr == nil {
		return nil
	}
	return &stageRec{tr: tr, prev: *st, t: time.Now()}
}

// rec closes the current stage: the Stats delta since the last boundary
// becomes one stage record with the given rows/tombstone counts.
func (r *stageRec) rec(name, detail string, st *iosim.Stats, rowsIn, rowsOut, tombstoned int64) {
	if r == nil {
		return
	}
	now := time.Now()
	c := countersBetween(r.prev, *st)
	c.RowsIn, c.RowsOut, c.Tombstoned = rowsIn, rowsOut, tombstoned
	c.WallNs = now.Sub(r.t).Nanoseconds()
	r.tr.AddStage(name, detail, c)
	r.prev = *st
	r.t = now
}

// probeDetail names one fact probe for trace stages, mirroring Explain's
// plan rendering in compact form.
func probeDetail(p *factProbe) string {
	switch {
	case p.isPred:
		return fmt.Sprintf("%s %s", p.col.Name, predString(p))
	case p.dense != nil:
		return fmt.Sprintf("%s IN dense-bitmap[%d keys]", p.col.Name, p.keyCount())
	default:
		return fmt.Sprintf("%s IN hash-set[%d keys]", p.col.Name, p.keyCount())
	}
}
