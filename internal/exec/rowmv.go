package exec

import (
	"strconv"
	"strings"

	"repro/internal/colstore"
	"repro/internal/iosim"
	"repro/internal/ssb"
)

// RowMV is a row-oriented materialized view stored inside the column store:
// one blob "column" whose values are whole tuples rendered as strings,
// exactly the "CS (Row-MV)" configuration from Section 6.1 ("tables that
// have a single column of type string. The values in this column are entire
// tuples").
type RowMV struct {
	Flight int
	Cols   []string
	colIdx map[string]int
	Blob   *colstore.BlobTable
}

// BuildRowMV materializes the optimal per-flight view as pipe-delimited
// string tuples.
func (db *DB) BuildRowMV(flight int) *RowMV {
	cols := ssb.FlightMVColumns(flight)
	mv := &RowMV{Flight: flight, Cols: cols, colIdx: map[string]int{}}
	for i, c := range cols {
		mv.colIdx[c] = i
	}
	n := db.numRows
	decoded := make([][]int32, len(cols))
	var st iosim.Stats // construction is not query I/O
	for i, c := range cols {
		decoded[i] = db.Fact.MustColumn(c).DecodeAll(nil, &st)
	}
	rows := make([][]byte, n)
	var sb strings.Builder
	for r := 0; r < n; r++ {
		sb.Reset()
		for c := range cols {
			if c > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(strconv.Itoa(int(decoded[c][r])))
		}
		rows[r] = []byte(sb.String())
	}
	mv.Blob = colstore.NewBlobTable("rowmv_flight"+strconv.Itoa(flight), rows)
	return mv
}

// RunRowMV executes q over the row-oriented MV: scan the blob column,
// reconstruct each tuple by parsing its string form, then process rows just
// like a row store ("after it performs this tuple reconstruction, it
// proceeds to execute the rest of the query plan using standard row-store
// operators").
func (db *DB) RunRowMV(q *ssb.Query, mv *RowMV, st *iosim.Stats) *ssb.Result {
	if q.Flight != mv.Flight {
		panic("exec: query flight does not match RowMV flight")
	}
	// Row-store-style dimension structures keyed by FK value.
	var passSets []map[int32]struct{}
	var passCols []int
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	var dimOrder []ssb.Dim
	for _, f := range q.DimFilters {
		if _, ok := byDim[f.Dim]; !ok {
			dimOrder = append(dimOrder, f.Dim)
		}
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}
	for _, dim := range dimOrder {
		dimTab := db.Dims[dim]
		pos := map[int32]struct{}{}
		for fi, f := range byDim[dim] {
			col := dimTab.MustColumn(f.Col)
			pred := dimFilterPred(col, f)
			vals := col.DecodeAll(nil, st)
			if fi == 0 {
				for i, v := range vals {
					if pred.Match(v) {
						pos[int32(i)] = struct{}{}
					}
				}
				continue
			}
			for p := range pos {
				if !pred.Match(vals[p]) {
					delete(pos, p)
				}
			}
		}
		set := make(map[int32]struct{}, len(pos))
		if dim == ssb.DimDate {
			keys := dimTab.MustColumn("datekey").DecodeAll(nil, st)
			for p := range pos {
				set[keys[p]] = struct{}{}
			}
		} else {
			for p := range pos {
				set[p] = struct{}{}
			}
		}
		passSets = append(passSets, set)
		passCols = append(passCols, mv.colIdx[dim.FactFK()])
	}

	type factPred struct {
		col  int
		pred func(int32) bool
	}
	var factPreds []factPred
	for _, f := range q.FactFilters {
		factPreds = append(factPreds, factPred{col: mv.colIdx[f.Col], pred: f.Pred.Match})
	}

	hashCfg := Config{Compression: db.Compressed}
	exs := make([]*groupExtractor, len(q.GroupBy))
	exCols := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		exs[i] = db.newGroupExtractor(g, hashCfg, st)
		exCols[i] = mv.colIdx[g.Dim.FactFK()]
	}
	specs := q.AggSpecs()
	agg := newTupleAgg(specs, func(name string) int { return mv.colIdx[name] })

	strides := make([]int64, len(exs))
	totalCard := int64(1)
	for i := len(exs) - 1; i >= 0; i-- {
		strides[i] = totalCard
		totalCard *= int64(exs[i].card)
	}
	nAggs := len(specs)
	var sums []int64
	var seen []bool
	if len(exs) > 0 {
		sums = make([]int64, totalCard*int64(nAggs))
		seen = make([]bool, totalCard)
	}
	total := make([]int64, nAggs)
	ssb.InitCells(specs, total)
	var totalRows int64

	st.Read(mv.Blob.Bytes())
	tup := make([]int32, len(mv.Cols))
rowLoop:
	for _, raw := range mv.Blob.Rows {
		// Tuple reconstruction: parse the string form field by field.
		parseTuple(raw, tup)
		for _, fp := range factPreds {
			if !fp.pred(tup[fp.col]) {
				continue rowLoop
			}
		}
		for i, set := range passSets {
			if _, ok := set[tup[passCols[i]]]; !ok {
				continue rowLoop
			}
		}
		if len(exs) == 0 {
			totalRows++
			agg.accumulate(total, tup)
			continue
		}
		idx := int64(0)
		for i := range exs {
			idx += int64(exs[i].viaHash[tup[exCols[i]]]) * strides[i]
		}
		base := idx * int64(nAggs)
		if !seen[idx] {
			seen[idx] = true
			ssb.InitCells(specs, sums[base:base+int64(nAggs)])
		}
		agg.accumulate(sums[base:base+int64(nAggs)], tup)
	}

	if len(exs) == 0 {
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, total, totalRows))})
	}
	var out []ssb.ResultRow
	for idx := int64(0); idx < totalCard; idx++ {
		if !seen[idx] {
			continue
		}
		keys := make([]string, len(exs))
		rem := idx
		for i := range exs {
			keys[i] = exs[i].render(int32(rem / strides[i]))
			rem %= strides[i]
		}
		base := idx * int64(nAggs)
		out = append(out, ssb.MakeRow(keys, sums[base:base+int64(nAggs)]))
	}
	return ssb.NewResult(q.ID, out)
}

// parseTuple decodes a pipe-delimited tuple into dst.
func parseTuple(raw []byte, dst []int32) {
	field := 0
	val := int32(0)
	neg := false
	for _, b := range raw {
		switch {
		case b == '|':
			if neg {
				val = -val
			}
			dst[field] = val
			field++
			val, neg = 0, false
		case b == '-':
			neg = true
		default:
			val = val*10 + int32(b-'0')
		}
	}
	if neg {
		val = -val
	}
	dst[field] = val
}
