package exec

import (
	"context"
	"sync"
	"time"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
	"repro/internal/vector"
)

// This file implements the fused, block-at-a-time, morsel-parallel pipeline
// (Config.Fused). The per-probe pipeline in run.go materializes a full
// fact-table bitmap per probe and funnels every membership probe through a
// map lookup per fact row; the fused pipeline instead scans each 64K fact
// block exactly once against all predicates and probes:
//
//  1. Probes run in planProbes order with per-block min/max
//     short-circuiting: a block a probe cannot match is abandoned before
//     any I/O is charged, and a block a probe fully covers is passed
//     through without decoding.
//  2. While the selection is still the whole block, probes execute
//     directly on the compressed representation — IntBlock.Filter for
//     value predicates and IntBlock.FilterSet for dense-bitmap membership
//     (RLE tests one bit per run, bit-vector encoding ORs whole value
//     bitmaps) — into a block-local selection bitmap, word-ANDed into the
//     running selection while it stays dense.
//  3. Once the selection is sparse, probes switch to gather-and-test over
//     the explicit survivor index list.
//  4. Group-by codes (direct array extraction; date keys resolve through a
//     dense key->position array rather than a map) and aggregate inputs
//     are gathered for survivors only and accumulated into per-worker
//     dense aggregation arrays inside the same pass.
//
// Morsel parallelism: workers own disjoint blocks (bi % workers == w) with
// private scratch buffers, partial aggregates, and I/O stats, so the scan
// needs no synchronization. Partials merge by commutative int64 addition
// and bitmap OR, so results and I/O accounting are bit-identical for every
// worker count.

// fusedWorkerDenseLimit caps the composite group space for which every
// worker gets a private dense aggregation array. Above it the fused scan
// degrades to one worker rather than multiplying a huge array per worker.
const fusedWorkerDenseLimit = 1 << 20

// wholeBlockCheap reports whether filtering the entire block directly on
// its compressed representation is cheaper than gathering at the current
// survivor list: true for run-length and bit-vector blocks, whose Filter
// is O(runs) / O(distinct values) word-level work rather than O(block
// length) per-value decode. It takes the encoding tag (available from the
// zone map without loading the block) so the decision costs no I/O.
func wholeBlockCheap(enc compress.Encoding) bool {
	switch enc {
	case compress.RLE, compress.BitVec:
		return true
	default:
		return false
	}
}

// fusedPlan is the per-query state shared (read-only) by all workers.
type fusedPlan struct {
	probes  []*factProbe
	exs     []*fusedExtractor
	strides []int64
	specs   []ssb.AggSpec
	aggCols []*colstore.Column // distinct aggregate input columns
	ia, ib  []int              // per-spec operand indexes into aggCols (-1 unused)
	nAggs   int
	grouped bool
	numRows int
	del     *bitmap.Bitmap // sealed-side deletion vector (nil = none)
	// kernels enables the encoding-native aggregation/selection kernels
	// (Config.KernelsActive): the selection stays bitmap-shaped through
	// dense non-RLE probes, deletion masking is word-wise, and measure
	// extraction runs GatherSelect/AggSelect directly on compressed
	// blocks. kernelable additionally marks plans whose every aggregate
	// folds from per-column sum/count/min/max alone, so ungrouped blocks
	// aggregate without materializing a single value.
	kernels    bool
	kernelable bool
	// traced turns on per-stage counter recording in every worker;
	// nStages is len(probes)+1 (one stage per probe plus the combined
	// mask/extract/aggregate tail). Untraced runs never touch the stage
	// arrays — fusedBlock tests ws.stages once per recording site.
	traced  bool
	nStages int
}

// fusedExtractor resolves fact FK values to group-by attribute codes by
// array indexing: codes[fk] when keys are reassigned positions, or
// codes[posDense[fk-keyMin]] for the date dimension, whose yyyymmdd keys
// resolve through the DB's cached dense key->position array.
type fusedExtractor struct {
	ex       *groupExtractor
	fkCol    *colstore.Column
	codes    []int32
	posDense []int32 // nil for position-keyed dimensions
	keyMin   int32
}

// newFusedExtractor prepares dense extraction state for one group column.
// The fused pipeline always extracts by direct array indexing, so the
// underlying extractor is built with the invisible-join layout regardless
// of cfg (the fused flag subsumes the ablation).
func (db *DB) newFusedExtractor(g ssb.GroupCol, cfg Config, st *iosim.Stats) *fusedExtractor {
	ij := cfg
	ij.InvisibleJoin = true
	ex := db.newGroupExtractor(g, ij, st)
	fx := &fusedExtractor{ex: ex, fkCol: ex.fkCol, codes: ex.attr}
	if ex.isDate {
		fx.posDense = db.datePosDense
		fx.keyMin = db.dateKeyMin
	}
	return fx
}

// fusedGroupSpace bounds the composite group cardinality from catalog
// metadata only (dictionary sizes, block min/max), without charging I/O, so
// the executor can bail to the hash-aggregation fallback before any probe
// work happens.
func (db *DB) fusedGroupSpace(q *ssb.Query) int64 {
	total := int64(1)
	for _, g := range q.GroupBy {
		col := db.Dims[g.Dim].MustColumn(g.Col)
		var card int64
		if col.Dict != nil {
			card = int64(col.Dict.Size())
		} else {
			mn, mx := col.MinMax()
			card = int64(mx) - int64(mn) + 1
		}
		if card < 1 {
			card = 1
		}
		total *= card
		if total > denseLimit {
			return total
		}
	}
	return total
}

// fusedWorkersFor returns the worker count the fused scan actually uses:
// cfgWorkers clamped to at least one, degraded to one when the composite
// group space makes per-worker dense arrays too costly, and capped at the
// number of fact blocks.
func fusedWorkersFor(cfgWorkers int, space int64, nb int) int {
	workers := cfgWorkers
	if workers < 1 {
		workers = 1
	}
	if space > fusedWorkerDenseLimit {
		workers = 1
	}
	if nb > 0 && nb < workers {
		workers = nb
	}
	return workers
}

// fusedWorkers is the self-contained form of fusedWorkersFor, for Explain.
func (db *DB) fusedWorkers(q *ssb.Query, cfg Config) int {
	nb := (db.numRows + colstore.BlockSize - 1) / colstore.BlockSize
	return fusedWorkersFor(cfg.Workers, db.fusedGroupSpace(q), nb)
}

// fusedWorker is one morsel worker's private state: scratch buffers reused
// across blocks, partial aggregates, and I/O accounting.
type fusedWorker struct {
	st  iosim.Stats
	sel *bitmap.Bitmap // block-local selection vector
	tmp *bitmap.Bitmap // per-probe filter output, ANDed into sel

	idx   []int32           // survivor block-local indexes
	vals  []int32           // probe gather scratch
	mvals [][]int32         // aggregate input gather scratch, one per distinct column
	fkv   []int32           // FK gather scratch
	gidx  []int64           // composite group index per survivor
	accs  []compress.AggAcc // per-column kernel accumulators, one per distinct column

	// sums holds nAggs cells per composite group index; seen marks
	// populated groups (shared by every aggregate of the group).
	sums  []int64
	seen  *bitmap.Bitmap
	nAggs int
	// aggCells / rows accumulate the ungrouped aggregates.
	aggCells []int64
	rows     int64
	// stages holds per-stage trace counters when the plan is traced
	// (nil otherwise); merged across workers by addition, so traced
	// totals are worker-count invariant like everything else here.
	stages []obs.StageCounters
}

// getFusedWorker takes a worker from the DB pool (or makes one) and sizes
// its aggregation arrays for the plan's composite group space (nAggs cells
// per group). Pooled workers were scrubbed on release, so reused arrays are
// already all-zero; newly seen groups are initialized to the aggregate
// identities before the first Combine.
func (db *DB) getFusedWorker(plan *fusedPlan, total int64) *fusedWorker {
	ws, _ := db.fusedPool.Get().(*fusedWorker)
	if ws == nil {
		ws = &fusedWorker{
			sel: bitmap.New(colstore.BlockSize),
			tmp: bitmap.New(colstore.BlockSize),
		}
	}
	ws.st = iosim.Stats{}
	ws.nAggs = plan.nAggs
	ws.rows = 0
	if plan.traced {
		if cap(ws.stages) < plan.nStages {
			ws.stages = make([]obs.StageCounters, plan.nStages)
		}
		ws.stages = ws.stages[:plan.nStages]
		for i := range ws.stages {
			ws.stages[i] = obs.StageCounters{}
		}
	} else {
		ws.stages = nil
	}
	if cap(ws.aggCells) < plan.nAggs {
		ws.aggCells = make([]int64, plan.nAggs)
	}
	ws.aggCells = ws.aggCells[:plan.nAggs]
	ssb.InitCells(plan.specs, ws.aggCells)
	for len(ws.mvals) < len(plan.aggCols) {
		ws.mvals = append(ws.mvals, nil)
	}
	if cap(ws.accs) < len(plan.aggCols) {
		ws.accs = make([]compress.AggAcc, len(plan.aggCols))
	}
	ws.accs = ws.accs[:len(plan.aggCols)]
	if plan.grouped {
		cells := total * int64(plan.nAggs)
		if int64(cap(ws.sums)) < cells {
			ws.sums = make([]int64, cells)
		}
		ws.sums = ws.sums[:cells]
		if ws.seen == nil || ws.seen.Len() < int(total) {
			ws.seen = bitmap.New(int(total))
		}
	}
	return ws
}

// putFusedWorker scrubs the worker's aggregation state — zeroing only the
// cells its seen bitmap marks, which is what makes pooling cheaper than a
// fresh make per query — and returns it to the pool. The merge step keeps
// the scrub sound for worker 0 too: its seen bitmap holds the union of all
// workers' cells by the time results are assembled.
func (db *DB) putFusedWorker(ws *fusedWorker) {
	if ws.seen != nil {
		nAggs := ws.nAggs
		ws.seen.ForEach(func(i int) {
			for k := 0; k < nAggs; k++ {
				ws.sums[i*nAggs+k] = 0
			}
		})
		ws.seen.Reset()
	}
	db.fusedPool.Put(ws)
}

// runFused executes the late-materialized plan as one fused scan.
func (db *DB) runFused(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats, del *bitmap.Bitmap, tr *obs.Trace) *ssb.Result {
	space := db.fusedGroupSpace(q)
	if space > denseLimit {
		// Huge composite group spaces use the per-probe pipeline's hash
		// aggregation fallback.
		plain := cfg
		plain.Fused = false
		return db.runLateMat(ctx, q, plain, st, del, tr)
	}
	if tr != nil {
		tr.Engine = "fused"
	}
	rec := newStageRec(tr, st)

	plan := &fusedPlan{
		probes:  db.planProbes(q, cfg, st),
		specs:   q.AggSpecs(),
		grouped: len(q.GroupBy) > 0,
		numRows: db.numRows,
		del:     del,
		kernels: cfg.KernelsActive(),
	}
	plan.nAggs = len(plan.specs)
	var aggColNames []string
	aggColNames, plan.ia, plan.ib = ssb.AggInputs(plan.specs)
	plan.kernelable = kernelableSpecs(plan.specs, plan.ia, plan.ib)
	plan.aggCols = make([]*colstore.Column, len(aggColNames))
	for i, name := range aggColNames {
		plan.aggCols[i] = db.Fact.MustColumn(name)
	}
	gexs := make([]*groupExtractor, len(q.GroupBy))
	for i, g := range q.GroupBy {
		fx := db.newFusedExtractor(g, cfg, st)
		plan.exs = append(plan.exs, fx)
		gexs[i] = fx.ex
	}
	var total int64
	plan.strides, total = groupStrides(gexs)

	rec.rec("plan", "", st, 0, 0, 0)

	nb := (db.numRows + colstore.BlockSize - 1) / colstore.BlockSize
	if nb == 0 {
		return emptyResult(q)
	}
	workers := fusedWorkersFor(cfg.Workers, space, nb)
	if tr != nil {
		tr.Workers = workers
		plan.traced = true
		plan.nStages = len(plan.probes) + 1
	}

	states := make([]*fusedWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := db.getFusedWorker(plan, total)
		states[w] = ws
		wg.Add(1)
		go func(w int, ws *fusedWorker) {
			defer wg.Done()
			for bi := w; bi < nb; bi += workers {
				// Cancellation is checked between blocks: a block never
				// holds a pin across the check, so an abandoned query
				// leaves zero pinned frames behind.
				if ctx.Err() != nil {
					return
				}
				fusedBlock(bi, plan, ws)
			}
		}(w, ws)
	}
	wg.Wait()

	if ctx.Err() != nil {
		// Abandoned mid-scan: recycle the workers (the scrub only touches
		// cells their seen bitmaps mark, partial or not) and let RunCtx
		// surface ctx.Err; the partial aggregates are never merged.
		for _, ws := range states {
			db.putFusedWorker(ws)
		}
		return emptyResult(q)
	}

	if tr != nil {
		// Per-worker stage counters merge by addition (deterministic for
		// any worker count); per-probe wall is summed work time across
		// workers, which can exceed the query's elapsed wall clock.
		merged := make([]obs.StageCounters, plan.nStages)
		for _, ws := range states {
			for si := range ws.stages {
				merged[si].Add(ws.stages[si])
			}
		}
		for pi, p := range plan.probes {
			tr.AddStage("probe", probeDetail(p), merged[pi])
		}
		tr.AddStage("extract+aggregate", "", merged[len(plan.probes)])
	}

	if !plan.grouped {
		cells := make([]int64, plan.nAggs)
		ssb.InitCells(plan.specs, cells)
		var rows int64
		for _, ws := range states {
			st.Add(ws.st)
			rows += ws.rows
			for k, s := range plan.specs {
				cells[k] = s.Merge(cells[k], ws.aggCells[k])
			}
			db.putFusedWorker(ws)
		}
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(plan.specs, cells, rows))})
	}
	// Deterministic merge into worker 0: per-worker partials combine by
	// the aggregates' commutative merge (addition for SUM/COUNT, min/max
	// otherwise), and worker 0's seen bitmap becomes the union, so worker
	// count never shows through in results or stats.
	nAggs := plan.nAggs
	sums, seen := states[0].sums, states[0].seen
	st.Add(states[0].st)
	for _, ws := range states[1:] {
		st.Add(ws.st)
		ws.seen.ForEach(func(i int) {
			base := i * nAggs
			if seen.Get(i) {
				for k, s := range plan.specs {
					sums[base+k] = s.Merge(sums[base+k], ws.sums[base+k])
				}
			} else {
				seen.Set(i)
				copy(sums[base:base+nAggs], ws.sums[base:base+nAggs])
			}
		})
	}
	rows := denseGroupRows(gexs, plan.strides, plan.specs, sums, seen)
	for _, ws := range states {
		db.putFusedWorker(ws)
	}
	return ssb.NewResult(q.ID, rows)
}

// foldsBlocks reports whether surviving blocks end in a decode-free
// AggSelect fold (no gather of aggregate inputs), which is when keeping a
// dense selection bitmap-shaped through the probe chain pays for itself.
func (plan *fusedPlan) foldsBlocks() bool {
	return plan.kernels && plan.kernelable && !plan.grouped
}

// fusedBlock runs the whole fused pipeline — probes, extraction,
// aggregation — over one block.
func fusedBlock(bi int, plan *fusedPlan, ws *fusedWorker) {
	blkBase := bi * colstore.BlockSize
	blkLen := plan.numRows - blkBase
	if blkLen > colstore.BlockSize {
		blkLen = colstore.BlockSize
	}

	// Selection state: starts as the whole block, narrows to a bitmap
	// while dense, then to an explicit index list.
	full, onBitmap := true, false
	ws.idx = ws.idx[:0]

	// curCount is only evaluated on the traced path (ws.stages != nil):
	// the bitmap popcount it costs never runs untraced.
	curCount := func() int64 {
		switch {
		case full:
			return int64(blkLen)
		case onBitmap:
			return int64(ws.sel.Count())
		default:
			return int64(len(ws.idx))
		}
	}

	//lint:ignore ctxloop per-block probe loop over one already-acquired block bi, bounded by the plan's probe count; the morsel loop driving it checks ctx once per block
	for pi, p := range plan.probes {
		// Zone-map consultation only: the block is not acquired (for
		// segment-backed columns, not even read from disk) unless the
		// probe actually has to examine values.
		mn, mx := p.col.BlockMinMax(bi)
		if !p.mayMatch(mn, mx) {
			ws.st.BlockPruned()
			if ws.stages != nil {
				sc := &ws.stages[pi]
				sc.RowsIn += curCount()
				sc.BlocksPruned++
			}
			return // min/max short-circuit: block has no survivors
		}
		if p.coversBlock(mn, mx) {
			ws.st.BlockCovered()
			if ws.stages != nil {
				n := curCount()
				sc := &ws.stages[pi]
				sc.RowsIn += n
				sc.RowsOut += n
				sc.BlocksCovered++
			}
			continue // every value survives: no decode, no I/O
		}
		var probeIn int64
		var stBefore iosim.Stats
		var tProbe time.Time
		if ws.stages != nil {
			probeIn = curCount()
			stBefore = ws.st
			tProbe = time.Now()
		}
		switch {
		case full:
			// First narrowing probe: the whole block must be examined,
			// so run directly on the compressed representation.
			ws.sel.Reset()
			applyBlockProbe(p, bi, ws.sel, ws)
			full, onBitmap = false, true
		case onBitmap && (wholeBlockCheap(p.col.BlockEncoding(bi)) ||
			(plan.foldsBlocks() && pi == len(plan.probes)-1 &&
				2*ws.sel.Count() >= blkLen)):
			// Word-level fused selection: filter the compressed block
			// and AND into the running selection vector. When the plan
			// ends in a decode-free fold and this is the final probe, a
			// dense selection (≥ half the block) also stays on the bitmap
			// for any encoding: the block then aggregates via AggSelect
			// with no position list at all. Earlier probes don't take that
			// gamble — a later probe would usually drop the density below
			// the gate and degrade to an index list anyway, leaving the
			// whole-block filter's cost (every position charged) with no
			// fold to pay for it. Plans that must gather their aggregate
			// inputs likewise gain nothing from the bitmap shape.
			ws.tmp.Reset()
			applyBlockProbe(p, bi, ws.tmp, ws)
			ws.sel.And(ws.tmp)
		default:
			if onBitmap {
				ws.idx = ws.sel.AppendPositions(ws.idx[:0])
				onBitmap = false
			}
			ws.vals = p.col.GatherBlock(bi, ws.idx, ws.vals[:0], &ws.st)
			k := 0
			switch {
			case p.isPred:
				if lo, hi, ok := p.pred.Bounds(); ok {
					// Interval predicates compact with two compares
					// per survivor instead of an op switch.
					for j, v := range ws.vals {
						if v >= lo && v <= hi {
							ws.idx[k] = ws.idx[j]
							k++
						}
					}
				} else {
					for j, v := range ws.vals {
						if p.pred.Match(v) {
							ws.idx[k] = ws.idx[j]
							k++
						}
					}
				}
			case p.dense != nil:
				// Dense-bitmap join probe: a branch-light bit test per
				// survivor, no hashing.
				dmin, dmax, bits := p.setMin, p.setMax, p.dense
				for j, v := range ws.vals {
					if v >= dmin && v <= dmax && bits.Get(int(v-dmin)) {
						ws.idx[k] = ws.idx[j]
						k++
					}
				}
			default:
				for j, v := range ws.vals {
					if p.matches(v) {
						ws.idx[k] = ws.idx[j]
						k++
					}
				}
			}
			ws.idx = ws.idx[:k]
		}
		if ws.stages != nil {
			sc := &ws.stages[pi]
			sc.Add(countersBetween(stBefore, ws.st))
			sc.RowsIn += probeIn
			sc.RowsOut += curCount()
			sc.WallNs += time.Since(tProbe).Nanoseconds()
		}
		if onBitmap {
			if ws.sel.Count() == 0 {
				return
			}
		} else if !full && len(ws.idx) == 0 {
			return
		}
	}

	// Materialize the survivor set for extraction and aggregation. With
	// kernels active and the selection still block- or bitmap-shaped, stay
	// on the bitmap: deletion masking is a word-wise AND-NOT and every
	// downstream extraction runs AggSelect/GatherSelect directly on the
	// compressed blocks — no position list, no per-position random access.
	var nSel int
	var tomb int64
	if ws.stages != nil {
		selIn := curCount()
		stBefore := ws.st
		t0 := time.Now()
		sc := &ws.stages[len(plan.probes)]
		// One deferred record covers every exit of the mask/extract/
		// aggregate tail; the closure is only set up on traced runs.
		defer func() {
			sc.Add(countersBetween(stBefore, ws.st))
			sc.RowsIn += selIn
			sc.RowsOut += int64(nSel)
			sc.Tombstoned += tomb
			sc.WallNs += time.Since(t0).Nanoseconds()
		}()
	}
	var gather func(col *colstore.Column, dst []int32) []int32
	if plan.kernels && (full || onBitmap) {
		if full {
			ws.sel.Reset()
			ws.sel.SetRange(0, blkLen)
		}
		if plan.del != nil {
			// blkBase is a multiple of BlockSize (itself a multiple of 64),
			// so the deletion vector masks word-aligned.
			if ws.stages != nil {
				preDel := int64(ws.sel.Count())
				ws.sel.AndNotWordsFrom(plan.del, blkBase/64)
				tomb = preDel - int64(ws.sel.Count())
			} else {
				ws.sel.AndNotWordsFrom(plan.del, blkBase/64)
			}
		}
		nSel = ws.sel.Count()
		if nSel == 0 {
			return
		}
		if !plan.grouped && plan.kernelable {
			// Decode-free aggregation: fold each distinct input column
			// once per block on its compressed representation and widen
			// the per-block accumulators into the aggregate cells.
			//lint:ignore ctxloop per-block fold over one block bi, bounded by the plan's aggregate list; the morsel loop driving it checks ctx once per block
			for ci, col := range plan.aggCols {
				acc := compress.NewAggAcc()
				col.AggSelectBlock(bi, ws.sel, &ws.st, &acc)
				ws.accs[ci] = acc
			}
			ws.rows += int64(nSel)
			foldAccCells(plan.specs, plan.ia, ws.aggCells, ws.accs, int64(nSel))
			return
		}
		gather = func(col *colstore.Column, dst []int32) []int32 {
			return col.GatherSelectBlock(bi, ws.sel, dst, &ws.st)
		}
	} else {
		if full {
			ws.idx = vector.AppendSeq(ws.idx[:0], 0, int32(blkLen))
		} else if onBitmap {
			ws.idx = ws.sel.AppendPositions(ws.idx[:0])
		}
		// Deletion-vector mask: drop tombstoned survivors before any
		// aggregate input is gathered, so purged rows cost no value I/O —
		// same contract as a failed probe.
		if plan.del != nil {
			before := len(ws.idx)
			k := 0
			for _, i := range ws.idx {
				if !plan.del.Get(blkBase + int(i)) {
					ws.idx[k] = i
					k++
				}
			}
			ws.idx = ws.idx[:k]
			if ws.stages != nil {
				tomb = int64(before - k)
			}
		}
		nSel = len(ws.idx)
		if nSel == 0 {
			return
		}
		gather = func(col *colstore.Column, dst []int32) []int32 {
			return col.GatherBlock(bi, ws.idx, dst, &ws.st)
		}
	}

	// Aggregate inputs at survivors only: gather each distinct input
	// column once per block.
	for ci, col := range plan.aggCols {
		ws.mvals[ci] = gather(col, ws.mvals[ci][:0])
	}

	if !plan.grouped {
		ws.rows += int64(nSel)
		fusedAccumulate(plan, ws, nil, nSel)
		return
	}

	// Group extraction: composite index accumulated per extractor, then
	// one dense-array update per survivor.
	ws.gidx = ws.gidx[:0]
	for r := 0; r < nSel; r++ {
		ws.gidx = append(ws.gidx, 0)
	}
	for gi, fx := range plan.exs {
		ws.fkv = gather(fx.fkCol, ws.fkv[:0])
		stride := plan.strides[gi]
		if fx.posDense == nil {
			for r, fk := range ws.fkv {
				ws.gidx[r] += int64(fx.codes[fk]) * stride
			}
		} else {
			// Date keys resolve through the dense key->position array.
			// Keys outside the dimension (possible only with unvalidated
			// -data files) degrade to position 0, matching the per-probe
			// path's map-miss behaviour instead of panicking.
			for r, fk := range ws.fkv {
				var pos int32
				if k := int64(fk) - int64(fx.keyMin); k >= 0 && k < int64(len(fx.posDense)) {
					if p := fx.posDense[k]; p >= 0 {
						pos = p
					}
				}
				ws.gidx[r] += int64(fx.codes[pos]) * stride
			}
		}
	}
	// Initialize newly seen groups to the aggregate identities, then
	// accumulate every aggregate.
	nAggs := plan.nAggs
	for _, gi := range ws.gidx {
		if !ws.seen.Get(int(gi)) {
			ws.seen.Set(int(gi))
			ssb.InitCells(plan.specs, ws.sums[gi*int64(nAggs):(gi+1)*int64(nAggs)])
		}
	}
	fusedAccumulate(plan, ws, ws.gidx, nSel)
}

// kernelableSpecs reports whether every aggregate folds from per-column
// sum/count/min/max accumulators alone: single-operand (or COUNT) specs
// only, since a two-operand expression such as SUM(price*discount) needs
// both values of each row, not per-column marginals.
func kernelableSpecs(specs []ssb.AggSpec, ia, ib []int) bool {
	if len(specs) == 0 {
		return false
	}
	for k, s := range specs {
		if ib[k] >= 0 {
			return false
		}
		if s.Func != ssb.FuncCount && ia[k] < 0 {
			return false
		}
	}
	return true
}

// foldAccCells widens per-column kernel accumulators into ungrouped
// aggregate cells for nSel selected rows. Shared by the fused pipeline
// (per block) and the per-probe pipeline (whole position list).
func foldAccCells(specs []ssb.AggSpec, ia []int, cells []int64, accs []compress.AggAcc, nSel int64) {
	for k, s := range specs {
		switch s.Func {
		case ssb.FuncCount:
			cells[k] += nSel
		case ssb.FuncSum:
			cells[k] += accs[ia[k]].Sum
		case ssb.FuncMin:
			if a := &accs[ia[k]]; a.Count > 0 {
				cells[k] = s.Combine(cells[k], a.Min)
			}
		case ssb.FuncMax:
			if a := &accs[ia[k]]; a.Count > 0 {
				cells[k] = s.Combine(cells[k], a.Max)
			}
		}
	}
}

// fusedAccumulate folds the block's nSel survivors into the worker's
// aggregates: the ungrouped cells when gidx is nil, otherwise the dense
// per-group cells. The single-column SUM loops are kept specialized — they
// are the hot path for every fixed SSBM flight.
func fusedAccumulate(plan *fusedPlan, ws *fusedWorker, gidx []int64, nSel int) {
	nAggs := int64(plan.nAggs)
	for k, s := range plan.specs {
		var va, vb []int32
		if plan.ia[k] >= 0 {
			va = ws.mvals[plan.ia[k]]
		}
		if plan.ib[k] >= 0 {
			vb = ws.mvals[plan.ib[k]]
		}
		if gidx == nil {
			cell := ws.aggCells[k]
			switch {
			case s.Func == ssb.FuncCount:
				cell += int64(nSel)
			case s.Func == ssb.FuncSum && s.Expr.Op == '*':
				for r, v := range va {
					cell += int64(v) * int64(vb[r])
				}
			case s.Func == ssb.FuncSum && s.Expr.Op == '-':
				for r, v := range va {
					cell += int64(v) - int64(vb[r])
				}
			case s.Func == ssb.FuncSum:
				for _, v := range va {
					cell += int64(v)
				}
			default:
				for r, v := range va {
					var b int32
					if vb != nil {
						b = vb[r]
					}
					cell = s.Combine(cell, s.Expr.Eval(v, b))
				}
			}
			ws.aggCells[k] = cell
			continue
		}
		ko := int64(k)
		switch {
		case s.Func == ssb.FuncCount:
			for _, gi := range gidx {
				ws.sums[gi*nAggs+ko]++
			}
		case s.Func == ssb.FuncSum && s.Expr.Op == '*':
			for r, gi := range gidx {
				ws.sums[gi*nAggs+ko] += int64(va[r]) * int64(vb[r])
			}
		case s.Func == ssb.FuncSum && s.Expr.Op == '-':
			for r, gi := range gidx {
				ws.sums[gi*nAggs+ko] += int64(va[r]) - int64(vb[r])
			}
		case s.Func == ssb.FuncSum:
			for r, gi := range gidx {
				ws.sums[gi*nAggs+ko] += int64(va[r])
			}
		default:
			for r, gi := range gidx {
				var b int32
				if vb != nil {
					b = vb[r]
				}
				c := gi*nAggs + ko
				ws.sums[c] = s.Combine(ws.sums[c], s.Expr.Eval(va[r], b))
			}
		}
	}
}

// applyBlockProbe evaluates one probe over a whole block directly on its
// compressed representation, charging a full block read. The block is
// acquired here — after the caller's zone-map checks — and released before
// returning, so a segment-backed block is pinned only while its values are
// being examined.
func applyBlockProbe(p *factProbe, bi int, out *bitmap.Bitmap, ws *fusedWorker) {
	blk, release := p.col.AcquireBlock(bi)
	ws.st.BlockFetched()
	ws.st.Read(blk.CompressedBytes())
	ws.st.KernelFold()
	switch {
	case p.isPred:
		blk.Filter(p.pred, 0, out)
	case p.dense != nil:
		blk.FilterSet(p.dense, p.setMin, 0, out)
	default:
		// Hash-set probe reached the fused path (defensive; planProbes
		// builds dense sets whenever the fused pipeline is active). Probe
		// membership natively — one test per run / distinct value where
		// the encoding allows — instead of decoding the whole block.
		blk.FilterFunc(p.matches, 0, out)
	}
	release()
}
