package exec

import (
	"strings"
	"testing"

	"repro/internal/iosim"
	"repro/internal/ssb"
)

func buildSuppProjection(t *testing.T) *Projection {
	t.Helper()
	p, err := testDBC.BuildProjection("lineorder_by_supp", []string{"suppkey", "partkey"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProjectionCorrectness(t *testing.T) {
	p := buildSuppProjection(t)
	dbp := testDBC.withFact(p.Table)
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		got := dbp.Run(q, FullOpt, nil)
		if !got.Equal(want) {
			t.Errorf("Q%s on projection: results differ\n%s", q.ID, want.Diff(got))
		}
	}
}

func TestProjectionSortInvariant(t *testing.T) {
	p := buildSuppProjection(t)
	sk := p.Table.MustColumn("suppkey")
	pk := p.Table.MustColumn("partkey")
	prevS, prevP := int32(-1), int32(-1)
	for i := 0; i < p.Table.NumRows(); i++ {
		s, pp := sk.Get(int32(i)), pk.Get(int32(i))
		if s < prevS {
			t.Fatal("projection not sorted by suppkey")
		}
		if s == prevS && pp < prevP {
			t.Fatal("projection not secondarily sorted by partkey")
		}
		prevS, prevP = s, pp
	}
}

func TestProjectionChosenForSupplierQueries(t *testing.T) {
	db := BuildDB(testData, true)
	p, err := db.BuildProjection("lineorder_by_supp", []string{"suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	db.AddProjection(p)
	if len(db.Projections()) != 1 {
		t.Fatal("projection not registered")
	}

	// Q2.3 restricts supplier.region (contiguous suppkey range) and has
	// no date restriction: the supplier projection should win.
	q := ssb.QueryByID("2.3")
	var st iosim.Stats
	res, table := db.RunBest(q, FullOpt, &st)
	if table != "lineorder_by_supp" {
		t.Fatalf("Q2.3 chose %q, want the supplier projection", table)
	}
	want := ssb.Reference(testData, q)
	if !res.Equal(want) {
		t.Fatalf("Q2.3 via projection diverges:\n%s", want.Diff(res))
	}

	// Q1.1 restricts the date year: the base orderdate-sorted table wins.
	q = ssb.QueryByID("1.1")
	res, table = db.RunBest(q, FullOpt, nil)
	if table != "lineorder" {
		t.Fatalf("Q1.1 chose %q, want the base table", table)
	}
	if !res.Equal(ssb.Reference(testData, q)) {
		t.Fatal("Q1.1 via RunBest diverges")
	}
}

func TestProjectionReducesIO(t *testing.T) {
	db := BuildDB(testData, true)
	p, err := db.BuildProjection("lineorder_by_supp", []string{"suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	db.AddProjection(p)
	q := ssb.QueryByID("2.3")
	var stBase, stProj iosim.Stats
	db.Run(q, FullOpt, &stBase)
	db.RunBest(q, FullOpt, &stProj)
	if stProj.BytesRead >= stBase.BytesRead {
		t.Fatalf("projection did not reduce I/O: %d vs %d", stProj.BytesRead, stBase.BytesRead)
	}
}

func TestProjectionErrors(t *testing.T) {
	if _, err := testDBC.BuildProjection("x", nil); err == nil {
		t.Fatal("empty sort columns should error")
	}
	if _, err := testDBC.BuildProjection("x", []string{"nosuchcol"}); err == nil {
		t.Fatal("unknown sort column should error")
	}
}

func TestExplainOutputs(t *testing.T) {
	q := ssb.QueryByID("3.1")
	out := testDBC.Explain(q, FullOpt)
	for _, want := range []string{"BETWEEN", "sorted column", "direct array extraction", "datekey lookup", "sum(lo_revenue)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(3.1, tICL) missing %q:\n%s", want, out)
		}
	}
	// Hash fallback shows up for city IN queries.
	out = testDBC.Explain(ssb.QueryByID("3.3"), FullOpt)
	if !strings.Contains(out, "hash probe") {
		t.Errorf("Explain(3.3) should mention hash probe:\n%s", out)
	}
	// i-config switches group extraction to hash tables.
	cfg := FullOpt
	cfg.InvisibleJoin = false
	out = testDBC.Explain(q, cfg)
	if !strings.Contains(out, "via hash table") {
		t.Errorf("Explain(3.1, tiCL) should mention hash extraction:\n%s", out)
	}
	// Early materialization plan.
	cfg = FullOpt
	cfg.LateMat = false
	out = testDBC.Explain(q, cfg)
	if !strings.Contains(out, "EARLY MATERIALIZATION") {
		t.Errorf("Explain(Ticl-ish) should mention early materialization:\n%s", out)
	}
}
