package exec

import (
	"testing"

	"repro/internal/iosim"
	"repro/internal/ssb"
)

// TestParallelMatchesSerial: every query returns identical results and
// identical I/O accounting with parallel scans enabled.
func TestParallelMatchesSerial(t *testing.T) {
	par := FullOpt
	par.Workers = 4
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		var stSer, stPar iosim.Stats
		serial := testDBC.Run(q, FullOpt, &stSer)
		parallel := testDBC.Run(q, par, &stPar)
		if !parallel.Equal(want) || !serial.Equal(want) {
			t.Errorf("Q%s: parallel/serial results diverge from reference", q.ID)
		}
		if stSer.BytesRead != stPar.BytesRead {
			t.Errorf("Q%s: parallel I/O accounting differs: %d vs %d", q.ID, stPar.BytesRead, stSer.BytesRead)
		}
	}
}

// TestParallelHashFallback exercises the parallel probeSet path (city IN
// produces a hash probe, which becomes the first full-scan probe when it is
// the only dimension restriction).
func TestParallelHashFallback(t *testing.T) {
	q := &ssb.Query{
		ID:  "par-hash",
		Agg: ssb.AggRevenue,
		DimFilters: []ssb.DimFilter{
			{Dim: ssb.DimSupplier, Col: "city", Op: 7 /* OpIn */, StrSet: []string{
				ssb.CityOf("CHINA", 1), ssb.CityOf("CHINA", 5),
			}},
		},
	}
	want := ssb.Reference(testData, q)
	par := FullOpt
	par.Workers = 8
	got := testDBC.Run(q, par, nil)
	if !got.Equal(want) {
		t.Fatalf("parallel hash probe diverges:\n%s", want.Diff(got))
	}
}

func TestParallelUncompressed(t *testing.T) {
	cfg := Config{BlockIter: true, InvisibleJoin: true, LateMat: true, Workers: 3}
	for _, id := range []string{"2.1", "3.2", "4.1"} {
		q := ssb.QueryByID(id)
		want := ssb.Reference(testData, q)
		if got := testDBPlain.Run(q, cfg, nil); !got.Equal(want) {
			t.Errorf("Q%s parallel uncompressed diverges", id)
		}
	}
}

// BenchmarkParallelScan quantifies the extension on the scan-bound Ticl-ish
// workload (Q2.1 on uncompressed storage: full partkey scan dominates).
func BenchmarkParallelScan(b *testing.B) {
	q := ssb.QueryByID("2.1")
	for _, workers := range []int{1, 2, 4} {
		cfg := Config{BlockIter: true, InvisibleJoin: true, LateMat: true, Workers: workers}
		b.Run(map[int]string{1: "serial", 2: "2workers", 4: "4workers"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				testDBPlain.Run(q, cfg, nil)
			}
		})
	}
}
