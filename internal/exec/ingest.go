package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/delta"
	"repro/internal/segstore"
	"repro/internal/ssb"
	"repro/internal/wal"
)

// This file is the write path of the C-Store WS/RS split (paper Section 2:
// "C-Store [has] a write-optimized store absorbing inserts and a tuple
// mover migrating batches into the read-optimized store"):
//
//   - Insert translates logical lineorder rows into the physical fact
//     representation (foreign keys remapped to dimension positions, strings
//     to dictionary codes) and appends them to an in-memory delta.Store.
//   - The tuple mover (compactOnce) freezes block-aligned prefixes of the
//     delta into compress.Choose-encoded 64K-row segments and lands them on
//     the read-optimized store: segstore.Append for file-backed DBs,
//     colstore.AppendedColumn for in-memory ones. Each pass publishes a new
//     immutable sealed *DB; the previous one keeps serving queries that
//     already snapshotted it.
//   - Every query resolves one consistent (sealed DB, delta view) pair at
//     start (snapshotForRead): the frontier flip in compactOnce happens
//     under the same lock, so a row is visible from exactly one side, and a
//     query started before an insert can never observe it while one started
//     after always does.

// ErrWriteStoreFull is returned by Insert when the write store holds more
// resident bytes than the configured cap; callers should retry after the
// tuple mover catches up (the serving layer surfaces it as backpressure).
var ErrWriteStoreFull = errors.New("exec: write store is over its memory cap; retry after compaction")

// ingestState is the write half of a DB: the delta store, the current
// sealed snapshot, and the tuple-mover machinery.
type ingestState struct {
	// mu guards the (sealed, ws watermark) frontier: snapshotForRead reads
	// both and compactOnce flips both under it.
	mu     sync.Mutex
	sealed *DB
	ws     *delta.Store

	maxBytes int64
	// keyPos maps each position-keyed dimension's logical key (1-based,
	// minus one) to its physical dimension position.
	keyPos map[ssb.Dim][]int32

	// compactMu serializes tuple-mover passes (background loop, CompactNow,
	// Flush).
	compactMu   sync.Mutex
	compactions atomic.Int64
	lastErr     atomic.Value // error

	startOnce sync.Once
	stopOnce  sync.Once
	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// wal is the durability log (nil until EnableWAL). Inserts and deletes
	// append under mu — so log order matches apply order — and group-commit
	// outside it. walBase is the delta-global row index that WAL row index 0
	// of the current log generation corresponds to: each compaction rewrites
	// the log to just the live tail, re-anchoring it.
	wal     *wal.Log
	walBase int64

	// delSealed/delWS are the deletion vectors, split at the frontier like
	// the data itself. Both are immutable snapshots swapped under mu:
	// delSealed always has exactly sealed.numRows bits (grown in the same
	// critical section that flips the frontier); delWS is indexed by
	// delta-global row and may be shorter than the current total — rows
	// inserted after the last delete are implicitly live. nil means no
	// tombstones on that side, which keeps the read path zero-cost until the
	// first delete.
	delSealed *bitmap.Bitmap
	delWS     *bitmap.Bitmap
	// deletes counts accepted delete operations that tombstoned at least one
	// row; it contributes to Epoch so caches and frozen-base guards see
	// deletes as data changes. tombSealed/tombWS count live tombstones per
	// side (under mu; compaction purges WS tombstones as it drops the rows).
	deletes    atomic.Int64
	tombSealed int64
	tombWS     int64
}

// errBox wraps an error for atomic.Value (which cannot store a bare nil).
type errBox struct{ err error }

// setErr records a tuple-mover failure for Flush/DeltaStats to surface.
func (ig *ingestState) setErr(err error) { ig.lastErr.Store(errBox{err}) }

// clearErr forgets a recorded failure (a later full flush succeeded, so
// nothing is stranded anymore).
func (ig *ingestState) clearErr() { ig.lastErr.Store(errBox{}) }

// err returns the recorded tuple-mover failure, if any.
func (ig *ingestState) err() error {
	if v := ig.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// EnableDelta attaches a write-optimized store to the DB. maxWSBytes caps
// the delta's resident memory (0 = unbounded): past it Insert returns
// ErrWriteStoreFull until compaction drains the backlog. The dimension
// tables must carry their key columns (custkey/suppkey/partkey) so logical
// foreign keys can be remapped to physical positions — BuildDB always
// stores them; segment files written before the write path existed lack
// them and are rejected with a regeneration hint. Call before serving
// queries; enabling is not synchronized against concurrent reads.
func (db *DB) EnableDelta(maxWSBytes int64) error {
	if db.ingest != nil {
		return nil
	}
	keyPos := map[ssb.Dim][]int32{}
	for _, dim := range []ssb.Dim{ssb.DimCustomer, ssb.DimSupplier, ssb.DimPart} {
		keyCol, err := db.Dims[dim].Column(dim.FactFK())
		if err != nil {
			return fmt.Errorf("exec: %v table has no %s column; this store predates the write path — regenerate it with ssb-gen", dim, dim.FactFK())
		}
		keys := keyCol.DecodeAll(nil, nil)
		pos := make([]int32, len(keys))
		for i := range pos {
			pos[i] = -1
		}
		for p, k := range keys {
			if k < 1 || int(k) > len(keys) || pos[k-1] >= 0 {
				return fmt.Errorf("exec: %v key column is not a dense 1..%d permutation (key %d at position %d)", dim, len(keys), k, p)
			}
			pos[k-1] = int32(p)
		}
		keyPos[dim] = pos
	}
	db.ingest = &ingestState{
		sealed:   db,
		ws:       delta.NewStore(),
		maxBytes: maxWSBytes,
		keyPos:   keyPos,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	return nil
}

// tombstones is the deletion-vector snapshot a query executes against:
// deleted rows on the sealed side (bit = sealed row index) and the write
// store side (bit = delta-global row index). Either side may be nil — no
// tombstones there — and both bitmaps are immutable snapshots, safe to read
// for the whole query.
type tombstones struct {
	sealed *bitmap.Bitmap
	ws     *bitmap.Bitmap
}

// snapshotForRead resolves the epoch a query executes against: the sealed
// DB, the live delta view, and the deletion vectors form one consistent
// frontier. Returns (db, nil, zero) for DBs without a write store.
func (db *DB) snapshotForRead() (*DB, *delta.View, tombstones) {
	ig := db.ingest
	if ig == nil {
		return db, nil, tombstones{}
	}
	ig.mu.Lock()
	sdb := ig.sealed
	view := ig.ws.Snapshot()
	del := tombstones{sealed: ig.delSealed, ws: ig.delWS}
	ig.mu.Unlock()
	return sdb, view, del
}

// Epoch versions the visible data: rows ever inserted plus delete operations
// ever applied. It bumps on every accepted insert and every delete that
// tombstones at least one row (compaction moves rows between stores without
// changing what queries see, so it does not bump). Zero for read-only DBs —
// and forever zero when no write ever lands, keeping epoch-keyed result
// caches exact on frozen data.
func (db *DB) Epoch() int64 {
	ig := db.ingest
	if ig == nil {
		return 0
	}
	return ig.ws.Total() + ig.deletes.Load()
}

// Insert validates, translates and appends a batch of logical lineorder
// rows to the write store, returning the new epoch. Foreign keys must
// reference existing dimension rows; the two string attributes must use
// values already in the frozen dictionaries (the write store never grows a
// dictionary). Safe for concurrent use with queries and other inserters.
func (db *DB) Insert(b *ssb.Lineorders) (int64, error) {
	ig := db.ingest
	if ig == nil {
		return 0, fmt.Errorf("exec: DB has no write store (EnableDelta first)")
	}
	if err := b.CheckLens(); err != nil {
		return 0, err
	}
	n := b.Len()
	if n == 0 {
		return ig.ws.Total() + ig.deletes.Load(), nil
	}
	if ig.maxBytes > 0 && ig.ws.Bytes() > ig.maxBytes {
		return 0, ErrWriteStoreFull
	}

	custPos := ig.keyPos[ssb.DimCustomer]
	suppPos := ig.keyPos[ssb.DimSupplier]
	partPos := ig.keyPos[ssb.DimPart]
	prioDict := db.Fact.MustColumn("ordpriority").Dict
	shipDict := db.Fact.MustColumn("shipmode").Dict

	ck := make([]int32, n)
	sk := make([]int32, n)
	pk := make([]int32, n)
	prio := make([]int32, n)
	ship := make([]int32, n)
	for i := 0; i < n; i++ {
		k := b.CustKey[i]
		if k < 1 || int(k) > len(custPos) {
			return 0, fmt.Errorf("exec: insert row %d: custkey %d outside [1,%d]", i, k, len(custPos))
		}
		ck[i] = custPos[k-1]
		k = b.SuppKey[i]
		if k < 1 || int(k) > len(suppPos) {
			return 0, fmt.Errorf("exec: insert row %d: suppkey %d outside [1,%d]", i, k, len(suppPos))
		}
		sk[i] = suppPos[k-1]
		k = b.PartKey[i]
		if k < 1 || int(k) > len(partPos) {
			return 0, fmt.Errorf("exec: insert row %d: partkey %d outside [1,%d]", i, k, len(partPos))
		}
		pk[i] = partPos[k-1]
		if _, ok := db.dateByKey[b.OrderDate[i]]; !ok {
			return 0, fmt.Errorf("exec: insert row %d: orderdate %d is not a datekey of the date dimension", i, b.OrderDate[i])
		}
		code, ok := prioDict.Code(b.OrdPriority[i])
		if !ok {
			return 0, fmt.Errorf("exec: insert row %d: ordpriority %q not in the frozen dictionary", i, b.OrdPriority[i])
		}
		prio[i] = code
		code, ok = shipDict.Code(b.ShipMode[i])
		if !ok {
			return 0, fmt.Errorf("exec: insert row %d: shipmode %q not in the frozen dictionary", i, b.ShipMode[i])
		}
		ship[i] = code
	}

	// Physical columns in factColOrder — the same positional order the WAL's
	// insert records and replay use.
	cols := [][]int32{
		append([]int32(nil), b.OrderKey...),
		append([]int32(nil), b.LineNumber...),
		ck,
		pk,
		sk,
		append([]int32(nil), b.OrderDate...),
		prio,
		append([]int32(nil), b.ShipPriority...),
		append([]int32(nil), b.Quantity...),
		append([]int32(nil), b.ExtendedPrice...),
		append([]int32(nil), b.OrdTotalPrice...),
		append([]int32(nil), b.Discount...),
		append([]int32(nil), b.Revenue...),
		append([]int32(nil), b.SupplyCost...),
		append([]int32(nil), b.Tax...),
		append([]int32(nil), b.CommitDate...),
		ship,
	}
	dcols := make([]delta.Column, len(cols))
	for i := range cols {
		dcols[i] = delta.Column{Name: factColOrder[i], Vals: cols[i]}
	}
	batch, err := delta.NewBatch(dcols)
	if err != nil {
		return 0, err
	}
	// WAL append and delta append happen under one lock so the log's record
	// order equals the store's row order; the group commit — the fsync wait —
	// happens outside it, so concurrent inserters coalesce into one sync
	// without serializing their translation work.
	ig.mu.Lock()
	var lsn uint64
	if ig.wal != nil {
		lsn, err = ig.wal.Append(wal.Insert{Cols: cols})
		if err != nil {
			ig.mu.Unlock()
			ig.setErr(err)
			return 0, err
		}
	}
	total := ig.ws.Append(batch)
	epoch := total + ig.deletes.Load()
	ig.mu.Unlock()
	if ig.wal != nil {
		if err := ig.wal.Commit(lsn); err != nil {
			ig.setErr(err)
			return 0, err
		}
	}
	if ig.ws.Pending() >= int64(colstore.BlockSize) {
		select {
		case ig.kick <- struct{}{}:
		default:
		}
	}
	return epoch, nil
}

// factColOrder is the canonical physical column order of the fact table —
// identical to BuildDB's layout and to Fact.ColumnNames(). Insert batches
// and the WAL's positional insert records both use it, which is what lets
// replay rebuild batches without storing column names per record.
var factColOrder = []string{
	"orderkey", "linenumber", "custkey", "partkey", "suppkey",
	"orderdate", "ordpriority", "shippriority", "quantity",
	"extendedprice", "ordtotalprice", "discount", "revenue",
	"supplycost", "tax", "commitdate", "shipmode",
}

// CompactNow runs one tuple-mover pass, freezing the block-aligned prefix
// of the delta (first topping the sealed store's partial tail block up to
// 64K rows, then whole 64K blocks) into encoded segments. Returns the rows
// sealed; zero when fewer than BlockSize rows are pending.
func (db *DB) CompactNow() (int64, error) { return db.compactOnce(false) }

// FlushDelta seals every pending delta row — including a final partial
// block — into the read-optimized store: the shutdown path that guarantees
// zero unflushed-delta loss for file-backed stores. A successful full
// flush clears any earlier background-compaction failure (a transient disk
// error that killed the background mover strands nothing once the flush
// lands every row); only a flush that itself fails reports an error.
func (db *DB) FlushDelta() error {
	ig := db.ingest
	if ig == nil {
		return nil
	}
	if _, err := db.compactOnce(true); err != nil {
		return err
	}
	ig.clearErr()
	return nil
}

// compactOnce is the tuple mover: gather the prefix, encode and land it on
// the read store, then flip the frontier. Queries snapshotted before the
// flip keep their sealed DB and their delta view (the view retains the
// batches); queries after see the grown sealed store and the trimmed delta.
func (db *DB) compactOnce(all bool) (int64, error) {
	ig := db.ingest
	if ig == nil {
		return 0, nil
	}
	ig.compactMu.Lock()
	defer ig.compactMu.Unlock()

	ig.mu.Lock()
	sdb := ig.sealed
	view := ig.ws.Snapshot()
	// delWS is stable for the whole pass: deletes serialize behind
	// compactMu, so no bit below the consumed prefix can appear mid-move.
	delWS := ig.delWS
	ig.mu.Unlock()

	pending := view.Len()
	if pending == 0 {
		return 0, nil
	}
	gap := int64((colstore.BlockSize - sdb.numRows%colstore.BlockSize) % colstore.BlockSize)
	sealN, survivors := planSeal(view, delWS, gap, all)
	if sealN == 0 {
		return 0, nil
	}

	names := sdb.Fact.ColumnNames()
	gathered := make([][]int32, len(names))
	for i, name := range names {
		gathered[i] = gatherLive(view, delWS, name, sealN, survivors)
	}

	var newFact *colstore.Table
	if db.seg != nil {
		cols := make([]segstore.AppendColumn, len(names))
		for i, name := range names {
			cols[i] = segstore.AppendColumn{Name: name, Vals: gathered[i]}
		}
		if err := db.seg.Append(segFactName, cols); err != nil {
			ig.setErr(err)
			return 0, err
		}
		t, err := db.seg.Table(segFactName)
		if err != nil {
			ig.setErr(err)
			return 0, err
		}
		newFact = t
	} else {
		newFact = colstore.NewTable(sdb.Fact.Name)
		for i, name := range names {
			newFact.AddColumn(colstore.AppendedColumn(sdb.Fact.MustColumn(name), gathered[i], db.Compressed))
		}
	}

	nd := *sdb
	nd.Fact = newFact
	nd.numRows = sdb.numRows + int(survivors)
	nd.ingest = nil
	// Projections index the pre-append row space and the footprint memo is
	// keyed by column pointers that just changed; both rebuild from scratch
	// on the new sealed DB.
	nd.projections = nil
	nd.footCache = &footprintCache{max: map[*colstore.Column]int64{}}

	ig.mu.Lock()
	ig.sealed = &nd
	ig.ws.Seal(sealN)
	// The sealed deletion vector tracks sealed.numRows exactly: grow it in
	// the same critical section that publishes the new sealed store, so no
	// reader ever pairs a grown store with a short vector. Tombstoned delta
	// rows were dropped during the move — never copied to the file — so the
	// new bits stay zero and the WS tombstone count shrinks by what the pass
	// consumed.
	if ig.delSealed != nil {
		ig.delSealed = ig.delSealed.Grow(nd.numRows)
	}
	ig.tombWS -= sealN - survivors
	ig.mu.Unlock()
	ig.compactions.Add(1)

	// Durability bookkeeping, still under compactMu. First a checkpoint
	// record: replay adds it to the running frontier so already-landed rows
	// are never re-applied. It is committed (fsynced) before compactMu is
	// released — a delete accepted after this pass must find the checkpoint
	// on disk, or replay could mis-attribute its WS indexes. Then the log is
	// rewritten to just the live tail (base + pending inserts + live WS
	// tombstones), re-anchoring walBase; the checkpoint stays meaningful in
	// the crash window between the two steps.
	if l := ig.wal; l != nil {
		ig.mu.Lock()
		ckpt := wal.Checkpoint{
			SealedRows: ig.ws.Sealed() - ig.walBase,
			FileRows:   int64(nd.numRows),
		}
		ig.mu.Unlock()
		lsn, err := l.Append(ckpt)
		if err == nil {
			err = l.Commit(lsn)
		}
		if err != nil {
			ig.setErr(err)
			return 0, err
		}
		ig.mu.Lock()
		recs := walSnapshotRecords(int64(nd.numRows), ig.delSealed, ig.ws.Snapshot(), ig.delWS)
		err = l.Rewrite(recs)
		if err == nil {
			ig.walBase = ig.ws.Sealed()
		}
		ig.mu.Unlock()
		if err != nil {
			ig.setErr(err)
			return 0, err
		}
	}
	return sealN, nil
}

// planSeal picks how many pending delta rows one tuple-mover pass consumes.
// Tombstoned rows are dropped during the move, so block alignment of the
// fact file is governed by the survivor count: the pass consumes the
// shortest prefix whose survivors first top the sealed store's partial tail
// block up to BlockSize and then fill whole blocks, extended over any
// tombstoned rows immediately after (consuming them is free). all=true
// consumes everything, partial tail included.
func planSeal(view *delta.View, delWS *bitmap.Bitmap, gap int64, all bool) (sealN, survivors int64) {
	pending := view.Len()
	live := pending
	if delWS != nil {
		lo := view.Lo()
		for g := lo; g < lo+pending; g++ {
			if g < int64(delWS.Len()) && delWS.Get(int(g)) {
				live--
			}
		}
	}
	if all {
		return pending, live
	}
	if pending < int64(colstore.BlockSize) || live < gap {
		return 0, 0
	}
	target := gap + (live-gap)/int64(colstore.BlockSize)*int64(colstore.BlockSize)
	if target == 0 {
		return 0, 0
	}
	if delWS == nil {
		return target, target
	}
	// Walk rows until target survivors are consumed, then swallow the
	// immediately following tombstoned run.
	lo := view.Lo()
	var seen int64
	n := int64(0)
	for ; seen < target; n++ {
		g := lo + n
		if g >= int64(delWS.Len()) || !delWS.Get(int(g)) {
			seen++
		}
	}
	for n < pending {
		g := lo + n
		if g < int64(delWS.Len()) && delWS.Get(int(g)) {
			n++
			continue
		}
		break
	}
	return n, target
}

// gatherLive collects the named column's values for the live rows among the
// first sealN visible rows of the view — the tuple mover's gather with
// tombstone purging. survivors sizes the result exactly.
func gatherLive(view *delta.View, delWS *bitmap.Bitmap, name string, sealN, survivors int64) []int32 {
	if delWS == nil {
		return view.Gather(name, sealN, make([]int32, 0, survivors))
	}
	out := make([]int32, 0, survivors)
	next := view.Lo()
	remaining := sealN
	view.ForEach(func(b *delta.Batch, lo, hi int) bool {
		if remaining <= 0 {
			return false
		}
		vals := b.Col(name)
		if vals == nil {
			panic(fmt.Sprintf("exec: delta batch lacks column %q", name))
		}
		base := next - int64(lo)
		take := int64(hi - lo)
		if take > remaining {
			take = remaining
			hi = lo + int(take)
		}
		for r := lo; r < hi; r++ {
			g := base + int64(r)
			if g < int64(delWS.Len()) && delWS.Get(int(g)) {
				continue
			}
			out = append(out, vals[r])
		}
		next += int64(hi - lo)
		remaining -= take
		return true
	})
	return out
}

// StartCompactor launches the background tuple mover: it wakes when a full
// block of delta rows is pending (Insert kicks it) and seals everything
// block-aligned. Idempotent. Stop with CloseDelta.
func (db *DB) StartCompactor() {
	ig := db.ingest
	if ig == nil {
		return
	}
	ig.startOnce.Do(func() {
		ig.wg.Add(1)
		go func() {
			defer ig.wg.Done()
			for {
				select {
				case <-ig.done:
					return
				case <-ig.kick:
					for {
						n, err := db.compactOnce(false)
						if err != nil {
							// Recorded by compactOnce; stop moving tuples.
							// Queries keep serving from WS + the last good
							// sealed store, and Flush surfaces the error.
							return
						}
						if n == 0 {
							break
						}
					}
				}
			}
		}()
	})
}

// CloseDelta stops the background compactor (if running) and waits for any
// in-flight pass. It does not flush; call FlushDelta first when the
// remaining rows must land on disk.
func (db *DB) CloseDelta() {
	ig := db.ingest
	if ig == nil {
		return
	}
	ig.stopOnce.Do(func() { close(ig.done) })
	ig.wg.Wait()
}

// DeltaStats describes the write store's state.
type DeltaStats struct {
	// Enabled reports whether the DB has a write store at all.
	Enabled bool `json:"enabled"`
	// Epoch is the rows ever inserted (the data version).
	Epoch int64 `json:"epoch"`
	// PendingRows/PendingBytes are the live, unsealed delta.
	PendingRows  int64 `json:"pending_rows"`
	PendingBytes int64 `json:"pending_bytes"`
	// SealedRows counts delta rows the tuple mover has migrated;
	// Compactions the mover passes that did it.
	SealedRows  int64 `json:"sealed_rows"`
	Compactions int64 `json:"compactions"`
	// TotalRows is the physical row count a query starting now would scan
	// (tombstoned rows still resident count until compaction purges them).
	TotalRows int64 `json:"total_rows"`
	// Deletes counts accepted delete operations; TombstonesSealed and
	// TombstonesWS the live tombstoned rows on each side of the frontier.
	Deletes          int64 `json:"deletes"`
	TombstonesSealed int64 `json:"tombstones_sealed"`
	TombstonesWS     int64 `json:"tombstones_ws"`
	// Err is the last tuple-mover failure ("" when healthy).
	Err string `json:"err,omitempty"`
}

// DeltaStats returns the write store's counters (zero value when disabled).
func (db *DB) DeltaStats() DeltaStats {
	ig := db.ingest
	if ig == nil {
		return DeltaStats{}
	}
	// Everything derived from the frontier is read under ig.mu — the same
	// lock compactOnce flips (sealed, watermark) under — so TotalRows can
	// never transiently drop by a compaction's worth of rows mid-read.
	ig.mu.Lock()
	st := DeltaStats{
		Enabled:          true,
		Epoch:            ig.ws.Total() + ig.deletes.Load(),
		PendingRows:      ig.ws.Pending(),
		PendingBytes:     ig.ws.Bytes(),
		SealedRows:       ig.ws.Sealed(),
		TotalRows:        int64(ig.sealed.numRows) + ig.ws.Pending(),
		Deletes:          ig.deletes.Load(),
		TombstonesSealed: ig.tombSealed,
		TombstonesWS:     ig.tombWS,
	}
	ig.mu.Unlock()
	st.Compactions = ig.compactions.Load()
	if err := ig.err(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// BatchShape returns the dimension space insert batches against this DB
// must draw from (seeded generators use it to produce valid rows).
func (db *DB) BatchShape() (ssb.BatchShape, error) {
	sh := ssb.BatchShape{
		Customers: db.Dims[ssb.DimCustomer].NumRows(),
		Suppliers: db.Dims[ssb.DimSupplier].NumRows(),
		Parts:     db.Dims[ssb.DimPart].NumRows(),
		DateKeys:  db.dateKeys,
	}
	if d := db.Fact.MustColumn("ordpriority").Dict; d != nil {
		sh.OrdPriorities = d.Values()
	}
	if d := db.Fact.MustColumn("shipmode").Dict; d != nil {
		sh.ShipModes = d.Values()
	}
	return sh, sh.Validate()
}
