package exec

import (
	"repro/internal/colstore"
	"repro/internal/ssb"
)

// EstimateFootprint bounds the transient memory one execution of q under cfg
// needs from shared resources, in bytes, using catalog metadata only (zone
// maps, dictionary sizes, worker plan) — no I/O is charged and no segment is
// read. The serving layer's admission controller sizes its byte-budget
// semaphore with this estimate so that the queries it lets run concurrently
// cannot collectively pin (or churn) more buffer-pool space than exists.
//
// The estimate mirrors the executor's actual dispatch (Run/runFused),
// including the fused pipeline's fallback to the per-probe path when the
// composite group space exceeds denseLimit, and is deliberately a worst
// case, not an average:
//
//   - Pinned segments: every worker pins at most one block per needed fact
//     column at a time (AcquireBlock is scoped to one block operation), so
//     the bound is workers x sum over needed columns of that column's
//     largest block. Per-column maxima are immutable and memoized on the
//     DB, so a served query's admission costs O(columns), not a zone-map
//     walk.
//   - Dense aggregation: the fused pipeline gives each worker a private
//     fusedGroupSpace x nAggs array of int64 cells (degrading to one worker
//     above fusedWorkerDenseLimit, which fusedWorkersFor accounts for); the
//     per-probe pipeline allocates one such array total, or a hash table
//     bounded by the dense limit above it.
//   - Group extraction: each GROUP BY column decodes its dimension
//     attribute column (4 bytes per dimension row), and dimension
//     predicate evaluation pins one block of each filtered dimension
//     column at a time.
//   - Worker scratch: the fused pipeline's survivor index/value/group
//     vectors, per-column gather buffers, and selection bitmaps are each
//     bounded by one 64K-row block per worker — with the encoding-native
//     kernels the bitmap-driven extraction can fill all of them on a
//     fully selected block, so they are charged at that bound.
//   - Per-probe position lists and aggregation scratch: the non-fused
//     late-materialized path materializes a full-fact bitmap per live
//     selection (charged twice: output plus the pipelined candidate
//     list), gathers each distinct measure column at the final positions
//     (4 bytes/value) and evaluates one int64 column per aggregate. The
//     kernel path folds ungrouped aggregates with per-block accumulators
//     instead, so these charges stay an upper bound for kernels on or
//     off.
//   - Early materialization constructs every needed column and the full
//     tuple array up front: two decoded copies of the needed columns.
func (db *DB) EstimateFootprint(q *ssb.Query, cfg Config) int64 {
	sdb, view, _ := db.snapshotForRead()
	foot := sdb.estimateFrozen(q, cfg)
	if view != nil {
		// The write-store scan walks the live delta batches; charge their
		// resident bytes so admission accounts for WS memory pressure too.
		foot += view.Bytes()
	}
	return foot
}

// estimateFrozen bounds the sealed-store scan of q under cfg.
func (db *DB) estimateFrozen(q *ssb.Query, cfg Config) int64 {
	space := db.fusedGroupSpace(q)
	// The fused pipeline only runs when the group space fits the dense
	// limit; past it runFused re-dispatches to the per-probe path with the
	// caller's worker count (parallel full-column scans).
	fusedPath := cfg.FusedActive() && space <= denseLimit
	workers := 1
	if fusedPath {
		nb := (db.numRows + colstore.BlockSize - 1) / colstore.BlockSize
		workers = fusedWorkersFor(cfg.Workers, space, nb)
	} else if cfg.LateMat && cfg.BlockIter && cfg.Workers > 1 {
		workers = cfg.Workers
	}

	needed := q.NeededFactColumns()
	var perBlock int64
	for _, name := range needed {
		perBlock += db.maxBlockBytes(db.Fact.MustColumn(name))
	}
	foot := perBlock * int64(workers)

	// Dimension predicate evaluation (join phase 1, shared by every path)
	// pins one block of each filtered dimension column at a time; the date
	// membership fallback additionally reads the datekey column.
	for _, f := range q.DimFilters {
		foot += db.maxBlockBytes(db.Dims[f.Dim].MustColumn(f.Col))
	}

	specs := q.AggSpecs()
	nAggs := int64(len(specs))
	aggColNames, _, _ := ssb.AggInputs(specs)
	nAggCols := int64(len(aggColNames))

	switch {
	case fusedPath:
		// Per-worker block scratch: survivor index + probe value vectors
		// (4 B each), composite group indexes (8 B), FK gather buffer
		// (4 B), one gather buffer per distinct aggregate input column
		// (4 B), and the two selection bitmaps — all bounded by one
		// 64K-row block.
		perWorker := int64(colstore.BlockSize)*(4+4+8+4+4*nAggCols) +
			2*int64(colstore.BlockSize)/8
		foot += perWorker * int64(workers)
	case cfg.LateMat:
		// Per-probe aggregation scratch at the final positions: gathered
		// measure columns plus one evaluated int64 column per aggregate,
		// each bounded by the fact row count.
		foot += int64(db.numRows) * (4*nAggCols + 8*nAggs)
	}

	if len(q.GroupBy) > 0 {
		cells := space
		if cells > denseLimit {
			// Hash-aggregation fallback: footprint tracks the group count
			// actually seen; bound it by the dense limit rather than the
			// raw (possibly astronomically overestimated) space.
			cells = denseLimit
		}
		arrays := int64(1)
		if fusedPath && space <= fusedWorkerDenseLimit {
			arrays = int64(workers)
		}
		foot += cells * nAggs * 8 * arrays
		for _, g := range q.GroupBy {
			foot += int64(db.Dims[g.Dim].NumRows()) * 4
		}
	}

	switch {
	case !cfg.LateMat:
		// Early materialization: decoded needed columns + constructed
		// tuples, each 4 bytes/value.
		foot += int64(db.numRows) * 4 * int64(len(needed)) * 2
	case !fusedPath:
		foot += int64(db.numRows/8) * 2
	}
	return foot
}

// maxBlockBytes returns (memoizing) the largest on-disk block of col, from
// zone-map metadata only. Columns are immutable once built, so the memo
// never invalidates.
func (db *DB) maxBlockBytes(col *colstore.Column) int64 {
	c := db.footCache
	c.mu.Lock()
	if mx, ok := c.max[col]; ok {
		c.mu.Unlock()
		return mx
	}
	c.mu.Unlock()
	var mx int64
	for i := 0; i < col.NumBlocks(); i++ {
		if b := col.BlockBytes(i); b > mx {
			mx = b
		}
	}
	c.mu.Lock()
	c.max[col] = mx
	c.mu.Unlock()
	return mx
}
